(** Deterministic kernel-source generation for the fuzz harness.

    Every case is derived from [(campaign seed, case id)] alone, so any
    failure replays with [srfa_fuzz --seed S --replay ID]. Three families:

    - {e valid} kernels — random nests (depth 1–3, several input arrays,
      1–3 statements of affine references) that the frontend must accept
      and the pipeline must evaluate;
    - {e mask-stress} kernels — valid, but with more reference groups than
      the simulator's bitmask memoisation cap, forcing the [guard.mask]
      degradation path;
    - {e broken} kernels — a valid kernel with one labelled defect
      injected (zero trip count, out-of-bounds index, undeclared array,
      rank mismatch, duplicated loop variable, lexical garbage, truncated
      source, unterminated comment, or a starved register budget), which
      the pipeline must reject with a coded diagnostic, never a crash. *)

type kind =
  | Valid
  | Mask_stress
  | Broken of string  (** defect label, e.g. ["oob-index"] *)

type case = {
  id : int;         (** case index within the campaign *)
  seed : int;       (** derived PRNG seed (replays independently) *)
  kind : kind;
  budget : int;     (** register budget the harness evaluates under *)
  source : string;  (** kernel source text *)
}

val generate : seed:int -> id:int -> case
(** [generate ~seed ~id] is the [id]-th case of campaign [seed];
    deterministic in both arguments. *)

val kind_name : kind -> string
(** ["valid"], ["mask-stress"] or ["broken:<label>"]. *)

type stream = {
  stream_id : int;    (** stream index within the campaign *)
  stream_seed : int;  (** derived PRNG seed (identifies the stream) *)
  kernel : string;    (** a library kernel name (consumer resolves it) *)
  initial : int;      (** budget the stream opens at *)
  events : int list;  (** absolute budget targets, in order *)
}
(** Fuzz input for the dynamic re-budgeting path: a library kernel plus
    a stream of budget events mixing shrinks, grows, no-ops (the
    previous target repeated) and starved targets below any kernel's
    feasibility minimum (exercising the pinned-shrink clamp rule). *)

val generate_stream : seed:int -> id:int -> stream
(** [generate_stream ~seed ~id] is the [id]-th budget-event stream of
    campaign [seed]; deterministic in both arguments, and decorrelated
    from {!generate}'s case streams at the same [(seed, id)]. *)
