open Srfa_util
module Flow = Srfa_core.Flow
module Allocator = Srfa_core.Allocator
module Parser = Srfa_frontend.Parser
module Group = Srfa_reuse.Group
module Report = Srfa_estimate.Report

type outcome =
  | Accepted of {
      warnings : Diag.t list;
      events : Trace.event list;
      regression : string option;
      plus_regression : string option;
    }
  | Rejected of Diag.t list
  | Violation of string
  | Crash of string

exception Violated of string

let violated fmt = Printf.ksprintf (fun m -> raise (Violated m)) fmt

let guard_event = function
  | "W-GUARD-CUT" -> Some "fallback.pr_ra"
  | "W-GUARD-MASK" -> Some "guard.mask"
  | "W-GUARD-EVENT" -> Some "fallback.cycle_model"
  | _ -> None

let evaluate ~algorithm ~budget nest =
  let config = { Flow.default_config with budget } in
  let sink, events = Trace.collector () in
  let result = Flow.run_checked ~config ~algorithm ~trace:sink nest in
  (result, events ())

(* Upper bound on simulated RAM traffic: every reference touching RAM on
   every iteration. Any allocation can only save accesses against it. *)
let baseline_accesses nest =
  let groups = Group.collect nest in
  Srfa_ir.Nest.iterations nest
  * Array.fold_left
      (fun acc g -> acc + g.Group.reads + g.Group.writes)
      0 groups

let check_report ~budget ~baseline (r : Report.t) =
  if r.total_registers > budget then
    violated "%s allocated %d registers over budget %d" r.algorithm
      r.total_registers budget;
  if r.ram_accesses < 0 || r.ram_accesses > baseline then
    violated "%s: %d RAM accesses outside [0, %d] (negative savings)"
      r.algorithm r.ram_accesses baseline;
  if r.memory_cycles < 0 || r.cycles < r.memory_cycles then
    violated "%s: cycle accounting broken (%d total < %d memory)"
      r.algorithm r.cycles r.memory_cycles

let check_warning_events warnings events =
  List.iter
    (fun (d : Diag.t) ->
      match guard_event d.code with
      | None -> ()
      | Some name ->
        if
          not (List.exists (fun (e : Trace.event) -> e.Trace.name = name) events)
        then violated "warning %s without its %s trace event" d.code name)
    warnings

let first_diag = function
  | d :: _ -> Diag.to_string d
  | [] -> "(no diagnostic)"

let known_valid (case : Gen.case) =
  match case.kind with
  | Gen.Valid | Gen.Mask_stress -> true
  | Gen.Broken _ -> false

let run_case (case : Gen.case) : outcome =
  try
    match Parser.parse_result case.source with
    | Error [] -> Violation "rejected with an empty diagnostic list"
    | Error diags ->
      if known_valid case then
        Violation
          (Printf.sprintf "valid kernel rejected: %s" (first_diag diags))
      else if List.exists (fun (d : Diag.t) -> d.Diag.code = "") diags then
        Violation "rejection carries an uncoded diagnostic"
      else Rejected diags
    | Ok nest -> (
      let baseline = baseline_accesses nest in
      match evaluate ~algorithm:Allocator.Cpa_ra ~budget:case.budget nest with
      | Error [], _ -> Violation "pipeline failed with an empty diagnostic list"
      | Error diags, _ ->
        if known_valid case then
          Violation
            (Printf.sprintf "valid kernel failed: %s" (first_diag diags))
        else Rejected diags
      | Ok (cpa, warnings), events ->
        check_report ~budget:case.budget ~baseline cpa;
        check_warning_events warnings events;
        (match case.kind with
        | Gen.Mask_stress ->
          if
            not
              (List.exists
                 (fun (d : Diag.t) -> d.Diag.code = "W-GUARD-MASK")
                 warnings)
          then violated "mask-stress kernel evaluated without W-GUARD-MASK"
        | _ -> ());
        let comparator name algorithm =
          match evaluate ~algorithm ~budget:case.budget nest with
          | Ok (r, _), _ ->
            check_report ~budget:case.budget ~baseline r;
            r
          | Error diags, _ ->
            violated "%s failed where CPA-RA succeeded: %s" name
              (first_diag diags)
        in
        let fr = comparator "FR-RA" Allocator.Fr_ra in
        let pr = comparator "PR-RA" Allocator.Pr_ra in
        let plus = comparator "CPA+" Allocator.Cpa_plus in
        let portfolio = comparator "portfolio" Allocator.Portfolio in
        let bar = min fr.Report.cycles pr.Report.cycles in
        (* The certified path is never-worse by construction, so here the
           tolerance is exactly zero: a single counterexample is a hard
           contract breach, not a statistic. *)
        if portfolio.Report.cycles > bar then
          violated
            "certified portfolio takes %d cycles, best greedy baseline %d, \
             at budget %d"
            portfolio.Report.cycles bar case.budget;
        let regression =
          if cpa.Report.cycles > fr.Report.cycles then
            Some
              (Printf.sprintf "CPA-RA takes %d cycles, FR-RA %d, at budget %d"
                 cpa.Report.cycles fr.Report.cycles case.budget)
          else None
        in
        let plus_regression =
          if plus.Report.cycles > bar then
            Some
              (Printf.sprintf
                 "CPA+ takes %d cycles, best greedy baseline %d, at budget %d"
                 plus.Report.cycles bar case.budget)
          else None
        in
        Accepted { warnings; events; regression; plus_regression })
  with
  | Violated m -> Violation m
  | exn -> Crash (Printexc.to_string exn)

let minimize keeps source =
  let render ls = String.concat "\n" ls in
  let rec shrink ls =
    let n = List.length ls in
    let rec try_at k =
      if k >= n then ls
      else
        let candidate = List.filteri (fun i _ -> i <> k) ls in
        if keeps (render candidate) then shrink candidate else try_at (k + 1)
    in
    try_at 0
  in
  if keeps source then render (shrink (String.split_on_char '\n' source))
  else source

type summary = {
  cases : int;
  accepted : int;
  degraded : int;
  rejected : int;
  crashes : (Gen.case * string * string) list;
  violations : (Gen.case * string) list;
  regressions : (Gen.case * string) list;
  plus_regressions : (Gen.case * string) list;
}

(* CPA-RA beating FR-RA on total cycles is the paper's claim, not a
   theorem: on ~1% of random kernels CPA-RA's critical-path model leaves
   registers stranded that FR-RA spends (the gap Cpa_plus closes). A
   campaign is judged on the rate — over 5% of accepted kernels
   regressing means the allocator broke, a stray counterexample does
   not. *)
let regression_tolerance_pct = 5

let within_tolerance s rs =
  List.length rs * 100 <= s.accepted * regression_tolerance_pct

let regressions_ok s =
  within_tolerance s s.regressions && within_tolerance s s.plus_regressions

(* Certified-portfolio regressions never appear here: they are hard
   Violations (exactly-zero tolerance), failing the campaign outright. *)
let ok s = s.crashes = [] && s.violations = [] && regressions_ok s

(* One case, executed to completion: generate, judge, and (for crashes)
   minimise — all deterministic functions of (seed, id), so a pool can
   deal ids to domains in any order and the merge below still rebuilds
   the exact sequential campaign. *)
let execute_case ~seed id =
  let case = Gen.generate ~seed ~id in
  let outcome = run_case case in
  let minimized =
    match outcome with
    | Crash _ ->
      let still_crashes src =
        match run_case { case with Gen.source = src } with
        | Crash _ -> true
        | _ -> false
      in
      Some (minimize still_crashes case.Gen.source)
    | _ -> None
  in
  (case, outcome, minimized)

let run ?(cases = 200) ?(seed = 42) ?(log = fun _ _ -> ()) ?pool () =
  let accepted = ref 0 and degraded = ref 0 and rejected = ref 0 in
  let crashes = ref [] and violations = ref [] in
  let regressions = ref [] and plus_regressions = ref [] in
  let merge (case, outcome, minimized) =
    log case outcome;
    match outcome with
    | Accepted { warnings; regression; plus_regression; _ } ->
      incr accepted;
      if warnings <> [] then incr degraded;
      (match regression with
      | Some m -> regressions := (case, m) :: !regressions
      | None -> ());
      (match plus_regression with
      | Some m -> plus_regressions := (case, m) :: !plus_regressions
      | None -> ())
    | Rejected _ -> incr rejected
    | Violation m -> violations := (case, m) :: !violations
    | Crash e ->
      let reproducer = Option.value minimized ~default:case.Gen.source in
      crashes := (case, e, reproducer) :: !crashes
  in
  (match pool with
  | Some pool when Srfa_util.Pool.jobs pool > 1 && cases > 1 ->
    (* Fan the ids out, then merge in id order: the stats and the
       counterexample lists come out byte-identical to the sequential
       campaign. [log] consequently observes completed cases, in id
       order, once the whole campaign has run. *)
    Array.iter merge
      (Srfa_util.Pool.map pool (execute_case ~seed) (Array.init cases Fun.id))
  | _ ->
    for id = 0 to cases - 1 do
      merge (execute_case ~seed id)
    done);
  {
    cases;
    accepted = !accepted;
    degraded = !degraded;
    rejected = !rejected;
    crashes = List.rev !crashes;
    violations = List.rev !violations;
    regressions = List.rev !regressions;
    plus_regressions = List.rev !plus_regressions;
  }

let pp_summary ppf s =
  Format.fprintf ppf
    "%d cases: %d accepted (%d degraded), %d rejected, %d crashes, %d \
     invariant violations, %d comparative regressions, %d cpa+ regressions \
     (%s %d%% tolerance; certified portfolio tolerance is zero)"
    s.cases s.accepted s.degraded s.rejected
    (List.length s.crashes)
    (List.length s.violations)
    (List.length s.regressions)
    (List.length s.plus_regressions)
    (if regressions_ok s then "within" else "OVER")
    regression_tolerance_pct
