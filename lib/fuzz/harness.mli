(** The never-crash oracle for generated kernels.

    Each case goes through the total pipeline
    ({!Srfa_frontend.Parser.parse_result}, then
    {!Srfa_core.Flow.run_checked}) and the outcome is judged against the
    robustness contract:

    - no input may escape as an uncaught exception ({!Crash});
    - a rejection must carry coded diagnostics;
    - a kernel the generator knows to be valid must be accepted;
    - accepted reports satisfy the hard invariants — registers within
      budget, RAM accesses within [\[0, baseline\]] (saved accesses never
      negative), cycle accounting consistent;
    - mask-stress kernels must show the [W-GUARD-MASK] degradation, and
      every guard warning must be mirrored by its trace event
      ([fallback.pr_ra], [guard.mask], [fallback.cycle_model]).

    Comparative invariants come in two strengths. CPA-RA cycles vs FR-RA
    (and CPA+ vs the best greedy baseline) are {e statistical}: the
    paper's claim, not a theorem — on a small fraction of random kernels
    the critical-path model strands or misdirects registers that the
    greedy order spends. Individual counterexamples are counted; a
    campaign only fails when more than 5% of accepted kernels regress.
    The certified {!Srfa_core.Allocator.Portfolio} path, by contrast, is
    never-worse {e by construction} ({!Srfa_core.Certify}), so its
    tolerance is exactly zero: one counterexample is a hard {!Violation}.

    Hard contract breaches are {!Violation}s; crashes are minimised
    before reporting. *)

type outcome =
  | Accepted of {
      warnings : Srfa_util.Diag.t list;
      events : Srfa_util.Trace.event list;
      regression : string option;
          (** [Some _] when CPA-RA simulated worse than FR-RA here *)
      plus_regression : string option;
          (** [Some _] when CPA+ simulated worse than the best greedy
              baseline here *)
    }
  | Rejected of Srfa_util.Diag.t list  (** coded rejection — expected *)
  | Violation of string                (** contract breach, no exception *)
  | Crash of string                    (** uncaught exception — a bug *)

val run_case : Gen.case -> outcome
(** Never raises. *)

val minimize : (string -> bool) -> string -> string
(** [minimize keeps source] greedily deletes source lines while [keeps]
    stays true (ddmin restricted to single-line removal, iterated to a
    fixed point). Returns [source] unchanged when [keeps source] is
    already false. *)

type summary = {
  cases : int;
  accepted : int;
  degraded : int;  (** accepted with at least one guard warning *)
  rejected : int;
  crashes : (Gen.case * string * string) list;
      (** case, exception, minimised reproducer *)
  violations : (Gen.case * string) list;
  regressions : (Gen.case * string) list;
      (** accepted kernels where CPA-RA simulated worse than FR-RA *)
  plus_regressions : (Gen.case * string) list;
      (** accepted kernels where CPA+ simulated worse than the best
          greedy baseline (tracked separately: the stranded-budget fix
          drove this to zero at the pinned seed, and it should stay
          there) *)
}

val run :
  ?cases:int -> ?seed:int -> ?log:(Gen.case -> outcome -> unit) ->
  ?pool:Srfa_util.Pool.t -> unit -> summary
(** [run ~cases ~seed ()] fuzzes [cases] generated kernels (default 200,
    seed 42). [log] observes every case as it completes.

    [pool] fans the case ids out across domains —
    {!Gen.generate}[ ~seed ~id] makes every case an independent,
    order-free function of its id — and merges the per-case outcomes
    back in id order, so the summary (stats, counterexample lists,
    minimised reproducers) is equal to the sequential campaign's. Under
    a pool, [log] observes every case in id order after the campaign
    completes, rather than interleaved with execution. *)

val ok : summary -> bool
(** No crashes, no violations (which covers the certified portfolio's
    exactly-zero invariant), and both statistical regression lists within
    the 5% tolerance. *)

val pp_summary : Format.formatter -> summary -> unit
(** One line, e.g. ["200 cases: 118 accepted (12 degraded), 82 rejected,
    0 crashes, 0 invariant violations, 1 comparative regressions, 0 cpa+
    regressions (within 5% tolerance; certified portfolio tolerance is
    zero)"]. *)
