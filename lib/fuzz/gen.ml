module Prng = Srfa_util.Prng

type kind = Valid | Mask_stress | Broken of string

type case = {
  id : int;
  seed : int;
  kind : kind;
  budget : int;
  source : string;
}

let kind_name = function
  | Valid -> "valid"
  | Mask_stress -> "mask-stress"
  | Broken label -> "broken:" ^ label

(* A kernel kept in structured form until rendering, so defect injection
   can target the right piece (a trip count, a statement, a declaration)
   instead of guessing at character offsets. *)
type spec = {
  loops : (string * int) array;
  decls : string list;   (* rendered declaration lines *)
  stmts : string array;  (* rendered statements, ';'-terminated *)
}

(* One extent for every array dimension. Indices are [c*v + off] with
   [c <= 2], [v <= trip-1 <= 3] and [off <= 2], so 12 covers them all and
   generated kernels pass Nest.make's bounds check by construction. *)
let extent = 12

let render { loops; decls; stmts } =
  let b = Buffer.create 256 in
  Buffer.add_string b "kernel fuzz {\n";
  List.iter (fun d -> Buffer.add_string b ("  " ^ d ^ "\n")) decls;
  Buffer.add_char b '\n';
  Array.iteri
    (fun k (v, n) ->
      Buffer.add_string b
        (Printf.sprintf "%sfor (%s = 0; %s < %d; %s++)\n"
           (String.make (2 * (k + 1)) ' ')
           v v n v))
    loops;
  let pad = String.make (2 * (Array.length loops + 1)) ' ' in
  if Array.length stmts = 1 then Buffer.add_string b (pad ^ stmts.(0) ^ "\n")
  else begin
    Buffer.add_string b (pad ^ "{\n");
    Array.iter (fun s -> Buffer.add_string b (pad ^ "  " ^ s ^ "\n")) stmts;
    Buffer.add_string b (pad ^ "}\n")
  end;
  Buffer.add_string b "}\n";
  Buffer.contents b

let gen_index rng vars =
  match Prng.int rng 4 with
  | 0 -> Prng.pick rng vars
  | 1 -> Printf.sprintf "%s + %d" (Prng.pick rng vars) (1 + Prng.int rng 2)
  | 2 -> Printf.sprintf "2*%s" (Prng.pick rng vars)
  | _ -> string_of_int (Prng.int rng 4)

let gen_ref rng vars name rank =
  name
  ^ String.concat ""
      (List.init rank (fun _ -> "[" ^ gen_index rng vars ^ "]"))

(* [force_x0] pins the first leaf to the first input array, which the
   undeclared-array mutation later renames — a guaranteed defect site. *)
let gen_expr rng inputs vars ~force_x0 =
  let leaf k =
    if k = 0 && force_x0 then
      let name, rank = List.hd inputs in
      gen_ref rng vars name rank
    else if Prng.int rng 10 < 6 then
      let name, rank = Prng.pick rng inputs in
      gen_ref rng vars name rank
    else string_of_int (Prng.int rng 10)
  in
  let e = ref (leaf 0) in
  for k = 1 to Prng.int rng 3 do
    let op = Prng.pick rng [ "+"; "-"; "*" ] in
    e := Printf.sprintf "(%s %s %s)" !e op (leaf k)
  done;
  if Prng.int rng 8 = 0 then
    Printf.sprintf "%s(%s, %d)"
      (Prng.pick rng [ "min"; "max" ])
      !e (Prng.int rng 16)
  else !e

let gen_valid rng =
  let depth = 1 + Prng.int rng 3 in
  let vars = Array.to_list (Array.sub [| "i"; "j"; "k" |] 0 depth) in
  let loops =
    Array.of_list (List.map (fun v -> (v, 2 + Prng.int rng 3)) vars)
  in
  let inputs =
    List.init
      (1 + Prng.int rng 3)
      (fun k -> (Printf.sprintf "x%d" k, 1 + Prng.int rng 2))
  in
  let decls =
    List.map
      (fun (name, rank) ->
        Printf.sprintf "input  int %s%s;" name
          (String.concat ""
             (List.init rank (fun _ -> Printf.sprintf "[%d]" extent))))
      inputs
    @ [ Printf.sprintf "output int y[%d];" extent ]
  in
  let stmts =
    Array.init
      (1 + Prng.int rng 3)
      (fun s ->
        Printf.sprintf "%s %s %s;" (gen_ref rng vars "y" 1)
          (if Prng.bool rng then "=" else "+=")
          (gen_expr rng inputs vars ~force_x0:(s = 0)))
  in
  { loops; decls; stmts }

(* More reference groups than the simulator's bitmask cap (60), over a
   tiny iteration space: every x[k] is its own group. *)
let gen_mask rng =
  let n = 64 + Prng.int rng 8 in
  let sum =
    let term k = Printf.sprintf "x[%d]" k in
    let rec fold acc k =
      if k = n then acc
      else fold (Printf.sprintf "(%s + %s)" acc (term k)) (k + 1)
    in
    fold (term 0) 1
  in
  ( Printf.sprintf
      "kernel wide {\n\
      \  input  int x[%d];\n\
      \  output int y[2];\n\n\
      \  for (i = 0; i < 2; i++)\n\
      \    y[i] = %s;\n\
       }\n"
      n sum,
    n + 4 )

let replace_first s pat repl =
  let n = String.length s and m = String.length pat in
  let rec find i =
    if i + m > n then None
    else if String.sub s i m = pat then Some i
    else find (i + 1)
  in
  match find 0 with
  | None -> s
  | Some i -> String.sub s 0 i ^ repl ^ String.sub s (i + m) (n - i - m)

let mutate rng spec =
  let labels =
    [
      "zero-trip"; "oob-index"; "undeclared-array"; "rank-mismatch";
      "garbage-char"; "truncate"; "unterminated-comment"; "starved-budget";
    ]
    @ (if Array.length spec.loops >= 2 then [ "dup-var" ] else [])
  in
  let label = Prng.pick rng labels in
  let pick_stmt () = Prng.int rng (Array.length spec.stmts) in
  let with_stmt k f =
    let stmts = Array.copy spec.stmts in
    stmts.(k) <- f stmts.(k);
    render { spec with stmts }
  in
  let source, budget =
    match label with
    | "zero-trip" ->
      let loops = Array.copy spec.loops in
      let k = Prng.int rng (Array.length loops) in
      loops.(k) <- (fst loops.(k), 0);
      (render { spec with loops }, 64)
    | "oob-index" ->
      (* push the first index of some statement past every extent *)
      ( with_stmt (pick_stmt ()) (fun stmt ->
            let close = String.index stmt ']' in
            String.sub stmt 0 close ^ " + 100"
            ^ String.sub stmt close (String.length stmt - close)),
        64 )
    | "undeclared-array" ->
      (with_stmt 0 (fun stmt -> replace_first stmt "x0" "zz"), 64)
    | "rank-mismatch" ->
      (* y is rank 1; the written ref becomes y[...][0] *)
      ( with_stmt (pick_stmt ()) (fun stmt ->
            let close = String.index stmt ']' in
            String.sub stmt 0 (close + 1)
            ^ "[0]"
            ^ String.sub stmt (close + 1) (String.length stmt - close - 1)),
        64 )
    | "dup-var" ->
      let loops = Array.copy spec.loops in
      loops.(1) <- (fst loops.(0), snd loops.(1));
      (render { spec with loops }, 64)
    | "garbage-char" ->
      let src = render spec in
      let pos = 1 + Prng.int rng (String.length src - 1) in
      ( String.sub src 0 pos
        ^ String.make 1 (Prng.pick rng [ '?'; '$'; '@' ])
        ^ String.sub src pos (String.length src - pos),
        64 )
    | "truncate" ->
      let src = render spec in
      (String.sub src 0 (1 + Prng.int rng (String.length src - 1)), 64)
    | "unterminated-comment" -> (render spec ^ "/* dangling", 64)
    | _ -> (render spec, 1) (* starved-budget: valid source, budget 1 *)
  in
  (label, source, budget)

(* ---- budget-event streams ---------------------------------------------

   Fuzz input for the dynamic re-budgeting path (Flow.Core.rebudget):
   a named library kernel plus a stream of absolute budget targets
   mixing shrinks, grows, no-ops (the previous target repeated) and
   deliberately starved targets below any kernel's feasibility minimum,
   so the differential harness exercises the clamp rule too. Kernel
   names are plain strings — resolving them against Srfa_kernels is the
   consumer's job, which keeps this library's dependencies unchanged. *)

type stream = {
  stream_id : int;
  stream_seed : int;
  kernel : string;
  initial : int;
  events : int list;
}

let stream_kernels =
  [ "example"; "fir"; "dec-fir"; "imi"; "mat"; "pat"; "bic" ]

let stream_ladder = [ 4; 6; 8; 12; 16; 24; 32; 48; 64; 96; 128 ]

(* Streams are decorrelated from the kernel-source cases above by
   folding a salt into the campaign seed before splitting by id; the
   same (seed, id) pair otherwise names both a case and a stream. *)
let stream_salt = 0x5eb

let generate_stream ~seed ~id =
  let stream_seed = Prng.mix (Prng.mix seed stream_salt) id in
  let rng = Prng.split (Prng.create ~seed:(Prng.mix seed stream_salt)) id in
  let kernel = Prng.pick rng stream_kernels in
  let initial = Prng.pick rng [ 8; 16; 32; 64; 128 ] in
  let n = 6 + Prng.int rng 11 in
  let last = ref initial in
  let events =
    List.init n (fun _ ->
        let target =
          match Prng.int rng 10 with
          | 0 | 1 -> !last (* no-op: the previous target again *)
          | 2 -> 1 + Prng.int rng 3 (* starved: below every minimum *)
          | _ -> Prng.pick rng stream_ladder
        in
        last := target;
        target)
  in
  { stream_id = id; stream_seed; kernel; initial; events }

(* Each case's stream is Prng.split of the campaign generator by case
   id — order-independent by construction, which is what lets a pool
   deal case ids to domains in any order and still regenerate the exact
   sequential campaign. The recorded per-case seed is the same hash-mix
   (Prng.mix) so a replay line identifies the stream. *)
let generate ~seed ~id =
  let case_seed = Prng.mix seed id in
  let rng = Prng.split (Prng.create ~seed) id in
  let roll = Prng.int rng 10 in
  let kind, source, budget =
    if roll < 5 then
      let spec = gen_valid rng in
      (Valid, render spec, Prng.pick rng [ 16; 32; 64 ])
    else if roll = 5 then
      let source, budget = gen_mask rng in
      (Mask_stress, source, budget)
    else
      let label, source, budget = mutate rng (gen_valid rng) in
      (Broken label, source, budget)
  in
  { id; seed = case_seed; kind; budget; source }
