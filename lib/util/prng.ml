type t = { mutable state : int64 }

let create ~seed =
  let s = if seed = 0 then 0x1E3779B97F4A7C15 else seed in
  { state = Int64.of_int s }

(* xorshift64*: good-enough statistical quality for workload generation. *)
let next t =
  let open Int64 in
  let x = t.state in
  let x = logxor x (shift_left x 13) in
  let x = logxor x (shift_right_logical x 7) in
  let x = logxor x (shift_left x 17) in
  t.state <- x;
  mul x 0x2545F4914F6CDD1DL

(* Knuth's multiplicative hash over the index keeps sibling streams far
   apart even for adjacent indices; the lxor folds the parent state in. *)
let mix seed index = seed lxor ((index + 1) * 2654435761)

let split t index = create ~seed:(mix (Int64.to_int t.state) index)

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  let v = Int64.to_int (Int64.shift_right_logical (next t) 2) in
  v mod bound

let bool t = Int64.logand (next t) 1L = 1L

let float t bound =
  let v = Int64.to_float (Int64.shift_right_logical (next t) 11) in
  bound *. (v /. 9007199254740992.0)

let pick t = function
  | [] -> invalid_arg "Prng.pick: empty list"
  | xs -> List.nth xs (int t (List.length xs))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
