type value =
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of value list

type event = { name : string; fields : (string * value) list }

type sink = Null | Fn of (event -> unit)

let null = Null
let enabled = function Null -> false | Fn _ -> true
let make f = Fn f
let emit sink thunk = match sink with Null -> () | Fn f -> f (thunk ())
let event name fields = { name; fields }

(* Collectors are shared across domains (a sweep worker and the
   event-model second opinion can emit into the same sink), so the event
   list is mutex-guarded. Uncontended lock/unlock is nanoseconds —
   nothing next to building an event — and the null sink still costs
   zero. *)
let collector () =
  let acc = ref [] in
  let m = Mutex.create () in
  let push e =
    Mutex.lock m;
    acc := e :: !acc;
    Mutex.unlock m
  in
  let events () =
    Mutex.lock m;
    let es = !acc in
    Mutex.unlock m;
    List.rev es
  in
  (Fn push, events)

(* Per-task buffering for deterministic parallel traces: each task owns
   its buffer (single-domain, no lock needed), and the coordinator
   splices the buffers into the real sink in task order once the tasks
   have been joined — the splice order, not the execution order, is what
   the stream shows. *)
let buffered () =
  let acc = ref [] in
  let sink = Fn (fun e -> acc := e :: !acc) in
  let splice target =
    List.iter (fun e -> emit target (fun () -> e)) (List.rev !acc)
  in
  (sink, splice)

(* ---- JSON rendering --------------------------------------------------- *)

let escape_into buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec value_into buf = function
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
    if Float.is_finite f then Buffer.add_string buf (Printf.sprintf "%.6g" f)
    else Buffer.add_string buf "null"
  | String s -> escape_into buf s
  | List vs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun k v ->
        if k > 0 then Buffer.add_string buf ", ";
        value_into buf v)
      vs;
    Buffer.add_char buf ']'

let to_json e =
  let buf = Buffer.create 128 in
  Buffer.add_string buf "{\"event\": ";
  escape_into buf e.name;
  List.iter
    (fun (k, v) ->
      Buffer.add_string buf ", ";
      escape_into buf k;
      Buffer.add_string buf ": ";
      value_into buf v)
    e.fields;
  Buffer.add_char buf '}';
  Buffer.contents buf

let channel oc =
  Fn
    (fun e ->
      output_string oc (to_json e);
      output_char oc '\n')

let summary events =
  match events with
  | [] -> "no events"
  | _ ->
    (* Count by name, preserving first-appearance order. *)
    let order = ref [] in
    let counts = Hashtbl.create 8 in
    List.iter
      (fun e ->
        match Hashtbl.find_opt counts e.name with
        | Some n -> Hashtbl.replace counts e.name (n + 1)
        | None ->
          Hashtbl.add counts e.name 1;
          order := e.name :: !order)
      events;
    let parts =
      List.rev_map
        (fun name -> Printf.sprintf "%d %s" (Hashtbl.find counts name) name)
        !order
    in
    Printf.sprintf "%d events: %s" (List.length events)
      (String.concat ", " parts)
