(** Dense bitsets over a fixed integer range.

    One machine word stores [Sys.int_size] members, so membership tests,
    insertions and removals are single word operations. The graph layers use
    these for O(1) "seen"/"forbidden"/"is a sink" tests in DFS loops that
    previously scanned lists. *)

type t

val create : int -> t
(** [create capacity] is the empty set over [\[0, capacity)].
    @raise Invalid_argument when [capacity < 0]. *)

val capacity : t -> int

val add : t -> int -> unit
val remove : t -> int -> unit

val mem : t -> int -> bool
(** Membership in one AND and one shift.
    @raise Invalid_argument outside [\[0, capacity)] (as do {!add} and
    {!remove}). *)

val clear : t -> unit
(** Remove every member (no allocation). *)

val is_empty : t -> bool

val cardinal : t -> int
(** Population count, one word at a time. *)

val iter : (int -> unit) -> t -> unit
(** Members in ascending order. *)

val of_list : int -> int list -> t
val to_list : t -> int list
