type severity = Warning | Error | Fatal

type span = { line : int; col : int }

type t = {
  code : string;
  severity : severity;
  message : string;
  span : span option;
  context : (string * string) list;
}

let make ?(severity = Error) ?span ?(context = []) ~code message =
  { code; severity; message; span; context }

let warning ?span ?context ~code message =
  make ~severity:Warning ?span ?context ~code message

let severity_name = function
  | Warning -> "warning"
  | Error -> "error"
  | Fatal -> "fatal"

(* The frontend prefixes positions as "line %d, column %d: ..." (see
   Lexer.fail and Parser.fail). [split_span] peels that prefix off so the
   span lives in the record and the message stays position-free. *)
let split_span msg =
  let scan () =
    Scanf.sscanf msg "line %d, column %d: %n" (fun line col ofs ->
        (Some { line; col }, String.sub msg ofs (String.length msg - ofs)))
  in
  match scan () with
  | result -> result
  | exception (Scanf.Scan_failure _ | Failure _ | End_of_file) -> (None, msg)

let span_of_message msg = fst (split_span msg)

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec at i = i + n <= m && (String.sub s i n = sub || at (i + 1)) in
  n = 0 || at 0

let has_prefix ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let of_lexer_error msg =
  let span, body = split_span msg in
  let code =
    if contains ~sub:"unexpected character" body then "E-LEX-001"
    else if contains ~sub:"malformed number" body then "E-LEX-002"
    else if contains ~sub:"unterminated comment" body then "E-LEX-003"
    else if contains ~sub:"unsupported integer width" body then "E-LEX-004"
    else "E-LEX-001"
  in
  make ?span ~code body

let of_parser_error msg =
  let span, body = split_span msg in
  let code =
    if
      contains ~sub:"undeclared array" body
      || contains ~sub:"unknown function" body
      || contains ~sub:"not an enclosing loop variable" body
    then "E-PARSE-002"
    else if contains ~sub:"has rank" body then "E-PARSE-003"
    else if
      contains ~sub:"must be positive" body
      || contains ~sub:"loops must start at 0" body
    then "E-PARSE-004"
    else if
      contains ~sub:"declared twice" body
      || contains ~sub:"reused" body
      || contains ~sub:"collides" body
    then "E-PARSE-005"
    else if
      contains ~sub:"has no loop" body || contains ~sub:"empty loop body" body
    then "E-PARSE-006"
    else "E-PARSE-001"
  in
  make ?span ~code body

let of_invalid_arg msg =
  if has_prefix ~prefix:"nest " msg || has_prefix ~prefix:"Nest." msg then
    make ~code:"E-SEM-001" msg
  else if has_prefix ~prefix:"Interp." msg then make ~code:"E-SEM-002" msg
  else if
    has_prefix ~prefix:"Analysis" msg
    || has_prefix ~prefix:"Group" msg
    || has_prefix ~prefix:"Iterspace" msg
    || has_prefix ~prefix:"Allocation" msg
  then make ~code:"E-SEM-003" msg
  else if has_prefix ~prefix:"allocator: budget" msg then
    make ~code:"E-BUDGET-001" msg
  else if has_prefix ~prefix:"Event_model" msg then
    make ~code:"E-SCHED-DIVERGE" msg
  else if has_prefix ~prefix:"Simulator" msg then make ~code:"E-SIM-001" msg
  else if contains ~sub:"dependency cycle" msg then make ~code:"E-DFG-001" msg
  else if has_prefix ~prefix:"Flownet" msg || has_prefix ~prefix:"Cut" msg then
    make ~code:"E-CUT-001" msg
  else make ~severity:Fatal ~code:"E-INTERNAL-001" msg

let of_exn = function
  | Invalid_argument msg -> of_invalid_arg msg
  | Failure msg -> make ~severity:Fatal ~code:"E-INTERNAL-003" msg
  | Sys_error msg -> make ~code:"E-IO-001" msg
  | Not_found ->
    make ~severity:Fatal ~code:"E-INTERNAL-002"
      "lookup failed without naming the missing key (bare Not_found)"
  | Stack_overflow ->
    make ~severity:Fatal ~code:"E-RESOURCE-001" "stack overflow"
  | Out_of_memory ->
    make ~severity:Fatal ~code:"E-RESOURCE-001" "out of memory"
  | exn -> make ~severity:Fatal ~code:"E-INTERNAL-002" (Printexc.to_string exn)

let exit_code diags =
  let worst rank d =
    max rank (match d.severity with Warning -> 0 | Error -> 2 | Fatal -> 3)
  in
  List.fold_left worst 0 diags

let pp ppf d =
  Format.fprintf ppf "%s[%s]" (severity_name d.severity) d.code;
  (match d.span with
  | Some { line; col } -> Format.fprintf ppf " line %d, column %d:" line col
  | None -> ());
  Format.fprintf ppf " %s" d.message;
  match d.context with
  | [] -> ()
  | kvs ->
    let item ppf (k, v) = Format.fprintf ppf "%s=%s" k v in
    Format.fprintf ppf " (%a)"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
         item)
      kvs

let to_string d = Format.asprintf "%a" pp d

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json d =
  let buf = Buffer.create 128 in
  Buffer.add_string buf
    (Printf.sprintf "{\"code\": \"%s\", \"severity\": \"%s\", \"message\": \"%s\""
       (json_escape d.code)
       (severity_name d.severity)
       (json_escape d.message));
  (match d.span with
  | Some { line; col } ->
    Buffer.add_string buf
      (Printf.sprintf ", \"line\": %d, \"column\": %d" line col)
  | None -> ());
  (match d.context with
  | [] -> ()
  | kvs ->
    Buffer.add_string buf ", \"context\": {";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_string buf ", ";
        Buffer.add_string buf
          (Printf.sprintf "\"%s\": \"%s\"" (json_escape k) (json_escape v)))
      kvs;
    Buffer.add_string buf "}");
  Buffer.add_string buf "}";
  Buffer.contents buf
