(** Fixed-width text tables for benchmark and report output.

    The bench harness prints the paper's Table 1 as aligned text; this module
    does the column sizing so every printer produces consistent output. *)

type align = Left | Right

type t

val create : headers:(string * align) list -> t
(** [create ~headers] starts a table whose columns are labelled and aligned
    as given. *)

val add_row : t -> string list -> unit
(** [add_row t cells] appends a row. Rows shorter than the header are padded
    with empty cells; longer rows raise [Invalid_argument]. *)

val add_separator : t -> unit
(** Inserts a horizontal rule between the rows added before and after. *)

val render : t -> string
(** Renders the table, one trailing newline included. *)

val print : t -> unit
(** [print t] writes [render t] to stdout. *)
