type t = { words : int array; capacity : int }

let bits = Sys.int_size

let create capacity =
  if capacity < 0 then invalid_arg "Bitset.create: negative capacity";
  { words = Array.make ((capacity + bits - 1) / bits) 0; capacity }

let capacity t = t.capacity

let check t i op =
  if i < 0 || i >= t.capacity then
    invalid_arg (Printf.sprintf "Bitset.%s: %d outside [0, %d)" op i t.capacity)

let add t i =
  check t i "add";
  t.words.(i / bits) <- t.words.(i / bits) lor (1 lsl (i mod bits))

let remove t i =
  check t i "remove";
  t.words.(i / bits) <- t.words.(i / bits) land lnot (1 lsl (i mod bits))

let mem t i =
  check t i "mem";
  t.words.(i / bits) land (1 lsl (i mod bits)) <> 0

let clear t = Array.fill t.words 0 (Array.length t.words) 0

let is_empty t = Array.for_all (fun w -> w = 0) t.words

let popcount w =
  let rec go w acc = if w = 0 then acc else go (w lsr 1) (acc + (w land 1)) in
  go w 0

let cardinal t = Array.fold_left (fun acc w -> acc + popcount w) 0 t.words

let iter f t =
  Array.iteri
    (fun wi w ->
      if w <> 0 then
        for b = 0 to bits - 1 do
          if w land (1 lsl b) <> 0 then f ((wi * bits) + b)
        done)
    t.words

let of_list capacity xs =
  let t = create capacity in
  List.iter (add t) xs;
  t

let to_list t =
  let acc = ref [] in
  iter (fun i -> acc := i :: !acc) t;
  List.rev !acc
