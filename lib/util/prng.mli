(** A small deterministic pseudo-random number generator (xorshift64-star).

    Workload generators and property tests need reproducible streams that do
    not depend on the global [Random] state. *)

type t

val create : seed:int -> t
(** [create ~seed] makes an independent generator. A seed of [0] is replaced
    by a fixed non-zero constant (xorshift has an all-zero fixed point). *)

val mix : int -> int -> int
(** [mix seed index] hash-mixes a seed with an index (Knuth
    multiplicative hash, folded in with xor) — the pure-integer core of
    {!split}, exposed so callers can record the derived seed. *)

val split : t -> int -> t
(** [split t index] derives an independent child generator by
    {!mix}-ing [t]'s current state with [index]; [t] itself is not
    advanced. Children for distinct indices are decorrelated streams, so
    per-index work (one fuzz case, one shard) is order-independent by
    construction: [split t i] is the same stream whether the siblings
    were drawn before it, after it, or concurrently. *)

val int : t -> int -> int
(** [int t bound] returns a uniform value in [\[0, bound)].
    @raise Invalid_argument if [bound <= 0]. *)

val bool : t -> bool

val float : t -> float -> float
(** [float t bound] returns a uniform float in [\[0, bound)]. *)

val pick : t -> 'a list -> 'a
(** Uniform choice from a non-empty list. @raise Invalid_argument on []. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
