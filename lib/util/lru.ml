(* Doubly-linked recency list threaded through a hash table. The list
   head is the most recently used entry, the tail the eviction victim;
   every operation is O(1) apart from eviction cascades, which are paid
   for by the entries they remove. *)

type 'v node = {
  key : string;
  mutable value : 'v;
  mutable cost : int;
  mutable prev : 'v node option;
  mutable next : 'v node option;
}

type 'v t = {
  capacity : int;
  table : (string, 'v node) Hashtbl.t;
  mutable head : 'v node option;
  mutable tail : 'v node option;
  mutable used : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let create ~capacity =
  {
    capacity;
    table = Hashtbl.create 64;
    head = None;
    tail = None;
    used = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let capacity t = t.capacity
let length t = Hashtbl.length t.table
let used t = t.used
let hits t = t.hits
let misses t = t.misses
let evictions t = t.evictions

let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.head <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.head;
  n.prev <- None;
  (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

let find t k =
  match Hashtbl.find_opt t.table k with
  | None ->
    t.misses <- t.misses + 1;
    None
  | Some n ->
    t.hits <- t.hits + 1;
    unlink t n;
    push_front t n;
    Some n.value

let mem t k = Hashtbl.mem t.table k

let drop t n =
  unlink t n;
  Hashtbl.remove t.table n.key;
  t.used <- t.used - n.cost

let remove t k =
  match Hashtbl.find_opt t.table k with None -> () | Some n -> drop t n

(* Evict from the tail until the budget holds again. The newly inserted
   node is not exempt: over-capacity values fall straight out, which is
   what makes the zero-capacity degenerate cache a plain pass-through. *)
let rebalance t =
  let budget = max 0 t.capacity in
  let rec go acc =
    if t.used <= budget then acc
    else
      match t.tail with
      | None -> acc
      | Some n ->
        drop t n;
        t.evictions <- t.evictions + 1;
        go ((n.key, n.value) :: acc)
  in
  (* The tail is dropped first, so reversing yields coldest first. *)
  List.rev (go [])

let add t k ~cost v =
  let cost = max 0 cost in
  (match Hashtbl.find_opt t.table k with
  | Some n ->
    t.used <- t.used - n.cost + cost;
    n.value <- v;
    n.cost <- cost;
    unlink t n;
    push_front t n
  | None ->
    let n = { key = k; value = v; cost; prev = None; next = None } in
    Hashtbl.add t.table k n;
    t.used <- t.used + cost;
    push_front t n);
  rebalance t

let to_alist t =
  let rec go acc = function
    | None -> List.rev acc
    | Some n -> go ((n.key, n.value) :: acc) n.next
  in
  go [] t.head
