(** A fixed-size domain pool for deterministic fan-out.

    The three heavy drivers (the sweep batch driver, the fuzz campaign
    and the bench harness) walk independent work-lists; this pool lets
    them walk N items at a time on OCaml 5's multicore runtime while
    keeping the {e results} — and, with {!Trace.buffered}, the trace
    streams — byte-identical to the sequential walk. Built on stdlib
    [Domain] + [Mutex]/[Condition] only; this module is the single place
    the tree requires the OCaml 5 runtime (OCaml 4 dies loudly here, at
    [Domain], and nowhere else).

    Determinism contract: {!map} preserves input order, and a task's
    only channel back to the caller is its return value (plus whatever
    per-task buffers the caller splices afterwards). Tasks must not
    share mutable state unless it is synchronised — see
    {!Trace.collector}, which is. *)

type t

val create : jobs:int -> t
(** [create ~jobs] spawns [max 0 (min jobs 64)] worker domains when
    [jobs > 1]; [jobs <= 1] spawns none and {!map} degrades to the plain
    sequential [Array.map]. [create] does {e not} clamp to the machine —
    that policy lives in {!resolve} so tests can exercise real
    multi-domain pools on any host. *)

val jobs : t -> int
(** The worker count the pool was created with (at least 1). *)

val map : t -> ('a -> 'b) -> 'a array -> 'b array
(** [map t f xs] applies [f] to every element, returning results in
    input order. With [jobs t <= 1] (or fewer than two elements) this is
    exactly [Array.map f xs]. Otherwise the elements are dealt to the
    worker domains; if any [f] raises, [map] waits for the remaining
    tasks and re-raises the exception of the {e lowest} failing index
    (the one the sequential walk would have hit first). Do not call
    [map] from inside a task of the same pool — the worker would wait
    on itself. *)

val shutdown : t -> unit
(** Terminate and join the workers. Idempotent. A pool is unusable after
    [shutdown]; {!map} on it raises [Invalid_argument]. *)

val with_pool : jobs:int -> (t -> 'a) -> 'a
(** [with_pool ~jobs f] brackets [f] between {!create} and {!shutdown}
    (shutdown runs on exceptions too). *)

val recommended : unit -> int
(** [Domain.recommended_domain_count ()] — the clamp {!resolve} applies. *)

val resolve : ?requested:int -> ?env:string -> unit -> int * Diag.t list
(** Resolve the parallelism level a driver should use, in priority
    order: [requested] (a [-j N] flag), then [env] (default: the
    [SRFA_JOBS] environment variable; an unparseable value is ignored),
    then {!recommended}. Asking for more domains than {!recommended}
    clamps to it instead of oversubscribing and returns a [W-GUARD-JOBS]
    warning diagnostic; values below 1 clamp to 1 silently. *)
