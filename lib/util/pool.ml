(* The one module in the tree that requires the OCaml 5 runtime: worker
   domains pulling thunks off a mutex/condition work queue. Everything
   above it (sweep, fuzz, bench) only sees [map], which is contractually
   indistinguishable from Array.map. *)

type t = {
  jobs : int;
  mutex : Mutex.t;
  has_work : Condition.t;
  queue : (unit -> unit) Queue.t;
  mutable stop : bool;
  mutable workers : unit Domain.t list;
}

let jobs t = t.jobs

let worker t =
  let rec loop () =
    Mutex.lock t.mutex;
    while Queue.is_empty t.queue && not t.stop do
      Condition.wait t.has_work t.mutex
    done;
    match Queue.take_opt t.queue with
    | Some task ->
      Mutex.unlock t.mutex;
      task ();
      loop ()
    | None ->
      (* stop && empty: drain before dying so shutdown never strands a
         submitted task. *)
      Mutex.unlock t.mutex
  in
  loop ()

let create ~jobs =
  let jobs = max 1 (min jobs 64) in
  let t =
    {
      jobs;
      mutex = Mutex.create ();
      has_work = Condition.create ();
      queue = Queue.create ();
      stop = false;
      workers = [];
    }
  in
  if jobs > 1 then
    t.workers <- List.init jobs (fun _ -> Domain.spawn (fun () -> worker t));
  t

let shutdown t =
  Mutex.lock t.mutex;
  t.stop <- true;
  Condition.broadcast t.has_work;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.workers;
  t.workers <- []

let with_pool ~jobs f =
  let t = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let map t f xs =
  let n = Array.length xs in
  if t.jobs <= 1 || n <= 1 then Array.map f xs
  else begin
    if t.stop then invalid_arg "Pool.map: pool is shut down";
    let results = Array.make n None in
    let failed : (int * exn) option ref = ref None in
    let done_mutex = Mutex.create () in
    let all_done = Condition.create () in
    let remaining = ref n in
    let finish () =
      Mutex.lock done_mutex;
      decr remaining;
      if !remaining = 0 then Condition.signal all_done;
      Mutex.unlock done_mutex
    in
    let task i () =
      (try results.(i) <- Some (f xs.(i))
       with exn ->
         (* Keep the failure of the lowest index: the one the sequential
            walk would have raised. *)
         Mutex.lock done_mutex;
         (match !failed with
         | Some (j, _) when j < i -> ()
         | _ -> failed := Some (i, exn));
         Mutex.unlock done_mutex);
      finish ()
    in
    Mutex.lock t.mutex;
    for i = 0 to n - 1 do
      Queue.add (task i) t.queue
    done;
    Condition.broadcast t.has_work;
    Mutex.unlock t.mutex;
    Mutex.lock done_mutex;
    while !remaining > 0 do
      Condition.wait all_done done_mutex
    done;
    Mutex.unlock done_mutex;
    match !failed with
    | Some (_, exn) -> raise exn
    | None ->
      Array.map
        (function
          | Some r -> r
          | None -> invalid_arg "Pool.map: task finished without a result")
        results
  end

let recommended () = Domain.recommended_domain_count ()

let resolve ?requested ?env () =
  let env =
    match env with Some s -> Some s | None -> Sys.getenv_opt "SRFA_JOBS"
  in
  let asked =
    match requested with
    | Some j -> Some j
    | None -> Option.bind env (fun s -> int_of_string_opt (String.trim s))
  in
  let cap = recommended () in
  match asked with
  | None -> (cap, [])
  | Some j when j < 1 -> (1, [])
  | Some j when j > cap ->
    ( cap,
      [
        Diag.warning ~code:"W-GUARD-JOBS"
          (Printf.sprintf
             "%d domains requested but this machine recommends %d; clamping \
              instead of oversubscribing"
             j cap)
          ~context:
            [
              ("requested", string_of_int j);
              ("recommended", string_of_int cap);
            ];
      ] )
  | Some j -> (j, [])
