exception Cycle of int

(* Colours for the DFS: 0 = unvisited, 1 = on stack, 2 = done. *)
let sort ~n ~succs =
  let colour = Array.make n 0 in
  let order = ref [] in
  let rec visit u =
    match colour.(u) with
    | 1 -> raise (Cycle u)
    | 2 -> ()
    | _ ->
      colour.(u) <- 1;
      List.iter visit (succs u);
      colour.(u) <- 2;
      order := u :: !order
  in
  for u = 0 to n - 1 do
    visit u
  done;
  !order

let sort_labeled ?(what = "Toposort.sort_labeled") ~n ~succs ~label () =
  try sort ~n ~succs
  with Cycle u ->
    invalid_arg (Printf.sprintf "%s: dependency cycle through %s" what (label u))

let levels ~n ~succs =
  let order = sort ~n ~succs in
  let level = Array.make n 0 in
  let bump u =
    let l = level.(u) in
    let raise_succ v = if level.(v) < l + 1 then level.(v) <- l + 1 in
    List.iter raise_succ (succs u)
  in
  List.iter bump order;
  level

let reachable ~n ~succs seeds =
  let seen = Array.make n false in
  let rec visit u =
    if not seen.(u) then begin
      seen.(u) <- true;
      List.iter visit (succs u)
    end
  in
  List.iter visit seeds;
  seen
