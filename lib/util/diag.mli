(** Typed diagnostics.

    Every failure the pipeline can surface — a lexer error, an infeasible
    budget, a tripped resource guard — is reported as one {!t}: a stable
    error code (the contract scripts and tests match on), a severity, a
    human message, the source span when one is known, and a flat context
    payload. The full code registry and the severity-to-exit-code mapping
    are documented in DESIGN.md §10.

    The module also owns the exception boundary: {!of_exn} classifies the
    exceptions the library layers raise ([Invalid_argument], [Failure],
    [Not_found], [Sys_error], [Stack_overflow], ...) into coded
    diagnostics, so [Flow.run_checked] and the CLI never re-implement the
    mapping. *)

type severity =
  | Warning  (** degraded but answered, e.g. a guard fallback *)
  | Error    (** the input is at fault; no report *)
  | Fatal    (** the library is at fault (internal invariant, resources) *)

type span = { line : int; col : int }

type t = {
  code : string;  (** stable, e.g. ["E-PARSE-001"], ["W-GUARD-CUT"] *)
  severity : severity;
  message : string;
  span : span option;
  context : (string * string) list;  (** payload, e.g. [("kernel", "fir")] *)
}

val make :
  ?severity:severity -> ?span:span -> ?context:(string * string) list ->
  code:string -> string -> t
(** [make ~code msg] builds a diagnostic; severity defaults to [Error]. *)

val warning :
  ?span:span -> ?context:(string * string) list -> code:string -> string -> t

val severity_name : severity -> string
(** ["warning"], ["error"], ["fatal"]. *)

val span_of_message : string -> span option
(** Recover a {!span} from the frontend's ["line %d, column %d: ..."]
    message prefix (the lexer and parser both use it); [None] when the
    message carries no position. *)

val of_lexer_error : string -> t
(** Classify a {!Srfa_frontend.Lexer.Error} message into an [E-LEX-*]
    code, extracting the span. *)

val of_parser_error : string -> t
(** Classify a {!Srfa_frontend.Parser.Error} message into an [E-PARSE-*]
    code, extracting the span. *)

val of_invalid_arg : string -> t
(** Classify an [Invalid_argument] message by its module prefix
    (["nest ..."] is semantic validation, ["allocator: budget ..."] is
    [E-BUDGET-001], and so on; see DESIGN.md §10 for the table). *)

val of_exn : exn -> t
(** The generic exception boundary. Knows [Invalid_argument], [Failure],
    [Not_found], [Sys_error], [Stack_overflow] and [Out_of_memory];
    anything else becomes a [Fatal] [E-INTERNAL-002] carrying
    [Printexc.to_string]. Never raises. *)

val exit_code : t list -> int
(** Process exit code for a diagnostic set: [0] when nothing is worse than
    a warning, [2] for errors, [3] for fatals. *)

val pp : Format.formatter -> t -> unit
(** [error[E-PARSE-001] line 3, column 9: message (key=value, ...)]. *)

val to_string : t -> string

val to_json : t -> string
(** One diagnostic as a single-line JSON object. *)
