(* Flat-array scratch structures for the allocation-free hot core.

   Both tables are open-addressed (linear probing, power-of-two capacity)
   over plain int arrays, with an O(1) generation-stamp [reset]: a slot is
   live only when its stamp equals the current generation, so clearing a
   table between uses touches one counter instead of the arrays. After
   warm-up (once the arrays have grown to their high-water mark) every
   operation is allocation-free — no options, no boxed buckets, no
   rehash-on-reset. *)

let initial_capacity = 16

(* Fibonacci hashing; keys may be any int (negative included) because
   liveness is carried by the stamp, not by a reserved key value. *)
let hash k = (k * 0x2545F4914F6CDD1D) lsr 12

module Table = struct
  type t = {
    mutable keys : int array;
    mutable vals : int array;
    mutable stamp : int array;
    mutable mask : int; (* capacity - 1, capacity a power of two *)
    mutable live : int;
    mutable gen : int;
  }

  let create ?(capacity = initial_capacity) () =
    let rec pow2 c = if c >= capacity then c else pow2 (c * 2) in
    let cap = pow2 initial_capacity in
    {
      keys = Array.make cap 0;
      vals = Array.make cap 0;
      stamp = Array.make cap 0;
      mask = cap - 1;
      live = 0;
      gen = 1;
    }

  let reset t =
    t.gen <- t.gen + 1;
    t.live <- 0

  (* The probe loops are written with [while] and an index cell rather
     than a local recursive function: a [let rec] closure would be a heap
     allocation per call — exactly the traffic this module exists to
     remove. The index refs compile to registers (non-escaping refs are
     unboxed by the middle end). *)
  let find t k ~default =
    let mask = t.mask in
    let i = ref (hash k land mask) in
    let result = ref default in
    let continue_ = ref true in
    while !continue_ do
      if t.stamp.(!i) <> t.gen then continue_ := false
      else if t.keys.(!i) = k then begin
        result := t.vals.(!i);
        continue_ := false
      end
      else i := (!i + 1) land mask
    done;
    !result

  let rec set t k v =
    let mask = t.mask in
    let i = ref (hash k land mask) in
    let continue_ = ref true in
    while !continue_ do
      if t.stamp.(!i) <> t.gen then begin
        if 2 * (t.live + 1) > mask + 1 then begin
          grow t;
          set t k v
        end
        else begin
          t.keys.(!i) <- k;
          t.vals.(!i) <- v;
          t.stamp.(!i) <- t.gen;
          t.live <- t.live + 1
        end;
        continue_ := false
      end
      else if t.keys.(!i) = k then begin
        t.vals.(!i) <- v;
        continue_ := false
      end
      else i := (!i + 1) land mask
    done

  and grow t =
    let old_keys = t.keys
    and old_vals = t.vals
    and old_stamp = t.stamp
    and old_gen = t.gen in
    let cap = 2 * (t.mask + 1) in
    t.keys <- Array.make cap 0;
    t.vals <- Array.make cap 0;
    t.stamp <- Array.make cap 0;
    t.mask <- cap - 1;
    t.live <- 0;
    t.gen <- 1;
    Array.iteri
      (fun i s -> if s = old_gen then set t old_keys.(i) old_vals.(i))
      old_stamp

  let cardinal t = t.live

  let iter t f =
    Array.iteri (fun i s -> if s = t.gen then f t.keys.(i) t.vals.(i)) t.stamp
end

module Set = struct
  type t = Table.t

  let create = Table.create
  let reset = Table.reset
  let mem t k = Table.find t k ~default:0 = 1

  let add t k =
    let fresh = Table.find t k ~default:0 = 0 in
    if fresh then Table.set t k 1;
    fresh

  let cardinal = Table.cardinal
end
