(** Topological ordering of small integer-indexed DAGs.

    Nodes are identified by integers [0 .. n-1]. Edges are given by a
    successor function. The graphs handled by this library (data-flow graphs
    of loop bodies) have at most a few hundred nodes, so simplicity is
    preferred over asymptotic cleverness. *)

exception Cycle of int
(** Raised when the graph contains a cycle; the payload is a node on it. *)

val sort : n:int -> succs:(int -> int list) -> int list
(** [sort ~n ~succs] returns the nodes [0 .. n-1] in a topological order
    (every edge goes from an earlier to a later element).
    @raise Cycle if the graph is not a DAG. *)

val sort_labeled :
  ?what:string -> n:int -> succs:(int -> int list) -> label:(int -> string) ->
  unit -> int list
(** Like {!sort}, but a cycle raises [Invalid_argument] with a message
    naming the offending node via [label] instead of escaping as a raw
    {!Cycle} payload: ["<what>: dependency cycle through <label u>"].
    [what] identifies the caller (e.g. ["Graph.topo_order"]). *)

val levels : n:int -> succs:(int -> int list) -> int array
(** [levels ~n ~succs] assigns to each node its depth: sources get level 0,
    and every other node gets [1 + max] of its predecessors' levels.
    @raise Cycle if the graph is not a DAG. *)

val reachable : n:int -> succs:(int -> int list) -> int list -> bool array
(** [reachable ~n ~succs seeds] marks every node reachable from [seeds]
    (including the seeds themselves) following edges forward. *)
