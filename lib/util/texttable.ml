type align = Left | Right

type row = Cells of string list | Separator

type t = {
  headers : (string * align) list;
  mutable rows : row list; (* reversed *)
}

let create ~headers = { headers; rows = [] }

let add_row t cells =
  let ncols = List.length t.headers in
  let n = List.length cells in
  if n > ncols then invalid_arg "Texttable.add_row: too many cells";
  let padded = cells @ List.init (ncols - n) (fun _ -> "") in
  t.rows <- Cells padded :: t.rows

let add_separator t = t.rows <- Separator :: t.rows

let render t =
  let ncols = List.length t.headers in
  let widths = Array.make ncols 0 in
  let note_width i s =
    if String.length s > widths.(i) then widths.(i) <- String.length s
  in
  List.iteri (fun i (h, _) -> note_width i h) t.headers;
  let note_row = function
    | Separator -> ()
    | Cells cs -> List.iteri note_width cs
  in
  List.iter note_row t.rows;
  let buf = Buffer.create 1024 in
  let pad i s align =
    let fill = widths.(i) - String.length s in
    match align with
    | Left -> s ^ String.make fill ' '
    | Right -> String.make fill ' ' ^ s
  in
  let aligns = List.map snd t.headers in
  let emit_cells cs =
    let item i (s, a) = (if i > 0 then Buffer.add_string buf "  "); Buffer.add_string buf (pad i s a) in
    List.iteri item (List.combine cs aligns);
    Buffer.add_char buf '\n'
  in
  let rule () =
    let total = Array.fold_left ( + ) 0 widths + (2 * (ncols - 1)) in
    Buffer.add_string buf (String.make total '-');
    Buffer.add_char buf '\n'
  in
  emit_cells (List.map fst t.headers);
  rule ();
  let emit = function
    | Separator -> rule ()
    | Cells cs -> emit_cells cs
  in
  List.iter emit (List.rev t.rows);
  Buffer.contents buf

let print t = print_string (render t)
