(* Deterministic, seeded fault injection. A plan names sites in the
   serving stack (io.read, io.write, pool.job, cache.insert) and attaches
   an action and a firing rate to each; call sites ask [check] whether to
   misbehave this time. Modeled on Trace: the disabled registry is a
   constant and [check] on it is one branch returning a constant, so
   production code threads a [t] everywhere at zero cost.

   Determinism: every rule owns a child Prng stream derived from
   (seed, rule index), so the fire/skip sequence per rule depends only on
   the plan string, the seed and how often that rule's site is checked —
   not on wall clock, scheduling or other rules. A mutex guards the draw
   because pool.job is checked from worker domains. *)

type action =
  | Error  (** the site reports a failure (dropped write, failed insert) *)
  | Delay of int  (** the site stalls for this many milliseconds *)
  | Short_read  (** an IO read delivers only a prefix of the bytes *)
  | Raise  (** the site raises {!Injected} *)

exception Injected of string

type rule = {
  site : string;
  action : action;
  rate : float;
  prng : Prng.t;
  mutable fired : int;
  mutable checked : int;
}

type state = { rules : rule list; mutex : Mutex.t }

type t = Off | On of state

let off = Off

let enabled = function Off -> false | On _ -> true

let sites = [ "io.read"; "io.write"; "pool.job"; "cache.insert" ]

let action_name = function
  | Error -> "error"
  | Delay ms -> Printf.sprintf "delay:%d" ms
  | Short_read -> "short-read"
  | Raise -> "raise"

(* Plan syntax: comma-separated [site:action[:param]@rate] clauses, e.g.
   "io.read:short-read@0.1,pool.job:delay:5@0.05,cache.insert:error@1".
   Rates are probabilities in [0, 1]. *)
let parse_rule ~seed index clause =
  let clause = String.trim clause in
  let fail msg = Result.Error (Printf.sprintf "%s in fault clause %S" msg clause) in
  match String.index_opt clause '@' with
  | None -> fail "missing @rate"
  | Some at -> (
    let head = String.sub clause 0 at in
    let rate_text = String.sub clause (at + 1) (String.length clause - at - 1) in
    match float_of_string_opt (String.trim rate_text) with
    | None -> fail "malformed rate"
    | Some rate when rate < 0.0 || rate > 1.0 -> fail "rate outside [0, 1]"
    | Some rate -> (
      let parts = String.split_on_char ':' head in
      let build site action =
        if not (List.mem site sites) then
          fail
            (Printf.sprintf "unknown site %S (one of: %s)" site
               (String.concat ", " sites))
        else
          Result.Ok
            {
              site;
              action;
              rate;
              prng = Prng.create ~seed:(Prng.mix seed index);
              fired = 0;
              checked = 0;
            }
      in
      match List.map String.trim parts with
      | [ site; "error" ] -> build site Error
      | [ site; "short-read" ] -> build site Short_read
      | [ site; "raise" ] -> build site Raise
      | [ site; "delay"; ms ] -> (
        match int_of_string_opt ms with
        | Some ms when ms >= 0 -> build site (Delay ms)
        | _ -> fail "malformed delay milliseconds")
      | _ -> fail "expected site:action[:param]"))

let parse ?(seed = 42) plan =
  let plan = String.trim plan in
  if plan = "" then Result.Ok Off
  else
    let clauses = String.split_on_char ',' plan in
    let rec go index acc = function
      | [] -> Result.Ok (On { rules = List.rev acc; mutex = Mutex.create () })
      | clause :: rest -> (
        match parse_rule ~seed index clause with
        | Result.Ok rule -> go (index + 1) (rule :: acc) rest
        | Result.Error _ as e -> e)
    in
    go 0 [] clauses

(* SRFA_FAULTS / SRFA_FAULT_SEED let an operator inject faults into an
   unmodified binary; an unset plan is the disabled registry. *)
let from_env ?(plan_var = "SRFA_FAULTS") ?(seed_var = "SRFA_FAULT_SEED") () =
  match Sys.getenv_opt plan_var with
  | None | Some "" -> Result.Ok Off
  | Some plan ->
    let seed =
      Option.bind (Sys.getenv_opt seed_var) int_of_string_opt
      |> Option.value ~default:42
    in
    parse ~seed plan

let check t site =
  match t with
  | Off -> None
  | On st ->
    let rec scan = function
      | [] -> None
      | rule :: rest ->
        if String.equal rule.site site then begin
          Mutex.lock st.mutex;
          rule.checked <- rule.checked + 1;
          let fire = rule.rate > 0.0 && Prng.float rule.prng 1.0 < rule.rate in
          if fire then rule.fired <- rule.fired + 1;
          Mutex.unlock st.mutex;
          if fire then Some rule.action else scan rest
        end
        else scan rest
    in
    scan st.rules

let injected t =
  match t with
  | Off -> 0
  | On st ->
    Mutex.lock st.mutex;
    let n = List.fold_left (fun acc r -> acc + r.fired) 0 st.rules in
    Mutex.unlock st.mutex;
    n

let stats t =
  match t with
  | Off -> []
  | On st ->
    Mutex.lock st.mutex;
    let kvs =
      List.map
        (fun r ->
          ( Printf.sprintf "fault.%s.%s" r.site (action_name r.action),
            r.fired ))
        st.rules
    in
    Mutex.unlock st.mutex;
    kvs

let to_string t =
  match t with
  | Off -> ""
  | On st ->
    String.concat ","
      (List.map
         (fun r ->
           Printf.sprintf "%s:%s@%g" r.site (action_name r.action) r.rate)
         st.rules)
