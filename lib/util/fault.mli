(** Deterministic, seeded fault injection for the serving stack.

    A {e plan} attaches misbehaviour to named {e sites} — points in the
    server where reality can fail: [io.read], [io.write], [pool.job],
    [cache.insert]. Each call site asks {!check} whether to misbehave
    this time; the disabled registry ({!off}) answers [None] from a
    single branch, so production code threads a [t] everywhere at zero
    cost, the same way {!Trace} threads its null sink.

    Plans are strings — [site:action[:param]@rate] clauses separated by
    commas, rates in [\[0, 1\]]:

    {[ io.read:short-read@0.1,pool.job:raise@0.05,cache.insert:error@1 ]}

    Every rule draws from its own {!Prng} stream derived from the plan
    seed and the rule's position, so a campaign replays exactly from
    (plan, seed) regardless of scheduling; the draw is mutex-guarded
    because [pool.job] is checked from worker domains. What each action
    {e means} is the call site's contract (documented in DESIGN.md §15):
    the registry only decides whether and what to inject. *)

type action =
  | Error  (** the site reports a failure (dropped write, failed insert) *)
  | Delay of int  (** the site stalls for this many milliseconds *)
  | Short_read  (** an IO read delivers only a prefix of the bytes *)
  | Raise  (** the site raises {!Injected} *)

exception Injected of string
(** Raised by call sites honouring a [Raise] action; carries the site
    name. The server's worker-isolation boundary turns it into an
    [E-INTERNAL-*] diagnostic for the one affected request. *)

type t

val off : t
(** The disabled registry: {!check} is one branch returning [None]. *)

val enabled : t -> bool

val sites : string list
(** The known site names; {!parse} rejects any other. *)

val parse : ?seed:int -> string -> (t, string) result
(** [parse ~seed plan] compiles a plan string. The empty (or all-blank)
    plan is {!off}. [seed] defaults to 42. *)

val from_env : ?plan_var:string -> ?seed_var:string -> unit -> (t, string) result
(** Read the plan from [SRFA_FAULTS] and the seed from [SRFA_FAULT_SEED]
    (defaults; both overridable); an unset or empty plan is {!off}. *)

val check : t -> string -> action option
(** [check t site] — [Some action] when a rule for [site] fires on this
    draw. With several rules on one site the first firing rule wins. *)

val injected : t -> int
(** Total actions fired so far (all rules). *)

val stats : t -> (string * int) list
(** Per-rule fire counts, keyed ["fault.<site>.<action>"] — merged into
    the server's [stats] response so campaigns can assert injection
    actually happened. *)

val to_string : t -> string
(** Render the plan back to (normalised) plan syntax; [""] for {!off}. *)
