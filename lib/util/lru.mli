(** A string-keyed LRU map with a byte-cost budget.

    The serving layer's two cache tiers both need the same policy — keep
    the most recently used entries, bound the total {e cost} (bytes, not
    entry count), evict from the cold end — so the policy lives here as a
    standalone structure instead of being buried in the server. Costs are
    supplied per value at {!add} time and accounted exactly: the sum of
    the costs of the resident entries never exceeds the capacity.

    Not thread-safe: the server owns one per tier and mutates them from
    its accept loop only. *)

type 'v t

val create : capacity:int -> 'v t
(** [create ~capacity] holds entries while their summed cost is at most
    [capacity] bytes. A non-positive capacity is the degenerate cache:
    every {!add} is accepted and immediately evicted, {!find} never
    hits — callers get a uniform code path, just with no retention. *)

val capacity : 'v t -> int

val length : 'v t -> int
(** Resident entry count. *)

val used : 'v t -> int
(** Summed cost of the resident entries; [used t <= max 0 (capacity t)]. *)

val find : 'v t -> string -> 'v option
(** [find t k] returns the resident value and makes [k] the most recently
    used entry; [None] counts as a miss. *)

val mem : 'v t -> string -> bool
(** Like {!find} but without touching recency (a peek). *)

val add : 'v t -> string -> cost:int -> 'v -> (string * 'v) list
(** [add t k ~cost v] inserts (or replaces) [k] as the most recently used
    entry and returns the entries evicted to make room, coldest first.
    Replacing a key re-accounts its cost. A value whose cost exceeds the
    whole capacity is evicted immediately (it is returned in the list and
    is not resident); negative costs clamp to 0. *)

val remove : 'v t -> string -> unit

val hits : 'v t -> int
val misses : 'v t -> int
val evictions : 'v t -> int
(** Lifetime counters: {!find} outcomes and entries evicted by {!add}
    (explicit {!remove}s are not evictions). *)

val to_alist : 'v t -> (string * 'v) list
(** Resident entries, most recently used first (no recency effect). *)
