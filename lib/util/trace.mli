(** Structured decision tracing.

    Every stage of the allocation engine (and the DFG cut machinery under
    it) can narrate what it decided and why as a stream of structured
    {!event}s. A sink consumes the stream; the default {!null} sink is a
    physical-equality test away from free, and {!emit} takes a thunk, so a
    disabled trace never even builds its events — the allocators stay
    allocation-free on the hot path.

    Sinks are deliberately dumb: no buffering policy, no schema registry.
    An event is a name plus a flat field list; {!to_json} renders one event
    as one JSON object, which is what the CLI's [--trace out.jsonl] and the
    bench harness write line by line (JSON-lines). *)

type value =
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of value list

type event = {
  name : string;                    (** e.g. ["assign.full"], ["round"] *)
  fields : (string * value) list;
}

type sink

val null : sink
(** The no-op sink: {!emit} on it returns without forcing its thunk. *)

val enabled : sink -> bool
(** [false] exactly for {!null}. Strategies use this to skip building
    expensive field values (group-name lists, flow statistics). *)

val make : (event -> unit) -> sink
(** A sink from an event consumer. *)

val emit : sink -> (unit -> event) -> unit
(** Deliver one event; the thunk is forced only when the sink is enabled. *)

val event : string -> (string * value) list -> event

val collector : unit -> sink * (unit -> event list)
(** An in-memory sink and the accessor returning everything emitted so
    far, in emission order. Thread-safe: concurrent emits from several
    domains are serialised by a mutex and none is lost (their relative
    order is the arrival order). *)

val buffered : unit -> sink * (sink -> unit)
(** [buffered ()] is a private in-memory sink plus a splice function:
    [splice target] replays everything buffered so far into [target], in
    emission order. This is the deterministic-trace building block for
    parallel drivers — give each task its own buffered sink, then splice
    the buffers in {e task} order after the join, so the merged stream
    is byte-identical to the sequential run regardless of how execution
    interleaved. The buffer itself is single-owner and unsynchronised;
    emit into it from one task only. *)

val channel : out_channel -> sink
(** A JSON-lines sink: each event becomes one [to_json] line on the
    channel (not flushed per event; close or flush the channel yourself). *)

val to_json : event -> string
(** One event as a single-line JSON object
    [{"event": name, field: value, ...}]. Strings are escaped per JSON;
    non-finite floats render as [null]. *)

val summary : event list -> string
(** Compact human summary, e.g. ["5 events: 3 assign.full, 2 round"] —
    event names counted in first-appearance order. Empty list: ["no
    events"]. *)
