(** Reusable flat-array scratch for the allocation-free hot core.

    The simulator, tracker, and analysis hot loops need int-keyed memo
    tables and distinct-element sets that are cleared millions of times
    per evaluation. [Hashtbl] pays a boxed bucket per insert and an
    [option] per probe; these tables are open-addressed over plain int
    arrays with an O(1) generation-stamp {!Table.reset} (clearing bumps a
    counter, it does not touch the arrays). They grow on demand by
    doubling and never shrink — the intended discipline is one table per
    owner, [reset] between uses, so a warmed-up evaluation touches the
    allocator zero times here.

    Thread-safety: none. Give each domain its own tables (the simulator
    scratch does: one scratch per kernel, kernels are the parallel axis —
    see DESIGN.md §13). *)

module Table : sig
  type t
  (** An int -> int map. Keys may be any int, including negatives. *)

  val create : ?capacity:int -> unit -> t
  (** [capacity] is rounded up to a power of two (default 16). *)

  val reset : t -> unit
  (** Empty the table in O(1). Capacity (and therefore the warmed-up
      allocation-free property) is retained. *)

  val find : t -> int -> default:int -> int
  (** The binding of the key, or [default] when absent. Allocation-free;
      pick a [default] outside the value range to distinguish absence. *)

  val set : t -> int -> int -> unit
  (** Bind (or rebind) a key. Allocates only when the table grows. *)

  val cardinal : t -> int
  val iter : t -> (int -> int -> unit) -> unit
end

module Set : sig
  type t
  (** An int set with the same cost model as {!Table}. *)

  val create : ?capacity:int -> unit -> t
  val reset : t -> unit
  val mem : t -> int -> bool

  val add : t -> int -> bool
  (** Insert; [true] when the element was not already present. *)

  val cardinal : t -> int
end
