open Srfa_reuse

type access =
  | Ram_always
  | Window_full of { beta : int; rank_coeffs : int array }
  | Window_partial of { beta : int; rank_coeffs : int array }
  | Window_opaque of { beta : int }

type t = { allocation : Allocation.t; accesses : access array }

let build allocation =
  let analysis = allocation.Allocation.analysis in
  let classify gid =
    let i = Analysis.info analysis gid in
    let e = Allocation.entry allocation gid in
    if (not e.Allocation.pinned) || not i.Analysis.has_reuse then Ram_always
    else
      match Analysis.rank_affine analysis i with
      | Some rank_coeffs ->
        if e.Allocation.beta >= i.Analysis.nu then
          Window_full { beta = i.Analysis.nu; rank_coeffs }
        else Window_partial { beta = e.Allocation.beta; rank_coeffs }
      | None -> Window_opaque { beta = e.Allocation.beta }
  in
  {
    allocation;
    accesses = Array.init (Analysis.num_groups analysis) classify;
  }

let access t gid = t.accesses.(gid)

(* Does the body read the group before first writing it? Such groups need
   their window preloaded at window entry (e.g. accumulators). *)
let read_before_write nest (g : Group.t) =
  let open Srfa_ir in
  let rec scan = function
    | [] -> false
    | Expr.Assign (target, e) :: rest ->
      let reads = Expr.loads e in
      if List.exists (fun r -> Expr.ref_equal r g.Group.ref_) reads then true
      else if Expr.ref_equal target g.Group.ref_ then false
      else scan rest
  in
  scan nest.Srfa_ir.Nest.body

let windowed t gid =
  match t.accesses.(gid) with
  | Window_full _ | Window_partial _ -> true
  | Ram_always | Window_opaque _ -> false

let needs_prologue t gid =
  let analysis = t.allocation.Allocation.analysis in
  let g = (Analysis.info analysis gid).Analysis.group in
  windowed t gid && Group.is_read g
  && ((not (Group.is_write g))
     || read_before_write analysis.Analysis.nest g)

let needs_writeback t gid =
  let analysis = t.allocation.Allocation.analysis in
  let g = (Analysis.info analysis gid).Analysis.group in
  windowed t gid && Group.is_write g
  && ((Group.decl g).Srfa_ir.Decl.storage = Srfa_ir.Decl.Output
     || needs_prologue t gid)

let prologue_loads t =
  let analysis = t.allocation.Allocation.analysis in
  let add acc gid =
    let i = Analysis.info analysis gid in
    if not (Group.is_read i.Analysis.group) then acc
    else
      match t.accesses.(gid) with
      | Ram_always | Window_opaque _ -> acc
      | Window_full { beta; _ } | Window_partial { beta; _ } -> acc + beta
  in
  List.fold_left add 0 (List.init (Array.length t.accesses) Fun.id)

type edge_strategy = Reload_window | Shift_window

(* Windows of a group = iterations of its carrying loop = product of the
   trip counts of levels 1..window_level. *)
let window_count analysis (i : Analysis.info) =
  let counts = Srfa_ir.Nest.trip_counts analysis.Analysis.nest in
  let rec take n = function
    | [] -> []
    | x :: rest -> if n = 0 then [] else x :: take (n - 1) rest
  in
  List.fold_left ( * ) 1 (take i.Analysis.window_level counts)

let edge_transfers t ~strategy =
  let analysis = t.allocation.Allocation.analysis in
  let nest = analysis.Analysis.nest in
  let covered gid =
    match t.accesses.(gid) with
    | Window_full { beta; _ } | Window_partial { beta; _ } -> beta
    | Ram_always | Window_opaque _ -> 0
  in
  match strategy with
  | Reload_window ->
    (* min(beta, nu) slots filled at each window entry, and written back at
       each exit when required. *)
    let per_group gid acc =
      let i = Analysis.info analysis gid in
      let slots = min (covered gid) i.Analysis.nu in
      let windows = window_count analysis i in
      let loads = if needs_prologue t gid then windows * slots else 0 in
      let stores = if needs_writeback t gid then windows * slots else 0 in
      acc + loads + stores
    in
    List.fold_left
      (fun acc gid -> per_group gid acc)
      0
      (List.init (Array.length t.accesses) Fun.id)
  | Shift_window ->
    (* One load per element that ever becomes resident (survivors shift
       between windows), one final store per resident element of written
       windows. *)
    let ngroups = Array.length t.accesses in
    let tracker = Analysis.Tracker.create analysis in
    let seen = Array.init ngroups (fun _ -> Hashtbl.create 64) in
    Srfa_ir.Iterspace.iter nest (fun point ->
        Analysis.Tracker.step tracker point;
        for gid = 0 to ngroups - 1 do
          let beta = covered gid in
          if beta > 0 && Analysis.Tracker.slot_rank tracker gid < beta then begin
            let i = Analysis.info analysis gid in
            let e = Analysis.element_index i point in
            if not (Hashtbl.mem seen.(gid) e) then
              Hashtbl.replace seen.(gid) e ()
          end
        done);
    let per_group gid acc =
      let touched = Hashtbl.length seen.(gid) in
      let loads = if needs_prologue t gid then touched else 0 in
      let stores = if needs_writeback t gid then touched else 0 in
      acc + loads + stores
    in
    List.fold_left
      (fun acc gid -> per_group gid acc)
      0
      (List.init ngroups Fun.id)

let describe t =
  let analysis = t.allocation.Allocation.analysis in
  let line gid =
    let i = Analysis.info analysis gid in
    let text =
      match t.accesses.(gid) with
      | Ram_always -> "RAM"
      | Window_full { beta; _ } ->
        Printf.sprintf "registers (full window, %d)" beta
      | Window_partial { beta; _ } ->
        Printf.sprintf "registers for slots < %d, RAM beyond" beta
      | Window_opaque { beta } ->
        Printf.sprintf "RAM (opaque window, %d registers unused)" beta
    in
    (Group.name i.Analysis.group, text)
  in
  List.map line (List.init (Array.length t.accesses) Fun.id)
