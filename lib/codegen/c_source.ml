open Srfa_ir
open Srfa_reuse

(* Rendering helpers. Rank expressions and index expressions are emitted as
   plain C integer arithmetic over the loop variables; variables listed in
   [zero] are substituted by 0 (used in prologue loops where the
   non-appearing inner levels are pinned). *)

let affine_to_c ?(zero = []) ix =
  let terms =
    List.filter (fun (v, _) -> not (List.mem v zero)) (Affine.coeffs ix)
  in
  let buf = Buffer.create 32 in
  let emit_term first (v, c) =
    if c >= 0 && not first then Buffer.add_string buf " + ";
    if c < 0 then Buffer.add_string buf (if first then "-" else " - ");
    let c = abs c in
    if c = 1 then Buffer.add_string buf v
    else Buffer.add_string buf (Printf.sprintf "%d*%s" c v);
    false
  in
  let first = List.fold_left emit_term true terms in
  let k = Affine.constant ix in
  if first then Buffer.add_string buf (string_of_int k)
  else if k > 0 then Buffer.add_string buf (Printf.sprintf " + %d" k)
  else if k < 0 then Buffer.add_string buf (Printf.sprintf " - %d" (-k));
  Buffer.contents buf

let rank_to_c ~vars ?(zero = []) coeffs =
  let acc = ref (Affine.const 0) in
  Array.iteri
    (fun l c ->
      if c <> 0 && not (List.mem vars.(l) zero) then
        acc := Affine.add !acc (Affine.var ~coeff:c vars.(l)))
    coeffs;
  affine_to_c !acc

let ref_to_c ?zero (r : Expr.ref_) =
  let buf = Buffer.create 32 in
  Buffer.add_string buf r.Expr.decl.Decl.name;
  List.iter
    (fun ix -> Buffer.add_string buf (Printf.sprintf "[%s]" (affine_to_c ?zero ix)))
    r.Expr.index;
  Buffer.contents buf

let win_name (g : Group.t) = Printf.sprintf "win_%s_%d" (Group.decl g).Decl.name g.Group.id

type group_plan = {
  info : Analysis.info;
  group : Group.t;
  access : Plan.access;
  needs_prologue : bool;
  needs_writeback : bool;
}

let group_plans plan =
  let alloc = plan.Plan.allocation in
  let analysis = alloc.Allocation.analysis in
  let build gid =
    let info = Analysis.info analysis gid in
    {
      info;
      group = info.Analysis.group;
      access = Plan.access plan gid;
      needs_prologue = Plan.needs_prologue plan gid;
      needs_writeback = Plan.needs_writeback plan gid;
    }
  in
  List.map build (List.init (Analysis.num_groups analysis) Fun.id)

let emit plan =
  let alloc = plan.Plan.allocation in
  let analysis = alloc.Allocation.analysis in
  let nest = analysis.Analysis.nest in
  let vars = Array.of_list (Nest.loop_vars nest) in
  let counts = Array.of_list (Nest.trip_counts nest) in
  let depth = Array.length vars in
  let plans = group_plans plan in
  let buf = Buffer.create 4096 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let pad n = String.make (2 * n) ' ' in
  out "/* kernel %s: scalar-replaced by %s under a budget of %d registers.\n"
    nest.Nest.name alloc.Allocation.algorithm alloc.Allocation.budget;
  out "   Generated; window registers follow the paper's peeling scheme. */\n\n";
  let emit_decl (d : Decl.t) =
    let dims = String.concat "" (List.map (Printf.sprintf "[%d]") d.Decl.dims) in
    out "int %s%s; /* %s, %d bits */\n" d.Decl.name dims
      (match d.Decl.storage with
      | Decl.Input -> "input"
      | Decl.Output -> "output"
      | Decl.Local -> "local")
      d.Decl.bits
  in
  List.iter emit_decl nest.Nest.arrays;
  out "\nvoid %s(void)\n{\n" (String.map (function '-' -> '_' | c -> c) nest.Nest.name);
  (* Window register declarations. *)
  let emit_window gp =
    match gp.access with
    | Plan.Window_full { beta; _ } | Plan.Window_partial { beta; _ } ->
      out "%sint %s[%d]; /* window of %s (slot rank < %d) */\n" (pad 1)
        (win_name gp.group) beta
        (Group.name gp.group) beta
    | Plan.Ram_always | Plan.Window_opaque _ -> ()
  in
  List.iter emit_window plans;
  (* One prologue/epilogue loop nest over the window's appearing levels. *)
  let window_edge ~load level gp =
    match gp.access with
    | Plan.Ram_always | Plan.Window_opaque _ -> ()
    | Plan.Window_full { beta; rank_coeffs }
    | Plan.Window_partial { beta; rank_coeffs } ->
      if gp.info.Analysis.window_level = level
         && (if load then gp.needs_prologue else gp.needs_writeback)
      then begin
        let appearing =
          List.filter
            (fun l -> rank_coeffs.(l) <> 0)
            (List.init depth Fun.id)
        in
        let zero =
          List.filter_map
            (fun l ->
              if l >= level && rank_coeffs.(l) = 0 then Some vars.(l) else None)
            (List.init depth Fun.id)
        in
        let d = ref level in
        out "%s/* %s %s window */\n" (pad (level + 1))
          (if load then "load" else "write back")
          (Group.name gp.group);
        List.iter
          (fun l ->
            out "%sfor (int %s = 0; %s < %d; %s++)\n" (pad (!d + 1)) vars.(l)
              vars.(l) counts.(l) vars.(l);
            incr d)
          appearing;
        let rank = rank_to_c ~vars rank_coeffs in
        let guard =
          match gp.access with
          | Plan.Window_partial _ -> Printf.sprintf "if (%s < %d) " rank beta
          | Plan.Window_full _ | Plan.Ram_always | Plan.Window_opaque _ -> ""
        in
        let mem = ref_to_c ~zero gp.group.Group.ref_ in
        if load then
          out "%s%s%s[%s] = %s;\n" (pad (!d + 1)) guard (win_name gp.group) rank mem
        else
          out "%s%s%s = %s[%s];\n" (pad (!d + 1)) guard mem (win_name gp.group) rank
      end
  in
  (* Body statements with register/RAM steering. *)
  let access_text gp =
    match gp.access with
    | Plan.Ram_always | Plan.Window_opaque _ -> ref_to_c gp.group.Group.ref_
    | Plan.Window_full { rank_coeffs; _ } ->
      Printf.sprintf "%s[%s]" (win_name gp.group) (rank_to_c ~vars rank_coeffs)
    | Plan.Window_partial { beta; rank_coeffs } ->
      let rank = rank_to_c ~vars rank_coeffs in
      Printf.sprintf "(%s < %d ? %s[%s] : %s)" rank beta (win_name gp.group)
        rank (ref_to_c gp.group.Group.ref_)
  in
  let plan_of r =
    List.find (fun gp -> Expr.ref_equal gp.group.Group.ref_ r) plans
  in
  let rec expr_text (e : Expr.t) =
    match e with
    | Expr.Const c -> string_of_int c
    | Expr.Load r -> access_text (plan_of r)
    | Expr.Unary (op, a) ->
      let s = expr_text a in
      (match op with
      | Op.Neg -> Printf.sprintf "(-%s)" s
      | Op.Abs -> Printf.sprintf "abs(%s)" s
      | Op.Bnot -> Printf.sprintf "(1 - %s)" s)
    | Expr.Binary (op, a, b) ->
      let sa = expr_text a and sb = expr_text b in
      let infix sym = Printf.sprintf "(%s %s %s)" sa sym sb in
      (match op with
      | Op.Add -> infix "+"
      | Op.Sub -> infix "-"
      | Op.Mul -> infix "*"
      | Op.Div -> infix "/"
      | Op.Band -> infix "&"
      | Op.Bor -> infix "|"
      | Op.Bxor -> infix "^"
      | Op.Eq -> Printf.sprintf "(%s == %s ? 1 : 0)" sa sb
      | Op.Lt -> Printf.sprintf "(%s < %s ? 1 : 0)" sa sb
      | Op.Min -> Printf.sprintf "(%s < %s ? %s : %s)" sa sb sa sb
      | Op.Max -> Printf.sprintf "(%s > %s ? %s : %s)" sa sb sa sb)
  in
  let emit_store gp value =
    match gp.access with
    | Plan.Ram_always | Plan.Window_opaque _ ->
      out "%s%s = %s;\n" (pad (depth + 1)) (ref_to_c gp.group.Group.ref_) value
    | Plan.Window_full { rank_coeffs; _ } ->
      out "%s%s[%s] = %s;\n" (pad (depth + 1)) (win_name gp.group)
        (rank_to_c ~vars rank_coeffs) value
    | Plan.Window_partial { beta; rank_coeffs } ->
      let rank = rank_to_c ~vars rank_coeffs in
      out "%sif (%s < %d) %s[%s] = %s; else %s = %s;\n" (pad (depth + 1)) rank
        beta (win_name gp.group) rank value
        (ref_to_c gp.group.Group.ref_)
        value
  in
  (* The nest itself: open loops; at each level emit the prologues whose
     window starts there. *)
  for level = 0 to depth - 1 do
    out "%sfor (int %s = 0; %s < %d; %s++) {\n" (pad (level + 1)) vars.(level)
      vars.(level) counts.(level) vars.(level);
    (* Windows of loop [level+1] reload at each of its iterations. *)
    List.iter (window_edge ~load:true (level + 1)) plans
  done;
  let emit_stmt (Expr.Assign (target, e)) =
    let value = expr_text e in
    emit_store (plan_of target) value
  in
  List.iter emit_stmt nest.Nest.body;
  for level = depth - 1 downto 0 do
    List.iter (window_edge ~load:false (level + 1)) plans;
    out "%s}\n" (pad (level + 1))
  done;
  out "}\n";
  Buffer.contents buf

(* The deterministic input pattern shared with the OCaml test oracle
   (Helpers.init): fold (acc * 31 + coord + 7) from 3, mod 251, minus 125. *)
let emit_standalone plan =
  let alloc = plan.Plan.allocation in
  let analysis = alloc.Allocation.analysis in
  let nest = analysis.Analysis.nest in
  let buf = Buffer.create 8192 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  out "#include <stdio.h>\n#include <stdlib.h>\n\n";
  Buffer.add_string buf (emit plan);
  out "\nint main(void)\n{\n";
  let fn_name = String.map (function '-' -> '_' | c -> c) nest.Nest.name in
  let loop_over (d : Decl.t) body =
    let vars = List.mapi (fun k _ -> Printf.sprintf "i%d" k) d.Decl.dims in
    List.iteri
      (fun k extent ->
        out "%sfor (int i%d = 0; i%d < %d; i%d++)\n"
          (String.make (2 * (k + 1)) ' ')
          k k extent k)
      d.Decl.dims;
    body vars (String.make (2 * (List.length d.Decl.dims + 1)) ' ')
  in
  let init_array (d : Decl.t) =
    match d.Decl.storage with
    | Decl.Input ->
      out "  /* init %s */\n" d.Decl.name;
      if d.Decl.dims = [] then out "  %s = 3 %% 251 - 125;\n" d.Decl.name
      else
        loop_over d (fun vars pad ->
            let acc =
              List.fold_left
                (fun acc v -> Printf.sprintf "(%s * 31 + %s + 7)" acc v)
                "3" vars
            in
            out "%s%s%s = %s %% 251 - 125;\n" pad d.Decl.name
              (String.concat ""
                 (List.map (Printf.sprintf "[%s]") vars))
              acc)
    | Decl.Output | Decl.Local -> ()
  in
  List.iter init_array nest.Nest.arrays;
  out "\n  %s();\n\n" fn_name;
  let print_array (d : Decl.t) =
    match d.Decl.storage with
    | Decl.Output ->
      out "  /* dump %s */\n" d.Decl.name;
      if d.Decl.dims = [] then out "  printf(\"%%d\\n\", %s);\n" d.Decl.name
      else
        loop_over d (fun vars pad ->
            out "%sprintf(\"%%d\\n\", %s%s);\n" pad d.Decl.name
              (String.concat "" (List.map (Printf.sprintf "[%s]") vars)))
    | Decl.Input | Decl.Local -> ()
  in
  List.iter print_array nest.Nest.arrays;
  out "  return 0;\n}\n";
  Buffer.contents buf
