(** Executable semantics of the scalar-replaced program.

    Runs the plan the way the generated code would — window registers,
    peeled prologue loads at window entries, rank-steered accesses in the
    steady state, writebacks at window exits — against a concrete store.
    This is the transform's correctness oracle: for every allocation the
    result must equal the untransformed {!Srfa_ir.Interp} run. *)

open Srfa_ir

val run : Plan.t -> init:(string -> int array -> int) -> Interp.store
(** Fresh store, [Input] arrays initialised with [init], transformed
    program executed. *)

val equivalent : Plan.t -> init:(string -> int array -> int) -> bool
(** Whether the transformed execution leaves every [Output] array equal to
    the reference interpreter's result. *)
