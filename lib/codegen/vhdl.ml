open Srfa_ir
open Srfa_reuse

(* The paper's intermediate artifact is *behavioral* VHDL (transformed C
   hand-translated before Monet HLS). The emitter mirrors C_source: loops
   become sequential for-loops in one process, arrays become variables a
   synthesis tool maps to RAM blocks, window registers become variables it
   maps to discrete registers. *)

let entity_name plan =
  let nest =
    plan.Plan.allocation.Allocation.analysis.Analysis.nest
  in
  String.map (function '-' -> '_' | c -> c) nest.Nest.name

let vhdl_affine ?(zero = []) ix =
  C_source.affine_to_c ~zero ix

let emit plan =
  let alloc = plan.Plan.allocation in
  let analysis = alloc.Allocation.analysis in
  let nest = analysis.Analysis.nest in
  let vars = Array.of_list (Nest.loop_vars nest) in
  let counts = Array.of_list (Nest.trip_counts nest) in
  let depth = Array.length vars in
  let name = entity_name plan in
  let buf = Buffer.create 8192 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let pad n = String.make (2 * n) ' ' in
  let plans = C_source.group_plans plan in
  let plan_of r =
    List.find
      (fun (gp : C_source.group_plan) ->
        Expr.ref_equal gp.C_source.group.Group.ref_ r)
      plans
  in
  let win (g : Group.t) =
    Printf.sprintf "win_%s_%d" (Group.decl g).Decl.name g.Group.id
  in
  (* Arrays are flattened to one dimension; the linearised index expression
     is shared with the analysis. *)
  let mem_index ?zero (r : Expr.ref_) =
    let dims = Array.of_list r.Expr.decl.Decl.dims in
    let stride = Array.make (Array.length dims) 1 in
    for d = Array.length dims - 2 downto 0 do
      stride.(d) <- stride.(d + 1) * dims.(d + 1)
    done;
    let acc = ref (Affine.const 0) in
    List.iteri
      (fun d ix -> acc := Affine.add !acc (Affine.scale stride.(d) ix))
      r.Expr.index;
    vhdl_affine ?zero !acc
  in
  let mem_ref ?zero (r : Expr.ref_) =
    Printf.sprintf "mem_%s(%s)" r.Expr.decl.Decl.name (mem_index ?zero r)
  in
  let rank_text (gp : C_source.group_plan) =
    match gp.C_source.access with
    | Plan.Window_full { rank_coeffs; _ } | Plan.Window_partial { rank_coeffs; _ }
      ->
      let acc = ref (Affine.const 0) in
      Array.iteri
        (fun l c -> if c <> 0 then acc := Affine.add !acc (Affine.var ~coeff:c vars.(l)))
        rank_coeffs;
      vhdl_affine !acc
    | Plan.Ram_always | Plan.Window_opaque _ -> "0"
  in
  out "-- Kernel %s, scalar replaced by %s under a budget of %d registers.\n"
    nest.Nest.name alloc.Allocation.algorithm alloc.Allocation.budget;
  out "-- Behavioral VHDL in the style of the paper's pre-HLS artifact:\n";
  out "-- arrays map to RAM blocks, window variables map to registers.\n";
  out "library ieee;\nuse ieee.std_logic_1164.all;\n\n";
  out "entity %s is\n  port (\n    clk   : in  std_logic;\n" name;
  out "    start : in  std_logic;\n    done  : out std_logic\n  );\nend entity %s;\n\n"
    name;
  out "architecture behavioral of %s is\n" name;
  let emit_array_type (d : Decl.t) =
    out "  type %s_t is array (0 to %d) of integer; -- %d-bit elements\n"
      d.Decl.name
      (Decl.elements d - 1)
      d.Decl.bits
  in
  List.iter emit_array_type nest.Nest.arrays;
  let emit_win_decl (gp : C_source.group_plan) =
    match gp.C_source.access with
    | Plan.Window_full { beta; _ } | Plan.Window_partial { beta; _ } ->
      out "  type %s_t is array (0 to %d) of integer;\n" (win gp.C_source.group)
        (beta - 1)
    | Plan.Ram_always | Plan.Window_opaque _ -> ()
  in
  List.iter emit_win_decl plans;
  out "\n";
  out "  function b2i(c : boolean) return integer is\n";
  out "  begin if c then return 1; else return 0; end if; end;\n";
  out "  function pick(c : boolean; a : integer; b : integer) return integer is\n";
  out "  begin if c then return a; else return b; end if; end;\n";
  out "  function imin(a : integer; b : integer) return integer is\n";
  out "  begin if a < b then return a; else return b; end if; end;\n";
  out "  function imax(a : integer; b : integer) return integer is\n";
  out "  begin if a > b then return a; else return b; end if; end;\n";
  out "  function band(a : integer; b : integer) return integer is\n";
  out "  begin return b2i(a /= 0 and b /= 0); end;\n";
  out "  function bor(a : integer; b : integer) return integer is\n";
  out "  begin return b2i(a /= 0 or b /= 0); end;\n";
  out "  function bxor(a : integer; b : integer) return integer is\n";
  out "  begin return b2i((a /= 0) /= (b /= 0)); end;\n";
  out "begin\n\n  main : process\n";
  let emit_mem_var (d : Decl.t) =
    out "    variable mem_%s : %s_t; -- map to %s\n" d.Decl.name d.Decl.name
      (match d.Decl.storage with
      | Decl.Input | Decl.Output -> "RAM block(s)"
      | Decl.Local -> "RAM or wires")
  in
  List.iter emit_mem_var nest.Nest.arrays;
  let emit_win_var (gp : C_source.group_plan) =
    match gp.C_source.access with
    | Plan.Window_full { beta; _ } | Plan.Window_partial { beta; _ } ->
      out "    variable %s : %s_t; -- window registers (%d)\n"
        (win gp.C_source.group)
        (win gp.C_source.group)
        beta
    | Plan.Ram_always | Plan.Window_opaque _ -> ()
  in
  List.iter emit_win_var plans;
  List.iter
    (fun (Expr.Assign (target, _)) ->
      let gp = plan_of target in
      out "    variable v_%d : integer; -- %s\n" gp.C_source.group.Group.id
        (Group.name gp.C_source.group))
    nest.Nest.body;
  out "  begin\n    done <= '0';\n";
  out "    wait until rising_edge(clk) and start = '1';\n\n";
  (* Expression rendering, reading windows or memory. *)
  let access_text (gp : C_source.group_plan) =
    match gp.C_source.access with
    | Plan.Ram_always | Plan.Window_opaque _ ->
      mem_ref gp.C_source.group.Group.ref_
    | Plan.Window_full _ ->
      Printf.sprintf "%s(%s)" (win gp.C_source.group) (rank_text gp)
    | Plan.Window_partial { beta; _ } ->
      (* VHDL has no conditional expression pre-2008 in this position; a
         helper function keeps the body readable. *)
      Printf.sprintf "pick(%s < %d, %s(%s), %s)" (rank_text gp) beta
        (win gp.C_source.group) (rank_text gp)
        (mem_ref gp.C_source.group.Group.ref_)
  in
  let rec expr_text (e : Expr.t) =
    match e with
    | Expr.Const c -> string_of_int c
    | Expr.Load r -> access_text (plan_of r)
    | Expr.Unary (op, a) ->
      let s = expr_text a in
      (match op with
      | Op.Neg -> Printf.sprintf "(-%s)" s
      | Op.Abs -> Printf.sprintf "abs(%s)" s
      | Op.Bnot -> Printf.sprintf "(1 - %s)" s)
    | Expr.Binary (op, a, b) ->
      let sa = expr_text a and sb = expr_text b in
      let infix sym = Printf.sprintf "(%s %s %s)" sa sym sb in
      (match op with
      | Op.Add -> infix "+"
      | Op.Sub -> infix "-"
      | Op.Mul -> infix "*"
      | Op.Div -> infix "/"
      | Op.Band -> Printf.sprintf "band(%s, %s)" sa sb
      | Op.Bor -> Printf.sprintf "bor(%s, %s)" sa sb
      | Op.Bxor -> Printf.sprintf "bxor(%s, %s)" sa sb
      | Op.Eq -> Printf.sprintf "b2i(%s = %s)" sa sb
      | Op.Lt -> Printf.sprintf "b2i(%s < %s)" sa sb
      | Op.Min -> Printf.sprintf "imin(%s, %s)" sa sb
      | Op.Max -> Printf.sprintf "imax(%s, %s)" sa sb)
  in
  (* Prologue / writeback loops at the window level, as in C_source. *)
  let window_edge ~load level (gp : C_source.group_plan) =
    match gp.C_source.access with
    | Plan.Ram_always | Plan.Window_opaque _ -> ()
    | Plan.Window_full { beta; rank_coeffs }
    | Plan.Window_partial { beta; rank_coeffs } ->
      if gp.C_source.info.Analysis.window_level = level
         && (if load then gp.C_source.needs_prologue
             else gp.C_source.needs_writeback)
      then begin
        let appearing =
          List.filter (fun l -> rank_coeffs.(l) <> 0) (List.init depth Fun.id)
        in
        let zero =
          List.filter_map
            (fun l ->
              if l >= level && rank_coeffs.(l) = 0 then Some vars.(l) else None)
            (List.init depth Fun.id)
        in
        let d = ref level in
        out "%s-- %s %s window\n" (pad (!d + 2))
          (if load then "load" else "write back")
          (Group.name gp.C_source.group);
        List.iter
          (fun l ->
            out "%sfor %s in 0 to %d loop\n" (pad (!d + 2)) vars.(l)
              (counts.(l) - 1);
            incr d)
          appearing;
        let rank = rank_text gp in
        let partial =
          match gp.C_source.access with
          | Plan.Window_partial _ -> true
          | Plan.Window_full _ | Plan.Ram_always | Plan.Window_opaque _ ->
            false
        in
        if partial then begin
          out "%sif %s < %d then\n" (pad (!d + 2)) rank beta;
          incr d
        end;
        let mem = mem_ref ~zero gp.C_source.group.Group.ref_ in
        if load then
          out "%s%s(%s) := %s;\n" (pad (!d + 2)) (win gp.C_source.group) rank mem
        else
          out "%s%s := %s(%s);\n" (pad (!d + 2)) mem (win gp.C_source.group) rank;
        if partial then begin
          decr d;
          out "%send if;\n" (pad (!d + 2))
        end;
        List.iter
          (fun _ ->
            decr d;
            out "%send loop;\n" (pad (!d + 2)))
          appearing
      end
  in
  for level = 0 to depth - 1 do
    out "%sfor %s in 0 to %d loop\n" (pad (level + 2)) vars.(level)
      (counts.(level) - 1);
    List.iter (window_edge ~load:true (level + 1)) plans
  done;
  let stmt_index = ref 0 in
  let emit_stmt (Expr.Assign (target, e)) =
    incr stmt_index;
    let gp = plan_of target in
    let v = Printf.sprintf "v_%d" gp.C_source.group.Group.id in
    out "%s%s := %s;\n" (pad (depth + 2)) v (expr_text e);
    match gp.C_source.access with
    | Plan.Ram_always | Plan.Window_opaque _ ->
      out "%s%s := %s;\n" (pad (depth + 2)) (mem_ref target) v
    | Plan.Window_full _ ->
      out "%s%s(%s) := %s;\n" (pad (depth + 2)) (win gp.C_source.group)
        (rank_text gp) v
    | Plan.Window_partial { beta; _ } ->
      out "%sif %s < %d then %s(%s) := %s; else %s := %s; end if;\n"
        (pad (depth + 2)) (rank_text gp) beta (win gp.C_source.group)
        (rank_text gp) v (mem_ref target) v
  in
  List.iter emit_stmt nest.Nest.body;
  out "%swait until rising_edge(clk); -- one body iteration\n" (pad (depth + 2));
  for level = depth - 1 downto 0 do
    List.iter (window_edge ~load:false (level + 1)) plans;
    out "%send loop;\n" (pad (level + 2))
  done;
  out "\n    done <= '1';\n    wait;\n  end process main;\n\nend architecture behavioral;\n";
  Buffer.contents buf

let emit_testbench plan =
  let name = entity_name plan in
  let nest =
    plan.Plan.allocation.Srfa_reuse.Allocation.analysis.Srfa_reuse.Analysis.nest
  in
  let iterations = Nest.iterations nest in
  (* Generous bound: every iteration could serialise all of its accesses. *)
  let timeout_cycles = (iterations * 16) + 1000 in
  let buf = Buffer.create 2048 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  out "-- Self-checking testbench for %s (generated).\n" name;
  out "library ieee;\nuse ieee.std_logic_1164.all;\n\n";
  out "entity %s_tb is\nend entity %s_tb;\n\n" name name;
  out "architecture sim of %s_tb is\n" name;
  out "  signal clk   : std_logic := '0';\n";
  out "  signal start : std_logic := '0';\n";
  out "  signal done  : std_logic;\n";
  out "begin\n\n";
  out "  clk <= not clk after 20 ns; -- 25 MHz\n\n";
  out "  dut : entity work.%s\n    port map (clk => clk, start => start, done => done);\n\n"
    name;
  out "  stimulus : process\n  begin\n";
  out "    wait for 100 ns;\n";
  out "    start <= '1';\n";
  out "    wait until rising_edge(clk);\n";
  out "    start <= '0';\n";
  out "    -- %d body iterations; fail if the design never finishes.\n"
    iterations;
  out "    for t in 0 to %d loop\n" timeout_cycles;
  out "      exit when done = '1';\n";
  out "      wait until rising_edge(clk);\n";
  out "    end loop;\n";
  out "    assert done = '1'\n";
  out "      report \"%s did not complete within %d cycles\" severity failure;\n"
    name timeout_cycles;
  out "    report \"%s completed\" severity note;\n" name;
  out "    wait;\n";
  out "  end process stimulus;\n\nend architecture sim;\n";
  Buffer.contents buf
