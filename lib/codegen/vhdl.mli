(** Behavioral VHDL backend.

    Emits one entity per kernel design: loop counters as an FSM, window
    registers as signal arrays, RAM-backed arrays as synchronous
    single-cycle memory interfaces (one address/data port pair per array,
    matching the paper's one-array-per-BlockRAM mapping), and the
    rank-steered register/RAM multiplexing the allocation implies.

    The paper's flow synthesised Monet-generated structural VHDL with
    Synplify + ISE; here the emitted text stands in for that artefact —
    it is deterministic, human-readable, and exercised by structural
    well-formedness tests rather than a synthesis tool (none ships in this
    environment). *)

val emit : Plan.t -> string
(** VHDL source of the design. *)

val emit_testbench : Plan.t -> string
(** A self-checking testbench: instantiates the entity, drives a 40 ns
    clock, pulses [start], and waits for [done] with a generous timeout.
    Paired with {!emit} this gives a simulation-ready pair of files. *)

val entity_name : Plan.t -> string
(** The VHDL-identifier form of the kernel name. *)
