open Srfa_ir
open Srfa_reuse

type gstate = {
  gp_access : Plan.access;
  info : Analysis.info;
  window : int array;       (* fixed coords of the current window *)
  win : int array;          (* register file contents *)
  prologue : bool;
  writeback : bool;
}

(* Enumerate the window sub-space the generated prologue/epilogue loops
   cover: the in-window levels whose rank coefficient is non-zero sweep
   their ranges, every other in-window level is pinned to 0, the outer
   levels keep the current window coordinates. Calls [f point rank] for
   each visited point. *)
let iter_window_edge ~counts ~rank_coeffs ~window_level ~point f =
  let depth = Array.length counts in
  let p = Array.copy point in
  for l = window_level to depth - 1 do
    p.(l) <- 0
  done;
  let rec walk l =
    if l = depth then begin
      let rank = ref 0 in
      for l' = 0 to depth - 1 do
        rank := !rank + (rank_coeffs.(l') * p.(l'))
      done;
      f p !rank
    end
    else if l < window_level || rank_coeffs.(l) = 0 then walk (l + 1)
    else
      for c = 0 to counts.(l) - 1 do
        p.(l) <- c;
        walk (l + 1)
      done
  in
  walk window_level

let run plan ~init =
  let alloc = plan.Plan.allocation in
  let analysis = alloc.Allocation.analysis in
  let nest = analysis.Analysis.nest in
  let counts = Array.of_list (Nest.trip_counts nest) in
  let store = Interp.store_create nest in
  let init_input (d : Decl.t) =
    match d.Decl.storage with
    | Decl.Input -> Interp.store_init store d.Decl.name (init d.Decl.name)
    | Decl.Output | Decl.Local -> ()
  in
  List.iter init_input nest.Nest.arrays;
  let ram_read (i : Analysis.info) point =
    let r = i.Analysis.group.Group.ref_ in
    let env = Iterspace.env_of_point nest point in
    Interp.read store r.Expr.decl.Decl.name (Expr.eval_index r ~env)
  in
  let ram_write (i : Analysis.info) point v =
    let r = i.Analysis.group.Group.ref_ in
    let env = Iterspace.env_of_point nest point in
    let coords = Expr.eval_index r ~env in
    (* Interp has no write primitive; poke through store_init-free path. *)
    let name = r.Expr.decl.Decl.name in
    Interp.write store name coords v
  in
  let states =
    Array.init (Analysis.num_groups analysis) (fun gid ->
        let info = Analysis.info analysis gid in
        let beta =
          match Plan.access plan gid with
          | Plan.Window_full { beta; _ } | Plan.Window_partial { beta; _ } ->
            beta
          | Plan.Ram_always | Plan.Window_opaque _ -> 0
        in
        {
          gp_access = Plan.access plan gid;
          info;
          window = Array.make (Array.length counts) min_int;
          win = Array.make (max beta 1) 0;
          prologue = Plan.needs_prologue plan gid;
          writeback = Plan.needs_writeback plan gid;
        })
  in
  let edge_params st =
    match st.gp_access with
    | Plan.Window_full { beta; rank_coeffs }
    | Plan.Window_partial { beta; rank_coeffs } ->
      Some (beta, rank_coeffs)
    | Plan.Ram_always | Plan.Window_opaque _ -> None
  in
  let do_writeback st at_point =
    match edge_params st with
    | Some (beta, rank_coeffs) when st.writeback ->
      iter_window_edge ~counts ~rank_coeffs
        ~window_level:st.info.Analysis.window_level ~point:at_point
        (fun p rank -> if rank < beta then ram_write st.info p st.win.(rank))
    | Some _ | None -> ()
  in
  let do_prologue st at_point =
    match edge_params st with
    | Some (beta, rank_coeffs) when st.prologue ->
      iter_window_edge ~counts ~rank_coeffs
        ~window_level:st.info.Analysis.window_level ~point:at_point
        (fun p rank -> if rank < beta then st.win.(rank) <- ram_read st.info p)
    | Some _ | None -> ()
  in
  let rank_at st point =
    match edge_params st with
    | Some (_, rank_coeffs) ->
      let rank = ref 0 in
      for l = 0 to Array.length counts - 1 do
        rank := !rank + (rank_coeffs.(l) * point.(l))
      done;
      !rank
    | None -> max_int
  in
  let visit point =
    (* Window boundaries: write back the finished window, load the new. *)
    Array.iter
      (fun st ->
        match edge_params st with
        | None -> ()
        | Some _ ->
          let wl = st.info.Analysis.window_level in
          let changed = ref false in
          for l = 0 to wl - 1 do
            if st.window.(l) <> point.(l) then changed := true
          done;
          if !changed then begin
            if st.window.(0) <> min_int then do_writeback st st.window;
            Array.blit point 0 st.window 0 (Array.length point);
            do_prologue st point
          end)
      states;
    let env = Iterspace.env_of_point nest point in
    let load (r : Expr.ref_) coords =
      let g = Group.find analysis.Analysis.groups r in
      let st = states.(g.Group.id) in
      let rank = rank_at st point in
      let beta =
        match edge_params st with Some (b, _) -> b | None -> -1
      in
      if rank < beta then st.win.(rank)
      else Interp.read store r.Expr.decl.Decl.name coords
    in
    let exec (Expr.Assign (target, e)) =
      let v = Expr.eval e ~env ~load in
      let g = Group.find analysis.Analysis.groups target in
      let st = states.(g.Group.id) in
      let rank = rank_at st point in
      let beta =
        match edge_params st with Some (b, _) -> b | None -> -1
      in
      if rank < beta then st.win.(rank) <- v
      else
        Interp.write store target.Expr.decl.Decl.name
          (Expr.eval_index target ~env) v
    in
    List.iter exec nest.Nest.body
  in
  Iterspace.iter nest visit;
  (* Final windows still hold live data. *)
  Array.iter
    (fun st -> if st.window.(0) <> min_int then do_writeback st st.window)
    states;
  store

let equivalent plan ~init =
  let nest = plan.Plan.allocation.Allocation.analysis.Analysis.nest in
  let reference = Interp.run_fresh nest ~init in
  let transformed = run plan ~init in
  List.for_all
    (fun (d : Decl.t) ->
      match d.Decl.storage with
      | Decl.Output -> Interp.equal_array reference transformed d.Decl.name
      | Decl.Input | Decl.Local -> true)
    nest.Nest.arrays
