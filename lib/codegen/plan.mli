(** Code-generation plan: how each reference group is realised in hardware.

    Derived from an allocation. The paper's code-generation scheme uses
    loop peeling (or predication) to load reuse windows into registers and
    restore them to memory; the plan captures, per group, which accesses
    the steady-state body serves from the register window and under what
    condition. *)

open Srfa_reuse

type access =
  | Ram_always
      (** no pinned registers (or no reuse): plain RAM access *)
  | Window_full of { beta : int; rank_coeffs : int array }
      (** the whole reuse window is register-resident; the rank expression
          (per-level coefficients) names the slot an iteration touches *)
  | Window_partial of { beta : int; rank_coeffs : int array }
      (** slots [0, beta) resident; access is in registers iff the rank
          expression evaluates below [beta] *)
  | Window_opaque of { beta : int }
      (** the window's first-touch order is not affine; the emitted code
          keeps these accesses in RAM (conservative: the simulator's
          optimistic covering does not apply to generated code) *)

type t = private {
  allocation : Allocation.t;
  accesses : access array; (** by group id *)
}

val build : Allocation.t -> t

val access : t -> int -> access

val needs_prologue : t -> int -> bool
(** Whether the group's window must be loaded from RAM at window entry:
    windowed groups that are read before any write reaches them (pure
    inputs and accumulators). *)

val needs_writeback : t -> int -> bool
(** Whether the group's window must reach RAM at window exit: written
    windows of live-out arrays, and written windows that a later prologue
    would otherwise reload stale. *)

val prologue_loads : t -> int
(** Register loads the peeled prologue must perform per window entry
    (sum of resident window sizes of groups that are read). *)

type edge_strategy =
  | Reload_window
      (** naive peeling: refill every covered slot at each window entry *)
  | Shift_window
      (** delta peeling: load each element the first time it becomes
          resident, shifting surviving values between windows (the
          accounting the paper's saved-access formula implies) *)

val edge_transfers : t -> strategy:edge_strategy -> int
(** Total RAM transfers the peeled prologues and writeback epilogues of
    the generated code perform over the whole nest, under the given
    code-generation strategy. The steady-state cycle model charges none of
    these (DESIGN.md §4); this function quantifies the assumption. *)

val describe : t -> (string * string) list
(** Human-readable (group, realisation) pairs, for reports and examples. *)
