(** Scalar-replaced C rendering of a kernel.

    Emits the transformed source the paper produced by hand before HLS:
    window register declarations, peeled prologue loads at each window
    entry, a steady-state body that reads registers when the slot-rank
    condition holds, and writeback epilogues for written windows. The
    output is legal C (modulo the array parameters being globals) and is
    primarily documentation: the semantics oracle for the transform is
    {!Exec_check}. *)

open Srfa_ir
open Srfa_reuse

val emit : Plan.t -> string

val emit_standalone : Plan.t -> string
(** A complete compilable program: the transformed kernel plus a [main]
    that fills every input array with a deterministic pattern (the same
    one the test suite's interpreter oracle uses), runs the kernel, and
    prints each output array element in row-major order, one per line.
    The differential test compiles this with the system C compiler and
    compares the process output against {!Srfa_ir.Interp}. *)

(** {2 Shared helpers}

    The VHDL backend mirrors this emitter's structure and reuses its
    per-group plan records and affine rendering. *)

type group_plan = {
  info : Analysis.info;
  group : Group.t;
  access : Plan.access;
  needs_prologue : bool;
  needs_writeback : bool;
}

val group_plans : Plan.t -> group_plan list
(** One record per group, in group-id order. *)

val affine_to_c : ?zero:string list -> Affine.t -> string
(** Renders an affine expression as integer arithmetic; variables in
    [zero] are substituted by 0. *)
