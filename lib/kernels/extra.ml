open Srfa_ir
open Builder

let conv2d ?(mask = 3) ?(image = 32) () =
  let positions = Stdlib.(image - mask + 1) in
  let im = input "im" [ image; image ]
  and m = input "m" [ mask; mask ]
  and out = output "out" [ positions; positions ] in
  let r = idx "r" and c = idx "c" and u = idx "u" and v = idx "v" in
  nest "conv2d"
    ~loops:[ ("r", positions); ("c", positions); ("u", mask); ("v", mask) ]
    [
      at out [ r; c ]
      <-- (out.%[ [ r; c ] ] + (m.%[ [ u; v ] ] * im.%[ [ r +: u; c +: v ] ]));
    ]

let moving_average ?(window = 16) ?(samples = 256) () =
  let outputs = Stdlib.(samples - window + 1) in
  let x = input "x" [ samples ] and y = output "y" [ outputs ] in
  let i = idx "i" and j = idx "j" in
  nest "moving-average"
    ~loops:[ ("i", outputs); ("j", window) ]
    [ at y [ i ] <-- (y.%[ [ i ] ] + (x.%[ [ i +: j ] ] / const window)) ]

let corner_turn ?(size = 16) () =
  let a = input "a" [ size; size ]
  and b = input "b" [ size; size ]
  and c = output "c" [ size; size ] in
  let i = idx "i" and j = idx "j" and k = idx "k" in
  nest "corner-turn"
    ~loops:[ ("i", size); ("j", size); ("k", size) ]
    [ at c [ i; j ] <-- (c.%[ [ i; j ] ] + (a.%[ [ k; i ] ] * b.%[ [ k; j ] ])) ]

let gradient_pair ?(size = 24) () =
  let im = input "im" [ size; Stdlib.(size + 1) ]
  and gx = output "gx" [ size; size ]
  and gy = output "gy" [ size; size ] in
  (* gy reads a second image so the two statements share no arrays: the
     body's DFG has two disconnected components. *)
  let im2 = input "im2" [ Stdlib.(size + 1); size ] in
  let r = idx "r" and c = idx "c" in
  nest "gradient-pair"
    ~loops:[ ("r", size); ("c", size) ]
    [
      at gx [ r; c ] <-- (im.%[ [ r; c +: cidx 1 ] ] - im.%[ [ r; c ] ]);
      at gy [ r; c ] <-- (im2.%[ [ r +: cidx 1; c ] ] - im2.%[ [ r; c ] ]);
    ]

let all () =
  [
    ("conv2d", conv2d ());
    ("moving-average", moving_average ());
    ("corner-turn", corner_turn ());
    ("gradient-pair", gradient_pair ());
  ]

let find name =
  match String.lowercase_ascii name with
  | "conv2d" -> Some (conv2d ())
  | "moving-average" | "movavg" -> Some (moving_average ())
  | "corner-turn" | "cornerturn" -> Some (corner_turn ())
  | "gradient-pair" | "gradient" -> Some (gradient_pair ())
  | _ -> None
