open Srfa_ir
open Builder

let conv2d ?(mask = 3) ?(image = 32) () =
  let positions = Stdlib.(image - mask + 1) in
  let im = input "im" [ image; image ]
  and m = input "m" [ mask; mask ]
  and out = output "out" [ positions; positions ] in
  let r = idx "r" and c = idx "c" and u = idx "u" and v = idx "v" in
  nest "conv2d"
    ~loops:[ ("r", positions); ("c", positions); ("u", mask); ("v", mask) ]
    [
      at out [ r; c ]
      <-- (out.%[ [ r; c ] ] + (m.%[ [ u; v ] ] * im.%[ [ r +: u; c +: v ] ]));
    ]

let moving_average ?(window = 16) ?(samples = 256) () =
  let outputs = Stdlib.(samples - window + 1) in
  let x = input "x" [ samples ] and y = output "y" [ outputs ] in
  let i = idx "i" and j = idx "j" in
  nest "moving-average"
    ~loops:[ ("i", outputs); ("j", window) ]
    [ at y [ i ] <-- (y.%[ [ i ] ] + (x.%[ [ i +: j ] ] / const window)) ]

let corner_turn ?(size = 16) () =
  let a = input "a" [ size; size ]
  and b = input "b" [ size; size ]
  and c = output "c" [ size; size ] in
  let i = idx "i" and j = idx "j" and k = idx "k" in
  nest "corner-turn"
    ~loops:[ ("i", size); ("j", size); ("k", size) ]
    [ at c [ i; j ] <-- (c.%[ [ i; j ] ] + (a.%[ [ k; i ] ] * b.%[ [ k; j ] ])) ]

let gradient_pair ?(size = 24) () =
  let im = input "im" [ size; Stdlib.(size + 1) ]
  and gx = output "gx" [ size; size ]
  and gy = output "gy" [ size; size ] in
  (* gy reads a second image so the two statements share no arrays: the
     body's DFG has two disconnected components. *)
  let im2 = input "im2" [ Stdlib.(size + 1); size ] in
  let r = idx "r" and c = idx "c" in
  nest "gradient-pair"
    ~loops:[ ("r", size); ("c", size) ]
    [
      at gx [ r; c ] <-- (im.%[ [ r; c +: cidx 1 ] ] - im.%[ [ r; c ] ]);
      at gy [ r; c ] <-- (im2.%[ [ r +: cidx 1; c ] ] - im2.%[ [ r; c ] ]);
    ]

(* An "unrolled" body: many independent statement copies with identical
   critical-path length, so every reference group stays on the critical
   graph. The decomposition into copies of 3 groups (two loads, one store)
   and 2 groups (one squared load, one store) reaches any total >= 2; both
   copy shapes have the same source-to-sink latency (load, multiply,
   store), which is what keeps the whole body critical. The per-copy
   minimal cuts compose multiplicatively across copies — precisely the
   regime where subset enumeration explodes and the flow engine stays
   polynomial. *)
let synthetic_cut ?(groups = 16) ?(outer = 4) ?(inner = 8) () =
  if groups < 2 then
    invalid_arg "Extra.synthetic_cut: need at least 2 reference groups";
  if outer < 2 || inner < 2 then
    invalid_arg "Extra.synthetic_cut: loop counts must be at least 2";
  let rec sizes g acc =
    if g = 0 then List.rev acc
    else if g = 2 then List.rev (2 :: acc)
    else if g = 4 then List.rev (2 :: 2 :: acc)
    else sizes Stdlib.(g - 3) (3 :: acc)
  in
  let i = idx "i" and j = idx "j" in
  let nload = ref 0 in
  let load () =
    let x = input (Printf.sprintf "x%d" !nload) [ inner ] in
    incr nload;
    x.%[ [ j ] ]
  in
  let body =
    List.mapi
      (fun k size ->
        let out = output (Printf.sprintf "o%d" k) [ outer; inner ] in
        let rhs =
          match size with
          | 2 ->
            let x = load () in
            x * x
          | _ -> load () * load ()
        in
        at out [ i; j ] <-- rhs)
      (sizes groups [])
  in
  nest "synthetic-cut" ~loops:[ ("i", outer); ("j", inner) ] body

let all () =
  [
    ("conv2d", conv2d ());
    ("moving-average", moving_average ());
    ("corner-turn", corner_turn ());
    ("gradient-pair", gradient_pair ());
  ]

let find name =
  match String.lowercase_ascii name with
  | "conv2d" -> Some (conv2d ())
  | "moving-average" | "movavg" -> Some (moving_average ())
  | "corner-turn" | "cornerturn" -> Some (corner_turn ())
  | "gradient-pair" | "gradient" -> Some (gradient_pair ())
  | "synthetic-cut" | "synthetic" -> Some (synthetic_cut ())
  | _ -> None
