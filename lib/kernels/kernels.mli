(** The paper's benchmark kernels (§5) and the Fig. 1 running example.

    All kernels are perfect nests with compile-time bounds, written against
    {!Srfa_ir.Builder}. Default parameters follow the paper's prose; the
    exact literals are unreadable in the published scan, so they are
    recorded (and justified) in DESIGN.md §4 and kept overridable here for
    sensitivity experiments.

    Accumulations are expressed as [acc = acc + ...] on an output array
    element whose index is invariant in the reduction loop; the reuse
    analysis then assigns the accumulator a single register, which is
    exactly how the paper's designs keep partial sums out of RAM. *)

open Srfa_ir

val example : unit -> Nest.t
(** Fig. 1: the 3-deep nest over [d\[i\]\[k\] = a\[k\]*b\[k\]\[j\]];
    [e\[i\]\[j\]\[k\] = c\[j\]*d\[i\]\[k\]] with the recovered bounds
    (1, 20, 30). *)

val fir : ?taps:int -> ?samples:int -> unit -> Nest.t
(** Finite impulse response filter: [y\[i\] += c\[j\] * x\[i+j\]].
    Defaults: 32 taps over 1024 samples. *)

val dec_fir : ?taps:int -> ?samples:int -> ?decimation:int -> unit -> Nest.t
(** Decimating FIR: [y\[i\] += c\[j\] * x\[D*i+j\]].
    Defaults: 64 taps, 1024 samples, decimation 4. *)

val mat : ?size:int -> unit -> Nest.t
(** Square matrix-matrix multiply, default 32 x 32. *)

val imi : ?width:int -> ?height:int -> ?frames:int -> unit -> Nest.t
(** Image interpolation: [frames] intermediate images blended from two
    greyscale [height x width] sources, frame loop outermost.
    Defaults: 64 x 64, 8 frames. *)

val pat : ?pattern:int -> ?text:int -> unit -> Nest.t
(** Pattern matching: occurrence counts of a [pattern]-character string at
    every position of a [text]-character string.
    Defaults: 64-character pattern, 1024-character text. *)

val bic : ?template:int -> ?image:int -> unit -> Nest.t
(** Binary image correlation: a [template x template] mask against every
    overlapping region of an [image x image] bitmap (4-deep nest).
    Defaults: 16 x 16 template, 64 x 64 image. *)

val all : unit -> (string * Nest.t) list
(** The six Table 1 kernels with default parameters, in the paper's order:
    FIR, Dec-FIR, IMI, MAT, PAT, BIC. *)

val find : string -> Nest.t option
(** Lookup by (case-insensitive) kernel name, including "example" and the
    {!Extra} kernels. *)

val names : string list
(** All valid names for {!find}. *)
