(** Kernels beyond the paper's six, exercising shapes Table 1 does not:
    2-D stencils with two coupled dimensions, multi-statement bodies with
    disconnected data-flow components, and transposed-operand reuse. Used
    by the generality tests and available to the CLI. *)

open Srfa_ir

val conv2d : ?mask:int -> ?image:int -> unit -> Nest.t
(** Dense 2-D convolution: [mask x mask] coefficients over an
    [image x image] input (4-deep). Defaults 3 x 3 over 32 x 32. *)

val moving_average : ?window:int -> ?samples:int -> unit -> Nest.t
(** Boxcar filter: mean of [window] consecutive samples (2-deep).
    Defaults: window 16 over 256 samples. *)

val corner_turn : ?size:int -> unit -> Nest.t
(** Transposed matrix product [c\[i\]\[j\] += a\[k\]\[i\] * b\[k\]\[j\]]:
    both operands stream column-major, changing which loops carry reuse
    compared to MAT. Default 16 x 16. *)

val gradient_pair : ?size:int -> unit -> Nest.t
(** Two independent 1-D gradients computed in one body (two statements
    with disjoint data flow): the DFG has two components and the critical
    graph covers only the slower one. Default 24 x 24. *)

val synthetic_cut : ?groups:int -> ?outer:int -> ?inner:int -> unit -> Nest.t
(** An unrolled-style body with exactly [groups] reference groups, all on
    the critical graph: independent multiply statements of identical
    critical-path length whose minimal cuts compose multiplicatively
    across statement copies. Stress input for the cut engines — subset
    enumeration is exponential in [groups] here while the flow engine
    stays polynomial. Defaults: 16 groups, loops 4 x 8.
    @raise Invalid_argument when [groups < 2] or a loop count is below 2. *)

val all : unit -> (string * Nest.t) list
(** The four showcase kernels ({!synthetic_cut} is reachable through
    {!find} only, so the registry stays the generality-test set). *)

val find : string -> Nest.t option
