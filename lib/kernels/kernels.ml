open Srfa_ir
open Builder

let example () =
  let a = input "a" [ 30 ]
  and b = input "b" [ 30; 20 ]
  and c = input "c" [ 20 ]
  and d = output "d" [ 1; 30 ]
  and e = output "e" [ 1; 20; 30 ] in
  let i = idx "i" and j = idx "j" and k = idx "k" in
  nest "example"
    ~loops:[ ("i", 1); ("j", 20); ("k", 30) ]
    [
      at d [ i; k ] <-- (a.%[[ k ]] * b.%[[ k; j ]]);
      at e [ i; j; k ] <-- (c.%[[ j ]] * d.%[[ i; k ]]);
    ]

let fir ?(taps = 32) ?(samples = 1024) () =
  let outputs = Stdlib.(samples - taps + 1) in
  let x = input "x" [ samples ]
  and c = input "c" [ taps ]
  and y = output "y" [ outputs ] in
  let i = idx "i" and j = idx "j" in
  nest "fir"
    ~loops:[ ("i", outputs); ("j", taps) ]
    [ at y [ i ] <-- (y.%[[ i ]] + (c.%[[ j ]] * x.%[[ i +: j ]])) ]

let dec_fir ?(taps = 64) ?(samples = 1024) ?(decimation = 4) () =
  let outputs = Stdlib.(((samples - taps) / decimation) + 1) in
  let x = input "x" [ samples ]
  and c = input "c" [ taps ]
  and y = output "y" [ outputs ] in
  let i = idx "i" and j = idx "j" in
  nest "dec-fir"
    ~loops:[ ("i", outputs); ("j", taps) ]
    [ at y [ i ] <-- (y.%[[ i ]] + (c.%[[ j ]] * x.%[[ (decimation *: i) +: j ]])) ]

let mat ?(size = 32) () =
  let a = input "a" [ size; size ]
  and b = input "b" [ size; size ]
  and c = output "c" [ size; size ] in
  let i = idx "i" and j = idx "j" and k = idx "k" in
  nest "mat"
    ~loops:[ ("i", size); ("j", size); ("k", size) ]
    [ at c [ i; j ] <-- (c.%[[ i; j ]] + (a.%[[ i; k ]] * b.%[[ k; j ]])) ]

let imi ?(width = 64) ?(height = 64) ?(frames = 8) () =
  let im1 = input "im1" [ height; width ]
  and im2 = input "im2" [ height; width ]
  and w = input "w" [ frames ]
  and out = output "out" [ frames; height; width ] in
  let f = idx "f" and r = idx "r" and c = idx "c" in
  (* Linear blend, per-frame weight from a small table:
     out = im1 + w[f]*(im2-im1)/frames. *)
  nest "imi"
    ~loops:[ ("f", frames); ("r", height); ("c", width) ]
    [
      at out [ f; r; c ]
      <-- (im1.%[[ r; c ]]
          + (w.%[[ f ]] * (im2.%[[ r; c ]] - im1.%[[ r; c ]]) / const frames));
    ]

let pat ?(pattern = 64) ?(text = 1024) () =
  let positions = Stdlib.(text - pattern + 1) in
  let s = input "s" [ text ] ~bits:8
  and p = input "p" [ pattern ] ~bits:8
  and hits = output "hits" [ positions ] in
  let i = idx "i" and q = idx "q" in
  nest "pat"
    ~loops:[ ("i", positions); ("q", pattern) ]
    [ at hits [ i ] <-- (hits.%[[ i ]] + eq s.%[[ i +: q ]] p.%[[ q ]]) ]

let bic ?(template = 16) ?(image = 64) () =
  let positions = Stdlib.(image - template + 1) in
  let im = input "im" [ image; image ] ~bits:1
  and t = input "t" [ template; template ] ~bits:1
  and score = output "score" [ positions; positions ] in
  let r = idx "r" and c = idx "c" and u = idx "u" and v = idx "v" in
  nest "bic"
    ~loops:[ ("r", positions); ("c", positions); ("u", template); ("v", template) ]
    [
      at score [ r; c ]
      <-- (score.%[[ r; c ]] + eq im.%[[ r +: u; c +: v ]] t.%[[ u; v ]]);
    ]

let all () =
  [
    ("fir", fir ());
    ("dec-fir", dec_fir ());
    ("imi", imi ());
    ("mat", mat ());
    ("pat", pat ());
    ("bic", bic ());
  ]

let names =
  [ "fir"; "dec-fir"; "imi"; "mat"; "pat"; "bic"; "example" ]
  @ List.map fst (Extra.all ())

let find name =
  match String.lowercase_ascii name with
  | "example" -> Some (example ())
  | "fir" -> Some (fir ())
  | "dec-fir" | "decfir" | "dec_fir" -> Some (dec_fir ())
  | "mat" | "matmul" -> Some (mat ())
  | "imi" -> Some (imi ())
  | "pat" -> Some (pat ())
  | "bic" -> Some (bic ())
  | other -> Extra.find other
