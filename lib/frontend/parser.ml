open Srfa_ir

exception Error of string

type state = {
  tokens : Lexer.located array;
  mutable pos : int;
  mutable decls : (string * Decl.t) list;
  mutable loop_vars : string list; (* outermost first *)
}

let fail (st : state) fmt =
  let { Lexer.line; col; _ } = st.tokens.(st.pos) in
  Format.kasprintf
    (fun msg ->
      raise (Error (Printf.sprintf "line %d, column %d: %s" line col msg)))
    fmt

let current st = st.tokens.(st.pos).Lexer.token
let advance st = st.pos <- st.pos + 1

let expect st token =
  if current st = token then advance st
  else
    fail st "expected %s, found %s" (Lexer.describe token)
      (Lexer.describe (current st))

let ident st =
  match current st with
  | Lexer.Ident name ->
    advance st;
    name
  | t -> fail st "expected an identifier, found %s" (Lexer.describe t)

let integer st =
  match current st with
  | Lexer.Int v ->
    advance st;
    v
  | Lexer.Minus -> (
    advance st;
    match current st with
    | Lexer.Int v ->
      advance st;
      -v
    | t -> fail st "expected an integer after '-', found %s" (Lexer.describe t))
  | t -> fail st "expected an integer, found %s" (Lexer.describe t)

let find_decl st name = List.assoc_opt name st.decls
let is_loop_var st name = List.mem name st.loop_vars

(* --- index expressions: affine over loop variables ---------------------- *)

(* term := INT | INT '*' IDENT | IDENT | IDENT '*' INT *)
let affine_term st =
  match current st with
  | Lexer.Int coeff -> (
    advance st;
    match current st with
    | Lexer.Star ->
      advance st;
      let v = ident st in
      if not (is_loop_var st v) then
        fail st "%s is not an enclosing loop variable" v;
      Affine.var ~coeff v
    | _ -> Affine.const coeff)
  | Lexer.Ident v -> (
    advance st;
    if not (is_loop_var st v) then
      fail st
        "%s is not an enclosing loop variable (array references cannot \
         appear inside indices)"
        v;
    match current st with
    | Lexer.Star -> (
      advance st;
      match current st with
      | Lexer.Int coeff ->
        advance st;
        Affine.var ~coeff v
      | t -> fail st "expected a constant coefficient, found %s" (Lexer.describe t))
    | _ -> Affine.var v)
  | t -> fail st "expected an index term, found %s" (Lexer.describe t)

let affine_expr st =
  let acc = ref (affine_term st) in
  let continue = ref true in
  while !continue do
    match current st with
    | Lexer.Plus ->
      advance st;
      acc := Affine.add !acc (affine_term st)
    | Lexer.Minus ->
      advance st;
      acc := Affine.sub !acc (affine_term st)
    | _ -> continue := false
  done;
  !acc

let reference st name =
  match find_decl st name with
  | None -> fail st "undeclared array %s" name
  | Some decl ->
    let rec indices acc =
      match current st with
      | Lexer.Lbracket ->
        advance st;
        let ix = affine_expr st in
        expect st Lexer.Rbracket;
        indices (ix :: acc)
      | _ -> List.rev acc
    in
    let index = indices [] in
    if List.length index <> Decl.rank decl then
      fail st "%s has rank %d but %d indices were given" name (Decl.rank decl)
        (List.length index);
    Expr.ref_ decl index

(* --- value expressions --------------------------------------------------- *)

(* precedence (loosest to tightest): | , ^ , & , == , < , + - , * / , primary *)
let rec expr st = bitor st

and bitor st =
  let left = bitxor st in
  match current st with
  | Lexer.Pipe ->
    advance st;
    Expr.Binary (Op.Bor, left, bitor st)
  | _ -> left

and bitxor st =
  let left = bitand st in
  match current st with
  | Lexer.Caret ->
    advance st;
    Expr.Binary (Op.Bxor, left, bitxor st)
  | _ -> left

and bitand st =
  let left = equality st in
  match current st with
  | Lexer.Amp ->
    advance st;
    Expr.Binary (Op.Band, left, bitand st)
  | _ -> left

and equality st =
  let left = comparison st in
  match current st with
  | Lexer.Eq ->
    advance st;
    Expr.Binary (Op.Eq, left, comparison st)
  | _ -> left

and comparison st =
  let left = additive st in
  match current st with
  | Lexer.Lt ->
    advance st;
    Expr.Binary (Op.Lt, left, additive st)
  | _ -> left

and additive st =
  let acc = ref (multiplicative st) in
  let continue = ref true in
  while !continue do
    match current st with
    | Lexer.Plus ->
      advance st;
      acc := Expr.Binary (Op.Add, !acc, multiplicative st)
    | Lexer.Minus ->
      advance st;
      acc := Expr.Binary (Op.Sub, !acc, multiplicative st)
    | _ -> continue := false
  done;
  !acc

and multiplicative st =
  let acc = ref (primary st) in
  let continue = ref true in
  while !continue do
    match current st with
    | Lexer.Star ->
      advance st;
      acc := Expr.Binary (Op.Mul, !acc, primary st)
    | Lexer.Slash ->
      advance st;
      acc := Expr.Binary (Op.Div, !acc, primary st)
    | _ -> continue := false
  done;
  !acc

and primary st =
  match current st with
  | Lexer.Int v ->
    advance st;
    Expr.Const v
  | Lexer.Minus ->
    advance st;
    Expr.Unary (Op.Neg, primary st)
  | Lexer.Lparen ->
    advance st;
    let e = expr st in
    expect st Lexer.Rparen;
    e
  | Lexer.Ident ("min" | "max" | "abs") -> call st
  | Lexer.Ident name ->
    if is_loop_var st name then
      fail st
        "loop variable %s cannot be used as a value (store the values it \
         would contribute in an input array)"
        name;
    advance st;
    Expr.Load (reference st name)
  | t -> fail st "expected an expression, found %s" (Lexer.describe t)

and call st =
  let name = ident st in
  expect st Lexer.Lparen;
  let a = expr st in
  match name with
  | "abs" ->
    expect st Lexer.Rparen;
    Expr.Unary (Op.Abs, a)
  | "min" | "max" ->
    expect st Lexer.Comma;
    let b = expr st in
    expect st Lexer.Rparen;
    Expr.Binary ((if name = "min" then Op.Min else Op.Max), a, b)
  | other -> fail st "unknown function %s" other

(* --- declarations, loops, statements ------------------------------------ *)

let declaration st =
  let storage =
    match current st with
    | Lexer.Kw_input -> Decl.Input
    | Lexer.Kw_output -> Decl.Output
    | Lexer.Kw_local -> Decl.Local
    | t -> fail st "expected input/output/local, found %s" (Lexer.describe t)
  in
  advance st;
  let bits =
    match current st with
    | Lexer.Kw_int w ->
      advance st;
      w
    | t -> fail st "expected a type, found %s" (Lexer.describe t)
  in
  let name = ident st in
  if find_decl st name <> None then fail st "array %s declared twice" name;
  let rec dims acc =
    match current st with
    | Lexer.Lbracket ->
      advance st;
      let d = integer st in
      if d <= 0 then fail st "array extent must be positive, got %d" d;
      expect st Lexer.Rbracket;
      dims (d :: acc)
    | _ -> List.rev acc
  in
  let dims = dims [] in
  expect st Lexer.Semicolon;
  st.decls <- (name, Decl.make ~bits ~storage name dims) :: st.decls

let statement st =
  let name = ident st in
  let target = reference st name in
  match current st with
  | Lexer.Assign ->
    advance st;
    let e = expr st in
    expect st Lexer.Semicolon;
    Expr.Assign (target, e)
  | Lexer.Plus_assign ->
    advance st;
    let e = expr st in
    expect st Lexer.Semicolon;
    Expr.Assign (target, Expr.Binary (Op.Add, Expr.Load target, e))
  | t -> fail st "expected '=' or '+=', found %s" (Lexer.describe t)

let rec loops st acc_loops =
  match current st with
  | Lexer.Kw_for ->
    advance st;
    expect st Lexer.Lparen;
    let v = ident st in
    if is_loop_var st v then fail st "loop variable %s reused" v;
    if find_decl st v <> None then
      fail st "loop variable %s collides with an array" v;
    expect st Lexer.Assign;
    let lo = integer st in
    if lo <> 0 then fail st "loops must start at 0 (got %d)" lo;
    expect st Lexer.Semicolon;
    let v2 = ident st in
    if v2 <> v then fail st "loop condition must test %s, found %s" v v2;
    expect st Lexer.Lt;
    let count = integer st in
    if count <= 0 then fail st "trip count must be positive, got %d" count;
    expect st Lexer.Semicolon;
    let v3 = ident st in
    if v3 <> v then fail st "loop increment must bump %s, found %s" v v3;
    expect st Lexer.Plus_plus;
    expect st Lexer.Rparen;
    st.loop_vars <- st.loop_vars @ [ v ];
    loops st (acc_loops @ [ Nest.loop v count ])
  | Lexer.Lbrace ->
    advance st;
    let rec stmts acc =
      match current st with
      | Lexer.Rbrace ->
        advance st;
        List.rev acc
      | _ -> stmts (statement st :: acc)
    in
    let body = stmts [] in
    if body = [] then fail st "empty loop body";
    (acc_loops, body)
  | Lexer.Ident _ ->
    (* single unbraced statement *)
    (acc_loops, [ statement st ])
  | t -> fail st "expected 'for', '{' or a statement, found %s" (Lexer.describe t)

let parse src =
  let st =
    {
      tokens = Array.of_list (Lexer.tokenize src);
      pos = 0;
      decls = [];
      loop_vars = [];
    }
  in
  expect st Lexer.Kw_kernel;
  let name = ident st in
  expect st Lexer.Lbrace;
  let rec decls () =
    match current st with
    | Lexer.Kw_input | Lexer.Kw_output | Lexer.Kw_local ->
      declaration st;
      decls ()
    | _ -> ()
  in
  decls ();
  if current st = Lexer.Rbrace then fail st "kernel %s has no loop nest" name;
  let loops, body = loops st [] in
  if loops = [] then fail st "kernel %s has no loops" name;
  expect st Lexer.Rbrace;
  expect st Lexer.Eof;
  let arrays = List.rev_map snd st.decls in
  (* Only keep arrays that are actually referenced; Nest.make rejects
     unreferenced duplicates anyway, but unreferenced declarations are
     user noise we accept silently. *)
  Nest.make ~name ~arrays ~loops ~body

let parse_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let src = really_input_string ic n in
  close_in ic;
  parse src

(* --- checked entry points ------------------------------------------------ *)

module Diag = Srfa_util.Diag

let diag_of_exn = function
  | Error msg -> Diag.of_parser_error msg
  | Lexer.Error msg -> Diag.of_lexer_error msg
  | exn -> Diag.of_exn exn

let parse_result src =
  match parse src with
  | nest -> Ok nest
  | exception exn -> Result.Error [ diag_of_exn exn ]

let parse_file_result path =
  match parse_file path with
  | nest -> Ok nest
  | exception exn -> Result.Error [ diag_of_exn exn ]

(* --- printing ------------------------------------------------------------ *)

let print nest =
  let buf = Buffer.create 1024 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  out "kernel %s {\n"
    (String.map (function ' ' | '-' -> '_' | c -> c) nest.Nest.name);
  let emit_decl (d : Decl.t) =
    let storage =
      match d.Decl.storage with
      | Decl.Input -> "input"
      | Decl.Output -> "output"
      | Decl.Local -> "local"
    in
    let dims =
      String.concat "" (List.map (Printf.sprintf "[%d]") d.Decl.dims)
    in
    out "  %-6s int%d %s%s;\n" storage d.Decl.bits d.Decl.name dims
  in
  List.iter emit_decl nest.Nest.arrays;
  out "\n";
  let depth = Nest.depth nest in
  List.iteri
    (fun level (l : Nest.loop) ->
      out "%sfor (%s = 0; %s < %d; %s++)\n"
        (String.make (2 * (level + 1)) ' ')
        l.Nest.var l.Nest.var l.Nest.count l.Nest.var)
    nest.Nest.loops;
  out "%s{\n" (String.make (2 * (depth + 1)) ' ');
  let ref_text (r : Expr.ref_) =
    r.Expr.decl.Decl.name
    ^ String.concat ""
        (List.map (fun ix -> Printf.sprintf "[%s]" (Affine.to_string ix)) r.Expr.index)
  in
  let rec expr_text (e : Expr.t) =
    match e with
    | Expr.Const v -> if v < 0 then Printf.sprintf "(0 - %d)" (-v) else string_of_int v
    | Expr.Load r -> ref_text r
    | Expr.Unary (Op.Neg, a) -> Printf.sprintf "(0 - %s)" (expr_text a)
    | Expr.Unary (Op.Abs, a) -> Printf.sprintf "abs(%s)" (expr_text a)
    | Expr.Unary (Op.Bnot, a) -> Printf.sprintf "(1 - %s)" (expr_text a)
    | Expr.Binary (op, a, b) ->
      let sa = expr_text a and sb = expr_text b in
      let infix sym = Printf.sprintf "(%s %s %s)" sa sym sb in
      (match op with
      | Op.Add -> infix "+"
      | Op.Sub -> infix "-"
      | Op.Mul -> infix "*"
      | Op.Div -> infix "/"
      | Op.Band -> infix "&"
      | Op.Bor -> infix "|"
      | Op.Bxor -> infix "^"
      | Op.Eq -> infix "=="
      | Op.Lt -> infix "<"
      | Op.Min -> Printf.sprintf "min(%s, %s)" sa sb
      | Op.Max -> Printf.sprintf "max(%s, %s)" sa sb)
  in
  List.iter
    (fun (Expr.Assign (target, e)) ->
      out "%s%s = %s;\n"
        (String.make (2 * (depth + 2)) ' ')
        (ref_text target) (expr_text e))
    nest.Nest.body;
  out "%s}\n}\n" (String.make (2 * (depth + 1)) ' ');
  Buffer.contents buf

(* The canonical hashable form: [print] is deterministic in the nest
   value alone (fixed layout, lowered sugar, normalised names), so a
   parsed kernel and its builder-made twin hash identically. Kept as its
   own name so the serving layer's cache keys are tied to an explicit
   contract rather than to whatever [print] happens to emit. *)
let canonical_source = print
