type token =
  | Ident of string
  | Int of int
  | Kw_kernel
  | Kw_input
  | Kw_output
  | Kw_local
  | Kw_int of int
  | Kw_for
  | Lparen | Rparen
  | Lbrace | Rbrace
  | Lbracket | Rbracket
  | Semicolon | Comma
  | Assign
  | Plus | Minus | Star | Slash
  | Amp | Pipe | Caret
  | Eq
  | Lt
  | Plus_plus
  | Plus_assign
  | Eof

type located = { token : token; line : int; col : int }

exception Error of string

let fail line col fmt =
  Format.kasprintf
    (fun msg -> raise (Error (Printf.sprintf "line %d, column %d: %s" line col msg)))
    fmt

let is_digit c = c >= '0' && c <= '9'
let is_alpha c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_word c = is_alpha c || is_digit c

let keyword line col = function
  | "kernel" -> Kw_kernel
  | "input" -> Kw_input
  | "output" -> Kw_output
  | "local" -> Kw_local
  | "int" -> Kw_int 16
  | "for" -> Kw_for
  | word ->
    if String.length word > 3 && String.sub word 0 3 = "int" then begin
      let suffix = String.sub word 3 (String.length word - 3) in
      match int_of_string_opt suffix with
      | Some w when w > 0 && w <= 64 -> Kw_int w
      | Some w -> fail line col "unsupported integer width %d" w
      | None -> Ident word
    end
    else Ident word

let tokenize src =
  let n = String.length src in
  let tokens = ref [] in
  let line = ref 1 and col = ref 1 in
  let i = ref 0 in
  let peek k = if !i + k < n then Some src.[!i + k] else None in
  let advance () =
    (if src.[!i] = '\n' then begin
       incr line;
       col := 1
     end
     else incr col);
    incr i
  in
  let emit token l c = tokens := { token; line = l; col = c } :: !tokens in
  while !i < n do
    let c = src.[!i] in
    let l0 = !line and c0 = !col in
    if c = ' ' || c = '\t' || c = '\r' || c = '\n' then advance ()
    else if c = '/' && peek 1 = Some '/' then
      while !i < n && src.[!i] <> '\n' do
        advance ()
      done
    else if c = '/' && peek 1 = Some '*' then begin
      advance ();
      advance ();
      let closed = ref false in
      while (not !closed) && !i < n do
        if src.[!i] = '*' && peek 1 = Some '/' then begin
          advance ();
          advance ();
          closed := true
        end
        else advance ()
      done;
      if not !closed then fail l0 c0 "unterminated comment"
    end
    else if is_digit c then begin
      let start = !i in
      while !i < n && is_digit src.[!i] do
        advance ()
      done;
      let text = String.sub src start (!i - start) in
      if !i < n && is_alpha src.[!i] then
        fail l0 c0 "malformed number %S" text;
      emit (Int (int_of_string text)) l0 c0
    end
    else if is_alpha c then begin
      let start = !i in
      while !i < n && is_word src.[!i] do
        advance ()
      done;
      emit (keyword l0 c0 (String.sub src start (!i - start))) l0 c0
    end
    else begin
      let two tok = advance (); advance (); emit tok l0 c0 in
      let one tok = advance (); emit tok l0 c0 in
      match (c, peek 1) with
      | '+', Some '+' -> two Plus_plus
      | '+', Some '=' -> two Plus_assign
      | '=', Some '=' -> two Eq
      | '(', _ -> one Lparen
      | ')', _ -> one Rparen
      | '{', _ -> one Lbrace
      | '}', _ -> one Rbrace
      | '[', _ -> one Lbracket
      | ']', _ -> one Rbracket
      | ';', _ -> one Semicolon
      | ',', _ -> one Comma
      | '=', _ -> one Assign
      | '+', _ -> one Plus
      | '-', _ -> one Minus
      | '*', _ -> one Star
      | '/', _ -> one Slash
      | '&', _ -> one Amp
      | '|', _ -> one Pipe
      | '^', _ -> one Caret
      | '<', _ -> one Lt
      | _ -> fail l0 c0 "unexpected character %C" c
    end
  done;
  emit Eof !line !col;
  List.rev !tokens

let describe = function
  | Ident s -> Printf.sprintf "identifier %S" s
  | Int v -> Printf.sprintf "integer %d" v
  | Kw_kernel -> "'kernel'"
  | Kw_input -> "'input'"
  | Kw_output -> "'output'"
  | Kw_local -> "'local'"
  | Kw_int w -> Printf.sprintf "'int%d'" w
  | Kw_for -> "'for'"
  | Lparen -> "'('"
  | Rparen -> "')'"
  | Lbrace -> "'{'"
  | Rbrace -> "'}'"
  | Lbracket -> "'['"
  | Rbracket -> "']'"
  | Semicolon -> "';'"
  | Comma -> "','"
  | Assign -> "'='"
  | Plus -> "'+'"
  | Minus -> "'-'"
  | Star -> "'*'"
  | Slash -> "'/'"
  | Amp -> "'&'"
  | Pipe -> "'|'"
  | Caret -> "'^'"
  | Eq -> "'=='"
  | Lt -> "'<'"
  | Plus_plus -> "'++'"
  | Plus_assign -> "'+='"
  | Eof -> "end of input"
