(** Tokenizer for the kernel source language (a small C-like DSL; see
    {!Parser} for the grammar). Tracks line/column for error messages and
    skips [//] line comments and [/* ... */] block comments. *)

type token =
  | Ident of string
  | Int of int
  | Kw_kernel
  | Kw_input
  | Kw_output
  | Kw_local
  | Kw_int of int   (** element type with width: [int] = 16, [int8] = 8 ... *)
  | Kw_for
  | Lparen | Rparen
  | Lbrace | Rbrace
  | Lbracket | Rbracket
  | Semicolon | Comma
  | Assign          (** [=] *)
  | Plus | Minus | Star | Slash
  | Amp | Pipe | Caret
  | Eq              (** [==] *)
  | Lt              (** [<] *)
  | Plus_plus       (** [++] *)
  | Plus_assign     (** [+=] *)
  | Eof

type located = { token : token; line : int; col : int }

exception Error of string
(** Lexical errors; the message includes the position. *)

val tokenize : string -> located list
(** The whole input as tokens, ending with [Eof].
    @raise Error on an unrecognised character or malformed token. *)

val describe : token -> string
(** Human-readable token name for error messages. *)
