(** Parser for the kernel source language.

    The grammar (a C-like DSL matching how the paper presents kernels):

    {v
kernel fir {
  input  int x[1024];
  input  int c[32];
  output int y[993];

  for (i = 0; i < 993; i++)
    for (j = 0; j < 32; j++)
      y[i] += c[j] * x[i + j];
}
    v}

    - declarations: [input|output|local intN name\[d\]...;] ([int] = 16 bits);
    - loops: [for (v = 0; v < N; v++)], perfectly nested, one innermost body;
    - statements: [ref = expr;] or the reduction sugar [ref += expr;];
    - expressions: [+ - * / & | ^ == <], calls [min(a,b)], [max(a,b)],
      [abs(a)], integer literals, references;
    - indices: affine combinations of enclosing loop variables and
      constants ([x\[4*i + j - 1\]]).

    Loop variables are not values; scalars are zero-dimensional arrays. *)

exception Error of string
(** Syntax and scoping errors; the message includes the position. *)

val parse : string -> Srfa_ir.Nest.t
(** @raise Error on malformed input;
    @raise Invalid_argument when the nest fails {!Srfa_ir.Nest.make}'s
    semantic checks (e.g. out-of-bounds indices). *)

val parse_file : string -> Srfa_ir.Nest.t
(** Reads the file, then {!parse}.
    @raise Sys_error when the file cannot be read. *)

val parse_result :
  string -> (Srfa_ir.Nest.t, Srfa_util.Diag.t list) result
(** Never-raising {!parse}: lexer, parser and semantic-validation failures
    come back as coded diagnostics ([E-LEX-...], [E-PARSE-...],
    [E-SEM-...]) with the source span extracted from the message where
    available. *)

val parse_file_result :
  string -> (Srfa_ir.Nest.t, Srfa_util.Diag.t list) result
(** Never-raising {!parse_file}; an unreadable file is an [E-IO-001]. *)

val diag_of_exn : exn -> Srfa_util.Diag.t
(** The frontend's exception classifier: {!Error} and {!Lexer.Error} get
    their positioned [E-PARSE-...]/[E-LEX-...] codes, everything else
    falls through to {!Srfa_util.Diag.of_exn}. Exposed for callers (CLI,
    fuzz harness) that catch exceptions around a larger pipeline span. *)

val print : Srfa_ir.Nest.t -> string
(** Renders a nest back into parseable source. Round trips preserve the
    analysis (groups, windows, semantics); unary operators are lowered to
    their binary encodings. *)

val canonical_source : Srfa_ir.Nest.t -> string
(** The stable, hashable rendering of a nest: {!print}, under a contract
    name. Two nests with equal canonical source are the same kernel for
    caching purposes (same groups, analysis and reports); any change to
    this rendering is a cache-key-scheme change and must update the
    serve key goldens (test_serve). The serving layer hashes this —
    never the user's raw request text, so formatting and comments never
    fragment the cache. *)
