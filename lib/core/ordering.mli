(** The benefit/cost ordering shared by the greedy allocators.

    References are ranked by descending saved-accesses-per-register; ties
    prefer read-only references over references that are written (removing
    a load shortens the head of the dependence chain, removing a store only
    its tail), then program order. *)

open Srfa_reuse

val sorted_infos : Analysis.t -> Analysis.info list
(** All groups' analysis records in allocation order. *)

val feasibility_minimum : Analysis.t -> int
(** One register per reference group: the smallest budget any allocator
    accepts. *)

val check_budget : Analysis.t -> budget:int -> unit
(** @raise Invalid_argument when the budget is below the feasibility
    minimum. *)
