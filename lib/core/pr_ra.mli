(** Partial Reuse Register Allocation (paper Fig. 3, variant 2).

    Runs FR-RA, then gives the stranded leftover registers to the first
    group in benefit/cost order that is not fully replaced, exploiting
    partial data reuse for that one reference. Exactly one group receives
    leftover — the paper's single-partial-candidate rule; see the comment
    in the implementation for why this never strands registers. *)

open Srfa_reuse

val allocate :
  ?trace:Srfa_util.Trace.sink -> Analysis.t -> budget:int -> Allocation.t
(** @raise Invalid_argument when [budget < feasibility_minimum]. *)
