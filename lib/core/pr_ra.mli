(** Partial Reuse Register Allocation (paper Fig. 3, variant 2).

    Runs FR-RA, then gives the stranded leftover registers to the first
    group in benefit/cost order that is not fully replaced, exploiting
    partial data reuse for that one reference. *)

open Srfa_reuse

val allocate : Analysis.t -> budget:int -> Allocation.t
(** @raise Invalid_argument when [budget < feasibility_minimum]. *)
