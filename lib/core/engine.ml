open Srfa_reuse
module Trace = Srfa_util.Trace

type t = {
  analysis : Analysis.t;
  entries : Allocation.entry array;
  mutable budget : int;
  mutable remaining : int;
  mutable round : int;
  trace : Trace.sink;
}

let create ?(trace = Trace.null) analysis ~budget =
  Ordering.check_budget analysis ~budget;
  let ngroups = Analysis.num_groups analysis in
  let t =
    {
      analysis;
      entries = Array.make ngroups { Allocation.beta = 1; pinned = false };
      budget;
      remaining = budget - ngroups;
      round = 0;
      trace;
    }
  in
  Trace.emit trace (fun () ->
      Trace.event "engine.init"
        [
          ("budget", Trace.Int budget);
          ("groups", Trace.Int ngroups);
          ("remaining", Trace.Int t.remaining);
        ]);
  t

let of_allocation ?(trace = Trace.null) alloc =
  let analysis = alloc.Allocation.analysis in
  let ngroups = Analysis.num_groups analysis in
  let t =
    {
      analysis;
      entries = Array.init ngroups (Allocation.entry alloc);
      budget = alloc.Allocation.budget;
      remaining =
        alloc.Allocation.budget - Allocation.total_registers alloc;
      round = 0;
      trace;
    }
  in
  Trace.emit trace (fun () ->
      Trace.event "engine.reopen"
        [
          ("algorithm", Trace.String alloc.Allocation.algorithm);
          ("budget", Trace.Int t.budget);
          ("groups", Trace.Int ngroups);
          ("remaining", Trace.Int t.remaining);
        ]);
  t

let analysis t = t.analysis
let budget t = t.budget
let remaining t = t.remaining
let round t = t.round
let trace t = t.trace
let beta t gid = t.entries.(gid).Allocation.beta
let info t gid = Analysis.info t.analysis gid
let need t gid = (info t gid).Analysis.nu - beta t gid

let charged t (g : Group.t) =
  let i = info t g.Group.id in
  (not i.Analysis.has_reuse) || beta t g.Group.id < i.Analysis.nu

let improvable t (g : Group.t) =
  let i = info t g.Group.id in
  i.Analysis.has_reuse && beta t g.Group.id < i.Analysis.nu

let next_round t =
  t.round <- t.round + 1;
  t.round

let group_name t gid = Group.name (info t gid).Analysis.group

let emit_assign t kind gid ~granted ~reason =
  Trace.emit t.trace (fun () ->
      Trace.event kind
        [
          ("group", Trace.String (group_name t gid));
          ("granted", Trace.Int granted);
          ("beta", Trace.Int (beta t gid));
          ("nu", Trace.Int (info t gid).Analysis.nu);
          ("remaining", Trace.Int t.remaining);
          ("round", Trace.Int t.round);
          ("reason", Trace.String reason);
        ])

let try_assign_full ?(reason = "") t gid =
  let n = need t gid in
  if n <= t.remaining then begin
    t.entries.(gid) <-
      { Allocation.beta = (info t gid).Analysis.nu; pinned = true };
    t.remaining <- t.remaining - n;
    emit_assign t "assign.full" gid ~granted:n ~reason;
    true
  end
  else false

let assign_partial ?(reason = "") t gid ~amount =
  if amount < 0 then invalid_arg "Engine.assign_partial: negative amount";
  let granted = min amount (min (need t gid) t.remaining) in
  if granted > 0 then begin
    t.entries.(gid) <-
      { Allocation.beta = beta t gid + granted; pinned = true };
    t.remaining <- t.remaining - granted;
    emit_assign t "assign.partial" gid ~granted ~reason
  end;
  granted

let reclaim ?(reason = "") t gid =
  let e = t.entries.(gid) in
  let freed = e.Allocation.beta - 1 in
  if freed > 0 then begin
    t.entries.(gid) <- { e with Allocation.beta = 1 };
    t.remaining <- t.remaining + freed;
    Trace.emit t.trace (fun () ->
        Trace.event "repair.reclaim"
          [
            ("group", Trace.String (group_name t gid));
            ("freed", Trace.Int freed);
            ("remaining", Trace.Int t.remaining);
            ("reason", Trace.String reason);
          ])
  end;
  max freed 0

(* Take back up to [amount] registers from one group (never below the
   feasibility register), crediting them to the remaining budget. The
   partial sibling of [reclaim], used by [rebudget]'s shrink walk so a
   deficit of 3 does not strip a window of 20. *)
let take_back ?(reason = "") t gid ~amount =
  let e = t.entries.(gid) in
  let taken = min (max amount 0) (e.Allocation.beta - 1) in
  if taken > 0 then begin
    t.entries.(gid) <- { e with Allocation.beta = e.Allocation.beta - taken };
    t.remaining <- t.remaining + taken;
    Trace.emit t.trace (fun () ->
        Trace.event "repair.reclaim"
          [
            ("group", Trace.String (group_name t gid));
            ("freed", Trace.Int taken);
            ("remaining", Trace.Int t.remaining);
            ("reason", Trace.String reason);
          ])
  end;
  taken

type rebudget_outcome = {
  requested : int;
  effective : int;
  clamped : bool;
  freed : int;
}

(* Answer one budget shrink/grow event in place. A grow only credits the
   new headroom; a shrink walks the held registers back cheapest-loss
   first until the entries fit the new budget. The walk order is the
   reverse of the allocators' benefit/cost order, refined in two passes:
   partial windows first (their registers cover the fewest accesses per
   register of anything pinned — the same suspicion ranking the repair
   layer uses), then full windows, cheapest first. Pinned entries are
   honored for as long as the budget allows; when the requested budget
   drops below the feasibility minimum even spilling every pinned entry
   cannot fit it, so the budget clamps there instead of raising — the
   caller surfaces that as a W-GUARD-REBUDGET warning. *)
let rebudget ?(reason = "rebudget") t ~budget =
  let minimum = Ordering.feasibility_minimum t.analysis in
  let effective = max budget minimum in
  let clamped = budget < minimum in
  let held = t.budget - t.remaining in
  t.budget <- effective;
  t.remaining <- effective - held;
  let freed = ref 0 in
  if t.remaining < 0 then begin
    let victims =
      let cheapest_first = List.rev (Ordering.sorted_infos t.analysis) in
      let partial, full =
        List.partition
          (fun (i : Analysis.info) ->
            let b = t.entries.(i.Analysis.group.Group.id).Allocation.beta in
            b < i.Analysis.nu)
          cheapest_first
      in
      partial @ full
    in
    List.iter
      (fun (i : Analysis.info) ->
        if t.remaining < 0 then
          let gid = i.Analysis.group.Group.id in
          freed := !freed + take_back ~reason t gid ~amount:(-t.remaining))
      victims
  end;
  let outcome = { requested = budget; effective; clamped; freed = !freed } in
  Trace.emit t.trace (fun () ->
      Trace.event "engine.rebudget"
        [
          ("requested", Trace.Int budget);
          ("effective", Trace.Int effective);
          ("clamped", Trace.Bool clamped);
          ("freed", Trace.Int !freed);
          ("remaining", Trace.Int t.remaining);
          ("reason", Trace.String reason);
        ]);
  outcome

let drain ?(reason = "") t =
  let stranded = t.remaining in
  t.remaining <- 0;
  Trace.emit t.trace (fun () ->
      Trace.event "engine.drain"
        [
          ("stranded", Trace.Int stranded);
          ("round", Trace.Int t.round);
          ("reason", Trace.String reason);
        ])

let finalize ?(pin_all = false) t ~algorithm =
  if pin_all then
    Array.iteri
      (fun gid e ->
        if not e.Allocation.pinned then
          t.entries.(gid) <- { e with Allocation.pinned = true })
      t.entries;
  let alloc =
    Allocation.make ~analysis:t.analysis ~budget:t.budget ~algorithm t.entries
  in
  Trace.emit t.trace (fun () ->
      Trace.event "engine.finalize"
        [
          ("algorithm", Trace.String algorithm);
          ("total", Trace.Int (Allocation.total_registers alloc));
          ("remaining", Trace.Int t.remaining);
          ("rounds", Trace.Int t.round);
        ]);
  alloc
