(** Loop-order exploration (our extension).

    The reuse windows that drive every allocation depend on the loop
    order: IMI with the frame loop outermost needs 4096 registers per
    image, with it innermost a single register each. This explorer
    evaluates every legal interchange of a fully permutable nest under a
    chosen allocator and returns the orders ranked by simulated cycles. *)

open Srfa_ir

type candidate = {
  order : int list;          (** permutation applied (old levels, new order) *)
  loop_vars : string list;   (** resulting order, outermost first *)
  nest : Nest.t;
  allocation : Srfa_reuse.Allocation.t;
  cycles : int;
  memory_cycles : int;
}

val explore :
  ?config:Flow.config -> Allocator.algorithm -> Nest.t -> candidate list
(** Candidates sorted by ascending cycle count (ties: identity order
    first, then lexicographic). The identity order is always included.
    @raise Invalid_argument if the nest is not fully permutable (check
    {!Srfa_ir.Permute.fully_permutable} first). *)

val best : ?config:Flow.config -> Allocator.algorithm -> Nest.t -> candidate
(** Head of {!explore}. *)
