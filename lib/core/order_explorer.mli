(** Loop-order exploration (our extension).

    The reuse windows that drive every allocation depend on the loop
    order: IMI with the frame loop outermost needs 4096 registers per
    image, with it innermost a single register each. This explorer
    evaluates every legal interchange of a nest under a chosen allocator
    and returns the orders ranked by simulated cycles. *)

open Srfa_ir

type candidate = {
  order : int list;          (** permutation applied (old levels, new order) *)
  loop_vars : string list;   (** resulting order, outermost first *)
  nest : Nest.t;
  allocation : Srfa_reuse.Allocation.t;
  cycles : int;
  memory_cycles : int;
}

val explore :
  ?config:Flow.config -> Allocator.algorithm -> Nest.t ->
  candidate list * Srfa_util.Diag.t list
(** Candidates sorted by ascending cycle count (ties: identity order
    first, then lexicographic). The identity order is always included
    and is never illegal, so the list is never empty: a nest that is not
    fully permutable degrades to the identity-only candidate plus one
    [W-GUARD-EXPLORE] warning carrying the illegality reason and the
    skipped-order count ({!Srfa_ir.Permute.legal_orders}) — no exception
    escapes. *)

val best : ?config:Flow.config -> Allocator.algorithm -> Nest.t -> candidate
(** Head of {!explore} (warnings dropped). *)
