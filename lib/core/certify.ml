open Srfa_reuse
module Trace = Srfa_util.Trace
module Simulator = Srfa_sched.Simulator

let algorithm_name = "portfolio"

type comparison =
  | Dominates
  | Simulated of { candidate_cycles : int; bar_cycles : int }

type outcome = {
  allocation : Allocation.t;
  sim : Simulator.result option;
  comparison : comparison;
  repaired : bool;
  adopted : string option;
}

(* Pointwise coverage order. The pinned residency rule is
   [resident <-> pinned && slot_rank < beta] (Analysis.Tracker.resident),
   and the slot rank of an access depends only on the analysis — not on
   the allocation. So if [a]'s entries cover [b]'s pointwise, every
   register hit under [b] is a hit under [a] at every iteration, [a]'s
   charged set is a subset of [b]'s everywhere, and with RAM latency
   never below register latency every per-iteration makespan (and hence
   the total) under [a] is at most [b]'s. A dominance win therefore
   certifies without simulating. *)
let covers a b =
  let n = Analysis.num_groups a.Allocation.analysis in
  let ok = ref true in
  for gid = 0 to n - 1 do
    let ea = Allocation.entry a gid and eb = Allocation.entry b gid in
    if
      eb.Allocation.pinned
      && not (ea.Allocation.pinned && ea.Allocation.beta >= eb.Allocation.beta)
    then ok := false
  done;
  !ok

(* CPA+'s stranded-register spender, replayed over a reopened engine:
   full windows in benefit/cost order while they fit, then one partial
   top-up. This is repair's cheapest move — it only adds registers the
   candidate left on the table. *)
let respend eng =
  let sorted = Ordering.sorted_infos (Engine.analysis eng) in
  List.iter
    (fun (i : Analysis.info) ->
      let gid = i.Analysis.group.Group.id in
      if i.Analysis.has_reuse && Engine.need eng gid > 0 then
        ignore
          (Engine.try_assign_full ~reason:"repair respends stranded (full)"
             eng gid))
    sorted;
  List.iter
    (fun (i : Analysis.info) ->
      let gid = i.Analysis.group.Group.id in
      if
        Engine.remaining eng > 0 && i.Analysis.has_reuse
        && Engine.beta eng gid < i.Analysis.nu
      then
        ignore
          (Engine.assign_partial ~reason:"repair respends stranded (partial)"
             eng gid ~amount:(Engine.remaining eng)))
    sorted

(* Re-entry points for the two repair moves. Each reopens the candidate
   fresh, so a failed attempt leaves no residue in the next one. *)
let repair_respend ~trace candidate =
  let eng = Engine.of_allocation ~trace candidate in
  if Engine.remaining eng = 0 then None
  else begin
    respend eng;
    Some (Engine.finalize ~pin_all:true eng ~algorithm:algorithm_name)
  end

let repair_reclaim ~trace candidate =
  let eng = Engine.of_allocation ~trace candidate in
  let freed = ref 0 in
  let n = Analysis.num_groups (Engine.analysis eng) in
  for gid = 0 to n - 1 do
    let i = Engine.info eng gid in
    let beta = Engine.beta eng gid in
    (* Only partial windows are suspect: a full window always removes
       its RAM traffic, but a partial cut share can cost registers
       without covering the references that dominate the simulation. *)
    if i.Analysis.has_reuse && beta > 1 && beta < i.Analysis.nu then
      freed :=
        !freed + Engine.reclaim ~reason:"partial cut share under repair" eng gid
  done;
  if !freed = 0 then None
  else begin
    respend eng;
    Some (Engine.finalize ~pin_all:true eng ~algorithm:algorithm_name)
  end

let relabel alloc =
  if alloc.Allocation.algorithm = algorithm_name then alloc
  else
    Allocation.make ~analysis:alloc.Allocation.analysis
      ~budget:alloc.Allocation.budget ~algorithm:algorithm_name
      (Array.init
         (Analysis.num_groups alloc.Allocation.analysis)
         (Allocation.entry alloc))

let certify ?(trace = Trace.null) ?(sim_config = Simulator.default_config)
    ?sim_scratch candidate =
  let analysis = candidate.Allocation.analysis in
  let budget = candidate.Allocation.budget in
  Trace.emit trace (fun () ->
      Trace.event "certify.start"
        [
          ("candidate", Trace.String candidate.Allocation.algorithm);
          ("budget", Trace.Int budget);
        ]);
  let fr = Fr_ra.allocate analysis ~budget in
  let pr = Pr_ra.allocate analysis ~budget in
  (* Simulation-free certificates, tried cheapest-first. PR-RA extends
     FR-RA's entries pointwise (one extra partial top-up), so covering
     PR-RA usually covers FR-RA transitively; the explicit FR check only
     matters if that structural extension ever failed to hold. A
     re-spent candidate covers the candidate pointwise too (re-spending
     only adds registers), so passing it loses nothing either. *)
  let dominance =
    let beats_both a =
      if covers pr fr then covers a pr else covers a pr && covers a fr
    in
    if beats_both candidate then Some (candidate, false)
    else
      match repair_respend ~trace candidate with
      | Some a when beats_both a -> Some (a, true)
      | _ -> None
  in
  match dominance with
  | Some (alloc, repaired) ->
    Trace.emit trace (fun () ->
        Trace.event "certify.dominates"
          [
            ("budget", Trace.Int budget);
            ( "stage",
              Trace.String (if repaired then "respend" else "candidate") );
          ]);
    Trace.emit trace (fun () ->
        Trace.event "certify.done"
          [ ("repaired", Trace.Bool repaired); ("adopted", Trace.String "") ]);
    {
      allocation = relabel alloc;
      sim = None;
      comparison = Dominates;
      repaired;
      adopted = None;
    }
  | None -> begin
    let simulate alloc =
      Simulator.run ~config:sim_config ?scratch:sim_scratch alloc
    in
    let cand_sim = simulate candidate in
    let candidate_cycles = cand_sim.Simulator.total_cycles in
    (* PR-RA extends FR-RA's entries pointwise (one extra partial
       top-up), so PR coverage dominates FR coverage and pr_cycles <=
       fr_cycles by the same residency argument — the FR simulation is
       only needed in the (never yet observed) case the structural
       extension does not hold. *)
    let baselines =
      if covers pr fr then [ ("pr-ra", pr) ]
      else [ ("pr-ra", pr); ("fr-ra", fr) ]
    in
    let baselines =
      List.map (fun (name, alloc) -> (name, alloc, simulate alloc)) baselines
    in
    let bar_name, bar_alloc, bar_sim =
      List.fold_left
        (fun (bn, ba, bs) (n, a, s) ->
          if s.Simulator.total_cycles < bs.Simulator.total_cycles then
            (n, a, s)
          else (bn, ba, bs))
        (List.hd baselines) (List.tl baselines)
    in
    let bar = bar_sim.Simulator.total_cycles in
    Trace.emit trace (fun () ->
        Trace.event "certify.compare"
          [
            ("candidate_cycles", Trace.Int candidate_cycles);
            ("baseline", Trace.String bar_name);
            ("baseline_cycles", Trace.Int bar);
          ]);
    let best = ref (candidate, cand_sim) in
    let adopted = ref None in
    let consider alloc =
      let sim = simulate alloc in
      if sim.Simulator.total_cycles < (snd !best).Simulator.total_cycles then
        best := (alloc, sim);
      sim.Simulator.total_cycles
    in
    if candidate_cycles <= bar then
      Trace.emit trace (fun () ->
          Trace.event "certify.pass"
            [ ("cycles", Trace.Int candidate_cycles) ])
    else begin
      Trace.emit trace (fun () ->
          Trace.event "certify.regression"
            [
              ("candidate_cycles", Trace.Int candidate_cycles);
              ("baseline_cycles", Trace.Int bar);
              ("baseline", Trace.String bar_name);
            ]);
      (* Repair 1: spend what the candidate stranded, benefit/cost-first. *)
      (match repair_respend ~trace candidate with
      | None -> ()
      | Some a ->
        let cycles = consider a in
        Trace.emit trace (fun () ->
            Trace.event "repair.respend" [ ("cycles", Trace.Int cycles) ]));
      (* Repair 2: also take back the partial cut shares before spending. *)
      if (snd !best).Simulator.total_cycles > bar then
        (match repair_reclaim ~trace candidate with
        | None -> ()
        | Some a ->
          let cycles = consider a in
          Trace.emit trace (fun () ->
              Trace.event "repair.respent_reclaimed"
                [ ("cycles", Trace.Int cycles) ]));
      (* Last resort: adopt the winning baseline outright. Certification
         is then never-worse by construction, not by luck. *)
      if (snd !best).Simulator.total_cycles > bar then begin
        best := (bar_alloc, bar_sim);
        adopted := Some bar_name;
        Trace.emit trace (fun () ->
            Trace.event "repair.adopt"
              [
                ("baseline", Trace.String bar_name);
                ("cycles", Trace.Int bar);
              ])
      end
    end;
    let final_alloc, final_sim = !best in
    let final_cycles = final_sim.Simulator.total_cycles in
    let repaired = final_cycles < candidate_cycles in
    Trace.emit trace (fun () ->
        Trace.event "certify.done"
          [
            ("final_cycles", Trace.Int final_cycles);
            ("repaired", Trace.Bool repaired);
            ("adopted", Trace.String (Option.value !adopted ~default:""));
          ]);
    {
      allocation = relabel final_alloc;
      sim = Some final_sim;
      comparison = Simulated { candidate_cycles; bar_cycles = bar };
      repaired;
      adopted = !adopted;
    }
  end
