(** Exact solution of the paper's knapsack formulation (§3).

    Objects are reference groups; an object's size is the [nu - 1] extra
    registers full replacement needs beyond its feasibility register; its
    value is the memory accesses eliminated. The dynamic program maximises
    eliminated accesses under the register budget. This is not in the
    paper's evaluation — it is the natural optimal baseline for the
    access-count objective, and the ablation benches use it to show that
    maximising eliminated accesses is not the same as minimising execution
    cycles (the paper's central argument for CPA-RA). *)

open Srfa_reuse

val allocate :
  ?trace:Srfa_util.Trace.sink -> Analysis.t -> budget:int -> Allocation.t
(** @raise Invalid_argument when [budget < feasibility_minimum]. *)
