(** End-to-end evaluation flow: kernel -> analysis -> allocation ->
    simulation -> design report. This mirrors the paper's experimental
    pipeline (C kernel -> scalar replacement -> HLS -> P&R -> simulate),
    with the substitutions documented in DESIGN.md §2. *)

open Srfa_ir
open Srfa_reuse

type config = {
  budget : int;                              (** register budget (paper: 64) *)
  sim : Srfa_sched.Simulator.config;
  clock_params : Srfa_estimate.Clock.params;
}

val default_config : config
(** Budget 64, default simulator and clock parameters. *)

val evaluate :
  ?config:config -> Allocator.algorithm -> Nest.t -> Srfa_estimate.Report.t
(** Analyse, allocate, simulate and estimate one design. *)

val evaluate_all :
  ?config:config -> ?algorithms:Allocator.algorithm list -> Nest.t ->
  Srfa_estimate.Report.t list
(** One report per algorithm (default: the paper's v1, v2, v3), sharing a
    single analysis of the nest. *)

val analyze : Nest.t -> Analysis.t
(** Re-exported for callers that drive the stages separately. *)

val allocation :
  ?config:config -> Allocator.algorithm -> Analysis.t -> Allocation.t
