(** End-to-end evaluation flow: kernel -> analysis -> allocation ->
    simulation -> design report. This mirrors the paper's experimental
    pipeline (C kernel -> scalar replacement -> HLS -> P&R -> simulate),
    with the substitutions documented in DESIGN.md §2. *)

open Srfa_ir
open Srfa_reuse

type guards = {
  cut_work_limit : int option;
      (** max-flow work budget per CPA cut query ([None] = unlimited); a
          trip degrades CPA-RA to PR-RA (see {!Allocator.run}) *)
  event_model_cap : int;
      (** clock cap for the {!Srfa_sched.Event_model} second opinion in
          {!run_checked}; a trip keeps the Cycle_model timing *)
}

val default_guards : guards
(** [cut_work_limit = Some 200_000] (far beyond any of the paper kernels'
    needs — the fir kernel's full allocation costs under a hundred work
    units), [event_model_cap = 100_000]. *)

type config = {
  budget : int;                              (** register budget (paper: 64) *)
  sim : Srfa_sched.Simulator.config;
  clock_params : Srfa_estimate.Clock.params;
  guards : guards;
}

val default_config : config
(** Budget 64, default simulator, clock parameters and guards. *)

val evaluate :
  ?config:config -> ?trace:Srfa_util.Trace.sink -> Allocator.algorithm ->
  Nest.t -> Srfa_estimate.Report.t
(** Analyse, allocate, simulate and estimate one design. The allocation
    runs under a trace collector either way, so the report's
    [trace_summary] is always filled in; [trace] additionally forwards the
    raw events (e.g. to {!Srfa_util.Trace.channel}). *)

val evaluate_all :
  ?config:config -> ?algorithms:Allocator.algorithm list ->
  ?trace:Srfa_util.Trace.sink -> Nest.t -> Srfa_estimate.Report.t list
(** One report per algorithm (default: {!Allocator.all} — v1, v2, v3,
    v3+, the knapsack baseline and the certified portfolio), sharing a
    single analysis and one {!Cpa_ra.prepare} of the nest. *)

type sweep_point = {
  kernel : string;
  algorithm : Allocator.algorithm;
  budget : int;
  report : Srfa_estimate.Report.t;
}

val default_budgets : int list
(** [[8; 16; 32; 64; 128]] — the differential-test grid; 64 is the
    paper's budget. *)

val sweep :
  ?config:config -> ?algorithms:Allocator.algorithm list ->
  ?budgets:int list -> ?trace:Srfa_util.Trace.sink ->
  ?pool:Srfa_util.Pool.t ->
  (string * Nest.t) list -> sweep_point list
(** Batch driver: kernels × algorithms × budgets in one pass. Each kernel
    is analysed once and its CPA scratch ({!Cpa_ra.prepare}) built once,
    then reused across every budget and algorithm; [config.budget] is
    superseded by [budgets]. Budgets below a kernel's feasibility minimum
    (one register per reference group) are skipped rather than raising, so
    a mixed-kernel sweep never aborts. Points are ordered kernel-major,
    then budget, then algorithm.

    {!Allocator.Portfolio} points are additionally budget-monotonic: per
    kernel, the sweep carries the best certified allocation forward (any
    allocation feasible at a lower budget stays feasible at a higher one)
    and adopts it whenever a fresh point would report more cycles, so
    more registers never yield more cycles. Each takeover emits a
    ["certify.monotonic"] trace event.

    [pool] parallelises the sweep {e across kernels} (each kernel's
    budget ladder stays sequential, preserving the portfolio
    carry-forward); the result is equal to the sequential sweep — same
    points in the same kernel-major order, and the same [trace] stream,
    each kernel's events buffered ({!Srfa_util.Trace.buffered}) and
    spliced back in kernel order. *)

val run_checked :
  ?config:config -> ?algorithm:Allocator.algorithm ->
  ?trace:Srfa_util.Trace.sink -> Nest.t ->
  (Srfa_estimate.Report.t * Srfa_util.Diag.t list, Srfa_util.Diag.t list)
  result
(** Total pipeline: analyse, allocate (default {!Allocator.Cpa_ra}),
    simulate and estimate — never raising. Any library-boundary exception
    (semantic validation, infeasible budget, internal invariant) comes
    back as [Error diags] via {!Srfa_util.Diag.of_exn}. [Ok (report,
    warnings)] carries one warning diagnostic per tripped resource guard:
    [W-GUARD-CUT] (CPA fell back to PR-RA on an exhausted cut work
    budget), [W-GUARD-MASK] (simulator degraded past the bitmask memo
    cap), [W-GUARD-EVENT] (the event-model second opinion diverged; the
    report keeps the Cycle_model timing). Every trip is also visible as a
    trace event ([fallback.pr_ra], [guard.mask], [fallback.cycle_model])
    on [trace]. *)

val analyze : Nest.t -> Analysis.t
(** Re-exported for callers that drive the stages separately. *)

val allocation :
  ?config:config -> ?trace:Srfa_util.Trace.sink ->
  ?prepared:Cpa_ra.prepared ->
  ?sim_scratch:Srfa_sched.Simulator.scratch ->
  Allocator.algorithm -> Analysis.t ->
  Allocation.t
