(** End-to-end evaluation flow: kernel -> analysis -> allocation ->
    simulation -> design report. This mirrors the paper's experimental
    pipeline (C kernel -> scalar replacement -> HLS -> P&R -> simulate),
    with the substitutions documented in DESIGN.md §2.

    The module is split in two layers (DESIGN.md §14):

    - {!Core} is the {e pure core}: deterministic functions from (parsed
      kernel, device/config, algorithm, budget, scratch) to reports and
      diagnostics. It touches no filesystem, owns no formatter or channel
      state, and never calls [exit] — the only effects are writes to
      caller-injected {!Srfa_util.Trace} sinks and to the explicitly
      passed mutable scratch. Core values ([Core.prepared], reports) are
      therefore safe to cache and reuse across requests, which is what
      the serve daemon's content-addressed cache does.
    - The top-level functions below are the {e IO shell}: the historical
      [Flow] surface the CLI subcommands ([alloc]/[sweep]/[check]), the
      bench and the tests call. They are thin delegations into {!Core}
      (plus the pool-parallel sweep driver) and their outputs are
      byte-identical to the pre-split code. *)

open Srfa_ir
open Srfa_reuse

(** The pure core. See the module header for the purity contract. *)
module Core : sig
  type guards = {
    cut_work_limit : int option;
        (** max-flow work budget per CPA cut query ([None] = unlimited); a
            trip degrades CPA-RA to PR-RA (see {!Allocator.run}) *)
    event_model_cap : int;
        (** clock cap for the {!Srfa_sched.Event_model} second opinion in
            {!checked}; a trip keeps the Cycle_model timing *)
  }

  val default_guards : guards

  type config = {
    budget : int;                            (** register budget (paper: 64) *)
    sim : Srfa_sched.Simulator.config;
    clock_params : Srfa_estimate.Clock.params;
    guards : guards;
  }

  val default_config : config

  val analyze : Nest.t -> Analysis.t

  val allocation :
    ?config:config -> ?trace:Srfa_util.Trace.sink ->
    ?prepared:Cpa_ra.prepared ->
    ?sim_scratch:Srfa_sched.Simulator.scratch ->
    Allocator.algorithm -> Analysis.t -> Allocation.t

  val evaluate_analysis :
    ?trace:Srfa_util.Trace.sink -> ?prepared:Cpa_ra.prepared ->
    ?sim_scratch:Srfa_sched.Simulator.scratch ->
    config -> Allocator.algorithm -> Analysis.t -> Srfa_estimate.Report.t
  (** Allocate under an in-memory trace collector (teeing into [trace]
      when given), simulate, and estimate — the single design-point
      primitive every entry point reduces to. *)

  type prepared = {
    nest : Nest.t;
    analysis : Analysis.t;
    cpa : Cpa_ra.prepared;
    dfg : Srfa_dfg.Graph.t;
    minimum : int;  (** {!Ordering.feasibility_minimum} of the analysis *)
  }
  (** Every budget-independent product of one parsed kernel. Building one
      costs one analysis, one {!Cpa_ra.prepare} and one graph build; the
      sweep pays it once per kernel, the serve daemon once per tier-1
      cache entry. Immutable once built (the mutable per-evaluation state
      lives in the separately threaded scratch). *)

  val prepare : Nest.t -> prepared

  val scratch : config:config -> prepared -> Srfa_sched.Simulator.scratch
  (** A simulator scratch specialised to [prepared] under [config]'s
      latency table, donating the already-built DFG. Not thread-safe:
      one per domain (see {!Srfa_sched.Simulator.scratch}). *)

  val evaluate_prepared :
    ?trace:Srfa_util.Trace.sink ->
    ?sim_scratch:Srfa_sched.Simulator.scratch ->
    config -> Allocator.algorithm -> prepared -> Srfa_estimate.Report.t
  (** {!evaluate_analysis} against a prepared kernel. *)

  val checked_prepared :
    ?trace:Srfa_util.Trace.sink ->
    ?sim_scratch:Srfa_sched.Simulator.scratch ->
    config -> Allocator.algorithm -> prepared ->
    (Srfa_estimate.Report.t * Srfa_util.Diag.t list, Srfa_util.Diag.t list)
    result
  (** The total pipeline against a prepared kernel: never raises, guard
      trips come back as warning diagnostics (see {!checked}). Builds a
      private scratch when [sim_scratch] is not supplied. *)

  val checked :
    ?config:config -> ?algorithm:Allocator.algorithm ->
    ?trace:Srfa_util.Trace.sink -> Nest.t ->
    (Srfa_estimate.Report.t * Srfa_util.Diag.t list, Srfa_util.Diag.t list)
    result
  (** {!prepare} + {!checked_prepared}, with preparation failures (semantic
      validation, dependency cycles) classified through
      {!Srfa_util.Diag.of_exn} like every other stage. *)

  val portfolio_point :
    ?trace:Srfa_util.Trace.sink -> prepared:Cpa_ra.prepared ->
    ?sim_scratch:Srfa_sched.Simulator.scratch ->
    carry:
      (int * Srfa_reuse.Allocation.entry array * int) option ref ->
    config -> string -> Analysis.t -> Srfa_estimate.Report.t
  (** One budget-monotonic certified-portfolio point; [carry] threads the
      best certified allocation along a budget ladder (see {!sweep}). *)

  type sweep_point = {
    kernel : string;
    algorithm : Allocator.algorithm;
    budget : int;
    report : Srfa_estimate.Report.t;
  }

  val default_budgets : int list

  val sweep_kernel :
    config:config -> algorithms:Allocator.algorithm list ->
    budgets:int list -> ?trace:Srfa_util.Trace.sink ->
    string * Nest.t -> sweep_point list
  (** One kernel's full budget ladder, sequential by construction (the
      portfolio carry-forward threads state budget to budget). This is
      the unit of work {!sweep} fans out over kernels. *)

  (** {2 Design-space exploration}

      The joint (loop order × tile × budget × algorithm) explorer
      (DESIGN.md §17): enumerate the variants of one kernel, evaluate
      every surviving design point, and return the
      (cycles, registers, slices, clock) Pareto frontier. Three layers
      make the product cheap: lossless dominance cuts from
      per-point lower bounds, per-variant preparation plus an
      entries-keyed simulation memo, and pool fan-out across variants
      with a byte-identical serial/parallel contract. *)

  type order_spec =
    | Identity_order  (** the source order only *)
    | All_orders
        (** every legal permutation ({!Srfa_ir.Permute.legal_orders});
            non-permutable nests degrade to the identity with a
            [W-GUARD-EXPLORE] warning instead of raising *)
    | Orders of int list list
        (** an explicit list; illegal or malformed entries are skipped
            (counted in [orders_skipped]), the identity is always
            included *)

  type space = {
    orders : order_spec;
    tile_factors : int list;
        (** candidate strip-mine factors ({!Srfa_ir.Tile.steps}); [[]]
            disables the tiling axis *)
    space_budgets : int list;
    space_algorithms : Allocator.algorithm list;
    certify : bool;
        (** evaluate every ladder point through the certified portfolio
            ({!Allocator.run_portfolio}), recording the certification
            outcome on the point. Unlike {!sweep}, no carry-forward
            across budgets — each point certifies independently, which
            keeps the frontier identical with and without pruning. *)
    prune : bool;
        (** dominance cuts; [false] evaluates the full product (the
            differential-testing and bench-baseline arm) *)
    naive : bool;
        (** re-derive analysis, DFG and simulation from scratch per
            point — the bench's "no reuse" baseline; output is equal to
            the memoised path *)
  }

  val default_space : space
  (** All legal orders, no tiling, {!default_budgets}, CPA-RA only,
      no certification, pruning on, memoised. *)

  type coords = {
    cycles : int;
    registers : int;
    slices : int;
    clock_ns : float;
  }
  (** The four frontier axes, all minimised. *)

  type cert = { dominates : bool; repaired : bool; adopted : string option }
  (** A point's certification outcome summary (see {!Certify.outcome}). *)

  type explore_point = {
    variant : int;  (** index in deterministic enumeration order *)
    label : string;  (** e.g. ["tile k/4 | i k_t k_i j"] *)
    loop_vars : string list;
    tiling : (int * int) option;  (** strip-mine (level, factor) *)
    order : int list;
    point_budget : int;
    point_algorithm : string;  (** allocator name, or ["floor"] *)
    floor : bool;
        (** the variant's all-RAM baseline: one unpinned feasibility
            register per group at the minimum budget — the frontier's
            register/area/clock corner, evaluated unconditionally *)
    coords : coords;
    point_report : Srfa_estimate.Report.t;
    point_cert : cert option;
  }

  type explore_stats = {
    variants_enumerated : int;
    variants_unique : int;  (** after canonical-source deduplication *)
    variants_pruned : int;  (** whole ladders cut by the variant-level bound *)
    points_pruned : int;
    points_evaluated : int;
    sim_memo_hits : int;
    duplicate_variants : int;
    orders_skipped : int;
    budgets_skipped : int;  (** below the variant's feasibility minimum *)
  }
  (** Cut and memo counters are schedule-dependent under a pool (which
      domain publishes a frontier entry first decides what the others
      can cut) — report them, but never byte-compare them. The frontier
      itself is deterministic. *)

  type frontier = {
    frontier_kernel : string;
    points : explore_point list;
        (** the Pareto frontier: non-dominated over every evaluated
            point, exact-coordinate duplicates collapsed onto the
            smallest enumeration key, sorted by coordinates *)
    frontier_stats : explore_stats;
    frontier_warnings : Srfa_util.Diag.t list;
  }

  val explore :
    ?trace:Srfa_util.Trace.sink -> ?pool:Srfa_util.Pool.t ->
    ?space:space -> config -> Nest.t -> frontier
  (** Explore one kernel's design space. [config.budget] is superseded
      by [space.space_budgets]. The frontier (points, order, labels) is
      byte-identical across [prune] on/off, [naive] on/off and any
      [pool] size; only [frontier_stats] varies. Per-variant trace
      events are buffered and spliced in variant order, like {!sweep}.
      @raise Invalid_argument when [space.space_algorithms] is empty. *)

  val frontier_json : ?compact:bool -> frontier -> string
  (** The frontier as deterministic JSON (fixed field order, ["%.3f"]
      floats, no stats) — the one renderer the CLI, the serve daemon and
      the tests share, so byte-comparing outputs is meaningful.
      [compact] (default [false]) emits one line, for embedding in the
      line-framed serve protocol; the per-point bytes are identical. *)

  val frontier_csv : frontier -> string
  (** The frontier as a CSV table (same determinism contract). *)

  (** {2 Dynamic re-budgeting}

      Partial reconfiguration modeled as a stream of budget shrink/grow
      events against a live allocation, answered incrementally through
      {!Engine.rebudget} (cheapest-loss-first reclaim on shrink,
      {!Certify.respend} of the new headroom on grow) instead of
      from-scratch reruns, with the certified never-worse contract
      re-established by {!Certify.certify} after every event. Semantics,
      the pinned-shrink rule and the serve protocol extension are
      documented in DESIGN.md §16. *)

  type rebudget_step = {
    requested : int;  (** the budget the event asked for *)
    effective : int;  (** after clamping at the feasibility minimum *)
    clamped : bool;
        (** the pinned-shrink rule fired: [requested] was below the
            kernel's feasibility minimum; a [W-GUARD-REBUDGET] warning
            and a ["guard.rebudget"] trace event accompany the clamp *)
    freed : int;      (** registers reclaimed by the shrink walk *)
    respent : int;    (** registers re-spent out of the grown headroom *)
    memoized : bool;
        (** served from the stream's per-budget memo — the effective
            budget was already visited, no engine or certify work ran *)
    allocation : Allocation.t;  (** certified, [algorithm = "portfolio"] *)
    report : Srfa_estimate.Report.t;
    warnings : Srfa_util.Diag.t list;
  }

  type rebudget_session
  (** A live allocation under a budget-event stream: the prepared
      kernel, a warm simulator scratch, the current certified
      allocation and the per-budget memo. Holds mutable state (scratch,
      memo): single-owner, one domain at a time — the same ownership
      rule as {!scratch}. *)

  val rebudget_start :
    ?trace:Srfa_util.Trace.sink ->
    ?sim_scratch:Srfa_sched.Simulator.scratch ->
    config -> prepared -> budget:int -> rebudget_session * rebudget_step
  (** Open a stream at an initial budget: one from-scratch certified
      portfolio point ([config.budget] is superseded by [budget], which
      clamps at the feasibility minimum like any event). Builds a
      private scratch when [sim_scratch] is not supplied. *)

  val rebudget_step :
    ?trace:Srfa_util.Trace.sink ->
    rebudget_session -> budget:int -> rebudget_step
  (** Answer one budget event incrementally against the session's live
      allocation. Never raises on any [budget] (the pinned-shrink rule
      clamps instead); after every event the returned allocation is
      certified never-worse than FR-RA/PR-RA at the effective budget. *)

  val rebudget_current : rebudget_session -> Allocation.t
  (** The live certified allocation after the last event. *)

  val rebudget :
    ?trace:Srfa_util.Trace.sink ->
    ?sim_scratch:Srfa_sched.Simulator.scratch ->
    config -> prepared -> initial:int -> events:int list ->
    rebudget_step list
  (** Replay a whole event stream: {!rebudget_start} at [initial], then
      one {!rebudget_step} per event, returning the steps in order
      (initial point first — [1 + length events] steps). *)
end

type guards = Core.guards = {
  cut_work_limit : int option;
  event_model_cap : int;
}

val default_guards : guards
(** [cut_work_limit = Some 200_000] (far beyond any of the paper kernels'
    needs — the fir kernel's full allocation costs under a hundred work
    units), [event_model_cap = 100_000]. *)

type config = Core.config = {
  budget : int;                              (** register budget (paper: 64) *)
  sim : Srfa_sched.Simulator.config;
  clock_params : Srfa_estimate.Clock.params;
  guards : guards;
}

val default_config : config
(** Budget 64, default simulator, clock parameters and guards. *)

val evaluate :
  ?config:config -> ?trace:Srfa_util.Trace.sink -> Allocator.algorithm ->
  Nest.t -> Srfa_estimate.Report.t
(** Analyse, allocate, simulate and estimate one design. The allocation
    runs under a trace collector either way, so the report's
    [trace_summary] is always filled in; [trace] additionally forwards the
    raw events (e.g. to {!Srfa_util.Trace.channel}). *)

val evaluate_all :
  ?config:config -> ?algorithms:Allocator.algorithm list ->
  ?trace:Srfa_util.Trace.sink -> Nest.t -> Srfa_estimate.Report.t list
(** One report per algorithm (default: {!Allocator.all} — v1, v2, v3,
    v3+, the knapsack baseline and the certified portfolio), sharing a
    single analysis and one {!Cpa_ra.prepare} of the nest. *)

type sweep_point = Core.sweep_point = {
  kernel : string;
  algorithm : Allocator.algorithm;
  budget : int;
  report : Srfa_estimate.Report.t;
}

val default_budgets : int list
(** [[8; 16; 32; 64; 128]] — the differential-test grid; 64 is the
    paper's budget. *)

val sweep :
  ?config:config -> ?algorithms:Allocator.algorithm list ->
  ?budgets:int list -> ?trace:Srfa_util.Trace.sink ->
  ?pool:Srfa_util.Pool.t ->
  (string * Nest.t) list -> sweep_point list
(** Batch driver: kernels × algorithms × budgets in one pass. Each kernel
    is analysed once and its CPA scratch ({!Cpa_ra.prepare}) built once,
    then reused across every budget and algorithm; [config.budget] is
    superseded by [budgets]. Budgets below a kernel's feasibility minimum
    (one register per reference group) are skipped rather than raising, so
    a mixed-kernel sweep never aborts. Points are ordered kernel-major,
    then budget, then algorithm.

    {!Allocator.Portfolio} points are additionally budget-monotonic: per
    kernel, the sweep carries the best certified allocation forward (any
    allocation feasible at a lower budget stays feasible at a higher one)
    and adopts it whenever a fresh point would report more cycles, so
    more registers never yield more cycles. Each takeover emits a
    ["certify.monotonic"] trace event.

    [pool] parallelises the sweep {e across kernels} (each kernel's
    budget ladder stays sequential, preserving the portfolio
    carry-forward); the result is equal to the sequential sweep — same
    points in the same kernel-major order, and the same [trace] stream,
    each kernel's events buffered ({!Srfa_util.Trace.buffered}) and
    spliced back in kernel order. *)

val run_checked :
  ?config:config -> ?algorithm:Allocator.algorithm ->
  ?trace:Srfa_util.Trace.sink -> Nest.t ->
  (Srfa_estimate.Report.t * Srfa_util.Diag.t list, Srfa_util.Diag.t list)
  result
(** Total pipeline: analyse, allocate (default {!Allocator.Cpa_ra}),
    simulate and estimate — never raising. Any library-boundary exception
    (semantic validation, infeasible budget, internal invariant) comes
    back as [Error diags] via {!Srfa_util.Diag.of_exn}. [Ok (report,
    warnings)] carries one warning diagnostic per tripped resource guard:
    [W-GUARD-CUT] (CPA fell back to PR-RA on an exhausted cut work
    budget), [W-GUARD-MASK] (simulator degraded past the bitmask memo
    cap), [W-GUARD-EVENT] (the event-model second opinion diverged; the
    report keeps the Cycle_model timing). Every trip is also visible as a
    trace event ([fallback.pr_ra], [guard.mask], [fallback.cycle_model])
    on [trace]. *)

val analyze : Nest.t -> Analysis.t
(** Re-exported for callers that drive the stages separately. *)

val allocation :
  ?config:config -> ?trace:Srfa_util.Trace.sink ->
  ?prepared:Cpa_ra.prepared ->
  ?sim_scratch:Srfa_sched.Simulator.scratch ->
  Allocator.algorithm -> Analysis.t ->
  Allocation.t
