(** Full Reuse Register Allocation (paper Fig. 3, variant 1).

    Every reference group receives one feasibility register; the remaining
    budget is handed out in benefit/cost order, each candidate either
    receiving the full [nu] registers of its reuse window or nothing.
    Groups without temporal reuse are not candidates. Leftover registers
    stay unused (that is PR-RA's improvement). *)

open Srfa_reuse

val spend_full_windows : Engine.t -> unit
(** The FR-RA strategy body over an allocation engine: cover whole reuse
    windows in benefit/cost order while they fit. Exposed because PR-RA is
    exactly this followed by its leftover rule. *)

val allocate :
  ?trace:Srfa_util.Trace.sink -> Analysis.t -> budget:int -> Allocation.t
(** @raise Invalid_argument when [budget < feasibility_minimum]. *)
