(** Full Reuse Register Allocation (paper Fig. 3, variant 1).

    Every reference group receives one feasibility register; the remaining
    budget is handed out in benefit/cost order, each candidate either
    receiving the full [nu] registers of its reuse window or nothing.
    Groups without temporal reuse are not candidates. Leftover registers
    stay unused (that is PR-RA's improvement). *)

open Srfa_reuse

val allocate : Analysis.t -> budget:int -> Allocation.t
(** @raise Invalid_argument when [budget < feasibility_minimum]. *)
