(** Uniform entry point over the allocation algorithms. *)

open Srfa_reuse

type algorithm =
  | Fr_ra     (** greedy, full reuse only (paper v1) *)
  | Pr_ra     (** greedy with partial leftover (paper v2) *)
  | Cpa_ra    (** critical-path-aware (paper v3, the contribution) *)
  | Cpa_plus  (** CPA-RA + benefit/cost spending of stranded registers
                  (our extension; see {!Cpa_ra.allocate}) *)
  | Knapsack  (** exact access-count optimum (our reference baseline) *)

val all : algorithm list
val name : algorithm -> string
val version_label : algorithm -> string
(** The paper's design labels: v1, v2, v3; our extensions get "v3+" and
    "ks". *)

val of_name : string -> algorithm option
(** Accepts the {!name} strings, e.g. ["cpa-ra"]. *)

val run :
  ?latency:Srfa_hw.Latency.t -> algorithm -> Analysis.t -> budget:int ->
  Allocation.t
(** @raise Invalid_argument when the budget is below one register per
    reference group. *)
