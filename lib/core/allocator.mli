(** Uniform entry point over the allocation algorithms. *)

open Srfa_reuse

type algorithm =
  | Fr_ra     (** greedy, full reuse only (paper v1) *)
  | Pr_ra     (** greedy with partial leftover (paper v2) *)
  | Cpa_ra    (** critical-path-aware (paper v3, the contribution) *)
  | Cpa_plus  (** CPA-RA + benefit/cost spending of stranded registers
                  (our extension; see {!Cpa_ra.allocate}) *)
  | Knapsack  (** exact access-count optimum (our reference baseline) *)
  | Portfolio (** certified CPA-RA: simulator-backed repair against the
                  greedy baselines, never worse than FR-RA or PR-RA by
                  construction (see {!Certify}) *)

val all : algorithm list
val name : algorithm -> string
val version_label : algorithm -> string
(** The paper's design labels: v1, v2, v3; our extensions get "v3+",
    "ks" and "pf". *)

val of_name : string -> algorithm option
(** Accepts the {!name} strings, e.g. ["cpa-ra"], plus the short aliases
    ("fr", "cpa+", "knapsack", "best-of", "cert", ...),
    case-insensitively — ["CPA-RA"] round-trips like ["cpa-ra"]. *)

val run :
  ?latency:Srfa_hw.Latency.t -> ?trace:Srfa_util.Trace.sink ->
  ?cut_work_limit:int -> ?prepared:Cpa_ra.prepared ->
  ?sim_config:Srfa_sched.Simulator.config ->
  ?sim_scratch:Srfa_sched.Simulator.scratch -> algorithm ->
  Analysis.t -> budget:int -> Allocation.t
(** Every algorithm runs as a strategy over {!Engine}; [trace] observes
    its decisions (see {!Engine} for the event vocabulary). [prepared] is
    {!Cpa_ra.prepare} scratch, reused across budgets by {!Flow.sweep} and
    ignored by the non-CPA algorithms.

    [cut_work_limit] (default unlimited) caps the max-flow effort of every
    CPA cut query (see {!Srfa_dfg.Cut.cheapest}). When the guard trips,
    the CPA variants degrade to PR-RA on the same analysis and budget — a
    ["fallback.pr_ra"] event is emitted on [trace] and the PR-RA
    allocation is returned; no exception escapes. The guard is ignored by
    the non-CPA algorithms, which ask no cut queries.

    [sim_config] is the simulator configuration {!Portfolio}'s
    certification pass measures cycles under (default
    {!Srfa_sched.Simulator.default_config}, with [latency] substituted
    when given), and [sim_scratch] its reusable simulator state; the
    other algorithms never simulate and ignore both.
    @raise Invalid_argument when the budget is below one register per
    reference group. *)

val run_portfolio :
  ?latency:Srfa_hw.Latency.t -> ?trace:Srfa_util.Trace.sink ->
  ?cut_work_limit:int -> ?prepared:Cpa_ra.prepared ->
  ?sim_config:Srfa_sched.Simulator.config ->
  ?sim_scratch:Srfa_sched.Simulator.scratch ->
  Analysis.t -> budget:int -> Certify.outcome
(** {!run} for {!Portfolio}, but returning the whole certification
    outcome. When [outcome.sim] is [Some], it is the simulation of the
    certified allocation under [sim_config] — reuse it (e.g. via
    {!Srfa_estimate.Report.of_result}) instead of simulating again; on
    the dominance fast path it is [None] and no simulation ever ran. *)
