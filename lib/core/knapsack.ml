open Srfa_reuse

let allocate ?trace analysis ~budget =
  let eng = Engine.create ?trace analysis ~budget in
  let capacity = Engine.remaining eng in
  let items =
    Array.to_list analysis.Analysis.infos
    |> List.filter (fun (i : Analysis.info) ->
           i.Analysis.has_reuse && i.Analysis.saved_full > 0
           && i.Analysis.nu - 1 <= capacity)
  in
  let n = List.length items in
  let items = Array.of_list items in
  (* 0/1 knapsack over the extra registers; [best.(k).(c)] is the maximum
     saved accesses using items k.. with c registers left. *)
  let best = Array.make_matrix (n + 1) (capacity + 1) 0 in
  let take = Array.make_matrix (n + 1) (capacity + 1) false in
  for k = n - 1 downto 0 do
    let i = items.(k) in
    let w = i.Analysis.nu - 1 and v = i.Analysis.saved_full in
    for c = 0 to capacity do
      let skip = best.(k + 1).(c) in
      let pick = if w <= c then v + best.(k + 1).(c - w) else -1 in
      if pick > skip then begin
        best.(k).(c) <- pick;
        take.(k).(c) <- true
      end
      else best.(k).(c) <- skip
    done
  done;
  let c = ref capacity in
  for k = 0 to n - 1 do
    if take.(k).(!c) then begin
      let i = items.(k) in
      ignore
        (Engine.try_assign_full ~reason:"knapsack optimum" eng
           i.Analysis.group.Group.id);
      c := !c - (i.Analysis.nu - 1)
    end
  done;
  Engine.finalize eng ~algorithm:"ks-ra"
