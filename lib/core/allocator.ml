type algorithm = Fr_ra | Pr_ra | Cpa_ra | Cpa_plus | Knapsack

let all = [ Fr_ra; Pr_ra; Cpa_ra; Cpa_plus; Knapsack ]

let name = function
  | Fr_ra -> "fr-ra"
  | Pr_ra -> "pr-ra"
  | Cpa_ra -> "cpa-ra"
  | Cpa_plus -> "cpa-ra+"
  | Knapsack -> "ks-ra"

let version_label = function
  | Fr_ra -> "v1"
  | Pr_ra -> "v2"
  | Cpa_ra -> "v3"
  | Cpa_plus -> "v3+"
  | Knapsack -> "ks"

let of_name name =
  match String.lowercase_ascii name with
  | "fr-ra" | "fr" -> Some Fr_ra
  | "pr-ra" | "pr" -> Some Pr_ra
  | "cpa-ra" | "cpa" -> Some Cpa_ra
  | "cpa-ra+" | "cpa+" -> Some Cpa_plus
  | "ks-ra" | "ks" | "knapsack" -> Some Knapsack
  | _ -> None

let run ?latency ?trace ?cut_work_limit ?prepared algorithm analysis ~budget =
  (* The paper's graceful-degradation rule: when the cut machinery cannot
     be applied (here: the max-flow work guard tripped), answer with PR-RA
     rather than abort. The fallback is announced on the trace so reports
     and diagnostics can surface it. *)
  let with_pr_fallback allocate =
    try allocate () with
    | Srfa_dfg.Cut.Work_limit { phases; paths; limit } ->
      (match trace with
      | Some sink ->
        Srfa_util.Trace.emit sink (fun () ->
            let open Srfa_util.Trace in
            event "fallback.pr_ra"
              [
                ("reason", String "cut work limit exceeded");
                ("work_limit", Int limit);
                ("bfs_phases", Int phases);
                ("augmenting_paths", Int paths);
              ])
      | None -> ());
      Pr_ra.allocate ?trace analysis ~budget
  in
  match algorithm with
  | Fr_ra -> Fr_ra.allocate ?trace analysis ~budget
  | Pr_ra -> Pr_ra.allocate ?trace analysis ~budget
  | Cpa_ra ->
    with_pr_fallback (fun () ->
        Cpa_ra.allocate ?latency ?trace ?cut_work_limit ?prepared analysis
          ~budget)
  | Cpa_plus ->
    with_pr_fallback (fun () ->
        Cpa_ra.allocate ?latency ?trace ?cut_work_limit ?prepared
          ~spend_leftover:true analysis ~budget)
  | Knapsack -> Knapsack.allocate ?trace analysis ~budget
