type algorithm = Fr_ra | Pr_ra | Cpa_ra | Cpa_plus | Knapsack

let all = [ Fr_ra; Pr_ra; Cpa_ra; Cpa_plus; Knapsack ]

let name = function
  | Fr_ra -> "fr-ra"
  | Pr_ra -> "pr-ra"
  | Cpa_ra -> "cpa-ra"
  | Cpa_plus -> "cpa-ra+"
  | Knapsack -> "ks-ra"

let version_label = function
  | Fr_ra -> "v1"
  | Pr_ra -> "v2"
  | Cpa_ra -> "v3"
  | Cpa_plus -> "v3+"
  | Knapsack -> "ks"

let of_name name =
  match String.lowercase_ascii name with
  | "fr-ra" | "fr" -> Some Fr_ra
  | "pr-ra" | "pr" -> Some Pr_ra
  | "cpa-ra" | "cpa" -> Some Cpa_ra
  | "cpa-ra+" | "cpa+" -> Some Cpa_plus
  | "ks-ra" | "ks" | "knapsack" -> Some Knapsack
  | _ -> None

let run ?latency ?trace ?prepared algorithm analysis ~budget =
  match algorithm with
  | Fr_ra -> Fr_ra.allocate ?trace analysis ~budget
  | Pr_ra -> Pr_ra.allocate ?trace analysis ~budget
  | Cpa_ra -> Cpa_ra.allocate ?latency ?trace ?prepared analysis ~budget
  | Cpa_plus ->
    Cpa_ra.allocate ?latency ?trace ?prepared ~spend_leftover:true analysis
      ~budget
  | Knapsack -> Knapsack.allocate ?trace analysis ~budget
