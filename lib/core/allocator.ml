type algorithm = Fr_ra | Pr_ra | Cpa_ra | Cpa_plus | Knapsack | Portfolio

let all = [ Fr_ra; Pr_ra; Cpa_ra; Cpa_plus; Knapsack; Portfolio ]

let name = function
  | Fr_ra -> "fr-ra"
  | Pr_ra -> "pr-ra"
  | Cpa_ra -> "cpa-ra"
  | Cpa_plus -> "cpa-ra+"
  | Knapsack -> "ks-ra"
  | Portfolio -> "portfolio"

let version_label = function
  | Fr_ra -> "v1"
  | Pr_ra -> "v2"
  | Cpa_ra -> "v3"
  | Cpa_plus -> "v3+"
  | Knapsack -> "ks"
  | Portfolio -> "pf"

let of_name name =
  match String.lowercase_ascii name with
  | "fr-ra" | "fr" -> Some Fr_ra
  | "pr-ra" | "pr" -> Some Pr_ra
  | "cpa-ra" | "cpa" -> Some Cpa_ra
  | "cpa-ra+" | "cpa+" -> Some Cpa_plus
  | "ks-ra" | "ks" | "knapsack" -> Some Knapsack
  | "portfolio" | "best-of" | "cert" -> Some Portfolio
  | _ -> None

(* The paper's graceful-degradation rule: when the cut machinery cannot
   be applied (here: the max-flow work guard tripped), answer with PR-RA
   rather than abort. The fallback is announced on the trace so reports
   and diagnostics can surface it. *)
let with_pr_fallback ?trace analysis ~budget allocate =
  try allocate () with
  | Srfa_dfg.Cut.Work_limit { phases; paths; limit } ->
    (match trace with
    | Some sink ->
      Srfa_util.Trace.emit sink (fun () ->
          let open Srfa_util.Trace in
          event "fallback.pr_ra"
            [
              ("reason", String "cut work limit exceeded");
              ("work_limit", Int limit);
              ("bfs_phases", Int phases);
              ("augmenting_paths", Int paths);
            ])
    | None -> ());
    Pr_ra.allocate ?trace analysis ~budget

(* Certified CPA-RA: the plain critical-path allocation is the candidate;
   certification simulates it against the greedy baselines at the same
   budget and repairs (or adopts a baseline) on a regression, so the
   result is never worse than FR-RA or PR-RA. The full outcome is exposed
   so callers can reuse the certification's final simulation (when the
   slow path ran) instead of simulating the allocation again. *)
let run_portfolio ?latency ?trace ?cut_work_limit ?prepared ?sim_config
    ?sim_scratch analysis ~budget =
  let candidate =
    with_pr_fallback ?trace analysis ~budget (fun () ->
        Cpa_ra.allocate ?latency ?trace ?cut_work_limit ?prepared analysis
          ~budget)
  in
  let sim_config =
    match (sim_config, latency) with
    | Some c, _ -> c
    | None, Some latency -> { Srfa_sched.Simulator.default_config with latency }
    | None, None -> Srfa_sched.Simulator.default_config
  in
  Certify.certify ?trace ~sim_config ?sim_scratch candidate

let run ?latency ?trace ?cut_work_limit ?prepared ?sim_config ?sim_scratch
    algorithm analysis ~budget =
  match algorithm with
  | Fr_ra -> Fr_ra.allocate ?trace analysis ~budget
  | Pr_ra -> Pr_ra.allocate ?trace analysis ~budget
  | Cpa_ra ->
    with_pr_fallback ?trace analysis ~budget (fun () ->
        Cpa_ra.allocate ?latency ?trace ?cut_work_limit ?prepared analysis
          ~budget)
  | Cpa_plus ->
    with_pr_fallback ?trace analysis ~budget (fun () ->
        Cpa_ra.allocate ?latency ?trace ?cut_work_limit ?prepared
          ~spend_leftover:true analysis ~budget)
  | Knapsack -> Knapsack.allocate ?trace analysis ~budget
  | Portfolio ->
    (run_portfolio ?latency ?trace ?cut_work_limit ?prepared ?sim_config
       ?sim_scratch analysis ~budget)
      .Certify.allocation
