open Srfa_reuse
module Graph = Srfa_dfg.Graph
module Critical = Srfa_dfg.Critical
module Cut = Srfa_dfg.Cut
module Trace = Srfa_util.Trace

type trace_step = {
  cut : Group.t list;
  required : int;
  granted_full : bool;
  critical_length : int;
}

type prepared = { dfg : Graph.t; scratch : Critical.scratch }

let prepare analysis =
  let dfg = Graph.build analysis in
  { dfg; scratch = Critical.scratch dfg }

let dfg prepared = prepared.dfg

let allocate_traced ?(latency = Srfa_hw.Latency.default)
    ?(spend_leftover = false) ?trace ?cut_work_limit ?prepared analysis
    ~budget =
  let eng = Engine.create ?trace analysis ~budget in
  let sink = Engine.trace eng in
  let { dfg; scratch } =
    match prepared with Some p -> p | None -> prepare analysis
  in
  let steps = ref [] in
  let record ~cut ~required ~granted_full ~critical_length =
    steps := { cut; required; granted_full; critical_length } :: !steps;
    Trace.emit sink (fun () ->
        Trace.event "round"
          [
            ("round", Trace.Int (Engine.round eng));
            ( "cut",
              Trace.List
                (List.map (fun g -> Trace.String (Group.name g)) cut) );
            ("required", Trace.Int required);
            ("granted_full", Trace.Bool granted_full);
            ("critical_length", Trace.Int critical_length);
            ("remaining", Trace.Int (Engine.remaining eng));
          ])
  in
  let rec round () =
    if Engine.remaining eng > 0 then begin
      let charged = Engine.charged eng in
      let cg = Critical.make ~scratch dfg ~latency ~charged in
      let mem_len = Graph.memory_path_length dfg ~latency ~charged in
      if mem_len > 0 then begin
        (* One max-flow query replaces enumerating every minimal cut: the
           min-weight vertex cut over improvable groups is exactly the
           cheapest eligible cut, under the same tie-break the enumeration
           order used to impose. *)
        match
          Cut.cheapest ~trace:sink ?work_limit:cut_work_limit cg
            ~eligible:(Engine.improvable eng)
            ~weight:(fun g -> Engine.need eng g.Group.id)
        with
        | None -> ()
        | Some (cut, req) ->
          ignore (Engine.next_round eng);
          let len = Critical.length cg in
          if req <= Engine.remaining eng then begin
            List.iter
              (fun (g : Group.t) ->
                ignore
                  (Engine.try_assign_full ~reason:"cut fully allocated" eng
                     g.Group.id))
              cut;
            record ~cut ~required:req ~granted_full:true ~critical_length:len;
            round ()
          end
          else begin
            (* Divide what is left evenly across the cut, so the covered
               iterations improve on every critical path. Cut members cap
               at their window size; if some of the budget could not be
               absorbed, the paper's while-loop re-enters with it. *)
            let share = Engine.remaining eng / List.length cut in
            let progressed = ref false in
            if share > 0 then
              List.iter
                (fun (g : Group.t) ->
                  if
                    Engine.assign_partial
                      ~reason:"even split across the final cut" eng
                      g.Group.id ~amount:share
                    > 0
                  then progressed := true)
                cut;
            record ~cut ~required:req ~granted_full:false ~critical_length:len;
            if !progressed && Engine.remaining eng > 0 then round ()
            else if not !progressed then
              (* Plain CPA-RA declares the rest unspendable. CPA+ must NOT:
                 draining here would zero the budget before the
                 stranded-register spender below gets to run — the bug
                 behind the fuzz campaign's CPA+-worse-than-FR/PR
                 counterexamples (cases 1135/1595/3919 at seed 42, pinned
                 in test_cpa_plus). *)
              if not spend_leftover then
                Engine.drain eng ~reason:"no cut member can absorb a share"
          end
      end
    end
  in
  round ();
  (* CPA+: hand out anything still stranded in benefit/cost order — full
     windows while they fit, then one partial candidate, like FR/PR do. *)
  if spend_leftover then begin
    let sorted = Ordering.sorted_infos analysis in
    List.iter
      (fun (i : Analysis.info) ->
        let gid = i.Analysis.group.Group.id in
        if i.Analysis.has_reuse && Engine.need eng gid > 0 then
          ignore
            (Engine.try_assign_full ~reason:"cpa+ spends stranded (full)" eng
               gid))
      sorted;
    List.iter
      (fun (i : Analysis.info) ->
        let gid = i.Analysis.group.Group.id in
        if
          Engine.remaining eng > 0 && i.Analysis.has_reuse
          && Engine.beta eng gid < i.Analysis.nu
        then
          ignore
            (Engine.assign_partial ~reason:"cpa+ spends stranded (partial)"
               eng gid ~amount:(Engine.remaining eng)))
      sorted
  end;
  let algorithm = if spend_leftover then "cpa-ra+" else "cpa-ra" in
  let alloc = Engine.finalize ~pin_all:true eng ~algorithm in
  (alloc, List.rev !steps)

let allocate ?latency ?spend_leftover ?trace ?cut_work_limit ?prepared
    analysis ~budget =
  fst
    (allocate_traced ?latency ?spend_leftover ?trace ?cut_work_limit
       ?prepared analysis ~budget)
