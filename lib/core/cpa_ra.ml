open Srfa_reuse
module Graph = Srfa_dfg.Graph
module Critical = Srfa_dfg.Critical
module Cut = Srfa_dfg.Cut

type trace_step = {
  cut : Group.t list;
  required : int;
  granted_full : bool;
  critical_length : int;
}

let allocate_traced ?(latency = Srfa_hw.Latency.default)
    ?(spend_leftover = false) analysis ~budget =
  Ordering.check_budget analysis ~budget;
  let ngroups = Analysis.num_groups analysis in
  let betas = Array.make ngroups 1 in
  let remaining = ref (budget - ngroups) in
  let dfg = Graph.build analysis in
  let info gid = Analysis.info analysis gid in
  (* Steady-state view: a group stops hitting RAM once its reuse window is
     fully covered; groups without reuse always hit RAM. *)
  let charged (g : Group.t) =
    let i = info g.Group.id in
    (not i.Analysis.has_reuse) || betas.(g.Group.id) < i.Analysis.nu
  in
  let improvable (g : Group.t) =
    let i = info g.Group.id in
    i.Analysis.has_reuse && betas.(g.Group.id) < i.Analysis.nu
  in
  let need g = (info g.Group.id).Analysis.nu - betas.(g.Group.id) in
  let scratch = Critical.scratch dfg in
  let trace = ref [] in
  let rec round () =
    if !remaining > 0 then begin
      let cg = Critical.make ~scratch dfg ~latency ~charged in
      let mem_len = Graph.memory_path_length dfg ~latency ~charged in
      if mem_len > 0 then begin
        (* One max-flow query replaces enumerating every minimal cut: the
           min-weight vertex cut over improvable groups is exactly the
           cheapest eligible cut, under the same tie-break the enumeration
           order used to impose. *)
        match Cut.cheapest cg ~eligible:improvable ~weight:need with
        | None -> ()
        | Some (cut, req) ->
          let len = Critical.length cg in
          if req <= !remaining then begin
            let fill g =
              betas.(g.Group.id) <- (info g.Group.id).Analysis.nu
            in
            List.iter fill cut;
            remaining := !remaining - req;
            trace :=
              { cut; required = req; granted_full = true; critical_length = len }
              :: !trace;
            round ()
          end
          else begin
            (* Divide what is left evenly across the cut, so the covered
               iterations improve on every critical path. Cut members cap
               at their window size; if some of the budget could not be
               absorbed, the paper's while-loop re-enters with it. *)
            let share = !remaining / List.length cut in
            let progressed = ref false in
            if share > 0 then begin
              let top_up g =
                let i = info g.Group.id in
                let gid = g.Group.id in
                let before = betas.(gid) in
                betas.(gid) <- min i.Analysis.nu (before + share);
                remaining := !remaining - (betas.(gid) - before);
                if betas.(gid) > before then progressed := true
              in
              List.iter top_up cut
            end;
            trace :=
              { cut; required = req; granted_full = false; critical_length = len }
              :: !trace;
            if !progressed && !remaining > 0 then round ()
            else if not !progressed then remaining := 0
          end
      end
    end
  in
  round ();
  (* CPA+: hand out anything still stranded in benefit/cost order — full
     windows while they fit, then one partial candidate, like FR/PR do. *)
  if spend_leftover then begin
    let try_full (i : Analysis.info) =
      let gid = i.Analysis.group.Group.id in
      let need = i.Analysis.nu - betas.(gid) in
      if i.Analysis.has_reuse && need > 0 && need <= !remaining then begin
        betas.(gid) <- i.Analysis.nu;
        remaining := !remaining - need
      end
    in
    List.iter try_full (Ordering.sorted_infos analysis);
    let try_partial (i : Analysis.info) =
      let gid = i.Analysis.group.Group.id in
      if !remaining > 0 && i.Analysis.has_reuse
         && betas.(gid) < i.Analysis.nu
      then begin
        let extra = min !remaining (i.Analysis.nu - betas.(gid)) in
        betas.(gid) <- betas.(gid) + extra;
        remaining := !remaining - extra
      end
    in
    List.iter try_partial (Ordering.sorted_infos analysis)
  end;
  let entries =
    Array.map (fun beta -> { Allocation.beta; pinned = true }) betas
  in
  let algorithm = if spend_leftover then "cpa-ra+" else "cpa-ra" in
  let alloc = Allocation.make ~analysis ~budget ~algorithm entries in
  (alloc, List.rev !trace)

let allocate ?latency ?spend_leftover analysis ~budget =
  fst (allocate_traced ?latency ?spend_leftover analysis ~budget)
