open Srfa_ir
open Srfa_reuse

type candidate = {
  order : int list;
  loop_vars : string list;
  nest : Nest.t;
  allocation : Allocation.t;
  cycles : int;
  memory_cycles : int;
}

let explore ?(config = Flow.default_config) algorithm nest =
  (match Permute.illegality nest with
  | Some why -> invalid_arg ("Order_explorer.explore: " ^ why)
  | None -> ());
  let evaluate order =
    let nest = Permute.interchange nest ~order in
    let analysis = Analysis.analyze nest in
    let allocation = Flow.allocation ~config algorithm analysis in
    let sim =
      Srfa_sched.Simulator.run ~config:config.Flow.sim allocation
    in
    {
      order;
      loop_vars = Nest.loop_vars nest;
      nest;
      allocation;
      cycles = sim.Srfa_sched.Simulator.total_cycles;
      memory_cycles = sim.Srfa_sched.Simulator.memory_cycles;
    }
  in
  let identity = List.init (Nest.depth nest) Fun.id in
  let candidates = List.map evaluate (Permute.all_orders nest) in
  List.sort
    (fun a b ->
      let c = Int.compare a.cycles b.cycles in
      if c <> 0 then c
      else
        let ida = a.order = identity and idb = b.order = identity in
        if ida && not idb then -1
        else if idb && not ida then 1
        else compare a.order b.order)
    candidates

let best ?config algorithm nest =
  match explore ?config algorithm nest with
  | [] -> assert false (* all_orders always yields the identity *)
  | c :: _ -> c
