open Srfa_ir
open Srfa_reuse

type candidate = {
  order : int list;
  loop_vars : string list;
  nest : Nest.t;
  allocation : Allocation.t;
  cycles : int;
  memory_cycles : int;
}

let explore ?(config = Flow.default_config) algorithm nest =
  let orders, skipped = Permute.legal_orders nest in
  let identity = List.init (Nest.depth nest) Fun.id in
  let evaluate order =
    let nest =
      if order = identity then nest else Permute.interchange nest ~order
    in
    let analysis = Analysis.analyze nest in
    let allocation = Flow.allocation ~config algorithm analysis in
    let sim =
      Srfa_sched.Simulator.run ~config:config.Flow.sim allocation
    in
    {
      order;
      loop_vars = Nest.loop_vars nest;
      nest;
      allocation;
      cycles = sim.Srfa_sched.Simulator.total_cycles;
      memory_cycles = sim.Srfa_sched.Simulator.memory_cycles;
    }
  in
  let candidates = List.map evaluate orders in
  let ranked =
    List.sort
      (fun a b ->
        let c = Int.compare a.cycles b.cycles in
        if c <> 0 then c
        else
          let ida = a.order = identity and idb = b.order = identity in
          if ida && not idb then -1
          else if idb && not ida then 1
          else compare a.order b.order)
      candidates
  in
  let warnings =
    if skipped > 0 then
      [
        Srfa_util.Diag.warning ~code:"W-GUARD-EXPLORE"
          (match Permute.illegality nest with
          | Some why -> why
          | None -> "loop orders were skipped")
          ~context:
            [
              ("kernel", nest.Nest.name);
              ("skipped_orders", string_of_int skipped);
            ];
      ]
    else []
  in
  (ranked, warnings)

let best ?config algorithm nest =
  match explore ?config algorithm nest with
  | [], _ -> assert false (* legal_orders always yields the identity *)
  | c :: _, _ -> c
