(** The unified allocation engine.

    Every allocator in this library — FR-RA, PR-RA, CPA-RA (and its CPA+
    variant) and the exact knapsack — is a {e strategy} over one explicit
    allocation state: the per-group entry array, the remaining budget, the
    pinned set and a round counter. This module owns that state and the
    shared primitives ([try_assign_full], [assign_partial], [finalize]),
    so the strategies contain only their decision logic, and every
    decision flows through one place where it can be traced.

    Invariants maintained:
    - [remaining t = budget - total registers held by the entries];
    - betas never exceed the group's window size [nu], and never drop
      except through the explicit takebacks {!reclaim} and {!take_back}
      (the repair layer's full and partial moves, also driven by
      {!rebudget}'s shrink walk);
    - an entry is pinned exactly when some assignment touched it
      (CPA-style strategies pin the rest at {!finalize} time).

    Tracing: pass a {!Srfa_util.Trace.sink} to {!create} and the engine
    emits ["engine.init"], ["assign.full"], ["assign.partial"],
    ["engine.drain"] and ["engine.finalize"] events; strategies add their
    own (CPA-RA emits one ["round"] event per cut round, and the cut
    engine underneath reports its max-flow statistics). The default sink
    is the no-op, which costs one physical-equality test per decision. *)

open Srfa_reuse

type t

val create : ?trace:Srfa_util.Trace.sink -> Analysis.t -> budget:int -> t
(** Feasibility-checked initial state: one unpinned register per group,
    [remaining = budget - num_groups], round 0.
    @raise Invalid_argument when the budget is below one register per
    reference group (see {!Ordering.check_budget}). *)

val of_allocation : ?trace:Srfa_util.Trace.sink -> Allocation.t -> t
(** Reopen a finished allocation for repair: the entries are copied (the
    original allocation is never mutated), [remaining] is the budget the
    allocator left unspent, the round counter restarts at 0. Emits an
    ["engine.reopen"] event. Used by {!Certify} to re-spend or reclaim
    registers of a candidate that simulated worse than a baseline. *)

val analysis : t -> Analysis.t
val budget : t -> int
val remaining : t -> int
val round : t -> int

val trace : t -> Srfa_util.Trace.sink
(** The engine's sink, for strategy-level events. *)

val beta : t -> int -> int
(** Registers currently held by a group id. *)

val info : t -> int -> Analysis.info

val need : t -> int -> int
(** [nu - beta]: extra registers for full coverage of the group. *)

val charged : t -> Group.t -> bool
(** Whether the group still hits RAM in steady state under the current
    betas: no temporal reuse, or a window not yet fully covered. *)

val improvable : t -> Group.t -> bool
(** Whether spending more registers on the group can remove RAM traffic:
    temporal reuse with an uncovered window. *)

val next_round : t -> int
(** Bump and return the round counter (CPA-RA calls this per cut round). *)

val try_assign_full : ?reason:string -> t -> int -> bool
(** Cover the group's whole window if its [need] fits the remaining
    budget: sets [beta = nu], pins the entry, deducts. Returns whether it
    happened. [need = 0] succeeds (and still pins — FR-RA's behaviour on
    windows of size one). *)

val assign_partial : ?reason:string -> t -> int -> amount:int -> int
(** Grant up to [amount] extra registers to the group, capped by the
    window ([need]) and the remaining budget; pins the entry when anything
    was granted. Returns the granted count (possibly 0).
    @raise Invalid_argument when [amount < 0]. *)

val reclaim : ?reason:string -> t -> int -> int
(** Take the group's registers back down to the feasibility minimum
    (beta 1), crediting the freed count to the remaining budget, and
    return how many were freed (0 when the group already sits at 1; the
    pinned flag is left as it was). Emits a ["repair.reclaim"] event.
    This is the one sanctioned way a beta decreases — the repair layer
    uses it to undo partial cut shares that simulated worse than a
    greedy baseline before re-spending them benefit/cost-first. *)

val take_back : ?reason:string -> t -> int -> amount:int -> int
(** [take_back t gid ~amount] removes up to [amount] registers from the
    group (never below the feasibility register, beta 1), credits them
    to the remaining budget and returns the count actually taken. The
    partial sibling of {!reclaim} — same ["repair.reclaim"] trace event,
    same pinned-flag preservation — used by {!rebudget}'s shrink walk so
    a small deficit does not strip a whole window. *)

type rebudget_outcome = {
  requested : int;  (** the budget the event asked for *)
  effective : int;  (** after clamping at the feasibility minimum *)
  clamped : bool;   (** [requested < feasibility minimum] *)
  freed : int;      (** registers taken back to fit a shrink *)
}

val rebudget : ?reason:string -> t -> budget:int -> rebudget_outcome
(** Answer one budget shrink/grow event against the live state — the
    incremental primitive under dynamic re-allocation (DESIGN.md §16).
    A grow credits the new headroom to [remaining] (re-spending it is
    the caller's move, e.g. {!Certify.respend}). A shrink takes held
    registers back cheapest-loss-first — reverse benefit/cost order,
    partial windows before full ones — until the entries fit, emitting
    one ["repair.reclaim"] event per touched group; pinned entries are
    spilled like any other once nothing cheaper is left. A request below
    the feasibility minimum cannot be honored even by spilling every
    pinned entry, so the budget degrades gracefully: it clamps at the
    minimum and [clamped] is set (callers report W-GUARD-REBUDGET)
    instead of raising. Always emits one ["engine.rebudget"] event. *)

val drain : ?reason:string -> t -> unit
(** Zero the remaining budget: the strategy declares the rest unspendable
    (CPA-RA does this when no cut round can make progress, which is what
    keeps plain CPA-RA from handing the stranded registers to CPA+'s
    spender). *)

val finalize : ?pin_all:bool -> t -> algorithm:string -> Allocation.t
(** Freeze the state into an {!Allocation.t}. [pin_all] (default false)
    pins every entry first — CPA-RA's contract, where even beta-1 groups
    are deliberate allocations. *)
