open Srfa_reuse

let sorted_infos analysis =
  let infos = Array.to_list analysis.Analysis.infos in
  let key (i : Analysis.info) =
    let writes = if Group.is_write i.Analysis.group then 1 else 0 in
    (-.i.Analysis.benefit_cost, writes, i.Analysis.group.Group.id)
  in
  List.sort (fun a b -> compare (key a) (key b)) infos

let feasibility_minimum analysis = Analysis.num_groups analysis

let check_budget analysis ~budget =
  let minimum = feasibility_minimum analysis in
  if budget < minimum then
    invalid_arg
      (Printf.sprintf
         "allocator: budget %d below feasibility minimum %d (one register \
          per reference)"
         budget minimum)
