open Srfa_reuse

let allocate analysis ~budget =
  let base = Fr_ra.allocate analysis ~budget in
  let entries =
    Array.init (Analysis.num_groups analysis) (Allocation.entry base)
  in
  let leftover = ref (budget - Allocation.total_registers base) in
  let give (i : Analysis.info) =
    let gid = i.Analysis.group.Group.id in
    let e = entries.(gid) in
    if !leftover > 0 && i.Analysis.has_reuse && e.Allocation.beta < i.Analysis.nu
    then begin
      let extra = min !leftover (i.Analysis.nu - e.Allocation.beta) in
      entries.(gid) <-
        { Allocation.beta = e.Allocation.beta + extra; pinned = true };
      leftover := 0 (* only the first partial candidate benefits *)
    end
  in
  List.iter give (Ordering.sorted_infos analysis);
  Allocation.make ~analysis ~budget ~algorithm:"pr-ra" entries
