open Srfa_reuse

(* PR-RA = FR-RA plus partial replacement of ONE more reference (paper
   §2: "assign the remaining registers to the next array reference in the
   sorted order" — singular). The first group in benefit/cost order whose
   window is not fully covered receives the whole leftover; every later
   candidate is deliberately skipped, which the pre-engine implementation
   spelled [leftover := 0] after the first grant.

   That single-recipient rule is load-bearing for the paper's worked
   example (the 11 stranded registers all go to d[i][k], Fig. 2(c)), and
   it never strands anything in practice, by an FR-RA invariant: FR-RA
   considers every group in order and skips one only when its full need
   exceeds the remaining budget at that moment; the budget only shrinks,
   so at the end every uncovered group needs MORE than the leftover, and
   the first partial candidate always absorbs all of it. The dedicated
   regression test (test/test_pr_partial.ml) pins both facts. *)
let give_leftover eng =
  let stopped = ref false in
  List.iter
    (fun (i : Analysis.info) ->
      let gid = i.Analysis.group.Group.id in
      if
        (not !stopped)
        && Engine.remaining eng > 0
        && i.Analysis.has_reuse
        && Engine.beta eng gid < i.Analysis.nu
      then begin
        ignore
          (Engine.assign_partial
             ~reason:"leftover to the single partial candidate" eng gid
             ~amount:(Engine.remaining eng));
        stopped := true
      end)
    (Ordering.sorted_infos (Engine.analysis eng))

let allocate ?trace analysis ~budget =
  let eng = Engine.create ?trace analysis ~budget in
  Fr_ra.spend_full_windows eng;
  give_leftover eng;
  Engine.finalize eng ~algorithm:"pr-ra"
