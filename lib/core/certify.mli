(** Simulator-backed certification and repair of a candidate allocation.

    The paper's claim — CPA-RA never loses to the greedy baselines — is
    statistical, not structural: on a small fraction of random kernels
    the critical-path model strands registers, or spreads them over a
    cut whose partial coverage buys less than a greedy spend would (the
    fuzz campaign's comparative regressions). {!certify} closes that gap
    {e by construction}, comparing the candidate against FR-RA and PR-RA
    at the same budget and repairing when it loses.

    The comparison has a fast path and a slow path. The pinned residency
    rule ([resident <-> pinned && slot_rank < beta], with slot ranks a
    function of the analysis alone) makes simulated cycles monotone in
    pointwise coverage: if the candidate's entries cover a baseline's
    everywhere, it cannot lose to it. Two simulation-free certificates
    are tried in order ({!Dominates}): the candidate covering both
    baselines (PR-RA coverage alone suffices when PR-RA covers FR-RA,
    which its construction guarantees), and — failing that — the
    re-spent candidate covering them, which is safe to adopt because
    re-spending only adds registers and so covers the candidate too.
    Only when both fail are the candidate and the baselines simulated
    (PR-RA alone when it covers FR-RA pointwise) and, on a regression,
    repair runs:

    + {b re-spend}: hand the registers the candidate left unspent to the
      benefit/cost order (CPA+'s spender), via {!Engine.of_allocation};
    + {b reclaim}: additionally take back partial cut shares
      ({!Engine.reclaim}) and re-spend the freed registers;
    + {b adopt}: fall back to the winning baseline allocation outright.

    The returned allocation therefore never simulates worse than either
    baseline under the certification's simulator configuration, and it is
    relabeled ["portfolio"] (see {!Allocator.Portfolio}).

    Trace vocabulary: ["certify.start"], then either
    ["certify.dominates"] (fast path) or ["certify.compare"] followed by
    ["certify.pass"] or ["certify.regression"] with ["repair.respend"],
    ["repair.respent_reclaimed"] (plus ["repair.reclaim"] per reclaimed
    group, from the engine) and ["repair.adopt"] as repair progresses;
    ["certify.done"] always closes, and the engine adds
    ["engine.reopen"]/["assign.*"] events for every repair decision. *)

open Srfa_reuse

val algorithm_name : string
(** ["portfolio"] — the provenance label of certified allocations. *)

type comparison =
  | Dominates
      (** the certified allocation's coverage dominates both baselines
          pointwise (either as-is or after a re-spend repair); certified
          without simulating *)
  | Simulated of { candidate_cycles : int; bar_cycles : int }
      (** simulated comparison; [bar_cycles] is the best baseline's total
          and the final allocation's cycles are [<= bar_cycles] *)

type outcome = {
  allocation : Allocation.t;  (** certified, [algorithm = "portfolio"] *)
  sim : Srfa_sched.Simulator.result option;
      (** the simulation of [allocation] when the slow path ran
          (reusable via {!Srfa_estimate.Report.of_result});
          [None] on the dominance fast path *)
  comparison : comparison;
  repaired : bool;  (** a repair pass produced the certified allocation *)
  adopted : string option;
      (** [Some "fr-ra"/"pr-ra"] when repair could not beat the baseline
          and certification adopted it *)
}

val respend : Engine.t -> unit
(** CPA+'s stranded-register spender over an open engine: cover full
    reuse windows in benefit/cost order while they fit, then one partial
    top-up. Exposed for the incremental re-budgeting path
    ({!Flow.Core.rebudget}), which re-spends the headroom a grow event
    credits before re-certifying. *)

val covers : Allocation.t -> Allocation.t -> bool
(** [covers a b]: [a]'s entries dominate [b]'s pointwise — every group
    [b] pins is pinned by [a] with at least the same beta — so [a]
    register-hits everywhere [b] does and cannot simulate worse. *)

val certify :
  ?trace:Srfa_util.Trace.sink ->
  ?sim_config:Srfa_sched.Simulator.config ->
  ?sim_scratch:Srfa_sched.Simulator.scratch ->
  Allocation.t ->
  outcome
(** [certify candidate] runs the candidate's analysis through FR-RA and
    PR-RA at [candidate.budget] and certifies as above. Fast path: two
    greedy allocations and a coverage scan, no simulation. Slow path:
    additionally two simulations (candidate and the covering baseline),
    up to two more under repair. *)
