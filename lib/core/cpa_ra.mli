(** Critical-Path-Aware Register Allocation (paper Fig. 4) — the paper's
    contribution.

    Starting from one pinned register per group, the algorithm repeatedly:
    extracts the Critical Graph of the body's DFG under the current
    allocation, asks the polynomial cut engine ({!Srfa_dfg.Cut.cheapest},
    max-flow over the node-split CG) for the improvable cut with the
    smallest additional register requirement, and fully allocates it. When the cheapest
    cut no longer fits, the remaining registers are divided evenly between
    that cut's references (partial reuse on a whole cut, so every critical
    path still improves on the covered iterations), and the algorithm
    stops. Cuts containing a reference without temporal reuse cannot be
    improved and are skipped. *)

open Srfa_reuse

type trace_step = {
  cut : Group.t list;        (** the cut selected this round *)
  required : int;            (** extra registers for full coverage *)
  granted_full : bool;       (** false for the final even split *)
  critical_length : int;     (** CP latency before the assignment *)
}

type prepared
(** Budget-independent analysis scratch: the body's DFG and the critical
    extraction state. Building it costs one {!Srfa_dfg.Graph.build} plus a
    topological sort; {!Flow.sweep} builds it once per kernel and reuses
    it across every budget and both CPA variants. *)

val prepare : Analysis.t -> prepared

val dfg : prepared -> Srfa_dfg.Graph.t
(** The DFG the scratch was built from — donate it to
    {!Srfa_sched.Simulator.scratch} so one kernel needs one graph build
    total. *)

val allocate :
  ?latency:Srfa_hw.Latency.t -> ?spend_leftover:bool ->
  ?trace:Srfa_util.Trace.sink -> ?cut_work_limit:int ->
  ?prepared:prepared -> Analysis.t -> budget:int -> Allocation.t
(** @raise Invalid_argument when [budget < feasibility_minimum].
    @raise Srfa_dfg.Cut.Work_limit when [cut_work_limit] (default
    unlimited) is exhausted by a cut query — {!Allocator.run} catches it
    and falls back to PR-RA.

    [spend_leftover] (default [false], the paper's algorithm) switches on
    the CPA+ extension: once no critical-graph cut can be improved, the
    stranded registers are handed out in benefit/cost order like FR-RA /
    PR-RA would. Coverage is monotone in registers under the cycle model,
    so CPA+ never executes more cycles than CPA-RA.

    [prepared] (default: built on the spot) must come from {!prepare} on
    the same analysis. [trace] receives the engine's assignment events,
    one ["round"] event per cut round and the cut engine's ["cut.flow"]
    statistics. *)

val allocate_traced :
  ?latency:Srfa_hw.Latency.t -> ?spend_leftover:bool ->
  ?trace:Srfa_util.Trace.sink -> ?cut_work_limit:int ->
  ?prepared:prepared -> Analysis.t ->
  budget:int -> Allocation.t * trace_step list
(** Like {!allocate}, also returning the per-round decisions (used by the
    examples and the DOT dumper to narrate the algorithm). *)
