open Srfa_reuse

let allocate analysis ~budget =
  Ordering.check_budget analysis ~budget;
  let ngroups = Analysis.num_groups analysis in
  let entries =
    Array.make ngroups { Allocation.beta = 1; pinned = false }
  in
  let remaining = ref (budget - ngroups) in
  let try_assign (i : Analysis.info) =
    let need = i.Analysis.nu - 1 in
    if i.Analysis.has_reuse && need <= !remaining then begin
      entries.(i.Analysis.group.Group.id) <-
        { Allocation.beta = i.Analysis.nu; pinned = true };
      remaining := !remaining - need
    end
  in
  List.iter try_assign (Ordering.sorted_infos analysis);
  Allocation.make ~analysis ~budget ~algorithm:"fr-ra" entries
