open Srfa_reuse

(* The FR-RA strategy body, shared with PR-RA (which runs it first): walk
   the groups in benefit/cost order and cover each whole reuse window
   while it fits. *)
let spend_full_windows eng =
  List.iter
    (fun (i : Analysis.info) ->
      if i.Analysis.has_reuse then
        ignore
          (Engine.try_assign_full ~reason:"full window, benefit/cost order"
             eng i.Analysis.group.Group.id))
    (Ordering.sorted_infos (Engine.analysis eng))

let allocate ?trace analysis ~budget =
  let eng = Engine.create ?trace analysis ~budget in
  spend_full_windows eng;
  Engine.finalize eng ~algorithm:"fr-ra"
