open Srfa_reuse

type config = {
  budget : int;
  sim : Srfa_sched.Simulator.config;
  clock_params : Srfa_estimate.Clock.params;
}

let default_config =
  {
    budget = 64;
    sim = Srfa_sched.Simulator.default_config;
    clock_params = Srfa_estimate.Clock.default_params;
  }

let analyze nest = Analysis.analyze nest

let allocation ?(config = default_config) ?trace ?prepared algorithm analysis =
  Allocator.run ~latency:config.sim.Srfa_sched.Simulator.latency ?trace
    ?prepared algorithm analysis ~budget:config.budget

let evaluate_analysis ?(trace = Srfa_util.Trace.null) ?prepared config
    algorithm analysis =
  (* Always collect the decision events so the report can summarise them;
     the caller's sink (CLI --trace, bench) sees the same stream. *)
  let collect, events = Srfa_util.Trace.collector () in
  let sink =
    if Srfa_util.Trace.enabled trace then
      Srfa_util.Trace.make (fun e ->
          Srfa_util.Trace.emit trace (fun () -> e);
          Srfa_util.Trace.emit collect (fun () -> e))
    else collect
  in
  let alloc = allocation ~config ~trace:sink ?prepared algorithm analysis in
  Srfa_estimate.Report.build ~sim_config:config.sim
    ~clock_params:config.clock_params
    ~trace_summary:(Srfa_util.Trace.summary (events ()))
    ~version:(Allocator.version_label algorithm)
    alloc

let evaluate ?(config = default_config) ?trace algorithm nest =
  evaluate_analysis ?trace config algorithm (analyze nest)

let evaluate_all ?(config = default_config) ?(algorithms = Allocator.all)
    ?trace nest =
  let analysis = analyze nest in
  let prepared = Cpa_ra.prepare analysis in
  List.map
    (fun alg -> evaluate_analysis ?trace ~prepared config alg analysis)
    algorithms

type sweep_point = {
  kernel : string;
  algorithm : Allocator.algorithm;
  budget : int;
  report : Srfa_estimate.Report.t;
}

let default_budgets = [ 8; 16; 32; 64; 128 ]

let sweep ?(config = default_config) ?(algorithms = Allocator.all)
    ?(budgets = default_budgets) ?trace kernels =
  List.concat_map
    (fun (kernel, nest) ->
      let analysis = analyze nest in
      let minimum = Ordering.feasibility_minimum analysis in
      let prepared = Cpa_ra.prepare analysis in
      List.concat_map
        (fun budget ->
          if budget < minimum then []
          else
            List.map
              (fun algorithm ->
                let report =
                  evaluate_analysis ?trace ~prepared { config with budget }
                    algorithm analysis
                in
                { kernel; algorithm; budget; report })
              algorithms)
        budgets)
    kernels
