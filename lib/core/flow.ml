open Srfa_reuse

type config = {
  budget : int;
  sim : Srfa_sched.Simulator.config;
  clock_params : Srfa_estimate.Clock.params;
}

let default_config =
  {
    budget = 64;
    sim = Srfa_sched.Simulator.default_config;
    clock_params = Srfa_estimate.Clock.default_params;
  }

let analyze nest = Analysis.analyze nest

let allocation ?(config = default_config) algorithm analysis =
  Allocator.run ~latency:config.sim.Srfa_sched.Simulator.latency algorithm
    analysis ~budget:config.budget

let evaluate_analysis config algorithm analysis =
  let alloc = allocation ~config algorithm analysis in
  Srfa_estimate.Report.build ~sim_config:config.sim
    ~clock_params:config.clock_params
    ~version:(Allocator.version_label algorithm)
    alloc

let evaluate ?(config = default_config) algorithm nest =
  evaluate_analysis config algorithm (analyze nest)

let evaluate_all ?(config = default_config)
    ?(algorithms = [ Allocator.Fr_ra; Allocator.Pr_ra; Allocator.Cpa_ra ])
    nest =
  let analysis = analyze nest in
  List.map (fun alg -> evaluate_analysis config alg analysis) algorithms
