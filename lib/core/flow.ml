open Srfa_reuse
module Diag = Srfa_util.Diag
module Trace = Srfa_util.Trace

(* ---- pure core --------------------------------------------------------

   Everything below [module Core] is deterministic value-to-value
   computation: (parsed kernel, device/config, algorithm, budget,
   scratch) -> report. No filesystem, no formatters, no channels, no
   exit codes — trace sinks are injected by the caller and the in-memory
   collector is the only one Core creates itself. The IO shell (the
   top-level [Flow] functions, the CLI, the serve daemon) owns all
   rendering and channel state, which is what lets Core values
   ([prepared], reports) be cached and reused across requests. *)

module Core = struct
  type guards = { cut_work_limit : int option; event_model_cap : int }

  let default_guards =
    { cut_work_limit = Some 200_000; event_model_cap = 100_000 }

  type config = {
    budget : int;
    sim : Srfa_sched.Simulator.config;
    clock_params : Srfa_estimate.Clock.params;
    guards : guards;
  }

  let default_config =
    {
      budget = 64;
      sim = Srfa_sched.Simulator.default_config;
      clock_params = Srfa_estimate.Clock.default_params;
      guards = default_guards;
    }

  let analyze nest = Analysis.analyze nest

  let allocation ?(config = default_config) ?trace ?prepared ?sim_scratch
      algorithm analysis =
    Allocator.run ~latency:config.sim.Srfa_sched.Simulator.latency ?trace
      ?cut_work_limit:config.guards.cut_work_limit ?prepared
      ~sim_config:config.sim ?sim_scratch algorithm analysis
      ~budget:config.budget

  (* The caller's sink (CLI --trace, bench) tees with an in-memory collector
     so the report can summarise the decision stream either way. *)
  let tee_collector trace =
    let collect, events = Trace.collector () in
    let sink =
      if Trace.enabled trace then
        Trace.make (fun e ->
            Trace.emit trace (fun () -> e);
            Trace.emit collect (fun () -> e))
      else collect
    in
    (sink, events)

  let evaluate_analysis ?(trace = Trace.null) ?prepared ?sim_scratch config
      algorithm analysis =
    let sink, events = tee_collector trace in
    let alloc =
      allocation ~config ~trace:sink ?prepared ?sim_scratch algorithm analysis
    in
    (* Summarise the allocation decisions only (fixed before the simulator
       appends its own guard events to the same stream). *)
    let trace_summary = Trace.summary (events ()) in
    Srfa_estimate.Report.build ~sim_config:config.sim
      ~clock_params:config.clock_params ~trace:sink ~trace_summary ?sim_scratch
      ~version:(Allocator.version_label algorithm)
      alloc

  (* ---- prepared kernels ---------------------------------------------- *)

  (* Every budget-independent product of one parsed kernel, bundled so a
     caller (the sweep, the serve tier-1 cache) pays for analysis, CPA
     scratch and the graph build exactly once per kernel. *)
  type prepared = {
    nest : Srfa_ir.Nest.t;
    analysis : Analysis.t;
    cpa : Cpa_ra.prepared;
    dfg : Srfa_dfg.Graph.t;
    minimum : int;
  }

  let prepare nest =
    let analysis = analyze nest in
    let cpa = Cpa_ra.prepare analysis in
    {
      nest;
      analysis;
      cpa;
      dfg = Cpa_ra.dfg cpa;
      minimum = Ordering.feasibility_minimum analysis;
    }

  let scratch ~config prepared =
    Srfa_sched.Simulator.scratch ~config:config.sim ~dfg:prepared.dfg
      prepared.analysis

  let evaluate_prepared ?trace ?sim_scratch config algorithm prepared =
    evaluate_analysis ?trace ~prepared:prepared.cpa ?sim_scratch config
      algorithm prepared.analysis

  (* ---- checked pipeline ---------------------------------------------- *)

  (* Guard trips announce themselves on the trace; translating the collected
     events into warning diagnostics here keeps the guard sites free of any
     Diag dependency. *)
  let warnings_of_events events =
    let field name (e : Trace.event) =
      match List.assoc_opt name e.Trace.fields with
      | Some (Trace.Int v) -> string_of_int v
      | Some (Trace.String s) -> s
      | Some (Trace.Bool b) -> string_of_bool b
      | Some (Trace.Float f) -> string_of_float f
      | Some (Trace.List _) | None -> "?"
    in
    List.filter_map
      (fun (e : Trace.event) ->
        match e.Trace.name with
        | "fallback.pr_ra" ->
          Some
            (Diag.warning ~code:"W-GUARD-CUT"
               "cut work limit exceeded; CPA-RA fell back to PR-RA"
               ~context:
                 [
                   ("work_limit", field "work_limit" e);
                   ("bfs_phases", field "bfs_phases" e);
                   ("augmenting_paths", field "augmenting_paths" e);
                 ])
        | "guard.mask" ->
          Some
            (Diag.warning ~code:"W-GUARD-MASK"
               "group count exceeds the bitmask memo cap; simulator degraded \
                to the string-keyed memo"
               ~context:
                 [ ("groups", field "groups" e); ("cap", field "cap" e) ])
        | _ -> None)
      events

  (* Second-opinion schedule check: re-time the steady-state body with the
     cycle-stepped event model. A divergence is not an error — the report
     keeps the (agreeing-by-construction) Cycle_model numbers — but it is
     worth a warning and a trace event. *)
  let event_model_warning ~sink ~guards ~sim_config ~dfg alloc =
    let ram_map = Srfa_sched.Simulator.ram_map_for sim_config alloc in
    let residual = Allocation.residual_ram_groups alloc in
    let charged (g : Group.t) = List.mem g.Group.id residual in
    match
      Srfa_sched.Event_model.makespan ~cap:guards.event_model_cap ~dfg
        ~latency:sim_config.Srfa_sched.Simulator.latency ~ram_map ~charged ()
    with
    | _ -> None
    | exception Srfa_sched.Event_model.Diverged { cycles; cap } ->
      Trace.emit sink (fun () ->
          Trace.event "fallback.cycle_model"
            [
              ("reason", Trace.String "event model diverged");
              ("cycles", Trace.Int cycles);
              ("cap", Trace.Int cap);
            ]);
      Some
        (Diag.warning ~code:"W-GUARD-EVENT"
           "event model failed to converge; report keeps the coarse \
            Cycle_model timing"
           ~context:
             [ ("cycles", string_of_int cycles); ("cap", string_of_int cap) ])

  (* The body shared by the nest-at-a-time entry point and the
     prepared-kernel one: allocate, report, second-opinion the schedule,
     translate guard events into warnings. Never raises. *)
  let checked_prepared ?(trace = Trace.null) ?sim_scratch config algorithm
      prepared =
    let sink, events = tee_collector trace in
    match
      let sim_scratch =
        match sim_scratch with
        | Some s -> s
        | None ->
          Srfa_sched.Simulator.scratch ~config:config.sim ~dfg:prepared.dfg
            prepared.analysis
      in
      let alloc =
        allocation ~config ~trace:sink ~prepared:prepared.cpa ~sim_scratch
          algorithm prepared.analysis
      in
      let trace_summary = Trace.summary (events ()) in
      let report =
        Srfa_estimate.Report.build ~sim_config:config.sim
          ~clock_params:config.clock_params ~trace:sink ~trace_summary
          ~sim_scratch
          ~version:(Allocator.version_label algorithm)
          alloc
      in
      let event_warning =
        event_model_warning ~sink ~guards:config.guards ~sim_config:config.sim
          ~dfg:prepared.dfg alloc
      in
      (report, event_warning)
    with
    | report, event_warning ->
      let warnings =
        warnings_of_events (events ()) @ Option.to_list event_warning
      in
      Ok (report, warnings)
    | exception exn -> Result.Error [ Diag.of_exn exn ]

  let checked ?(config = default_config) ?(algorithm = Allocator.Cpa_ra)
      ?trace nest =
    match prepare nest with
    | prepared -> checked_prepared ?trace config algorithm prepared
    | exception exn -> Result.Error [ Diag.of_exn exn ]

  (* Budget monotonicity for the certified portfolio: certification alone
     makes a point never worse than the greedy baselines at its own budget,
     but says nothing across budgets — a sweep could still show more
     registers buying more cycles. Any allocation feasible at a lower
     budget stays feasible at a higher one (its total only has to fit), so
     the sweep carries the best certified allocation forward and adopts it
     whenever the fresh point loses to it, announcing the takeover as a
     ["certify.monotonic"] trace event. *)
  let portfolio_point ?(trace = Trace.null) ~prepared ?sim_scratch ~carry
      config kernel analysis =
    let sink, events = tee_collector trace in
    let outcome =
      Allocator.run_portfolio
        ~latency:config.sim.Srfa_sched.Simulator.latency ~trace:sink
        ?cut_work_limit:config.guards.cut_work_limit ~prepared
        ~sim_config:config.sim ?sim_scratch analysis ~budget:config.budget
    in
    let alloc = outcome.Certify.allocation in
    let trace_summary = Trace.summary (events ()) in
    let build alloc =
      Srfa_estimate.Report.build ~sim_config:config.sim
        ~clock_params:config.clock_params ~trace:sink ~trace_summary
        ?sim_scratch
        ~version:(Allocator.version_label Allocator.Portfolio)
        alloc
    in
    (* Reuse the certification's final simulation when the slow path ran;
       only the dominance fast path needs a fresh one for the report. *)
    let report =
      match outcome.Certify.sim with
      | Some sim ->
        Srfa_estimate.Report.of_result ~clock_params:config.clock_params
          ~trace_summary ~sim_config:config.sim
          ~version:(Allocator.version_label Allocator.Portfolio)
          alloc sim
      | None -> build alloc
    in
    let report, final_alloc =
      match !carry with
      | Some (b0, entries0, cycles0)
        when b0 <= config.budget && cycles0 < report.Srfa_estimate.Report.cycles
        ->
        Trace.emit sink (fun () ->
            Trace.event "certify.monotonic"
              [
                ("kernel", Trace.String kernel);
                ("budget", Trace.Int config.budget);
                ("carried_budget", Trace.Int b0);
                ("carried_cycles", Trace.Int cycles0);
                ("fresh_cycles", Trace.Int report.Srfa_estimate.Report.cycles);
              ]);
        let adopted =
          Allocation.make ~analysis ~budget:config.budget
            ~algorithm:Certify.algorithm_name entries0
        in
        (build adopted, adopted)
      | _ -> (report, alloc)
    in
    let final_cycles = report.Srfa_estimate.Report.cycles in
    (match !carry with
    | Some (_, _, cycles0) when cycles0 <= final_cycles -> ()
    | _ ->
      let entries =
        Array.init (Analysis.num_groups analysis)
          (Allocation.entry final_alloc)
      in
      carry := Some (config.budget, entries, final_cycles));
    report

  type sweep_point = {
    kernel : string;
    algorithm : Allocator.algorithm;
    budget : int;
    report : Srfa_estimate.Report.t;
  }

  let default_budgets = [ 8; 16; 32; 64; 128 ]

  (* One kernel's full budget ladder. This stays sequential even under a
     pool: the portfolio carry-forward (budget monotonicity) threads state
     from each budget to the next, so the ladder is the unit of work and
     kernels are the parallel axis. *)
  let sweep_kernel ~config ~algorithms ~budgets ?trace (kernel, nest) =
    let prepared = prepare nest in
    let analysis = prepared.analysis in
    (* One simulator scratch per kernel, created inside the task so each
       pool domain owns its own (the scratch is not thread-safe). *)
    let sim_scratch = scratch ~config prepared in
    let carry = ref None in
    List.concat_map
      (fun budget ->
        if budget < prepared.minimum then []
        else
          List.map
            (fun algorithm ->
              let report =
                match algorithm with
                | Allocator.Portfolio ->
                  portfolio_point ?trace ~prepared:prepared.cpa ~sim_scratch
                    ~carry { config with budget } kernel analysis
                | _ ->
                  evaluate_analysis ?trace ~prepared:prepared.cpa ~sim_scratch
                    { config with budget } algorithm analysis
              in
              { kernel; algorithm; budget; report })
            algorithms)
      budgets

  (* ---- design-space exploration (DESIGN.md §17) ---------------------- *)

  (* The joint (permutation x tile x budget x algorithm) explorer: every
     kernel becomes a design space, and the output is the
     (cycles, registers, slices, clock) Pareto frontier. Three layers
     keep the product tractable:

     1. dominance cuts: a point's coordinates are bounded below before
        its allocation exists (feasibility register floor, port-free
        charged-path cycle bound over the groups the budget forces to
        stay in RAM, area/clock term floors); a point whose bound box is
        already covered by the online frontier is skipped. Lossless —
        see DESIGN.md §17 for the argument, test_explore for the proof
        by differential testing.
     2. memoisation: one [prepared] (analysis + CPA scratch + DFG) and
        one simulator scratch per distinct variant (variants deduped by
        a canonical-source digest), and within a variant an
        entries-keyed simulation memo — two budgets that produce the
        same allocation (ladders saturate) share one simulation.
     3. pool fan-out: variants shard across domains with the
        byte-identical parallel-vs-serial contract: per-variant
        [Trace.buffered] sinks spliced in variant order, and a frontier
        that is a deterministic function of the evaluated set no matter
        which points the (schedule-dependent) cuts removed. *)

  type order_spec =
    | Identity_order
    | All_orders
    | Orders of int list list

  type space = {
    orders : order_spec;
    tile_factors : int list;
    space_budgets : int list;
    space_algorithms : Allocator.algorithm list;
    certify : bool;  (** evaluate points through the certified portfolio *)
    prune : bool;  (** dominance cuts; [false] = exhaustive (the differential arm) *)
    naive : bool;  (** re-derive analysis/DFG/simulation per point (bench baseline) *)
  }

  let default_space =
    {
      orders = All_orders;
      tile_factors = [];
      space_budgets = default_budgets;
      space_algorithms = [ Allocator.Cpa_ra ];
      certify = false;
      prune = true;
      naive = false;
    }

  type coords = {
    cycles : int;
    registers : int;
    slices : int;
    clock_ns : float;
  }

  type cert = { dominates : bool; repaired : bool; adopted : string option }

  type explore_point = {
    variant : int;  (** index in deterministic enumeration order *)
    label : string;
    loop_vars : string list;
    tiling : (int * int) option;  (** strip-mine (level, factor), if any *)
    order : int list;
    point_budget : int;
    point_algorithm : string;  (** allocator name, or ["floor"] *)
    floor : bool;  (** the all-RAM baseline at the feasibility minimum *)
    coords : coords;
    point_report : Srfa_estimate.Report.t;
    point_cert : cert option;
  }

  type explore_stats = {
    variants_enumerated : int;
    variants_unique : int;
    variants_pruned : int;
    points_pruned : int;
    points_evaluated : int;
    sim_memo_hits : int;
    duplicate_variants : int;
    orders_skipped : int;
    budgets_skipped : int;
  }

  type frontier = {
    frontier_kernel : string;
    points : explore_point list;  (** the Pareto frontier, sorted *)
    frontier_stats : explore_stats;
    frontier_warnings : Srfa_util.Diag.t list;
  }

  (* internal: one enumerated variant *)
  type variant = {
    v_idx : int;
    v_tiling : (int * int) option;
    v_order : int list;
    v_nest : Srfa_ir.Nest.t;
    v_label : string;
    v_loop_vars : string list;
  }

  let coords_of_report (r : Srfa_estimate.Report.t) =
    {
      cycles = r.Srfa_estimate.Report.cycles;
      registers = r.Srfa_estimate.Report.total_registers;
      slices = r.Srfa_estimate.Report.slices;
      clock_ns = r.Srfa_estimate.Report.clock_ns;
    }

  let coords_leq a b =
    a.cycles <= b.cycles && a.registers <= b.registers && a.slices <= b.slices
    && a.clock_ns <= b.clock_ns

  let coords_lt_somewhere a b =
    a.cycles < b.cycles || a.registers < b.registers || a.slices < b.slices
    || a.clock_ns < b.clock_ns

  let coords_dominates q p = coords_leq q p && coords_lt_somewhere q p

  (* The online frontier shared by every domain: coordinates plus the
     (variant, serial) enumeration key of the point that produced them.
     Strictly dominated entries are dropped and exact-coordinate ties
     keep the smallest key — both preserve pruning power (the survivor
     prunes at least everything its victim could). *)
  type online = {
    mutable entries : (coords * (int * int)) list;
    lock : Mutex.t;
  }

  let online_create () = { entries = []; lock = Mutex.create () }

  let online_insert online c key =
    Mutex.lock online.lock;
    let covered =
      List.exists
        (fun (q, qk) ->
          coords_dominates q c || (q = c && compare qk key <= 0))
        online.entries
    in
    if not covered then
      online.entries <-
        (c, key)
        :: List.filter
             (fun (q, qk) ->
               not (coords_dominates c q || (q = c && compare key qk < 0)))
             online.entries;
    Mutex.unlock online.lock

  (* [p] (with enumeration key [key]) can be cut when a frontier point
     [q] covers its whole lower-bound box: either strictly below the
     bound somewhere (then q strictly beats anything p can produce), or
     exactly equal to it with a smaller key (then p can at best tie, and
     the coordinate-duplicate collapse would discard it for [q] anyway —
     the key comparison keeps the surviving representative the same
     whether or not the cut fired, which is what makes jobs=1 and jobs=N
     byte-identical). *)
  let online_prunes online lb key =
    Mutex.lock online.lock;
    let cut =
      List.exists
        (fun (q, qk) ->
          coords_leq q lb
          && (coords_lt_somewhere q lb || compare qk key < 0))
        online.entries
    in
    Mutex.unlock online.lock;
    cut

  let identity_order d = List.init d Fun.id

  let variant_label ~base_vars tiling loop_vars =
    let tile_part =
      match tiling with
      | None -> "untiled"
      | Some (level, factor) ->
        let var =
          match List.nth_opt base_vars level with
          | Some v -> v
          | None -> string_of_int level
        in
        Printf.sprintf "tile %s/%d" var factor
    in
    Printf.sprintf "%s | %s" tile_part (String.concat " " loop_vars)

  (* Deterministic serial enumeration: tilings level-major, orders as
     Permute yields them, duplicates (by canonical-source digest)
     dropped with a count. *)
  let enumerate_variants ~space nest =
    let base_vars = Srfa_ir.Nest.loop_vars nest in
    let orders_skipped = ref 0 in
    let tilings =
      None
      :: List.map Option.some
           (Srfa_ir.Tile.steps nest ~factors:space.tile_factors)
    in
    let raw =
      List.concat_map
        (fun tiling ->
          let tnest =
            match tiling with
            | None -> nest
            | Some (level, factor) -> Srfa_ir.Tile.tile nest ~level ~factor
          in
          let d = Srfa_ir.Nest.depth tnest in
          let id = identity_order d in
          let orders =
            match space.orders with
            | Identity_order -> [ id ]
            | All_orders ->
              let orders, skipped = Srfa_ir.Permute.legal_orders tnest in
              orders_skipped := !orders_skipped + skipped;
              orders
            | Orders os ->
              let legal = Srfa_ir.Permute.fully_permutable tnest in
              let valid o =
                List.sort Int.compare o = id && (legal || o = id)
              in
              let keep, dropped = List.partition valid os in
              orders_skipped := !orders_skipped + List.length dropped;
              id :: List.filter (fun o -> o <> id) keep
          in
          List.map
            (fun order ->
              let vnest =
                if order = id then tnest
                else Srfa_ir.Permute.interchange tnest ~order
              in
              (tiling, order, vnest))
            orders)
        tilings
    in
    let seen = Hashtbl.create 64 in
    let dups = ref 0 in
    let uniq =
      List.filter
        (fun (_, _, vnest) ->
          let key =
            Digest.string (Format.asprintf "%a" Srfa_ir.Nest.pp vnest)
          in
          if Hashtbl.mem seen key then begin
            incr dups;
            false
          end
          else begin
            Hashtbl.add seen key ();
            true
          end)
        raw
    in
    let variants =
      List.mapi
        (fun i (tiling, order, vnest) ->
          let loop_vars = Srfa_ir.Nest.loop_vars vnest in
          {
            v_idx = i;
            v_tiling = tiling;
            v_order = order;
            v_nest = vnest;
            v_label = variant_label ~base_vars tiling loop_vars;
            v_loop_vars = loop_vars;
          })
        uniq
    in
    (variants, List.length raw, !dups, !orders_skipped)

  let entries_key analysis alloc =
    let b = Buffer.create 64 in
    for gid = 0 to Analysis.num_groups analysis - 1 do
      let e = Allocation.entry alloc gid in
      Buffer.add_string b (string_of_int e.Allocation.beta);
      Buffer.add_char b (if e.Allocation.pinned then 'p' else 'u');
      Buffer.add_char b ';'
    done;
    Buffer.contents b

  type variant_result = {
    r_points : explore_point list;
    r_variants_pruned : int;
    r_points_pruned : int;
    r_points_evaluated : int;
    r_sim_memo_hits : int;
    r_budgets_skipped : int;
  }

  let evaluate_variant ~config ~space ~online ~trace v =
    let module Sim = Srfa_sched.Simulator in
    let nest = v.v_nest in
    let prepared = prepare nest in
    let analysis = prepared.analysis in
    let n = prepared.minimum in
    let sim_scratch = scratch ~config prepared in
    let iterations = Srfa_ir.Nest.iterations nest in
    let depth = Srfa_ir.Nest.depth nest in
    let ngroups = Analysis.num_groups analysis in
    let nus =
      Array.init ngroups (fun g -> (Analysis.info analysis g).Analysis.nu)
    in
    let latency = config.sim.Sim.latency in
    let cm = Srfa_sched.Cycle_model.prepare ~dfg:prepared.dfg ~latency in
    (* The all-RAM baseline: one unpinned feasibility register per group
       (the engine's starting state), nothing resident. Evaluated
       unconditionally — it anchors the frontier's register/area/clock
       floor and is what the dominance cuts prune against. *)
    let floor_entries =
      Array.make ngroups { Allocation.beta = 1; Allocation.pinned = false }
    in
    let floor_alloc =
      Allocation.make ~analysis ~budget:n ~algorithm:"floor" floor_entries
    in
    (* Pipelined cycle floor: the loop-carried recurrence, which is
       RAM-map independent (ports only raise the initiation interval). *)
    let recurrence =
      lazy
        (let ram_map = Sim.ram_map_for config.sim floor_alloc in
         let m =
           Srfa_sched.Cycle_model.create ~prepared:cm ~dfg:prepared.dfg
             ~latency ~ram_map ()
         in
         Srfa_sched.Cycle_model.initiation_interval m ~charged:(fun _ -> false))
    in
    (* Groups every allocation at budget [b] leaves partially replaced:
       the other [n-1] groups hold at least their feasibility register,
       so a window larger than [b - (n-1)] cannot be funded in full. *)
    let forced b (g : Group.t) = nus.(g.Group.id) > b - (n - 1) in
    let cycles_lb b =
      match config.sim.Sim.execution with
      | Sim.Serial ->
        iterations
        * Srfa_sched.Cycle_model.charged_path_bound cm ~charged:(forced b)
      | Sim.Pipelined -> iterations * Lazy.force recurrence
    in
    let slices_lb =
      Srfa_estimate.Area.lower_bound ~device:config.sim.Sim.device analysis
    in
    let clock_lb =
      Srfa_estimate.Clock.lower_bound ~params:config.clock_params
        ~min_registers:n ~depth ()
    in
    let lower_bound b =
      { cycles = cycles_lb b; registers = n; slices = slices_lb;
        clock_ns = clock_lb }
    in
    let sim_memo : (string, Sim.result) Hashtbl.t = Hashtbl.create 8 in
    let memo_hits = ref 0
    and points_evaluated = ref 0
    and points_pruned = ref 0
    and variants_pruned = ref 0
    and budgets_skipped = ref 0 in
    let points = ref [] in
    let clock_params = config.clock_params in
    let run_sim ~sink alloc =
      let key = entries_key analysis alloc in
      match Hashtbl.find_opt sim_memo key with
      | Some sim ->
        incr memo_hits;
        Trace.emit sink (fun () ->
            Trace.event "explore.memo"
              [
                ("variant", Trace.String v.v_label);
                ("budget", Trace.Int alloc.Allocation.budget);
                ("algorithm", Trace.String alloc.Allocation.algorithm);
              ]);
        sim
      | None ->
        let sim =
          if space.naive then Sim.run ~trace:sink ~config:config.sim alloc
          else
            Sim.run ~trace:sink ~config:config.sim ~scratch:sim_scratch alloc
        in
        if not space.naive then Hashtbl.add sim_memo key sim;
        sim
    in
    let add_point ~serial ~budget ~algorithm ~floor ~cert ~report =
      let c = coords_of_report report in
      if space.prune then online_insert online c (v.v_idx, serial);
      incr points_evaluated;
      points :=
        {
          variant = v.v_idx;
          label = v.v_label;
          loop_vars = v.v_loop_vars;
          tiling = v.v_tiling;
          order = v.v_order;
          point_budget = budget;
          point_algorithm = algorithm;
          floor;
          coords = c;
          point_report = report;
          point_cert = cert;
        }
        :: !points
    in
    (* floor point *)
    let sink = trace in
    let floor_analysis =
      if space.naive then analyze nest else analysis
    in
    let floor_alloc =
      if space.naive then
        Allocation.make ~analysis:floor_analysis ~budget:n ~algorithm:"floor"
          (Array.make ngroups
             { Allocation.beta = 1; Allocation.pinned = false })
      else floor_alloc
    in
    let floor_sim = run_sim ~sink floor_alloc in
    let floor_report =
      Srfa_estimate.Report.of_result ~clock_params ~sim_config:config.sim
        ~version:"floor" floor_alloc floor_sim
    in
    add_point ~serial:0 ~budget:n ~algorithm:"floor" ~floor:true ~cert:None
      ~report:floor_report;
    (* budget x algorithm ladder *)
    let budgets =
      List.filter
        (fun b ->
          if b >= n then true
          else begin
            incr budgets_skipped;
            false
          end)
        space.space_budgets
    in
    let algorithms = space.space_algorithms in
    let ladder_size = List.length budgets * List.length algorithms in
    let emit_prune ~scope ~points_cut ~budget ~algorithm =
      Trace.emit sink (fun () ->
          Trace.event "explore.prune"
            ([
               ("scope", Trace.String scope);
               ("variant", Trace.String v.v_label);
               ("points", Trace.Int points_cut);
             ]
            @ (match budget with
              | Some b -> [ ("budget", Trace.Int b) ]
              | None -> [])
            @
            match algorithm with
            | Some a -> [ ("algorithm", Trace.String a) ]
            | None -> []))
    in
    let bmax = List.fold_left max n budgets in
    let variant_cut =
      space.prune && ladder_size > 0
      && online_prunes online (lower_bound bmax) (v.v_idx, 1)
    in
    if variant_cut then begin
      variants_pruned := 1;
      points_pruned := ladder_size;
      emit_prune ~scope:"variant" ~points_cut:ladder_size ~budget:None
        ~algorithm:None
    end
    else begin
      let serial = ref 0 in
      List.iter
        (fun b ->
          List.iter
            (fun alg ->
              incr serial;
              let key = (v.v_idx, !serial) in
              if space.prune && online_prunes online (lower_bound b) key
              then begin
                incr points_pruned;
                emit_prune ~scope:"point" ~points_cut:1 ~budget:(Some b)
                  ~algorithm:(Some (Allocator.name alg))
              end
              else begin
                let cfg = { config with budget = b } in
                let point_analysis =
                  if space.naive then analyze nest else analysis
                in
                if space.certify || alg = Allocator.Portfolio then begin
                  let outcome =
                    if space.naive then
                      Allocator.run_portfolio ~latency ~trace:sink
                        ?cut_work_limit:cfg.guards.cut_work_limit
                        ~sim_config:cfg.sim point_analysis ~budget:b
                    else
                      Allocator.run_portfolio ~latency ~trace:sink
                        ?cut_work_limit:cfg.guards.cut_work_limit
                        ~prepared:prepared.cpa ~sim_config:cfg.sim
                        ~sim_scratch point_analysis ~budget:b
                  in
                  let alloc = outcome.Certify.allocation in
                  let version = Allocator.version_label Allocator.Portfolio in
                  let report =
                    match outcome.Certify.sim with
                    | Some sim ->
                      Srfa_estimate.Report.of_result ~clock_params
                        ~sim_config:cfg.sim ~version alloc sim
                    | None ->
                      let sim = run_sim ~sink alloc in
                      Srfa_estimate.Report.of_result ~clock_params
                        ~sim_config:cfg.sim ~version alloc sim
                  in
                  let cert =
                    Some
                      {
                        dominates =
                          (match outcome.Certify.comparison with
                          | Certify.Dominates -> true
                          | Certify.Simulated _ -> false);
                        repaired = outcome.Certify.repaired;
                        adopted = outcome.Certify.adopted;
                      }
                  in
                  add_point ~serial:!serial ~budget:b
                    ~algorithm:(Allocator.name Allocator.Portfolio)
                    ~floor:false ~cert ~report
                end
                else begin
                  let alloc =
                    if space.naive then
                      Allocator.run ~latency ~trace:sink
                        ?cut_work_limit:cfg.guards.cut_work_limit
                        ~sim_config:cfg.sim alg point_analysis ~budget:b
                    else
                      allocation ~config:cfg ~trace:sink
                        ~prepared:prepared.cpa ~sim_scratch alg analysis
                  in
                  let sim = run_sim ~sink alloc in
                  let report =
                    Srfa_estimate.Report.of_result ~clock_params
                      ~sim_config:cfg.sim
                      ~version:(Allocator.version_label alg)
                      alloc sim
                  in
                  add_point ~serial:!serial ~budget:b
                    ~algorithm:(Allocator.name alg) ~floor:false ~cert:None
                    ~report
                end
              end)
            algorithms)
        budgets
    end;
    {
      r_points = List.rev !points;
      r_variants_pruned = !variants_pruned;
      r_points_pruned = !points_pruned;
      r_points_evaluated = !points_evaluated;
      r_sim_memo_hits = !memo_hits;
      r_budgets_skipped = !budgets_skipped;
    }

  (* Final frontier from the evaluated set: drop dominated points, then
     collapse exact-coordinate ties onto the smallest enumeration key.
     Both are deterministic functions of the full design space even
     though the evaluated set is not (cuts depend on domain scheduling):
     a cut point is either strictly dominated by an online entry — and
     so by transitivity by some final frontier point — or it ties an
     entry with a smaller key, which the collapse would have kept
     instead anyway. *)
  let assemble_frontier results =
    let all = List.concat_map (fun r -> r.r_points) results in
    let survivors =
      List.filter
        (fun p ->
          not
            (List.exists (fun q -> coords_dominates q.coords p.coords) all))
        all
    in
    let collapsed =
      (* points arrive in (variant, serial) order already *)
      let seen = Hashtbl.create 16 in
      List.filter
        (fun p ->
          let k =
            (p.coords.cycles, p.coords.registers, p.coords.slices,
             Printf.sprintf "%.6f" p.coords.clock_ns)
          in
          if Hashtbl.mem seen k then false
          else begin
            Hashtbl.add seen k ();
            true
          end)
        survivors
    in
    List.sort
      (fun a b ->
        let c = Int.compare a.coords.cycles b.coords.cycles in
        if c <> 0 then c
        else
          let c = Int.compare a.coords.registers b.coords.registers in
          if c <> 0 then c
          else
            let c = Int.compare a.coords.slices b.coords.slices in
            if c <> 0 then c
            else
              let c = Float.compare a.coords.clock_ns b.coords.clock_ns in
              if c <> 0 then c else Int.compare a.variant b.variant)
      collapsed

  let explore ?(trace = Trace.null) ?pool ?(space = default_space) config
      nest =
    if space.space_algorithms = [] then
      invalid_arg "Flow.Core.explore: empty algorithm list";
    let variants, enumerated, dups, orders_skipped =
      enumerate_variants ~space nest
    in
    let warnings =
      if orders_skipped > 0 then begin
        Trace.emit trace (fun () ->
            Trace.event "guard.explore"
              [
                ("kernel", Trace.String nest.Srfa_ir.Nest.name);
                ("skipped_orders", Trace.Int orders_skipped);
              ]);
        [
          Diag.warning ~code:"W-GUARD-EXPLORE"
            "some loop orders are illegal for this nest and were skipped \
             (interchange requires full permutability)"
            ~context:
              [
                ("kernel", nest.Srfa_ir.Nest.name);
                ("skipped_orders", string_of_int orders_skipped);
              ];
        ]
      end
      else []
    in
    let online = online_create () in
    let traced = Trace.enabled trace in
    let run_variant v =
      if traced then begin
        let sink, splice = Trace.buffered () in
        (evaluate_variant ~config ~space ~online ~trace:sink v, splice)
      end
      else
        (evaluate_variant ~config ~space ~online ~trace:Trace.null v,
         fun _ -> ())
    in
    let varr = Array.of_list variants in
    let outputs =
      match pool with
      | Some p when Srfa_util.Pool.jobs p > 1 && Array.length varr > 1 ->
        Srfa_util.Pool.map p run_variant varr
      | _ -> Array.map run_variant varr
    in
    if traced then Array.iter (fun (_, splice) -> splice trace) outputs;
    let results = List.map fst (Array.to_list outputs) in
    let sum f = List.fold_left (fun acc r -> acc + f r) 0 results in
    let stats =
      {
        variants_enumerated = enumerated;
        variants_unique = List.length variants;
        variants_pruned = sum (fun r -> r.r_variants_pruned);
        points_pruned = sum (fun r -> r.r_points_pruned);
        points_evaluated = sum (fun r -> r.r_points_evaluated);
        sim_memo_hits = sum (fun r -> r.r_sim_memo_hits);
        duplicate_variants = dups;
        orders_skipped;
        budgets_skipped = sum (fun r -> r.r_budgets_skipped);
      }
    in
    Trace.emit trace (fun () ->
        Trace.event "explore.done"
          [
            ("kernel", Trace.String nest.Srfa_ir.Nest.name);
            ("variants", Trace.Int stats.variants_unique);
            ("variants_pruned", Trace.Int stats.variants_pruned);
            ("points_pruned", Trace.Int stats.points_pruned);
            ("points_evaluated", Trace.Int stats.points_evaluated);
            ("sim_memo_hits", Trace.Int stats.sim_memo_hits);
          ]);
    {
      frontier_kernel = nest.Srfa_ir.Nest.name;
      points = assemble_frontier results;
      frontier_stats = stats;
      frontier_warnings = warnings;
    }

  (* ---- frontier rendering -------------------------------------------- *)

  (* One renderer shared by the CLI, the serve daemon and the tests so
     "byte-identical frontier" means one thing. Deterministic: fixed
     field order, fixed float format, no stats (cut/memo counts depend
     on domain scheduling and live in [frontier_stats] only). *)

  let json_escape s =
    let b = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b

  let point_json p =
    let b = Buffer.create 256 in
    Buffer.add_string b
      (Printf.sprintf "{\"label\": \"%s\"" (json_escape p.label));
    (match p.tiling with
    | Some (level, factor) ->
      Buffer.add_string b
        (Printf.sprintf ", \"tile_level\": %d, \"tile_factor\": %d" level
           factor)
    | None -> ());
    Buffer.add_string b
      (Printf.sprintf ", \"order\": [%s], \"loop_vars\": [%s]"
         (String.concat ", " (List.map string_of_int p.order))
         (String.concat ", "
            (List.map
               (fun v -> Printf.sprintf "\"%s\"" (json_escape v))
               p.loop_vars)));
    Buffer.add_string b
      (Printf.sprintf
         ", \"budget\": %d, \"algorithm\": \"%s\", \"floor\": %b"
         p.point_budget
         (json_escape p.point_algorithm)
         p.floor);
    Buffer.add_string b
      (Printf.sprintf
         ", \"cycles\": %d, \"registers\": %d, \"slices\": %d, \
          \"clock_ns\": %.3f, \"exec_time_us\": %.3f"
         p.coords.cycles p.coords.registers p.coords.slices p.coords.clock_ns
         p.point_report.Srfa_estimate.Report.exec_time_us);
    (match p.point_cert with
    | Some c ->
      Buffer.add_string b
        (Printf.sprintf
           ", \"certified\": {\"dominates\": %b, \"repaired\": %b, \
            \"adopted\": %s}"
           c.dominates c.repaired
           (match c.adopted with
           | Some a -> Printf.sprintf "\"%s\"" (json_escape a)
           | None -> "null"))
    | None -> ());
    Buffer.add_char b '}';
    Buffer.contents b

  let frontier_json ?(compact = false) f =
    let b = Buffer.create 1024 in
    Buffer.add_string b
      (if compact then
         Printf.sprintf "{\"kernel\": \"%s\", \"points\": ["
           (json_escape f.frontier_kernel)
       else
         Printf.sprintf "{\n  \"kernel\": \"%s\",\n  \"points\": [\n"
           (json_escape f.frontier_kernel));
    List.iteri
      (fun i p ->
        if i > 0 then Buffer.add_string b (if compact then ", " else ",\n");
        if not compact then Buffer.add_string b "    ";
        Buffer.add_string b (point_json p))
      f.points;
    Buffer.add_string b (if compact then "]}" else "\n  ]\n}");
    Buffer.contents b

  let frontier_csv f =
    let b = Buffer.create 1024 in
    Buffer.add_string b
      "kernel,label,order,budget,algorithm,floor,cycles,registers,slices,clock_ns,exec_time_us\n";
    List.iter
      (fun p ->
        Buffer.add_string b
          (Printf.sprintf "%s,%s,%s,%d,%s,%b,%d,%d,%d,%.3f,%.3f\n"
             f.frontier_kernel p.label
             (String.concat " " (List.map string_of_int p.order))
             p.point_budget p.point_algorithm p.floor p.coords.cycles
             p.coords.registers p.coords.slices p.coords.clock_ns
             p.point_report.Srfa_estimate.Report.exec_time_us))
      f.points;
    Buffer.contents b

  (* ---- dynamic re-budgeting (DESIGN.md §16) -------------------------- *)

  type rebudget_step = {
    requested : int;
    effective : int;
    clamped : bool;
    freed : int;
    respent : int;
    memoized : bool;
    allocation : Allocation.t;
    report : Srfa_estimate.Report.t;
    warnings : Srfa_util.Diag.t list;
  }

  (* The live allocation plus everything an event needs to be answered
     without a from-scratch rerun: the prepared kernel, the warm
     simulator scratch, and a per-effective-budget memo of steps already
     certified in this stream (a budget ladder that oscillates revisits
     budgets constantly; re-deriving an identical certified allocation
     would be pure waste). Single-owner like every scratch-bearing value
     in this module: one session per domain at a time. *)
  type rebudget_session = {
    rb_prepared : prepared;
    rb_config : config;
    rb_scratch : Srfa_sched.Simulator.scratch;
    mutable rb_current : Allocation.t;
    rb_memo :
      (int, Allocation.t * Srfa_estimate.Report.t * Srfa_util.Diag.t list)
      Hashtbl.t;
  }

  (* The pinned-shrink rule: a request below the feasibility minimum is
     not an error — the budget clamps there (the engine spills every
     entry cheapest-first to fit) and the event is answered under the
     clamp, with the degradation announced as a trace event and a
     W-GUARD-REBUDGET warning. *)
  let rebudget_guard ~sink ~requested ~minimum =
    Trace.emit sink (fun () ->
        Trace.event "guard.rebudget"
          [
            ("requested", Trace.Int requested);
            ("minimum", Trace.Int minimum);
          ]);
    Diag.warning ~code:"W-GUARD-REBUDGET"
      "budget event below the feasibility minimum (one register per \
       reference group); budget clamped at the minimum"
      ~context:
        [
          ("requested", string_of_int requested);
          ("minimum", string_of_int minimum);
        ]

  let rebudget_report ~cfg ~sink ~trace_summary ~sim_scratch outcome =
    let alloc = outcome.Certify.allocation in
    match outcome.Certify.sim with
    | Some sim ->
      Srfa_estimate.Report.of_result ~clock_params:cfg.clock_params
        ~trace_summary ~sim_config:cfg.sim
        ~version:(Allocator.version_label Allocator.Portfolio)
        alloc sim
    | None ->
      Srfa_estimate.Report.build ~sim_config:cfg.sim
        ~clock_params:cfg.clock_params ~trace:sink ~trace_summary ~sim_scratch
        ~version:(Allocator.version_label Allocator.Portfolio)
        alloc

  let rebudget_start ?(trace = Trace.null) ?sim_scratch config prepared
      ~budget =
    let sim_scratch =
      match sim_scratch with Some s -> s | None -> scratch ~config prepared
    in
    let sink, events = tee_collector trace in
    let minimum = prepared.minimum in
    let effective = max budget minimum in
    let clamped = budget < minimum in
    let clamp_warning =
      if clamped then [ rebudget_guard ~sink ~requested:budget ~minimum ]
      else []
    in
    let cfg = { config with budget = effective } in
    let outcome =
      Allocator.run_portfolio ~latency:cfg.sim.Srfa_sched.Simulator.latency
        ~trace:sink ?cut_work_limit:cfg.guards.cut_work_limit
        ~prepared:prepared.cpa ~sim_config:cfg.sim ~sim_scratch
        prepared.analysis ~budget:effective
    in
    let trace_summary = Trace.summary (events ()) in
    let report = rebudget_report ~cfg ~sink ~trace_summary ~sim_scratch outcome in
    let base_warnings = warnings_of_events (events ()) in
    let alloc = outcome.Certify.allocation in
    let session =
      {
        rb_prepared = prepared;
        rb_config = config;
        rb_scratch = sim_scratch;
        rb_current = alloc;
        rb_memo = Hashtbl.create 8;
      }
    in
    Hashtbl.replace session.rb_memo effective (alloc, report, base_warnings);
    ( session,
      {
        requested = budget;
        effective;
        clamped;
        freed = 0;
        respent = 0;
        memoized = false;
        allocation = alloc;
        report;
        warnings = clamp_warning @ base_warnings;
      } )

  let rebudget_step ?(trace = Trace.null) session ~budget =
    let prepared = session.rb_prepared in
    let minimum = prepared.minimum in
    let effective = max budget minimum in
    let clamped = budget < minimum in
    let sink, events = tee_collector trace in
    let clamp_warning =
      if clamped then [ rebudget_guard ~sink ~requested:budget ~minimum ]
      else []
    in
    match Hashtbl.find_opt session.rb_memo effective with
    | Some (alloc, report, base_warnings) ->
      session.rb_current <- alloc;
      {
        requested = budget;
        effective;
        clamped;
        freed = 0;
        respent = 0;
        memoized = true;
        allocation = alloc;
        report;
        warnings = clamp_warning @ base_warnings;
      }
    | None ->
      let cfg = { session.rb_config with budget = effective } in
      let eng = Engine.of_allocation ~trace:sink session.rb_current in
      let moved = Engine.rebudget ~reason:"rebudget event" eng ~budget:effective in
      let headroom = Engine.remaining eng in
      Certify.respend eng;
      let respent = headroom - Engine.remaining eng in
      let candidate =
        Engine.finalize ~pin_all:true eng ~algorithm:Certify.algorithm_name
      in
      (* Re-establish the certified never-worse contract at the new
         budget: the reclaimed/re-spent candidate is certified against
         FR-RA and PR-RA exactly like a from-scratch portfolio point. *)
      let outcome =
        Certify.certify ~trace:sink ~sim_config:cfg.sim
          ~sim_scratch:session.rb_scratch candidate
      in
      let trace_summary = Trace.summary (events ()) in
      let report =
        rebudget_report ~cfg ~sink ~trace_summary
          ~sim_scratch:session.rb_scratch outcome
      in
      let base_warnings = warnings_of_events (events ()) in
      let alloc = outcome.Certify.allocation in
      Hashtbl.replace session.rb_memo effective (alloc, report, base_warnings);
      session.rb_current <- alloc;
      {
        requested = budget;
        effective;
        clamped;
        freed = moved.Engine.freed;
        respent;
        memoized = false;
        allocation = alloc;
        report;
        warnings = clamp_warning @ base_warnings;
      }

  let rebudget_current session = session.rb_current

  let rebudget ?trace ?sim_scratch config prepared ~initial ~events =
    let session, first =
      rebudget_start ?trace ?sim_scratch config prepared ~budget:initial
    in
    first :: List.map (fun b -> rebudget_step ?trace session ~budget:b) events
end

(* ---- IO shell ----------------------------------------------------------

   The historical Flow surface, now thin delegations into {!Core}. The
   subcommands (alloc/sweep/check), the bench and the tests call through
   these unchanged; anything that needs per-request reuse (the serve
   daemon) goes to {!Core} directly. *)

type guards = Core.guards = {
  cut_work_limit : int option;
  event_model_cap : int;
}

let default_guards = Core.default_guards

type config = Core.config = {
  budget : int;
  sim : Srfa_sched.Simulator.config;
  clock_params : Srfa_estimate.Clock.params;
  guards : guards;
}

let default_config = Core.default_config
let analyze = Core.analyze

let allocation ?(config = Core.default_config) ?trace ?prepared ?sim_scratch
    algorithm analysis =
  Core.allocation ~config ?trace ?prepared ?sim_scratch algorithm analysis

let evaluate ?(config = Core.default_config) ?trace algorithm nest =
  Core.evaluate_analysis ?trace config algorithm (Core.analyze nest)

let evaluate_all ?(config = Core.default_config) ?(algorithms = Allocator.all)
    ?trace nest =
  let prepared = Core.prepare nest in
  let sim_scratch = Core.scratch ~config prepared in
  List.map
    (fun alg -> Core.evaluate_prepared ?trace ~sim_scratch config alg prepared)
    algorithms

type sweep_point = Core.sweep_point = {
  kernel : string;
  algorithm : Allocator.algorithm;
  budget : int;
  report : Srfa_estimate.Report.t;
}

let default_budgets = Core.default_budgets

let run_checked ?(config = Core.default_config)
    ?(algorithm = Allocator.Cpa_ra) ?trace nest =
  Core.checked ~config ~algorithm ?trace nest

let sweep ?(config = Core.default_config) ?(algorithms = Allocator.all)
    ?(budgets = Core.default_budgets) ?trace ?pool kernels =
  let sweep_kernel = Core.sweep_kernel ~config ~algorithms ~budgets in
  match pool with
  | Some pool when Srfa_util.Pool.jobs pool > 1 && List.length kernels > 1 ->
    (* Parallel across kernels, deterministic by construction: results
       come back in input order from Pool.map, and each kernel's trace
       goes into a private buffer spliced back in kernel order — the
       same kernel-major stream the sequential walk emits. *)
    let traced = match trace with Some t -> Trace.enabled t | None -> false in
    let outputs =
      Srfa_util.Pool.map pool
        (fun kn ->
          if traced then
            let sink, splice = Trace.buffered () in
            (sweep_kernel ~trace:sink kn, splice)
          else (sweep_kernel kn, fun _ -> ()))
        (Array.of_list kernels)
    in
    (match trace with
    | Some t when Trace.enabled t ->
      Array.iter (fun (_, splice) -> splice t) outputs
    | _ -> ());
    List.concat_map fst (Array.to_list outputs)
  | _ -> List.concat_map (fun kn -> sweep_kernel ?trace kn) kernels
