open Srfa_reuse
module Diag = Srfa_util.Diag
module Trace = Srfa_util.Trace

(* ---- pure core --------------------------------------------------------

   Everything below [module Core] is deterministic value-to-value
   computation: (parsed kernel, device/config, algorithm, budget,
   scratch) -> report. No filesystem, no formatters, no channels, no
   exit codes — trace sinks are injected by the caller and the in-memory
   collector is the only one Core creates itself. The IO shell (the
   top-level [Flow] functions, the CLI, the serve daemon) owns all
   rendering and channel state, which is what lets Core values
   ([prepared], reports) be cached and reused across requests. *)

module Core = struct
  type guards = { cut_work_limit : int option; event_model_cap : int }

  let default_guards =
    { cut_work_limit = Some 200_000; event_model_cap = 100_000 }

  type config = {
    budget : int;
    sim : Srfa_sched.Simulator.config;
    clock_params : Srfa_estimate.Clock.params;
    guards : guards;
  }

  let default_config =
    {
      budget = 64;
      sim = Srfa_sched.Simulator.default_config;
      clock_params = Srfa_estimate.Clock.default_params;
      guards = default_guards;
    }

  let analyze nest = Analysis.analyze nest

  let allocation ?(config = default_config) ?trace ?prepared ?sim_scratch
      algorithm analysis =
    Allocator.run ~latency:config.sim.Srfa_sched.Simulator.latency ?trace
      ?cut_work_limit:config.guards.cut_work_limit ?prepared
      ~sim_config:config.sim ?sim_scratch algorithm analysis
      ~budget:config.budget

  (* The caller's sink (CLI --trace, bench) tees with an in-memory collector
     so the report can summarise the decision stream either way. *)
  let tee_collector trace =
    let collect, events = Trace.collector () in
    let sink =
      if Trace.enabled trace then
        Trace.make (fun e ->
            Trace.emit trace (fun () -> e);
            Trace.emit collect (fun () -> e))
      else collect
    in
    (sink, events)

  let evaluate_analysis ?(trace = Trace.null) ?prepared ?sim_scratch config
      algorithm analysis =
    let sink, events = tee_collector trace in
    let alloc =
      allocation ~config ~trace:sink ?prepared ?sim_scratch algorithm analysis
    in
    (* Summarise the allocation decisions only (fixed before the simulator
       appends its own guard events to the same stream). *)
    let trace_summary = Trace.summary (events ()) in
    Srfa_estimate.Report.build ~sim_config:config.sim
      ~clock_params:config.clock_params ~trace:sink ~trace_summary ?sim_scratch
      ~version:(Allocator.version_label algorithm)
      alloc

  (* ---- prepared kernels ---------------------------------------------- *)

  (* Every budget-independent product of one parsed kernel, bundled so a
     caller (the sweep, the serve tier-1 cache) pays for analysis, CPA
     scratch and the graph build exactly once per kernel. *)
  type prepared = {
    nest : Srfa_ir.Nest.t;
    analysis : Analysis.t;
    cpa : Cpa_ra.prepared;
    dfg : Srfa_dfg.Graph.t;
    minimum : int;
  }

  let prepare nest =
    let analysis = analyze nest in
    let cpa = Cpa_ra.prepare analysis in
    {
      nest;
      analysis;
      cpa;
      dfg = Cpa_ra.dfg cpa;
      minimum = Ordering.feasibility_minimum analysis;
    }

  let scratch ~config prepared =
    Srfa_sched.Simulator.scratch ~config:config.sim ~dfg:prepared.dfg
      prepared.analysis

  let evaluate_prepared ?trace ?sim_scratch config algorithm prepared =
    evaluate_analysis ?trace ~prepared:prepared.cpa ?sim_scratch config
      algorithm prepared.analysis

  (* ---- checked pipeline ---------------------------------------------- *)

  (* Guard trips announce themselves on the trace; translating the collected
     events into warning diagnostics here keeps the guard sites free of any
     Diag dependency. *)
  let warnings_of_events events =
    let field name (e : Trace.event) =
      match List.assoc_opt name e.Trace.fields with
      | Some (Trace.Int v) -> string_of_int v
      | Some (Trace.String s) -> s
      | Some (Trace.Bool b) -> string_of_bool b
      | Some (Trace.Float f) -> string_of_float f
      | Some (Trace.List _) | None -> "?"
    in
    List.filter_map
      (fun (e : Trace.event) ->
        match e.Trace.name with
        | "fallback.pr_ra" ->
          Some
            (Diag.warning ~code:"W-GUARD-CUT"
               "cut work limit exceeded; CPA-RA fell back to PR-RA"
               ~context:
                 [
                   ("work_limit", field "work_limit" e);
                   ("bfs_phases", field "bfs_phases" e);
                   ("augmenting_paths", field "augmenting_paths" e);
                 ])
        | "guard.mask" ->
          Some
            (Diag.warning ~code:"W-GUARD-MASK"
               "group count exceeds the bitmask memo cap; simulator degraded \
                to the string-keyed memo"
               ~context:
                 [ ("groups", field "groups" e); ("cap", field "cap" e) ])
        | _ -> None)
      events

  (* Second-opinion schedule check: re-time the steady-state body with the
     cycle-stepped event model. A divergence is not an error — the report
     keeps the (agreeing-by-construction) Cycle_model numbers — but it is
     worth a warning and a trace event. *)
  let event_model_warning ~sink ~guards ~sim_config ~dfg alloc =
    let ram_map = Srfa_sched.Simulator.ram_map_for sim_config alloc in
    let residual = Allocation.residual_ram_groups alloc in
    let charged (g : Group.t) = List.mem g.Group.id residual in
    match
      Srfa_sched.Event_model.makespan ~cap:guards.event_model_cap ~dfg
        ~latency:sim_config.Srfa_sched.Simulator.latency ~ram_map ~charged ()
    with
    | _ -> None
    | exception Srfa_sched.Event_model.Diverged { cycles; cap } ->
      Trace.emit sink (fun () ->
          Trace.event "fallback.cycle_model"
            [
              ("reason", Trace.String "event model diverged");
              ("cycles", Trace.Int cycles);
              ("cap", Trace.Int cap);
            ]);
      Some
        (Diag.warning ~code:"W-GUARD-EVENT"
           "event model failed to converge; report keeps the coarse \
            Cycle_model timing"
           ~context:
             [ ("cycles", string_of_int cycles); ("cap", string_of_int cap) ])

  (* The body shared by the nest-at-a-time entry point and the
     prepared-kernel one: allocate, report, second-opinion the schedule,
     translate guard events into warnings. Never raises. *)
  let checked_prepared ?(trace = Trace.null) ?sim_scratch config algorithm
      prepared =
    let sink, events = tee_collector trace in
    match
      let sim_scratch =
        match sim_scratch with
        | Some s -> s
        | None ->
          Srfa_sched.Simulator.scratch ~config:config.sim ~dfg:prepared.dfg
            prepared.analysis
      in
      let alloc =
        allocation ~config ~trace:sink ~prepared:prepared.cpa ~sim_scratch
          algorithm prepared.analysis
      in
      let trace_summary = Trace.summary (events ()) in
      let report =
        Srfa_estimate.Report.build ~sim_config:config.sim
          ~clock_params:config.clock_params ~trace:sink ~trace_summary
          ~sim_scratch
          ~version:(Allocator.version_label algorithm)
          alloc
      in
      let event_warning =
        event_model_warning ~sink ~guards:config.guards ~sim_config:config.sim
          ~dfg:prepared.dfg alloc
      in
      (report, event_warning)
    with
    | report, event_warning ->
      let warnings =
        warnings_of_events (events ()) @ Option.to_list event_warning
      in
      Ok (report, warnings)
    | exception exn -> Result.Error [ Diag.of_exn exn ]

  let checked ?(config = default_config) ?(algorithm = Allocator.Cpa_ra)
      ?trace nest =
    match prepare nest with
    | prepared -> checked_prepared ?trace config algorithm prepared
    | exception exn -> Result.Error [ Diag.of_exn exn ]

  (* Budget monotonicity for the certified portfolio: certification alone
     makes a point never worse than the greedy baselines at its own budget,
     but says nothing across budgets — a sweep could still show more
     registers buying more cycles. Any allocation feasible at a lower
     budget stays feasible at a higher one (its total only has to fit), so
     the sweep carries the best certified allocation forward and adopts it
     whenever the fresh point loses to it, announcing the takeover as a
     ["certify.monotonic"] trace event. *)
  let portfolio_point ?(trace = Trace.null) ~prepared ?sim_scratch ~carry
      config kernel analysis =
    let sink, events = tee_collector trace in
    let outcome =
      Allocator.run_portfolio
        ~latency:config.sim.Srfa_sched.Simulator.latency ~trace:sink
        ?cut_work_limit:config.guards.cut_work_limit ~prepared
        ~sim_config:config.sim ?sim_scratch analysis ~budget:config.budget
    in
    let alloc = outcome.Certify.allocation in
    let trace_summary = Trace.summary (events ()) in
    let build alloc =
      Srfa_estimate.Report.build ~sim_config:config.sim
        ~clock_params:config.clock_params ~trace:sink ~trace_summary
        ?sim_scratch
        ~version:(Allocator.version_label Allocator.Portfolio)
        alloc
    in
    (* Reuse the certification's final simulation when the slow path ran;
       only the dominance fast path needs a fresh one for the report. *)
    let report =
      match outcome.Certify.sim with
      | Some sim ->
        Srfa_estimate.Report.of_result ~clock_params:config.clock_params
          ~trace_summary ~sim_config:config.sim
          ~version:(Allocator.version_label Allocator.Portfolio)
          alloc sim
      | None -> build alloc
    in
    let report, final_alloc =
      match !carry with
      | Some (b0, entries0, cycles0)
        when b0 <= config.budget && cycles0 < report.Srfa_estimate.Report.cycles
        ->
        Trace.emit sink (fun () ->
            Trace.event "certify.monotonic"
              [
                ("kernel", Trace.String kernel);
                ("budget", Trace.Int config.budget);
                ("carried_budget", Trace.Int b0);
                ("carried_cycles", Trace.Int cycles0);
                ("fresh_cycles", Trace.Int report.Srfa_estimate.Report.cycles);
              ]);
        let adopted =
          Allocation.make ~analysis ~budget:config.budget
            ~algorithm:Certify.algorithm_name entries0
        in
        (build adopted, adopted)
      | _ -> (report, alloc)
    in
    let final_cycles = report.Srfa_estimate.Report.cycles in
    (match !carry with
    | Some (_, _, cycles0) when cycles0 <= final_cycles -> ()
    | _ ->
      let entries =
        Array.init (Analysis.num_groups analysis)
          (Allocation.entry final_alloc)
      in
      carry := Some (config.budget, entries, final_cycles));
    report

  type sweep_point = {
    kernel : string;
    algorithm : Allocator.algorithm;
    budget : int;
    report : Srfa_estimate.Report.t;
  }

  let default_budgets = [ 8; 16; 32; 64; 128 ]

  (* One kernel's full budget ladder. This stays sequential even under a
     pool: the portfolio carry-forward (budget monotonicity) threads state
     from each budget to the next, so the ladder is the unit of work and
     kernels are the parallel axis. *)
  let sweep_kernel ~config ~algorithms ~budgets ?trace (kernel, nest) =
    let prepared = prepare nest in
    let analysis = prepared.analysis in
    (* One simulator scratch per kernel, created inside the task so each
       pool domain owns its own (the scratch is not thread-safe). *)
    let sim_scratch = scratch ~config prepared in
    let carry = ref None in
    List.concat_map
      (fun budget ->
        if budget < prepared.minimum then []
        else
          List.map
            (fun algorithm ->
              let report =
                match algorithm with
                | Allocator.Portfolio ->
                  portfolio_point ?trace ~prepared:prepared.cpa ~sim_scratch
                    ~carry { config with budget } kernel analysis
                | _ ->
                  evaluate_analysis ?trace ~prepared:prepared.cpa ~sim_scratch
                    { config with budget } algorithm analysis
              in
              { kernel; algorithm; budget; report })
            algorithms)
      budgets

  (* ---- dynamic re-budgeting (DESIGN.md §16) -------------------------- *)

  type rebudget_step = {
    requested : int;
    effective : int;
    clamped : bool;
    freed : int;
    respent : int;
    memoized : bool;
    allocation : Allocation.t;
    report : Srfa_estimate.Report.t;
    warnings : Srfa_util.Diag.t list;
  }

  (* The live allocation plus everything an event needs to be answered
     without a from-scratch rerun: the prepared kernel, the warm
     simulator scratch, and a per-effective-budget memo of steps already
     certified in this stream (a budget ladder that oscillates revisits
     budgets constantly; re-deriving an identical certified allocation
     would be pure waste). Single-owner like every scratch-bearing value
     in this module: one session per domain at a time. *)
  type rebudget_session = {
    rb_prepared : prepared;
    rb_config : config;
    rb_scratch : Srfa_sched.Simulator.scratch;
    mutable rb_current : Allocation.t;
    rb_memo :
      (int, Allocation.t * Srfa_estimate.Report.t * Srfa_util.Diag.t list)
      Hashtbl.t;
  }

  (* The pinned-shrink rule: a request below the feasibility minimum is
     not an error — the budget clamps there (the engine spills every
     entry cheapest-first to fit) and the event is answered under the
     clamp, with the degradation announced as a trace event and a
     W-GUARD-REBUDGET warning. *)
  let rebudget_guard ~sink ~requested ~minimum =
    Trace.emit sink (fun () ->
        Trace.event "guard.rebudget"
          [
            ("requested", Trace.Int requested);
            ("minimum", Trace.Int minimum);
          ]);
    Diag.warning ~code:"W-GUARD-REBUDGET"
      "budget event below the feasibility minimum (one register per \
       reference group); budget clamped at the minimum"
      ~context:
        [
          ("requested", string_of_int requested);
          ("minimum", string_of_int minimum);
        ]

  let rebudget_report ~cfg ~sink ~trace_summary ~sim_scratch outcome =
    let alloc = outcome.Certify.allocation in
    match outcome.Certify.sim with
    | Some sim ->
      Srfa_estimate.Report.of_result ~clock_params:cfg.clock_params
        ~trace_summary ~sim_config:cfg.sim
        ~version:(Allocator.version_label Allocator.Portfolio)
        alloc sim
    | None ->
      Srfa_estimate.Report.build ~sim_config:cfg.sim
        ~clock_params:cfg.clock_params ~trace:sink ~trace_summary ~sim_scratch
        ~version:(Allocator.version_label Allocator.Portfolio)
        alloc

  let rebudget_start ?(trace = Trace.null) ?sim_scratch config prepared
      ~budget =
    let sim_scratch =
      match sim_scratch with Some s -> s | None -> scratch ~config prepared
    in
    let sink, events = tee_collector trace in
    let minimum = prepared.minimum in
    let effective = max budget minimum in
    let clamped = budget < minimum in
    let clamp_warning =
      if clamped then [ rebudget_guard ~sink ~requested:budget ~minimum ]
      else []
    in
    let cfg = { config with budget = effective } in
    let outcome =
      Allocator.run_portfolio ~latency:cfg.sim.Srfa_sched.Simulator.latency
        ~trace:sink ?cut_work_limit:cfg.guards.cut_work_limit
        ~prepared:prepared.cpa ~sim_config:cfg.sim ~sim_scratch
        prepared.analysis ~budget:effective
    in
    let trace_summary = Trace.summary (events ()) in
    let report = rebudget_report ~cfg ~sink ~trace_summary ~sim_scratch outcome in
    let base_warnings = warnings_of_events (events ()) in
    let alloc = outcome.Certify.allocation in
    let session =
      {
        rb_prepared = prepared;
        rb_config = config;
        rb_scratch = sim_scratch;
        rb_current = alloc;
        rb_memo = Hashtbl.create 8;
      }
    in
    Hashtbl.replace session.rb_memo effective (alloc, report, base_warnings);
    ( session,
      {
        requested = budget;
        effective;
        clamped;
        freed = 0;
        respent = 0;
        memoized = false;
        allocation = alloc;
        report;
        warnings = clamp_warning @ base_warnings;
      } )

  let rebudget_step ?(trace = Trace.null) session ~budget =
    let prepared = session.rb_prepared in
    let minimum = prepared.minimum in
    let effective = max budget minimum in
    let clamped = budget < minimum in
    let sink, events = tee_collector trace in
    let clamp_warning =
      if clamped then [ rebudget_guard ~sink ~requested:budget ~minimum ]
      else []
    in
    match Hashtbl.find_opt session.rb_memo effective with
    | Some (alloc, report, base_warnings) ->
      session.rb_current <- alloc;
      {
        requested = budget;
        effective;
        clamped;
        freed = 0;
        respent = 0;
        memoized = true;
        allocation = alloc;
        report;
        warnings = clamp_warning @ base_warnings;
      }
    | None ->
      let cfg = { session.rb_config with budget = effective } in
      let eng = Engine.of_allocation ~trace:sink session.rb_current in
      let moved = Engine.rebudget ~reason:"rebudget event" eng ~budget:effective in
      let headroom = Engine.remaining eng in
      Certify.respend eng;
      let respent = headroom - Engine.remaining eng in
      let candidate =
        Engine.finalize ~pin_all:true eng ~algorithm:Certify.algorithm_name
      in
      (* Re-establish the certified never-worse contract at the new
         budget: the reclaimed/re-spent candidate is certified against
         FR-RA and PR-RA exactly like a from-scratch portfolio point. *)
      let outcome =
        Certify.certify ~trace:sink ~sim_config:cfg.sim
          ~sim_scratch:session.rb_scratch candidate
      in
      let trace_summary = Trace.summary (events ()) in
      let report =
        rebudget_report ~cfg ~sink ~trace_summary
          ~sim_scratch:session.rb_scratch outcome
      in
      let base_warnings = warnings_of_events (events ()) in
      let alloc = outcome.Certify.allocation in
      Hashtbl.replace session.rb_memo effective (alloc, report, base_warnings);
      session.rb_current <- alloc;
      {
        requested = budget;
        effective;
        clamped;
        freed = moved.Engine.freed;
        respent;
        memoized = false;
        allocation = alloc;
        report;
        warnings = clamp_warning @ base_warnings;
      }

  let rebudget_current session = session.rb_current

  let rebudget ?trace ?sim_scratch config prepared ~initial ~events =
    let session, first =
      rebudget_start ?trace ?sim_scratch config prepared ~budget:initial
    in
    first :: List.map (fun b -> rebudget_step ?trace session ~budget:b) events
end

(* ---- IO shell ----------------------------------------------------------

   The historical Flow surface, now thin delegations into {!Core}. The
   subcommands (alloc/sweep/check), the bench and the tests call through
   these unchanged; anything that needs per-request reuse (the serve
   daemon) goes to {!Core} directly. *)

type guards = Core.guards = {
  cut_work_limit : int option;
  event_model_cap : int;
}

let default_guards = Core.default_guards

type config = Core.config = {
  budget : int;
  sim : Srfa_sched.Simulator.config;
  clock_params : Srfa_estimate.Clock.params;
  guards : guards;
}

let default_config = Core.default_config
let analyze = Core.analyze

let allocation ?(config = Core.default_config) ?trace ?prepared ?sim_scratch
    algorithm analysis =
  Core.allocation ~config ?trace ?prepared ?sim_scratch algorithm analysis

let evaluate ?(config = Core.default_config) ?trace algorithm nest =
  Core.evaluate_analysis ?trace config algorithm (Core.analyze nest)

let evaluate_all ?(config = Core.default_config) ?(algorithms = Allocator.all)
    ?trace nest =
  let prepared = Core.prepare nest in
  let sim_scratch = Core.scratch ~config prepared in
  List.map
    (fun alg -> Core.evaluate_prepared ?trace ~sim_scratch config alg prepared)
    algorithms

type sweep_point = Core.sweep_point = {
  kernel : string;
  algorithm : Allocator.algorithm;
  budget : int;
  report : Srfa_estimate.Report.t;
}

let default_budgets = Core.default_budgets

let run_checked ?(config = Core.default_config)
    ?(algorithm = Allocator.Cpa_ra) ?trace nest =
  Core.checked ~config ~algorithm ?trace nest

let sweep ?(config = Core.default_config) ?(algorithms = Allocator.all)
    ?(budgets = Core.default_budgets) ?trace ?pool kernels =
  let sweep_kernel = Core.sweep_kernel ~config ~algorithms ~budgets in
  match pool with
  | Some pool when Srfa_util.Pool.jobs pool > 1 && List.length kernels > 1 ->
    (* Parallel across kernels, deterministic by construction: results
       come back in input order from Pool.map, and each kernel's trace
       goes into a private buffer spliced back in kernel order — the
       same kernel-major stream the sequential walk emits. *)
    let traced = match trace with Some t -> Trace.enabled t | None -> false in
    let outputs =
      Srfa_util.Pool.map pool
        (fun kn ->
          if traced then
            let sink, splice = Trace.buffered () in
            (sweep_kernel ~trace:sink kn, splice)
          else (sweep_kernel kn, fun _ -> ()))
        (Array.of_list kernels)
    in
    (match trace with
    | Some t when Trace.enabled t ->
      Array.iter (fun (_, splice) -> splice t) outputs
    | _ -> ());
    List.concat_map fst (Array.to_list outputs)
  | _ -> List.concat_map (fun kn -> sweep_kernel ?trace kn) kernels
