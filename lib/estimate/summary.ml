type t = {
  version : string;
  kernels : int;
  mean_cycle_reduction_pct : float;
  mean_wall_clock_gain_pct : float;
  mean_clock_degradation_pct : float;
  geomean_speedup : float;
  wins : int;
}

let arithmetic_mean = function
  | [] -> invalid_arg "Summary.arithmetic_mean: empty"
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let geometric_mean = function
  | [] -> invalid_arg "Summary.geometric_mean: empty"
  | xs ->
    if List.exists (fun x -> x <= 0.0) xs then
      invalid_arg "Summary.geometric_mean: non-positive value";
    exp (arithmetic_mean (List.map log xs))

let of_reports ~version per_kernel =
  let pick reports =
    match reports with
    | [] -> invalid_arg "Summary.of_reports: empty kernel report list"
    | base :: _ -> (
      match
        List.find_opt (fun r -> r.Report.version = version) reports
      with
      | Some r -> (base, r)
      | None ->
        invalid_arg
          (Printf.sprintf "Summary.of_reports: no %s report for %s" version
             base.Report.kernel))
  in
  let pairs = List.map pick per_kernel in
  let cycle (base, r) = Report.cycle_reduction_pct ~base r in
  let speedup (base, r) = Report.speedup ~base r in
  let wall pair = 100.0 *. (1.0 -. (1.0 /. speedup pair)) in
  let clock (base, r) = Report.clock_degradation_pct ~base r in
  {
    version;
    kernels = List.length pairs;
    mean_cycle_reduction_pct = arithmetic_mean (List.map cycle pairs);
    mean_wall_clock_gain_pct = arithmetic_mean (List.map wall pairs);
    mean_clock_degradation_pct = arithmetic_mean (List.map clock pairs);
    geomean_speedup = geometric_mean (List.map speedup pairs);
    wins = List.length (List.filter (fun p -> speedup p > 1.0) pairs);
  }

let pp ppf t =
  Format.fprintf ppf
    "%s over %d kernels: cycles %+.1f%%, wall-clock %+.1f%%, clock \
     %+.1f%%, geomean speedup %.2fx, wins %d"
    t.version t.kernels t.mean_cycle_reduction_pct t.mean_wall_clock_gain_pct
    t.mean_clock_degradation_pct t.geomean_speedup t.wins
