(** Analytic slice-count model.

    A substitute for the paper's Synplify + ISE place-and-route flow (see
    DESIGN.md §2): coefficients approximate Virtex-era synthesis results for
    a 16-bit datapath and were chosen so the paper's qualitative area
    findings hold — registers dominate aggressive-replacement designs, and
    partial-reuse control adds a visible but secondary cost. Absolute slice
    counts carry no meaning beyond that. *)

open Srfa_reuse

type breakdown = {
  datapath : int;     (** functional units *)
  registers : int;    (** scalar-replacement and feasibility registers *)
  control : int;      (** FSM, counters, partial-reuse steering *)
  address_gen : int;  (** RAM address generators *)
  total : int;
}

val estimate :
  device:Srfa_hw.Device.t -> ram_arrays:int -> Allocation.t -> breakdown
(** [ram_arrays] is the number of RAM-backed arrays (address generators). *)

val lower_bound : device:Srfa_hw.Device.t -> Analysis.t -> int
(** Slice floor over every feasible allocation of the analysis: datapath
    + one feasibility register per group + the depth/group control terms
    + address generators for the always-RAM-backed input/output arrays.
    Partial-group steering and local-array address generators only add
    slices, so every real {!breakdown}[.total] is [>=] this. Drives the
    design-space explorer's dominance cuts (DESIGN.md §17). *)

val utilization : device:Srfa_hw.Device.t -> breakdown -> float
(** Fraction of the device's slices used (may exceed 1.0: over-mapped). *)

val pp : Format.formatter -> breakdown -> unit
