open Srfa_reuse

type t = {
  kernel : string;
  version : string;
  algorithm : string;
  required : (string * int) list;
  allocated : (string * int) list;
  total_registers : int;
  cycles : int;
  memory_cycles : int;
  ram_accesses : int;
  clock_ns : float;
  exec_time_us : float;
  slices : int;
  slice_utilization : float;
  rams : int;
  trace_summary : string option;
}

let of_result ?clock_params ?trace_summary ~sim_config ~version alloc
    (sim : Srfa_sched.Simulator.result) =
  let analysis = alloc.Allocation.analysis in
  let device = sim_config.Srfa_sched.Simulator.device in
  let ram_map = Srfa_sched.Simulator.ram_map_for sim_config alloc in
  let per_group f =
    List.map
      (fun gid ->
        let i = Analysis.info analysis gid in
        (Group.name i.Analysis.group, f i gid))
      (List.init (Analysis.num_groups analysis) Fun.id)
  in
  let required = per_group (fun i _ -> i.Analysis.nu) in
  let allocated = per_group (fun _ gid -> Allocation.beta alloc gid) in
  let ram_arrays =
    List.length
      (List.filter
         (fun (d : Srfa_ir.Decl.t) ->
           Srfa_hw.Ram_map.is_mapped ram_map d.Srfa_ir.Decl.name)
         analysis.Analysis.nest.Srfa_ir.Nest.arrays)
  in
  let area = Area.estimate ~device ~ram_arrays alloc in
  let clock_ns = Clock.period_ns ?params:clock_params alloc in
  {
    kernel = analysis.Analysis.nest.Srfa_ir.Nest.name;
    version;
    algorithm = alloc.Allocation.algorithm;
    required;
    allocated;
    total_registers = Allocation.total_registers alloc;
    cycles = sim.Srfa_sched.Simulator.total_cycles;
    memory_cycles = sim.Srfa_sched.Simulator.memory_cycles;
    ram_accesses = sim.Srfa_sched.Simulator.ram_accesses;
    clock_ns;
    exec_time_us =
      float_of_int sim.Srfa_sched.Simulator.total_cycles *. clock_ns /. 1000.0;
    slices = area.Area.total;
    slice_utilization = Area.utilization ~device area;
    rams = Srfa_hw.Ram_map.blocks_used ram_map;
    trace_summary;
  }

let build ?(sim_config = Srfa_sched.Simulator.default_config) ?clock_params
    ?trace ?trace_summary ?sim_scratch ~version alloc =
  let sim =
    Srfa_sched.Simulator.run ?trace ~config:sim_config ?scratch:sim_scratch
      alloc
  in
  of_result ?clock_params ?trace_summary ~sim_config ~version alloc sim

let speedup ~base t = base.exec_time_us /. t.exec_time_us

let cycle_reduction_pct ~base t =
  100.0 *. (1.0 -. (float_of_int t.cycles /. float_of_int base.cycles))

let clock_degradation_pct ~base t =
  100.0 *. ((t.clock_ns /. base.clock_ns) -. 1.0)

let pp ppf t =
  Format.fprintf ppf
    "@[<v>%s %s (%s):@,  registers %d  cycles %d (mem %d)  clock %.1f ns  \
     time %.1f us  slices %d (%.1f%%)  rams %d@]"
    t.kernel t.version t.algorithm t.total_registers t.cycles t.memory_cycles
    t.clock_ns t.exec_time_us t.slices
    (100.0 *. t.slice_utilization)
    t.rams;
  match t.trace_summary with
  | Some s -> Format.fprintf ppf "@,  trace: %s" s
  | None -> ()
