(** Aggregate statistics over design reports — the quantities the paper's
    prose quotes ("an average percentage improvement of x% for versions
    v3"). One {!t} summarises a set of kernels, each evaluated as a list
    of reports whose head is the base version (v1). *)

type t = private {
  version : string;
  kernels : int;
  mean_cycle_reduction_pct : float;
  mean_wall_clock_gain_pct : float;
  mean_clock_degradation_pct : float;
  geomean_speedup : float;
  wins : int;  (** kernels where the version beats the base wall-clock *)
}

val of_reports : version:string -> Report.t list list -> t
(** [of_reports ~version per_kernel] where each inner list is one kernel's
    reports with the base version first.
    @raise Invalid_argument if a kernel list is empty or lacks
    [version]. *)

val arithmetic_mean : float list -> float
(** @raise Invalid_argument on []. *)

val geometric_mean : float list -> float
(** @raise Invalid_argument on [] or non-positive values. *)

val pp : Format.formatter -> t -> unit
