(** Design reports: one Table 1 row.

    Gathers the allocation, the simulated cycle counts, and the analytic
    area/clock estimates into the record the benches print. *)

open Srfa_reuse

type t = {
  kernel : string;
  version : string;            (** v1 / v2 / v3 / ks *)
  algorithm : string;
  required : (string * int) list; (** per group: nu for full replacement *)
  allocated : (string * int) list;
  total_registers : int;
  cycles : int;
  memory_cycles : int;
  ram_accesses : int;
  clock_ns : float;
  exec_time_us : float;
  slices : int;
  slice_utilization : float;
  rams : int;
  trace_summary : string option;
      (** compact digest of the allocator's decision trace (event counts
          per kind, {!Srfa_util.Trace.summary}); [None] when the
          allocation was not traced *)
}

val build :
  ?sim_config:Srfa_sched.Simulator.config ->
  ?clock_params:Clock.params ->
  ?trace:Srfa_util.Trace.sink ->
  ?trace_summary:string ->
  ?sim_scratch:Srfa_sched.Simulator.scratch ->
  version:string ->
  Allocation.t ->
  t
(** Runs the simulator and the estimators for one allocation.
    [sim_scratch] is forwarded to {!Srfa_sched.Simulator.run} so repeated
    reports over one nest reuse the simulator's warm state. *)

val of_result :
  ?clock_params:Clock.params ->
  ?trace_summary:string ->
  sim_config:Srfa_sched.Simulator.config ->
  version:string ->
  Allocation.t ->
  Srfa_sched.Simulator.result ->
  t
(** Like {!build} when the simulation result is already at hand. *)

val speedup : base:t -> t -> float
(** Wall-clock speedup of a design over the base version. *)

val cycle_reduction_pct : base:t -> t -> float
(** Percentage reduction in cycle count relative to the base version
    (positive = fewer cycles). *)

val clock_degradation_pct : base:t -> t -> float
(** Percentage increase in clock period relative to the base version. *)

val pp : Format.formatter -> t -> unit
