open Srfa_ir
open Srfa_reuse

type params = {
  base_ns : float;
  per_register : float;
  per_partial_group : float;
  per_full_group : float;
  per_loop_level : float;
}

let default_params =
  {
    base_ns = 40.0;
    per_register = 0.03;
    per_partial_group = 0.9;
    per_full_group = 0.3;
    per_loop_level = 0.4;
  }

let period_ns ?(params = default_params) alloc =
  let analysis = alloc.Allocation.analysis in
  let ngroups = Analysis.num_groups analysis in
  let partial, full =
    let classify (p, f) gid =
      let e = Allocation.entry alloc gid in
      if not e.Allocation.pinned then (p, f)
      else if Allocation.is_full alloc gid then (p, f + 1)
      else (p + 1, f)
    in
    List.fold_left classify (0, 0) (List.init ngroups Fun.id)
  in
  params.base_ns
  +. (params.per_register *. float_of_int (Allocation.total_registers alloc))
  +. (params.per_partial_group *. float_of_int partial)
  +. (params.per_full_group *. float_of_int full)
  +. (params.per_loop_level
     *. float_of_int (Nest.depth analysis.Analysis.nest))

let frequency_mhz ?params alloc = 1000.0 /. period_ns ?params alloc
