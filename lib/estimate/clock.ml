open Srfa_ir
open Srfa_reuse

type params = {
  base_ns : float;
  per_register : float;
  per_partial_group : float;
  per_full_group : float;
  per_loop_level : float;
}

let default_params =
  {
    base_ns = 40.0;
    per_register = 0.03;
    per_partial_group = 0.9;
    per_full_group = 0.3;
    per_loop_level = 0.4;
  }

let period_ns ?(params = default_params) alloc =
  let analysis = alloc.Allocation.analysis in
  let ngroups = Analysis.num_groups analysis in
  let partial, full =
    let classify (p, f) gid =
      let e = Allocation.entry alloc gid in
      if not e.Allocation.pinned then (p, f)
      else if Allocation.is_full alloc gid then (p, f + 1)
      else (p + 1, f)
    in
    List.fold_left classify (0, 0) (List.init ngroups Fun.id)
  in
  params.base_ns
  +. (params.per_register *. float_of_int (Allocation.total_registers alloc))
  +. (params.per_partial_group *. float_of_int partial)
  +. (params.per_full_group *. float_of_int full)
  +. (params.per_loop_level
     *. float_of_int (Nest.depth analysis.Analysis.nest))

let frequency_mhz ?params alloc = 1000.0 /. period_ns ?params alloc

(* Period floor over every feasible allocation: the register term is
   monotone and every allocation holds at least [min_registers] (the
   feasibility floor), the depth term is fixed by the nest, and the
   partial/full pinned-group terms are nonnegative and so dropped.
   Note the full model is NOT monotone in registers — growing a partial
   group to full trades 0.9 ns for 0.3 ns — which is exactly why the
   explorer's dominance cuts need this decomposition rather than a
   "clock at minimum registers" evaluation. *)
let lower_bound ?(params = default_params) ~min_registers ~depth () =
  params.base_ns
  +. (params.per_register *. float_of_int min_registers)
  +. (params.per_loop_level *. float_of_int depth)
