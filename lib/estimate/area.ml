open Srfa_ir
open Srfa_reuse

type breakdown = {
  datapath : int;
  registers : int;
  control : int;
  address_gen : int;
  total : int;
}

(* Slices for one operator at the given operand width; LUT-based Virtex
   figures (no embedded multipliers on the XCV1000). *)
let binary_slices ~bits : Op.binary -> int = function
  | Op.Mul -> (bits * bits / 4) + 8
  | Op.Div -> (bits * bits / 2) + 16
  | Op.Add | Op.Sub -> (bits / 2) + 2
  | Op.Min | Op.Max -> bits + 2
  | Op.Eq | Op.Lt -> (bits / 2) + 1
  | Op.Band | Op.Bor | Op.Bxor -> bits / 2

let unary_slices ~bits : Op.unary -> int = function
  | Op.Neg -> (bits / 2) + 1
  | Op.Abs -> bits + 2
  | Op.Bnot -> 1

let rec expr_slices ~bits (e : Expr.t) =
  match e with
  | Expr.Const _ | Expr.Load _ -> 0
  | Expr.Unary (op, a) -> unary_slices ~bits op + expr_slices ~bits a
  | Expr.Binary (op, a, b) ->
    binary_slices ~bits op + expr_slices ~bits a + expr_slices ~bits b

let estimate ~device ~ram_arrays alloc =
  let analysis = alloc.Allocation.analysis in
  let nest = analysis.Analysis.nest in
  let width =
    List.fold_left (fun acc d -> max acc d.Decl.bits) 1 nest.Nest.arrays
  in
  let datapath =
    List.fold_left
      (fun acc (Expr.Assign (_, e)) -> acc + expr_slices ~bits:width e)
      0 nest.Nest.body
  in
  let registers =
    let per_group gid acc =
      let i = Analysis.info analysis gid in
      let bits = (Group.decl i.Analysis.group).Decl.bits in
      acc + (Allocation.beta alloc gid * Srfa_hw.Device.register_slices device ~bits)
    in
    List.fold_left (fun acc gid -> per_group gid acc) 0
      (List.init (Analysis.num_groups analysis) Fun.id)
  in
  let partial_groups =
    let is_partial gid =
      let e = Allocation.entry alloc gid in
      e.Allocation.pinned && not (Allocation.is_full alloc gid)
    in
    List.length
      (List.filter is_partial (List.init (Analysis.num_groups analysis) Fun.id))
  in
  let control =
    30
    + (12 * Nest.depth nest)
    + (20 * partial_groups)
    + (4 * Analysis.num_groups analysis)
  in
  let address_gen = 8 * ram_arrays in
  {
    datapath;
    registers;
    control;
    address_gen;
    total = datapath + registers + control + address_gen;
  }

(* Slice floor over every feasible allocation of [analysis]: the engine
   holds one feasibility register per group ([beta >= 1]), the datapath
   and the non-partial control terms depend only on the nest, partial
   groups and address generators only add slices, and input/output
   arrays are RAM-backed no matter how well the registers cover the loop
   (Simulator.ram_backed_arrays). Used by the explorer's dominance cuts:
   every real point's [total] is >= this. *)
let lower_bound ~device analysis =
  let nest = analysis.Analysis.nest in
  let width =
    List.fold_left (fun acc d -> max acc d.Decl.bits) 1 nest.Nest.arrays
  in
  let datapath =
    List.fold_left
      (fun acc (Expr.Assign (_, e)) -> acc + expr_slices ~bits:width e)
      0 nest.Nest.body
  in
  let ngroups = Analysis.num_groups analysis in
  let registers =
    List.fold_left
      (fun acc gid ->
        let i = Analysis.info analysis gid in
        let bits = (Group.decl i.Analysis.group).Decl.bits in
        acc + Srfa_hw.Device.register_slices device ~bits)
      0
      (List.init ngroups Fun.id)
  in
  let control = 30 + (12 * Nest.depth nest) + (4 * ngroups) in
  let io_arrays =
    List.length
      (List.filter
         (fun (d : Decl.t) ->
           match d.Decl.storage with
           | Decl.Input | Decl.Output -> true
           | Decl.Local -> false)
         nest.Nest.arrays)
  in
  datapath + registers + control + (8 * io_arrays)

let utilization ~device b =
  float_of_int b.total /. float_of_int device.Srfa_hw.Device.slices

let pp ppf b =
  Format.fprintf ppf
    "slices: datapath=%d registers=%d control=%d addrgen=%d total=%d"
    b.datapath b.registers b.control b.address_gen b.total
