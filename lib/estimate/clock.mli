(** Analytic clock-period model.

    Substitutes for post-P&R timing (DESIGN.md §2). The paper's designs
    show the base version clocking fastest and the register-heavy,
    mux-heavy v2/v3 designs degrading by single-digit percentages (≈7% on
    average for v3); the model reproduces that trend:

    - every scalar-replacement register adds routing/fanout pressure;
    - every {e partially} replaced group adds index comparators and
      register-file muxing on the data path;
    - deeper nests lengthen the controller's next-state logic.

    Coefficients are documented here and overridable for sensitivity
    studies. *)

open Srfa_reuse

type params = {
  base_ns : float;           (** simplest design's achievable period *)
  per_register : float;      (** ns per allocated register *)
  per_partial_group : float; (** ns per partially replaced pinned group *)
  per_full_group : float;    (** ns per fully replaced pinned group *)
  per_loop_level : float;    (** ns per nest depth level *)
}

val default_params : params
(** base 40 ns, 0.03 ns/register, 0.9 ns/partial group, 0.3 ns/full group,
    0.4 ns/level. *)

val period_ns : ?params:params -> Allocation.t -> float

val frequency_mhz : ?params:params -> Allocation.t -> float

val lower_bound : ?params:params -> min_registers:int -> depth:int -> unit -> float
(** Period floor over every feasible allocation holding at least
    [min_registers] (the feasibility floor) in a nest of [depth] levels:
    base + register + depth terms, with the nonnegative partial/full
    pinned-group terms dropped. Every real {!period_ns} is [>=] this;
    the explorer's dominance cuts rely on it (DESIGN.md §17). *)
