type storage_class = Input | Output | Local

type t = {
  name : string;
  dims : int list;
  bits : int;
  storage : storage_class;
}

let make ?(bits = 16) ?(storage = Input) name dims =
  if name = "" then invalid_arg "Decl.make: empty name";
  if bits <= 0 then invalid_arg "Decl.make: non-positive width";
  if List.exists (fun d -> d <= 0) dims then
    invalid_arg "Decl.make: non-positive extent";
  { name; dims; bits; storage }

let scalar ?(bits = 16) ?(storage = Local) name = make ~bits ~storage name []

let elements t = List.fold_left ( * ) 1 t.dims
let size_bits t = elements t * t.bits
let rank t = List.length t.dims
let equal a b = a.name = b.name
let compare a b = String.compare a.name b.name

let pp ppf t =
  let class_name =
    match t.storage with Input -> "in" | Output -> "out" | Local -> "local"
  in
  Format.fprintf ppf "%s %s:%d" class_name t.name t.bits;
  List.iter (fun d -> Format.fprintf ppf "[%d]" d) t.dims
