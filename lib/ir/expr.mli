(** Expressions, array references and statements of the loop body.

    References carry the declared array and one affine index expression per
    dimension. Two references with the same array and the same index
    functions denote the same {e reference group} — the unit the paper
    allocates registers to (e.g. the write and the read of [d\[i\]\[k\]] in
    Fig. 1 form a single group). *)

type ref_ = { decl : Decl.t; index : Affine.t list }

type t =
  | Load of ref_
  | Const of int
  | Unary of Op.unary * t
  | Binary of Op.binary * t * t

type stmt = Assign of ref_ * t
(** [Assign (r, e)]: one store of [e] into [r] per loop-body iteration. *)

val ref_ : Decl.t -> Affine.t list -> ref_
(** @raise Invalid_argument if the index count differs from the rank. *)

val ref_equal : ref_ -> ref_ -> bool
(** Same array and same index functions (reference-group identity). *)

val ref_compare : ref_ -> ref_ -> int

val loads : t -> ref_ list
(** All [Load] references of an expression, left-to-right, duplicates kept. *)

val stmt_refs : stmt -> ref_ list
(** Loads of the right-hand side followed by the store target. *)

val ref_vars : ref_ -> string list
(** Loop variables the index functions depend on, sorted, without dups. *)

val eval :
  t -> env:(string -> int) -> load:(ref_ -> int array -> int) -> int
(** Reference interpreter: [env] resolves loop variables, [load] fetches the
    value of a reference at evaluated index coordinates. *)

val eval_index : ref_ -> env:(string -> int) -> int array
(** The concrete element coordinates of [ref_] under [env]. *)

val pp_ref : Format.formatter -> ref_ -> unit
val pp : Format.formatter -> t -> unit
val pp_stmt : Format.formatter -> stmt -> unit
