module Smap = Map.Make (String)

type t = { const : int; terms : int Smap.t }
(* Invariant: [terms] never maps a variable to 0. *)

let normalize terms = Smap.filter (fun _ c -> c <> 0) terms

let const c = { const = c; terms = Smap.empty }

let var ?(coeff = 1) v =
  { const = 0; terms = normalize (Smap.singleton v coeff) }

let add a b =
  let merge _ x y =
    match (x, y) with
    | Some cx, Some cy -> if cx + cy = 0 then None else Some (cx + cy)
    | Some c, None | None, Some c -> Some c
    | None, None -> None
  in
  { const = a.const + b.const; terms = Smap.merge merge a.terms b.terms }

let scale k a =
  if k = 0 then const 0
  else { const = k * a.const; terms = Smap.map (fun c -> k * c) a.terms }

let sub a b = add a (scale (-1) b)
let constant a = a.const

let coeff a v = match Smap.find_opt v a.terms with Some c -> c | None -> 0
let coeffs a = Smap.bindings a.terms
let vars a = List.map fst (Smap.bindings a.terms)
let is_const a = Smap.is_empty a.terms

let eval a ~lookup =
  Smap.fold (fun v c acc -> acc + (c * lookup v)) a.terms a.const

let subst a v replacement =
  let c = coeff a v in
  if c = 0 then a
  else
    add
      { const = a.const; terms = normalize (Smap.remove v a.terms) }
      (scale c replacement)

let equal a b = a.const = b.const && Smap.equal Int.equal a.terms b.terms

let compare a b =
  let c = Int.compare a.const b.const in
  if c <> 0 then c else Smap.compare Int.compare a.terms b.terms

let pp ppf a =
  let pp_term first (v, c) =
    if c >= 0 && not first then Format.fprintf ppf "+";
    if c = 1 then Format.fprintf ppf "%s" v
    else if c = -1 then Format.fprintf ppf "-%s" v
    else Format.fprintf ppf "%d*%s" c v;
    false
  in
  if Smap.is_empty a.terms then Format.fprintf ppf "%d" a.const
  else begin
    let first = List.fold_left pp_term true (Smap.bindings a.terms) in
    ignore first;
    if a.const > 0 then Format.fprintf ppf "+%d" a.const
    else if a.const < 0 then Format.fprintf ppf "%d" a.const
  end

let to_string a = Format.asprintf "%a" pp a
