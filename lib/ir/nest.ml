type loop = { var : string; count : int }

type t = {
  name : string;
  arrays : Decl.t list;
  loops : loop list;
  body : Expr.stmt list;
}

let loop var count =
  if var = "" then invalid_arg "Nest.loop: empty variable name";
  if count <= 0 then invalid_arg "Nest.loop: non-positive trip count";
  { var; count }

let fail fmt = Format.kasprintf invalid_arg fmt

(* Extremes of an affine expression over the iteration box: each variable
   ranges over [0, count-1] independently, so the bound decomposes per
   term. *)
let affine_range loops ix =
  let term (lo, hi) (v, c) =
    match List.find_opt (fun l -> l.var = v) loops with
    | None -> fail "index uses unknown loop variable %s" v
    | Some l ->
      let a = 0 and b = c * (l.count - 1) in
      (lo + min a b, hi + max a b)
  in
  let base = Affine.constant ix in
  List.fold_left term (base, base) (Affine.coeffs ix)

let validate t =
  if t.loops = [] then fail "nest %s: no loops" t.name;
  if t.body = [] then fail "nest %s: empty body" t.name;
  let vars = List.map (fun l -> l.var) t.loops in
  if List.length (List.sort_uniq String.compare vars) <> List.length vars
  then fail "nest %s: duplicate loop variables" t.name;
  let names = List.map (fun d -> d.Decl.name) t.arrays in
  if List.length (List.sort_uniq String.compare names) <> List.length names
  then fail "nest %s: duplicate array declarations" t.name;
  let check_ref (r : Expr.ref_) =
    let declared =
      List.exists (fun d -> Decl.equal d r.Expr.decl) t.arrays
    in
    if not declared then
      fail "nest %s: reference to undeclared array %s" t.name
        r.Expr.decl.Decl.name;
    let check_dim extent ix =
      let lo, hi = affine_range t.loops ix in
      if lo < 0 || hi >= extent then
        fail "nest %s: %s index %s ranges over [%d,%d], extent %d" t.name
          r.Expr.decl.Decl.name (Affine.to_string ix) lo hi extent
    in
    List.iter2 check_dim r.Expr.decl.Decl.dims r.Expr.index
  in
  List.iter (fun s -> List.iter check_ref (Expr.stmt_refs s)) t.body

let make ~name ~arrays ~loops ~body =
  let t = { name; arrays; loops; body } in
  validate t;
  t

let depth t = List.length t.loops
let trip_counts t = List.map (fun l -> l.count) t.loops
let iterations t = List.fold_left ( * ) 1 (trip_counts t)
let loop_vars t = List.map (fun l -> l.var) t.loops
let refs t = List.concat_map Expr.stmt_refs t.body

let find_array t name =
  List.find (fun d -> d.Decl.name = name) t.arrays

let pp ppf t =
  Format.fprintf ppf "@[<v>// kernel %s@," t.name;
  List.iter (fun d -> Format.fprintf ppf "%a;@," Decl.pp d) t.arrays;
  let emit_loop depth l =
    Format.fprintf ppf "%sfor (%s = 0; %s < %d; %s++)@,"
      (String.make (2 * depth) ' ')
      l.var l.var l.count l.var
  in
  List.iteri emit_loop t.loops;
  let indent = String.make (2 * depth t) ' ' in
  let emit_stmt s = Format.fprintf ppf "%s%a@," indent Expr.pp_stmt s in
  List.iter emit_stmt t.body;
  Format.fprintf ppf "@]"
