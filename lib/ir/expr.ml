type ref_ = { decl : Decl.t; index : Affine.t list }

type t =
  | Load of ref_
  | Const of int
  | Unary of Op.unary * t
  | Binary of Op.binary * t * t

type stmt = Assign of ref_ * t

let ref_ decl index =
  if List.length index <> Decl.rank decl then
    invalid_arg
      (Printf.sprintf "Expr.ref_: %s has rank %d, got %d indices"
         decl.Decl.name (Decl.rank decl) (List.length index));
  { decl; index }

let ref_equal a b =
  Decl.equal a.decl b.decl
  && List.length a.index = List.length b.index
  && List.for_all2 Affine.equal a.index b.index

let ref_compare a b =
  let c = Decl.compare a.decl b.decl in
  if c <> 0 then c
  else List.compare Affine.compare a.index b.index

let rec loads = function
  | Load r -> [ r ]
  | Const _ -> []
  | Unary (_, e) -> loads e
  | Binary (_, a, b) -> loads a @ loads b

let stmt_refs (Assign (target, e)) = loads e @ [ target ]

let ref_vars r =
  let vars = List.concat_map Affine.vars r.index in
  List.sort_uniq String.compare vars

let eval_index r ~env =
  Array.of_list (List.map (fun ix -> Affine.eval ix ~lookup:env) r.index)

let rec eval e ~env ~load =
  match e with
  | Const c -> c
  | Load r -> load r (eval_index r ~env)
  | Unary (op, a) -> Op.eval_unary op (eval a ~env ~load)
  | Binary (op, a, b) ->
    Op.eval_binary op (eval a ~env ~load) (eval b ~env ~load)

let pp_ref ppf r =
  Format.fprintf ppf "%s" r.decl.Decl.name;
  List.iter (fun ix -> Format.fprintf ppf "[%a]" Affine.pp ix) r.index

let rec pp ppf = function
  | Const c -> Format.fprintf ppf "%d" c
  | Load r -> pp_ref ppf r
  | Unary (op, a) -> Format.fprintf ppf "%s(%a)" (Op.unary_name op) pp a
  | Binary (op, a, b) ->
    Format.fprintf ppf "%s(%a, %a)" (Op.binary_name op) pp a pp b

let pp_stmt ppf (Assign (r, e)) =
  Format.fprintf ppf "%a = %a;" pp_ref r pp e
