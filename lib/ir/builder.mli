(** Ergonomic construction of kernels.

    Typical use:
    {[
      let open Srfa_ir.Builder in
      let a = input "a" [ 30 ] and d = output "d" [ 1; 30 ] in
      let i = idx "i" and k = idx "k" in
      nest "example" ~loops:[ ("i", 1); ("k", 30) ]
        [ d.%[ [ i; k ] ] <-- (a.%[ [ k ] ] * const 7) ]
    ]} *)

type rexpr = Expr.t

val input : ?bits:int -> string -> int list -> Decl.t
val output : ?bits:int -> string -> int list -> Decl.t
val local : ?bits:int -> string -> int list -> Decl.t
val scalar : ?bits:int -> string -> Decl.t
(** A local 0-dimensional variable (accumulators). *)

val idx : string -> Affine.t
(** A loop variable as an index expression. *)

val cidx : int -> Affine.t
(** A constant index. *)

val ( +: ) : Affine.t -> Affine.t -> Affine.t
val ( -: ) : Affine.t -> Affine.t -> Affine.t
val ( *: ) : int -> Affine.t -> Affine.t

val ( .%[] ) : Decl.t -> Affine.t list -> rexpr
(** Array load. *)

val at : Decl.t -> Affine.t list -> Expr.ref_
(** A reference, for use as a store target. *)

val const : int -> rexpr
val ( + ) : rexpr -> rexpr -> rexpr
val ( - ) : rexpr -> rexpr -> rexpr
val ( * ) : rexpr -> rexpr -> rexpr
val ( / ) : rexpr -> rexpr -> rexpr
val min_ : rexpr -> rexpr -> rexpr
val max_ : rexpr -> rexpr -> rexpr
val eq : rexpr -> rexpr -> rexpr
val lt : rexpr -> rexpr -> rexpr
val abs_ : rexpr -> rexpr
val neg : rexpr -> rexpr

val ( <-- ) : Expr.ref_ -> rexpr -> Expr.stmt

val nest :
  string -> loops:(string * int) list -> Expr.stmt list -> Nest.t
(** Builds a validated nest; array declarations are collected from the body
    automatically. @raise Invalid_argument as {!Nest.make} does. *)
