(** Array (and scalar) variable declarations.

    A scalar is a 0-dimensional array: [dims = []]. Element width matters to
    the area model (registers cost slices proportional to their width) and to
    RAM-block capacity. *)

type storage_class =
  | Input   (** read-only data that lives in RAM before the loop runs *)
  | Output  (** results that must reach RAM after the loop runs *)
  | Local   (** intermediate values with no live-out requirement *)

type t = private {
  name : string;
  dims : int list;  (** extents of each dimension; [] for a scalar *)
  bits : int;       (** element width in bits *)
  storage : storage_class;
}

val make : ?bits:int -> ?storage:storage_class -> string -> int list -> t
(** [make name dims] declares an array. [bits] defaults to 16, [storage] to
    [Input]. @raise Invalid_argument on a non-positive extent, a non-positive
    width, or an empty name. *)

val scalar : ?bits:int -> ?storage:storage_class -> string -> t
(** A 0-dimensional declaration. [storage] defaults to [Local]. *)

val elements : t -> int
(** Total number of elements (1 for a scalar). *)

val size_bits : t -> int
(** [elements * bits]. *)

val rank : t -> int
val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
