let tile nest ~level ~factor =
  let loops = Array.of_list nest.Nest.loops in
  if level < 0 || level >= Array.length loops then
    invalid_arg "Tile.tile: level out of range";
  let target = loops.(level) in
  if factor < 2 then invalid_arg "Tile.tile: factor must be at least 2";
  if target.Nest.count mod factor <> 0 then
    invalid_arg
      (Printf.sprintf "Tile.tile: factor %d does not divide trip count %d"
         factor target.Nest.count);
  let outer_var = target.Nest.var ^ "_t" in
  let inner_var = target.Nest.var ^ "_i" in
  let clash v =
    Array.exists (fun (l : Nest.loop) -> l.Nest.var = v) loops
    || List.exists (fun (d : Decl.t) -> d.Decl.name = v) nest.Nest.arrays
  in
  if clash outer_var || clash inner_var then
    invalid_arg "Tile.tile: generated loop names collide";
  (* v := factor * v_t + v_i in every index expression. *)
  let replacement =
    Affine.add (Affine.var ~coeff:factor outer_var) (Affine.var inner_var)
  in
  let subst_ref (r : Expr.ref_) =
    Expr.ref_ r.Expr.decl
      (List.map (fun ix -> Affine.subst ix target.Nest.var replacement) r.Expr.index)
  in
  let rec subst_expr (e : Expr.t) =
    match e with
    | Expr.Const _ -> e
    | Expr.Load r -> Expr.Load (subst_ref r)
    | Expr.Unary (op, a) -> Expr.Unary (op, subst_expr a)
    | Expr.Binary (op, a, b) -> Expr.Binary (op, subst_expr a, subst_expr b)
  in
  let body =
    List.map
      (fun (Expr.Assign (t, e)) -> Expr.Assign (subst_ref t, subst_expr e))
      nest.Nest.body
  in
  let new_loops =
    Array.to_list loops
    |> List.concat_map (fun (l : Nest.loop) ->
           if l.Nest.var = target.Nest.var then
             [
               Nest.loop outer_var (target.Nest.count / factor);
               Nest.loop inner_var factor;
             ]
           else [ Nest.loop l.Nest.var l.Nest.count ])
  in
  Nest.make ~name:nest.Nest.name ~arrays:nest.Nest.arrays ~loops:new_loops
    ~body

let tileable_factors nest ~level =
  let loops = Array.of_list nest.Nest.loops in
  if level < 0 || level >= Array.length loops then
    invalid_arg "Tile.tileable_factors: level out of range";
  let count = loops.(level).Nest.count in
  List.filter
    (fun f -> f >= 2 && f < count && count mod f = 0)
    (List.init count (fun k -> k + 1))

let steps nest ~factors =
  let factors = List.sort_uniq Int.compare factors in
  List.concat_map
    (fun level ->
      let legal = tileable_factors nest ~level in
      List.filter_map
        (fun f -> if List.mem f legal then Some (level, f) else None)
        factors)
    (List.init (Nest.depth nest) Fun.id)
