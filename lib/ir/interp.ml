type store = (string, int array * Decl.t) Hashtbl.t

let store_create nest =
  let store = Hashtbl.create 16 in
  let add (d : Decl.t) =
    Hashtbl.replace store d.Decl.name (Array.make (Decl.elements d) 0, d)
  in
  List.iter add nest.Nest.arrays;
  store

let cells store name =
  match Hashtbl.find_opt store name with
  | Some (a, d) -> (a, d)
  | None ->
    invalid_arg
      (Printf.sprintf "Interp.cells: array %s is not declared in this nest"
         name)

let store_init store name f =
  let a, d = cells store name in
  let dims = Array.of_list d.Decl.dims in
  let rank = Array.length dims in
  let coords = Array.make rank 0 in
  let rec fill dim =
    if dim = rank then
      a.(Iterspace.element_linear d coords) <- f coords
    else
      for c = 0 to dims.(dim) - 1 do
        coords.(dim) <- c;
        fill (dim + 1)
      done
  in
  fill 0

let read store name coords =
  let a, d = cells store name in
  let ix = Iterspace.element_linear d coords in
  if ix < 0 || ix >= Array.length a then
    invalid_arg "Interp.read: coordinates out of bounds";
  a.(ix)

let write store name coords v =
  let a, d = cells store name in
  let ix = Iterspace.element_linear d coords in
  if ix < 0 || ix >= Array.length a then
    invalid_arg "Interp.write: coordinates out of bounds";
  a.(ix) <- v

let run nest store =
  let load (r : Expr.ref_) coords =
    let a, d = cells store r.Expr.decl.Decl.name in
    a.(Iterspace.element_linear d coords)
  in
  let exec_point point =
    let env = Iterspace.env_of_point nest point in
    let exec_stmt (Expr.Assign (target, e)) =
      let v = Expr.eval e ~env ~load in
      let coords = Expr.eval_index target ~env in
      let a, d = cells store target.Expr.decl.Decl.name in
      a.(Iterspace.element_linear d coords) <- v
    in
    List.iter exec_stmt nest.Nest.body
  in
  Iterspace.iter nest exec_point

let run_fresh nest ~init =
  let store = store_create nest in
  let init_array (d : Decl.t) =
    match d.Decl.storage with
    | Decl.Input -> store_init store d.Decl.name (init d.Decl.name)
    | Decl.Output | Decl.Local -> ()
  in
  List.iter init_array nest.Nest.arrays;
  run nest store;
  store

let equal_array s1 s2 name =
  let a1, _ = cells s1 name and a2, _ = cells s2 name in
  a1 = a2
