let associative_commutative : Op.binary -> bool = function
  | Op.Add | Op.Mul | Op.Min | Op.Max | Op.Band | Op.Bor | Op.Bxor -> true
  | Op.Sub | Op.Div | Op.Eq | Op.Lt -> false

(* Is the statement a reduction [target = Load target op rest] (in either
   operand position), with the self-read appearing exactly once? *)
let reduction_shape (Expr.Assign (target, e)) =
  let self_reads =
    List.length
      (List.filter (fun r -> Expr.ref_equal r target) (Expr.loads e))
  in
  match e with
  | Expr.Binary (op, Expr.Load r, rest)
    when Expr.ref_equal r target
         && not (List.exists (fun r' -> Expr.ref_equal r' target) (Expr.loads rest))
    -> self_reads = 1 && associative_commutative op
  | Expr.Binary (op, rest, Expr.Load r)
    when Expr.ref_equal r target
         && not (List.exists (fun r' -> Expr.ref_equal r' target) (Expr.loads rest))
    -> self_reads = 1 && associative_commutative op
  | _ -> self_reads = 0

let illegality nest =
  let body = nest.Nest.body in
  let writes_of (r : Expr.ref_) =
    List.filter
      (fun (Expr.Assign (t, _)) -> Expr.ref_equal t r)
      body
  in
  let exception Reason of string in
  try
    (* 1. single writer per group; reductions well-shaped *)
    List.iteri
      (fun _ (Expr.Assign (target, _) as stmt) ->
        if List.length (writes_of target) > 1 then
          raise
            (Reason
               (Format.asprintf "%a is written by several statements"
                  Expr.pp_ref target));
        if not (reduction_shape stmt) then
          raise
            (Reason
               (Format.asprintf
                  "%a is combined with a non-associative operator or read \
                   more than once in its own statement"
                  Expr.pp_ref target)))
      body;
    (* 2. reads of written arrays: same group, at/after the write, or the
       reduction self-read already validated above *)
    let write_pos (r : Expr.ref_) =
      let rec go k = function
        | [] -> None
        | Expr.Assign (t, _) :: rest ->
          if Expr.ref_equal t r then Some k else go (k + 1) rest
      in
      go 0 body
    in
    List.iteri
      (fun k (Expr.Assign (target, e)) ->
        let check_read (r : Expr.ref_) =
          let written_decl =
            List.exists
              (fun (Expr.Assign (t, _)) -> Decl.equal t.Expr.decl r.Expr.decl)
              body
          in
          if written_decl then begin
            match write_pos r with
            | Some w when w < k || (w = k && Expr.ref_equal r target) -> ()
            | Some _ | None ->
              if not (Expr.ref_equal r target) then
                raise
                  (Reason
                     (Format.asprintf
                        "%a reads array %s through an index written \
                         elsewhere (cross-iteration dependence)"
                        Expr.pp_ref r r.Expr.decl.Decl.name))
          end
        in
        List.iter check_read (Expr.loads e))
      body;
    None
  with Reason why -> Some why

let fully_permutable nest = illegality nest = None

let interchange nest ~order =
  let depth = Nest.depth nest in
  if List.sort Int.compare order <> List.init depth Fun.id then
    invalid_arg "Permute.interchange: order is not a permutation";
  (match illegality nest with
  | Some why -> invalid_arg ("Permute.interchange: " ^ why)
  | None -> ());
  let loops = Array.of_list nest.Nest.loops in
  let reordered = List.map (fun l -> loops.(l)) order in
  let loops =
    List.map (fun (l : Nest.loop) -> Nest.loop l.Nest.var l.Nest.count) reordered
  in
  Nest.make ~name:nest.Nest.name ~arrays:nest.Nest.arrays ~loops
    ~body:nest.Nest.body

let all_orders nest =
  let depth = Nest.depth nest in
  let rec permutations = function
    | [] -> [ [] ]
    | xs ->
      List.concat_map
        (fun x ->
          let rest = List.filter (fun y -> y <> x) xs in
          List.map (fun p -> x :: p) (permutations rest))
        xs
  in
  let all = permutations (List.init depth Fun.id) in
  let identity = List.init depth Fun.id in
  identity :: List.filter (fun p -> p <> identity) all

let legal_orders nest =
  if fully_permutable nest then (all_orders nest, 0)
  else
    (* No need to materialise the illegal permutations just to count
       them: everything but the (always legal) identity is skipped. *)
    let depth = Nest.depth nest in
    let fact = ref 1 in
    for k = 2 to depth do
      fact := !fact * k
    done;
    ([ List.init depth Fun.id ], !fact - 1)
