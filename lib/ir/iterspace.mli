(** Walking the iteration space of a nest.

    Iteration points are visited in the sequential execution order of the
    nest (outer loop slowest). Points are exposed both as environments for
    {!Expr.eval} and as flat linear indices for table-driven analyses. *)

val iter : Nest.t -> (int array -> unit) -> unit
(** [iter nest f] calls [f point] for each iteration point, in order. The
    array is reused between calls; copy it if you keep it. *)

val env_of_point : Nest.t -> int array -> string -> int
(** [env_of_point nest point] is a lookup function for loop variables.
    @raise Invalid_argument (naming the variable and the nest) on a name
    that is not a loop variable. *)

val linear : Nest.t -> int array -> int
(** Rank of an iteration point in execution order, in [0, iterations). *)

val point_of_linear : Nest.t -> int -> int array
(** Inverse of {!linear}. *)

val element_linear : Decl.t -> int array -> int
(** Row-major linear index of an element coordinate vector (0 for scalars). *)
