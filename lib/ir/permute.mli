(** Loop interchange.

    Reuse windows — and therefore every allocation in this library — depend
    on the loop order, so exploring interchanges is a natural companion to
    the register allocator. Interchange is only applied to nests whose
    cross-iteration data flow provably survives reordering:

    - every written reference group has a single writing statement;
    - reads of a written group either share its index functions and occur
      at or after the write in the body (pure same-iteration forwarding,
      e.g. Fig. 1's [d\[i\]\[k\]]), or form a reduction
      [g = g op ...] whose combining operator is associative and
      commutative (integer [+], [min], [max], bitwise ops).

    Under these conditions the body's iteration instances are independent
    up to reduction reordering, so {e every} permutation is legal — the
    nest is fully permutable. *)

val fully_permutable : Nest.t -> bool

val illegality : Nest.t -> string option
(** [None] when {!fully_permutable}; otherwise a human-readable reason. *)

val interchange : Nest.t -> order:int list -> Nest.t
(** [interchange nest ~order] reorders the loops; [order] lists the old
    level indices (0-based, outermost first) in their new sequence, e.g.
    [~order:[2; 0; 1]] makes the old innermost loop outermost.
    @raise Invalid_argument if [order] is not a permutation of the levels
    or the nest is not fully permutable. *)

val all_orders : Nest.t -> int list list
(** All permutations of the nest's levels, identity first (depth <= 6). *)

val legal_orders : Nest.t -> int list list * int
(** The orders {!interchange} accepts, plus how many were skipped: a
    fully permutable nest yields [(all_orders nest, 0)]; any other nest
    yields [([identity], depth! - 1)] — legality is all-or-nothing here,
    only the (trivially legal) identity survives. Lets explorers degrade
    gracefully (a [W-GUARD-EXPLORE] diagnostic) instead of raising. *)
