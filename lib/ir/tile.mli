(** Strip-mining (tiling) of loop nests.

    [tile] splits one loop of trip count [N] into an outer tile loop of
    [N / factor] iterations and an inner intra-tile loop of [factor]
    iterations, substituting [factor * outer + inner] for the original
    variable in every index expression. The iteration order is exactly
    preserved, so — unlike interchange — strip-mining alone is legal for
    every nest; its value comes from the new loop level it exposes:
    reuse carried by the original loop splits across the two new levels,
    shrinking the windows the allocators must fund. Combine with
    {!Permute.interchange} (when legal) to move tile loops outward. *)

val tile : Nest.t -> level:int -> factor:int -> Nest.t
(** [tile nest ~level ~factor] strip-mines the 0-based [level].
    The new loops are named [<v>_t] (tile) and [<v>_i] (intra).
    @raise Invalid_argument if the level is out of range, the factor is
    less than 2, does not divide the trip count evenly, or the generated
    names collide with existing variables. *)

val tileable_factors : Nest.t -> level:int -> int list
(** The divisors (>= 2, < trip count) usable as factors at a level. *)

val steps : Nest.t -> factors:int list -> (int * int) list
(** Every legal single strip-mine [(level, factor)] drawn from the
    candidate [factors] ladder: level-major, factors ascending, illegal
    (non-dividing, out-of-range) combinations silently dropped. The
    design-space explorer's tiling axis. *)
