(** Perfectly nested loops with compile-time constant bounds.

    This is the program representation the paper's analyses operate on:
    a perfect nest of counted loops around a straight-line body of array
    assignments. Loops are normalized ([0 .. count-1], unit stride). *)

type loop = private { var : string; count : int }

type t = private {
  name : string;
  arrays : Decl.t list;  (** every array/scalar used by the body *)
  loops : loop list;     (** outermost first; never empty *)
  body : Expr.stmt list; (** executed once per iteration point; never empty *)
}

val loop : string -> int -> loop
(** @raise Invalid_argument if the trip count is not positive or the
    variable name is empty. *)

val make : name:string -> arrays:Decl.t list -> loops:loop list ->
  body:Expr.stmt list -> t
(** Builds and validates a nest. Checks performed:
    - at least one loop and one statement;
    - loop variables are distinct;
    - every reference's array appears in [arrays], with matching rank;
    - index expressions use only enclosing loop variables;
    - every access is in bounds for every iteration (affine extremes);
    - no two declarations share a name.
    @raise Invalid_argument with a descriptive message otherwise. *)

val depth : t -> int
val trip_counts : t -> int list
val iterations : t -> int
(** Product of the trip counts. *)

val loop_vars : t -> string list
(** Outermost first. *)

val refs : t -> Expr.ref_ list
(** All references of the body in program order (reads of each statement,
    then its write), duplicates kept. *)

val find_array : t -> string -> Decl.t
(** @raise Not_found if no declaration has that name. *)

val pp : Format.formatter -> t -> unit
(** C-like rendering of the nest. *)
