let iter nest f =
  let counts = Array.of_list (Nest.trip_counts nest) in
  let depth = Array.length counts in
  let point = Array.make depth 0 in
  (* Odometer walk: increment the innermost position, carrying outward. *)
  let rec advance d =
    if d < 0 then false
    else begin
      point.(d) <- point.(d) + 1;
      if point.(d) < counts.(d) then true
      else begin
        point.(d) <- 0;
        advance (d - 1)
      end
    end
  in
  let rec go () =
    f point;
    if advance (depth - 1) then go ()
  in
  go ()

let env_of_point nest point =
  let vars = Array.of_list (Nest.loop_vars nest) in
  fun name ->
    let rec find i =
      if i >= Array.length vars then
        invalid_arg
          (Printf.sprintf
             "Iterspace.env_of_point: %s is not a loop variable of nest %s"
             name nest.Nest.name)
      else if vars.(i) = name then point.(i)
      else find (i + 1)
    in
    find 0

let linear nest point =
  let counts = Nest.trip_counts nest in
  let step acc (c, p) = (acc * c) + p in
  List.fold_left step 0 (List.combine counts (Array.to_list point))

let point_of_linear nest n =
  let counts = Array.of_list (Nest.trip_counts nest) in
  let depth = Array.length counts in
  let point = Array.make depth 0 in
  let rest = ref n in
  for d = depth - 1 downto 0 do
    point.(d) <- !rest mod counts.(d);
    rest := !rest / counts.(d)
  done;
  point

let element_linear decl coords =
  let dims = Array.of_list decl.Decl.dims in
  let acc = ref 0 in
  Array.iteri (fun d c -> acc := (!acc * dims.(d)) + c) coords;
  !acc
