type rexpr = Expr.t

let input ?bits name dims = Decl.make ?bits ~storage:Decl.Input name dims
let output ?bits name dims = Decl.make ?bits ~storage:Decl.Output name dims
let local ?bits name dims = Decl.make ?bits ~storage:Decl.Local name dims
let scalar ?bits name = Decl.scalar ?bits name

let idx v = Affine.var v
let cidx c = Affine.const c
let ( +: ) = Affine.add
let ( -: ) = Affine.sub
let ( *: ) = Affine.scale

let at decl index = Expr.ref_ decl index
let ( .%[] ) decl index = Expr.Load (at decl index)

let const c = Expr.Const c
let binary op a b = Expr.Binary (op, a, b)
let ( + ) = binary Op.Add
let ( - ) = binary Op.Sub
let ( * ) = binary Op.Mul
let ( / ) = binary Op.Div
let min_ = binary Op.Min
let max_ = binary Op.Max
let eq = binary Op.Eq
let lt = binary Op.Lt
let abs_ e = Expr.Unary (Op.Abs, e)
let neg e = Expr.Unary (Op.Neg, e)

let ( <-- ) r e = Expr.Assign (r, e)

let nest name ~loops body =
  let add acc (r : Expr.ref_) =
    if List.exists (fun d -> Decl.equal d r.Expr.decl) acc then acc
    else r.Expr.decl :: acc
  in
  let arrays =
    List.rev
      (List.fold_left
         (fun acc s -> List.fold_left add acc (Expr.stmt_refs s))
         [] body)
  in
  let loops = List.map (fun (v, c) -> Nest.loop v c) loops in
  Nest.make ~name ~arrays ~loops ~body
