(** Reference interpreter for nests.

    Executes a nest sequentially over a store of concrete array contents.
    Used as the semantic oracle: the scalar-replacement transform in
    [Srfa_codegen] must not change the values a kernel computes. *)

type store

val store_create : Nest.t -> store
(** All arrays zero-initialised. *)

val store_init : store -> string -> (int array -> int) -> unit
(** [store_init s name f] sets every element of array [name] to [f coords].
    @raise Invalid_argument (naming the array) if the nest declares no
    such array. *)

val read : store -> string -> int array -> int
(** @raise Invalid_argument on an unknown array (named in the message)
    or bad coordinates. *)

val write : store -> string -> int array -> int -> unit
(** Direct element store (used by transformed-program executors).
    @raise Invalid_argument as {!read}. *)

val run : Nest.t -> store -> unit
(** Executes the nest, mutating the store. *)

val run_fresh :
  Nest.t -> init:(string -> int array -> int) -> store
(** Creates a store, initialises [Input] arrays with [init], runs, and
    returns the final store. *)

val equal_array : store -> store -> string -> bool
(** Element-wise comparison of one array in two stores. *)
