type binary = Add | Sub | Mul | Div | Min | Max | Band | Bor | Bxor | Eq | Lt
type unary = Neg | Abs | Bnot

let eval_binary op a b =
  match op with
  | Add -> a + b
  | Sub -> a - b
  | Mul -> a * b
  | Div -> if b = 0 then 0 else a / b
  | Min -> min a b
  | Max -> max a b
  | Band -> a land b
  | Bor -> a lor b
  | Bxor -> a lxor b
  | Eq -> if a = b then 1 else 0
  | Lt -> if a < b then 1 else 0

let eval_unary op a =
  match op with Neg -> -a | Abs -> abs a | Bnot -> 1 - a

let binary_name = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Div -> "div"
  | Min -> "min"
  | Max -> "max"
  | Band -> "and"
  | Bor -> "or"
  | Bxor -> "xor"
  | Eq -> "eq"
  | Lt -> "lt"

let unary_name = function Neg -> "neg" | Abs -> "abs" | Bnot -> "not"

let all_binary = [ Add; Sub; Mul; Div; Min; Max; Band; Bor; Bxor; Eq; Lt ]
let all_unary = [ Neg; Abs; Bnot ]
