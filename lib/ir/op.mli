(** Arithmetic and logic operators of the loop-body language.

    Latencies (in cycles) live in {!Srfa_hw.Latency}; this module only fixes
    the operator vocabulary so the IR does not depend on the hardware
    model. *)

type binary =
  | Add
  | Sub
  | Mul
  | Div
  | Min
  | Max
  | Band  (** bitwise and *)
  | Bor   (** bitwise or *)
  | Bxor  (** bitwise xor *)
  | Eq    (** 1 if equal else 0 *)
  | Lt    (** 1 if less-than else 0 *)

type unary =
  | Neg
  | Abs
  | Bnot  (** bitwise (1-bit) not: [1 - x] on 0/1 values *)

val eval_binary : binary -> int -> int -> int
(** Integer semantics used by the reference interpreter.
    [Div] truncates toward zero; division by zero yields 0 (hardware
    divider convention used by the test oracle). *)

val eval_unary : unary -> int -> int

val binary_name : binary -> string
val unary_name : unary -> string

val all_binary : binary list
val all_unary : unary list
