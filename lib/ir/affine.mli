(** Affine functions of loop index variables.

    An affine expression is [c0 + c1*v1 + ... + cn*vn] where the [vi] are
    loop variable names. These are the only index expressions the reuse
    analysis understands, exactly as in the paper (affine references in
    perfectly nested loops). *)

type t

val const : int -> t

val var : ?coeff:int -> string -> t
(** [var ~coeff v] is [coeff * v]; [coeff] defaults to [1]. *)

val add : t -> t -> t
val sub : t -> t -> t
val scale : int -> t -> t

val constant : t -> int
(** The constant term. *)

val coeff : t -> string -> int
(** [coeff t v] is the coefficient of variable [v] ([0] if absent). *)

val coeffs : t -> (string * int) list
(** Non-zero coefficients, sorted by variable name. *)

val vars : t -> string list
(** Variables with non-zero coefficient, sorted. *)

val is_const : t -> bool

val eval : t -> lookup:(string -> int) -> int
(** Evaluate under an environment. @raise Not_found via [lookup]. *)

val subst : t -> string -> t -> t
(** [subst t v r] replaces variable [v] by the affine expression [r]
    (used by loop transformations such as strip-mining). *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string
