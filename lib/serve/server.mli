(** The allocation daemon: a Unix-domain-socket accept loop speaking the
    JSONL {!Protocol}, backed by a two-tier {!Cache}.

    Concurrency model — single-threaded IO, pooled compute. The accept
    loop owns every file descriptor and every cache mutation. Each
    [select] round drains all complete request lines into one batch:
    tier-2 hits (and rebudget events, stats, shutdown and protocol
    errors) are answered immediately from the loop — rebudget sessions
    are mutable and share their tier-1 entry's scratch, so running
    their steps on the accept thread is what keeps them single-owner
    (DESIGN.md §16); the remaining cold requests are grouped
    by tier-1 key and the groups fanned out through {!Srfa_util.Pool},
    one group per worker call, so concurrent requests for the same
    kernel share one analysis build and one simulator scratch — the
    scratch is not thread-safe, and grouping is what makes each tier-1
    entry single-owner for the duration of a batch. Workers only
    compute; the loop inserts the built entries and reports afterwards
    and writes responses in arrival order.

    Resilience model (DESIGN.md §15) — the loop assumes clients lie and
    workers fail: per-connection buffer caps and read timeouts
    ([E-PROTO-003], connection dropped), cold-compute bound with
    overload shedding ([E-OVERLOAD] + [retry_after_ms]), per-request
    deadlines ([E-DEADLINE], never cached), worker-exception isolation
    ([E-INTERNAL-*] for the one affected request), SIGPIPE ignored
    process-wide, and graceful drain on SIGTERM/SIGINT. All of it is
    drivable deterministically through {!Srfa_util.Fault}. *)

val run :
  ?jobs:int ->
  ?tier1_bytes:int ->
  ?tier2_bytes:int ->
  ?trace:Srfa_util.Trace.sink ->
  ?backlog:int ->
  ?faults:Srfa_util.Fault.t ->
  ?deadline_ms:int ->
  ?max_inflight:int ->
  ?max_buffer:int ->
  ?read_timeout_ms:int ->
  ?signals:bool ->
  ?log:(string -> unit) ->
  socket:string ->
  unit ->
  unit
(** Bind [socket] (unlinking any stale file), serve until a [shutdown]
    request arrives or — with [signals] on — SIGTERM/SIGINT triggers a
    drain (stop accepting, finish the in-flight round, flush stats via
    [log], return), then close every client and remove the socket.
    [jobs] sizes the worker pool (default 1). [faults] arms the
    io.read / io.write / pool.job / cache.insert injection sites
    (default off). [deadline_ms] is the server-wide default deadline
    applied when a request carries none (default: no deadline).
    [max_inflight] bounds cold compute per batch; excess requests are
    shed with [E-OVERLOAD] (default 256). [max_buffer] caps one
    connection's unterminated input (default 1 MiB) and
    [read_timeout_ms] bounds how long a partial line may sit (default
    10 s); either trips [E-PROTO-003] and drops the connection.
    SIGPIPE is ignored process-wide on entry regardless of [signals]. *)

(** A small blocking client, used by the self-test and the bench. *)
module Client : sig
  type t = { fd : Unix.file_descr; ic : in_channel }

  val connect : ?retries:int -> string -> t
  (** Retry while the socket does not exist / refuses connections
      (20 ms apart, default 200 attempts) so callers can connect
      immediately after spawning the daemon. *)

  val send : t -> string -> unit
  val recv : t -> string
  val recv_opt : t -> string option
  (** [None] on EOF (the daemon dropped the connection). *)

  val rpc : t -> string -> string
  val close : t -> unit
end

val self_test : ?jobs:int -> ?log:(string -> unit) -> unit -> bool
(** Spawn a private daemon, run the scripted request mix (cold miss /
    tier-2 hit / analysis reuse / inline source / parse error / unknown
    kernel / malformed JSON with id recovery / guard trip / infeasible
    budget / rebudget event stream with memoized revisits and the
    starved-budget clamp / pipelined batch / stats / shutdown), then
    three more
    private daemons covering the resilience layer: buffer cap + read
    timeout + overload shedding + deadlines, worker isolation under a
    100% pool.job fault plan, and SIGTERM drain. Prints via [log] and
    ends with ["self-test: ok"] iff all checks passed. *)

val chaos :
  ?seed:int -> ?requests:int -> ?jobs:int -> ?log:(string -> unit) ->
  unit -> bool
(** The seeded chaos campaign. Phase one records fault-free reports for
    a deterministic request mix; phase two replays the mix against a
    daemon under an injected fault plan (short reads, dropped writes,
    raising and stalling workers, failing cache inserts) through
    hostile clients (pipelined floods, truncated JSON then disconnect,
    disconnect before reading the response), asserting: the daemon
    never dies, every request gets exactly one response or a clean
    disconnect, every [ok] response is byte-identical to the fault-free
    report, and the injected-fault rate is at least 10% of requests;
    phase three re-verifies every distinct request against the baseline
    while faults stay armed. Prints via [log]; ends with
    ["chaos: ok (...)"] iff clean. Defaults: seed 42, 600 requests. *)
