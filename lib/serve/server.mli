(** The allocation daemon: a Unix-domain-socket accept loop speaking the
    JSONL {!Protocol}, backed by a two-tier {!Cache}.

    Concurrency model — single-threaded IO, pooled compute. The accept
    loop owns every file descriptor and every cache mutation. Each
    [select] round drains all complete request lines into one batch:
    tier-2 hits (and stats/shutdown/protocol errors) are answered
    immediately from the loop; the remaining cold requests are grouped
    by tier-1 key and the groups fanned out through {!Srfa_util.Pool},
    one group per worker call, so concurrent requests for the same
    kernel share one analysis build and one simulator scratch — the
    scratch is not thread-safe, and grouping is what makes each tier-1
    entry single-owner for the duration of a batch. Workers only
    compute; the loop inserts the built entries and reports afterwards
    and writes responses in arrival order. *)

val run :
  ?jobs:int ->
  ?tier1_bytes:int ->
  ?tier2_bytes:int ->
  ?trace:Srfa_util.Trace.sink ->
  ?backlog:int ->
  socket:string ->
  unit ->
  unit
(** Bind [socket] (unlinking any stale file), serve until a [shutdown]
    request arrives, then close every client and remove the socket.
    [jobs] sizes the worker pool (default 1). *)

(** A small blocking client, used by the self-test and the bench. *)
module Client : sig
  type t

  val connect : ?retries:int -> string -> t
  (** Retry while the socket does not exist / refuses connections
      (20 ms apart, default 200 attempts) so callers can connect
      immediately after spawning the daemon. *)

  val send : t -> string -> unit
  val recv : t -> string
  val rpc : t -> string -> string
  val close : t -> unit
end

val self_test : ?jobs:int -> ?log:(string -> unit) -> unit -> bool
(** Spawn a private daemon, run the scripted request mix (cold miss /
    tier-2 hit / analysis reuse / inline source / parse error / unknown
    kernel / malformed JSON / guard trip / infeasible budget / pipelined
    batch / stats / shutdown), check every response and join the daemon.
    Prints via [log] and ends with ["self-test: ok"] iff all checks
    passed. *)
