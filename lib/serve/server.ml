module Diag = Srfa_util.Diag
module Trace = Srfa_util.Trace
module Pool = Srfa_util.Pool

(* ---- accept loop -------------------------------------------------------

   Single-threaded IO, pooled compute. The accept loop owns every file
   descriptor and every cache mutation; each select round drains all
   complete request lines into one batch, answers what the cache can
   answer, groups the rest by tier-1 key and fans the groups out through
   Srfa_util.Pool — so concurrent requests for the same kernel share one
   analysis build and one simulator scratch (single domain per group,
   exactly the ownership rule Flow.sweep uses), while distinct kernels
   run on distinct domains. Responses go out in arrival order. *)

type client = {
  fd : Unix.file_descr;
  buf : Buffer.t;  (* bytes read but not yet terminated by '\n' *)
}

(* One per-batch unit of pooled work: every cold request that resolved
   to the same tier-1 key. [entry] is the resident tier-1 value when the
   accept loop found one; otherwise the worker builds it and the accept
   loop inserts it afterwards. *)
type job = {
  t1 : string;
  entry : Cache.entry option;
  items : (int * string option * Cache.resolved * string) list;
      (* (slot, request id, resolved, tier-2 key) in arrival order *)
}

type item_result = {
  slot : int;
  rid : string option;
  t2 : string;
  outcome : (Srfa_estimate.Report.t * Diag.t list, Diag.t list) result;
  status : Cache.status;
  fresh : bool;  (* computed this batch: insert into tier 2 *)
}

let run_job job =
  let entry =
    match job.entry with
    | Some e -> Ok e
    | None -> (
      match job.items with
      | (_, _, r, _) :: _ -> (
        match Cache.build_entry r ~t1:job.t1 with
        | e -> Ok e
        | exception exn -> Error [ Diag.of_exn exn ])
      | [] -> assert false)
  in
  match entry with
  | Error diags ->
    ( None,
      List.map
        (fun (slot, rid, _, t2) ->
          { slot; rid; t2; outcome = Error diags; status = `Miss; fresh = false })
        job.items )
  | Ok entry ->
    let resident = Option.is_some job.entry in
    let memo = Hashtbl.create 4 in
    let results =
      List.mapi
        (fun i (slot, rid, r, t2) ->
          match Hashtbl.find_opt memo t2 with
          | Some (report, warnings) ->
            (* A within-batch duplicate: served from the report computed
               a moment ago, physically the same value — a hit. *)
            {
              slot;
              rid;
              t2;
              outcome = Ok (report, warnings);
              status = `Hit;
              fresh = false;
            }
          | None ->
            let status = if resident || i > 0 then `Analysis else `Miss in
            let outcome = Cache.compute r entry in
            (match outcome with
            | Ok (report, warnings) -> Hashtbl.add memo t2 (report, warnings)
            | Error _ -> ());
            { slot; rid; t2; outcome; status; fresh = true })
        job.items
    in
    ((if resident then None else Some entry), results)

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let rec go off =
    if off < n then
      match Unix.write fd b off (n - off) with
      | written -> go (off + written)
      | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> ()
  in
  go 0

(* Process one batch of complete request lines. Returns the responses in
   arrival order plus whether a shutdown was requested. *)
let process_batch ~cache ~pool (lines : (client * string) list) =
  let stop = ref false in
  let slots = Array.make (List.length lines) "" in
  let jobs : (string, job) Hashtbl.t = Hashtbl.create 8 in
  let order = ref [] in
  List.iteri
    (fun slot (_, line) ->
      match Protocol.parse_request line with
      | Error diag -> slots.(slot) <- Protocol.response_error [ diag ]
      | Ok req -> (
        let rid = req.Protocol.id in
        match req.Protocol.op with
        | Protocol.Stats ->
          slots.(slot) <- Protocol.response_stats ?id:rid (Cache.stats cache)
        | Protocol.Shutdown ->
          stop := true;
          slots.(slot) <- Protocol.response_bye ?id:rid ()
        | Protocol.Allocate -> (
          match Cache.resolve req with
          | Error diags -> slots.(slot) <- Protocol.response_error ?id:rid diags
          | Ok r -> (
            let t1 = Cache.tier1_key ~device:r.Cache.device r.Cache.source in
            let t2 =
              Cache.tier2_key ~tier1:t1 ~algorithm:r.Cache.algorithm
                ~budget:r.Cache.budget ~cut_work_limit:r.Cache.cut_work_limit
            in
            match Cache.find_report cache t2 with
            | Some v ->
              slots.(slot) <-
                Protocol.response_ok ?id:rid ~cache:`Hit
                  ~warnings:v.Cache.warnings v.Cache.report
            | None ->
              let item = (slot, rid, r, t2) in
              (match Hashtbl.find_opt jobs t1 with
              | Some job ->
                Hashtbl.replace jobs t1 { job with items = job.items @ [ item ] }
              | None ->
                order := t1 :: !order;
                Hashtbl.replace jobs t1
                  { t1; entry = Cache.find_entry cache t1; items = [ item ] })))))
    lines;
  let jobs_arr =
    Array.of_list (List.rev_map (fun t1 -> Hashtbl.find jobs t1) !order)
  in
  let outputs = Pool.map pool run_job jobs_arr in
  Array.iter
    (fun (built, results) ->
      Option.iter (Cache.insert_entry cache) built;
      List.iter
        (fun { slot; rid; t2; outcome; status; fresh } ->
          match outcome with
          | Ok (report, warnings) ->
            if fresh then
              Cache.insert_report cache t2 { Cache.report; warnings };
            slots.(slot) <-
              Protocol.response_ok ?id:rid ~cache:status ~warnings report
          | Error diags -> slots.(slot) <- Protocol.response_error ?id:rid diags)
        results)
    outputs;
  (slots, !stop)

let run ?(jobs = 1) ?tier1_bytes ?tier2_bytes ?(trace = Trace.null)
    ?(backlog = 64) ~socket () =
  (try Unix.unlink socket with Unix.Unix_error _ -> ());
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listen_fd (Unix.ADDR_UNIX socket);
  Unix.listen listen_fd backlog;
  let cache = Cache.create ?tier1_bytes ?tier2_bytes ~trace () in
  let clients = ref [] in
  let drop c =
    clients := List.filter (fun c' -> c'.fd != c.fd) !clients;
    try Unix.close c.fd with Unix.Unix_error _ -> ()
  in
  let finally () =
    List.iter (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ())
      !clients;
    (try Unix.close listen_fd with Unix.Unix_error _ -> ());
    try Unix.unlink socket with Unix.Unix_error _ -> ()
  in
  let chunk = Bytes.create 65536 in
  Pool.with_pool ~jobs (fun pool ->
      let stop = ref false in
      while not !stop do
        let fds = listen_fd :: List.map (fun c -> c.fd) !clients in
        match Unix.select fds [] [] (-1.0) with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
        | readable, _, _ ->
          if List.memq listen_fd readable then begin
            match Unix.accept listen_fd with
            | fd, _ -> clients := !clients @ [ { fd; buf = Buffer.create 256 } ]
            | exception Unix.Unix_error _ -> ()
          end;
          (* Drain every readable client, splitting complete lines off
             its buffer; partial lines wait for the next round. *)
          let batch = ref [] in
          List.iter
            (fun c ->
              if List.memq c.fd readable then
                match Unix.read c.fd chunk 0 (Bytes.length chunk) with
                | exception Unix.Unix_error _ -> drop c
                | 0 -> drop c
                | n ->
                  Buffer.add_subbytes c.buf chunk 0 n;
                  let data = Buffer.contents c.buf in
                  Buffer.clear c.buf;
                  let parts = String.split_on_char '\n' data in
                  let rec split_last = function
                    | [ last ] -> ([], last)
                    | x :: rest ->
                      let done_, last = split_last rest in
                      (x :: done_, last)
                    | [] -> ([], "")
                  in
                  let complete, partial = split_last parts in
                  Buffer.add_string c.buf partial;
                  List.iter
                    (fun line ->
                      if String.trim line <> "" then
                        batch := (c, line) :: !batch)
                    complete)
            (List.filter (fun c -> c.fd != listen_fd) !clients);
          let lines = List.rev !batch in
          if lines <> [] then begin
            let slots, shutdown = process_batch ~cache ~pool lines in
            List.iteri
              (fun i (c, _) -> write_all c.fd (slots.(i) ^ "\n"))
              lines;
            if shutdown then stop := true
          end
      done);
  finally ()

(* ---- client ------------------------------------------------------------ *)

module Client = struct
  type t = { fd : Unix.file_descr; ic : in_channel }

  let connect ?(retries = 200) path =
    let rec go attempt =
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      match Unix.connect fd (Unix.ADDR_UNIX path) with
      | () -> { fd; ic = Unix.in_channel_of_descr fd }
      | exception
          Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _)
        when attempt < retries ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        Unix.sleepf 0.01;
        go (attempt + 1)
    in
    go 0

  let send t line = write_all t.fd (line ^ "\n")

  let recv t = input_line t.ic

  let rpc t line =
    send t line;
    recv t

  let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()
end

(* ---- self-test ---------------------------------------------------------

   Spawn the daemon (own domain, private socket), fire a scripted
   request mix covering the cold / analysis-reuse / hit paths, an inline
   parse error, a guard trip (W-GUARD-CUT via a cut_work_limit override),
   an infeasible budget and the protocol error codes, check every
   response, and shut the daemon down. *)

let self_test ?(jobs = 2) ?(log = ignore) () =
  let socket =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "srfa-serve-%d.sock" (Unix.getpid ()))
  in
  let daemon = Domain.spawn (fun () -> run ~jobs ~socket ()) in
  let client = Client.connect socket in
  let failures = ref [] in
  let check name ok =
    log (Printf.sprintf "self-test: %-32s %s" name (if ok then "ok" else "FAIL"));
    if not ok then failures := name :: !failures
  in
  let str_member key json =
    match Protocol.member key json with
    | Some (Protocol.Str s) -> Some s
    | _ -> None
  in
  let response line = Protocol.parse_json (Client.rpc client line) in
  let has_code code json =
    match Protocol.member "diagnostics" json with
    | Some (Protocol.Arr ds) ->
      List.exists (fun d -> str_member "code" d = Some code) ds
    | _ -> false
  in
  let warning_code code json =
    match Protocol.member "warnings" json with
    | Some (Protocol.Arr ws) ->
      List.exists (fun w -> str_member "code" w = Some code) ws
    | _ -> false
  in
  (* 1. cold allocate of a named kernel *)
  let r1 = response {|{"id": "c1", "kernel": "fir", "budget": 64}|} in
  check "fir cold is a miss"
    (str_member "status" r1 = Some "ok"
    && str_member "cache" r1 = Some "miss"
    && str_member "id" r1 = Some "c1");
  (* 2. identical request: tier-2 hit with the identical report *)
  let raw2 = Client.rpc client {|{"id": "c2", "kernel": "fir", "budget": 64}|} in
  let r2 = Protocol.parse_json raw2 in
  check "fir repeat is a hit" (str_member "cache" r2 = Some "hit");
  check "hit serves the same report"
    (Protocol.member "report" r1 = Protocol.member "report" r2);
  (* 3. same kernel, new budget: analysis tier reused *)
  let r3 = response {|{"kernel": "fir", "budget": 32}|} in
  check "budget ladder reuses analysis"
    (str_member "cache" r3 = Some "analysis");
  (* 4. inline source allocates like the named kernel *)
  let source =
    Srfa_frontend.Parser.canonical_source (Srfa_kernels.Kernels.example ())
  in
  let r4 =
    response
      (Printf.sprintf {|{"source": "%s", "algorithm": "cpa-ra+"}|}
         (String.concat "\\n" (String.split_on_char '\n' source)))
  in
  check "inline source allocates" (str_member "status" r4 = Some "ok");
  (* 5. a parse error comes back as an inline coded diagnostic *)
  let r5 = response {|{"id": "bad", "source": "kernel oops {"}|} in
  check "parse error is E-PARSE-001"
    (str_member "status" r5 = Some "error" && has_code "E-PARSE-001" r5);
  (* 6. unknown kernel name: protocol field error *)
  let r6 = response {|{"kernel": "no-such-kernel"}|} in
  check "unknown kernel is E-PROTO-002" (has_code "E-PROTO-002" r6);
  (* 7. malformed JSON: protocol error *)
  let r7 = response "this is not json" in
  check "malformed line is E-PROTO-001" (has_code "E-PROTO-001" r7);
  (* 8. guard trip: a starved cut budget degrades CPA-RA with W-GUARD-CUT *)
  let r8 = response {|{"kernel": "bic", "cut_work_limit": 1}|} in
  check "starved cut guard warns W-GUARD-CUT"
    (str_member "status" r8 = Some "ok" && warning_code "W-GUARD-CUT" r8);
  (* 9. infeasible budget: coded error, not a crash *)
  let r9 = response {|{"kernel": "fir", "budget": 1}|} in
  check "infeasible budget is E-BUDGET-001" (has_code "E-BUDGET-001" r9);
  (* 10. pipelined batch: two requests in one write, answered in order *)
  Client.send client
    {|{"id": "b1", "kernel": "mat", "budget": 16}|};
  Client.send client
    {|{"id": "b2", "kernel": "mat", "budget": 16, "algorithm": "fr-ra"}|};
  let rb1 = Protocol.parse_json (Client.recv client) in
  let rb2 = Protocol.parse_json (Client.recv client) in
  check "batched responses keep order"
    (str_member "id" rb1 = Some "b1" && str_member "id" rb2 = Some "b2");
  check "batched same-kernel requests share the analysis"
    (str_member "cache" rb1 = Some "miss"
    && str_member "cache" rb2 = Some "analysis");
  (* 11. stats reflect the mix *)
  let rs = response {|{"op": "stats"}|} in
  let stat key =
    match Protocol.member "stats" rs with
    | Some s -> (
      match Protocol.member key s with Some (Protocol.Int i) -> i | _ -> -1)
    | None -> -1
  in
  check "stats count the hits" (stat "tier2_hits" >= 1 && stat "served" >= 8);
  (* 12. shutdown *)
  let bye = response {|{"op": "shutdown"}|} in
  check "shutdown answers bye" (Protocol.member "bye" bye = Some (Protocol.Bool true));
  Client.close client;
  Domain.join daemon;
  match !failures with
  | [] ->
    log "self-test: ok";
    true
  | names ->
    log
      (Printf.sprintf "self-test: FAILED (%s)"
         (String.concat ", " (List.rev names)));
    false
