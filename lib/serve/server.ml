module Diag = Srfa_util.Diag
module Trace = Srfa_util.Trace
module Pool = Srfa_util.Pool
module Fault = Srfa_util.Fault
module Prng = Srfa_util.Prng

(* ---- accept loop -------------------------------------------------------

   Single-threaded IO, pooled compute. The accept loop owns every file
   descriptor and every cache mutation; each select round drains all
   complete request lines into one batch, answers what the cache can
   answer, groups the rest by tier-1 key and fans the groups out through
   Srfa_util.Pool — so concurrent requests for the same kernel share one
   analysis build and one simulator scratch (single domain per group,
   exactly the ownership rule Flow.sweep uses), while distinct kernels
   run on distinct domains. Responses go out in arrival order.

   Resilience posture (DESIGN.md §15): the loop assumes clients lie and
   workers fail. Per-connection input buffers are capped and partial
   lines time out (E-PROTO-003, connection dropped); cold compute beyond
   the in-flight bound is shed with E-OVERLOAD instead of queued; every
   request carries an effective deadline and trips E-DEADLINE (never
   cached) when it is missed; a raising worker job is isolated to
   E-INTERNAL-* for its own requests; SIGPIPE is ignored process-wide
   and any failed write drops only that connection; SIGTERM/SIGINT
   (when [signals] is on) drain: stop accepting, finish the in-flight
   round, flush stats, return. The Fault registry injects failure at
   io.read / io.write / pool.job / cache.insert so all of the above is
   testable deterministically. *)

type client = {
  fd : Unix.file_descr;
  buf : Buffer.t;  (* bytes read but not yet terminated by '\n' *)
  mutable last : float;  (* last byte received; drives the read timeout *)
}

type item = {
  slot : int;
  rid : string option;
  resolved : Cache.resolved;
  t2 : string;
  arrival : float;
  deadline_ms : int option;
      (* effective deadline: the request field, else the server default *)
}

(* One per-batch unit of pooled work: every cold request that resolved
   to the same tier-1 key. [entry] is the resident tier-1 value when the
   accept loop found one; otherwise the worker builds it and the accept
   loop inserts it afterwards. *)
type job = {
  t1 : string;
  entry : Cache.entry option;
  items : item list;  (* arrival order *)
}

type item_result = {
  it : item;
  outcome : (Srfa_estimate.Report.t * Diag.t list, Diag.t list) result;
  status : Cache.status;
  fresh : bool;  (* computed this batch: insert into tier 2 *)
}

let expired ~now it =
  match it.deadline_ms with
  | Some ms when now >= it.arrival +. (float_of_int ms /. 1000.) ->
    Some
      (Protocol.deadline_error ~deadline_ms:ms
         ~elapsed_ms:(int_of_float ((now -. it.arrival) *. 1000.)))
  | _ -> None

let run_job job =
  let entry =
    match job.entry with
    | Some e -> Ok e
    | None -> (
      match job.items with
      | it :: _ -> (
        match Cache.build_entry it.resolved ~t1:job.t1 with
        | e -> Ok e
        | exception exn -> Error [ Diag.of_exn exn ])
      | [] -> assert false)
  in
  match entry with
  | Error diags ->
    ( None,
      List.map
        (fun it -> { it; outcome = Error diags; status = `Miss; fresh = false })
        job.items )
  | Ok entry ->
    let resident = Option.is_some job.entry in
    let memo = Hashtbl.create 4 in
    let results =
      List.mapi
        (fun i it ->
          match expired ~now:(Unix.gettimeofday ()) it with
          | Some diag ->
            (* Already past its deadline: answer without computing. The
               accept loop re-checks after the batch, so late-but-
               computed results trip there too. *)
            { it; outcome = Error [ diag ]; status = `Miss; fresh = false }
          | None -> (
            match Hashtbl.find_opt memo it.t2 with
            | Some (report, warnings) ->
              (* A within-batch duplicate: served from the report computed
                 a moment ago, physically the same value — a hit. *)
              {
                it;
                outcome = Ok (report, warnings);
                status = `Hit;
                fresh = false;
              }
            | None ->
              let status = if resident || i > 0 then `Analysis else `Miss in
              let outcome = Cache.compute it.resolved entry in
              (match outcome with
              | Ok (report, warnings) -> Hashtbl.add memo it.t2 (report, warnings)
              | Error _ -> ());
              { it; outcome; status; fresh = true }))
        job.items
    in
    ((if resident then None else Some entry), results)

(* The pool.job fault site plus the isolation boundary: whatever a job
   raises — injected or real — becomes E-INTERNAL-* for that job's own
   requests; the pool, the daemon and the cache stay live. Pool.map
   never sees an exception because this wrapper is the function it
   runs. *)
let isolated_job ~faults job =
  try
    (match Fault.check faults "pool.job" with
    | None -> ()
    | Some (Fault.Delay ms) -> Unix.sleepf (float_of_int ms /. 1000.)
    | Some Fault.Raise -> raise (Fault.Injected "pool.job")
    | Some (Fault.Error | Fault.Short_read) ->
      failwith "fault injection: pool.job");
    run_job job
  with exn ->
    let diag = Diag.of_exn exn in
    ( None,
      List.map
        (fun it -> { it; outcome = Error [ diag ]; status = `Miss; fresh = false })
        job.items )

(* Write the whole string; false on any failure (EPIPE, ECONNRESET,
   EBADF, an injected io.write fault, ...) so the caller can drop just
   that connection. An injected Short_read here writes a prefix and then
   "fails" — the client observes a response truncated mid-line followed
   by EOF, the disconnect-mid-response shape the chaos campaign needs. *)
let write_all ?(faults = Fault.off) fd s =
  let raw s =
    let b = Bytes.of_string s in
    let n = Bytes.length b in
    let rec go off =
      if off >= n then true
      else
        match Unix.write fd b off (n - off) with
        | written -> go (off + written)
        | exception Unix.Unix_error _ -> false
    in
    go 0
  in
  match Fault.check faults "io.write" with
  | None -> raw s
  | Some (Fault.Delay ms) ->
    Unix.sleepf (float_of_int ms /. 1000.);
    raw s
  | Some (Fault.Error | Fault.Raise) -> false
  | Some Fault.Short_read ->
    ignore (raw (String.sub s 0 (String.length s / 2)));
    false

type counters = {
  mutable shed : int;  (* E-OVERLOAD responses *)
  mutable deadline_trips : int;  (* E-DEADLINE responses *)
  mutable worker_faults : int;  (* jobs isolated to E-INTERNAL-* *)
  mutable abuse_drops : int;  (* E-PROTO-003 connection drops *)
}

(* Process one batch of complete request lines. Returns the responses in
   arrival order plus whether a shutdown was requested. *)
let process_batch ~cache ~pool ~faults ~counters ~stats ~default_deadline_ms
    ~max_inflight (lines : (client * string * float) list) =
  let stop = ref false in
  let slots = Array.make (List.length lines) "" in
  let jobs : (string, job) Hashtbl.t = Hashtbl.create 8 in
  let order = ref [] in
  let inflight = ref 0 in
  List.iteri
    (fun slot (_, line, arrival) ->
      match Protocol.parse_request line with
      | Error diag ->
        (* Echo the id when the malformed line still reveals one, so a
           pipelining client can correlate the failure. *)
        slots.(slot) <-
          Protocol.response_error ?id:(Protocol.recover_id line) [ diag ]
      | Ok req -> (
        let rid = req.Protocol.id in
        match req.Protocol.op with
        | Protocol.Stats ->
          slots.(slot) <- Protocol.response_stats ?id:rid (stats ())
        | Protocol.Shutdown ->
          stop := true;
          slots.(slot) <- Protocol.response_bye ?id:rid ()
        | Protocol.Rebudget -> (
          (* Answered inline on the accept thread: a step against a warm
             session is engine work on a handful of entries, far cheaper
             than a pooled cold compute, and inline execution is what
             makes the mutable session single-owner by construction. *)
          match Cache.resolve req with
          | Error diags -> slots.(slot) <- Protocol.response_error ?id:rid diags
          | Ok r -> (
            let stream = Option.value req.Protocol.stream ~default:"default" in
            match Cache.rebudget cache r ~stream with
            | Error diags -> slots.(slot) <- Protocol.response_error ?id:rid diags
            | Ok (step, status) ->
              let rb =
                {
                  Protocol.rb_requested = step.Srfa_core.Flow.Core.requested;
                  rb_effective = step.Srfa_core.Flow.Core.effective;
                  rb_clamped = step.Srfa_core.Flow.Core.clamped;
                  rb_freed = step.Srfa_core.Flow.Core.freed;
                  rb_respent = step.Srfa_core.Flow.Core.respent;
                  rb_memoized = step.Srfa_core.Flow.Core.memoized;
                }
              in
              slots.(slot) <-
                Protocol.response_ok ?id:rid ~rebudget:rb ~cache:status
                  ~warnings:step.Srfa_core.Flow.Core.warnings
                  step.Srfa_core.Flow.Core.report))
        | Protocol.Explore -> (
          (* Also inline on the accept thread: one frontier is a bounded
             batch of small allocations, and the frontier tier (like the
             session store) is accept-thread-owned. A warm space spec is
             a pure string lookup. *)
          match Cache.resolve req with
          | Error diags -> slots.(slot) <- Protocol.response_error ?id:rid diags
          | Ok r -> (
            match Cache.space_of_request req with
            | Error diags ->
              slots.(slot) <- Protocol.response_error ?id:rid diags
            | Ok (space, spec) -> (
              match Cache.explore cache r ~space ~spec with
              | Error diags ->
                slots.(slot) <- Protocol.response_error ?id:rid diags
              | Ok (v, status) ->
                slots.(slot) <-
                  Protocol.response_explore ?id:rid
                    ~cache:(status :> [ `Hit | `Analysis | `Miss ])
                    ~warnings:v.Cache.explore_warnings
                    ~stats:v.Cache.explore_stats v.Cache.frontier)))
        | Protocol.Allocate -> (
          match Cache.resolve req with
          | Error diags -> slots.(slot) <- Protocol.response_error ?id:rid diags
          | Ok r -> (
            let t1 = Cache.tier1_key ~device:r.Cache.device r.Cache.source in
            let t2 =
              Cache.tier2_key ~tier1:t1 ~algorithm:r.Cache.algorithm
                ~budget:r.Cache.budget ~cut_work_limit:r.Cache.cut_work_limit
            in
            match Cache.find_report cache t2 with
            | Some v ->
              slots.(slot) <-
                Protocol.response_ok ?id:rid ~cache:`Hit
                  ~warnings:v.Cache.warnings v.Cache.report
            | None ->
              (* The in-flight bound counts cold compute only — hits,
                 stats and shutdown stay cheap and always answered. *)
              if !inflight >= max_inflight then begin
                counters.shed <- counters.shed + 1;
                let retry_after_ms = 25 * (1 + (!inflight / max_inflight)) in
                slots.(slot) <-
                  Protocol.response_error ?id:rid
                    [ Protocol.overload_error ~retry_after_ms ]
              end
              else begin
                incr inflight;
                let deadline_ms =
                  match req.Protocol.deadline_ms with
                  | Some _ as d -> d
                  | None -> default_deadline_ms
                in
                let item =
                  { slot; rid; resolved = r; t2; arrival; deadline_ms }
                in
                match Hashtbl.find_opt jobs t1 with
                | Some job ->
                  Hashtbl.replace jobs t1
                    { job with items = job.items @ [ item ] }
                | None ->
                  order := t1 :: !order;
                  Hashtbl.replace jobs t1
                    { t1; entry = Cache.find_entry cache t1; items = [ item ] }
              end))))
    lines;
  let jobs_arr =
    Array.of_list (List.rev_map (fun t1 -> Hashtbl.find jobs t1) !order)
  in
  let outputs = Pool.map pool (isolated_job ~faults) jobs_arr in
  Array.iter
    (fun (built, results) ->
      Option.iter (Cache.insert_entry cache) built;
      List.iter
        (fun { it; outcome; status; fresh } ->
          match expired ~now:(Unix.gettimeofday ()) it with
          | Some diag ->
            (* Tripped before or during compute: E-DEADLINE, and the
               late result is never cached. *)
            counters.deadline_trips <- counters.deadline_trips + 1;
            slots.(it.slot) <- Protocol.response_error ?id:it.rid [ diag ]
          | None -> (
            match outcome with
            | Ok (report, warnings) ->
              if fresh then
                Cache.insert_report cache it.t2 { Cache.report; warnings };
              slots.(it.slot) <-
                Protocol.response_ok ?id:it.rid ~cache:status ~warnings report
            | Error diags ->
              if List.exists (fun d -> d.Diag.severity = Diag.Fatal) diags then
                counters.worker_faults <- counters.worker_faults + 1;
              slots.(it.slot) <- Protocol.response_error ?id:it.rid diags))
        results)
    outputs;
  (slots, !stop)

let ignore_sigpipe () =
  try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
  with Invalid_argument _ | Sys_error _ -> ()

let run ?(jobs = 1) ?tier1_bytes ?tier2_bytes ?(trace = Trace.null)
    ?(backlog = 64) ?(faults = Fault.off) ?deadline_ms ?(max_inflight = 256)
    ?(max_buffer = 1 lsl 20) ?(read_timeout_ms = 10_000) ?(signals = false)
    ?(log = ignore) ~socket () =
  (* Satellite of the resilience layer: one unguarded write to a closed
     socket must never kill the daemon, so SIGPIPE is off process-wide
     (every write failure is then a Unix_error the write site handles). *)
  ignore_sigpipe ();
  let draining = ref false in
  let restore_signals =
    if signals then begin
      let drain = Sys.Signal_handle (fun _ -> draining := true) in
      let old_term = Sys.signal Sys.sigterm drain in
      let old_int = Sys.signal Sys.sigint drain in
      fun () ->
        Sys.set_signal Sys.sigterm old_term;
        Sys.set_signal Sys.sigint old_int
    end
    else Fun.id
  in
  (try Unix.unlink socket with Unix.Unix_error _ -> ());
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listen_fd (Unix.ADDR_UNIX socket);
  Unix.listen listen_fd backlog;
  let cache = Cache.create ?tier1_bytes ?tier2_bytes ~trace ~faults () in
  let counters =
    { shed = 0; deadline_trips = 0; worker_faults = 0; abuse_drops = 0 }
  in
  let full_stats () =
    Cache.stats cache
    @ [
        ("shed", counters.shed);
        ("deadline_trips", counters.deadline_trips);
        ("worker_faults", counters.worker_faults);
        ("abuse_drops", counters.abuse_drops);
      ]
    @ Fault.stats faults
  in
  let clients = ref [] in
  (* A dropped connection is detached from the select set now but its fd
     is closed only after the round's write phase: closing immediately
     would let a concurrent connect() reuse the fd number and receive
     another client's responses. *)
  let doomed = ref [] in
  let doom c =
    clients := List.filter (fun c' -> c'.fd != c.fd) !clients;
    if not (List.memq c !doomed) then doomed := c :: !doomed
  in
  let reap () =
    List.iter (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ())
      !doomed;
    doomed := []
  in
  let finally () =
    reap ();
    List.iter (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ())
      !clients;
    (try Unix.close listen_fd with Unix.Unix_error _ -> ());
    (try Unix.unlink socket with Unix.Unix_error _ -> ());
    restore_signals ()
  in
  let chunk = Bytes.create 65536 in
  Pool.with_pool ~jobs (fun pool ->
      let stop = ref false in
      while not !stop do
        let fds =
          if !draining then List.map (fun c -> c.fd) !clients
          else listen_fd :: List.map (fun c -> c.fd) !clients
        in
        (* Block forever only when nothing needs a periodic look: no
           drain signal to notice, no partial line to time out. *)
        let timeout =
          if !draining then 0.0
          else if
            signals || Fault.enabled faults
            || List.exists (fun c -> Buffer.length c.buf > 0) !clients
          then 0.25
          else -1.0
        in
        match Unix.select fds [] [] timeout with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
        | readable, _, _ ->
          let now = Unix.gettimeofday () in
          if (not !draining) && List.memq listen_fd readable then begin
            match Unix.accept listen_fd with
            | fd, _ ->
              clients :=
                !clients @ [ { fd; buf = Buffer.create 256; last = now } ]
            | exception Unix.Unix_error _ -> ()
          end;
          let batch = ref [] in
          let respond_abuse c diag =
            counters.abuse_drops <- counters.abuse_drops + 1;
            let id = Protocol.recover_id (Buffer.contents c.buf) in
            ignore
              (write_all ~faults c.fd (Protocol.response_error ?id [ diag ] ^ "\n"));
            doom c
          in
          (* Drain every readable client, splitting complete lines off
             its buffer; partial lines wait for the next round. *)
          List.iter
            (fun c ->
              if List.memq c.fd readable then
                match Fault.check faults "io.read" with
                | Some (Fault.Delay _) -> ()  (* the bytes arrive late *)
                | Some (Fault.Error | Fault.Raise) -> doom c  (* read error *)
                | (None | Some Fault.Short_read) as injected -> (
                  let cap =
                    match injected with
                    | Some Fault.Short_read -> 7
                    | _ -> Bytes.length chunk
                  in
                  match Unix.read c.fd chunk 0 cap with
                  | exception
                      Unix.Unix_error
                        ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
                    ->
                    ()
                  | exception Unix.Unix_error _ -> doom c
                  | 0 -> doom c
                  | n ->
                    c.last <- now;
                    Buffer.add_subbytes c.buf chunk 0 n;
                    let data = Buffer.contents c.buf in
                    Buffer.clear c.buf;
                    let parts = String.split_on_char '\n' data in
                    let rec split_last = function
                      | [ last ] -> ([], last)
                      | x :: rest ->
                        let done_, last = split_last rest in
                        (x :: done_, last)
                      | [] -> ([], "")
                    in
                    let complete, partial = split_last parts in
                    Buffer.add_string c.buf partial;
                    List.iter
                      (fun line ->
                        if String.trim line <> "" then
                          batch := (c, line, now) :: !batch)
                      complete;
                    if Buffer.length c.buf > max_buffer then
                      respond_abuse c
                        (Protocol.abuse_error
                           (Printf.sprintf
                              "request line exceeds the %d-byte buffer cap"
                              max_buffer))))
            !clients;
          (* A connection holding a partial line for too long is a slow
             or half-writing client: answer E-PROTO-003 and drop it so
             it cannot pin buffer space or linger forever. *)
          List.iter
            (fun c ->
              if
                Buffer.length c.buf > 0
                && now -. c.last > float_of_int read_timeout_ms /. 1000.
              then
                respond_abuse c
                  (Protocol.abuse_error
                     (Printf.sprintf
                        "no newline within %d ms; dropping the connection"
                        read_timeout_ms)))
            !clients;
          let lines = List.rev !batch in
          if lines <> [] then begin
            let slots, shutdown =
              process_batch ~cache ~pool ~faults ~counters ~stats:full_stats
                ~default_deadline_ms:deadline_ms ~max_inflight lines
            in
            List.iteri
              (fun i (c, _, _) ->
                if not (List.memq c !doomed) then
                  if not (write_all ~faults c.fd (slots.(i) ^ "\n")) then
                    doom c)
              lines;
            if shutdown then stop := true
          end;
          reap ();
          if !draining then begin
            (* The in-flight round is finished and nothing new is being
               accepted: flush the stats and leave. *)
            log
              (Printf.sprintf "srfa-serve: drained (%s)"
                 (String.concat ", "
                    (List.map
                       (fun (k, v) -> Printf.sprintf "%s=%d" k v)
                       (full_stats ()))));
            stop := true
          end
      done);
  finally ()

(* ---- client ------------------------------------------------------------ *)

module Client = struct
  type t = { fd : Unix.file_descr; ic : in_channel }

  let connect ?(retries = 200) path =
    let rec go attempt =
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      match Unix.connect fd (Unix.ADDR_UNIX path) with
      | () -> { fd; ic = Unix.in_channel_of_descr fd }
      | exception
          Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _)
        when attempt < retries ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        Unix.sleepf 0.01;
        go (attempt + 1)
    in
    go 0

  let send t line = ignore (write_all t.fd (line ^ "\n"))

  let recv t = input_line t.ic

  let recv_opt t = match input_line t.ic with
    | line -> Some line
    | exception End_of_file -> None

  let rpc t line =
    send t line;
    recv t

  let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()
end

(* ---- self-test ---------------------------------------------------------

   Spawn the daemon (own domain, private socket), fire a scripted
   request mix covering the cold / analysis-reuse / hit paths, an inline
   parse error, a guard trip (W-GUARD-CUT via a cut_work_limit override),
   an infeasible budget and the protocol error codes, check every
   response, and shut the daemon down. Three further private daemons
   check the resilience layer: abuse caps / overload / deadlines, worker
   isolation under a 100% pool.job fault plan, and SIGTERM drain. *)

let private_socket tag =
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "srfa-%s-%d.sock" tag (Unix.getpid ()))

let self_test ?(jobs = 2) ?(log = ignore) () =
  let socket = private_socket "serve" in
  let daemon = Domain.spawn (fun () -> run ~jobs ~socket ()) in
  let client = Client.connect socket in
  let failures = ref [] in
  let check name ok =
    log (Printf.sprintf "self-test: %-32s %s" name (if ok then "ok" else "FAIL"));
    if not ok then failures := name :: !failures
  in
  let str_member key json =
    match Protocol.member key json with
    | Some (Protocol.Str s) -> Some s
    | _ -> None
  in
  let response line = Protocol.parse_json (Client.rpc client line) in
  let has_code code json =
    match Protocol.member "diagnostics" json with
    | Some (Protocol.Arr ds) ->
      List.exists (fun d -> str_member "code" d = Some code) ds
    | _ -> false
  in
  let warning_code code json =
    match Protocol.member "warnings" json with
    | Some (Protocol.Arr ws) ->
      List.exists (fun w -> str_member "code" w = Some code) ws
    | _ -> false
  in
  (* 1. cold allocate of a named kernel *)
  let r1 = response {|{"id": "c1", "kernel": "fir", "budget": 64}|} in
  check "fir cold is a miss"
    (str_member "status" r1 = Some "ok"
    && str_member "cache" r1 = Some "miss"
    && str_member "id" r1 = Some "c1");
  (* 2. identical request: tier-2 hit with the identical report *)
  let raw2 = Client.rpc client {|{"id": "c2", "kernel": "fir", "budget": 64}|} in
  let r2 = Protocol.parse_json raw2 in
  check "fir repeat is a hit" (str_member "cache" r2 = Some "hit");
  check "hit serves the same report"
    (Protocol.member "report" r1 = Protocol.member "report" r2);
  (* 3. same kernel, new budget: analysis tier reused *)
  let r3 = response {|{"kernel": "fir", "budget": 32}|} in
  check "budget ladder reuses analysis"
    (str_member "cache" r3 = Some "analysis");
  (* 4. inline source allocates like the named kernel *)
  let source =
    Srfa_frontend.Parser.canonical_source (Srfa_kernels.Kernels.example ())
  in
  let r4 =
    response
      (Printf.sprintf {|{"source": "%s", "algorithm": "cpa-ra+"}|}
         (String.concat "\\n" (String.split_on_char '\n' source)))
  in
  check "inline source allocates" (str_member "status" r4 = Some "ok");
  (* 5. a parse error comes back as an inline coded diagnostic *)
  let r5 = response {|{"id": "bad", "source": "kernel oops {"}|} in
  check "parse error is E-PARSE-001"
    (str_member "status" r5 = Some "error" && has_code "E-PARSE-001" r5);
  (* 6. unknown kernel name: protocol field error *)
  let r6 = response {|{"kernel": "no-such-kernel"}|} in
  check "unknown kernel is E-PROTO-002" (has_code "E-PROTO-002" r6);
  (* 7. malformed JSON: protocol error, id recovered from the wreckage *)
  let r7 = response "this is not json" in
  check "malformed line is E-PROTO-001" (has_code "E-PROTO-001" r7);
  let r7b = response {|{"id": "e1", "budget": }|} in
  check "recovered id is echoed"
    (has_code "E-PROTO-001" r7b && str_member "id" r7b = Some "e1");
  (* 8. guard trip: a starved cut budget degrades CPA-RA with W-GUARD-CUT *)
  let r8 = response {|{"kernel": "bic", "cut_work_limit": 1}|} in
  check "starved cut guard warns W-GUARD-CUT"
    (str_member "status" r8 = Some "ok" && warning_code "W-GUARD-CUT" r8);
  (* 9. infeasible budget: coded error, not a crash *)
  let r9 = response {|{"kernel": "fir", "budget": 1}|} in
  check "infeasible budget is E-BUDGET-001" (has_code "E-BUDGET-001" r9);
  (* 9b. rebudget: a live budget-event stream over the resident kernel.
     The bootstrap rides the tier-1 entry allocate already cached
     (analysis), later events answer incrementally from the session
     (hit), revisited budgets come from the session memo, and a starved
     target clamps with W-GUARD-REBUDGET instead of the E-BUDGET-001 an
     allocate gets. *)
  let rb_member key json =
    match Protocol.member "rebudget" json with
    | Some rb -> Protocol.member key rb
    | None -> None
  in
  let r20 =
    response {|{"id": "rb1", "op": "rebudget", "kernel": "fir", "budget": 32}|}
  in
  check "rebudget bootstrap reuses the analysis"
    (str_member "status" r20 = Some "ok"
    && str_member "cache" r20 = Some "analysis"
    && str_member "id" r20 = Some "rb1"
    && rb_member "memoized" r20 = Some (Protocol.Bool false));
  let r21 = response {|{"op": "rebudget", "kernel": "fir", "budget": 8}|} in
  check "rebudget shrink answers incrementally"
    (str_member "cache" r21 = Some "hit"
    &&
    match rb_member "freed" r21 with
    | Some (Protocol.Int n) -> n > 0
    | _ -> false);
  let r22 = response {|{"op": "rebudget", "kernel": "fir", "budget": 32}|} in
  check "rebudget revisit is memoized"
    (str_member "cache" r22 = Some "hit"
    && rb_member "memoized" r22 = Some (Protocol.Bool true));
  let r23 = response {|{"op": "rebudget", "kernel": "fir", "budget": 1}|} in
  check "starved rebudget clamps with W-GUARD-REBUDGET"
    (str_member "status" r23 = Some "ok"
    && rb_member "clamped" r23 = Some (Protocol.Bool true)
    && warning_code "W-GUARD-REBUDGET" r23);
  let r24 =
    response {|{"op": "rebudget", "kernel": "fir", "budget": 16, "stream": "b"}|}
  in
  check "distinct stream opens its own session"
    (str_member "cache" r24 = Some "analysis");
  let r25 = response {|{"op": "rebudget", "kernel": "fir"}|} in
  check "rebudget without budget is E-PROTO-002" (has_code "E-PROTO-002" r25);
  (* 9c. explore: a design-space frontier, cold then from the frontier
     tier. The frontier member embeds real points; a repeat with
     differently formatted but canonically equal space fields must hit
     the same key. *)
  let frontier_points json =
    match Protocol.member "frontier" json with
    | Some f -> (
      match Protocol.member "points" f with
      | Some (Protocol.Arr ps) -> List.length ps
      | _ -> -1)
    | None -> -1
  in
  let r26 =
    response
      {|{"id": "x1", "op": "explore", "kernel": "fir", "budgets": "8,16"}|}
  in
  check "explore cold is a miss with a frontier"
    (str_member "status" r26 = Some "ok"
    && str_member "cache" r26 = Some "miss"
    && str_member "id" r26 = Some "x1"
    && frontier_points r26 > 0);
  let r27 =
    response
      {|{"op": "explore", "kernel": "fir", "budgets": " 8 , 16 "}|}
  in
  check "canonically equal explore spec hits the frontier tier"
    (str_member "cache" r27 = Some "hit" && frontier_points r27 > 0);
  let r28 =
    response {|{"op": "explore", "kernel": "fir", "budgets": "8,16,32"}|}
  in
  check "different explore spec is its own entry"
    (str_member "cache" r28 = Some "miss");
  let r29 = response {|{"op": "explore", "kernel": "fir", "orders": "bogus"}|} in
  check "bad explore orders is E-PROTO-002" (has_code "E-PROTO-002" r29);
  (* 10. pipelined batch: two requests in one write, answered in order *)
  Client.send client
    {|{"id": "b1", "kernel": "mat", "budget": 16}|};
  Client.send client
    {|{"id": "b2", "kernel": "mat", "budget": 16, "algorithm": "fr-ra"}|};
  let rb1 = Protocol.parse_json (Client.recv client) in
  let rb2 = Protocol.parse_json (Client.recv client) in
  check "batched responses keep order"
    (str_member "id" rb1 = Some "b1" && str_member "id" rb2 = Some "b2");
  check "batched same-kernel requests share the analysis"
    (str_member "cache" rb1 = Some "miss"
    && str_member "cache" rb2 = Some "analysis");
  (* 11. stats reflect the mix *)
  let rs = response {|{"op": "stats"}|} in
  let stat key =
    match Protocol.member "stats" rs with
    | Some s -> (
      match Protocol.member key s with Some (Protocol.Int i) -> i | _ -> -1)
    | None -> -1
  in
  check "stats count the hits" (stat "tier2_hits" >= 1 && stat "served" >= 8);
  check "stats expose the session store"
    (stat "sessions" >= 2 && stat "session_hits" >= 2);
  (* 12. shutdown *)
  let bye = response {|{"op": "shutdown"}|} in
  check "shutdown answers bye" (Protocol.member "bye" bye = Some (Protocol.Bool true));
  Client.close client;
  Domain.join daemon;
  (* 13. abuse caps, overload shedding and deadlines, on a daemon with
     tight limits. *)
  let socket2 = private_socket "serve-limits" in
  let daemon2 =
    Domain.spawn (fun () ->
        run ~jobs ~max_buffer:4096 ~max_inflight:2 ~read_timeout_ms:300
          ~socket:socket2 ())
  in
  let c2 = Client.connect socket2 in
  (* 13a. an endless unterminated line trips the buffer cap (written
     raw: no newline must ever arrive) *)
  let c3 = Client.connect socket2 in
  ignore
    (write_all c3.Client.fd ({|{"id": "big", "source": "|} ^ String.make 8192 'x'));
  let r13 = Protocol.parse_json (Client.recv c3) in
  check "oversized line is E-PROTO-003"
    (has_code "E-PROTO-003" r13 && str_member "id" r13 = Some "big");
  check "abused connection is dropped" (Client.recv_opt c3 = None);
  Client.close c3;
  (* 13b. a half-written line times out *)
  let c4 = Client.connect socket2 in
  ignore (write_all c4.Client.fd {|{"id": "slow"|});
  let r14 = Protocol.parse_json (Client.recv c4) in
  check "half-written line is E-PROTO-003"
    (has_code "E-PROTO-003" r14 && str_member "id" r14 = Some "slow");
  Client.close c4;
  (* 13c. a pipelined flood of cold requests beyond the in-flight bound
     is shed with E-OVERLOAD, in order, one response per request. One
     write syscall so the whole flood lands in one select round. *)
  let flood = [ 17; 18; 19; 20; 21; 22 ] in
  ignore
    (write_all c2.Client.fd
       (String.concat ""
          (List.map
             (fun b ->
               Printf.sprintf {|{"id": "f%d", "kernel": "fir", "budget": %d}|} b b
               ^ "\n")
             flood)));
  let flood_rs = List.map (fun _ -> Protocol.parse_json (Client.recv c2)) flood in
  let oks, sheds =
    List.partition (fun r -> str_member "status" r = Some "ok") flood_rs
  in
  check "flood answers every request"
    (List.length flood_rs = 6
    && List.map (fun r -> str_member "id" r) flood_rs
       = List.map (fun b -> Some (Printf.sprintf "f%d" b)) flood);
  check "overload sheds beyond the bound"
    (List.length oks = 2
    && List.length sheds = 4
    && List.for_all (fun r -> has_code "E-OVERLOAD" r) sheds);
  let retry_hint r =
    match Protocol.member "diagnostics" r with
    | Some (Protocol.Arr (d :: _)) -> (
      match Protocol.member "context" d with
      | Some ctx -> str_member "retry_after_ms" ctx <> None
      | None -> false)
    | _ -> false
  in
  check "shed responses carry retry_after_ms"
    (List.for_all retry_hint sheds);
  (* 13d. an impossible deadline trips E-DEADLINE and is never cached *)
  let rpc2 line = Protocol.parse_json (Client.rpc c2 line) in
  let r15 = rpc2 {|{"kernel": "pat", "budget": 48, "deadline_ms": 0}|} in
  check "deadline trip is E-DEADLINE" (has_code "E-DEADLINE" r15);
  let r16 = rpc2 {|{"kernel": "pat", "budget": 48}|} in
  check "tripped requests are never cached"
    (str_member "status" r16 = Some "ok"
    && str_member "cache" r16 <> Some "hit");
  ignore (rpc2 {|{"op": "shutdown"}|});
  Client.close c2;
  Domain.join daemon2;
  (* 14. worker isolation: with a 100% pool.job fault plan every cold
     compute fails as E-INTERNAL-* but the daemon and its stats stay
     live. *)
  let faults =
    match Fault.parse ~seed:42 "pool.job:raise@1,cache.insert:error@1" with
    | Ok f -> f
    | Error msg -> failwith msg
  in
  let socket3 = private_socket "serve-faults" in
  let daemon3 = Domain.spawn (fun () -> run ~jobs ~faults ~socket:socket3 ()) in
  let c5 = Client.connect socket3 in
  let rpc3 line = Protocol.parse_json (Client.rpc c5 line) in
  let r17 = rpc3 {|{"id": "w1", "kernel": "fir"}|} in
  check "raising worker is E-INTERNAL"
    (str_member "status" r17 = Some "error"
    && has_code "E-INTERNAL-002" r17
    && str_member "id" r17 = Some "w1");
  let r18 = rpc3 {|{"op": "stats"}|} in
  check "daemon survives worker faults"
    (str_member "status" r18 = Some "ok");
  ignore (rpc3 {|{"op": "shutdown"}|});
  Client.close c5;
  Domain.join daemon3;
  (* 15. graceful drain: SIGTERM stops the daemon after the in-flight
     work is answered, the socket file is removed, the domain joins. *)
  let socket4 = private_socket "serve-drain" in
  let drained = ref None in
  let daemon4 =
    Domain.spawn (fun () ->
        run ~jobs ~signals:true ~log:(fun m -> drained := Some m)
          ~socket:socket4 ())
  in
  let c6 = Client.connect socket4 in
  let r19 = Protocol.parse_json (Client.rpc c6 {|{"kernel": "fir"}|}) in
  check "pre-drain request is served" (str_member "status" r19 = Some "ok");
  Unix.kill (Unix.getpid ()) Sys.sigterm;
  Domain.join daemon4;
  check "SIGTERM drains and exits" (not (Sys.file_exists socket4));
  let contains ~sub s =
    let n = String.length sub and m = String.length s in
    let rec at i = i + n <= m && (String.sub s i n = sub || at (i + 1)) in
    at 0
  in
  check "drain flushes the stats"
    (match !drained with
    | Some m -> contains ~sub:"served=" m
    | None -> false);
  Client.close c6;
  match !failures with
  | [] ->
    log "self-test: ok";
    true
  | names ->
    log
      (Printf.sprintf "self-test: FAILED (%s)"
         (String.concat ", " (List.rev names)));
    false

(* ---- chaos campaign ----------------------------------------------------

   Two-phase, fully seeded. Phase one runs a deterministic request mix
   against a clean daemon and records every distinct request's exact
   outcome (report for successes, diagnostics for deterministic
   errors). Phase two replays the mix against a daemon under an
   injected fault plan through hostile clients, and phase three
   re-verifies every distinct request against the baseline while the
   faults stay armed — so a fault that poisoned the cache cannot hide.

   The campaign's own client is deliberately paranoid: raw fds, its own
   line reassembly, and a select-based receive timeout, because the
   daemon under test is being encouraged to cut connections mid-line. *)

type chaos_conn = {
  cfd : Unix.file_descr;
  cbuf : Buffer.t;
  mutable pending : string list;
}

let chaos_connect path =
  let rec go attempt =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () -> Some { cfd = fd; cbuf = Buffer.create 256; pending = [] }
    | exception Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      if attempt < 200 then (
        Unix.sleepf 0.01;
        go (attempt + 1))
      else None
    | exception Unix.Unix_error _ ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      None
  in
  go 0

let chaos_close conn = try Unix.close conn.cfd with Unix.Unix_error _ -> ()

let chaos_send conn line = ignore (write_all conn.cfd line)

(* [`Line l] next complete response; [`Eof] the daemon dropped us (a
   half-received line is discarded — disconnect mid-response);
   [`Timeout] nothing arrived in [timeout] seconds (a swallowed request:
   always a violation). *)
let chaos_recv conn ~timeout =
  let deadline = Unix.gettimeofday () +. timeout in
  let b = Bytes.create 4096 in
  let rec go () =
    match conn.pending with
    | line :: rest ->
      conn.pending <- rest;
      `Line line
    | [] -> (
      let remain = deadline -. Unix.gettimeofday () in
      if remain <= 0.0 then `Timeout
      else
        match Unix.select [ conn.cfd ] [] [] remain with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
        | [], _, _ -> `Timeout
        | _ -> (
          match Unix.read conn.cfd b 0 (Bytes.length b) with
          | exception Unix.Unix_error _ -> `Eof
          | 0 -> `Eof
          | n ->
            Buffer.add_subbytes conn.cbuf b 0 n;
            let data = Buffer.contents conn.cbuf in
            Buffer.clear conn.cbuf;
            let parts = String.split_on_char '\n' data in
            let rec split_last = function
              | [ last ] -> ([], last)
              | x :: rest ->
                let done_, last = split_last rest in
                (x :: done_, last)
              | [] -> ([], "")
            in
            let complete, partial = split_last parts in
            Buffer.add_string conn.cbuf partial;
            conn.pending <-
              conn.pending
              @ List.filter (fun l -> String.trim l <> "") complete;
            go ()))
  in
  go ()

let chaos ?(seed = 42) ?(requests = 600) ?(jobs = 2) ?(log = ignore) () =
  ignore_sigpipe ();
  let kernels = [ "example"; "fir"; "dec-fir"; "imi"; "mat"; "pat"; "bic" ] in
  let algorithms = [ "cpa-ra"; "fr-ra"; "pr-ra"; "cpa-ra+" ] in
  let budgets = [ 8; 16; 32; 64; 128 ] in
  let root = Prng.create ~seed in
  let combos =
    Array.init requests (fun i ->
        let g = Prng.split root i in
        (Prng.pick g kernels, Prng.pick g algorithms, Prng.pick g budgets))
  in
  let request_line ?deadline_ms ~id (k, a, b) =
    Printf.sprintf {|{"id": "%s", "kernel": "%s", "algorithm": "%s", "budget": %d%s}|}
      id k a b
      (match deadline_ms with
      | None -> ""
      | Some d -> Printf.sprintf {|, "deadline_ms": %d|} d)
  in
  let violations = ref [] in
  let violate fmt =
    Printf.ksprintf
      (fun msg ->
        if List.length !violations < 20 then violations := msg :: !violations)
      fmt
  in
  let str_member key json =
    match Protocol.member key json with
    | Some (Protocol.Str s) -> Some s
    | _ -> None
  in
  let diag_codes json =
    match Protocol.member "diagnostics" json with
    | Some (Protocol.Arr ds) ->
      List.filter_map (fun d -> str_member "code" d) ds
    | _ -> []
  in
  (* ---- phase one: fault-free baseline --------------------------------- *)
  let socket_a = private_socket "chaos-base" in
  let daemon_a = Domain.spawn (fun () -> run ~jobs ~socket:socket_a ()) in
  let baseline = Hashtbl.create 64 in
  (match chaos_connect socket_a with
  | None -> violate "baseline daemon unreachable"
  | Some ca ->
    Array.iter
      (fun combo ->
        if not (Hashtbl.mem baseline combo) then begin
          chaos_send ca (request_line ~id:"base" combo ^ "\n");
          match chaos_recv ca ~timeout:30.0 with
          | `Line l -> (
            match Protocol.parse_json l with
            | resp -> Hashtbl.add baseline combo resp
            | exception _ -> violate "baseline response unparseable")
          | `Eof | `Timeout -> violate "baseline request unanswered"
        end)
      combos;
    chaos_send ca "{\"op\": \"shutdown\"}\n";
    ignore (chaos_recv ca ~timeout:10.0);
    chaos_close ca);
  (try Domain.join daemon_a
   with exn -> violate "baseline daemon died: %s" (Printexc.to_string exn));
  let baseline_report combo =
    Option.bind (Hashtbl.find_opt baseline combo) (fun resp ->
        if str_member "status" resp = Some "ok" then
          Protocol.member "report" resp
        else None)
  in
  let baseline_diags combo =
    Option.bind (Hashtbl.find_opt baseline combo) (fun resp ->
        Protocol.member "diagnostics" resp)
  in
  log
    (Printf.sprintf "chaos: baseline recorded (%d distinct requests)"
       (Hashtbl.length baseline));
  (* ---- phase two: the same mix under faults, via hostile clients ------ *)
  let plan =
    "io.read:short-read@0.08,io.read:delay:1@0.04,io.write:error@0.03,\
     pool.job:raise@0.05,pool.job:delay:2@0.05,cache.insert:error@0.25"
  in
  let faults =
    match Fault.parse ~seed plan with
    | Ok f -> f
    | Error msg -> failwith ("chaos: bad fault plan: " ^ msg)
  in
  let socket_b = private_socket "chaos" in
  let daemon_b =
    Domain.spawn (fun () ->
        run ~jobs ~faults ~max_inflight:8 ~max_buffer:65536
          ~read_timeout_ms:2000 ~socket:socket_b ())
  in
  let sent = ref 0 in
  let ok_matched = ref 0 in
  let allowed_errors = ref 0 in
  let disconnects = ref 0 in
  let hostile = ref 0 in
  let injected_codes = [ "E-INTERNAL-002"; "E-INTERNAL-003"; "E-DEADLINE"; "E-OVERLOAD" ] in
  let validate combo line =
    match Protocol.parse_json line with
    | exception _ -> violate "unparseable chaos response: %s" line
    | resp -> (
      match str_member "status" resp with
      | Some "ok" -> (
        match baseline_report combo with
        | Some report when Protocol.member "report" resp = Some report ->
          incr ok_matched
        | Some _ -> violate "report mismatch vs fault-free baseline"
        | None -> violate "ok response for a combo the baseline rejected")
      | Some "error" ->
        let codes = diag_codes resp in
        if codes <> [] && List.for_all (fun c -> List.mem c injected_codes) codes
        then incr allowed_errors
        else if
          (match baseline_diags combo with
          | Some d -> Protocol.member "diagnostics" resp = Some d
          | None -> false)
        then incr allowed_errors
        else violate "unexpected error codes: %s" (String.concat "," codes)
      | _ -> violate "response without a status")
  in
  let behaviour = Prng.split root (requests + 7919) in
  let i = ref 0 in
  while !i < requests do
    let style = Prng.int behaviour 100 in
    let remaining = requests - !i in
    if style < 55 || remaining < 4 then begin
      (* well-behaved client: 1-4 sequential request/response rounds *)
      match chaos_connect socket_b with
      | None -> violate "daemon unreachable (normal client)"; i := requests
      | Some c ->
        let k = min remaining (1 + Prng.int behaviour 4) in
        let rec go j =
          if j < k then begin
            let combo = combos.(!i) in
            chaos_send c (request_line ~id:(Printf.sprintf "n%d" !i) combo ^ "\n");
            incr i;
            incr sent;
            match chaos_recv c ~timeout:15.0 with
            | `Line l ->
              validate combo l;
              go (j + 1)
            | `Eof -> incr disconnects  (* dropped mid-conversation: clean *)
            | `Timeout -> violate "request %d swallowed (timeout)" (!i - 1)
          end
        in
        go 0;
        chaos_close c
    end
    else if style < 75 then begin
      (* pipelined flood: one write, many requests; sheds expected *)
      match chaos_connect socket_b with
      | None -> violate "daemon unreachable (flood client)"; i := requests
      | Some c ->
        let k = min remaining (10 + Prng.int behaviour 21) in
        let batch = Array.init k (fun j -> combos.(!i + j)) in
        let payload =
          String.concat ""
            (Array.to_list
               (Array.mapi
                  (fun j combo ->
                    request_line ~id:(Printf.sprintf "p%d" (!i + j)) combo ^ "\n")
                  batch))
        in
        chaos_send c payload;
        sent := !sent + k;
        i := !i + k;
        let rec collect j =
          if j < k then
            match chaos_recv c ~timeout:15.0 with
            | `Line l ->
              validate batch.(j) l;
              collect (j + 1)
            | `Eof ->
              (* dropped mid-flood: the rest are clean disconnects *)
              disconnects := !disconnects + (k - j)
            | `Timeout -> violate "flood response %d swallowed" j
        in
        collect 0;
        chaos_close c
    end
    else if style < 85 then begin
      (* deaf client: sends, never reads, hangs up immediately *)
      (match chaos_connect socket_b with
      | None -> violate "daemon unreachable (deaf client)"; i := requests
      | Some c ->
        chaos_send c (request_line ~id:"deaf" combos.(!i) ^ "\n");
        incr i;
        incr sent;
        incr disconnects;
        incr hostile;
        chaos_close c)
    end
    else if style < 93 then begin
      (* truncated JSON then disconnect, plus one real request so the
         loop always consumes a combo *)
      (match chaos_connect socket_b with
      | None -> ()
      | Some c ->
        chaos_send c {|{"id": "trunc", "kernel": "fi|};
        incr hostile;
        chaos_close c);
      match chaos_connect socket_b with
      | None -> violate "daemon unreachable (after truncation)"; i := requests
      | Some c ->
        let combo = combos.(!i) in
        chaos_send c (request_line ~id:"t" combo ^ "\n");
        incr i;
        incr sent;
        (match chaos_recv c ~timeout:15.0 with
        | `Line l -> validate combo l
        | `Eof -> incr disconnects
        | `Timeout -> violate "post-truncation request swallowed");
        chaos_close c
    end
    else begin
      (* deadline race: a 1 ms deadline may trip or may be met *)
      match chaos_connect socket_b with
      | None -> violate "daemon unreachable (deadline client)"; i := requests
      | Some c ->
        let combo = combos.(!i) in
        chaos_send c
          (request_line ~deadline_ms:1 ~id:(Printf.sprintf "d%d" !i) combo ^ "\n");
        incr i;
        incr sent;
        incr hostile;
        (match chaos_recv c ~timeout:15.0 with
        | `Line l -> validate combo l
        | `Eof -> incr disconnects
        | `Timeout -> violate "deadline request swallowed");
        chaos_close c
    end
  done;
  (* ---- phase three: cache integrity re-verified under live faults ----- *)
  let reverified = ref 0 in
  let reverify combo =
    let rec attempt n =
      if n >= 10 then violate "re-verification exhausted retries"
      else
        match chaos_connect socket_b with
        | None -> violate "daemon unreachable (re-verify)"
        | Some c -> (
          chaos_send c (request_line ~id:"v" combo ^ "\n");
          let outcome = chaos_recv c ~timeout:15.0 in
          chaos_close c;
          match outcome with
          | `Eof -> attempt (n + 1)
          | `Timeout -> violate "re-verification request swallowed"
          | `Line l -> (
            match Protocol.parse_json l with
            | exception _ -> violate "unparseable re-verification response"
            | resp -> (
              match (str_member "status" resp, baseline_report combo) with
              | Some "ok", Some report
                when Protocol.member "report" resp = Some report ->
                incr reverified
              | Some "ok", Some _ ->
                violate "re-verified report differs from fault-free baseline"
              | Some "error", None
                when Protocol.member "diagnostics" resp = baseline_diags combo
                ->
                incr reverified
              | Some "error", _
                when List.for_all
                       (fun c -> List.mem c injected_codes)
                       (diag_codes resp)
                     && diag_codes resp <> [] ->
                attempt (n + 1)  (* an injected fault hit the probe; retry *)
              | _ -> violate "re-verification outcome diverged")))
    in
    attempt 0
  in
  Hashtbl.iter (fun combo _ -> reverify combo) baseline;
  (* ---- stats, injection rate, shutdown -------------------------------- *)
  let injected = Fault.injected faults in
  let stats_resp =
    let rec attempt n =
      if n >= 10 then None
      else
        match chaos_connect socket_b with
        | None -> None
        | Some c -> (
          chaos_send c "{\"op\": \"stats\"}\n";
          let outcome = chaos_recv c ~timeout:15.0 in
          chaos_close c;
          match outcome with
          | `Line l -> (
            match Protocol.parse_json l with
            | resp -> Some resp
            | exception _ -> None)
          | `Eof -> attempt (n + 1)
          | `Timeout -> None)
    in
    attempt 0
  in
  (match stats_resp with
  | None -> violate "daemon stats unreachable after campaign"
  | Some resp ->
    if str_member "status" resp <> Some "ok" then
      violate "stats rpc failed after campaign");
  let rate = float_of_int injected /. float_of_int (max 1 !sent) in
  if rate < 0.10 then
    violate "injected fault rate %.1f%% below the 10%% floor" (100. *. rate);
  (match chaos_connect socket_b with
  | None -> violate "daemon unreachable for shutdown"
  | Some c ->
    chaos_send c "{\"op\": \"shutdown\"}\n";
    ignore (chaos_recv c ~timeout:10.0);
    chaos_close c);
  (try Domain.join daemon_b
   with exn -> violate "chaos daemon died: %s" (Printexc.to_string exn));
  log
    (Printf.sprintf
       "chaos: %d requests sent (%d hostile actions): %d ok+matched, %d \
        allowed errors, %d clean disconnects; %d faults injected (%.1f%%); \
        %d/%d distinct requests re-verified byte-identical"
       !sent !hostile !ok_matched !allowed_errors !disconnects injected
       (100. *. rate) !reverified (Hashtbl.length baseline));
  match !violations with
  | [] ->
    log
      (Printf.sprintf "chaos: ok (%d requests, 0 crashes, 0 violations)" !sent);
    true
  | vs ->
    List.iter (fun v -> log ("chaos: VIOLATION " ^ v)) (List.rev vs);
    log (Printf.sprintf "chaos: FAILED (%d violations)" (List.length vs));
    false
