module Flow = Srfa_core.Flow
module Allocator = Srfa_core.Allocator
module Diag = Srfa_util.Diag
module Trace = Srfa_util.Trace
module Lru = Srfa_util.Lru
module Fault = Srfa_util.Fault

(* Bump on any change to the key material layout or to the canonical
   source rendering's meaning; the test_serve goldens pin the resulting
   digests so an accidental change fails loudly instead of silently
   cold-starting every deployed cache. *)
let scheme_version = "srfa-cache-v1"

let tier1_key ~(device : Srfa_hw.Device.t) source =
  Digest.to_hex
    (Digest.string
       (String.concat "\n" [ scheme_version; device.Srfa_hw.Device.name; source ]))

(* Rebudget sessions live in their own key namespace (the "rebudget"
   component): a session must never collide with — or be inserted into —
   the allocate tiers, whose entries the chaos campaign re-verifies
   byte-identical against a fault-free baseline. *)
let session_key ~tier1 ~stream =
  Digest.to_hex
    (Digest.string
       (String.concat "\n" [ scheme_version; tier1; "rebudget"; stream ]))

(* The frontier tier's namespace: one kernel's whole design-space answer,
   keyed on the canonical space spec (DESIGN.md §17). Like sessions,
   disjoint from the allocate tiers by the literal component. *)
let explore_key ~tier1 ~spec =
  Digest.to_hex
    (Digest.string
       (String.concat "\n" [ scheme_version; tier1; "explore"; spec ]))

let tier2_key ~tier1 ~algorithm ~budget ~cut_work_limit =
  Digest.to_hex
    (Digest.string
       (String.concat "\n"
          [
            scheme_version;
            tier1;
            Allocator.name algorithm;
            string_of_int budget;
            (match cut_work_limit with
            | None -> "guard-default"
            | Some n -> string_of_int n);
          ]))

(* ---- resolved requests ------------------------------------------------- *)

type resolved = {
  nest : Srfa_ir.Nest.t;
  source : string;
  device : Srfa_hw.Device.t;
  algorithm : Allocator.algorithm;
  budget : int;
  cut_work_limit : int option;
}

let device_of_name = function
  | "xcv1000" -> Some Srfa_hw.Device.xcv1000
  | "xc2v6000" -> Some Srfa_hw.Device.xc2v6000
  | _ -> None

let resolve (r : Protocol.request) =
  let ( let* ) r f = match r with Ok v -> f v | Error e -> Error e in
  let* nest =
    match r.Protocol.kernel with
    | None -> Error [ Protocol.field_error "allocate request without a kernel" ]
    | Some (Protocol.Named name) -> (
      match Srfa_kernels.Kernels.find name with
      | Some nest -> Ok nest
      | None ->
        Error
          [
            Protocol.field_error
              (Printf.sprintf "unknown kernel %S (try: %s)" name
                 (String.concat ", " Srfa_kernels.Kernels.names));
          ])
    | Some (Protocol.Source text) -> Srfa_frontend.Parser.parse_result text
  in
  let* device =
    match r.Protocol.device with
    | None -> Ok Srfa_hw.Device.xcv1000
    | Some name -> (
      match device_of_name name with
      | Some d -> Ok d
      | None ->
        Error
          [
            Protocol.field_error
              (Printf.sprintf "unknown device %S (xcv1000, xc2v6000)" name);
          ])
  in
  let* algorithm =
    match r.Protocol.algorithm with
    | None -> Ok Allocator.Cpa_ra
    | Some name -> (
      match Allocator.of_name name with
      | Some a -> Ok a
      | None ->
        Error
          [
            Protocol.field_error
              (Printf.sprintf "unknown algorithm %S" name);
          ])
  in
  (* The content address hashes the canonical rendering, never the raw
     request text, so formatting and comments never fragment the cache. *)
  Ok
    {
      nest;
      source = Srfa_frontend.Parser.canonical_source nest;
      device;
      algorithm;
      budget = Option.value r.Protocol.budget ~default:64;
      cut_work_limit = r.Protocol.cut_work_limit;
    }

let config_for r =
  {
    Flow.default_config with
    Flow.budget = r.budget;
    sim = { Flow.default_config.Flow.sim with device = r.device };
    guards =
      (match r.cut_work_limit with
      | None -> Flow.default_guards
      | Some n -> { Flow.default_guards with cut_work_limit = Some n });
  }

(* ---- tiers ------------------------------------------------------------- *)

type entry = {
  t1 : string;
  prepared : Flow.Core.prepared;
  scratch : Srfa_sched.Simulator.scratch;
  device : Srfa_hw.Device.t;
}
(** One tier-1 resident: every budget-independent product of one
    (kernel, device) pair. The scratch rides along so warm requests are
    allocation-free, which makes the entry single-owner at any instant —
    the server guarantees that by batching same-key requests onto one
    domain. *)

type report_value = {
  report : Srfa_estimate.Report.t;
  warnings : Diag.t list;
}

type explore_value = {
  frontier : string;  (* Flow.Core.frontier_json ~compact:true *)
  explore_stats : (string * int) list;
  explore_warnings : Diag.t list;
}

type t = {
  tier1 : entry Lru.t;
  tier2 : report_value Lru.t;
  sessions : Flow.Core.rebudget_session Lru.t;
      (* live rebudget streams (DESIGN.md §16), keyed by (tier-1,
         stream name). Mutable single-owner values: every step runs on
         the accept thread, never on a pool domain, so they share the
         tier-1 scratch without racing it. Eviction just cold-starts
         the stream on its next event. *)
  explores : explore_value Lru.t;
      (* finished design-space frontiers keyed by (tier-1, space spec).
         Immutable rendered strings, safe to serve any number of
         times — the explore analogue of tier 2. *)
  trace : Trace.sink;
  faults : Fault.t;
}

let create ?(tier1_bytes = 48 * 1024 * 1024) ?(tier2_bytes = 16 * 1024 * 1024)
    ?(session_bytes = 16 * 1024 * 1024)
    ?(explore_bytes = 16 * 1024 * 1024) ?(trace = Trace.null)
    ?(faults = Fault.off) () =
  {
    tier1 = Lru.create ~capacity:tier1_bytes;
    tier2 = Lru.create ~capacity:tier2_bytes;
    sessions = Lru.create ~capacity:session_bytes;
    explores = Lru.create ~capacity:explore_bytes;
    trace;
    faults;
  }

let word_bytes = Sys.word_size / 8

let cost_of v = (1 + Obj.reachable_words (Obj.repr v)) * word_bytes

let emit_lookup t ~tier ~key hit =
  Trace.emit t.trace (fun () ->
      Trace.event
        (if hit then "cache.hit" else "cache.miss")
        [ ("tier", Trace.Int tier); ("key", Trace.String key) ])

let emit_evicted t ~tier evicted =
  List.iter
    (fun (key, _) ->
      Trace.emit t.trace (fun () ->
          Trace.event "cache.evict"
            [ ("tier", Trace.Int tier); ("key", Trace.String key) ]))
    evicted

let build_entry r ~t1 =
  let prepared = Flow.Core.prepare r.nest in
  {
    t1;
    prepared;
    scratch = Flow.Core.scratch ~config:(config_for r) prepared;
    device = r.device;
  }

let find_report t key =
  let hit = Lru.find t.tier2 key in
  emit_lookup t ~tier:2 ~key (hit <> None);
  hit

let find_entry t key =
  let hit = Lru.find t.tier1 key in
  emit_lookup t ~tier:1 ~key (hit <> None);
  hit

(* The cache.insert fault site: an injected failure means the store did
   not happen (a full disk, an allocation failure). Whatever the action,
   the contract is "skip the insert and stay correct" — the value is
   recomputed on the next miss; the daemon must never die here because
   inserts run on the accept thread. *)
let insert_faulted t ~tier ~key =
  match Fault.check t.faults "cache.insert" with
  | None -> false
  | Some _ ->
    Trace.emit t.trace (fun () ->
        Trace.event "fault.cache.insert"
          [ ("tier", Trace.Int tier); ("key", Trace.String key) ]);
    true

let insert_entry t (e : entry) =
  if not (insert_faulted t ~tier:1 ~key:e.t1) then
    emit_evicted t ~tier:1 (Lru.add t.tier1 e.t1 ~cost:(cost_of e) e)

let insert_report t key (v : report_value) =
  if not (insert_faulted t ~tier:2 ~key) then
    emit_evicted t ~tier:2 (Lru.add t.tier2 key ~cost:(cost_of v) v)

(* Allocate-and-report against a resident (or freshly built) tier-1
   entry. Pure apart from the entry's scratch: callers on worker domains
   must own the entry exclusively for the duration. *)
let compute r (entry : entry) =
  Flow.Core.checked_prepared ~sim_scratch:entry.scratch (config_for r)
    r.algorithm entry.prepared

type status = [ `Hit | `Analysis | `Miss ]

(* ---- rebudget sessions (DESIGN.md §16) --------------------------------

   One budget event against a live stream. [`Hit] = the session existed
   and the event was answered incrementally; [`Analysis] = no session
   yet but the tier-1 entry was resident, so only the bootstrap
   portfolio point was paid; [`Miss] = fully cold. Accept-thread only:
   sessions mutate in place and share the tier-1 scratch. *)

let find_session t key =
  let hit = Lru.find t.sessions key in
  emit_lookup t ~tier:3 ~key (hit <> None);
  hit

let insert_session t key (s : Flow.Core.rebudget_session) =
  if not (insert_faulted t ~tier:3 ~key) then
    emit_evicted t ~tier:3 (Lru.add t.sessions key ~cost:(cost_of s) s)

let rebudget t (r : resolved) ~stream =
  let t1 = tier1_key ~device:r.device r.source in
  let skey = session_key ~tier1:t1 ~stream in
  match find_session t skey with
  | Some session -> (
    match Flow.Core.rebudget_step session ~budget:r.budget with
    | step -> Ok (step, `Hit)
    | exception exn -> Error [ Diag.of_exn exn ])
  | None -> (
    match
      match find_entry t t1 with
      | Some e -> Ok (e, `Analysis)
      | None -> (
        match build_entry r ~t1 with
        | e ->
          insert_entry t e;
          Ok (e, `Miss)
        | exception exn -> Error [ Diag.of_exn exn ])
    with
    | Error diags -> Error diags
    | Ok (entry, status) -> (
      match
        Flow.Core.rebudget_start ~sim_scratch:entry.scratch (config_for r)
          entry.prepared ~budget:r.budget
      with
      | session, step ->
        insert_session t skey session;
        Ok (step, status)
      | exception exn -> Error [ Diag.of_exn exn ]))

(* ---- design-space frontiers (DESIGN.md §17) ---------------------------

   One kernel's whole frontier under a canonical space spec. The explorer
   prepares per variant internally, so no tier-1 entry is borrowed; the
   tier-1 key only anchors the namespace. Accept-thread only (like
   rebudget): the explorer's own per-variant scratch is private, but the
   store mutates. *)

let find_explore t key =
  let hit = Lru.find t.explores key in
  emit_lookup t ~tier:4 ~key (hit <> None);
  hit

let insert_explore t key (v : explore_value) =
  if not (insert_faulted t ~tier:4 ~key) then
    emit_evicted t ~tier:4 (Lru.add t.explores key ~cost:(cost_of v) v)

(* Canonicalise the request's space fields: the parsed values are
   re-rendered, so formatting differences ("8, 16" vs "8,16") never
   fragment the frontier tier. *)
let space_of_request (req : Protocol.request) =
  let ( let* ) r f = match r with Ok v -> f v | Error e -> Error e in
  let ints what s =
    match
      List.map
        (fun x -> int_of_string (String.trim x))
        (String.split_on_char ',' s)
    with
    | ns -> Ok ns
    | exception Failure _ ->
      Error
        [
          Protocol.field_error
            (Printf.sprintf "field %S must be a comma-separated integer list"
               what);
        ]
  in
  let* orders =
    match req.Protocol.orders with
    | None | Some "all" -> Ok Flow.Core.All_orders
    | Some ("identity" | "id") -> Ok Flow.Core.Identity_order
    | Some s -> (
      match
        List.map
          (fun o ->
            match ints "orders" o with Ok ns -> ns | Error _ -> raise Exit)
          (String.split_on_char ';' s)
      with
      | os -> Ok (Flow.Core.Orders os)
      | exception Exit ->
        Error
          [
            Protocol.field_error
              "field \"orders\" must be \"all\", \"identity\" or \
               semicolon-separated permutations like \"0,2,1;2,0,1\"";
          ])
  in
  let* tile_factors =
    match req.Protocol.tiles with None -> Ok [] | Some s -> ints "tiles" s
  in
  let* space_budgets =
    match req.Protocol.budgets with
    | None -> Ok Flow.Core.default_budgets
    | Some s -> ints "budgets" s
  in
  let* space_algorithms =
    match req.Protocol.algorithms with
    | None -> Ok [ Allocator.Cpa_ra ]
    | Some s ->
      List.fold_right
        (fun name acc ->
          let* acc = acc in
          match Allocator.of_name (String.trim name) with
          | Some a -> Ok (a :: acc)
          | None ->
            Error
              [
                Protocol.field_error
                  (Printf.sprintf "unknown algorithm %S" (String.trim name));
              ])
        (String.split_on_char ',' s)
        (Ok [])
  in
  let space =
    {
      Flow.Core.orders;
      tile_factors;
      space_budgets;
      space_algorithms;
      certify = req.Protocol.certify;
      prune = true;
      naive = false;
    }
  in
  let join ns = String.concat "," (List.map string_of_int ns) in
  let spec =
    Printf.sprintf "orders=%s;tiles=%s;budgets=%s;algorithms=%s;certify=%b"
      (match orders with
      | Flow.Core.All_orders -> "all"
      | Flow.Core.Identity_order -> "identity"
      | Flow.Core.Orders os -> String.concat "|" (List.map join os))
      (join tile_factors) (join space_budgets)
      (String.concat "," (List.map Allocator.name space_algorithms))
      req.Protocol.certify
  in
  Ok (space, spec)

let explore t (r : resolved) ~space ~spec =
  let t1 = tier1_key ~device:r.device r.source in
  let key = explore_key ~tier1:t1 ~spec in
  match find_explore t key with
  | Some v -> Ok (v, `Hit)
  | None -> (
    match Flow.Core.explore ~space (config_for r) r.nest with
    | f ->
      let s = f.Flow.Core.frontier_stats in
      let v =
        {
          frontier = Flow.Core.frontier_json ~compact:true f;
          explore_stats =
            [
              ("variants_enumerated", s.Flow.Core.variants_enumerated);
              ("variants_unique", s.Flow.Core.variants_unique);
              ("variants_pruned", s.Flow.Core.variants_pruned);
              ("points_pruned", s.Flow.Core.points_pruned);
              ("points_evaluated", s.Flow.Core.points_evaluated);
              ("sim_memo_hits", s.Flow.Core.sim_memo_hits);
              ("duplicate_variants", s.Flow.Core.duplicate_variants);
              ("orders_skipped", s.Flow.Core.orders_skipped);
              ("budgets_skipped", s.Flow.Core.budgets_skipped);
            ];
          explore_warnings = f.Flow.Core.frontier_warnings;
        }
      in
      insert_explore t key v;
      Ok (v, `Miss)
    | exception exn -> Error [ Diag.of_exn exn ])

(* The single-threaded fast path (tests, jobs=1 servers): look up, build
   what is missing, cache what was computed. Errors are never cached —
   they are cheap to recompute and usually the caller's fault. *)
let respond t (r : resolved) =
  let t1 = tier1_key ~device:r.device r.source in
  let t2 =
    tier2_key ~tier1:t1 ~algorithm:r.algorithm ~budget:r.budget
      ~cut_work_limit:r.cut_work_limit
  in
  match find_report t t2 with
  | Some v -> Ok (v.report, v.warnings, `Hit)
  | None -> (
    match
      match find_entry t t1 with
      | Some e -> Ok (e, `Analysis)
      | None -> (
        (* Preparation can fail too (semantic validation, dependency
           cycles); the boundary matches Flow.Core.checked's. *)
        match build_entry r ~t1 with
        | e ->
          insert_entry t e;
          Ok (e, `Miss)
        | exception exn -> Error [ Diag.of_exn exn ])
    with
    | Error diags -> Error diags
    | Ok (entry, status) -> (
      match compute r entry with
      | Ok (report, warnings) ->
        insert_report t t2 { report; warnings };
        Ok (report, warnings, status)
      | Error diags -> Error diags))

(* Every request performs exactly one tier-2 lookup, so the served count
   is the tier-2 hit + miss total. *)
let stats t =
  [
    ("served", Lru.hits t.tier2 + Lru.misses t.tier2);
    ("tier1_entries", Lru.length t.tier1);
    ("tier1_bytes", Lru.used t.tier1);
    ("tier1_hits", Lru.hits t.tier1);
    ("tier1_misses", Lru.misses t.tier1);
    ("tier1_evictions", Lru.evictions t.tier1);
    ("tier2_entries", Lru.length t.tier2);
    ("tier2_bytes", Lru.used t.tier2);
    ("tier2_hits", Lru.hits t.tier2);
    ("tier2_misses", Lru.misses t.tier2);
    ("tier2_evictions", Lru.evictions t.tier2);
    ("sessions", Lru.length t.sessions);
    ("session_hits", Lru.hits t.sessions);
    ("session_misses", Lru.misses t.sessions);
    ("session_evictions", Lru.evictions t.sessions);
    ("explore_entries", Lru.length t.explores);
    ("explore_bytes", Lru.used t.explores);
    ("explore_hits", Lru.hits t.explores);
    ("explore_misses", Lru.misses t.explores);
    ("explore_evictions", Lru.evictions t.explores);
  ]
