(** The serve daemon's wire protocol: JSON lines over a Unix-domain
    socket, one request object in, one response object out, in order.

    Request fields (flat object; unknown fields are ignored):
    - ["op"]: ["allocate"] (default), ["rebudget"], ["explore"],
      ["stats"] or ["shutdown"];
    - ["id"]: optional string, echoed verbatim in the response;
    - ["kernel"]: a built-in kernel name, {e or} ["source"]: kernel DSL
      text (exactly one for an allocate or rebudget request);
    - ["device"]: ["xcv1000"] (default) or ["xc2v6000"];
    - ["algorithm"]: an {!Srfa_core.Allocator.of_name} string
      (default ["cpa-ra"]; rebudget always answers with the certified
      portfolio);
    - ["budget"]: register budget (default 64; for a rebudget request
      it is the mandatory event target);
    - ["cut_work_limit"]: optional override of the CPA cut-work guard;
    - ["deadline_ms"]: optional per-request wall-clock deadline
      (overrides the server default; tripping it is [E-DEADLINE]);
    - ["stream"]: optional rebudget session name (default
      ["default"]) — requests naming the same kernel, device and stream
      mutate the same live allocation (DESIGN.md §16);
    - explore only (DESIGN.md §17): ["orders"] (["all"], ["identity"]
      or explicit [";"]-separated permutations like ["0,2,1;2,0,1"]),
      ["tiles"] / ["budgets"] / ["algorithms"] (comma-separated lists)
      and ["certify"] (boolean) — together the design-space spec the
      frontier tier is keyed on.

    Responses: [{"status": "ok", "cache": "hit"|"analysis"|"miss",
    "report": {...}, "warnings": [...]}] for served allocations (the
    warnings array carries [W-GUARD-*] diagnostics and is omitted when
    empty), [{"status": "error", "diagnostics": [...]}] with
    {!Srfa_util.Diag.to_json} objects otherwise — kernel parse errors
    arrive inline with their [E-LEX-*]/[E-PARSE-*] codes, protocol
    errors as [E-PROTO-001] (malformed JSON) / [E-PROTO-002] (bad or
    missing field) / [E-PROTO-003] (abusive connection: oversized
    request line or read timeout), resource errors as [E-DEADLINE]
    (deadline tripped; never cached) and [E-OVERLOAD] (shed under load;
    carries a [retry_after_ms] context hint). The full scheme is
    documented in DESIGN.md §14–§15. *)

(** A parsed JSON value (the protocol ships no JSON dependency). *)
type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Malformed of string

val parse_json : string -> json
(** @raise Malformed on invalid input (with the byte offset). *)

val member : string -> json -> json option
(** [member key (Obj ...)] — [None] for absent keys and non-objects. *)

type op = Allocate | Rebudget | Explore | Stats | Shutdown

type kernel_spec = Named of string | Source of string

type request = {
  id : string option;
  op : op;
  kernel : kernel_spec option;
      (** [Some] for every allocate/rebudget request *)
  device : string option;
  algorithm : string option;
  budget : int option;  (** [Some] for every rebudget request *)
  cut_work_limit : int option;
  deadline_ms : int option;
  stream : string option;  (** rebudget session name *)
  orders : string option;  (** explore: loop-order axis spec *)
  tiles : string option;  (** explore: strip-mine factor ladder *)
  budgets : string option;  (** explore: budget ladder *)
  algorithms : string option;  (** explore: algorithm list *)
  certify : bool;  (** explore: certified-portfolio points *)
}

val proto_error : string -> Srfa_util.Diag.t
(** An [E-PROTO-001] diagnostic (malformed request JSON). *)

val field_error : string -> Srfa_util.Diag.t
(** An [E-PROTO-002] diagnostic (bad or missing request field). *)

val abuse_error : string -> Srfa_util.Diag.t
(** An [E-PROTO-003] diagnostic (oversized request line, read timeout —
    the connection is dropped after this response). *)

val deadline_error : deadline_ms:int -> elapsed_ms:int -> Srfa_util.Diag.t
(** An [E-DEADLINE] diagnostic with both figures in the context. *)

val overload_error : retry_after_ms:int -> Srfa_util.Diag.t
(** An [E-OVERLOAD] diagnostic carrying the [retry_after_ms] hint. *)

val recover_id : string -> string option
(** Best-effort extraction of the ["id"] field from a request line that
    failed to decode, so error responses can still echo it and
    pipelining clients can correlate failures. The scan reads complete
    JSON string tokens (full escape decoding, [\u] included), so ids
    containing escaped quotes decode correctly and a string {e value}
    spelling or containing ["id"] cannot shadow the real key. [None]
    when no plausible id is found — correlation is lost, nothing
    else. *)

val parse_request : string -> (request, Srfa_util.Diag.t) result
(** Decode one request line. Malformed JSON is [E-PROTO-001]; a
    well-formed object with bad field types, an unknown op, or neither /
    both of [kernel] and [source] is [E-PROTO-002]. *)

val json_of_report : Srfa_estimate.Report.t -> string
(** One report as a single-line JSON object (per-group register maps
    included). *)

type rebudget_info = {
  rb_requested : int;
  rb_effective : int;  (** after the feasibility-minimum clamp *)
  rb_clamped : bool;
  rb_freed : int;
  rb_respent : int;
  rb_memoized : bool;  (** served from the session's per-budget memo *)
}
(** The incremental bookkeeping a rebudget response carries alongside
    the report, as a ["rebudget"] sub-object. *)

val response_ok :
  ?id:string -> ?rebudget:rebudget_info ->
  cache:[ `Hit | `Analysis | `Miss ] ->
  warnings:Srfa_util.Diag.t list -> Srfa_estimate.Report.t -> string
(** [cache] says what the request cost: [`Hit] = served from the report
    tier (for rebudget: the session existed), [`Analysis] = analysis
    reused, allocation recomputed, [`Miss] = fully cold. [rebudget]
    adds the incremental bookkeeping sub-object (rebudget responses
    only). *)

val response_explore :
  ?id:string -> cache:[ `Hit | `Analysis | `Miss ] ->
  warnings:Srfa_util.Diag.t list -> stats:(string * int) list ->
  string -> string
(** An explore response: the pre-rendered compact frontier JSON
    ({!Srfa_core.Flow.Core.frontier_json}) embedded verbatim as the
    ["frontier"] member, plus the explore counters (variants, cuts,
    memo hits — schedule-dependent, never byte-compared) as the
    ["explore"] sub-object. *)

val response_error : ?id:string -> Srfa_util.Diag.t list -> string

val response_stats : ?id:string -> (string * int) list -> string

val response_bye : ?id:string -> unit -> string
