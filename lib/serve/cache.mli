(** The daemon's two-tier content-addressed cache.

    Tier 1 is keyed on hash(canonical kernel source, device) and holds
    every budget-independent product of the kernel — the parsed IR, the
    {!Srfa_reuse.Analysis}, the DFG and the prepared cycle model, bundled
    as a {!Srfa_core.Flow.Core.prepared} plus a warm simulator scratch.
    Tier 2 is keyed on hash(tier-1 key, algorithm, budget, guard
    override) and holds finished reports. The split mirrors the paper's
    observation that the reuse analysis is budget-independent: a budget
    ladder over a cached kernel pays for analysis once and then only for
    allocation + simulation, and a repeated request pays for neither.

    A third store holds live {e rebudget sessions} — mutable
    {!Srfa_core.Flow.Core.rebudget_session} values keyed on
    hash(tier-1 key, "rebudget", stream name) — in their own key
    namespace, never the allocate tiers (DESIGN.md §16). A fourth holds
    finished {e design-space frontiers} (DESIGN.md §17): rendered
    frontier JSON plus explore counters, keyed on hash(tier-1 key,
    "explore", canonical space spec).

    All stores are byte-budget-bounded {!Srfa_util.Lru}s; lookups,
    misses and evictions are announced as [cache.hit] / [cache.miss] /
    [cache.evict] trace events (fields: [tier] — 3 is the session
    store — and [key]). The cache itself is single-owner: the server
    mutates it from the accept loop only and hands tier-1 entries to at
    most one worker domain at a time (see {!Server}). Rebudget steps
    additionally run on the accept thread itself, which is what lets a
    session share its tier-1 entry's scratch without racing the pooled
    compute. Key scheme details: DESIGN.md §14. *)

module Flow = Srfa_core.Flow
module Allocator = Srfa_core.Allocator
module Diag = Srfa_util.Diag

val scheme_version : string
(** Folded into every digest; bump on any key-material change. The
    test_serve goldens pin the resulting kernel digests. *)

val tier1_key : device:Srfa_hw.Device.t -> string -> string
(** [tier1_key ~device canonical_source] — hex MD5 of the scheme
    version, device name and canonical source. *)

val tier2_key :
  tier1:string -> algorithm:Allocator.algorithm -> budget:int ->
  cut_work_limit:int option -> string

val session_key : tier1:string -> stream:string -> string
(** The rebudget-session namespace: hex MD5 of the scheme version, the
    tier-1 key, the literal ["rebudget"] and the stream name. Disjoint
    from {!tier2_key} material by construction. *)

val explore_key : tier1:string -> spec:string -> string
(** The frontier namespace: hex MD5 of the scheme version, the tier-1
    key, the literal ["explore"] and the canonical space spec (see
    {!space_of_request}). Disjoint from the other tiers. *)

(** A protocol request resolved against the kernel registry, the device
    table and the algorithm names — everything hashable. *)
type resolved = {
  nest : Srfa_ir.Nest.t;
  source : string;  (** {!Srfa_frontend.Parser.canonical_source} of [nest] *)
  device : Srfa_hw.Device.t;
  algorithm : Allocator.algorithm;
  budget : int;
  cut_work_limit : int option;
}

val device_of_name : string -> Srfa_hw.Device.t option

val resolve : Protocol.request -> (resolved, Diag.t list) result
(** Look up a named kernel or parse an inline source (diagnostics come
    back with their [E-LEX-*]/[E-PARSE-*]/[E-SEM-*] codes), validate
    device and algorithm names, default budget 64. *)

val config_for : resolved -> Flow.config
(** The pure-core config a resolved request runs under: its budget, its
    device in the simulator config, and its guard override (if any). *)

type entry = {
  t1 : string;
  prepared : Flow.Core.prepared;
  scratch : Srfa_sched.Simulator.scratch;
  device : Srfa_hw.Device.t;
}

type report_value = {
  report : Srfa_estimate.Report.t;
  warnings : Diag.t list;
}

type t

val create :
  ?tier1_bytes:int -> ?tier2_bytes:int -> ?session_bytes:int ->
  ?explore_bytes:int ->
  ?trace:Srfa_util.Trace.sink -> ?faults:Srfa_util.Fault.t -> unit -> t
(** Defaults: 48 MB for tier 1, 16 MB each for tier 2, sessions and
    frontiers.
    Entry costs are measured with [Obj.reachable_words], i.e. real heap
    bytes. [faults] arms the [cache.insert] injection site: a firing
    rule makes the insert silently not happen (traced as
    [fault.cache.insert]) — the value is recomputed on the next miss
    (for a session: the stream cold-starts on its next event),
    correctness is unaffected. *)

type status = [ `Hit | `Analysis | `Miss ]

val respond :
  t -> resolved ->
  (Srfa_estimate.Report.t * Diag.t list * status, Diag.t list) result
(** The single-threaded serving path: tier-2 lookup, then tier-1, then a
    cold build; computed values are inserted, errors are returned inline
    and never cached. A tier-2 hit returns the {e physically} same
    report value as the request that populated it — the IO shell owns
    all rendering, so a report is a plain immutable value safe to serve
    any number of times. *)

(* The batched server drives the tiers directly (lookups and inserts on
   the accept loop, compute on worker domains): *)

val find_report : t -> string -> report_value option
val find_entry : t -> string -> entry option
val build_entry : resolved -> t1:string -> entry
val insert_entry : t -> entry -> unit
val insert_report : t -> string -> report_value -> unit

val compute :
  resolved -> entry ->
  (Srfa_estimate.Report.t * Diag.t list, Diag.t list) result
(** {!Flow.Core.checked_prepared} against the entry's prepared kernel and
    scratch. Mutates the entry's scratch: the caller must own the entry
    exclusively while it runs. *)

val rebudget :
  t -> resolved -> stream:string ->
  (Flow.Core.rebudget_step * status, Diag.t list) result
(** One budget event ([resolved.budget]) against the stream's live
    session, creating it on first touch. [`Hit] = the session existed
    and the event was answered incrementally; [`Analysis] = fresh
    session over a resident tier-1 entry (only the bootstrap portfolio
    point was paid); [`Miss] = fully cold. Accept-thread only: the
    session mutates in place and shares the tier-1 scratch. Results
    are never inserted into the allocate tiers. *)

type explore_value = {
  frontier : string;
      (** {!Flow.Core.frontier_json} [~compact:true] of the answer *)
  explore_stats : (string * int) list;
      (** the explore counters (variants, cuts, memo hits) as rendered
          into the response's ["explore"] sub-object *)
  explore_warnings : Diag.t list;
}

val space_of_request :
  Protocol.request ->
  (Flow.Core.space * string, Diag.t list) result
(** Parse and canonicalise the request's space fields (orders, tiles,
    budgets, algorithms, certify) into an explorer space plus the
    canonical spec string the frontier tier is keyed on — parsed values
    are re-rendered, so request formatting never fragments the tier.
    Defaults: all legal orders, no tiling, {!Flow.default_budgets},
    CPA-RA. Bad fields are [E-PROTO-002]. *)

val explore :
  t -> resolved -> space:Flow.Core.space -> spec:string ->
  (explore_value * [ `Hit | `Miss ], Diag.t list) result
(** One kernel's frontier under a space spec, from the frontier tier or
    freshly explored (and inserted). Accept-thread only, like
    {!rebudget}; the explorer runs serially there. Never touches the
    allocate tiers. *)

val stats : t -> (string * int) list
(** Served-request count plus per-tier entries/bytes/hits/misses/
    evictions (the session store included), as rendered by
    {!Protocol.response_stats}. *)
