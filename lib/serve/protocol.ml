module Diag = Srfa_util.Diag

(* ---- minimal JSON ------------------------------------------------------
   The request protocol is one flat JSON object per line; no installed
   JSON library is assumed, so a small recursive-descent reader lives
   here. It accepts full JSON (nested values included) — the request
   decoder then insists on the flat shape it documents. *)

type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Malformed of string

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Malformed (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then (
      pos := !pos + l;
      value)
    else fail (Printf.sprintf "expected %s" word)
  in
  let string_body () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
        advance ();
        match peek () with
        | Some '"' -> Buffer.add_char buf '"'; advance (); go ()
        | Some '\\' -> Buffer.add_char buf '\\'; advance (); go ()
        | Some '/' -> Buffer.add_char buf '/'; advance (); go ()
        | Some 'n' -> Buffer.add_char buf '\n'; advance (); go ()
        | Some 't' -> Buffer.add_char buf '\t'; advance (); go ()
        | Some 'r' -> Buffer.add_char buf '\r'; advance (); go ()
        | Some 'b' -> Buffer.add_char buf '\b'; advance (); go ()
        | Some 'f' -> Buffer.add_char buf '\012'; advance (); go ()
        | Some 'u' ->
          advance ();
          if !pos + 4 > n then fail "truncated \\u escape";
          let hex = String.sub s !pos 4 in
          let code =
            try int_of_string ("0x" ^ hex)
            with Failure _ -> fail "bad \\u escape"
          in
          (* Codepoints above 0x7f are re-encoded as UTF-8. *)
          if code < 0x80 then Buffer.add_char buf (Char.chr code)
          else if code < 0x800 then (
            Buffer.add_char buf (Char.chr (0xc0 lor (code lsr 6)));
            Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f))))
          else (
            Buffer.add_char buf (Char.chr (0xe0 lor (code lsr 12)));
            Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3f)));
            Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f))));
          pos := !pos + 4;
          go ()
        | _ -> fail "bad escape")
      | Some c ->
        Buffer.add_char buf c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    match int_of_string_opt text with
    | Some i -> Int i
    | None -> (
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail "malformed number")
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then (
        advance ();
        Obj [])
      else
        let rec members acc =
          skip_ws ();
          let key = string_body () in
          skip_ws ();
          expect ':';
          let v = value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ((key, v) :: acc)
          | Some '}' ->
            advance ();
            Obj (List.rev ((key, v) :: acc))
          | _ -> fail "expected , or }"
        in
        members []
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then (
        advance ();
        Arr [])
      else
        let rec elements acc =
          let v = value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elements (v :: acc)
          | Some ']' ->
            advance ();
            Arr (List.rev (v :: acc))
          | _ -> fail "expected , or ]"
        in
        elements []
    | Some '"' -> Str (string_body ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> number ()
  in
  let v = value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let member key = function Obj kvs -> List.assoc_opt key kvs | _ -> None

(* ---- requests ---------------------------------------------------------- *)

type op = Allocate | Rebudget | Explore | Stats | Shutdown

type kernel_spec = Named of string | Source of string

type request = {
  id : string option;
  op : op;
  kernel : kernel_spec option;
  device : string option;
  algorithm : string option;
  budget : int option;
  cut_work_limit : int option;
  deadline_ms : int option;
  stream : string option;
  orders : string option;
  tiles : string option;
  budgets : string option;
  algorithms : string option;
  certify : bool;
}

let proto_error msg = Diag.make ~code:"E-PROTO-001" msg

let field_error msg = Diag.make ~code:"E-PROTO-002" msg

let abuse_error msg = Diag.make ~code:"E-PROTO-003" msg

let deadline_error ~deadline_ms ~elapsed_ms =
  Diag.make ~code:"E-DEADLINE"
    (Printf.sprintf "request exceeded its %d ms deadline (%d ms elapsed)"
       deadline_ms elapsed_ms)
    ~context:
      [
        ("deadline_ms", string_of_int deadline_ms);
        ("elapsed_ms", string_of_int elapsed_ms);
      ]

let overload_error ~retry_after_ms =
  Diag.make ~code:"E-OVERLOAD"
    (Printf.sprintf "server at capacity; retry in %d ms" retry_after_ms)
    ~context:[ ("retry_after_ms", string_of_int retry_after_ms) ]

(* Best-effort id recovery from a line that failed to decode, so
   pipelining clients can still correlate the error response. The scan
   is string-aware: it walks the line reading complete JSON string
   tokens (with full escape decoding, \u included, mirroring
   [parse_json]) and accepts the first "id" token that is actually a
   key — followed by ':' and a string value. A string value that merely
   contains or equals "id" is stepped over as one token, so its
   characters can neither shadow the real key nor end the scan; a
   wrong [None] only costs the client its correlation. *)
let recover_id line =
  let n = String.length line in
  let is_ws = function ' ' | '\t' | '\n' | '\r' -> true | _ -> false in
  let rec skip_ws i = if i < n && is_ws line.[i] then skip_ws (i + 1) else i in
  (* Read the string token opening at [i] ([line.[i] = '"']): the decoded
     contents plus the index one past the closing quote, or [None] when
     the line truncates mid-token (nothing past it is trustworthy). *)
  let read_string i =
    let buf = Buffer.create 16 in
    let rec go i =
      if i >= n then None
      else
        match line.[i] with
        | '"' -> Some (Buffer.contents buf, i + 1)
        | '\\' when i + 1 < n -> (
          match line.[i + 1] with
          | '"' -> Buffer.add_char buf '"'; go (i + 2)
          | '\\' -> Buffer.add_char buf '\\'; go (i + 2)
          | '/' -> Buffer.add_char buf '/'; go (i + 2)
          | 'n' -> Buffer.add_char buf '\n'; go (i + 2)
          | 't' -> Buffer.add_char buf '\t'; go (i + 2)
          | 'r' -> Buffer.add_char buf '\r'; go (i + 2)
          | 'b' -> Buffer.add_char buf '\b'; go (i + 2)
          | 'f' -> Buffer.add_char buf '\012'; go (i + 2)
          | 'u' when i + 6 <= n -> (
            match int_of_string_opt ("0x" ^ String.sub line (i + 2) 4) with
            | None -> None
            | Some code ->
              if code < 0x80 then Buffer.add_char buf (Char.chr code)
              else if code < 0x800 then (
                Buffer.add_char buf (Char.chr (0xc0 lor (code lsr 6)));
                Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f))))
              else (
                Buffer.add_char buf (Char.chr (0xe0 lor (code lsr 12)));
                Buffer.add_char buf
                  (Char.chr (0x80 lor ((code lsr 6) land 0x3f)));
                Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f))));
              go (i + 6))
          | _ -> None)
        | '\\' -> None
        | c ->
          Buffer.add_char buf c;
          go (i + 1)
    in
    go (i + 1)
  in
  let rec scan i =
    if i >= n then None
    else if line.[i] <> '"' then scan (i + 1)
    else
      match read_string i with
      | None -> None
      | Some (tok, after) ->
        if tok <> "id" then scan after
        else
          let j = skip_ws after in
          if j >= n || line.[j] <> ':' then
            (* a string value spelling "id", not the key — keep looking *)
            scan after
          else
            let j = skip_ws (j + 1) in
            if j < n && line.[j] = '"' then
              match read_string j with
              | Some (v, _) -> Some v
              | None -> None
            else None (* the id is not a string; correlation is impossible *)
  in
  scan 0

let parse_request line =
  match parse_json line with
  | exception Malformed msg ->
    Error (proto_error (Printf.sprintf "malformed request JSON: %s" msg))
  | Obj _ as json -> (
    let str key =
      match member key json with
      | None -> Ok None
      | Some (Str s) -> Ok (Some s)
      | Some _ -> Error (Printf.sprintf "field %S must be a string" key)
    in
    let int key =
      match member key json with
      | None -> Ok None
      | Some (Int i) -> Ok (Some i)
      | Some _ -> Error (Printf.sprintf "field %S must be an integer" key)
    in
    let bool_field key =
      match member key json with
      | None -> Ok false
      | Some (Bool b) -> Ok b
      | Some _ -> Error (Printf.sprintf "field %S must be a boolean" key)
    in
    let ( let* ) r f =
      match r with Ok v -> f v | Error msg -> Error (field_error msg)
    in
    let* id = str "id" in
    let* opname = str "op" in
    let* kernel = str "kernel" in
    let* source = str "source" in
    let* device = str "device" in
    let* algorithm = str "algorithm" in
    let* budget = int "budget" in
    let* cut_work_limit = int "cut_work_limit" in
    let* deadline_ms = int "deadline_ms" in
    let* stream = str "stream" in
    let* orders = str "orders" in
    let* tiles = str "tiles" in
    let* budgets = str "budgets" in
    let* algorithms = str "algorithms" in
    let* certify = bool_field "certify" in
    let* op =
      match opname with
      | None | Some "allocate" -> Ok Allocate
      | Some "rebudget" -> Ok Rebudget
      | Some "explore" -> Ok Explore
      | Some "stats" -> Ok Stats
      | Some "shutdown" -> Ok Shutdown
      | Some other ->
        Error
          (Printf.sprintf
             "unknown op %S (allocate, rebudget, explore, stats, shutdown)"
             other)
    in
    let* kernel =
      match (kernel, source) with
      | Some _, Some _ -> Error "give either \"kernel\" or \"source\", not both"
      | Some name, None -> Ok (Some (Named name))
      | None, Some text -> Ok (Some (Source text))
      | None, None ->
        if op = Allocate then
          Error
            "an allocate request needs a \"kernel\" name or a \"source\" text"
        else if op = Rebudget then
          Error
            "a rebudget request needs a \"kernel\" name or a \"source\" text"
        else if op = Explore then
          Error
            "an explore request needs a \"kernel\" name or a \"source\" text"
        else Ok None
    in
    let* () =
      if op = Rebudget && budget = None then
        Error "a rebudget request needs a \"budget\" event target"
      else Ok ()
    in
    Ok
      {
        id; op; kernel; device; algorithm; budget; cut_work_limit;
        deadline_ms; stream; orders; tiles; budgets; algorithms; certify;
      })
  | _ -> Error (proto_error "request must be a JSON object")

(* ---- responses --------------------------------------------------------- *)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let cache_status_name = function
  | `Hit -> "hit"
  | `Analysis -> "analysis"
  | `Miss -> "miss"

let add_id buf id =
  match id with
  | Some id -> Buffer.add_string buf (Printf.sprintf "\"id\": \"%s\", " (escape id))
  | None -> ()

let json_of_report (r : Srfa_estimate.Report.t) =
  let buf = Buffer.create 512 in
  let groups kvs =
    "{"
    ^ String.concat ", "
        (List.map (fun (k, v) -> Printf.sprintf "\"%s\": %d" (escape k) v) kvs)
    ^ "}"
  in
  Buffer.add_string buf
    (Printf.sprintf
       "{\"kernel\": \"%s\", \"version\": \"%s\", \"algorithm\": \"%s\", \
        \"registers\": %d, \"cycles\": %d, \"memory_cycles\": %d, \
        \"ram_accesses\": %d, \"clock_ns\": %.1f, \"exec_time_us\": %.3f, \
        \"slices\": %d, \"slice_utilization\": %.4f, \"rams\": %d, \
        \"required\": %s, \"allocated\": %s"
       (escape r.Srfa_estimate.Report.kernel)
       (escape r.Srfa_estimate.Report.version)
       (escape r.Srfa_estimate.Report.algorithm)
       r.Srfa_estimate.Report.total_registers r.Srfa_estimate.Report.cycles
       r.Srfa_estimate.Report.memory_cycles r.Srfa_estimate.Report.ram_accesses
       r.Srfa_estimate.Report.clock_ns r.Srfa_estimate.Report.exec_time_us
       r.Srfa_estimate.Report.slices r.Srfa_estimate.Report.slice_utilization
       r.Srfa_estimate.Report.rams
       (groups r.Srfa_estimate.Report.required)
       (groups r.Srfa_estimate.Report.allocated));
  (match r.Srfa_estimate.Report.trace_summary with
  | Some s -> Buffer.add_string buf (Printf.sprintf ", \"trace\": \"%s\"" (escape s))
  | None -> ());
  Buffer.add_string buf "}";
  Buffer.contents buf

type rebudget_info = {
  rb_requested : int;
  rb_effective : int;
  rb_clamped : bool;
  rb_freed : int;
  rb_respent : int;
  rb_memoized : bool;
}

let json_of_rebudget rb =
  Printf.sprintf
    "{\"requested\": %d, \"effective\": %d, \"clamped\": %b, \"freed\": %d, \
     \"respent\": %d, \"memoized\": %b}"
    rb.rb_requested rb.rb_effective rb.rb_clamped rb.rb_freed rb.rb_respent
    rb.rb_memoized

let response_ok ?id ?rebudget ~cache ~warnings report =
  let buf = Buffer.create 600 in
  Buffer.add_string buf "{";
  add_id buf id;
  Buffer.add_string buf
    (Printf.sprintf "\"status\": \"ok\", \"cache\": \"%s\", \"report\": %s"
       (cache_status_name cache)
       (json_of_report report));
  (match rebudget with
  | Some rb ->
    Buffer.add_string buf
      (Printf.sprintf ", \"rebudget\": %s" (json_of_rebudget rb))
  | None -> ());
  (match warnings with
  | [] -> ()
  | ws ->
    Buffer.add_string buf ", \"warnings\": [";
    List.iteri
      (fun i w ->
        if i > 0 then Buffer.add_string buf ", ";
        Buffer.add_string buf (Diag.to_json w))
      ws;
    Buffer.add_string buf "]");
  Buffer.add_string buf "}";
  Buffer.contents buf

(* An explore response embeds the frontier exactly as
   [Flow.Core.frontier_json ~compact:true] rendered it — the same bytes
   the CLI's --json mode pretty-prints — plus the (schedule-dependent,
   never byte-compared) explore counters as a sub-object. *)
let response_explore ?id ~cache ~warnings ~stats frontier =
  let buf = Buffer.create (String.length frontier + 256) in
  Buffer.add_string buf "{";
  add_id buf id;
  Buffer.add_string buf
    (Printf.sprintf "\"status\": \"ok\", \"cache\": \"%s\", \"frontier\": %s"
       (cache_status_name cache) frontier);
  Buffer.add_string buf ", \"explore\": {";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_string buf ", ";
      Buffer.add_string buf (Printf.sprintf "\"%s\": %d" (escape k) v))
    stats;
  Buffer.add_string buf "}";
  (match warnings with
  | [] -> ()
  | ws ->
    Buffer.add_string buf ", \"warnings\": [";
    List.iteri
      (fun i w ->
        if i > 0 then Buffer.add_string buf ", ";
        Buffer.add_string buf (Diag.to_json w))
      ws;
    Buffer.add_string buf "]");
  Buffer.add_string buf "}";
  Buffer.contents buf

let response_error ?id diags =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "{";
  add_id buf id;
  Buffer.add_string buf "\"status\": \"error\", \"diagnostics\": [";
  List.iteri
    (fun i d ->
      if i > 0 then Buffer.add_string buf ", ";
      Buffer.add_string buf (Diag.to_json d))
    diags;
  Buffer.add_string buf "]}";
  Buffer.contents buf

let response_stats ?id (kvs : (string * int) list) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "{";
  add_id buf id;
  Buffer.add_string buf "\"status\": \"ok\", \"stats\": {";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_string buf ", ";
      Buffer.add_string buf (Printf.sprintf "\"%s\": %d" (escape k) v))
    kvs;
  Buffer.add_string buf "}}";
  Buffer.contents buf

let response_bye ?id () =
  let buf = Buffer.create 64 in
  Buffer.add_string buf "{";
  add_id buf id;
  Buffer.add_string buf "\"status\": \"ok\", \"bye\": true}";
  Buffer.contents buf
