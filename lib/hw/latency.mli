(** Operation and memory latencies, in cycles.

    The paper assumes known latencies for numeric operations and a memory
    access latency of 0 (register) or a constant (RAM). The default table
    models a 16-bit datapath on a Virtex-class device at the clock rates
    these behavioral designs achieve. *)

type t = private {
  ram_access : int;       (** cycles for one RAM block access *)
  register_access : int;  (** cycles for a register access (normally 0) *)
  binary : Srfa_ir.Op.binary -> int;
  unary : Srfa_ir.Op.unary -> int;
}

val default : t
(** RAM 1, register 0; every unary and binary operator 1 except division
    (2). At the 25 MHz clocks these designs achieve, a 16-bit multiply is
    single-cycle on Virtex LUTs. This is the table used by the worked
    example and Table 1. *)

val make :
  ?ram_access:int -> ?register_access:int ->
  ?binary:(Srfa_ir.Op.binary -> int) -> ?unary:(Srfa_ir.Op.unary -> int) ->
  unit -> t
(** Overrides over {!default}. @raise Invalid_argument on a negative
    latency or [ram_access = 0]. *)
