(** Mapping of program arrays onto storage banks.

    The paper's concurrency argument rests on distinct arrays living in
    distinct RAM blocks so their accesses overlap. The mapper gives each
    RAM-resident array a private bank of as many embedded blocks as its
    data needs (largest arrays placed first). Arrays that do not fit in the
    remaining on-chip blocks spill to a single shared external memory, as
    they would on the paper's board: external accesses all contend for one
    bus. *)

open Srfa_ir

type location =
  | Internal of { bank : int; blocks : int }
  | External

type t

val build : Device.t -> Decl.t list -> t
(** [build device arrays] maps the given arrays (those that need RAM
    backing). Never fails: data that does not fit on chip goes external. *)

val build_single_bank : Device.t -> Decl.t list -> t
(** Ablation mapping: every array shares one bank, so no two memory
    accesses ever overlap. Quantifies how much of the allocators' gain
    comes from the paper's distinct-RAM concurrency assumption. *)

val device : t -> Device.t

val blocks_used : t -> int
(** Embedded blocks consumed (never exceeds the device's count). *)

val location : t -> string -> location
(** @raise Not_found for arrays not mapped. *)

val bank_of : t -> string -> int
(** Bank identifier for scheduling: internal banks are [>= 0]; every
    external array shares bank [-1]. @raise Not_found as {!location}. *)

val ports_of_bank : t -> int -> int
(** Simultaneous accesses a bank supports per cycle: the device's port
    count for internal banks, 1 for the external bus. *)

val is_mapped : t -> string -> bool
val external_arrays : t -> string list
val conflict : t -> string -> string -> bool
(** Whether two arrays share a bank (their accesses serialise on ports). *)

val pp : Format.formatter -> t -> unit
