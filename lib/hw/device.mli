(** Fine-grain configurable device descriptions.

    Only the resource capacities the paper's evaluation touches: logic
    slices (registers and operators consume them) and embedded RAM blocks
    (arrays live there). The default device is the paper's target, a Xilinx
    Virtex XCV1000 in a BG560 package. *)

type t = private {
  name : string;
  slices : int;          (** total logic slices *)
  ram_blocks : int;      (** number of embedded block RAMs *)
  ram_block_bits : int;  (** capacity of one block in bits *)
  ram_ports : int;       (** simultaneous accesses per block per cycle *)
  flipflops_per_slice : int;
}

val make :
  name:string -> slices:int -> ram_blocks:int -> ram_block_bits:int ->
  ram_ports:int -> flipflops_per_slice:int -> t
(** @raise Invalid_argument on non-positive capacities. *)

val xcv1000 : t
(** Xilinx Virtex XCV1000 BG560: 12288 slices, 32 BlockRAMs of 4096 bits,
    dual-ported, 2 flip-flops per slice. *)

val xc2v6000 : t
(** Xilinx Virtex-II XC2V6000: a larger device for headroom experiments
    (33792 slices, 144 BlockRAMs of 18 Kbit). *)

val register_slices : t -> bits:int -> int
(** Slices needed to hold one register of the given width. *)

val blocks_for : t -> bits:int -> int
(** RAM blocks needed to store [bits] bits of array data (at least 1). *)

val pp : Format.formatter -> t -> unit
