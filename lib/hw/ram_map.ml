open Srfa_ir

type location = Internal of { bank : int; blocks : int } | External

type t = {
  device : Device.t;
  places : (string, location) Hashtbl.t;
  blocks_used : int;
  ports_override : int option;
}

let build device arrays =
  (* Largest-first so small arrays are the ones pushed off chip last-ditch;
     ties resolved by name for determinism. *)
  let sorted =
    List.sort
      (fun a b ->
        let c = Int.compare (Decl.size_bits b) (Decl.size_bits a) in
        if c <> 0 then c else String.compare a.Decl.name b.Decl.name)
      arrays
  in
  let places = Hashtbl.create 16 in
  let next_bank = ref 0 in
  let blocks_left = ref device.Device.ram_blocks in
  let used = ref 0 in
  let place d =
    let blocks = Device.blocks_for device ~bits:(Decl.size_bits d) in
    if blocks <= !blocks_left then begin
      Hashtbl.replace places d.Decl.name (Internal { bank = !next_bank; blocks });
      incr next_bank;
      blocks_left := !blocks_left - blocks;
      used := !used + blocks
    end
    else Hashtbl.replace places d.Decl.name External
  in
  List.iter place sorted;
  { device; places; blocks_used = !used; ports_override = None }

let build_single_bank device arrays =
  let places = Hashtbl.create 16 in
  let blocks = ref 0 in
  let place (d : Decl.t) =
    blocks := !blocks + Device.blocks_for device ~bits:(Decl.size_bits d);
    Hashtbl.replace places d.Decl.name (Internal { bank = 0; blocks = 0 })
  in
  List.iter place arrays;
  {
    device;
    places;
    blocks_used = min !blocks device.Device.ram_blocks;
    ports_override = Some 1;
  }

let device t = t.device
let blocks_used t = t.blocks_used

let location t name =
  match Hashtbl.find_opt t.places name with
  | Some l -> l
  | None -> raise Not_found

let bank_of t name =
  match location t name with
  | Internal { bank; _ } -> bank
  | External -> -1

let ports_of_bank t bank =
  match t.ports_override with
  | Some p -> p
  | None -> if bank < 0 then 1 else t.device.Device.ram_ports

let is_mapped t name = Hashtbl.mem t.places name

let external_arrays t =
  Hashtbl.fold
    (fun name loc acc -> match loc with External -> name :: acc | Internal _ -> acc)
    t.places []
  |> List.sort String.compare

let conflict t n1 n2 =
  n1 <> n2 && is_mapped t n1 && is_mapped t n2 && bank_of t n1 = bank_of t n2

let pp ppf t =
  Format.fprintf ppf "@[<v>ram map (%d blocks used):@," t.blocks_used;
  let lines =
    Hashtbl.fold
      (fun name loc acc ->
        let text =
          match loc with
          | Internal { bank; blocks } ->
            Printf.sprintf "  %s -> bank %d (%d blocks)" name bank blocks
          | External -> Printf.sprintf "  %s -> external" name
        in
        text :: acc)
      t.places []
  in
  List.iter (Format.fprintf ppf "%s@,") (List.sort String.compare lines);
  Format.fprintf ppf "@]"
