type t = {
  name : string;
  slices : int;
  ram_blocks : int;
  ram_block_bits : int;
  ram_ports : int;
  flipflops_per_slice : int;
}

let make ~name ~slices ~ram_blocks ~ram_block_bits ~ram_ports
    ~flipflops_per_slice =
  if slices <= 0 || ram_blocks <= 0 || ram_block_bits <= 0 || ram_ports <= 0
     || flipflops_per_slice <= 0
  then invalid_arg "Device.make: non-positive capacity";
  { name; slices; ram_blocks; ram_block_bits; ram_ports; flipflops_per_slice }

let xcv1000 =
  make ~name:"XCV1000-BG560" ~slices:12288 ~ram_blocks:32 ~ram_block_bits:4096
    ~ram_ports:2 ~flipflops_per_slice:2

let xc2v6000 =
  make ~name:"XC2V6000" ~slices:33792 ~ram_blocks:144 ~ram_block_bits:18432
    ~ram_ports:2 ~flipflops_per_slice:2

let register_slices t ~bits =
  (bits + t.flipflops_per_slice - 1) / t.flipflops_per_slice

let blocks_for t ~bits =
  max 1 ((bits + t.ram_block_bits - 1) / t.ram_block_bits)

let pp ppf t =
  Format.fprintf ppf "%s (%d slices, %d RAMs x %d bits, %d ports)" t.name
    t.slices t.ram_blocks t.ram_block_bits t.ram_ports
