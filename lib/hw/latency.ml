open Srfa_ir

type t = {
  ram_access : int;
  register_access : int;
  binary : Op.binary -> int;
  unary : Op.unary -> int;
}

let default_binary : Op.binary -> int = function
  | Op.Mul -> 1
  | Op.Div -> 2
  | Op.Add | Op.Sub | Op.Min | Op.Max | Op.Band | Op.Bor | Op.Bxor
  | Op.Eq | Op.Lt ->
    1

let default_unary : Op.unary -> int = function
  | Op.Neg | Op.Abs | Op.Bnot -> 1

let default =
  {
    ram_access = 1;
    register_access = 0;
    binary = default_binary;
    unary = default_unary;
  }

let make ?(ram_access = 1) ?(register_access = 0) ?(binary = default_binary)
    ?(unary = default_unary) () =
  if ram_access <= 0 then invalid_arg "Latency.make: ram_access must be > 0";
  if register_access < 0 then
    invalid_arg "Latency.make: negative register latency";
  let check_op l = if l < 0 then invalid_arg "Latency.make: negative latency" in
  List.iter (fun op -> check_op (binary op)) Op.all_binary;
  List.iter (fun op -> check_op (unary op)) Op.all_unary;
  { ram_access; register_access; binary; unary }
