type entry = { beta : int; pinned : bool }

type t = {
  analysis : Analysis.t;
  entries : entry array;
  budget : int;
  algorithm : string;
}

let make ~analysis ~budget ~algorithm entries =
  if Array.length entries <> Analysis.num_groups analysis then
    invalid_arg "Allocation.make: entry/group count mismatch";
  if Array.exists (fun e -> e.beta < 0) entries then
    invalid_arg "Allocation.make: negative register count";
  let total = Array.fold_left (fun acc e -> acc + e.beta) 0 entries in
  if total > budget then
    invalid_arg
      (Printf.sprintf "Allocation.make (%s): %d registers exceed budget %d"
         algorithm total budget);
  { analysis; entries; budget; algorithm }

let beta t gid = t.entries.(gid).beta
let entry t gid = t.entries.(gid)

let total_registers t =
  Array.fold_left (fun acc e -> acc + e.beta) 0 t.entries

let is_full t gid =
  let i = Analysis.info t.analysis gid in
  t.entries.(gid).beta >= i.Analysis.nu

let fully_pinned_groups t =
  let keep gid =
    let e = t.entries.(gid) in
    e.pinned && is_full t gid
  in
  List.filter keep (List.init (Array.length t.entries) Fun.id)

let residual_ram_groups t =
  let residual gid =
    let i = Analysis.info t.analysis gid in
    let e = t.entries.(gid) in
    (not i.Analysis.has_reuse) || (not e.pinned) || e.beta < i.Analysis.nu
  in
  List.filter residual (List.init (Array.length t.entries) Fun.id)

let pp ppf t =
  Format.fprintf ppf "@[<v>allocation (%s, budget %d):@," t.algorithm t.budget;
  Array.iteri
    (fun gid e ->
      let i = Analysis.info t.analysis gid in
      Format.fprintf ppf "  %-14s beta=%-5d nu=%-5d %s@,"
        (Group.name i.Analysis.group) e.beta i.Analysis.nu
        (if e.pinned then "pinned" else "plain"))
    t.entries;
  Format.fprintf ppf "  total = %d@]" (total_registers t)
