(** Register allocations: the output of every allocator.

    One entry per reference group. [beta] is the number of registers the
    group received; [pinned] records whether those registers are managed as
    reuse-window slots. The greedy baselines (FR-RA, PR-RA) pin only groups
    they explicitly allocate — the initial feasibility register of the other
    groups is plain datapath plumbing — whereas CPA-RA pins every group
    (DESIGN.md §4). *)

type entry = { beta : int; pinned : bool }

type t = private {
  analysis : Analysis.t;
  entries : entry array; (** by group id *)
  budget : int;          (** register budget the allocator ran under *)
  algorithm : string;    (** provenance label, e.g. "cpa-ra" *)
}

val make :
  analysis:Analysis.t -> budget:int -> algorithm:string -> entry array -> t
(** @raise Invalid_argument if the entry count differs from the group
    count, any [beta] is negative, or the total exceeds the budget. *)

val beta : t -> int -> int
(** Registers of a group, by id. *)

val entry : t -> int -> entry

val total_registers : t -> int

val is_full : t -> int -> bool
(** [beta >= nu]: the group is fully scalar-replaced. *)

val fully_pinned_groups : t -> int list
(** Ids of groups with [pinned] and [beta >= nu]. *)

val residual_ram_groups : t -> int list
(** Ids of groups that still produce RAM traffic in steady state: groups
    without reuse, and groups not fully covered by pinned registers. *)

val pp : Format.formatter -> t -> unit
