(** Reference groups.

    The paper allocates registers to {e array references}; references with
    the same array and the same affine index functions are one object (the
    write and the read of [d\[i\]\[k\]] in Fig. 1 share registers and share a
    node in the data-flow graph). This module collects the groups of a nest
    in program order. *)

open Srfa_ir

type t = private {
  id : int;            (** position in program order, starting at 0 *)
  ref_ : Expr.ref_;    (** representative reference *)
  reads : int;         (** number of read occurrences in the body *)
  writes : int;        (** number of write occurrences in the body *)
}

val collect : Nest.t -> t array
(** Groups of a nest, in order of first occurrence. *)

val is_read : t -> bool
val is_write : t -> bool

val name : t -> string
(** Rendered reference, e.g. ["d[i][k]"]. *)

val decl : t -> Decl.t

val find : t array -> Expr.ref_ -> t
(** @raise Invalid_argument (naming the reference) if it belongs to no
    group (foreign nest). *)

val pp : Format.formatter -> t -> unit
