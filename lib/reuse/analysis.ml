open Srfa_ir
module Arena = Srfa_util.Arena

type info = {
  group : Group.t;
  reuse : Kernelspace.t;
  has_reuse : bool;
  window_level : int;
  nu : int;
  accesses : int;
  distinct : int;
  saved_full : int;
  benefit_cost : float;
  lin_coeffs : int array;
  lin_const : int;
}

type t = { nest : Nest.t; groups : Group.t array; infos : info array }

(* The element index of an affine reference linearises (row-major) into a
   single affine function of the iteration point; precomputing its
   coefficients makes the per-iteration analyses cheap. *)
let linearise nest (r : Expr.ref_) =
  let vars = Array.of_list (Nest.loop_vars nest) in
  let depth = Array.length vars in
  let coeffs = Array.make depth 0 in
  let const = ref 0 in
  let dims = Array.of_list r.Expr.decl.Decl.dims in
  let stride = Array.make (Array.length dims) 1 in
  for d = Array.length dims - 2 downto 0 do
    stride.(d) <- stride.(d + 1) * dims.(d + 1)
  done;
  let add_dim d ix =
    const := !const + (stride.(d) * Affine.constant ix);
    for l = 0 to depth - 1 do
      coeffs.(l) <- coeffs.(l) + (stride.(d) * Affine.coeff ix vars.(l))
    done
  in
  List.iteri add_dim r.Expr.index;
  (coeffs, !const)

let element_of coeffs const point =
  let acc = ref const in
  for l = 0 to Array.length coeffs - 1 do
    acc := !acc + (coeffs.(l) * point.(l))
  done;
  !acc

(* nu: distinct elements during one reuse window. The window is one
   iteration of the carrying loop's body, scaled by the carry distance
   (delta consecutive iterations for coupled indices with non-unit steps):
   outer levels at 0, the carrying level sweeping [0, delta), inner levels
   over their full ranges. *)
let count_window_distinct ~counts ~level ~delta coeffs const =
  let depth = Array.length counts in
  let seen = Arena.Set.create ~capacity:64 () in
  let point = Array.make depth 0 in
  let lo = Array.make depth 0 in
  let hi = Array.make depth 0 in
  for l = 0 to depth - 1 do
    if l < level - 1 then hi.(l) <- 0
    else if l = level - 1 then hi.(l) <- min delta counts.(l) - 1
    else hi.(l) <- counts.(l) - 1
  done;
  let rec walk l =
    if l = depth then ignore (Arena.Set.add seen (element_of coeffs const point))
    else
      for c = lo.(l) to hi.(l) do
        point.(l) <- c;
        walk (l + 1)
      done
  in
  walk 0;
  Arena.Set.cardinal seen

let analyze nest =
  let groups = Group.collect nest in
  let loop_vars = Nest.loop_vars nest in
  let counts = Array.of_list (Nest.trip_counts nest) in
  let depth = Array.length counts in
  let iterations = Nest.iterations nest in
  let lins = Array.map (fun g -> linearise nest g.Group.ref_) groups in
  (* One pass over the iteration space counts distinct elements per group.
     Every group is touched each iteration (straight-line body), so
     accesses = iterations. *)
  let distinct_sets =
    Array.map (fun _ -> Arena.Set.create ~capacity:256 ()) groups
  in
  let visit point =
    Array.iteri
      (fun gi (coeffs, const) ->
        ignore (Arena.Set.add distinct_sets.(gi) (element_of coeffs const point)))
      lins
  in
  Iterspace.iter nest visit;
  let info_of gi (g : Group.t) =
    let coeffs, const = lins.(gi) in
    let reuse = Kernelspace.of_index ~loop_vars g.Group.ref_.Expr.index in
    let has_reuse = Kernelspace.has_reuse reuse in
    let window_level, delta =
      match (Kernelspace.carry_level reuse, Kernelspace.carry_distance reuse) with
      | Some l, Some d -> (l, d)
      | _ -> (depth + 1, 1)
    in
    let nu =
      if not has_reuse then 1
      else count_window_distinct ~counts ~level:window_level ~delta coeffs const
    in
    let accesses = iterations in
    let distinct = Arena.Set.cardinal distinct_sets.(gi) in
    let saved_full = if has_reuse then accesses - distinct else 0 in
    {
      group = g;
      reuse;
      has_reuse;
      window_level;
      nu;
      accesses;
      distinct;
      saved_full;
      benefit_cost = float_of_int saved_full /. float_of_int nu;
      lin_coeffs = coeffs;
      lin_const = const;
    }
  in
  { nest; groups; infos = Array.mapi info_of groups }

let info t gid =
  if gid < 0 || gid >= Array.length t.infos then
    invalid_arg "Analysis.info: group id out of range";
  t.infos.(gid)

let element_index i point = element_of i.lin_coeffs i.lin_const point
let num_groups t = Array.length t.infos

let total_registers_full t =
  Array.fold_left (fun acc i -> acc + i.nu) 0 t.infos

(* Candidate slot-rank expression: a mixed-radix index over the in-window
   levels the reference depends on. Verified against the true first-touch
   order by walking one window; coupled index maps (where later iterations
   revisit elements out of radix order) fail the check and return None. *)
let rank_affine t (i : info) =
  if not i.has_reuse then None
  else begin
    let counts = Array.of_list (Nest.trip_counts t.nest) in
    let depth = Array.length counts in
    let wl = i.window_level in
    let inner = List.init (depth - wl) (fun n -> wl + n) in
    let appearing =
      List.filter (fun l -> i.lin_coeffs.(l) <> 0) inner
    in
    let coeffs = Array.make depth 0 in
    let _ =
      List.fold_right
        (fun l radix ->
          coeffs.(l) <- radix;
          radix * counts.(l))
        appearing 1
    in
    (* Validate on one window (outer coordinates pinned to 0). *)
    let ranks = Arena.Table.create ~capacity:64 () in
    let next = ref 0 in
    let ok = ref true in
    let point = Array.make depth 0 in
    let rec walk l =
      if !ok then
        if l = depth then begin
          let e = element_of i.lin_coeffs i.lin_const point in
          let true_rank =
            match Arena.Table.find ranks e ~default:(-1) with
            | -1 ->
              let r = !next in
              Arena.Table.set ranks e r;
              incr next;
              r
            | r -> r
          in
          let predicted = ref 0 in
          for l' = 0 to depth - 1 do
            predicted := !predicted + (coeffs.(l') * point.(l'))
          done;
          if !predicted <> true_rank then ok := false
        end
        else begin
          let hi = if l < wl then 0 else counts.(l) - 1 in
          let c = ref 0 in
          while !ok && !c <= hi do
            point.(l) <- !c;
            walk (l + 1);
            incr c
          done
        end
    in
    walk 0;
    if !ok then Some coeffs else None
  end

module Tracker = struct
  (* Per-group first-touch ranks within the current reuse window. The
     rank table is an Arena.Table so the per-window clear (every time an
     outer coordinate changes — the inner hot loop of the simulator) is a
     generation bump, not a bucket-array wipe, and rank lookups allocate
     nothing. *)
  type gstate = {
    ranks : Arena.Table.t;
    mutable next_rank : int;
    window : int array; (* coords of levels 1..window_level *)
    mutable current_rank : int;
  }

  type tracker = { analysis : t; states : gstate array }

  let create analysis =
    let depth = List.length (Nest.trip_counts analysis.nest) in
    let mk (i : info) =
      let wl = min i.window_level depth in
      {
        ranks = Arena.Table.create ~capacity:64 ();
        next_rank = 0;
        window = Array.make (max wl 0) (-1);
        current_rank = max_int;
      }
    in
    { analysis; states = Array.map mk analysis.infos }

  let reset tr =
    Array.iter
      (fun st ->
        Arena.Table.reset st.ranks;
        st.next_rank <- 0;
        Array.fill st.window 0 (Array.length st.window) (-1);
        st.current_rank <- max_int)
      tr.states

  let step tr point =
    let infos = tr.analysis.infos in
    for gi = 0 to Array.length infos - 1 do
      let i = infos.(gi) in
      if i.has_reuse then begin
        let st = tr.states.(gi) in
        let wl = Array.length st.window in
        let changed = ref false in
        for l = 0 to wl - 1 do
          if st.window.(l) <> point.(l) then changed := true
        done;
        if !changed then begin
          Array.blit point 0 st.window 0 wl;
          Arena.Table.reset st.ranks;
          st.next_rank <- 0
        end;
        let e = element_index i point in
        let rank =
          match Arena.Table.find st.ranks e ~default:(-1) with
          | -1 ->
            let r = st.next_rank in
            Arena.Table.set st.ranks e r;
            st.next_rank <- r + 1;
            r
          | r -> r
        in
        st.current_rank <- rank
      end
    done

  let analysis tr = tr.analysis

  let slot_rank tr gid =
    let i = tr.analysis.infos.(gid) in
    if i.has_reuse then tr.states.(gid).current_rank else max_int

  let resident tr gid ~beta ~pinned =
    pinned && slot_rank tr gid < beta
end

let pp_info ppf i =
  Format.fprintf ppf
    "%s: reuse=%b level=%d nu=%d accesses=%d distinct=%d saved=%d b/c=%.2f"
    (Group.name i.group) i.has_reuse i.window_level i.nu i.accesses
    i.distinct i.saved_full i.benefit_cost
