(** Temporal reuse detection for affine references.

    A reference with index map [f : iteration -> element] exhibits temporal
    (self or group-within-one-reference) reuse exactly when [f] is not
    injective, i.e. the linear part of [f] has a non-trivial null space.
    A null-space vector [t] with first non-zero component at loop level [l]
    (1-based, outermost = 1) means iterations that differ by [t] touch the
    same element: the reuse is {e carried} by loop [l].

    Following the paper (and So & Hall), carrying is decided symbolically
    from the index coefficients — a loop with trip count 1 still "carries"
    the reuse its structure implies; only the {e saved-access} computation
    looks at actual trip counts. *)

type t

val of_index : loop_vars:string list -> Srfa_ir.Affine.t list -> t
(** [of_index ~loop_vars index] analyses the linear part of the index
    functions with respect to the enclosing loops (outermost first). *)

val has_reuse : t -> bool
(** True iff the index map is non-injective over the integers. *)

val carry_level : t -> int option
(** Outermost loop level (1-based) carrying reuse; [None] when injective. *)

val carry_distance : t -> int option
(** The minimal positive step of the carrying loop between two iterations
    touching the same element ([Some 1] for all unit-coefficient indices).
    [None] when injective. *)

val kernel_basis : t -> int array list
(** A basis of the integer null space, each vector primitive with positive
    leading component, in echelon order (leading positions increasing).
    Empty when injective. *)
