open Srfa_ir

(* Exact rational arithmetic for the tiny Gaussian eliminations below
   (matrices are at most rank x depth with depth <= 6). *)
module Rat = struct
  type t = { num : int; den : int } (* den > 0, gcd(num,den) = 1 *)

  let rec gcd a b = if b = 0 then abs a else gcd b (a mod b)

  let make num den =
    assert (den <> 0);
    let s = if den < 0 then -1 else 1 in
    let g = gcd num den in
    let g = if g = 0 then 1 else g in
    { num = s * num / g; den = s * den / g }

  let zero = { num = 0; den = 1 }
  let of_int n = { num = n; den = 1 }
  let is_zero r = r.num = 0
  let add a b = make ((a.num * b.den) + (b.num * a.den)) (a.den * b.den)
  let neg a = { a with num = -a.num }
  let sub a b = add a (neg b)
  let mul a b = make (a.num * b.num) (a.den * b.den)
  let div a b = if b.num = 0 then invalid_arg "Rat.div" else make (a.num * b.den) (a.den * b.num)
end

type t = {
  depth : int;
  basis : int array list; (* primitive integer kernel vectors, echelon order *)
}

(* Reduced row echelon form, in place; returns the pivot column of each
   surviving row. *)
let rref (m : Rat.t array array) =
  let rows = Array.length m in
  if rows = 0 then []
  else begin
    let cols = Array.length m.(0) in
    let pivots = ref [] in
    let r = ref 0 in
    for c = 0 to cols - 1 do
      if !r < rows then begin
        (* Find a row at or below !r with a non-zero entry in column c. *)
        let piv = ref (-1) in
        for i = !r to rows - 1 do
          if !piv < 0 && not (Rat.is_zero m.(i).(c)) then piv := i
        done;
        if !piv >= 0 then begin
          let tmp = m.(!r) in
          m.(!r) <- m.(!piv);
          m.(!piv) <- tmp;
          let inv = Rat.div (Rat.of_int 1) m.(!r).(c) in
          m.(!r) <- Array.map (fun x -> Rat.mul inv x) m.(!r);
          for i = 0 to rows - 1 do
            if i <> !r && not (Rat.is_zero m.(i).(c)) then begin
              let f = m.(i).(c) in
              for j = 0 to cols - 1 do
                m.(i).(j) <- Rat.sub m.(i).(j) (Rat.mul f m.(!r).(j))
              done
            end
          done;
          pivots := (!r, c) :: !pivots;
          incr r
        end
      end
    done;
    List.rev !pivots
  end

(* Scale a rational vector to a primitive integer vector whose leading
   non-zero component is positive. *)
let to_primitive (v : Rat.t array) =
  let lcm a b = if a = 0 || b = 0 then max a b else a / Rat.gcd a b * b in
  let l = Array.fold_left (fun acc (r : Rat.t) -> lcm acc r.Rat.den) 1 v in
  let ints = Array.map (fun (r : Rat.t) -> r.Rat.num * (l / r.Rat.den)) v in
  let g = Array.fold_left (fun acc x -> Rat.gcd acc x) 0 ints in
  let g = if g = 0 then 1 else g in
  let ints = Array.map (fun x -> x / g) ints in
  let rec sign i =
    if i >= Array.length ints then 1
    else if ints.(i) <> 0 then compare ints.(i) 0
    else sign (i + 1)
  in
  if sign 0 < 0 then Array.map (fun x -> -x) ints else ints

let of_index ~loop_vars index =
  let depth = List.length loop_vars in
  let vars = Array.of_list loop_vars in
  let row_of ix =
    Array.map (fun v -> Rat.of_int (Affine.coeff ix v)) vars
  in
  let m = Array.of_list (List.map row_of index) in
  let pivots = rref m in
  let pivot_cols = List.map snd pivots in
  let free_cols =
    List.filter (fun c -> not (List.mem c pivot_cols)) (List.init depth Fun.id)
  in
  (* One kernel basis vector per free column: free var = 1, others from the
     pivot rows. *)
  let vector_for free =
    let v = Array.make depth Rat.zero in
    v.(free) <- Rat.of_int 1;
    let set (r, c) = v.(c) <- Rat.neg m.(r).(free) in
    List.iter set pivots;
    v
  in
  let raw = List.map vector_for free_cols in
  (* Echelonize the kernel basis itself so leading positions are canonical
     (outermost-first ordering of levels = column order). *)
  let basis =
    if raw = [] then []
    else begin
      let b = Array.of_list raw in
      let _ = rref b in
      Array.to_list b
      |> List.filter (fun v -> Array.exists (fun x -> not (Rat.is_zero x)) v)
      |> List.map to_primitive
      |> List.sort (fun a b ->
             let lead v =
               let rec go i = if v.(i) <> 0 then i else go (i + 1) in
               go 0
             in
             Int.compare (lead a) (lead b))
    end
  in
  { depth; basis }

let has_reuse t = t.basis <> []

let leading v =
  let rec go i =
    if i >= Array.length v then None
    else if v.(i) <> 0 then Some (i, v.(i))
    else go (i + 1)
  in
  go 0

let carry_level t =
  match t.basis with
  | [] -> None
  | v :: _ -> ( match leading v with Some (i, _) -> Some (i + 1) | None -> None)

let carry_distance t =
  match t.basis with
  | [] -> None
  | v :: _ -> ( match leading v with Some (_, c) -> Some (abs c) | None -> None)

let kernel_basis t = t.basis
