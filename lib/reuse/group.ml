open Srfa_ir

type t = { id : int; ref_ : Expr.ref_; reads : int; writes : int }

let collect nest =
  let table : t list ref = ref [] in
  let note kind (r : Expr.ref_) =
    match List.find_opt (fun g -> Expr.ref_equal g.ref_ r) !table with
    | Some g ->
      let g' =
        match kind with
        | `Read -> { g with reads = g.reads + 1 }
        | `Write -> { g with writes = g.writes + 1 }
      in
      table := List.map (fun x -> if x.id = g.id then g' else x) !table
    | None ->
      let id = List.length !table in
      let reads, writes =
        match kind with `Read -> (1, 0) | `Write -> (0, 1)
      in
      table := { id; ref_ = r; reads; writes } :: !table
  in
  let note_stmt (Expr.Assign (target, e)) =
    List.iter (note `Read) (Expr.loads e);
    note `Write target
  in
  List.iter note_stmt nest.Nest.body;
  let groups = List.sort (fun a b -> Int.compare a.id b.id) !table in
  Array.of_list groups

let is_read g = g.reads > 0
let is_write g = g.writes > 0
let name g = Format.asprintf "%a" Expr.pp_ref g.ref_
let decl g = g.ref_.Expr.decl

let find groups r =
  match Array.to_list groups |> List.find_opt (fun g -> Expr.ref_equal g.ref_ r) with
  | Some g -> g
  | None ->
    invalid_arg
      (Format.asprintf
         "Group.find: reference %a belongs to no group of this nest"
         Expr.pp_ref r)

let pp ppf g =
  Format.fprintf ppf "group %d: %a (%dr/%dw)" g.id Expr.pp_ref g.ref_
    g.reads g.writes
