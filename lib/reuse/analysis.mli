(** Whole-nest data-reuse analysis.

    For every reference group this module computes the quantities the
    paper's allocators consume:

    - whether the group has (symbolic) temporal reuse, and the carrying
      loop level;
    - [nu], the number of registers for {e full} scalar replacement: the
      number of distinct elements the group touches during one iteration of
      the carrying loop's body (the {e reuse window}) — So & Hall's register
      requirement;
    - total accesses (iterations that touch the group) and distinct
      elements over the whole nest;
    - [saved_full], the memory accesses eliminated by full replacement
      (accesses minus the unavoidable cold loads / final writebacks);
    - benefit/cost = saved accesses per required register.

    {b Residency semantics} (calibrated against the Fig. 2 worked example,
    see DESIGN.md §4): with [beta] registers {e pinned} to reuse-window
    slots, the accesses whose element has first-touch rank [< beta] within
    the current window are served by registers; every other access goes to
    RAM. Groups without reuse always go to RAM (their single register is
    the output flip-flop, not a cache). *)

open Srfa_ir

type info = private {
  group : Group.t;
  reuse : Kernelspace.t;
  has_reuse : bool;
  window_level : int;   (** carrying loop level, 1-based; [depth+1] if none *)
  nu : int;             (** registers for full scalar replacement *)
  accesses : int;       (** iterations touching the group *)
  distinct : int;       (** distinct elements over the whole nest *)
  saved_full : int;     (** accesses eliminated by full replacement *)
  benefit_cost : float; (** [saved_full / nu] *)
  lin_coeffs : int array; (** per-level coefficients of the linearised
                              element index *)
  lin_const : int;
}

type t = private {
  nest : Nest.t;
  groups : Group.t array;
  infos : info array;    (** indexed by group id *)
}

val analyze : Nest.t -> t

val info : t -> int -> info
(** By group id. @raise Invalid_argument when out of range. *)

val element_index : info -> int array -> int
(** Linearised element index touched at an iteration point. *)

val num_groups : t -> int

val rank_affine : t -> info -> int array option
(** Per-level coefficients [r] such that the group's slot rank at every
    iteration point equals [sum_l r.(l) * point.(l)]. The candidate — a
    mixed-radix index over the in-window loop levels the reference actually
    depends on — is validated against the first-touch order of one window
    walk; [None] when the window's first-touch order is not affine (e.g.
    coupled 2-D stencils like BIC's image reference), in which case code
    generation falls back to RAM for the partial range. *)

val total_registers_full : t -> int
(** Sum of [nu] over all groups: the register demand of aggressive full
    scalar replacement. *)

(** Sequential residency tracker. Walk the iteration space in execution
    order and ask, per group, whether the current access is served by a
    pinned register. *)
module Tracker : sig
  type tracker

  val create : t -> tracker

  val reset : tracker -> unit
  (** Return the tracker to its initial state (as if freshly created) so
      one tracker can be reused across walks of the same nest — the
      simulator scratch does this per evaluation. O(groups); does not
      shrink the rank tables, preserving their warmed-up capacity. *)

  val step : tracker -> int array -> unit
  (** Advance to the given iteration point (must follow execution order;
      windows reset as outer coordinates change). *)

  val analysis : tracker -> t
  (** The analysis the tracker was created from. *)

  val slot_rank : tracker -> int -> int
  (** [slot_rank tr gid] is the first-touch rank of the element the group
      touches at the current point, within the current reuse window. Groups
      without reuse report [max_int]. *)

  val resident : tracker -> int -> beta:int -> pinned:bool -> bool
  (** Whether the group's access at the current point is served by a
      register under the given allocation entry. *)
end

val pp_info : Format.formatter -> info -> unit
