(** Per-iteration cycle cost of a loop body.

    The body executes as one data-flow graph evaluation per iteration
    (serial execution model of the paper's Monet-generated designs): the
    iteration takes as long as the longest dependence chain, with RAM
    accesses to distinct blocks overlapping freely and accesses to the same
    block serialising on its ports. The schedule is ASAP list scheduling in
    topological order. *)

open Srfa_reuse

type t

type prepared
(** The DFG- and latency-dependent half of a model, flattened into int
    arrays (topological order, CSR adjacency, per-node latencies for both
    memory states) together with the scratch buffers every schedule
    overwrites. Building it once and passing it to {!create} makes each
    model construction and every {!makespan} call allocation-free — the
    simulator scratch holds one per kernel and reuses it across a whole
    budget ladder. One prepared may back several models (different RAM
    maps), but its scratch is single-threaded: do not interleave
    [makespan] calls from two models sharing a prepared, and give each
    domain its own. *)

val prepare : dfg:Srfa_dfg.Graph.t -> latency:Srfa_hw.Latency.t -> prepared

val create :
  ?prepared:prepared ->
  dfg:Srfa_dfg.Graph.t ->
  latency:Srfa_hw.Latency.t ->
  ram_map:Srfa_hw.Ram_map.t ->
  unit ->
  t
(** A [prepared] built from a different [dfg] or [latency] (physical
    inequality) is ignored and a private one built instead. *)

val makespan : t -> charged:(Group.t -> bool) -> int
(** Cycles one body iteration takes when exactly the [charged] groups hit
    RAM. *)

val compute_makespan : t -> int
(** Makespan when every access is register-served: the pure compute
    critical path. *)

val memory_cycles : t -> charged:(Group.t -> bool) -> int
(** [makespan - compute_makespan]: cycles attributable to memory. *)

val charged_path_bound : prepared -> charged:(Group.t -> bool) -> int
(** ASAP makespan with the [charged] groups at RAM latency but {e no}
    port booking: a lower bound on {!makespan} for the same charged set
    under {e any} RAM map (port contention only ever delays starts).
    The design-space explorer uses it to bound a variant's cycle cost
    before an allocation (and its map) exists. Overwrites the prepared
    scratch like {!makespan}: single-threaded. *)

val initiation_interval : t -> charged:(Group.t -> bool) -> int
(** Steady-state initiation interval if the body were fully pipelined:
    the larger of (a) the port pressure of the busiest RAM bank —
    charged accesses per iteration divided by the bank's ports, rounded
    up — and (b) the longest loop-carried recurrence (the op-latency path
    from the read of a group to the write of the same group within the
    body, e.g. an accumulator's multiply-add chain). A lower bound of 1.

    Pipelining is not the paper's execution model (Monet emits serial
    FSMs); {!Simulator} exposes it as an ablation: with private
    dual-ported banks pipelining erases the allocator differences
    entirely, and with scarce ports the access-count (knapsack) objective
    — not the critical path — becomes the right one. *)
