(** Cycle-stepped reference implementation of the body schedule.

    An independent second opinion on {!Cycle_model}: instead of booking
    port intervals along a topological order, this model advances a clock
    cycle by cycle, starting every dependence-ready node whose RAM bank
    has a free port that cycle. Both models implement ASAP list scheduling
    with the same tie-break (topological order), so they must agree; the
    test suite cross-checks them on the paper's kernels and on random
    nests. *)

open Srfa_reuse

exception Diverged of { cycles : int; cap : int }
(** The clock passed [cap] cycles without every node starting — the
    schedule is not converging (or the cap is too tight for the body).
    Callers degrade to {!Cycle_model}'s answer instead of aborting. *)

val makespan :
  ?cap:int ->
  dfg:Srfa_dfg.Graph.t ->
  latency:Srfa_hw.Latency.t ->
  ram_map:Srfa_hw.Ram_map.t ->
  charged:(Group.t -> bool) ->
  unit ->
  int
(** Cycles one body iteration takes under the given memory state. [cap]
    (default 100_000) is the iteration guard on the cycle-stepped clock.
    @raise Diverged when the clock exceeds [cap]. *)
