(** Register-file management policies.

    The paper pins each register to a compile-time reuse-window slot
    (policy {!Pinned}, the default everywhere). This module adds two
    dynamically managed alternatives so the benches can quantify why the
    static discipline is the right one for FPGA register files:

    - {!Lru}: the group's [beta] registers cache the most recently touched
      distinct elements (an oracle-free dynamic manager). Cyclic reuse
      windows larger than [beta] thrash it to zero hits — the classic
      LRU pathology the pinned discipline avoids.
    - {!Direct_mapped}: element [e] may only live in slot [e mod beta];
      conflicting elements evict each other.

    Dynamic policies ignore [pinned] flags: any allocated register can
    hold data (there is no compile-time steering to be faithful to). *)

open Srfa_reuse

type policy = Pinned | Lru | Direct_mapped

val policy_name : policy -> string
val policy_of_name : string -> policy option

type t

val create : ?tracker:Analysis.Tracker.tracker -> policy -> Allocation.t -> t
(** [tracker] donates a reusable {!Srfa_reuse.Analysis.Tracker} (reset on
    entry) so repeated simulations of the same nest skip rebuilding the
    per-group rank tables; one built from a different analysis is
    ignored. *)

val step : t -> int array -> unit
(** Advance to an iteration point (execution order). *)

val resident : t -> int -> bool
(** Whether group [gid]'s access at the current point is served by a
    register. For dynamic policies this also updates the replacement
    state, so call it exactly once per group per step. *)
