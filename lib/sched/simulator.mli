(** Whole-nest execution simulation.

    Walks the iteration space in execution order, tracking register
    residency per reference group (see {!Srfa_reuse.Analysis.Tracker}), and
    accumulates the cycle cost of every iteration under the given
    allocation. Per-iteration costs are memoised on the set of groups that
    hit RAM, so the walk is linear in the iteration count. *)

open Srfa_reuse

type ram_policy =
  | Private_banks  (** one bank per array: the paper's concurrency model *)
  | Single_bank    (** ablation: all accesses serialise on one port *)

type execution =
  | Serial     (** the paper's model: one body evaluation at a time *)
  | Pipelined  (** ablation: fully pipelined body, cost = initiation
                   interval (see {!Cycle_model.initiation_interval}) *)

type config = {
  latency : Srfa_hw.Latency.t;
  device : Srfa_hw.Device.t;
  control_overhead : int;
      (** extra cycles of loop control per body iteration *)
  ram_policy : ram_policy;
  residency : Residency.policy;
      (** register-file management discipline; the paper's is {!Residency.Pinned} *)
  execution : execution;
  mask_group_cap : int;
      (** widest charged-group set memoised on an int bitmask (default 60).
          Nests with more reference groups fall back to a string-keyed
          memo: identical results, slightly slower lookups, and a
          ["guard.mask"] trace event instead of the former hard abort. *)
}

val default_config : config
(** {!Srfa_hw.Latency.default}, XCV1000, no separate control cycles (the
    FSM overlaps next-state computation with the datapath). *)

type result = {
  iterations : int;
  total_cycles : int;       (** makespans + control overhead *)
  memory_cycles : int;      (** cycles attributable to RAM accesses *)
  compute_cycles : int;     (** pure-compute makespan times iterations *)
  control_cycles : int;
  ram_accesses : int;       (** charged group-accesses over the run *)
  register_hits : int;      (** accesses served by pinned registers *)
  group_ram_accesses : int array; (** per group id *)
}

type scratch
(** Reusable simulation state for one (analysis, latency) pair: the DFG,
    the prepared {!Cycle_model} half, the residency tracker, the makespan
    memos and the per-iteration bit buffers. Passing one to {!run} makes
    repeated simulations of the same nest (a budget ladder, a portfolio, a
    sweep) allocation-free apart from the result record itself. Not
    thread-safe: keep one scratch per domain. *)

val scratch :
  ?config:config -> ?dfg:Srfa_dfg.Graph.t -> Analysis.t -> scratch
(** [config] supplies the latency table the scratch is specialised to
    (default {!default_config}); [dfg] donates an already-built graph for
    the same analysis (checked by identity, else rebuilt). *)

val run :
  ?trace:Srfa_util.Trace.sink ->
  ?config:config ->
  ?scratch:scratch ->
  Allocation.t ->
  result
(** Simulates the allocation's nest. [trace] receives a ["guard.mask"]
    event when the nest exceeds [config.mask_group_cap] groups and the
    walk degrades to the string-keyed memo. A [scratch] built from a
    different analysis or latency table is ignored (a fresh one is made),
    so threading one through heterogeneous call sites is always safe. *)

val profile :
  ?trace:Srfa_util.Trace.sink ->
  ?config:config ->
  ?scratch:scratch ->
  Allocation.t ->
  (int * int) list
(** Histogram of per-iteration cycle costs: [(cost, iterations)] pairs,
    ascending by cost. The paper narrates designs this way ("iterations
    have either 1 or 2 memory accesses"); the profile makes the claim
    checkable for any design. *)

val memory_cycles_only : ?config:config -> Allocation.t -> int
(** Convenience: the [memory_cycles] field alone (the paper's T_mem). *)

val ram_map_for : config -> Allocation.t -> Srfa_hw.Ram_map.t
(** The array-to-block mapping the simulation uses: every array backed by
    RAM in steady state, plus input/output arrays (their data must be
    staged in RAM before/after the computation). *)

val pp_result : Format.formatter -> result -> unit
