open Srfa_reuse
module Graph = Srfa_dfg.Graph

type t = {
  dfg : Graph.t;
  latency : Srfa_hw.Latency.t;
  ram_map : Srfa_hw.Ram_map.t;
  topo : int list;
  compute_makespan : int;
}

(* ASAP list scheduling with RAM port constraints. Charged reference nodes
   occupy a port of their array's bank for [ram_access] cycles; everything
   else only waits for its predecessors. *)
let schedule_makespan dfg latency ram_map topo ~charged =
  let n = Graph.num_nodes dfg in
  let finish = Array.make n 0 in
  let ports : (int, int list ref) Hashtbl.t = Hashtbl.create 8 in
  let ram = latency.Srfa_hw.Latency.ram_access in
  let alloc_port bank ready =
    let nports =
      if bank >= -1 then Srfa_hw.Ram_map.ports_of_bank ram_map bank
      else 2 (* virtual banks of unmapped arrays: dual-ported default *)
    in
    let slots =
      match Hashtbl.find_opt ports bank with
      | Some s -> s
      | None ->
        let s = ref [] in
        Hashtbl.replace ports bank s;
        s
    in
    (* Find the earliest start >= ready when fewer than [nports] accesses
       overlap; accesses are unit-grain intervals [start, start+ram). *)
    let overlaps start = List.filter (fun s -> abs (s - start) < ram) !slots in
    let rec find start =
      if List.length (overlaps start) < nports then start else find (start + 1)
    in
    let start = find ready in
    slots := start :: !slots;
    start
  in
  let visit u =
    let nd = (Graph.nodes dfg).(u) in
    let ready =
      List.fold_left (fun acc p -> max acc finish.(p)) 0 (Graph.preds dfg u)
    in
    let dur = Graph.node_latency dfg ~latency ~charged nd in
    let start =
      match Graph.group_of_node nd with
      | Some g when charged g ->
        let bank =
          let name = (Group.decl g).Srfa_ir.Decl.name in
          if Srfa_hw.Ram_map.is_mapped ram_map name then
            Srfa_hw.Ram_map.bank_of ram_map name
          else -1000 - g.Group.id (* unmapped: private virtual banks *)
        in
        alloc_port bank ready
      | Some _ | None -> ready
    in
    finish.(u) <- start + dur
  in
  List.iter visit topo;
  Array.fold_left max 0 finish

let create ~dfg ~latency ~ram_map =
  let topo = Graph.topo_order ~what:"Cycle_model.create" dfg in
  let compute_makespan =
    schedule_makespan dfg latency ram_map topo ~charged:(fun _ -> false)
  in
  { dfg; latency; ram_map; topo; compute_makespan }

let makespan t ~charged =
  schedule_makespan t.dfg t.latency t.ram_map t.topo ~charged

let compute_makespan t = t.compute_makespan

let memory_cycles t ~charged = makespan t ~charged - t.compute_makespan

let bank_of_group t (g : Group.t) =
  let name = (Group.decl g).Srfa_ir.Decl.name in
  if Srfa_hw.Ram_map.is_mapped t.ram_map name then
    Srfa_hw.Ram_map.bank_of t.ram_map name
  else -1000 - g.Group.id

(* Longest op-latency path between two nodes of the same group (read
   before write): the loop-carried recurrence a pipelined schedule cannot
   break. *)
let recurrence_length t =
  let n = Graph.num_nodes t.dfg in
  let nodes = Graph.nodes t.dfg in
  let weight u =
    match nodes.(u).Graph.kind with
    | Graph.Ref_node _ | Graph.Const_node _ -> 0
    | Graph.Binary_node op -> t.latency.Srfa_hw.Latency.binary op
    | Graph.Unary_node op -> t.latency.Srfa_hw.Latency.unary op
  in
  (* dist.(u).(v)-free approach: for each group with a source node and a
     later sink node, longest path from source to sink. *)
  let best = ref 1 in
  let sources = Hashtbl.create 8 and sinks = Hashtbl.create 8 in
  Array.iter
    (fun (nd : Graph.node) ->
      match Graph.group_of_node nd with
      | Some g ->
        if Graph.preds t.dfg nd.Graph.id = [] then
          Hashtbl.replace sources g.Group.id nd.Graph.id
        else Hashtbl.replace sinks g.Group.id nd.Graph.id
      | None -> ())
    nodes;
  Hashtbl.iter
    (fun gid src ->
      match Hashtbl.find_opt sinks gid with
      | None -> ()
      | Some sink ->
        (* longest path src -> sink over op weights *)
        let dist = Array.make n min_int in
        dist.(src) <- 0;
        List.iter
          (fun u ->
            if dist.(u) > min_int then
              List.iter
                (fun v ->
                  let d = dist.(u) + weight v in
                  if d > dist.(v) then dist.(v) <- d)
                (Graph.succs t.dfg u))
          t.topo;
        if dist.(sink) > !best then best := dist.(sink))
    sources;
  !best

let initiation_interval t ~charged =
  let pressure = Hashtbl.create 8 in
  let note (nd : Graph.node) =
    match Graph.group_of_node nd with
    | Some g when charged g ->
      let b = bank_of_group t g in
      Hashtbl.replace pressure b
        (1 + Option.value ~default:0 (Hashtbl.find_opt pressure b))
    | Some _ | None -> ()
  in
  Array.iter note (Graph.nodes t.dfg);
  let port_ii =
    Hashtbl.fold
      (fun b accesses acc ->
        let ports =
          if b >= -1 then Srfa_hw.Ram_map.ports_of_bank t.ram_map b else 2
        in
        let per_access = t.latency.Srfa_hw.Latency.ram_access in
        max acc ((accesses * per_access + ports - 1) / ports))
      pressure 0
  in
  max 1 (max port_ii (recurrence_length t))
