open Srfa_reuse
module Graph = Srfa_dfg.Graph

(* Everything that depends only on the DFG's structure and the latency
   table, flattened into int arrays once so the per-makespan work (called
   on every simulator memo miss) allocates nothing: the topological order,
   a CSR predecessor adjacency, per-node latencies for both memory states,
   the ref-node index, and the scratch buffers each schedule overwrites
   wholesale. One prepared may back many models over different RAM maps
   (the simulator scratch reuses one across a whole budget ladder), but
   its scratch is single-threaded: don't interleave makespan calls from
   two models sharing a prepared. *)
type prepared = {
  pdfg : Graph.t;
  platency : Srfa_hw.Latency.t;
  topo : int array;
  pred_off : int array; (* CSR offsets, length n+1 *)
  pred_arr : int array;
  lat_charged : int array; (* node latency when its group hits RAM *)
  lat_uncharged : int array; (* node latency when register-served *)
  ref_ids : int array; (* node ids of reference nodes *)
  ref_grps : Group.t array; (* their groups, same indexing *)
  mutable recurrence : int; (* lazy: -1 until computed *)
  (* scratch, overwritten on every schedule *)
  finish : int array;
  charged_node : bool array;
  slot_bank : int array; (* booked RAM accesses of the current schedule *)
  slot_start : int array;
}

type t = {
  prepared : prepared;
  ram_map : Srfa_hw.Ram_map.t;
  (* RAM banks renumbered densely per model (raw ids mix real banks with
     the [-1000 - gid] virtual banks of unmapped arrays). *)
  node_slot : int array; (* node id -> dense bank slot; -1 for non-refs *)
  slot_ports : int array; (* dense bank slot -> port count *)
  pressure : int array; (* initiation-interval scratch, one per slot *)
  compute_makespan : int;
}

let prepare ~dfg ~latency =
  let n = Graph.num_nodes dfg in
  let topo =
    Array.of_list (Graph.topo_order ~what:"Cycle_model.prepare" dfg)
  in
  let pred_off = Array.make (n + 1) 0 in
  for u = 0 to n - 1 do
    pred_off.(u + 1) <- pred_off.(u) + List.length (Graph.preds dfg u)
  done;
  let pred_arr = Array.make (max pred_off.(n) 1) 0 in
  for u = 0 to n - 1 do
    List.iteri
      (fun k p -> pred_arr.(pred_off.(u) + k) <- p)
      (Graph.preds dfg u)
  done;
  let lat_charged = Array.make n 0 and lat_uncharged = Array.make n 0 in
  let nodes = Graph.nodes dfg in
  let refs = ref [] in
  for u = n - 1 downto 0 do
    (match nodes.(u).Graph.kind with
    | Graph.Ref_node g ->
      lat_charged.(u) <- latency.Srfa_hw.Latency.ram_access;
      lat_uncharged.(u) <- latency.Srfa_hw.Latency.register_access;
      refs := (u, g) :: !refs
    | Graph.Binary_node op ->
      let l = latency.Srfa_hw.Latency.binary op in
      lat_charged.(u) <- l;
      lat_uncharged.(u) <- l
    | Graph.Unary_node op ->
      let l = latency.Srfa_hw.Latency.unary op in
      lat_charged.(u) <- l;
      lat_uncharged.(u) <- l
    | Graph.Const_node _ -> ());
    ()
  done;
  let nrefs = List.length !refs in
  {
    pdfg = dfg;
    platency = latency;
    topo;
    pred_off;
    pred_arr;
    lat_charged;
    lat_uncharged;
    ref_ids = Array.of_list (List.map fst !refs);
    ref_grps = Array.of_list (List.map snd !refs);
    recurrence = -1;
    finish = Array.make (max n 1) 0;
    charged_node = Array.make (max n 1) false;
    slot_bank = Array.make (max nrefs 1) 0;
    slot_start = Array.make (max nrefs 1) 0;
  }

(* ASAP list scheduling with RAM port constraints, on the flattened
   graph. Charged reference nodes occupy a port of their array's bank for
   [ram_access] cycles; everything else only waits for its predecessors.
   Booked accesses live in the prepared slot arrays (unit-grain intervals
   [start, start+ram)); the per-candidate overlap scan matches the
   per-bank interval lists of the boxed implementation result-for-result. *)
let schedule t ~charged =
  let p = t.prepared in
  let ram = p.platency.Srfa_hw.Latency.ram_access in
  for k = 0 to Array.length p.ref_ids - 1 do
    p.charged_node.(p.ref_ids.(k)) <- charged p.ref_grps.(k)
  done;
  let used = ref 0 in
  let best = ref 0 in
  for i = 0 to Array.length p.topo - 1 do
    let u = p.topo.(i) in
    let ready = ref 0 in
    for j = p.pred_off.(u) to p.pred_off.(u + 1) - 1 do
      let f = p.finish.(p.pred_arr.(j)) in
      if f > !ready then ready := f
    done;
    let is_charged_ref = t.node_slot.(u) >= 0 && p.charged_node.(u) in
    let dur = if p.charged_node.(u) then p.lat_charged.(u) else p.lat_uncharged.(u) in
    let start =
      if not is_charged_ref then !ready
      else begin
        let b = t.node_slot.(u) in
        let nports = t.slot_ports.(b) in
        (* Earliest start >= ready when fewer than [nports] booked
           accesses of this bank overlap the candidate interval. *)
        let rec find start =
          let overlapping = ref 0 in
          for s = 0 to !used - 1 do
            if p.slot_bank.(s) = b && abs (p.slot_start.(s) - start) < ram
            then incr overlapping
          done;
          if !overlapping < nports then start else find (start + 1)
        in
        let start = find !ready in
        p.slot_bank.(!used) <- b;
        p.slot_start.(!used) <- start;
        incr used;
        start
      end
    in
    let f = start + dur in
    p.finish.(u) <- f;
    if f > !best then best := f
  done;
  !best

let create ?prepared ~dfg ~latency ~ram_map () =
  let p =
    match prepared with
    | Some p when p.pdfg == dfg && p.platency == latency -> p
    | Some _ | None -> prepare ~dfg ~latency
  in
  let n = Graph.num_nodes dfg in
  (* Dense renumbering of the banks this model's ref nodes touch. *)
  let node_slot = Array.make (max n 1) (-1) in
  let nrefs = Array.length p.ref_ids in
  let raw_ids = Array.make (max nrefs 1) 0 in
  let ports = Array.make (max nrefs 1) 0 in
  let nslots = ref 0 in
  for k = 0 to nrefs - 1 do
    let g = p.ref_grps.(k) in
    let name = (Group.decl g).Srfa_ir.Decl.name in
    let raw =
      if Srfa_hw.Ram_map.is_mapped ram_map name then
        Srfa_hw.Ram_map.bank_of ram_map name
      else -1000 - g.Group.id (* unmapped: private virtual banks *)
    in
    let slot = ref (-1) in
    for s = 0 to !nslots - 1 do
      if raw_ids.(s) = raw then slot := s
    done;
    if !slot < 0 then begin
      slot := !nslots;
      raw_ids.(!nslots) <- raw;
      ports.(!nslots) <-
        (if raw >= -1 then Srfa_hw.Ram_map.ports_of_bank ram_map raw
         else 2 (* virtual banks of unmapped arrays: dual-ported default *));
      incr nslots
    end;
    node_slot.(p.ref_ids.(k)) <- !slot
  done;
  let t =
    {
      prepared = p;
      ram_map;
      node_slot;
      slot_ports = ports;
      pressure = Array.make (max !nslots 1) 0;
      compute_makespan = 0;
    }
  in
  { t with compute_makespan = schedule t ~charged:(fun _ -> false) }

let makespan t ~charged = schedule t ~charged
let compute_makespan t = t.compute_makespan
let memory_cycles t ~charged = makespan t ~charged - t.compute_makespan

(* ASAP over the flattened graph with charged latencies but no port
   booking: every charged access is served the moment its operands are
   ready, as if its bank had unlimited ports. Ports only ever delay
   starts, so this is a lower bound on [makespan] under any RAM map —
   which is what lets the design-space explorer bound a variant's cycle
   cost before committing to an allocation (and hence to a map). Reuses
   the prepared scratch like [schedule]: single-threaded. *)
let charged_path_bound p ~charged =
  for k = 0 to Array.length p.ref_ids - 1 do
    p.charged_node.(p.ref_ids.(k)) <- charged p.ref_grps.(k)
  done;
  let best = ref 0 in
  for i = 0 to Array.length p.topo - 1 do
    let u = p.topo.(i) in
    let ready = ref 0 in
    for j = p.pred_off.(u) to p.pred_off.(u + 1) - 1 do
      let f = p.finish.(p.pred_arr.(j)) in
      if f > !ready then ready := f
    done;
    let dur =
      if p.charged_node.(u) then p.lat_charged.(u) else p.lat_uncharged.(u)
    in
    let f = !ready + dur in
    p.finish.(u) <- f;
    if f > !best then best := f
  done;
  !best

(* Longest op-latency path between two nodes of the same group (read
   before write): the loop-carried recurrence a pipelined schedule cannot
   break. Depends only on the DFG and latency table, so it is computed
   once per prepared and memoised. *)
let recurrence_length p =
  if p.recurrence >= 0 then p.recurrence
  else begin
    let dfg = p.pdfg in
    let n = Graph.num_nodes dfg in
    let nodes = Graph.nodes dfg in
    let weight u =
      match nodes.(u).Graph.kind with
      | Graph.Ref_node _ | Graph.Const_node _ -> 0
      | Graph.Binary_node op -> p.platency.Srfa_hw.Latency.binary op
      | Graph.Unary_node op -> p.platency.Srfa_hw.Latency.unary op
    in
    (* For each group with a source node and a later sink node, longest
       path from source to sink. *)
    let best = ref 1 in
    let sources = Hashtbl.create 8 and sinks = Hashtbl.create 8 in
    Array.iter
      (fun (nd : Graph.node) ->
        match Graph.group_of_node nd with
        | Some g ->
          if Graph.preds dfg nd.Graph.id = [] then
            Hashtbl.replace sources g.Group.id nd.Graph.id
          else Hashtbl.replace sinks g.Group.id nd.Graph.id
        | None -> ())
      nodes;
    Hashtbl.iter
      (fun gid src ->
        match Hashtbl.find_opt sinks gid with
        | None -> ()
        | Some sink ->
          let dist = Array.make n min_int in
          dist.(src) <- 0;
          Array.iter
            (fun u ->
              if dist.(u) > min_int then
                List.iter
                  (fun v ->
                    let d = dist.(u) + weight v in
                    if d > dist.(v) then dist.(v) <- d)
                  (Graph.succs dfg u))
            p.topo;
          if dist.(sink) > !best then best := dist.(sink))
      sources;
    p.recurrence <- !best;
    !best
  end

let initiation_interval t ~charged =
  let p = t.prepared in
  Array.fill t.pressure 0 (Array.length t.pressure) 0;
  for k = 0 to Array.length p.ref_ids - 1 do
    if charged p.ref_grps.(k) then begin
      let slot = t.node_slot.(p.ref_ids.(k)) in
      t.pressure.(slot) <- t.pressure.(slot) + 1
    end
  done;
  let per_access = p.platency.Srfa_hw.Latency.ram_access in
  let port_ii = ref 0 in
  for s = 0 to Array.length t.pressure - 1 do
    if t.pressure.(s) > 0 then begin
      let ports = t.slot_ports.(s) in
      let ii = ((t.pressure.(s) * per_access) + ports - 1) / ports in
      if ii > !port_ii then port_ii := ii
    end
  done;
  max 1 (max !port_ii (recurrence_length p))
