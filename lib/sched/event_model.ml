open Srfa_reuse
module Graph = Srfa_dfg.Graph

exception Diverged of { cycles : int; cap : int }

let makespan ?(cap = 100_000) ~dfg ~latency ~ram_map ~charged () =
  let n = Graph.num_nodes dfg in
  if n = 0 then 0
  else begin
    let topo =
      Array.of_list (Graph.topo_order ~what:"Event_model.makespan" dfg)
    in
    let duration = Array.make n 0 in
    let bank = Array.make n min_int (* min_int = not a charged access *) in
    let ports = Array.make n 0 in
    Array.iteri
      (fun u (nd : Graph.node) ->
        duration.(u) <- Graph.node_latency dfg ~latency ~charged nd;
        match Graph.group_of_node nd with
        | Some g when charged g ->
          let b =
            let name = (Group.decl g).Srfa_ir.Decl.name in
            if Srfa_hw.Ram_map.is_mapped ram_map name then
              Srfa_hw.Ram_map.bank_of ram_map name
            else -1000 - g.Group.id
          in
          bank.(u) <- b;
          (* Virtual banks of unmapped arrays are dual-ported, as in
             Cycle_model. *)
          ports.(u) <-
            (if b >= -1 then Srfa_hw.Ram_map.ports_of_bank ram_map b else 2)
        | Some _ | None -> ())
      (Graph.nodes dfg);
    let finish = Array.make n (-1) in
    let started = Array.make n false in
    let deps_done_by u t =
      List.for_all
        (fun p -> started.(p) && finish.(p) >= 0 && finish.(p) <= t)
        (Graph.preds dfg u)
    in
    (* In-flight RAM accesses as parallel (bank, finish) arrays, compacted
       in place each cycle — the flat equivalent of the old list filter. *)
    let fly_bank = Array.make n 0 in
    let fly_fin = Array.make n 0 in
    let fly = ref 0 in
    let port_load b =
      let load = ref 0 in
      for i = 0 to !fly - 1 do
        if fly_bank.(i) = b then incr load
      done;
      !load
    in
    let clock = ref 0 in
    let remaining = ref n in
    while !remaining > 0 do
      let t = !clock in
      (* Drop accesses that have finished by cycle t. *)
      let keep = ref 0 in
      for i = 0 to !fly - 1 do
        if fly_fin.(i) > t then begin
          fly_bank.(!keep) <- fly_bank.(i);
          fly_fin.(!keep) <- fly_fin.(i);
          incr keep
        end
      done;
      fly := !keep;
      (* Start ready nodes in topological order; a node is ready when its
         predecessors have finished by cycle t. *)
      Array.iter
        (fun u ->
          if (not started.(u)) && deps_done_by u t then begin
            let b = bank.(u) in
            if b = min_int then begin
              started.(u) <- true;
              finish.(u) <- t + duration.(u);
              decr remaining
            end
            else if port_load b < ports.(u) then begin
              started.(u) <- true;
              let fin = t + duration.(u) in
              finish.(u) <- fin;
              fly_bank.(!fly) <- b;
              fly_fin.(!fly) <- fin;
              incr fly;
              decr remaining
            end
          end)
        topo;
      incr clock;
      if !clock > cap then raise (Diverged { cycles = !clock; cap })
    done;
    Array.fold_left max 0 finish
  end
