open Srfa_reuse
module Graph = Srfa_dfg.Graph

exception Diverged of { cycles : int; cap : int }

let makespan ?(cap = 100_000) ~dfg ~latency ~ram_map ~charged () =
  let n = Graph.num_nodes dfg in
  if n = 0 then 0
  else begin
    let topo =
      Array.of_list (Graph.topo_order ~what:"Event_model.makespan" dfg)
    in
    let duration u =
      Graph.node_latency dfg ~latency ~charged (Graph.nodes dfg).(u)
    in
    let bank u =
      let nd = (Graph.nodes dfg).(u) in
      match Graph.group_of_node nd with
      | Some g when charged g ->
        let name = (Group.decl g).Srfa_ir.Decl.name in
        if Srfa_hw.Ram_map.is_mapped ram_map name then
          Some (Srfa_hw.Ram_map.bank_of ram_map name)
        else Some (-1000 - g.Group.id)
      | Some _ | None -> None
    in
    let finish = Array.make n (-1) in
    let started = Array.make n false in
    let deps_done u =
      List.for_all
        (fun p -> started.(p) && finish.(p) >= 0)
        (Graph.preds dfg u)
    in
    (* busy.(bank) at a given cycle, rebuilt per cycle from in-flight
       accesses. *)
    let in_flight : (int * int) list ref = ref [] in
    let clock = ref 0 in
    let remaining = ref n in
    while !remaining > 0 do
      let t = !clock in
      in_flight := List.filter (fun (_, fin) -> fin > t) !in_flight;
      let port_load b =
        List.length (List.filter (fun (b', _) -> b' = b) !in_flight)
      in
      (* Start ready nodes in topological order; a node is ready when its
         predecessors have finished by cycle t. *)
      Array.iter
        (fun u ->
          if not started.(u) then begin
            let ready =
              deps_done u
              && List.for_all (fun p -> finish.(p) <= t) (Graph.preds dfg u)
            in
            if ready then begin
              match bank u with
              | None ->
                started.(u) <- true;
                finish.(u) <- t + duration u;
                decr remaining
              | Some b ->
                (* Virtual banks of unmapped arrays are dual-ported, as in
                   Cycle_model. *)
                let ports =
                  if b >= -1 then Srfa_hw.Ram_map.ports_of_bank ram_map b
                  else 2
                in
                if port_load b < ports then begin
                  started.(u) <- true;
                  let fin = t + duration u in
                  finish.(u) <- fin;
                  in_flight := (b, fin) :: !in_flight;
                  decr remaining
                end
            end
          end)
        topo;
      incr clock;
      if !clock > cap then raise (Diverged { cycles = !clock; cap })
    done;
    Array.fold_left max 0 finish
  end
