open Srfa_reuse

type policy = Pinned | Lru | Direct_mapped

let policy_name = function
  | Pinned -> "pinned"
  | Lru -> "lru"
  | Direct_mapped -> "direct"

let policy_of_name = function
  | "pinned" -> Some Pinned
  | "lru" -> Some Lru
  | "direct" | "direct-mapped" -> Some Direct_mapped
  | _ -> None

(* LRU over distinct element ids with capacity [beta]: a timestamped map
   suffices at these sizes (beta <= a few hundred). *)
type lru = {
  mutable clock : int;
  stamps : (int, int) Hashtbl.t; (* element -> last-touch time *)
  capacity : int;
}

let lru_create capacity = { clock = 0; stamps = Hashtbl.create 64; capacity }

let lru_touch l e =
  let hit = Hashtbl.mem l.stamps e in
  l.clock <- l.clock + 1;
  if hit then Hashtbl.replace l.stamps e l.clock
  else begin
    if Hashtbl.length l.stamps >= l.capacity then begin
      (* Evict the stalest entry. *)
      let victim = ref (-1) and oldest = ref max_int in
      Hashtbl.iter
        (fun e' t ->
          if t < !oldest then begin
            oldest := t;
            victim := e'
          end)
        l.stamps;
      if !victim >= 0 then Hashtbl.remove l.stamps !victim
    end;
    Hashtbl.replace l.stamps e l.clock
  end;
  hit

type gstate =
  | Pinned_state
  | Lru_state of lru
  | Direct_state of int array (* slot -> element id currently held, -1 empty *)

type t = {
  allocation : Allocation.t;
  tracker : Analysis.Tracker.tracker;
  states : gstate array;
  mutable point : int array;
}

let create ?tracker policy allocation =
  let analysis = allocation.Allocation.analysis in
  let tracker =
    (* A scratch tracker for the same analysis is reset and reused — the
       simulator scratch passes one so a warmed-up walk allocates no
       fresh rank tables; anything else is ignored. *)
    match tracker with
    | Some tr when Analysis.Tracker.analysis tr == analysis ->
      Analysis.Tracker.reset tr;
      tr
    | Some _ | None -> Analysis.Tracker.create analysis
  in
  let mk gid =
    let beta = Allocation.beta allocation gid in
    match policy with
    | Pinned -> Pinned_state
    | Lru -> Lru_state (lru_create (max beta 1))
    | Direct_mapped -> Direct_state (Array.make (max beta 1) (-1))
  in
  {
    allocation;
    tracker;
    states = Array.init (Analysis.num_groups analysis) mk;
    point = [||];
  }

let step t point =
  Analysis.Tracker.step t.tracker point;
  t.point <- point

let resident t gid =
  let analysis = t.allocation.Allocation.analysis in
  let info = Analysis.info analysis gid in
  match t.states.(gid) with
  | Pinned_state ->
    let e = Allocation.entry t.allocation gid in
    Analysis.Tracker.resident t.tracker gid ~beta:e.Allocation.beta
      ~pinned:e.Allocation.pinned
  | Lru_state l -> lru_touch l (Analysis.element_index info t.point)
  | Direct_state slots ->
    let e = Analysis.element_index info t.point in
    let slot = e mod Array.length slots in
    let hit = slots.(slot) = e in
    slots.(slot) <- e;
    hit
