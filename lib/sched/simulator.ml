open Srfa_ir
open Srfa_reuse
module Arena = Srfa_util.Arena

type ram_policy = Private_banks | Single_bank
type execution = Serial | Pipelined

type config = {
  latency : Srfa_hw.Latency.t;
  device : Srfa_hw.Device.t;
  control_overhead : int;
  ram_policy : ram_policy;
  residency : Residency.policy;
  execution : execution;
  mask_group_cap : int;
}

let default_config =
  {
    latency = Srfa_hw.Latency.default;
    device = Srfa_hw.Device.xcv1000;
    control_overhead = 0;
    ram_policy = Private_banks;
    residency = Residency.Pinned;
    execution = Serial;
    mask_group_cap = 60;
  }

type result = {
  iterations : int;
  total_cycles : int;
  memory_cycles : int;
  compute_cycles : int;
  control_cycles : int;
  ram_accesses : int;
  register_hits : int;
  group_ram_accesses : int array;
}

(* Arrays that need RAM backing: anything with steady-state traffic, plus
   input/output arrays whose data must be staged regardless of how well the
   registers cover the loop itself. *)
let ram_backed_arrays alloc =
  let analysis = alloc.Allocation.analysis in
  let residual = Allocation.residual_ram_groups alloc in
  let needs (d : Decl.t) =
    match d.Decl.storage with
    | Decl.Input | Decl.Output -> true
    | Decl.Local ->
      let in_residual gid =
        Decl.equal (Group.decl (Analysis.info analysis gid).Analysis.group) d
      in
      List.exists in_residual residual
  in
  List.filter needs analysis.Analysis.nest.Nest.arrays

let ram_map_for config alloc =
  let arrays = ram_backed_arrays alloc in
  match config.ram_policy with
  | Private_banks -> Srfa_hw.Ram_map.build config.device arrays
  | Single_bank -> Srfa_hw.Ram_map.build_single_bank config.device arrays

(* Everything reusable across simulations of the same nest under the same
   latency table: the DFG, the flattened cycle-model half, the residency
   tracker, the makespan memos, and the per-iteration bit buffers. One
   scratch per (analysis, latency); Flow threads one through a whole
   budget ladder the way Cpa_ra.prepare's scratch already travels, so a
   warmed-up evaluation touches the allocator only for the result record.
   Not thread-safe — one scratch per domain (Flow.sweep parallelises
   across kernels, and each kernel's scratch lives inside its task). *)
type scratch = {
  s_analysis : Analysis.t;
  s_latency : Srfa_hw.Latency.t;
  s_dfg : Srfa_dfg.Graph.t;
  s_prepared : Cycle_model.prepared;
  s_tracker : Analysis.Tracker.tracker;
  s_memo : Arena.Table.t; (* charged-set bitmask -> makespan *)
  s_memo_str : (string, int) Hashtbl.t; (* past the mask cap: bytes key *)
  s_charged : bool array;
  s_resident : bool array;
  s_key : Bytes.t;
  s_hist : Arena.Table.t; (* profile: cost -> iteration count *)
  (* Pinned-residency rank cache: slot ranks are a pure function of
     (analysis, iteration point) — the allocation only thresholds them
     (resident = pinned && rank < beta) — so one tracked walk records
     them and every later evaluation replays flat array reads instead of
     stepping the tracker. [iterations * ngroups] ints, filled lazily;
     nests past [rank_cache_cap] entries keep the tracked walk. *)
  mutable s_ranks : int array;
  mutable s_ranks_ready : bool;
  s_pinned : bool array; (* per-walk allocation snapshot *)
  s_beta : int array;
}

let scratch ?(config = default_config) ?dfg analysis =
  let dfg =
    match dfg with
    | Some d when Srfa_dfg.Graph.analysis d == analysis -> d
    | Some _ | None -> Srfa_dfg.Graph.build analysis
  in
  let ngroups = Analysis.num_groups analysis in
  {
    s_analysis = analysis;
    s_latency = config.latency;
    s_dfg = dfg;
    s_prepared = Cycle_model.prepare ~dfg ~latency:config.latency;
    s_tracker = Analysis.Tracker.create analysis;
    s_memo = Arena.Table.create ~capacity:64 ();
    s_memo_str = Hashtbl.create 64;
    s_charged = Array.make (max ngroups 1) false;
    s_resident = Array.make (max ngroups 1) false;
    s_key = Bytes.make (max ngroups 1) '0';
    s_hist = Arena.Table.create ~capacity:64 ();
    s_ranks = [||];
    s_ranks_ready = false;
    s_pinned = Array.make (max ngroups 1) false;
    s_beta = Array.make (max ngroups 1) 0;
  }

(* Rank caches above this many entries (~64 MB) are not worth their
   memory; such nests keep the tracked walk. *)
let rank_cache_cap = 1 lsl 23

(* Shared walking core: calls [on_iteration cost resident_bits] once per
   iteration point, in execution order. *)
let walk ?(trace = Srfa_util.Trace.null) ?scratch:sc config alloc
    ~on_iteration =
  let analysis = alloc.Allocation.analysis in
  let nest = analysis.Analysis.nest in
  let ngroups = Analysis.num_groups analysis in
  let sc =
    match sc with
    | Some s when s.s_analysis == analysis && s.s_latency == config.latency ->
      s
    | Some _ | None -> scratch ~config analysis
  in
  let ram_map = ram_map_for config alloc in
  let model =
    Cycle_model.create ~prepared:sc.s_prepared ~dfg:sc.s_dfg
      ~latency:config.latency ~ram_map ()
  in
  (* Charged-set bitmask -> makespan. Loop bodies have few groups, so the
     memo stays tiny even though the space walk is long. Bodies with more
     groups than an int mask can hold fall back to a bytes key — same
     memoisation, a little slower per iteration, never an abort. *)
  let cap = min config.mask_group_cap (Sys.int_size - 2) in
  let use_mask = ngroups <= cap in
  if not use_mask then
    Srfa_util.Trace.emit trace (fun () ->
        let open Srfa_util.Trace in
        event "guard.mask"
          [
            ("groups", Int ngroups);
            ("cap", Int cap);
            ("fallback", String "bytes-key memo");
          ]);
  let memo = sc.s_memo in
  Arena.Table.reset memo;
  let memo_str = sc.s_memo_str in
  Hashtbl.reset memo_str;
  let charged_bits = sc.s_charged in
  let makespan_now () =
    let charged (g : Group.t) = charged_bits.(g.Group.id) in
    match config.execution with
    | Serial -> Cycle_model.makespan model ~charged
    | Pipelined -> Cycle_model.initiation_interval model ~charged
  in
  let resident_bits = sc.s_resident in
  let key = sc.s_key in
  (* Memoised cost of the residency pattern currently in
     [resident_bits]/[charged_bits]. *)
  let cost_of_pattern () =
    if use_mask then begin
      let mask = ref 0 in
      for gid = 0 to ngroups - 1 do
        if not resident_bits.(gid) then mask := !mask lor (1 lsl gid)
      done;
      match Arena.Table.find memo !mask ~default:(-1) with
      | -1 ->
        let m = makespan_now () in
        Arena.Table.set memo !mask m;
        m
      | m -> m
    end
    else begin
      for gid = 0 to ngroups - 1 do
        Bytes.unsafe_set key gid (if resident_bits.(gid) then '0' else '1')
      done;
      (* Probe with the shared buffer (find does not retain its key);
         pay for a fresh immutable copy only on a miss. *)
      match Hashtbl.find_opt memo_str (Bytes.unsafe_to_string key) with
      | Some m -> m
      | None ->
        let m = makespan_now () in
        Hashtbl.replace memo_str (Bytes.sub_string key 0 ngroups) m;
        m
    end
  in
  let iterations = Nest.iterations nest in
  let use_rank_cache =
    config.residency = Residency.Pinned
    && ngroups > 0
    && iterations <= rank_cache_cap / ngroups
  in
  if use_rank_cache && not sc.s_ranks_ready then begin
    let need = iterations * ngroups in
    if Array.length sc.s_ranks < need then sc.s_ranks <- Array.make need 0;
    let tracker = sc.s_tracker in
    Analysis.Tracker.reset tracker;
    let ranks = sc.s_ranks in
    let idx = ref 0 in
    Iterspace.iter nest (fun point ->
        Analysis.Tracker.step tracker point;
        for gid = 0 to ngroups - 1 do
          ranks.(!idx) <- Analysis.Tracker.slot_rank tracker gid;
          incr idx
        done);
    sc.s_ranks_ready <- true
  end;
  if use_rank_cache then begin
    (* Fast path: replay the cached ranks against this allocation's
       thresholds — no tracker stepping, no residency object. *)
    let pinned = sc.s_pinned and beta = sc.s_beta in
    for gid = 0 to ngroups - 1 do
      let e = Allocation.entry alloc gid in
      pinned.(gid) <- e.Allocation.pinned;
      beta.(gid) <- e.Allocation.beta
    done;
    let ranks = sc.s_ranks in
    for i = 0 to iterations - 1 do
      let base = i * ngroups in
      for gid = 0 to ngroups - 1 do
        resident_bits.(gid) <-
          pinned.(gid) && Array.unsafe_get ranks (base + gid) < beta.(gid);
        charged_bits.(gid) <- not resident_bits.(gid)
      done;
      on_iteration (cost_of_pattern ()) resident_bits
    done
  end
  else begin
    let residency =
      Residency.create ~tracker:sc.s_tracker config.residency alloc
    in
    let visit point =
      Residency.step residency point;
      for gid = 0 to ngroups - 1 do
        let resident = Residency.resident residency gid in
        charged_bits.(gid) <- not resident;
        resident_bits.(gid) <- resident
      done;
      on_iteration (cost_of_pattern ()) resident_bits
    in
    Iterspace.iter nest visit
  end;
  match config.execution with
  | Serial -> Cycle_model.compute_makespan model
  | Pipelined ->
    Cycle_model.initiation_interval model ~charged:(fun _ -> false)

let run ?trace ?(config = default_config) ?scratch alloc =
  let analysis = alloc.Allocation.analysis in
  let ngroups = Analysis.num_groups analysis in
  let total = ref 0 in
  let ram_accesses = ref 0 in
  let register_hits = ref 0 in
  let group_ram = Array.make ngroups 0 in
  let on_iteration cost resident_bits =
    total := !total + cost;
    for gid = 0 to ngroups - 1 do
      if resident_bits.(gid) then incr register_hits
      else begin
        incr ram_accesses;
        group_ram.(gid) <- group_ram.(gid) + 1
      end
    done
  in
  let model_baseline = walk ?trace ?scratch config alloc ~on_iteration in
  let iterations = Nest.iterations analysis.Analysis.nest in
  (* Serial: the baseline per-iteration cost is the pure-compute makespan.
     Pipelined: it is the recurrence-limited II, plus a one-time pipeline
     fill of one body depth. *)
  let compute_cycles, fill =
    match config.execution with
    | Serial -> (model_baseline * iterations, 0)
    | Pipelined -> (model_baseline * iterations, model_baseline)
  in
  let control_cycles = config.control_overhead * iterations in
  {
    iterations;
    total_cycles = !total + control_cycles + fill;
    memory_cycles = !total - compute_cycles;
    compute_cycles;
    control_cycles;
    ram_accesses = !ram_accesses;
    register_hits = !register_hits;
    group_ram_accesses = group_ram;
  }

let profile ?trace ?(config = default_config) ?scratch:sc alloc =
  let hist =
    match sc with
    | Some s -> s.s_hist
    | None -> Arena.Table.create ~capacity:64 ()
  in
  Arena.Table.reset hist;
  let on_iteration cost _ =
    let cost = cost + config.control_overhead in
    Arena.Table.set hist cost (1 + Arena.Table.find hist cost ~default:0)
  in
  let _ = walk ?trace ?scratch:sc config alloc ~on_iteration in
  let acc = ref [] in
  Arena.Table.iter hist (fun cost count -> acc := (cost, count) :: !acc);
  List.sort (fun (a, _) (b, _) -> Int.compare a b) !acc

let memory_cycles_only ?config alloc = (run ?config alloc).memory_cycles

let pp_result ppf r =
  Format.fprintf ppf
    "@[<v>iterations      %d@,total cycles    %d@,memory cycles   %d@,\
     compute cycles  %d@,control cycles  %d@,ram accesses    %d@,\
     register hits   %d@]"
    r.iterations r.total_cycles r.memory_cycles r.compute_cycles
    r.control_cycles r.ram_accesses r.register_hits
