open Srfa_ir
open Srfa_reuse

type ram_policy = Private_banks | Single_bank
type execution = Serial | Pipelined

type config = {
  latency : Srfa_hw.Latency.t;
  device : Srfa_hw.Device.t;
  control_overhead : int;
  ram_policy : ram_policy;
  residency : Residency.policy;
  execution : execution;
  mask_group_cap : int;
}

let default_config =
  {
    latency = Srfa_hw.Latency.default;
    device = Srfa_hw.Device.xcv1000;
    control_overhead = 0;
    ram_policy = Private_banks;
    residency = Residency.Pinned;
    execution = Serial;
    mask_group_cap = 60;
  }

type result = {
  iterations : int;
  total_cycles : int;
  memory_cycles : int;
  compute_cycles : int;
  control_cycles : int;
  ram_accesses : int;
  register_hits : int;
  group_ram_accesses : int array;
}

(* Arrays that need RAM backing: anything with steady-state traffic, plus
   input/output arrays whose data must be staged regardless of how well the
   registers cover the loop itself. *)
let ram_backed_arrays alloc =
  let analysis = alloc.Allocation.analysis in
  let residual = Allocation.residual_ram_groups alloc in
  let needs (d : Decl.t) =
    match d.Decl.storage with
    | Decl.Input | Decl.Output -> true
    | Decl.Local ->
      let in_residual gid =
        Decl.equal (Group.decl (Analysis.info analysis gid).Analysis.group) d
      in
      List.exists in_residual residual
  in
  List.filter needs analysis.Analysis.nest.Nest.arrays

let ram_map_for config alloc =
  let arrays = ram_backed_arrays alloc in
  match config.ram_policy with
  | Private_banks -> Srfa_hw.Ram_map.build config.device arrays
  | Single_bank -> Srfa_hw.Ram_map.build_single_bank config.device arrays

(* Shared walking core: calls [on_iteration cost resident_bits] once per
   iteration point, in execution order. *)
let walk ?(trace = Srfa_util.Trace.null) config alloc ~on_iteration =
  let analysis = alloc.Allocation.analysis in
  let nest = analysis.Analysis.nest in
  let ngroups = Analysis.num_groups analysis in
  let ram_map = ram_map_for config alloc in
  let dfg = Srfa_dfg.Graph.build analysis in
  let model = Cycle_model.create ~dfg ~latency:config.latency ~ram_map in
  let residency = Residency.create config.residency alloc in
  (* Charged-set bitmask -> makespan. Loop bodies have few groups, so the
     memo stays tiny even though the space walk is long. Bodies with more
     groups than an int mask can hold fall back to a string key — same
     memoisation, a little slower per iteration, never an abort. *)
  let cap = min config.mask_group_cap (Sys.int_size - 2) in
  let use_mask = ngroups <= cap in
  if not use_mask then
    Srfa_util.Trace.emit trace (fun () ->
        let open Srfa_util.Trace in
        event "guard.mask"
          [
            ("groups", Int ngroups);
            ("cap", Int cap);
            ("fallback", String "bytes-key memo");
          ]);
  let memo : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let memo_str : (string, int) Hashtbl.t = Hashtbl.create 64 in
  let charged_bits = Array.make ngroups false in
  let makespan_now () =
    let charged (g : Group.t) = charged_bits.(g.Group.id) in
    match config.execution with
    | Serial -> Cycle_model.makespan model ~charged
    | Pipelined -> Cycle_model.initiation_interval model ~charged
  in
  let makespan_of_mask mask =
    match Hashtbl.find_opt memo mask with
    | Some m -> m
    | None ->
      let m = makespan_now () in
      Hashtbl.replace memo mask m;
      m
  in
  let makespan_of_key key =
    match Hashtbl.find_opt memo_str key with
    | Some m -> m
    | None ->
      let m = makespan_now () in
      Hashtbl.replace memo_str key m;
      m
  in
  let resident_bits = Array.make ngroups false in
  let visit point =
    Residency.step residency point;
    let cost =
      if use_mask then begin
        let mask = ref 0 in
        for gid = 0 to ngroups - 1 do
          let resident = Residency.resident residency gid in
          charged_bits.(gid) <- not resident;
          resident_bits.(gid) <- resident;
          if not resident then mask := !mask lor (1 lsl gid)
        done;
        makespan_of_mask !mask
      end
      else begin
        let key = Bytes.make ngroups '0' in
        for gid = 0 to ngroups - 1 do
          let resident = Residency.resident residency gid in
          charged_bits.(gid) <- not resident;
          resident_bits.(gid) <- resident;
          if not resident then Bytes.set key gid '1'
        done;
        makespan_of_key (Bytes.unsafe_to_string key)
      end
    in
    on_iteration cost resident_bits
  in
  Iterspace.iter nest visit;
  match config.execution with
  | Serial -> Cycle_model.compute_makespan model
  | Pipelined ->
    Cycle_model.initiation_interval model ~charged:(fun _ -> false)

let run ?trace ?(config = default_config) alloc =
  let analysis = alloc.Allocation.analysis in
  let ngroups = Analysis.num_groups analysis in
  let total = ref 0 in
  let ram_accesses = ref 0 in
  let register_hits = ref 0 in
  let group_ram = Array.make ngroups 0 in
  let on_iteration cost resident_bits =
    total := !total + cost;
    Array.iteri
      (fun gid resident ->
        if resident then incr register_hits
        else begin
          incr ram_accesses;
          group_ram.(gid) <- group_ram.(gid) + 1
        end)
      resident_bits
  in
  let model_baseline = walk ?trace config alloc ~on_iteration in
  let iterations = Nest.iterations analysis.Analysis.nest in
  (* Serial: the baseline per-iteration cost is the pure-compute makespan.
     Pipelined: it is the recurrence-limited II, plus a one-time pipeline
     fill of one body depth. *)
  let compute_cycles, fill =
    match config.execution with
    | Serial -> (model_baseline * iterations, 0)
    | Pipelined -> (model_baseline * iterations, model_baseline)
  in
  let control_cycles = config.control_overhead * iterations in
  {
    iterations;
    total_cycles = !total + control_cycles + fill;
    memory_cycles = !total - compute_cycles;
    compute_cycles;
    control_cycles;
    ram_accesses = !ram_accesses;
    register_hits = !register_hits;
    group_ram_accesses = group_ram;
  }

let profile ?trace ?(config = default_config) alloc =
  let hist : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let on_iteration cost _ =
    let cost = cost + config.control_overhead in
    Hashtbl.replace hist cost
      (1 + Option.value ~default:0 (Hashtbl.find_opt hist cost))
  in
  let _ = walk ?trace config alloc ~on_iteration in
  Hashtbl.fold (fun cost count acc -> (cost, count) :: acc) hist []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let memory_cycles_only ?config alloc = (run ?config alloc).memory_cycles

let pp_result ppf r =
  Format.fprintf ppf
    "@[<v>iterations      %d@,total cycles    %d@,memory cycles   %d@,\
     compute cycles  %d@,control cycles  %d@,ram accesses    %d@,\
     register hits   %d@]"
    r.iterations r.total_cycles r.memory_cycles r.compute_cycles
    r.control_cycles r.ram_accesses r.register_hits
