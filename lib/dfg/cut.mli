(** Cuts of the Critical Graph.

    A cut is a minimal set of RAM-hitting reference groups whose removal
    disconnects every critical path (paper §3); register-resident
    references contribute no latency, so they are not cut candidates. Enumeration is exponential in the number
    of CG reference groups — the paper makes the same worst-case remark —
    but CGs of loop bodies are tiny in practice; a guard refuses absurd
    inputs instead of hanging. *)

open Srfa_reuse

val enumerate : ?max_groups:int -> Critical.t -> Group.t list list
(** All minimal cuts, each sorted by group id; the list is ordered by
    ascending cut size then lexicographic ids. [max_groups] (default 16)
    bounds the subset enumeration.
    @raise Invalid_argument if the CG carries more reference groups. *)

val is_cut : Critical.t -> Group.t list -> bool
(** Whether removing these groups disconnects every critical path (not
    necessarily minimal). *)
