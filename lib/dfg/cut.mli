(** Cuts of the Critical Graph.

    A cut is a minimal set of RAM-hitting reference groups whose removal
    disconnects every critical path (paper §3); register-resident
    references contribute no latency, so they are not cut candidates.

    Two engines answer cut queries. {!cheapest} — what CPA-RA asks every
    round — reduces the minimum-weight vertex cut to max-flow over the
    node-split CG ({!Flownet}) and runs in polynomial time, so allocation
    scales to unrolled and fused bodies with hundreds of reference groups.
    {!enumerate_exhaustive} is the original subset enumeration, kept as the
    reference oracle and for printing the complete minimal-cut set; it is
    exponential in the number of CG reference groups (the paper makes the
    same worst-case remark) and guarded against absurd inputs. Both break
    ties identically — ascending cut weight, then cardinality, then the
    lexicographically smallest set of group positions — so they name the
    same cut whenever both can run. *)

open Srfa_reuse

exception Work_limit of { phases : int; paths : int; limit : int }
(** Raised by {!cheapest} when its max-flow work budget runs out; carries
    the BFS-phase and augmenting-path counts at the trip point and the
    budget that was exceeded. The caller is expected to degrade (CPA-RA
    falls back to PR-RA) rather than abort. *)

val cheapest :
  ?trace:Srfa_util.Trace.sink ->
  ?work_limit:int ->
  Critical.t ->
  eligible:(Group.t -> bool) ->
  weight:(Group.t -> int) ->
  (Group.t list * int) option
(** The cheapest cut of the CG made only of [eligible] charged reference
    groups, with its total [weight]; [None] when no such cut exists (some
    critical path carries no eligible group). The cut is minimal, listed in
    CG reference-group order, and deterministic under the tie-break above.
    Weights must be non-negative. Runs in O(V^2 E) per max-flow, with one
    extra max-flow per candidate group for the tie-break.

    [trace] (default the no-op sink) receives one ["cut.flow"] event per
    answered query: candidate count, chosen cut (group names) and weight,
    and the {!Flownet.stats} delta the answer cost (max-flow runs, BFS
    phases, augmenting paths).

    [work_limit] (default unlimited) bounds the max-flow effort spent on
    this query, counted as BFS phases plus augmenting paths across every
    run the query needs (first solve plus the per-candidate tie-break).
    When it trips, a ["cut.guard"] trace event is emitted and
    {!Work_limit} is raised.
    @raise Work_limit when the work budget is exhausted. *)

val enumerate_exhaustive :
  ?max_groups:int -> Critical.t -> Group.t list list
(** All minimal cuts, each sorted by group position; the list is ordered by
    ascending cut size then lexicographic positions. [max_groups] (default
    16) bounds the subset enumeration.
    @raise Invalid_argument if the CG carries more reference groups. *)

val is_cut : Critical.t -> Group.t list -> bool
(** Whether removing these groups disconnects every critical path (not
    necessarily minimal). *)
