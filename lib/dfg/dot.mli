(** Graphviz export of data-flow graphs (Fig. 2(a)/(b) as pictures). *)

open Srfa_reuse

val render :
  ?highlight:Critical.t -> Graph.t -> charged:(Group.t -> bool) -> string
(** DOT source. Reference nodes are boxes (shaded when served from RAM),
    operation nodes are ellipses; nodes and edges of [highlight]'s critical
    graph are drawn bold. *)
