open Srfa_reuse
module Bitset = Srfa_util.Bitset

type t = {
  graph : Graph.t;
  length : int;
  in_cg : bool array;
  cg_succs : int list array;
  sources : int list;
  sinks : int list;
  is_sink : Bitset.t;
  charged : Group.t -> bool;
}

(* Buffers whose contents depend only on the DFG's structure (the
   topological order) or that are overwritten wholesale on every
   extraction (the distance arrays, the membership and adjacency arrays,
   the sink set). CPA-RA re-extracts the CG once per allocation round
   under a new [charged] predicate; sharing a scratch across rounds skips
   the per-round topological sort and every O(nodes) array allocation —
   at the price that a [make ~scratch] invalidates the [t] of the
   previous extraction with the same scratch (CPA-RA consumes each CG
   within its round, so nothing is ever stale there). *)
type scratch = {
  sgraph : Graph.t;
  order : int list;
  rev_order : int list;
  fwd : int array;
  bwd : int array;
  s_in_cg : bool array;
  s_cg_succs : int list array;
  s_has_pred : bool array;
  s_is_sink : Bitset.t;
}

let scratch g =
  let n = Graph.num_nodes g in
  let order = Graph.topo_order ~what:"Critical.scratch" g in
  {
    sgraph = g;
    order;
    rev_order = List.rev order;
    fwd = Array.make n 0;
    bwd = Array.make n 0;
    s_in_cg = Array.make n false;
    s_cg_succs = Array.make n [];
    s_has_pred = Array.make n false;
    s_is_sink = Bitset.create n;
  }

let make ?scratch:sc g ~latency ~charged =
  let n = Graph.num_nodes g in
  let sc =
    match sc with Some s when s.sgraph == g -> s | Some _ | None -> scratch g
  in
  let w u = Graph.node_latency g ~latency ~charged (Graph.nodes g).(u) in
  let order = sc.order in
  (* Inclusive longest distances from any source / to any sink. *)
  let fwd = sc.fwd and bwd = sc.bwd in
  Array.fill fwd 0 n 0;
  Array.fill bwd 0 n 0;
  let relax_fwd u =
    let base =
      List.fold_left (fun acc p -> max acc fwd.(p)) 0 (Graph.preds g u)
    in
    fwd.(u) <- base + w u
  in
  List.iter relax_fwd order;
  let relax_bwd u =
    let base =
      List.fold_left (fun acc s -> max acc bwd.(s)) 0 (Graph.succs g u)
    in
    bwd.(u) <- base + w u
  in
  List.iter relax_bwd sc.rev_order;
  let length = Array.fold_left max 0 fwd in
  let in_cg = sc.s_in_cg in
  for u = 0 to n - 1 do
    in_cg.(u) <- fwd.(u) + bwd.(u) - w u = length
  done;
  (* A DFG edge is critical iff it lies on a maximum-latency path. *)
  let cg_succs = sc.s_cg_succs in
  for u = 0 to n - 1 do
    if in_cg.(u) then
      let keep v = in_cg.(v) && fwd.(u) + bwd.(v) = length in
      cg_succs.(u) <- List.filter keep (Graph.succs g u)
    else cg_succs.(u) <- []
  done;
  let cg_has_pred = sc.s_has_pred in
  Array.fill cg_has_pred 0 n false;
  Array.iteri
    (fun u vs -> if in_cg.(u) then List.iter (fun v -> cg_has_pred.(v) <- true) vs)
    cg_succs;
  let sources = ref [] and sinks = ref [] in
  let is_sink = sc.s_is_sink in
  Bitset.clear is_sink;
  for u = n - 1 downto 0 do
    if in_cg.(u) then begin
      if not cg_has_pred.(u) then sources := u :: !sources;
      if cg_succs.(u) = [] then begin
        sinks := u :: !sinks;
        Bitset.add is_sink u
      end
    end
  done;
  {
    graph = g;
    length;
    in_cg;
    cg_succs;
    sources = !sources;
    sinks = !sinks;
    is_sink;
    charged;
  }

let length t = t.length

let nodes t =
  List.filter (fun u -> t.in_cg.(u)) (List.init (Array.length t.in_cg) Fun.id)

let mem t u = t.in_cg.(u)
let succs t u = t.cg_succs.(u)
let sources t = t.sources
let sinks t = t.sinks

let ref_groups t =
  let n = Array.length t.in_cg in
  let seen = Bitset.create (Analysis.num_groups (Graph.analysis t.graph)) in
  let refs = ref [] in
  for u = 0 to n - 1 do
    if t.in_cg.(u) then begin
      let gid = Graph.group_id t.graph u in
      if gid >= 0 && not (Bitset.mem seen gid) then begin
        Bitset.add seen gid;
        match Graph.group_of_node (Graph.nodes t.graph).(u) with
        | Some g -> refs := g :: !refs
        | None -> ()
      end
    end
  done;
  List.rev !refs

let charged_ref_groups t =
  List.filter t.charged (ref_groups t)

let has_path_avoiding t ~forbidden =
  let n = Array.length t.in_cg in
  let seen = Bitset.create n in
  let rec dfs u =
    if Bitset.mem seen u || forbidden u then false
    else begin
      Bitset.add seen u;
      if Bitset.mem t.is_sink u then true else List.exists dfs t.cg_succs.(u)
    end
  in
  List.exists (fun s -> (not (forbidden s)) && dfs s) t.sources

let graph t = t.graph
