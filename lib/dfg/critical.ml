open Srfa_reuse

type t = {
  graph : Graph.t;
  length : int;
  in_cg : bool array;
  cg_succs : int list array;
  sources : int list;
  sinks : int list;
  charged : Group.t -> bool;
}

let make g ~latency ~charged =
  let n = Graph.num_nodes g in
  let w u = Graph.node_latency g ~latency ~charged (Graph.nodes g).(u) in
  let order = Srfa_util.Toposort.sort ~n ~succs:(Graph.succs g) in
  (* Inclusive longest distances from any source / to any sink. *)
  let fwd = Array.make n 0 and bwd = Array.make n 0 in
  let relax_fwd u =
    let base =
      List.fold_left (fun acc p -> max acc fwd.(p)) 0 (Graph.preds g u)
    in
    fwd.(u) <- base + w u
  in
  List.iter relax_fwd order;
  let relax_bwd u =
    let base =
      List.fold_left (fun acc s -> max acc bwd.(s)) 0 (Graph.succs g u)
    in
    bwd.(u) <- base + w u
  in
  List.iter relax_bwd (List.rev order);
  let length = Array.fold_left max 0 fwd in
  let in_cg = Array.make n false in
  for u = 0 to n - 1 do
    in_cg.(u) <- fwd.(u) + bwd.(u) - w u = length
  done;
  (* A DFG edge is critical iff it lies on a maximum-latency path. *)
  let cg_succs = Array.make n [] in
  for u = 0 to n - 1 do
    if in_cg.(u) then
      let keep v = in_cg.(v) && fwd.(u) + bwd.(v) = length in
      cg_succs.(u) <- List.filter keep (Graph.succs g u)
  done;
  let cg_has_pred = Array.make n false in
  Array.iteri
    (fun u vs -> if in_cg.(u) then List.iter (fun v -> cg_has_pred.(v) <- true) vs)
    cg_succs;
  let ids = List.init n Fun.id in
  let sources =
    List.filter (fun u -> in_cg.(u) && not cg_has_pred.(u)) ids
  in
  let sinks = List.filter (fun u -> in_cg.(u) && cg_succs.(u) = []) ids in
  { graph = g; length; in_cg; cg_succs; sources; sinks; charged }

let length t = t.length

let nodes t =
  List.filter (fun u -> t.in_cg.(u)) (List.init (Array.length t.in_cg) Fun.id)

let mem t u = t.in_cg.(u)

let ref_groups t =
  let refs = ref [] in
  let note u =
    match Graph.group_of_node (Graph.nodes t.graph).(u) with
    | Some g when not (List.exists (fun x -> x.Group.id = g.Group.id) !refs) ->
      refs := g :: !refs
    | Some _ | None -> ()
  in
  List.iter note (nodes t);
  List.rev !refs

let charged_ref_groups t =
  List.filter t.charged (ref_groups t)

let has_path_avoiding t ~forbidden =
  let n = Array.length t.in_cg in
  let seen = Array.make n false in
  let sink u = List.mem u t.sinks in
  let rec dfs u =
    if seen.(u) || forbidden u then false
    else begin
      seen.(u) <- true;
      if sink u then true else List.exists dfs t.cg_succs.(u)
    end
  in
  List.exists (fun s -> (not (forbidden s)) && dfs s) t.sources

let graph t = t.graph
