open Srfa_reuse
module Bitset = Srfa_util.Bitset

let is_cut cg groups =
  let g = Critical.graph cg in
  let forbidden_gids =
    Bitset.create (Analysis.num_groups (Graph.analysis g))
  in
  List.iter (fun grp -> Bitset.add forbidden_gids grp.Group.id) groups;
  let forbidden u =
    let gid = Graph.group_id g u in
    gid >= 0 && Bitset.mem forbidden_gids gid
  in
  not (Critical.has_path_avoiding cg ~forbidden)

let enumerate_exhaustive ?(max_groups = 16) cg =
  let groups = Array.of_list (Critical.charged_ref_groups cg) in
  let n = Array.length groups in
  if n > max_groups then
    invalid_arg
      (Printf.sprintf
         "Cut.enumerate_exhaustive: %d CG reference groups exceed limit %d"
         n max_groups);
  let subset_of_mask mask =
    let rec go i acc =
      if i < 0 then acc
      else if mask land (1 lsl i) <> 0 then go (i - 1) (groups.(i) :: acc)
      else go (i - 1) acc
    in
    go (n - 1) []
  in
  let covering = ref [] in
  for mask = 1 to (1 lsl n) - 1 do
    if is_cut cg (subset_of_mask mask) then covering := mask :: !covering
  done;
  let strictly_contains big small = big land small = small && big <> small in
  let minimal m = not (List.exists (fun m' -> strictly_contains m m') !covering) in
  let popcount m =
    let rec go m acc = if m = 0 then acc else go (m lsr 1) (acc + (m land 1)) in
    go m 0
  in
  !covering
  |> List.filter minimal
  |> List.sort (fun a b ->
         let c = Int.compare (popcount a) (popcount b) in
         if c <> 0 then c else Int.compare a b)
  |> List.map subset_of_mask

(* ---- polynomial cheapest-cut engine ----------------------------------- *)

(* The cheapest eligible cut is a minimum-weight vertex cut of the CG where
   eligible groups cost their weight and every other vertex is uncuttable.
   The capacities handed to the flow network are scaled to bake in the
   deterministic tie-break the exhaustive path used:

     scaled(g) = weight(g) * (k + 1) + 1

   with [k] candidate groups. The max-flow value then minimises the pair
   (total weight, cut cardinality) lexicographically — the [+1] per member
   counts members, and [k + 1] keeps the count from ever outweighing one
   unit of real weight. The third key, the lexicographically smallest
   candidate-index set (identical to the exhaustive enumerator's ascending
   mask order), is resolved by one more max-flow run per candidate: walking
   indices from most significant to least, a candidate is excluded (its arc
   forced to infinity) whenever a cut of unchanged scaled value still
   exists without it, and is otherwise a member of every remaining optimal
   cut. The candidates never excluded are exactly the cut.

   Groups occupying several CG nodes (an accumulator's loop-carried read
   and its store) get one weighted arc per node. Such groups are virtually
   never candidates — an accumulator's window is a single register, so it
   is register-resident from the initial allocation on — but when one is,
   a cut through several of its nodes is charged once per node rather than
   once per group, i.e. the engine answers the node-cut relaxation of the
   (NP-hard) group-labelled cut. The result is still a valid cut with the
   deterministic tie-break; only its weight can exceed the group-labelled
   optimum, and never on the paper's kernels. *)
exception Work_limit of { phases : int; paths : int; limit : int }

let cheapest ?(trace = Srfa_util.Trace.null) ?(work_limit = max_int) cg
    ~eligible ~weight =
  let g = Critical.graph cg in
  let groups = Array.of_list (Critical.charged_ref_groups cg) in
  let k = Array.length groups in
  let num_groups = Analysis.num_groups (Graph.analysis g) in
  let cand_of_gid = Array.make num_groups (-1) in
  let candidates = ref [] in
  for i = k - 1 downto 0 do
    if eligible groups.(i) then begin
      cand_of_gid.(groups.(i).Group.id) <- i;
      candidates := i :: !candidates
    end
  done;
  let candidates = !candidates in
  if candidates = [] then None
  else if not (is_cut cg (List.map (fun i -> groups.(i)) candidates)) then
    None
  else begin
    (* Compact the CG onto 0..m-1 and build the node-split network. *)
    let cg_nodes = Array.of_list (Critical.nodes cg) in
    let m = Array.length cg_nodes in
    let compact = Array.make (Graph.num_nodes g) (-1) in
    Array.iteri (fun i u -> compact.(u) <- i) cg_nodes;
    let succs =
      Array.map
        (fun u -> List.map (fun v -> compact.(v)) (Critical.succs cg u))
        cg_nodes
    in
    let candidate_of_node cu =
      let gid = Graph.group_id g cg_nodes.(cu) in
      if gid >= 0 then cand_of_gid.(gid) else -1
    in
    let scaled i = (weight groups.(i) * (k + 1)) + 1 in
    let cap cu =
      let i = candidate_of_node cu in
      if i >= 0 then scaled i else Flownet.inf
    in
    let split =
      Flownet.split_nodes ~n:m ~succs ~sources:(List.map (fun u -> compact.(u))
          (Critical.sources cg))
        ~sinks:(List.map (fun u -> compact.(u)) (Critical.sinks cg))
        ~cap
    in
    let arcs = Array.make k [] in
    Array.iteri
      (fun cu arc ->
        let i = candidate_of_node cu in
        if i >= 0 then arcs.(i) <- arc :: arcs.(i))
      split.Flownet.node_arc;
    let sum_caps =
      List.fold_left
        (fun acc i -> acc + (List.length arcs.(i) * scaled i))
        0 candidates
    in
    let solve limit =
      Flownet.max_flow ~limit ~work_limit split.Flownet.net
        ~source:split.Flownet.source ~sink:split.Flownet.sink
    in
    let guard_tripped (stats : Flownet.stats) =
      Srfa_util.Trace.emit trace (fun () ->
          let open Srfa_util.Trace in
          event "cut.guard"
            [
              ("work_limit", Int work_limit);
              ("bfs_phases", Int stats.Flownet.phases);
              ("augmenting_paths", Int stats.Flownet.augmenting_paths);
            ]);
      raise
        (Work_limit
           {
             phases = stats.Flownet.phases;
             paths = stats.Flownet.augmenting_paths;
             limit = work_limit;
           })
    in
    (* The all-candidates cut is finite, so the optimum is <= sum_caps and
       the first run can never hit its flow limit (the work limit still
       applies — the network is fresh, so the budget is per query). *)
    let best =
      try solve sum_caps
      with Flownet.Work_limit_exceeded stats -> guard_tripped stats
    in
    let excluded = Bitset.create (max k 1) in
    (try
       List.iter
         (fun i ->
           List.iter (fun e -> Flownet.set_cap split.Flownet.net e Flownet.inf)
             arcs.(i);
           if solve best > best then
             (* Every optimal cut still available contains this candidate. *)
             List.iter
               (fun e -> Flownet.set_cap split.Flownet.net e (scaled i))
               arcs.(i)
           else Bitset.add excluded i)
         (List.rev candidates)
     with Flownet.Work_limit_exceeded stats -> guard_tripped stats);
    let cut =
      List.filter_map
        (fun i -> if Bitset.mem excluded i then None else Some groups.(i))
        candidates
    in
    assert (is_cut cg cut);
    let total = List.fold_left (fun acc grp -> acc + weight grp) 0 cut in
    Srfa_util.Trace.emit trace (fun () ->
        let open Srfa_util.Trace in
        let stats = Flownet.stats split.Flownet.net in
        event "cut.flow"
          [
            ("candidates", Int (List.length candidates));
            ("cut", List (List.map (fun g -> String (Group.name g)) cut));
            ("weight", Int total);
            ("flow_value", Int best);
            ("max_flow_runs", Int stats.Flownet.runs);
            ("bfs_phases", Int stats.Flownet.phases);
            ("augmenting_paths", Int stats.Flownet.augmenting_paths);
          ]);
    Some (cut, total)
  end
