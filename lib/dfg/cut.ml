open Srfa_reuse

let node_forbidden cg groups u =
  match Graph.group_of_node (Graph.nodes (Critical.graph cg)).(u) with
  | Some g -> List.exists (fun x -> x.Group.id = g.Group.id) groups
  | None -> false

let is_cut cg groups =
  not (Critical.has_path_avoiding cg ~forbidden:(node_forbidden cg groups))

let enumerate ?(max_groups = 16) cg =
  let groups = Array.of_list (Critical.charged_ref_groups cg) in
  let n = Array.length groups in
  if n > max_groups then
    invalid_arg
      (Printf.sprintf "Cut.enumerate: %d CG reference groups exceed limit %d"
         n max_groups);
  let subset_of_mask mask =
    let rec go i acc =
      if i < 0 then acc
      else if mask land (1 lsl i) <> 0 then go (i - 1) (groups.(i) :: acc)
      else go (i - 1) acc
    in
    go (n - 1) []
  in
  let covering = ref [] in
  for mask = 1 to (1 lsl n) - 1 do
    if is_cut cg (subset_of_mask mask) then covering := mask :: !covering
  done;
  let strictly_contains big small = big land small = small && big <> small in
  let minimal m = not (List.exists (fun m' -> strictly_contains m m') !covering) in
  let popcount m =
    let rec go m acc = if m = 0 then acc else go (m lsr 1) (acc + (m land 1)) in
    go m 0
  in
  !covering
  |> List.filter minimal
  |> List.sort (fun a b ->
         let c = Int.compare (popcount a) (popcount b) in
         if c <> 0 then c else Int.compare a b)
  |> List.map subset_of_mask
