(** Dinic's max-flow, and the node-split construction that turns a
    minimum-weight vertex cut of a DAG into a max-flow instance.

    This is the polynomial engine behind {!Cut.cheapest}: every vertex [u]
    becomes an arc [in(u) -> out(u)] carrying the vertex's weight (or
    {!inf} for vertices that may not be cut), every DAG edge [u -> v]
    becomes an infinite arc [out(u) -> in(v)], and a super-source/sink pair
    is wired to the given source and sink vertices. By max-flow/min-cut
    duality, the value of the maximum flow equals the weight of the
    cheapest vertex set whose removal disconnects every source-to-sink
    path — in O(V^2 E) instead of the exponential subset enumeration. *)

type t

val inf : int
(** Capacity standing in for "this arc may never be cut". Large enough
    that no sum of real cut weights reaches it, small enough that a few
    additions cannot overflow. *)

val create : int -> t
(** A flow network over nodes [0 .. n-1] with no edges.
    @raise Invalid_argument when [n <= 0]. *)

val add_edge : t -> int -> int -> int -> int
(** [add_edge t u v cap] adds a directed edge and returns its id (the
    reverse residual edge is implicit). @raise Invalid_argument on bad
    endpoints or negative capacity. *)

val set_cap : t -> int -> int -> unit
(** Reassign the capacity of an edge by id. Takes effect on the next
    {!max_flow} run (runs always restart from the configured capacities,
    so a network can be re-solved under many assignments). *)

type stats = {
  runs : int;           (** {!max_flow} invocations *)
  phases : int;         (** BFS level-graph constructions across all runs *)
  augmenting_paths : int;  (** successful blocking-flow pushes *)
}

val stats : t -> stats
(** Cumulative work counters since {!create}. {!Cut.cheapest} reads them
    before and after a query to report how much max-flow effort the cut
    decision cost (the delta goes into the decision trace). *)

exception Work_limit_exceeded of stats
(** Raised by {!max_flow} when [work_limit] is exhausted; carries the
    counters at the moment the guard tripped. *)

val max_flow : ?limit:int -> ?work_limit:int -> t -> source:int -> sink:int -> int
(** Maximum [source]-to-[sink] flow value. When [limit] is given the run
    stops as soon as the accumulated flow exceeds it and returns that
    partial value — callers that only need to know whether the min cut is
    still [limit] use this to keep intermediate values bounded (no
    overflow from {!inf} arcs) and to skip useless work.

    [work_limit] is a resource guard: a budget of work units (one per BFS
    phase plus one per augmenting path, measured cumulatively on this
    network's {!stats} counters) beyond which the run abandons the
    computation with {!Work_limit_exceeded} instead of running away on a
    pathological instance. Default: unlimited.
    @raise Work_limit_exceeded when the budget runs out. *)

(** A vertex-cut instance built by {!split_nodes}. [node_arc.(u)] is the
    edge id of the [in(u) -> out(u)] arc, whose capacity is the vertex
    weight — reassign it with {!set_cap} to force a vertex in or out of
    the cut. *)
type split = { net : t; source : int; sink : int; node_arc : int array }

val split_nodes :
  n:int ->
  succs:int list array ->
  sources:int list ->
  sinks:int list ->
  cap:(int -> int) ->
  split
(** Node-split network of a DAG on vertices [0 .. n-1]. [cap u] is the
    cost of cutting vertex [u] ({!inf} for uncuttable vertices). *)
