(** Critical Graph extraction (paper §3).

    The Critical Graph (CG) of a DFG is the subgraph formed by all of its
    critical (maximum-latency) paths. Improving a reference that is not on
    the CG cannot shorten the computation, so CPA-RA only ever allocates
    registers to CG cuts. *)

open Srfa_reuse

type t

type scratch
(** Reusable extraction state for one DFG: the topological order (structure
    only, so valid across memory states) plus the distance, membership and
    adjacency buffers every extraction overwrites wholesale. CPA-RA builds
    one scratch per allocation and re-extracts the CG with it every round.
    {b Aliasing:} a [t] built with a scratch shares these buffers, so the
    next {!make} with the same scratch invalidates it — consume each CG
    before extracting the next (as CPA-RA's round loop does), or extract
    without a scratch. *)

val scratch : Graph.t -> scratch

val make :
  ?scratch:scratch ->
  Graph.t -> latency:Srfa_hw.Latency.t -> charged:(Group.t -> bool) -> t
(** Extracts the CG of the DFG under the given memory state. A [scratch]
    built from the same DFG skips the per-call topological sort; one built
    from another DFG is ignored. *)

val length : t -> int
(** Latency of the critical path(s). *)

val nodes : t -> int list
(** DFG node ids on some critical path. *)

val ref_groups : t -> Group.t list
(** Reference groups on the CG, by node-id order, without duplicates. *)

val charged_ref_groups : t -> Group.t list
(** The subset of {!ref_groups} that still hits RAM under the memory state
    the CG was built with — the only nodes a cut may contain (a
    register-resident reference contributes no memory latency, so removing
    it cannot shorten the path). *)

val mem : t -> int -> bool
(** Whether a DFG node belongs to the CG. *)

val succs : t -> int -> int list
(** CG-restricted successors of a CG node (critical edges only). *)

val sources : t -> int list
(** CG nodes with no critical predecessor, in node-id order. *)

val sinks : t -> int list
(** CG nodes with no critical successor, in node-id order. *)

val has_path_avoiding : t -> forbidden:(int -> bool) -> bool
(** Whether a critical source-to-sink path exists that avoids every node
    for which [forbidden] holds. This is the primitive cut checking is
    built on. *)

val graph : t -> Graph.t
