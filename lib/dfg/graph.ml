open Srfa_ir
open Srfa_reuse

type kind =
  | Ref_node of Group.t
  | Binary_node of Op.binary
  | Unary_node of Op.unary
  | Const_node of int

type node = { id : int; kind : kind }

type t = {
  analysis : Analysis.t;
  nodes : node array;
  succs : int list array;
  preds : int list array;
  group_ids : int array; (* node id -> group id, -1 for operators/constants *)
}

(* Construction walks the body statements in order, keeping per group the
   node that currently defines its value within the iteration:
   - a read of a group defined earlier in the body links from the defining
     node (write-to-read chaining, e.g. d[i][k]);
   - a read of an undefined group creates (or reuses) a source node;
   - a write creates a node fed by the expression and records it as the
     group's definition. *)
let build analysis =
  let nest = analysis.Analysis.nest in
  let groups = analysis.Analysis.groups in
  let nodes = ref [] in
  let edges = ref [] in
  let count = ref 0 in
  let fresh kind =
    let n = { id = !count; kind } in
    incr count;
    nodes := n :: !nodes;
    n.id
  in
  let edge a b = edges := (a, b) :: !edges in
  let defining = Hashtbl.create 8 in (* group id -> node id *)
  let source_node = Hashtbl.create 8 in (* group id -> source node id *)
  let read_node (r : Expr.ref_) =
    let g = Group.find groups r in
    match Hashtbl.find_opt defining g.Group.id with
    | Some n -> n
    | None -> (
      match Hashtbl.find_opt source_node g.Group.id with
      | Some n -> n
      | None ->
        let n = fresh (Ref_node g) in
        Hashtbl.replace source_node g.Group.id n;
        n)
  in
  let rec expr_node (e : Expr.t) =
    match e with
    | Expr.Const c -> fresh (Const_node c)
    | Expr.Load r -> read_node r
    | Expr.Unary (op, a) ->
      let na = expr_node a in
      let n = fresh (Unary_node op) in
      edge na n;
      n
    | Expr.Binary (op, a, b) ->
      let na = expr_node a and nb = expr_node b in
      let n = fresh (Binary_node op) in
      edge na n;
      edge nb n;
      n
  in
  let stmt (Expr.Assign (target, e)) =
    let value = expr_node e in
    let g = Group.find groups target in
    let store = fresh (Ref_node g) in
    edge value store;
    Hashtbl.replace defining g.Group.id store
  in
  List.iter stmt nest.Nest.body;
  let n = !count in
  let nodes_arr = Array.make n { id = 0; kind = Const_node 0 } in
  List.iter (fun nd -> nodes_arr.(nd.id) <- nd) !nodes;
  let succs = Array.make n [] and preds = Array.make n [] in
  let add (a, b) =
    succs.(a) <- b :: succs.(a);
    preds.(b) <- a :: preds.(b)
  in
  List.iter add !edges;
  let group_ids =
    Array.map
      (fun nd ->
        match nd.kind with
        | Ref_node g -> g.Group.id
        | Binary_node _ | Unary_node _ | Const_node _ -> -1)
      nodes_arr
  in
  { analysis; nodes = nodes_arr; succs; preds; group_ids }

let analysis t = t.analysis
let nodes t = t.nodes
let succs t id = t.succs.(id)
let preds t id = t.preds.(id)
let num_nodes t = Array.length t.nodes
let group_id t id = t.group_ids.(id)

let group_of_node nd =
  match nd.kind with
  | Ref_node g -> Some g
  | Binary_node _ | Unary_node _ | Const_node _ -> None

let ref_nodes t =
  Array.to_list t.nodes
  |> List.filter (fun nd ->
         match nd.kind with
         | Ref_node _ -> true
         | Binary_node _ | Unary_node _ | Const_node _ -> false)

let node_latency _t ~latency ~charged nd =
  match nd.kind with
  | Ref_node g ->
    if charged g then latency.Srfa_hw.Latency.ram_access
    else latency.Srfa_hw.Latency.register_access
  | Binary_node op -> latency.Srfa_hw.Latency.binary op
  | Unary_node op -> latency.Srfa_hw.Latency.unary op
  | Const_node _ -> 0

let node_name nd =
  match nd.kind with
  | Ref_node g -> Group.name g
  | Binary_node op -> Op.binary_name op
  | Unary_node op -> Op.unary_name op
  | Const_node c -> string_of_int c

(* All topological orderings of a DFG go through here so a cycle (which
   [build] cannot produce, but hand-built or future graph sources could)
   surfaces as an error naming the offending node, not a raw int id. *)
let topo_order ?(what = "Graph.topo_order") t =
  let n = num_nodes t in
  Srfa_util.Toposort.sort_labeled ~what ~n
    ~succs:(fun u -> t.succs.(u))
    ~label:(fun u -> Printf.sprintf "node %d (%s)" u (node_name t.nodes.(u)))
    ()

let longest_path t weight =
  let n = num_nodes t in
  if n = 0 then 0
  else begin
    let order = topo_order ~what:"Graph.longest_path" t in
    let dist = Array.make n 0 in
    let visit u =
      let du = dist.(u) + weight t.nodes.(u) in
      let relax v = if dist.(v) < du then dist.(v) <- du in
      List.iter relax t.succs.(u)
    in
    List.iter visit order;
    let best = ref 0 in
    for u = 0 to n - 1 do
      let total = dist.(u) + weight t.nodes.(u) in
      if total > !best then best := total
    done;
    !best
  end

let path_length t ~latency ~charged =
  longest_path t (node_latency t ~latency ~charged)

let memory_path_length t ~latency ~charged =
  let weight nd =
    match nd.kind with
    | Ref_node _ -> node_latency t ~latency ~charged nd
    | Binary_node _ | Unary_node _ | Const_node _ -> 0
  in
  longest_path t weight

let pp ppf t =
  Format.fprintf ppf "@[<v>dfg (%d nodes):@," (num_nodes t);
  Array.iter
    (fun nd ->
      Format.fprintf ppf "  %d: %-12s ->" nd.id (node_name nd);
      List.iter (Format.fprintf ppf " %d") t.succs.(nd.id);
      Format.fprintf ppf "@,")
    t.nodes;
  Format.fprintf ppf "@]"
