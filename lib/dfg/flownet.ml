(* Dinic's algorithm over an explicit residual graph. Edges are stored in
   flat arrays with the reverse edge at [e lxor 1]; adjacency lists are
   frozen into arrays on first use so the blocking-flow DFS can keep a
   per-node cursor. Capacities are kept twice: [base] is the configured
   capacity (mutable through {!set_cap}), [residual] is rebuilt from it at
   the start of every {!max_flow} run, which makes runs idempotent — the
   cut refinement loop re-solves the same network under different
   capacity assignments. *)

let inf = max_int / 8

type t = {
  nodes : int;
  mutable eto : int array;
  mutable base : int array;
  mutable residual : int array;
  mutable ecount : int;
  adj : int list array;
  mutable adj_arr : int array array;
  mutable adj_dirty : bool;
  level : int array;
  cursor : int array;
  queue : int array;
  mutable stat_runs : int;
  mutable stat_phases : int;
  mutable stat_augmenting : int;
}

let create nodes =
  if nodes <= 0 then invalid_arg "Flownet.create: need at least one node";
  {
    nodes;
    eto = Array.make 16 0;
    base = Array.make 16 0;
    residual = Array.make 16 0;
    ecount = 0;
    adj = Array.make nodes [];
    adj_arr = [||];
    adj_dirty = true;
    level = Array.make nodes (-1);
    cursor = Array.make nodes 0;
    queue = Array.make nodes 0;
    stat_runs = 0;
    stat_phases = 0;
    stat_augmenting = 0;
  }

let grow t =
  let cap = Array.length t.eto in
  if t.ecount + 2 > cap then begin
    let cap' = 2 * cap in
    let widen a = Array.append a (Array.make (cap' - cap) 0) in
    t.eto <- widen t.eto;
    t.base <- widen t.base;
    t.residual <- widen t.residual
  end

let add_edge t u v cap =
  if u < 0 || u >= t.nodes || v < 0 || v >= t.nodes then
    invalid_arg "Flownet.add_edge: node out of range";
  if cap < 0 then invalid_arg "Flownet.add_edge: negative capacity";
  grow t;
  let e = t.ecount in
  t.eto.(e) <- v;
  t.base.(e) <- cap;
  t.eto.(e + 1) <- u;
  t.base.(e + 1) <- 0;
  t.adj.(u) <- e :: t.adj.(u);
  t.adj.(v) <- (e + 1) :: t.adj.(v);
  t.ecount <- t.ecount + 2;
  t.adj_dirty <- true;
  e

let set_cap t e cap =
  if e < 0 || e >= t.ecount then invalid_arg "Flownet.set_cap: no such edge";
  if cap < 0 then invalid_arg "Flownet.set_cap: negative capacity";
  t.base.(e) <- cap

let freeze t =
  if t.adj_dirty then begin
    t.adj_arr <- Array.map Array.of_list t.adj;
    t.adj_dirty <- false
  end

(* Level graph by BFS over positive-residual edges. *)
let bfs t source sink =
  Array.fill t.level 0 t.nodes (-1);
  t.level.(source) <- 0;
  t.queue.(0) <- source;
  let head = ref 0 and tail = ref 1 in
  while !head < !tail do
    let u = t.queue.(!head) in
    incr head;
    Array.iter
      (fun e ->
        let v = t.eto.(e) in
        if t.residual.(e) > 0 && t.level.(v) < 0 then begin
          t.level.(v) <- t.level.(u) + 1;
          t.queue.(!tail) <- v;
          incr tail
        end)
      t.adj_arr.(u)
  done;
  t.level.(sink) >= 0

let rec blocking t sink u budget =
  if u = sink then budget
  else begin
    let pushed = ref 0 in
    let arr = t.adj_arr.(u) in
    let len = Array.length arr in
    while !pushed = 0 && t.cursor.(u) < len do
      let e = arr.(t.cursor.(u)) in
      let v = t.eto.(e) in
      if t.residual.(e) > 0 && t.level.(v) = t.level.(u) + 1 then begin
        let d = blocking t sink v (min budget t.residual.(e)) in
        if d > 0 then begin
          t.residual.(e) <- t.residual.(e) - d;
          t.residual.(e lxor 1) <- t.residual.(e lxor 1) + d;
          pushed := d
        end
        else t.cursor.(u) <- t.cursor.(u) + 1
      end
      else t.cursor.(u) <- t.cursor.(u) + 1
    done;
    !pushed
  end

type stats = { runs : int; phases : int; augmenting_paths : int }

let stats t =
  {
    runs = t.stat_runs;
    phases = t.stat_phases;
    augmenting_paths = t.stat_augmenting;
  }

exception Work_limit_exceeded of stats

let max_flow ?(limit = max_int) ?(work_limit = max_int) t ~source ~sink =
  if source = sink then invalid_arg "Flownet.max_flow: source equals sink";
  if work_limit < 0 then invalid_arg "Flownet.max_flow: negative work limit";
  freeze t;
  Array.blit t.base 0 t.residual 0 t.ecount;
  t.stat_runs <- t.stat_runs + 1;
  (* The work budget charges one unit per BFS phase and one per augmenting
     path, cumulatively over the network's lifetime (a Cut query builds a
     fresh network, so for cuts this is per-query effort). *)
  let charge () =
    if t.stat_phases + t.stat_augmenting > work_limit then
      raise (Work_limit_exceeded (stats t))
  in
  let flow = ref 0 in
  let exceeded () = !flow > limit in
  while (not (exceeded ())) && bfs t source sink do
    t.stat_phases <- t.stat_phases + 1;
    charge ();
    Array.fill t.cursor 0 t.nodes 0;
    let saturated = ref false in
    while (not !saturated) && not (exceeded ()) do
      let d = blocking t sink source inf in
      if d > 0 then begin
        flow := !flow + d;
        t.stat_augmenting <- t.stat_augmenting + 1;
        charge ()
      end
      else saturated := true
    done
  done;
  !flow

(* ---- node-split vertex cuts ------------------------------------------- *)

type split = { net : t; source : int; sink : int; node_arc : int array }

let split_nodes ~n ~succs ~sources ~sinks ~cap =
  if n <= 0 then invalid_arg "Flownet.split_nodes: empty graph";
  let net = create ((2 * n) + 2) in
  let source = 2 * n and sink = (2 * n) + 1 in
  let node_arc = Array.make n 0 in
  for u = 0 to n - 1 do
    node_arc.(u) <- add_edge net (2 * u) ((2 * u) + 1) (cap u)
  done;
  for u = 0 to n - 1 do
    List.iter (fun v -> ignore (add_edge net ((2 * u) + 1) (2 * v) inf)) succs.(u)
  done;
  List.iter (fun s -> ignore (add_edge net source (2 * s) inf)) sources;
  List.iter (fun s -> ignore (add_edge net ((2 * s) + 1) sink inf)) sinks;
  { net; source; sink; node_arc }
