(** Data-flow graph of a loop body.

    Nodes are reference groups (memory access points), operations and
    constants; edges follow the flow of values within one body iteration.
    A group written and then read in the same iteration (like [d\[i\]\[k\]]
    in Fig. 1) is a single node in the middle of the graph; a group read
    before being written (an accumulator) contributes a source node for the
    loop-carried value and a sink node for the new value.

    Latencies are not baked into the graph: path computations take a
    [charged] predicate saying which groups still hit RAM, so the critical
    path can be re-evaluated as CPA-RA hands out registers. *)

open Srfa_ir
open Srfa_reuse

type kind =
  | Ref_node of Group.t
  | Binary_node of Op.binary
  | Unary_node of Op.unary
  | Const_node of int

type node = private { id : int; kind : kind }

type t

val build : Analysis.t -> t
(** DFG of the analysed nest's body. *)

val analysis : t -> Analysis.t
val nodes : t -> node array
val succs : t -> int -> int list
val preds : t -> int -> int list
val num_nodes : t -> int

val ref_nodes : t -> node list
(** Nodes that are reference groups, in node-id order. *)

val group_of_node : node -> Group.t option

val group_id : t -> int -> int
(** Group id of a reference node, [-1] for operator/constant nodes — an
    allocation-free lookup for the hot cut-checking paths. *)

val node_latency :
  t -> latency:Srfa_hw.Latency.t -> charged:(Group.t -> bool) -> node -> int
(** Cycles this node contributes to a path: RAM latency for charged
    reference groups, register latency for the rest, the operation table
    for operators, 0 for constants. *)

val path_length :
  t -> latency:Srfa_hw.Latency.t -> charged:(Group.t -> bool) -> int
(** Maximum source-to-sink path latency (the per-iteration critical path
    length, [T_exec] of one body evaluation). *)

val memory_path_length :
  t -> latency:Srfa_hw.Latency.t -> charged:(Group.t -> bool) -> int
(** Like {!path_length} but counting only reference-node latencies: the
    memory portion of the critical path. *)

val node_name : node -> string

val topo_order : ?what:string -> t -> int list
(** Topological order of the node ids. [build] only produces DAGs, but any
    other graph source goes through the same ordering; a cycle raises
    [Invalid_argument] naming the offending node (["<what>: dependency
    cycle through node 3 (d[i][k])"]) rather than escaping as a raw
    {!Srfa_util.Toposort.Cycle} int. [what] names the computation being
    attempted (default ["Graph.topo_order"]). *)

val pp : Format.formatter -> t -> unit
