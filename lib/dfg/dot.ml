let render ?highlight g ~charged =
  let buf = Buffer.create 1024 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  out "digraph dfg {\n  rankdir=TB;\n";
  let in_cg u =
    match highlight with Some cg -> Critical.mem cg u | None -> false
  in
  let emit_node (nd : Graph.node) =
    let name = Graph.node_name nd in
    let shape, fill =
      match Graph.group_of_node nd with
      | Some gr -> ("box", if charged gr then ",style=filled,fillcolor=lightgray" else "")
      | None -> ("ellipse", "")
    in
    let bold = if in_cg nd.Graph.id then ",penwidth=2.5" else "" in
    out "  n%d [label=\"%s\",shape=%s%s%s];\n" nd.Graph.id name shape fill bold
  in
  Array.iter emit_node (Graph.nodes g);
  let emit_edges (nd : Graph.node) =
    let u = nd.Graph.id in
    let edge v =
      let bold = if in_cg u && in_cg v then " [penwidth=2.5]" else "" in
      out "  n%d -> n%d%s;\n" u v bold
    in
    List.iter edge (Graph.succs g u)
  in
  Array.iter emit_edges (Graph.nodes g);
  out "}\n";
  Buffer.contents buf
