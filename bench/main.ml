(* Benchmark harness: regenerates every quantitative artifact of the paper
   (DESIGN.md §5) and micro-benchmarks the allocators themselves.

     dune exec bench/main.exe            -- everything
     dune exec bench/main.exe fig2 ...   -- selected sections

   Sections:
     fig2                  Fig. 2(c) worked example (golden numbers)
     fig2-dfg              Fig. 2(a)/(b) DFG, critical graph and cuts
     table1                Table 1 (six kernels x v1/v2/v3)
     table1-summary        the paper's prose averages
     budget-sweep          cycles vs register budget per kernel (series)
     ablation-concurrency  distinct-RAM concurrency ablation
     ablation-knapsack     exact knapsack vs the greedy allocators
     ablation-residency    pinned slots vs LRU / direct-mapped registers
     ablation-cpa-plus     CPA-RA vs the CPA+ leftover-spending extension
     ablation-loop-order   best loop interchange per kernel (extension)
     ablation-latency      RAM-latency sensitivity of the v3 gain
     fixed-clock           Section 5's fixed-clock-fabric remark
     ablation-peeling      cost of the peeled window loads/writebacks
     ablation-pipelining   serial vs pipelined execution regimes
     perf                  Bechamel micro-benchmarks of the allocators
     perf-cuts             flow min-vertex-cut vs exhaustive enumeration
                           on synthetic unrolled kernels (BENCH_cuts.json)
     perf-fuzz             hardened run_checked vs raw evaluate, and
                           fuzz-harness case throughput
     perf-certify          certified portfolio vs plain CPA-RA wall-clock
                           across the sweep kernels (BENCH_certify.json)
     perf-parallel         serial vs N-domain wall-clock for the sweep,
                           fuzz and certify drivers, with the determinism
                           contract re-checked (BENCH_parallel.json)
     perf-core             allocation-free hot core: warm-evaluation
                           wall-clock, allocation rate and max-RSS per
                           kernel across a GC minor-heap matrix, against
                           the recorded pre-arena baselines
                           (BENCH_core.json)
     perf-robust           the daemon under a seeded fault plan and a
                           pipelined overload flood: clean vs faulted
                           throughput/latency and the shed rate
                           (BENCH_robust.json)
     perf-rebudget         incremental re-budgeting (one session, 40
                           oscillating budget events) vs one certified
                           portfolio point per event from scratch
                           (BENCH_rebudget.json)
     perf-explore          the joint design-space explorer vs its naive
                           full-product arm on the matmul space, with
                           prune/memo rates and the byte-identity
                           differential re-checked (BENCH_explore.json)

   Sections can also be picked with `--sections core,cuts,certify` —
   shorthand names expand to their perf-* section. *)

module Allocator = Srfa_core.Allocator
module Cpa_ra = Srfa_core.Cpa_ra
module Flow = Srfa_core.Flow
module Report = Srfa_estimate.Report
module Simulator = Srfa_sched.Simulator
module T = Srfa_util.Texttable
module Pool = Srfa_util.Pool

let budget = 64

(* ---- JSON artifacts --------------------------------------------------
   Every perf section that leaves a machine-readable trail (BENCH_*.json)
   writes it through this one helper instead of hand-rolling printf
   JSON: a top-level object with one field per line, arrays with one
   element per line, and element objects rendered inline. *)
module Json = struct
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Num of string  (* preformatted numeric, e.g. "%.1f" of a ns value *)
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  let float f = if Float.is_finite f then Num (Printf.sprintf "%.3f" f) else Null
  let ns f = Num (Printf.sprintf "%.1f" f)
  let opt f = function Some v -> f v | None -> Null

  let rec inline = function
    | Null -> "null"
    | Bool b -> if b then "true" else "false"
    | Int i -> string_of_int i
    | Num s -> s
    | Str s -> Printf.sprintf "%S" s
    | Arr xs -> "[" ^ String.concat ", " (List.map inline xs) ^ "]"
    | Obj fields ->
      "{ "
      ^ String.concat ", "
          (List.map (fun (k, v) -> Printf.sprintf "%S: %s" k (inline v)) fields)
      ^ " }"
end

let write_json file (fields : (string * Json.t) list) =
  let oc = open_out file in
  Printf.fprintf oc "{\n";
  let nf = List.length fields in
  List.iteri
    (fun i (k, v) ->
      let last = if i = nf - 1 then "" else "," in
      match v with
      | Json.Arr elems ->
        Printf.fprintf oc "  %S: [\n" k;
        let ne = List.length elems in
        List.iteri
          (fun j e ->
            Printf.fprintf oc "    %s%s\n" (Json.inline e)
              (if j = ne - 1 then "" else ","))
          elems;
        Printf.fprintf oc "  ]%s\n" last
      | v -> Printf.fprintf oc "  %S: %s%s\n" k (Json.inline v) last)
    fields;
  Printf.fprintf oc "}\n";
  close_out oc;
  Printf.printf "wrote %s\n" file

let section title =
  Printf.printf "\n==============================================================\n";
  Printf.printf "== %s\n" title;
  Printf.printf "==============================================================\n\n"

(* ------------------------------------------------------------------ fig2 *)

let fig2 () =
  section "fig2: worked example of Fig. 2(c) (budget 64)";
  let nest = Srfa_kernels.Kernels.example () in
  let analysis = Flow.analyze nest in
  let expected = [ ("fr-ra", 1800); ("pr-ra", 1560); ("cpa-ra", 1184) ] in
  let table =
    T.create
      ~headers:
        [
          ("algorithm", T.Left); ("beta distribution", T.Left);
          ("regs", T.Right); ("T_mem (cycles)", T.Right);
          ("paper", T.Right); ("match", T.Left);
        ]
  in
  let run alg =
    let alloc = Allocator.run alg analysis ~budget in
    let sim = Simulator.run alloc in
    let betas =
      String.concat " "
        (List.map
           (fun gid ->
             let i = Srfa_reuse.Analysis.info analysis gid in
             Printf.sprintf "%s:%d"
               (Srfa_reuse.Group.decl i.Srfa_reuse.Analysis.group).Srfa_ir.Decl.name
               (Srfa_reuse.Allocation.beta alloc gid))
           (List.init (Srfa_reuse.Analysis.num_groups analysis) Fun.id))
    in
    let name = Allocator.name alg in
    let mem = sim.Simulator.memory_cycles in
    let paper = List.assoc_opt name expected in
    T.add_row table
      [
        name;
        betas;
        string_of_int (Srfa_reuse.Allocation.total_registers alloc);
        string_of_int mem;
        (match paper with Some p -> string_of_int p | None -> "-");
        (match paper with
        | Some p -> if p = mem then "exact" else "MISMATCH"
        | None -> "");
      ]
  in
  List.iter run
    [ Allocator.Fr_ra; Allocator.Pr_ra; Allocator.Cpa_ra; Allocator.Knapsack ];
  T.print table

let fig2_dfg () =
  section "fig2-dfg: Fig. 2(a)/(b) data-flow graph, critical graph, cuts";
  let nest = Srfa_kernels.Kernels.example () in
  let analysis = Flow.analyze nest in
  let dfg = Srfa_dfg.Graph.build analysis in
  let charged _ = true in
  let cg =
    Srfa_dfg.Critical.make dfg ~latency:Srfa_hw.Latency.default ~charged
  in
  Printf.printf "critical path latency (all references in RAM): %d\n"
    (Srfa_dfg.Critical.length cg);
  List.iter
    (fun cut ->
      Printf.printf "cut: {%s}\n"
        (String.concat ", " (List.map Srfa_reuse.Group.name cut)))
    (Srfa_dfg.Cut.enumerate_exhaustive cg);
  Printf.printf "\nGraphviz DOT of the DFG (boxes = references):\n\n%s"
    (Srfa_dfg.Dot.render ~highlight:cg dfg ~charged)

(* ---------------------------------------------------------------- table1 *)

let kernel_reports () =
  List.map
    (fun (name, nest) -> (name, Flow.evaluate_all nest))
    (Srfa_kernels.Kernels.all ())

let table1 () =
  section
    (Printf.sprintf
       "table1: register allocation and hardware designs (budget %d, %s)"
       budget Srfa_hw.Device.xcv1000.Srfa_hw.Device.name);
  let show_kernel (name, reports) =
    let base = List.hd reports in
    Printf.printf "%s  (required registers for full replacement: %s)\n" name
      (String.concat ", "
         (List.map
            (fun (g, nu) -> Printf.sprintf "%s=%d" g nu)
            base.Report.required));
    let table =
      T.create
        ~headers:
          [
            ("version", T.Left); ("registers", T.Left); ("total", T.Right);
            ("cycles", T.Right); ("vs v1", T.Right); ("clock ns", T.Right);
            ("time us", T.Right); ("speedup", T.Right); ("slices", T.Right);
            ("occupancy", T.Right); ("RAMs", T.Right);
          ]
    in
    let row (r : Report.t) =
      T.add_row table
        [
          r.Report.version;
          String.concat " "
            (List.map (fun (_, b) -> string_of_int b) r.Report.allocated);
          string_of_int r.Report.total_registers;
          string_of_int r.Report.cycles;
          Printf.sprintf "%+.1f%%" (Report.cycle_reduction_pct ~base r);
          Printf.sprintf "%.1f" r.Report.clock_ns;
          Printf.sprintf "%.1f" r.Report.exec_time_us;
          Printf.sprintf "%.2f" (Report.speedup ~base r);
          string_of_int r.Report.slices;
          Printf.sprintf "%.1f%%" (100.0 *. r.Report.slice_utilization);
          string_of_int r.Report.rams;
        ]
    in
    List.iter row reports;
    T.print table;
    Printf.printf "\n"
  in
  List.iter show_kernel (kernel_reports ())

let table1_summary () =
  section "table1-summary: averages quoted in the paper's prose";
  let all = List.map snd (kernel_reports ()) in
  let summary v = Srfa_estimate.Summary.of_reports ~version:v all in
  let s2 = summary "v2" and s3 = summary "v3" in
  let cyc = function
    | "v2" -> s2.Srfa_estimate.Summary.mean_cycle_reduction_pct
    | _ -> s3.Srfa_estimate.Summary.mean_cycle_reduction_pct
  in
  let time = function
    | "v2" -> s2.Srfa_estimate.Summary.mean_wall_clock_gain_pct
    | _ -> s3.Srfa_estimate.Summary.mean_wall_clock_gain_pct
  in
  let clock = function
    | "v2" -> s2.Srfa_estimate.Summary.mean_clock_degradation_pct
    | _ -> s3.Srfa_estimate.Summary.mean_clock_degradation_pct
  in
  let table =
    T.create
      ~headers:
        [
          ("quantity", T.Left); ("v2 (PR-RA)", T.Right);
          ("v3 (CPA-RA)", T.Right); ("paper v2", T.Right); ("paper v3", T.Right);
        ]
  in
  T.add_row table
    [
      "avg cycle reduction";
      Printf.sprintf "%+.1f%%" (cyc "v2");
      Printf.sprintf "%+.1f%%" (cyc "v3");
      "+9%"; "+29.5%";
    ];
  T.add_row table
    [
      "avg wall-clock gain";
      Printf.sprintf "%+.1f%%" (time "v2");
      Printf.sprintf "%+.1f%%" (time "v3");
      "-0.2%"; "+22%";
    ];
  T.add_row table
    [
      "avg clock degradation";
      Printf.sprintf "%+.1f%%" (clock "v2");
      Printf.sprintf "%+.1f%%" (clock "v3");
      "-"; "~7.4%";
    ];
  T.print table;
  Printf.printf "\n%s\n%s\n"
    (Format.asprintf "%a" Srfa_estimate.Summary.pp s2)
    (Format.asprintf "%a" Srfa_estimate.Summary.pp s3);
  Printf.printf
    "\nShape criteria: v3 >= v2 >= v1 on cycles for every kernel; v2\n\
     wall-clock flat-to-negative; v3 wall-clock positive on average with\n\
     MAT/BIC-style kernels losing to clock degradation (paper §5).\n\
     EXPERIMENTS.md records paper-vs-measured per artifact.\n"

(* ---------------------------------------------------------- budget sweep *)

let budget_sweep () =
  section "budget-sweep: total cycles vs register budget (series per kernel)";
  let budgets = [ 8; 16; 24; 32; 48; 64; 96; 128; 192; 256 ] in
  let algorithms =
    [ Allocator.Fr_ra; Allocator.Pr_ra; Allocator.Cpa_ra; Allocator.Knapsack ]
  in
  (* One Flow.sweep pass over kernels x algorithms x budgets: each kernel
     is analysed once and its CPA scratch reused across every budget; the
     allocators' decision traces stream to a JSONL file as they run. *)
  let oc = open_out "BENCH_sweep_trace.jsonl" in
  let trace = Srfa_util.Trace.channel oc in
  (* Kernels fan out across the domain pool; the trace stream and the
     point order are identical to the sequential sweep by contract. *)
  let jobs, _ = Pool.resolve () in
  let points =
    Pool.with_pool ~jobs (fun pool ->
        Flow.sweep ~algorithms ~budgets ~trace ~pool
          (Srfa_kernels.Kernels.all ()))
  in
  close_out oc;
  List.iter
    (fun (name, nest) ->
      let minimum =
        Srfa_core.Ordering.feasibility_minimum (Flow.analyze nest)
      in
      Printf.printf "%s (feasibility minimum %d registers)\n" name minimum;
      let mine =
        List.filter (fun p -> p.Flow.kernel = name) points
      in
      let table =
        T.create
          ~headers:
            [
              ("budget", T.Right); ("v1 cycles", T.Right);
              ("v2 cycles", T.Right); ("v3 cycles", T.Right);
              ("ks cycles", T.Right);
            ]
      in
      List.iter
        (fun b ->
          let at = List.filter (fun p -> p.Flow.budget = b) mine in
          if at <> [] then begin
            let cycles alg =
              let p = List.find (fun p -> p.Flow.algorithm = alg) at in
              p.Flow.report.Report.cycles
            in
            T.add_row table
              [
                string_of_int b;
                string_of_int (cycles Allocator.Fr_ra);
                string_of_int (cycles Allocator.Pr_ra);
                string_of_int (cycles Allocator.Cpa_ra);
                string_of_int (cycles Allocator.Knapsack);
              ]
          end)
        budgets;
      T.print table;
      Printf.printf "\n")
    (Srfa_kernels.Kernels.all ());
  Printf.printf "wrote BENCH_sweep_trace.jsonl (%d design points traced)\n"
    (List.length points)

(* ------------------------------------------------------------- ablations *)

let ablation_concurrency () =
  section
    "ablation-concurrency: distinct-RAM concurrency vs a single shared bank";
  let table =
    T.create
      ~headers:
        [
          ("kernel", T.Left); ("algorithm", T.Left);
          ("cycles (private banks)", T.Right);
          ("cycles (single bank)", T.Right); ("penalty", T.Right);
        ]
  in
  List.iter
    (fun (name, nest) ->
      let analysis = Flow.analyze nest in
      List.iter
        (fun alg ->
          let cycles policy =
            let config =
              { Simulator.default_config with Simulator.ram_policy = policy }
            in
            let alloc = Allocator.run alg analysis ~budget in
            (Simulator.run ~config alloc).Simulator.total_cycles
          in
          let priv = cycles Simulator.Private_banks in
          let single = cycles Simulator.Single_bank in
          T.add_row table
            [
              name;
              Allocator.name alg;
              string_of_int priv;
              string_of_int single;
              Printf.sprintf "%.2fx" (float_of_int single /. float_of_int priv);
            ])
        [ Allocator.Fr_ra; Allocator.Cpa_ra ])
    (Srfa_kernels.Kernels.all ());
  T.print table

let ablation_knapsack () =
  section
    "ablation-knapsack: eliminating the most accesses is not the paper's \
     objective";
  let table =
    T.create
      ~headers:
        [
          ("kernel", T.Left); ("algorithm", T.Left); ("regs", T.Right);
          ("RAM accesses", T.Right); ("cycles", T.Right);
        ]
  in
  List.iter
    (fun (name, nest) ->
      let analysis = Flow.analyze nest in
      List.iter
        (fun alg ->
          let alloc = Allocator.run alg analysis ~budget in
          let sim = Simulator.run alloc in
          T.add_row table
            [
              name;
              Allocator.name alg;
              string_of_int (Srfa_reuse.Allocation.total_registers alloc);
              string_of_int sim.Simulator.ram_accesses;
              string_of_int sim.Simulator.total_cycles;
            ])
        [ Allocator.Knapsack; Allocator.Cpa_ra ];
      T.add_separator table)
    (Srfa_kernels.Kernels.all ());
  T.print table

let ablation_residency () =
  section
    "ablation-residency: compile-time pinned slots vs dynamic register      management";
  let table =
    T.create
      ~headers:
        [
          ("kernel", T.Left); ("pinned cycles", T.Right);
          ("LRU cycles", T.Right); ("direct-mapped cycles", T.Right);
          ("pinned hits", T.Right); ("LRU hits", T.Right);
          ("direct hits", T.Right);
        ]
  in
  List.iter
    (fun (name, nest) ->
      let analysis = Flow.analyze nest in
      let alloc = Allocator.run Allocator.Cpa_ra analysis ~budget in
      let run policy =
        let config =
          { Simulator.default_config with Simulator.residency = policy }
        in
        Simulator.run ~config alloc
      in
      let pinned = run Srfa_sched.Residency.Pinned in
      let lru = run Srfa_sched.Residency.Lru in
      let direct = run Srfa_sched.Residency.Direct_mapped in
      T.add_row table
        [
          name;
          string_of_int pinned.Simulator.total_cycles;
          string_of_int lru.Simulator.total_cycles;
          string_of_int direct.Simulator.total_cycles;
          string_of_int pinned.Simulator.register_hits;
          string_of_int lru.Simulator.register_hits;
          string_of_int direct.Simulator.register_hits;
        ])
    (Srfa_kernels.Kernels.all ());
  T.print table;
  Printf.printf
    "\nCyclic reuse windows larger than their register share thrash LRU to\n\
     zero hits; the compile-time pinned discipline keeps a guaranteed\n\
     fraction resident — the quantitative case for the paper's static\n\
     allocation over dynamic register management.\n"

let ablation_cpa_plus () =
  section "ablation-cpa-plus: spending CPA-RA's stranded registers";
  let table =
    T.create
      ~headers:
        [
          ("kernel", T.Left); ("v3 regs", T.Right); ("v3 cycles", T.Right);
          ("v3+ regs", T.Right); ("v3+ cycles", T.Right); ("gain", T.Right);
        ]
  in
  List.iter
    (fun (name, nest) ->
      let analysis = Flow.analyze nest in
      let eval alg =
        let alloc = Allocator.run alg analysis ~budget in
        ( Srfa_reuse.Allocation.total_registers alloc,
          (Simulator.run alloc).Simulator.total_cycles )
      in
      let r3, c3 = eval Allocator.Cpa_ra in
      let r3p, c3p = eval Allocator.Cpa_plus in
      T.add_row table
        [
          name;
          string_of_int r3;
          string_of_int c3;
          string_of_int r3p;
          string_of_int c3p;
          Printf.sprintf "%+.1f%%"
            (100.0 *. (1.0 -. (float_of_int c3p /. float_of_int c3)));
        ])
    (Srfa_kernels.Kernels.all ());
  T.print table;
  Printf.printf
    "\nAn honest negative: with the paper's budget the cut loop already\n\
     consumes everything, and when registers do strand (larger budgets),\n\
     the groups they could cover sit off the critical path, where extra\n\
     coverage cannot shorten a serial schedule. CPA-RA's frugality is\n\
     justified, not a missed opportunity.\n"

let ablation_loop_order () =
  section
    "ablation-loop-order: interchange changes the reuse windows (extension)";
  let table =
    T.create
      ~headers:
        [
          ("kernel", T.Left); ("default order", T.Left);
          ("default cycles", T.Right); ("best order", T.Left);
          ("best cycles", T.Right); ("gain", T.Right);
        ]
  in
  List.iter
    (fun (name, nest) ->
      match Srfa_ir.Permute.illegality nest with
      | Some why -> Printf.printf "%s: not permutable (%s)\n" name why
      | None ->
        let candidates, _ =
          Srfa_core.Order_explorer.explore Allocator.Cpa_ra nest
        in
        let identity = List.init (Srfa_ir.Nest.depth nest) Fun.id in
        let default =
          List.find (fun c -> c.Srfa_core.Order_explorer.order = identity)
            candidates
        in
        let best = List.hd candidates in
        T.add_row table
          [
            name;
            String.concat " " default.Srfa_core.Order_explorer.loop_vars;
            string_of_int default.Srfa_core.Order_explorer.cycles;
            String.concat " " best.Srfa_core.Order_explorer.loop_vars;
            string_of_int best.Srfa_core.Order_explorer.cycles;
            Printf.sprintf "%+.1f%%"
              (100.0
              *. (1.0
                 -. float_of_int best.Srfa_core.Order_explorer.cycles
                    /. float_of_int default.Srfa_core.Order_explorer.cycles));
          ])
    (Srfa_kernels.Kernels.all ());
  T.print table;
  Printf.printf
    "\nInterchange moves reuse to cheaper windows before any register is\n\
     allocated (IMI: the frame loop innermost turns two 4096-element image\n\
     windows into single registers). The paper fixes the loop order; this\n\
     is the natural phase-ordering companion experiment.\n"

let ablation_latency () =
  section
    "ablation-latency: RAM access latency sensitivity (v3 vs v1 cycle gain)";
  Printf.printf
    "The Fig. 2 calibration fixes the default table (RAM = 1 cycle); this\n\
     sweep checks the conclusions survive slower memories.\n\n";
  let table =
    T.create
      ~headers:
        [
          ("kernel", T.Left); ("RAM latency", T.Right);
          ("v1 cycles", T.Right); ("v3 cycles", T.Right);
          ("v3 gain", T.Right);
        ]
  in
  List.iter
    (fun (name, nest) ->
      let analysis = Flow.analyze nest in
      List.iter
        (fun ram ->
          let latency = Srfa_hw.Latency.make ~ram_access:ram () in
          let config =
            { Simulator.default_config with Simulator.latency = latency }
          in
          let cycles alg =
            let alloc = Allocator.run ~latency alg analysis ~budget in
            (Simulator.run ~config alloc).Simulator.total_cycles
          in
          let v1 = cycles Allocator.Fr_ra and v3 = cycles Allocator.Cpa_ra in
          T.add_row table
            [
              name;
              string_of_int ram;
              string_of_int v1;
              string_of_int v3;
              Printf.sprintf "%+.1f%%"
                (100.0 *. (1.0 -. (float_of_int v3 /. float_of_int v1)));
            ])
        [ 1; 2; 4 ];
      T.add_separator table)
    (Srfa_kernels.Kernels.all ());
  T.print table

let fixed_clock () =
  section
    "fixed-clock: the paper's closing remark of Section 5 (fixed-rate      fabrics)";
  Printf.printf
    "\"For configurable architectures where the clock rate is fixed\n\
     regardless of the design complexity, the results would yield\n\
     performance improvements for all code variants.\" Under a fixed 40 ns\n\
     clock, speedup = cycle ratio:\n\n";
  let table =
    T.create
      ~headers:
        [
          ("kernel", T.Left); ("v2 speedup", T.Right); ("v3 speedup", T.Right);
          ("v2 >= 1", T.Left); ("v3 >= 1", T.Left);
        ]
  in
  List.iter
    (fun (name, reports) ->
      let base = List.hd reports in
      let ratio v =
        let r = List.find (fun r -> r.Report.version = v) reports in
        float_of_int base.Report.cycles /. float_of_int r.Report.cycles
      in
      let v2 = ratio "v2" and v3 = ratio "v3" in
      T.add_row table
        [
          name;
          Printf.sprintf "%.2fx" v2;
          Printf.sprintf "%.2fx" v3;
          (if v2 >= 1.0 then "yes" else "NO");
          (if v3 >= 1.0 then "yes" else "NO");
        ])
    (kernel_reports ());
  T.print table

let ablation_peeling () =
  section
    "ablation-peeling: what the uncharged prologue/epilogue transfers cost";
  Printf.printf
    "The steady-state model (and the paper's accounting) charges nothing\n\
     for window loads/writebacks. Shift-style peeling loads each element\n\
     once (the saved-access formula's assumption); naive whole-window\n\
     reloading would not be negligible.\n\n";
  let table =
    T.create
      ~headers:
        [
          ("kernel", T.Left); ("steady cycles (v3)", T.Right);
          ("+shift edges", T.Right); ("+naive reload edges", T.Right);
          ("shift overhead", T.Right);
        ]
  in
  List.iter
    (fun (name, nest) ->
      let analysis = Flow.analyze nest in
      let alloc = Allocator.run Allocator.Cpa_ra analysis ~budget in
      let steady = (Simulator.run alloc).Simulator.total_cycles in
      let plan = Srfa_codegen.Plan.build alloc in
      let shift =
        Srfa_codegen.Plan.edge_transfers plan
          ~strategy:Srfa_codegen.Plan.Shift_window
      in
      let reload =
        Srfa_codegen.Plan.edge_transfers plan
          ~strategy:Srfa_codegen.Plan.Reload_window
      in
      T.add_row table
        [
          name;
          string_of_int steady;
          string_of_int (steady + shift);
          string_of_int (steady + reload);
          Printf.sprintf "%.1f%%"
            (100.0 *. float_of_int shift /. float_of_int steady);
        ])
    (Srfa_kernels.Kernels.all ());
  T.print table

let ablation_pipelining () =
  section
    "ablation-pipelining: where the serial-schedule argument holds (and      where the knapsack objective takes over)";
  Printf.printf
    "The paper's designs execute serially (Monet emits one-body-at-a-time\n\
     FSMs); CPA-RA minimises the serial critical path. A fully pipelined\n\
     body is limited by RAM-port pressure instead: with private dual-ported\n\
     banks every design reaches II = 1 (allocation irrelevant), and with a\n\
     single shared port the initiation interval equals the access count —\n\
     the regime where the paper's Section 3 knapsack formulation is the\n\
     right objective.\n\n";
  let table =
    T.create
      ~headers:
        [
          ("kernel", T.Left); ("algorithm", T.Left);
          ("serial", T.Right); ("pipelined/private", T.Right);
          ("pipelined/1-port", T.Right);
        ]
  in
  List.iter
    (fun (name, nest) ->
      let analysis = Flow.analyze nest in
      List.iter
        (fun alg ->
          let cycles execution ram_policy =
            let config =
              { Simulator.default_config with
                Simulator.execution; ram_policy }
            in
            let alloc = Allocator.run alg analysis ~budget in
            (Simulator.run ~config alloc).Simulator.total_cycles
          in
          T.add_row table
            [
              name;
              Allocator.name alg;
              string_of_int (cycles Simulator.Serial Simulator.Private_banks);
              string_of_int (cycles Simulator.Pipelined Simulator.Private_banks);
              string_of_int (cycles Simulator.Pipelined Simulator.Single_bank);
            ])
        [ Allocator.Fr_ra; Allocator.Cpa_ra; Allocator.Knapsack ];
      T.add_separator table)
    (Srfa_kernels.Kernels.all ());
  T.print table

(* ------------------------------------------------------------------ perf *)

let perf () =
  section "perf: Bechamel micro-benchmarks of the allocators";
  let open Bechamel in
  let nest = Srfa_kernels.Kernels.example () in
  let analysis = Flow.analyze nest in
  let mat_analysis = Flow.analyze (Srfa_kernels.Kernels.mat ~size:8 ()) in
  let stage name f = Test.make ~name (Staged.stage f) in
  let tests =
    [
      stage "analyze example" (fun () -> ignore (Flow.analyze nest));
      stage "fr-ra example" (fun () ->
          ignore (Allocator.run Allocator.Fr_ra analysis ~budget));
      stage "pr-ra example" (fun () ->
          ignore (Allocator.run Allocator.Pr_ra analysis ~budget));
      stage "cpa-ra example" (fun () ->
          ignore (Allocator.run Allocator.Cpa_ra analysis ~budget));
      stage "ks-ra example" (fun () ->
          ignore (Allocator.run Allocator.Knapsack analysis ~budget));
      stage "cpa-ra mat8" (fun () ->
          ignore (Allocator.run Allocator.Cpa_ra mat_analysis ~budget));
      stage "cut enumeration" (fun () ->
          let dfg = Srfa_dfg.Graph.build analysis in
          let cg =
            Srfa_dfg.Critical.make dfg ~latency:Srfa_hw.Latency.default
              ~charged:(fun _ -> true)
          in
          ignore (Srfa_dfg.Cut.enumerate_exhaustive cg));
      stage "simulate example (cpa)" (fun () ->
          let alloc = Allocator.run Allocator.Cpa_ra analysis ~budget in
          ignore (Simulator.run alloc));
    ]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) () in
  let raw =
    Benchmark.all cfg [ instance ] (Test.make_grouped ~name:"srfa" tests)
  in
  let results =
    Analyze.all
      (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
      instance raw
  in
  let rows = ref [] in
  Hashtbl.iter
    (fun name result ->
      let est =
        match Analyze.OLS.estimates result with
        | Some [ e ] -> Printf.sprintf "%12.1f ns/run" e
        | Some _ | None -> "(no estimate)"
      in
      rows := (name, est) :: !rows)
    results;
  List.iter
    (fun (name, est) -> Printf.printf "  %-32s %s\n" name est)
    (List.sort compare !rows)

(* ------------------------------------------------------------- perf-cuts *)

(* The cheapest-cut query CPA-RA issues every round, asked two ways on the
   same critical graph: through the polynomial flow engine and through the
   exhaustive minimal-cut enumeration (capped at 16 groups — its hard
   wall). The synthetic kernels put every reference group on the CG, the
   unrolled regime the enumerator cannot survive. *)
let perf_cuts () =
  section
    "perf-cuts: flow min-vertex-cut vs exhaustive enumeration (synthetic \
     unrolled kernels)";
  let sizes = [ 8; 12; 16; 24; 48 ] in
  let instances =
    List.map
      (fun g ->
        let nest = Srfa_kernels.Extra.synthetic_cut ~groups:g () in
        let analysis = Flow.analyze nest in
        let dfg = Srfa_dfg.Graph.build analysis in
        let info gid = Srfa_reuse.Analysis.info analysis gid in
        (* The CPA-RA round-1 memory state: one pinned register per group. *)
        let charged (grp : Srfa_reuse.Group.t) =
          let i = info grp.Srfa_reuse.Group.id in
          (not i.Srfa_reuse.Analysis.has_reuse) || 1 < i.Srfa_reuse.Analysis.nu
        in
        let improvable (grp : Srfa_reuse.Group.t) =
          let i = info grp.Srfa_reuse.Group.id in
          i.Srfa_reuse.Analysis.has_reuse && 1 < i.Srfa_reuse.Analysis.nu
        in
        let weight (grp : Srfa_reuse.Group.t) =
          (info grp.Srfa_reuse.Group.id).Srfa_reuse.Analysis.nu - 1
        in
        let cg =
          Srfa_dfg.Critical.make dfg ~latency:Srfa_hw.Latency.default ~charged
        in
        (g, cg, improvable, weight))
      sizes
  in
  let flow_query cg improvable weight () =
    ignore (Srfa_dfg.Cut.cheapest cg ~eligible:improvable ~weight)
  in
  let exhaustive_query cg improvable weight () =
    (* What Cpa_ra.allocate did before the flow engine: enumerate every
       minimal cut, keep the all-improvable ones, fold to the cheapest. *)
    let cuts = Srfa_dfg.Cut.enumerate_exhaustive cg in
    let eligible = List.filter (List.for_all improvable) cuts in
    let required = List.fold_left (fun acc grp -> acc + weight grp) 0 in
    ignore
      (List.fold_left
         (fun acc cut ->
           match acc with
           | None -> Some cut
           | Some b -> if required cut < required b then Some cut else acc)
         None eligible)
  in
  (* Equal answers before timing: the oracle and the engine must name the
     same cheapest weight wherever the oracle can run at all. *)
  List.iter
    (fun (g, cg, improvable, weight) ->
      if g <= 16 then begin
        let required = List.fold_left (fun acc grp -> acc + weight grp) 0 in
        let reference =
          Srfa_dfg.Cut.enumerate_exhaustive cg
          |> List.filter (List.for_all improvable)
          |> List.fold_left
               (fun acc cut ->
                 match acc with
                 | None -> Some (required cut)
                 | Some b -> Some (min b (required cut)))
               None
        in
        let flow =
          Option.map snd (Srfa_dfg.Cut.cheapest cg ~eligible:improvable ~weight)
        in
        Printf.printf "%2d groups: cheapest weight flow=%s exhaustive=%s %s\n"
          g
          (match flow with Some w -> string_of_int w | None -> "-")
          (match reference with Some w -> string_of_int w | None -> "-")
          (if flow = reference then "agree" else "MISMATCH")
      end)
    instances;
  Printf.printf "\n";
  let open Bechamel in
  let stage name f = Test.make ~name (Staged.stage f) in
  let tests =
    List.concat_map
      (fun (g, cg, improvable, weight) ->
        let flow = stage (Printf.sprintf "flow-%02d" g)
            (flow_query cg improvable weight)
        in
        if g <= 16 then
          [
            flow;
            stage (Printf.sprintf "exhaustive-%02d" g)
              (exhaustive_query cg improvable weight);
          ]
        else [ flow ])
      instances
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:50 ~quota:(Time.second 0.25) () in
  let raw =
    Benchmark.all cfg [ instance ] (Test.make_grouped ~name:"cuts" tests)
  in
  let results =
    Analyze.all
      (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
      instance raw
  in
  let estimates = Hashtbl.create 16 in
  Hashtbl.iter
    (fun name result ->
      match Analyze.OLS.estimates result with
      | Some [ e ] -> Hashtbl.replace estimates name e
      | Some _ | None -> ())
    results;
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  let lookup kind g =
    Hashtbl.fold
      (fun name e acc ->
        if contains name (Printf.sprintf "%s-%02d" kind g) then Some e else acc)
      estimates None
  in
  let table =
    T.create
      ~headers:
        [
          ("ref groups", T.Right); ("flow ns/query", T.Right);
          ("exhaustive ns/query", T.Right); ("speedup", T.Right);
        ]
  in
  let points =
    List.map
      (fun g ->
        let flow = lookup "flow" g and exh = lookup "exhaustive" g in
        let speedup =
          match (flow, exh) with
          | Some f, Some e when f > 0.0 -> Some (e /. f)
          | _ -> None
        in
        T.add_row table
          [
            string_of_int g;
            (match flow with Some f -> Printf.sprintf "%.0f" f | None -> "-");
            (match exh with Some e -> Printf.sprintf "%.0f" e | None -> "-");
            (match speedup with
            | Some s -> Printf.sprintf "%.0fx" s
            | None -> "- (beyond the 16-group wall)");
          ];
        (g, flow, exh, speedup))
      sizes
  in
  T.print table;
  (match List.find_opt (fun (g, _, _, _) -> g = 16) points with
  | Some (_, _, _, Some s) ->
    Printf.printf "\nspeedup at the 16-group wall: %.0fx (target >= 10x): %s\n"
      s
      (if s >= 10.0 then "ok" else "MISMATCH")
  | _ -> Printf.printf "\nspeedup at the 16-group wall: unavailable\n");
  write_json "BENCH_cuts.json"
    [
      ("benchmark", Json.Str "perf-cuts");
      ("unit", Json.Str "ns/query");
      ( "points",
        Json.Arr
          (List.map
             (fun (g, flow, exh, speedup) ->
               Json.Obj
                 [
                   ("groups", Json.Int g);
                   ("flow_ns", Json.opt Json.ns flow);
                   ("exhaustive_ns", Json.opt Json.ns exh);
                   ("speedup", Json.opt Json.ns speedup);
                 ])
             points) );
    ]

(* ------------------------------------------------------------- perf-fuzz *)

(* The robustness layer must be close to free on the happy path:
   run_checked adds guard bookkeeping, the event-model second opinion and
   warning synthesis on top of evaluate. Measure both on the Fig. 1
   example, plus the fuzz harness's generate-and-judge throughput (a mix
   of valid, mask-stress and broken kernels). *)
let perf_fuzz () =
  section "perf-fuzz: hardened-pipeline overhead and fuzz throughput";
  let open Bechamel in
  let nest = Srfa_kernels.Kernels.example () in
  let stage name f = Test.make ~name (Staged.stage f) in
  let case_id = ref 0 in
  let jobs, _ = Pool.resolve () in
  let pool = Pool.create ~jobs in
  let tests =
    [
      stage "evaluate (raw)" (fun () ->
          ignore (Flow.evaluate Allocator.Cpa_ra nest));
      stage "run_checked (hardened)" (fun () ->
          ignore (Flow.run_checked nest));
      stage "fuzz case (generate+judge)" (fun () ->
          let id = !case_id in
          case_id := (id + 1) mod 200;
          ignore
            (Srfa_fuzzer.Harness.run_case
               (Srfa_fuzzer.Gen.generate ~seed:42 ~id)));
      stage
        (Printf.sprintf "fuzz campaign (20 cases, %d domains)" jobs)
        (fun () -> ignore (Srfa_fuzzer.Harness.run ~cases:20 ~seed:42 ~pool ()));
    ]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) () in
  let raw =
    Benchmark.all cfg [ instance ] (Test.make_grouped ~name:"srfa" tests)
  in
  let results =
    Analyze.all
      (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
      instance raw
  in
  let rows = ref [] in
  Hashtbl.iter
    (fun name result ->
      let est =
        match Analyze.OLS.estimates result with
        | Some [ e ] -> Printf.sprintf "%12.1f ns/run" e
        | Some _ | None -> "(no estimate)"
      in
      rows := (name, est) :: !rows)
    results;
  List.iter
    (fun (name, est) -> Printf.printf "  %-32s %s\n" name est)
    (List.sort compare !rows);
  Pool.shutdown pool

(* ---------------------------------------------------------- perf-certify *)

(* What the never-worse guarantee costs: a certified portfolio point pays
   for the two greedy baseline allocations and their simulations on top
   of the plain CPA-RA evaluation (allocation + simulation), plus the
   repair passes when the candidate lost. Measured end to end on every
   sweep kernel at the paper's budget; the recorded overhead is the plain
   wall-clock ratio certified_ns / plain_ns, and the acceptance bar is
   that ratio under 3x (the old bar — extra work below 2x plain —
   restated in the units the JSON actually carries). *)
let perf_certify () =
  section
    "perf-certify: certification overhead vs plain CPA-RA (sweep kernels)";
  let open Bechamel in
  let stage name f = Test.make ~name (Staged.stage f) in
  (* The per-kernel analyses are independent; build them through the
     pool so the section's setup scales with the machine. *)
  let instances =
    let jobs, _ = Pool.resolve () in
    let named = Array.of_list (Srfa_kernels.Kernels.all ()) in
    Array.to_list
      (Pool.with_pool ~jobs (fun pool ->
           Pool.map pool (fun (name, nest) -> (name, Flow.analyze nest)) named))
  in
  (* Both arms end with a simulation result in hand: plain allocates and
     simulates; certified allocates, certifies, and reuses the
     certification's final simulation when the slow path already produced
     one (as Flow.sweep does), simulating only on the dominance fast
     path. *)
  let plain analysis () =
    let alloc = Allocator.run Allocator.Cpa_ra analysis ~budget in
    ignore (Simulator.run alloc)
  in
  let certified analysis () =
    let outcome = Allocator.run_portfolio analysis ~budget in
    match outcome.Srfa_core.Certify.sim with
    | Some sim -> ignore sim
    | None -> ignore (Simulator.run outcome.Srfa_core.Certify.allocation)
  in
  let tests =
    List.concat_map
      (fun (name, analysis) ->
        [
          stage (Printf.sprintf "plain:%s" name) (plain analysis);
          stage (Printf.sprintf "certified:%s" name) (certified analysis);
        ])
      instances
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:100 ~quota:(Time.second 0.25) () in
  let raw =
    Benchmark.all cfg [ instance ] (Test.make_grouped ~name:"certify" tests)
  in
  let results =
    Analyze.all
      (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
      instance raw
  in
  let estimates = Hashtbl.create 16 in
  Hashtbl.iter
    (fun name result ->
      match Analyze.OLS.estimates result with
      | Some [ e ] -> Hashtbl.replace estimates name e
      | Some _ | None -> ())
    results;
  let lookup kind kernel =
    let suffix = Printf.sprintf "%s:%s" kind kernel in
    Hashtbl.fold
      (fun name e acc ->
        if String.ends_with ~suffix name then Some e else acc)
      estimates None
  in
  let table =
    T.create
      ~headers:
        [
          ("kernel", T.Left); ("plain ns", T.Right);
          ("certified ns", T.Right); ("overhead", T.Right);
        ]
  in
  let points =
    List.map
      (fun (name, _) ->
        let plain = lookup "plain" name
        and certified = lookup "certified" name in
        let overhead =
          match (plain, certified) with
          | Some p, Some c when p > 0.0 -> Some (c /. p)
          | _ -> None
        in
        T.add_row table
          [
            name;
            (match plain with Some p -> Printf.sprintf "%.0f" p | None -> "-");
            (match certified with
            | Some c -> Printf.sprintf "%.0f" c
            | None -> "-");
            (match overhead with
            | Some o -> Printf.sprintf "%.2fx" o
            | None -> "-");
          ];
        (name, plain, certified, overhead))
      instances
  in
  T.print table;
  let worst =
    List.fold_left
      (fun acc (_, _, _, o) ->
        match (acc, o) with
        | None, o -> o
        | Some a, Some o -> Some (max a o)
        | Some a, None -> Some a)
      None points
  in
  (match worst with
  | Some w ->
    Printf.printf
      "\nworst certification overhead: %.2fx plain CPA-RA wall-clock (target \
       < 3x): %s\n"
      w
      (if w < 3.0 then "ok" else "MISMATCH")
  | None -> Printf.printf "\nworst certification overhead: unavailable\n");
  write_json "BENCH_certify.json"
    [
      ("benchmark", Json.Str "perf-certify");
      ("unit", Json.Str "ns/evaluation");
      ("budget", Json.Int budget);
      ("overhead_target_x", Json.Num "3.0");
      ( "points",
        Json.Arr
          (List.map
             (fun (name, plain, certified, overhead) ->
               Json.Obj
                 [
                   ("kernel", Json.Str name);
                   ("plain_ns", Json.opt Json.ns plain);
                   ("certified_ns", Json.opt Json.ns certified);
                   ("overhead_x", Json.opt Json.ns overhead);
                 ])
             points) );
    ]

(* ---------------------------------------------------------- perf-parallel *)

(* Serial vs pooled wall-clock for the three heavy drivers (the sweep
   batch driver, the fuzz campaign, and the certified-portfolio sweep),
   with the determinism contract checked in the same breath: each
   driver's pooled result must equal its serial result structurally.
   Wall-clock, not CPU time — CPU time sums across domains and would
   hide every speedup. *)
let perf_parallel () =
  section "perf-parallel: serial vs N-domain wall-clock (heavy drivers)";
  let wall f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let jobs, _ = Pool.resolve () in
  let kernels = Srfa_kernels.Kernels.all () in
  let digest points =
    String.concat ";"
      (List.map
         (fun (p : Flow.sweep_point) ->
           Printf.sprintf "%s/%s/%d:%dc/%dr" p.Flow.kernel
             (Allocator.name p.Flow.algorithm)
             p.Flow.budget p.Flow.report.Report.cycles
             p.Flow.report.Report.total_registers)
         points)
  in
  let fuzz_digest (s : Srfa_fuzzer.Harness.summary) =
    let ids l =
      String.concat ","
        (List.map
           (fun ((c : Srfa_fuzzer.Gen.case), _) -> string_of_int c.Srfa_fuzzer.Gen.id)
           l)
    in
    Format.asprintf "%a | regressions:[%s] plus:[%s] violations:[%s]"
      Srfa_fuzzer.Harness.pp_summary s
      (ids s.Srfa_fuzzer.Harness.regressions)
      (ids s.Srfa_fuzzer.Harness.plus_regressions)
      (ids s.Srfa_fuzzer.Harness.violations)
  in
  let greedy = [ Allocator.Fr_ra; Allocator.Pr_ra; Allocator.Cpa_ra ] in
  let fuzz_cases = 800 in
  let drivers =
    [
      ("sweep", fun pool -> digest (Flow.sweep ~algorithms:greedy ?pool kernels));
      ( "fuzz",
        fun pool ->
          fuzz_digest (Srfa_fuzzer.Harness.run ~cases:fuzz_cases ~seed:42 ?pool ())
      );
      ( "certify-sweep",
        fun pool ->
          digest (Flow.sweep ~algorithms:[ Allocator.Portfolio ] ?pool kernels) );
    ]
  in
  let table =
    T.create
      ~headers:
        [
          ("driver", T.Left); ("serial s", T.Right);
          (Printf.sprintf "%d-domain s" jobs, T.Right); ("speedup", T.Right);
          ("identical", T.Left);
        ]
  in
  let points =
    Pool.with_pool ~jobs (fun pool ->
        List.map
          (fun (name, run) ->
            let serial, serial_s = wall (fun () -> run None) in
            let pooled, parallel_s = wall (fun () -> run (Some pool)) in
            let speedup = serial_s /. parallel_s in
            let identical = serial = pooled in
            T.add_row table
              [
                name;
                Printf.sprintf "%.3f" serial_s;
                Printf.sprintf "%.3f" parallel_s;
                Printf.sprintf "%.2fx" speedup;
                (if identical then "yes" else "MISMATCH");
              ];
            (name, serial_s, parallel_s, speedup, identical))
          drivers)
  in
  T.print table;
  let domains_available = Domain.recommended_domain_count () in
  (* On a single-core host both arms take the sequential path: the
     numbers are real wall-clock but verify nothing about the domain
     pool, so the artifact says so machine-readably instead of letting
     a ~1x ratio masquerade as a measured parallel result. *)
  let unverified = domains_available <= 1 || jobs <= 1 in
  let note =
    if unverified then
      "single-core host: the pool degrades to the sequential path, so \
       speedups of ~1x are expected and do not exercise the domain pool; \
       re-run on a multicore host for meaningful ratios"
    else
      Printf.sprintf
        "pooled arms ran on %d worker domains of %d available" jobs
        domains_available
  in
  if unverified then
    Printf.printf
      "\nNOTE: only %d domain(s) available — parallel speedups are \
       UNVERIFIED on this host; BENCH_parallel.json is stamped \
       \"unverified\": true.\n"
      domains_available;
  Printf.printf
    "\n%d worker domains (machine recommends %d, %d available); the fuzz\n\
     driver runs %d cases. Speedup is wall-clock; on a single-core host\n\
     both arms take the sequential path and the ratio sits at ~1x by\n\
     construction.\n"
    jobs (Pool.recommended ()) domains_available fuzz_cases;
  write_json "BENCH_parallel.json"
    [
      ("benchmark", Json.Str "perf-parallel");
      ("unit", Json.Str "seconds wall-clock");
      ("jobs", Json.Int jobs);
      ("recommended_domains", Json.Int (Pool.recommended ()));
      ("domains_available", Json.Int domains_available);
      ("unverified", Json.Bool unverified);
      ("note", Json.Str note);
      ("fuzz_cases", Json.Int fuzz_cases);
      ( "drivers",
        Json.Arr
          (List.map
             (fun (name, serial_s, parallel_s, speedup, identical) ->
               Json.Obj
                 [
                   ("driver", Json.Str name);
                   ("serial_s", Json.float serial_s);
                   ("parallel_s", Json.float parallel_s);
                   ("speedup", Json.float speedup);
                   ("identical", Json.Bool identical);
                 ])
             points) );
    ]

(* ------------------------------------------------------------- perf-core *)

(* The allocation-free hot core, measured the way mimalloc-bench measures
   allocators: one warm workload re-run under several minor-heap sizes
   (OCAMLRUNPARAM s=...), recording wall-clock, bytes allocated per
   evaluation (Gc.allocated_bytes) and max RSS (VmHWM). The runtime reads
   OCAMLRUNPARAM once at program start, so each cell of the matrix
   re-executes this binary in a hidden probe mode
   (`perf-core-probe <kernel>`) with the environment set; the parent
   parses one machine-readable line per run.

   The baselines are wall-clock and allocated-bytes numbers for the boxed
   simulator (fresh model, fresh residency and a Bytes memo key per
   iteration on every call) captured on this host immediately before the
   arena rewrite; that code path no longer exists in the library, so they
   are recorded as constants. The acceptance bars from the issue: >= 5x
   wall-clock on the bic plain evaluation and >= 10x fewer minor
   allocations per warm evaluation. *)

let core_kernels = [ "fir"; "dec-fir"; "imi"; "mat"; "pat"; "bic" ]

(* kernel -> (ns/evaluation, allocated bytes/evaluation) of the boxed
   simulator before the rewrite; same host, same budget, same
   allocate-then-simulate workload. *)
let core_baselines =
  [
    ("fir", (8_863_926.0, 6_735_043.0));
    ("dec-fir", (4_608_154.0, 3_357_536.0));
    ("imi", (16_870_975.0, 7_630_516.0));
    ("mat", (15_698_910.0, 7_603_077.0));
    ("pat", (22_454_023.0, 13_409_664.0));
    ("bic", (161_386_013.0, 105_876_090.0));
  ]

(* Minor-heap matrix: label and OCAMLRUNPARAM for the probe process.
   [None] inherits the parent's runtime defaults. *)
let core_gc_matrix =
  [
    ("default", None);
    ("s=32k", Some "s=32k");
    ("s=256k", Some "s=256k");
    ("s=4M", Some "s=4M");
  ]

let core_probe_reps = 9

let vmhwm_kb () =
  match open_in "/proc/self/status" with
  | exception Sys_error _ -> 0
  | ic ->
    let rec scan acc =
      match input_line ic with
      | exception End_of_file -> acc
      | line ->
        if String.length line > 6 && String.sub line 0 6 = "VmHWM:" then
          scan
            (try
               Scanf.sscanf
                 (String.sub line 6 (String.length line - 6))
                 " %d"
                 Fun.id
             with Scanf.Scan_failure _ | End_of_file | Failure _ -> acc)
        else scan acc
    in
    let kb = scan 0 in
    close_in ic;
    kb

(* Hidden mode: run one kernel's warm-evaluation loop under whatever
   OCAMLRUNPARAM this process was started with and print one line. The
   prepared CPA-RA state and the simulator scratch are built once; every
   timed evaluation is a full allocation + simulation — the Flow.sweep
   inner loop. *)
let perf_core_probe kernel =
  let nest =
    match List.assoc_opt kernel (Srfa_kernels.Kernels.all ()) with
    | Some nest -> nest
    | None ->
      Printf.eprintf "perf-core-probe: unknown kernel %s\n" kernel;
      exit 1
  in
  let analysis = Flow.analyze nest in
  let prepared = Cpa_ra.prepare analysis in
  let scratch = Simulator.scratch ~dfg:(Cpa_ra.dfg prepared) analysis in
  let evaluate () =
    let alloc = Allocator.run ~prepared Allocator.Cpa_ra analysis ~budget in
    ignore (Simulator.run ~scratch alloc)
  in
  (* Warm the scratch to its high-water mark before measuring. *)
  evaluate ();
  let times = Array.make core_probe_reps 0.0 in
  let before = Gc.allocated_bytes () in
  for i = 0 to core_probe_reps - 1 do
    let t0 = Unix.gettimeofday () in
    evaluate ();
    times.(i) <- (Unix.gettimeofday () -. t0) *. 1e9
  done;
  let allocated =
    (Gc.allocated_bytes () -. before) /. float_of_int core_probe_reps
  in
  Array.sort compare times;
  Printf.printf "kernel=%s median_ns=%.0f alloc_per_eval=%.0f rss_kb=%d\n"
    kernel
    times.(core_probe_reps / 2)
    allocated (vmhwm_kb ())

let run_core_probe ~runparam kernel =
  let env =
    Array.of_list
      ((match runparam with
       | None -> []
       | Some v -> [ "OCAMLRUNPARAM=" ^ v ])
      @ List.filter
          (fun s ->
            not (String.length s >= 14 && String.sub s 0 14 = "OCAMLRUNPARAM="))
          (Array.to_list (Unix.environment ())))
  in
  let ic, oc, ec =
    Unix.open_process_args_full Sys.executable_name
      [| Sys.executable_name; "perf-core-probe"; kernel |]
      env
  in
  let line = try Some (input_line ic) with End_of_file -> None in
  let status = Unix.close_process_full (ic, oc, ec) in
  match (status, line) with
  | Unix.WEXITED 0, Some line -> (
    try
      Scanf.sscanf line "kernel=%s@ median_ns=%f alloc_per_eval=%f rss_kb=%d"
        (fun _ ns alloc rss -> Some (ns, alloc, rss))
    with Scanf.Scan_failure _ | End_of_file | Failure _ -> None)
  | _ -> None

let perf_core () =
  section
    "perf-core: allocation-free hot core across a GC minor-heap matrix";
  (* One probe process per (kernel, GC config) cell. *)
  let cells =
    List.map
      (fun kernel ->
        ( kernel,
          List.map
            (fun (label, runparam) ->
              (label, run_core_probe ~runparam kernel))
            core_gc_matrix ))
      core_kernels
  in
  let default_of row = List.assoc "default" row in
  (* Absolute numbers under the default GC against the boxed baselines. *)
  let table =
    T.create
      ~headers:
        [
          ("kernel", T.Left); ("boxed ns", T.Right); ("warm ns", T.Right);
          ("speedup", T.Right); ("boxed B/eval", T.Right);
          ("warm B/eval", T.Right); ("alloc cut", T.Right);
        ]
  in
  let points =
    List.map
      (fun (kernel, row) ->
        let base_ns, base_alloc = List.assoc kernel core_baselines in
        let measured = default_of row in
        let speedup =
          match measured with
          | Some (ns, _, _) when ns > 0.0 -> Some (base_ns /. ns)
          | _ -> None
        in
        let alloc_cut =
          match measured with
          | Some (_, alloc, _) when alloc > 0.0 -> Some (base_alloc /. alloc)
          | _ -> None
        in
        let fmt f = function
          | Some v -> Printf.sprintf f v
          | None -> "-"
        in
        T.add_row table
          [
            kernel;
            Printf.sprintf "%.0f" base_ns;
            fmt "%.0f" (Option.map (fun (ns, _, _) -> ns) measured);
            fmt "%.1fx" speedup;
            Printf.sprintf "%.0f" base_alloc;
            fmt "%.0f" (Option.map (fun (_, a, _) -> a) measured);
            fmt "%.0fx" alloc_cut;
          ];
        (kernel, base_ns, base_alloc, measured, speedup, alloc_cut, row))
      cells
  in
  T.print table;
  (* Normalized medians across the minor-heap matrix, mimalloc-bench
     style: each row normalized to its default-GC median so the matrix
     reads as sensitivity, not absolute speed. *)
  let table =
    T.create
      ~headers:
        (("kernel", T.Left)
        :: List.map (fun (label, _) -> (label, T.Right)) core_gc_matrix)
  in
  List.iter
    (fun (kernel, _, _, measured, _, _, row) ->
      let base = Option.map (fun (ns, _, _) -> ns) measured in
      T.add_row table
        (kernel
        :: List.map
             (fun (label, _) ->
               match (base, List.assoc label row) with
               | Some b, Some (ns, _, _) when b > 0.0 ->
                 Printf.sprintf "%.2f" (ns /. b)
               | _ -> "-")
             core_gc_matrix))
    points;
  Printf.printf "wall-clock normalized to the default minor heap:\n\n";
  T.print table;
  let bic =
    List.find_opt (fun (kernel, _, _, _, _, _, _) -> kernel = "bic") points
  in
  let bic_speedup_ok, bic_alloc_ok =
    match bic with
    | Some (_, _, _, _, Some s, Some a, _) -> (s >= 5.0, a >= 10.0)
    | _ -> (false, false)
  in
  Printf.printf
    "\nbic plain evaluation speedup target >= 5x: %s\n\
     bic warm-allocation reduction target >= 10x: %s\n"
    (if bic_speedup_ok then "ok" else "MISMATCH")
    (if bic_alloc_ok then "ok" else "MISMATCH");
  write_json "BENCH_core.json"
    [
      ("benchmark", Json.Str "perf-core");
      ( "unit",
        Json.Str
          "ns/evaluation, warm: prepared CPA-RA state and simulator scratch \
           reused across evaluations" );
      ("budget", Json.Int budget);
      ("reps", Json.Int core_probe_reps);
      ( "baseline_note",
        Json.Str
          "baseline_ns/baseline_alloc_bytes are the boxed pre-arena \
           simulator captured on this host immediately before the rewrite; \
           that code path no longer exists, so they are recorded as \
           constants" );
      ( "gc_configs",
        Json.Arr
          (List.map (fun (label, _) -> Json.Str label) core_gc_matrix) );
      ( "targets",
        Json.Obj
          [
            ("bic_speedup_min_x", Json.Num "5.0");
            ("alloc_reduction_min_x", Json.Num "10.0");
          ] );
      ( "checks",
        Json.Obj
          [
            ("bic_speedup_ok", Json.Bool bic_speedup_ok);
            ("bic_alloc_reduction_ok", Json.Bool bic_alloc_ok);
          ] );
      ( "kernels",
        Json.Arr
          (List.map
             (fun (kernel, base_ns, base_alloc, measured, speedup, alloc_cut, row)
             ->
               Json.Obj
                 [
                   ("kernel", Json.Str kernel);
                   ("baseline_ns", Json.ns base_ns);
                   ("baseline_alloc_bytes", Json.ns base_alloc);
                   ( "median_ns",
                     Json.opt Json.ns
                       (Option.map (fun (ns, _, _) -> ns) measured) );
                   ( "alloc_bytes_per_eval",
                     Json.opt Json.ns
                       (Option.map (fun (_, a, _) -> a) measured) );
                   ("speedup_x", Json.opt Json.float speedup);
                   ("alloc_reduction_x", Json.opt Json.float alloc_cut);
                   ( "gc_matrix",
                     Json.Arr
                       (List.map
                          (fun (label, cell) ->
                            Json.Obj
                              [
                                ("config", Json.Str label);
                                ( "median_ns",
                                  Json.opt Json.ns
                                    (Option.map (fun (ns, _, _) -> ns) cell)
                                );
                                ( "alloc_bytes_per_eval",
                                  Json.opt Json.ns
                                    (Option.map (fun (_, a, _) -> a) cell) );
                                ( "rss_kb",
                                  Json.opt
                                    (fun (_, _, r) -> Json.Int r)
                                    cell );
                              ])
                          row) );
                 ])
             points) );
    ]

(* ------------------------------------------------------------ perf-serve *)

(* The daemon measured end-to-end over its own Unix socket: a private
   server domain, one blocking client, wall-clock per round-trip. Cold
   is the first request a (kernel, device) pair ever sees — parse,
   analyse, build the cycle model, allocate, simulate; warm is the same
   request again, i.e. a tier-2 hit that only renders the cached report.
   The mixed campaign then replays a 1000-request production-shaped mix
   (repeats, budget ladders, algorithm spreads, malformed lines, bad
   fields, infeasible budgets) and requires that not one response is an
   E-INTERNAL — the daemon's totality contract. *)

let serve_warm_reps = 100

let serve_campaign_requests = 1000

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else sorted.(min (n - 1) (int_of_float (ceil (p *. float_of_int n)) - 1))

let perf_serve () =
  section "perf-serve: the allocation daemon over its Unix socket";
  let socket =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "srfa-bench-%d.sock" (Unix.getpid ()))
  in
  let daemon =
    Domain.spawn (fun () -> Srfa_server.Server.run ~jobs:2 ~socket ())
  in
  let client = Srfa_server.Server.Client.connect socket in
  let rpc line =
    let t0 = Unix.gettimeofday () in
    let resp = Srfa_server.Server.Client.rpc client line in
    ((Unix.gettimeofday () -. t0) *. 1e6, resp)
  in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  (* -- cold vs warm per kernel ------------------------------------- *)
  let kernels = List.map fst (Srfa_kernels.Kernels.all ()) in
  let points =
    List.map
      (fun kernel ->
        let line = Printf.sprintf {|{"kernel": "%s", "budget": %d}|} kernel budget in
        let cold_us, cold_resp = rpc line in
        assert (contains cold_resp "\"cache\": \"miss\"");
        let warm = Array.make serve_warm_reps 0.0 in
        for i = 0 to serve_warm_reps - 1 do
          warm.(i) <- fst (rpc line)
        done;
        Array.sort compare warm;
        let p50 = percentile warm 0.50 and p99 = percentile warm 0.99 in
        (kernel, cold_us, p50, p99, cold_us /. p50))
      kernels
  in
  let table =
    T.create
      ~headers:
        [
          ("kernel", T.Left); ("cold us", T.Right); ("warm p50 us", T.Right);
          ("warm p99 us", T.Right); ("cold/warm", T.Right);
        ]
  in
  List.iter
    (fun (kernel, cold, p50, p99, ratio) ->
      T.add_row table
        [
          kernel;
          Printf.sprintf "%.0f" cold;
          Printf.sprintf "%.0f" p50;
          Printf.sprintf "%.0f" p99;
          Printf.sprintf "%.0fx" ratio;
        ])
    points;
  T.print table;
  (* Koka-artifact style: each kernel's columns normalized to its own
     warm median, so the table reads as cache leverage, not kernel size. *)
  let table =
    T.create
      ~headers:
        [
          ("kernel", T.Left); ("warm p50", T.Right); ("warm p99", T.Right);
          ("cold", T.Right);
        ]
  in
  List.iter
    (fun (kernel, cold, p50, p99, _) ->
      T.add_row table
        [
          kernel; "1.00";
          Printf.sprintf "%.2f" (p99 /. p50);
          Printf.sprintf "%.2f" (cold /. p50);
        ])
    points;
  Printf.printf "round-trip latency normalized to each kernel's warm median:\n\n";
  T.print table;
  let bic_ratio =
    match List.find_opt (fun (k, _, _, _, _) -> k = "bic") points with
    | Some (_, _, _, _, r) -> r
    | None -> 0.0
  in
  let bic_ok = bic_ratio >= 10.0 in
  Printf.printf "\nbic cache-hit speedup target >= 10x: %s (%.0fx)\n"
    (if bic_ok then "ok" else "MISMATCH")
    bic_ratio;
  (* -- 1000-request mixed campaign ---------------------------------- *)
  let algorithms =
    [ "fr-ra"; "pr-ra"; "cpa-ra"; "cpa-ra+"; "knapsack"; "portfolio" ]
  in
  let budgets = [ 8; 16; 32; 64; 128 ] in
  let seed = ref 0x5f3a9c1 in
  let rand bound =
    (* Deterministic xorshift so the campaign replays identically. *)
    let s = !seed in
    let s = s lxor (s lsl 13) in
    let s = s lxor (s lsr 7) in
    let s = s lxor (s lsl 17) in
    seed := s land max_int;
    !seed mod bound
  in
  let pick xs = List.nth xs (rand (List.length xs)) in
  let last = ref {|{"kernel": "fir"}|} in
  let request () =
    let roll = rand 100 in
    if roll < 55 then (
      let line =
        Printf.sprintf {|{"kernel": "%s", "budget": %d, "algorithm": "%s"}|}
          (pick kernels) (pick budgets) (pick algorithms)
      in
      last := line;
      line)
    else if roll < 75 then !last (* repeat: the hit path *)
    else if roll < 82 then
      Printf.sprintf {|{"kernel": "%s", "device": "xc2v6000"}|} (pick kernels)
    else if roll < 88 then
      Printf.sprintf {|{"kernel": "%s", "budget": 1}|} (pick kernels)
    else if roll < 93 then {|{"kernel": "no-such-kernel"}|}
    else if roll < 97 then "} definitely not json {"
    else {|{"op": "stats"}|}
  in
  let latencies = Array.make serve_campaign_requests 0.0 in
  let ok = ref 0 and errors = ref 0 and internal = ref 0 in
  let campaign_t0 = Unix.gettimeofday () in
  for i = 0 to serve_campaign_requests - 1 do
    let us, resp = rpc (request ()) in
    latencies.(i) <- us;
    if contains resp "E-INTERNAL" then incr internal;
    if contains resp "\"status\": \"ok\"" then incr ok else incr errors
  done;
  let campaign_s = Unix.gettimeofday () -. campaign_t0 in
  Array.sort compare latencies;
  let p50 = percentile latencies 0.50 and p99 = percentile latencies 0.99 in
  let rps = float_of_int serve_campaign_requests /. campaign_s in
  let internal_ok = !internal = 0 in
  let rss = vmhwm_kb () in
  Printf.printf
    "\nmixed campaign: %d requests in %.2fs — %.0f req/s, p50 %.0fus, p99 \
     %.0fus (%d ok, %d coded errors)\n"
    serve_campaign_requests campaign_s rps p50 p99 !ok !errors;
  Printf.printf "zero E-INTERNAL responses: %s (%d)\n"
    (if internal_ok then "ok" else "MISMATCH")
    !internal;
  Printf.printf "peak RSS: %d kB\n" rss;
  ignore (Srfa_server.Server.Client.rpc client {|{"op": "shutdown"}|});
  Srfa_server.Server.Client.close client;
  Domain.join daemon;
  write_json "BENCH_serve.json"
    [
      ("benchmark", Json.Str "perf-serve");
      ( "unit",
        Json.Str
          "us/round-trip over a Unix-domain socket, daemon in-process \
           (2 worker domains); cold = first sight of (kernel, device), \
           warm = tier-2 cache hit" );
      ("budget", Json.Int budget);
      ("warm_reps", Json.Int serve_warm_reps);
      ( "targets",
        Json.Obj
          [
            ("bic_hit_speedup_min_x", Json.Num "10.0");
            ("campaign_e_internal_max", Json.Int 0);
          ] );
      ( "checks",
        Json.Obj
          [
            ("bic_hit_speedup_ok", Json.Bool bic_ok);
            ("campaign_no_internal_errors", Json.Bool internal_ok);
          ] );
      ( "kernels",
        Json.Arr
          (List.map
             (fun (kernel, cold, p50, p99, ratio) ->
               Json.Obj
                 [
                   ("kernel", Json.Str kernel);
                   ("cold_us", Json.ns cold);
                   ("warm_p50_us", Json.ns p50);
                   ("warm_p99_us", Json.ns p99);
                   ("cold_over_warm_x", Json.float ratio);
                 ])
             points) );
      ( "campaign",
        Json.Obj
          [
            ("requests", Json.Int serve_campaign_requests);
            ("seconds", Json.float campaign_s);
            ("requests_per_sec", Json.ns rps);
            ("p50_us", Json.ns p50);
            ("p99_us", Json.ns p99);
            ("ok", Json.Int !ok);
            ("coded_errors", Json.Int !errors);
            ("e_internal", Json.Int !internal);
            ("rss_kb", Json.Int rss);
          ] );
    ]

(* The resilience layer priced: the same production-shaped request mix
   against a clean daemon and against one running a ~10% fault plan
   (stalling and raising workers, failing cache inserts — the sites
   that do not sever the measuring client's own connection), then a
   pipelined cold flood against a max_inflight:4 daemon to price
   overload shedding. The totality contract shifts under faults: raising
   workers *should* surface as isolated E-INTERNAL responses; what must
   still hold is one response per request and a live daemon at the end. *)

let robust_requests = 400

let perf_robust () =
  section "perf-robust: the daemon under injected faults and overload";
  let module Server = Srfa_server.Server in
  let module Client = Srfa_server.Server.Client in
  let module Fault = Srfa_util.Fault in
  let robust_socket tag =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "srfa-bench-robust-%s-%d.sock" tag (Unix.getpid ()))
  in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  let kernels = List.map fst (Srfa_kernels.Kernels.all ()) in
  let mix () =
    (* Deterministic xorshift, regenerated per campaign so clean and
       faulted daemons answer the byte-identical request sequence. *)
    let seed = ref 0x2f6e25 in
    let rand bound =
      let s = !seed in
      let s = s lxor (s lsl 13) in
      let s = s lxor (s lsr 7) in
      let s = s lxor (s lsl 17) in
      seed := s land max_int;
      !seed mod bound
    in
    let pick xs = List.nth xs (rand (List.length xs)) in
    let last = ref {|{"kernel": "fir"}|} in
    Array.init robust_requests (fun _ ->
        let roll = rand 100 in
        if roll < 60 then (
          (* A wide budget spread keeps most of the mix cold — the fault
             sites live on the cold path (pool jobs, cache inserts), so a
             hit-dominated mix would leave the plan nothing to bite. *)
          let line =
            Printf.sprintf {|{"kernel": "%s", "budget": %d}|} (pick kernels)
              (16 + rand 185)
          in
          last := line;
          line)
        else !last)
  in
  let campaign ~faults tag =
    let sock = robust_socket tag in
    let daemon =
      Domain.spawn (fun () -> Server.run ~jobs:2 ~faults ~socket:sock ())
    in
    let client = Client.connect sock in
    let lines = mix () in
    let lat = Array.make robust_requests 0.0 in
    let ok = ref 0 and internal = ref 0 and other = ref 0 in
    let t0 = Unix.gettimeofday () in
    Array.iteri
      (fun i line ->
        let r0 = Unix.gettimeofday () in
        let resp = Client.rpc client line in
        lat.(i) <- (Unix.gettimeofday () -. r0) *. 1e6;
        if contains resp {|"status": "ok"|} then incr ok
        else if contains resp "E-INTERNAL" then incr internal
        else incr other)
      lines;
    let seconds = Unix.gettimeofday () -. t0 in
    (* The daemon must still be standing to answer this. *)
    let alive = contains (Client.rpc client {|{"op": "stats"}|}) "stats" in
    ignore (Client.rpc client {|{"op": "shutdown"}|});
    Client.close client;
    Domain.join daemon;
    Array.sort compare lat;
    ( float_of_int robust_requests /. seconds,
      percentile lat 0.50,
      percentile lat 0.99,
      !ok,
      !internal,
      !other,
      alive )
  in
  let clean_rps, clean_p50, clean_p99, clean_ok, clean_int, clean_other, clean_alive
      =
    campaign ~faults:Fault.off "clean"
  in
  let plan = "pool.job:delay:1@0.06,pool.job:raise@0.04,cache.insert:error@0.15" in
  let faults =
    match Fault.parse ~seed:42 plan with
    | Ok f -> f
    | Error msg -> failwith msg
  in
  let fault_rps, fault_p50, fault_p99, fault_ok, fault_int, fault_other, fault_alive
      =
    campaign ~faults "faulted"
  in
  let injected = Fault.injected faults in
  let fault_rate = float_of_int injected /. float_of_int robust_requests in
  let table =
    T.create
      ~headers:
        [
          ("campaign", T.Left); ("req/s", T.Right); ("p50 us", T.Right);
          ("p99 us", T.Right); ("ok", T.Right); ("E-INTERNAL", T.Right);
          ("other", T.Right);
        ]
  in
  let row name rps p50 p99 ok int_ other =
    T.add_row table
      [
        name;
        Printf.sprintf "%.0f" rps;
        Printf.sprintf "%.0f" p50;
        Printf.sprintf "%.0f" p99;
        string_of_int ok;
        string_of_int int_;
        string_of_int other;
      ]
  in
  row "clean" clean_rps clean_p50 clean_p99 clean_ok clean_int clean_other;
  row "faulted" fault_rps fault_p50 fault_p99 fault_ok fault_int fault_other;
  T.print table;
  Printf.printf
    "\nfault plan: %s\ninjected %d faults over %d requests (%.1f%%)\n" plan
    injected robust_requests (100.0 *. fault_rate);
  let clean_total_ok = clean_int = 0 in
  Printf.printf "clean campaign free of E-INTERNAL: %s (%d)\n"
    (if clean_total_ok then "ok" else "MISMATCH")
    clean_int;
  let answered_ok =
    clean_ok + clean_int + clean_other = robust_requests
    && fault_ok + fault_int + fault_other = robust_requests
  in
  Printf.printf "every request answered in both campaigns: %s\n"
    (if answered_ok then "ok" else "MISMATCH");
  Printf.printf "daemons alive after the campaigns: %s\n"
    (if clean_alive && fault_alive then "ok" else "MISMATCH");
  (* -- overload: a pipelined cold flood against max_inflight:4 ------- *)
  let sock = robust_socket "overload" in
  let max_inflight = 4 in
  let daemon =
    Domain.spawn (fun () -> Server.run ~jobs:2 ~max_inflight ~socket:sock ())
  in
  let client = Client.connect sock in
  let flood_n = 64 in
  let flood =
    String.concat ""
      (List.init flood_n (fun i ->
           Printf.sprintf "{\"id\": \"f%d\", \"kernel\": \"%s\", \"budget\": %d}\n"
             i
             (List.nth kernels (i mod List.length kernels))
             (20 + i)))
  in
  let t0 = Unix.gettimeofday () in
  let wrote = Unix.write_substring client.Client.fd flood 0 (String.length flood) in
  assert (wrote = String.length flood);
  let shed = ref 0 and flood_ok = ref 0 and flood_other = ref 0 in
  for _ = 1 to flood_n do
    let resp = Client.recv client in
    if contains resp "E-OVERLOAD" then incr shed
    else if contains resp {|"status": "ok"|} then incr flood_ok
    else incr flood_other
  done;
  let flood_s = Unix.gettimeofday () -. t0 in
  let overload_alive = contains (Client.rpc client {|{"op": "stats"}|}) "stats" in
  ignore (Client.rpc client {|{"op": "shutdown"}|});
  Client.close client;
  Domain.join daemon;
  let shed_rate = float_of_int !shed /. float_of_int flood_n in
  Printf.printf
    "\noverload flood: %d pipelined cold requests vs max_inflight=%d in %.3fs \
     — %d ok, %d shed (%.0f%%), %d other errors\n"
    flood_n max_inflight flood_s !flood_ok !shed (100.0 *. shed_rate)
    !flood_other;
  let overload_ok = !shed > 0 && !flood_ok >= max_inflight && overload_alive in
  Printf.printf "overload shed some, served some, daemon alive: %s\n"
    (if overload_ok then "ok" else "MISMATCH");
  let rss = vmhwm_kb () in
  Printf.printf "peak RSS: %d kB\n" rss;
  let campaign_json rps p50 p99 ok int_ other alive =
    Json.Obj
      [
        ("requests", Json.Int robust_requests);
        ("requests_per_sec", Json.ns rps);
        ("p50_us", Json.ns p50);
        ("p99_us", Json.ns p99);
        ("ok", Json.Int ok);
        ("e_internal", Json.Int int_);
        ("other_errors", Json.Int other);
        ("daemon_alive_after", Json.Bool alive);
      ]
  in
  write_json "BENCH_robust.json"
    [
      ("benchmark", Json.Str "perf-robust");
      ( "unit",
        Json.Str
          "us/round-trip over a Unix-domain socket, daemon in-process \
           (2 worker domains); identical seeded request mix against a \
           clean daemon and one under the fault plan; overload = one \
           pipelined cold flood against max_inflight=4" );
      ("fault_plan", Json.Str plan);
      ("fault_seed", Json.Int 42);
      ("injected_faults", Json.Int injected);
      ("injected_rate", Json.float fault_rate);
      ( "checks",
        Json.Obj
          [
            ("clean_no_internal_errors", Json.Bool clean_total_ok);
            ("every_request_answered", Json.Bool answered_ok);
            ("daemons_survived", Json.Bool (clean_alive && fault_alive));
            ("overload_shed_and_served", Json.Bool overload_ok);
          ] );
      ( "clean",
        campaign_json clean_rps clean_p50 clean_p99 clean_ok clean_int
          clean_other clean_alive );
      ( "faulted",
        campaign_json fault_rps fault_p50 fault_p99 fault_ok fault_int
          fault_other fault_alive );
      ( "overload",
        Json.Obj
          [
            ("flood_requests", Json.Int flood_n);
            ("max_inflight", Json.Int max_inflight);
            ("seconds", Json.float flood_s);
            ("ok", Json.Int !flood_ok);
            ("shed", Json.Int !shed);
            ("shed_rate", Json.float shed_rate);
            ("other_errors", Json.Int !flood_other);
            ("daemon_alive_after", Json.Bool overload_alive);
          ] );
      ("rss_kb", Json.Int rss);
    ]

(* --------------------------------------------------------- perf-rebudget *)

(* Incremental re-budgeting vs from-scratch re-allocation (DESIGN.md
   §16). The workload is what rebudget exists for: a long oscillating
   budget ladder over a live kernel — a host shrinking and re-growing
   the register file while the allocation stays resident. The
   incremental arm answers every event through one rebudget session
   (cheapest-loss-first reclaim / headroom re-spend, plus the
   per-budget memo on revisits); the from-scratch arm answers the same
   events the way a plain allocate client would, one full certified
   portfolio point per event over the same resident analysis — tier 1
   is warm in both arms, so the comparison isolates allocation +
   certification work, not parsing or analysis. Both arms carry the
   same never-worse contract, so quality is identical by construction;
   the bench measures cost only. *)
let perf_rebudget () =
  section "perf-rebudget: incremental re-budgeting vs from-scratch per event";
  let wall f =
    let t0 = Unix.gettimeofday () in
    f ();
    Unix.gettimeofday () -. t0
  in
  let median_of f ~repeats =
    let samples = Array.init repeats (fun _ -> wall f) in
    Array.sort compare samples;
    samples.(repeats / 2)
  in
  let repeats = 5 in
  let initial = 128 in
  (* Ten distinct rungs, cycled four times: 40 events per kernel, 30 of
     which revisit a budget the stream has already certified. *)
  let rung = [ 64; 32; 16; 8; 12; 24; 48; 96; 64; 32 ] in
  let events = List.concat_map (fun _ -> rung) [ (); (); (); () ] in
  let kernels =
    ("example", Srfa_kernels.Kernels.example ()) :: Srfa_kernels.Kernels.all ()
  in
  let table =
    T.create
      ~headers:
        [
          ("kernel", T.Left); ("events", T.Right); ("scratch ms", T.Right);
          ("incremental ms", T.Right); ("speedup", T.Right);
          ("memo hits", T.Right);
        ]
  in
  let points =
    List.map
      (fun (name, nest) ->
        let prepared = Flow.Core.prepare nest in
        (* The from-scratch arm would reject events below the
           feasibility minimum (E-BUDGET-001) where the incremental arm
           clamps; pre-clamp so both arms answer the same event list. *)
        let events = List.map (max prepared.Flow.Core.minimum) events in
        let initial = max prepared.Flow.Core.minimum initial in
        let scratch = Flow.Core.scratch ~config:Flow.default_config prepared in
        let full_point b =
          match
            Flow.Core.checked_prepared ~sim_scratch:scratch
              { Flow.default_config with Flow.budget = b }
              Allocator.Portfolio prepared
          with
          | Ok _ -> ()
          | Error ds ->
            failwith
              (Printf.sprintf "%s at budget %d: %s" name b
                 (String.concat "; " (List.map Srfa_util.Diag.to_json ds)))
        in
        let full_s =
          median_of ~repeats (fun () -> List.iter full_point (initial :: events))
        in
        let incr_s =
          median_of ~repeats (fun () ->
              ignore
                (Flow.Core.rebudget ~sim_scratch:scratch Flow.default_config
                   prepared ~initial ~events))
        in
        let steps =
          Flow.Core.rebudget ~sim_scratch:scratch Flow.default_config prepared
            ~initial ~events
        in
        let memo_hits =
          List.length
            (List.filter (fun s -> s.Flow.Core.memoized) steps)
        in
        let speedup = full_s /. incr_s in
        T.add_row table
          [
            name;
            string_of_int (1 + List.length events);
            Printf.sprintf "%.2f" (full_s *. 1e3);
            Printf.sprintf "%.2f" (incr_s *. 1e3);
            Printf.sprintf "%.2fx" speedup;
            string_of_int memo_hits;
          ];
        (name, List.length events, full_s, incr_s, speedup, memo_hits))
      kernels
  in
  T.print table;
  (* Koka-artifact style: each kernel normalized to its own from-scratch
     median, so the table reads as incremental leverage, not kernel
     size. *)
  let table =
    T.create
      ~headers:
        [ ("kernel", T.Left); ("scratch", T.Right); ("incremental", T.Right) ]
  in
  List.iter
    (fun (name, _, full_s, incr_s, _, _) ->
      T.add_row table
        [ name; "1.00"; Printf.sprintf "%.3f" (incr_s /. full_s) ])
    points;
  Printf.printf
    "\nstream cost normalized to each kernel's from-scratch median:\n\n";
  T.print table;
  let sum f = List.fold_left (fun acc p -> acc +. f p) 0.0 points in
  let total_full = sum (fun (_, _, f, _, _, _) -> f) in
  let total_incr = sum (fun (_, _, _, i, _, _) -> i) in
  let amortized = total_full /. total_incr in
  let target_ok = amortized >= 5.0 in
  Printf.printf
    "\namortized speedup over the whole ladder campaign: %.1fx (target >= \
     5x: %s)\n"
    amortized
    (if target_ok then "ok" else "MISMATCH");
  write_json "BENCH_rebudget.json"
    [
      ("benchmark", Json.Str "perf-rebudget");
      ( "unit",
        Json.Str
          "seconds per whole event stream, median of repeats; scratch = \
           one certified portfolio point per event over a warm analysis, \
           incremental = one rebudget session answering the same events" );
      ("initial", Json.Int initial);
      ("events_per_kernel", Json.Int (List.length events));
      ("distinct_budgets", Json.Int (List.length (List.sort_uniq compare rung)));
      ("repeats", Json.Int repeats);
      ("amortized_speedup", Json.float amortized);
      ("target_speedup", Json.float 5.0);
      ("target_ok", Json.Bool target_ok);
      ( "kernels",
        Json.Arr
          (List.map
             (fun (name, n_events, full_s, incr_s, speedup, memo_hits) ->
               Json.Obj
                 [
                   ("kernel", Json.Str name);
                   ("events", Json.Int n_events);
                   ("scratch_s", Json.float full_s);
                   ("incremental_s", Json.float incr_s);
                   ("speedup", Json.float speedup);
                   ("memo_hits", Json.Int memo_hits);
                 ])
             points) );
    ]

(* ---------------------------------------------------------- perf-explore *)

(* The joint design-space explorer vs its own naive arm (DESIGN.md
   §17). The workload is the matmul space the tentpole targets — all
   legal orders x strip-mine factors {2,4} x a five-rung budget ladder
   x two algorithms — plus the running example on the same axes. The
   naive arm evaluates the full product and re-derives analysis, DFG
   and simulation from scratch per point (space.naive, no pruning, no
   memo); the optimized arm runs the shipped path: variant-level and
   point-level dominance cuts from lower bounds, one preparation per
   variant, and the entries-keyed simulation memo. Both arms draw the
   same frontier by construction, and the bench re-checks that byte
   equality (plus jobs=1 vs jobs=N) before reporting any ratio. *)
let perf_explore () =
  section "perf-explore: naive product vs pruned+memoised explorer";
  let wall f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let median_of f ~repeats =
    let results = Array.init repeats (fun _ -> wall f) in
    let samples = Array.map snd results in
    Array.sort compare samples;
    (fst results.(0), samples.(repeats / 2))
  in
  let repeats = 3 in
  let space =
    {
      Flow.Core.default_space with
      Flow.Core.orders = Flow.Core.All_orders;
      tile_factors = [ 2; 4 ];
      space_budgets = [ 8; 16; 32; 64; 128 ];
      space_algorithms = [ Allocator.Cpa_ra; Allocator.Fr_ra ];
    }
  in
  let naive_space =
    { space with Flow.Core.prune = false; Flow.Core.naive = true }
  in
  let kernels =
    [
      ("example", Srfa_kernels.Kernels.example ());
      ("mat", Option.get (Srfa_kernels.Kernels.find "mat"));
    ]
  in
  let jobs, _ = Pool.resolve () in
  let table =
    T.create
      ~headers:
        [
          ("kernel", T.Left); ("points", T.Right); ("naive s", T.Right);
          ("explorer s", T.Right); ("speedup", T.Right);
          ("prune rate", T.Right); ("memo rate", T.Right);
          ("variants/s", T.Right); (Printf.sprintf "%d-domain s" jobs, T.Right);
          ("identical", T.Left);
        ]
  in
  let points =
    Pool.with_pool ~jobs (fun pool ->
        List.map
          (fun (name, nest) ->
            let explore ?pool space =
              Flow.Core.explore ?pool ~space Flow.default_config nest
            in
            let naive_f, naive_s =
              median_of ~repeats (fun () -> explore naive_space)
            in
            let opt_f, opt_s = median_of ~repeats (fun () -> explore space) in
            let pooled_f, pooled_s =
              median_of ~repeats (fun () -> explore ~pool space)
            in
            let identical =
              Flow.Core.frontier_json naive_f = Flow.Core.frontier_json opt_f
              && Flow.Core.frontier_json opt_f
                 = Flow.Core.frontier_json pooled_f
            in
            let s = opt_f.Flow.Core.frontier_stats in
            let total =
              s.Flow.Core.points_evaluated + s.Flow.Core.points_pruned
            in
            let prune_rate =
              float_of_int s.Flow.Core.points_pruned /. float_of_int total
            in
            let memo_rate =
              float_of_int s.Flow.Core.sim_memo_hits
              /. float_of_int s.Flow.Core.points_evaluated
            in
            let variants_per_s =
              float_of_int s.Flow.Core.variants_unique /. opt_s
            in
            let speedup = naive_s /. opt_s in
            T.add_row table
              [
                name;
                string_of_int total;
                Printf.sprintf "%.3f" naive_s;
                Printf.sprintf "%.3f" opt_s;
                Printf.sprintf "%.1fx" speedup;
                Printf.sprintf "%.0f%%" (100.0 *. prune_rate);
                Printf.sprintf "%.0f%%" (100.0 *. memo_rate);
                Printf.sprintf "%.0f" variants_per_s;
                Printf.sprintf "%.3f" pooled_s;
                (if identical then "yes" else "MISMATCH");
              ];
            ( name, total, naive_s, opt_s, pooled_s, speedup, prune_rate,
              memo_rate, variants_per_s, identical ))
          kernels)
  in
  T.print table;
  (* Koka-artifact style: each kernel normalized to its own naive
     median, so the table reads as explorer leverage, not kernel
     size. *)
  let norm =
    T.create
      ~headers:
        [
          ("kernel", T.Left); ("naive", T.Right); ("explorer", T.Right);
          (Printf.sprintf "%d-domain" jobs, T.Right);
        ]
  in
  List.iter
    (fun (name, _, naive_s, opt_s, pooled_s, _, _, _, _, _) ->
      T.add_row norm
        [
          name; "1.00";
          Printf.sprintf "%.3f" (opt_s /. naive_s);
          Printf.sprintf "%.3f" (pooled_s /. naive_s);
        ])
    points;
  Printf.printf "\nwall-clock normalized to each kernel's naive median:\n\n";
  T.print norm;
  let mat_speedup =
    List.fold_left
      (fun acc (name, _, _, _, _, speedup, _, _, _, _) ->
        if name = "mat" then speedup else acc)
      0.0 points
  in
  let target_ok = mat_speedup >= 5.0 in
  let all_identical =
    List.for_all (fun (_, _, _, _, _, _, _, _, _, id) -> id) points
  in
  Printf.printf
    "\nmatmul space: %.1fx naive-vs-explorer (target >= 5x: %s); frontiers \
     byte-identical across naive/pruned/pooled arms: %s\n"
    mat_speedup
    (if target_ok then "ok" else "MISMATCH")
    (if all_identical then "yes" else "MISMATCH");
  let domains_available = Domain.recommended_domain_count () in
  (* Same stamp as perf-parallel: on a single-core host the pooled arm
     takes the sequential path, so its column verifies nothing about
     the domain fan-out. The naive-vs-explorer speedup is single-arm
     and stays meaningful either way. *)
  let unverified = domains_available <= 1 || jobs <= 1 in
  if unverified then
    Printf.printf
      "\nNOTE: only %d domain(s) available — the pooled column is \
       UNVERIFIED on this host; BENCH_explore.json is stamped \
       \"unverified\": true.\n"
      domains_available;
  write_json "BENCH_explore.json"
    [
      ("benchmark", Json.Str "perf-explore");
      ( "unit",
        Json.Str
          "seconds per whole-space exploration, median of repeats; naive = \
           full product, per-point analysis/DFG/simulation from scratch; \
           explorer = dominance cuts + per-variant preparation + entries \
           memo" );
      ("repeats", Json.Int repeats);
      ("jobs", Json.Int jobs);
      ("recommended_domains", Json.Int (Pool.recommended ()));
      ("domains_available", Json.Int domains_available);
      ("unverified", Json.Bool unverified);
      ("matmul_speedup", Json.float mat_speedup);
      ("target_speedup", Json.float 5.0);
      ("target_ok", Json.Bool target_ok);
      ("frontiers_identical", Json.Bool all_identical);
      ( "kernels",
        Json.Arr
          (List.map
             (fun
               ( name, total, naive_s, opt_s, pooled_s, speedup, prune_rate,
                 memo_rate, variants_per_s, identical )
             ->
               Json.Obj
                 [
                   ("kernel", Json.Str name);
                   ("ladder_points", Json.Int total);
                   ("naive_s", Json.float naive_s);
                   ("explorer_s", Json.float opt_s);
                   ("pooled_s", Json.float pooled_s);
                   ("speedup", Json.float speedup);
                   ("prune_rate", Json.float prune_rate);
                   ("memo_hit_rate", Json.float memo_rate);
                   ("variants_per_s", Json.float variants_per_s);
                   ("identical", Json.Bool identical);
                 ])
             points) );
    ]

(* ------------------------------------------------------------------ main *)

let sections =
  [
    ("fig2", fig2);
    ("fig2-dfg", fig2_dfg);
    ("table1", table1);
    ("table1-summary", table1_summary);
    ("budget-sweep", budget_sweep);
    ("ablation-concurrency", ablation_concurrency);
    ("ablation-knapsack", ablation_knapsack);
    ("ablation-residency", ablation_residency);
    ("ablation-cpa-plus", ablation_cpa_plus);
    ("ablation-loop-order", ablation_loop_order);
    ("ablation-latency", ablation_latency);
    ("fixed-clock", fixed_clock);
    ("ablation-peeling", ablation_peeling);
    ("ablation-pipelining", ablation_pipelining);
    ("perf", perf);
    ("perf-cuts", perf_cuts);
    ("perf-fuzz", perf_fuzz);
    ("perf-certify", perf_certify);
    ("perf-parallel", perf_parallel);
    ("perf-core", perf_core);
    ("perf-serve", perf_serve);
    ("perf-robust", perf_robust);
    ("perf-rebudget", perf_rebudget);
    ("perf-explore", perf_explore);
  ]

(* `--sections core,cuts,certify` shorthand: bare names expand to their
   perf-* section; full section names pass through unchanged. *)
let expand_section = function
  | "core" -> "perf-core"
  | "cuts" -> "perf-cuts"
  | "fuzz" -> "perf-fuzz"
  | "certify" -> "perf-certify"
  | "parallel" -> "perf-parallel"
  | "serve" -> "perf-serve"
  | "robust" -> "perf-robust"
  | "rebudget" -> "perf-rebudget"
  | "explore" -> "perf-explore"
  | s -> s

let () =
  match Array.to_list Sys.argv with
  (* Hidden re-exec mode used by perf-core to read OCAMLRUNPARAM fresh. *)
  | _ :: "perf-core-probe" :: kernel :: _ -> perf_core_probe kernel
  | argv ->
    let rec parse acc = function
      | [] -> List.rev acc
      | "--sections" :: spec :: rest ->
        parse
          (List.rev_append
             (List.map expand_section (String.split_on_char ',' spec))
             acc)
          rest
      | name :: rest -> parse (name :: acc) rest
    in
    let requested =
      match parse [] (match argv with [] -> [] | _ :: rest -> rest) with
      | [] -> List.map fst sections
      | names -> names
    in
    List.iter
      (fun name ->
        match List.assoc_opt name sections with
        | Some f -> f ()
        | None ->
          Printf.eprintf "unknown section %s (have: %s)\n" name
            (String.concat ", " (List.map fst sections));
          exit 1)
      requested
