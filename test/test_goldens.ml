(* Regression pins for the Table 1 pipeline: total cycle counts and
   register totals of every kernel x algorithm under the default
   configuration (budget 64, XCV1000, default latencies, pinned
   residency). The pipeline is deterministic, so these are stable; any
   intentional model change must update them consciously, with
   EXPERIMENTS.md. *)

module Allocator = Srfa_core.Allocator
module Simulator = Srfa_sched.Simulator

(* kernel -> (algorithm, registers, cycles) *)
let expected =
  [
    ("fir", [ (Allocator.Fr_ra, 34, 95328);
              (Allocator.Pr_ra, 64, 64545);
              (Allocator.Cpa_ra, 63, 64545) ]);
    ("dec-fir", [ (Allocator.Fr_ra, 3, 46272);
                  (Allocator.Pr_ra, 64, 46272);
                  (Allocator.Cpa_ra, 63, 38801) ]);
    ("imi", [ (Allocator.Fr_ra, 4, 229376);
              (Allocator.Pr_ra, 64, 229376);
              (Allocator.Cpa_ra, 64, 229128) ]);
    ("mat", [ (Allocator.Fr_ra, 34, 98304);
              (Allocator.Pr_ra, 64, 97312);
              (Allocator.Cpa_ra, 63, 97312) ]);
    ("pat", [ (Allocator.Fr_ra, 3, 184512);
              (Allocator.Pr_ra, 64, 184512);
              (Allocator.Cpa_ra, 63, 154721) ]);
    ("bic", [ (Allocator.Fr_ra, 3, 1843968);
              (Allocator.Pr_ra, 64, 1843968);
              (Allocator.Cpa_ra, 63, 1831424) ]);
  ]

let test_kernel name rows () =
  let nest = Option.get (Srfa_kernels.Kernels.find name) in
  let analysis = Srfa_core.Flow.analyze nest in
  List.iter
    (fun (alg, regs, cycles) ->
      let alloc = Allocator.run alg analysis ~budget:64 in
      Alcotest.(check int)
        (name ^ " " ^ Allocator.name alg ^ " registers")
        regs
        (Srfa_reuse.Allocation.total_registers alloc);
      Alcotest.(check int)
        (name ^ " " ^ Allocator.name alg ^ " cycles")
        cycles
        (Simulator.run alloc).Simulator.total_cycles)
    rows

let test_shape_criteria () =
  (* The qualitative Table 1 shape (EXPERIMENTS.md): v3 cycles <= v2
     cycles <= v1 cycles on every kernel. *)
  List.iter
    (fun (name, rows) ->
      let cycles alg =
        let _, _, c = List.find (fun (a, _, _) -> a = alg) rows in
        c
      in
      Alcotest.(check bool) (name ^ ": v3 <= v2 <= v1") true
        (cycles Allocator.Cpa_ra <= cycles Allocator.Pr_ra
        && cycles Allocator.Pr_ra <= cycles Allocator.Fr_ra))
    expected

let () =
  Alcotest.run "goldens"
    [
      ( "table1",
        List.map
          (fun (name, rows) ->
            Alcotest.test_case name `Quick (test_kernel name rows))
          expected
        @ [ Alcotest.test_case "shape criteria" `Quick test_shape_criteria ]
      );
    ]
