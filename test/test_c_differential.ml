(* Differential testing of the C backend: compile the generated
   standalone program with the system C compiler, run it, and compare its
   printed outputs element-for-element with the reference interpreter.
   This closes the loop the string-based emitter tests cannot: the
   generated code must not only look right, it must compute the right
   values through a real compiler. *)

open Srfa_ir
open Srfa_test_helpers
module Plan = Srfa_codegen.Plan
module C_source = Srfa_codegen.C_source

let have_cc = Sys.command "cc --version > /dev/null 2>&1" = 0

let run_standalone plan =
  let dir = Filename.temp_file "srfa" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  let c_file = Filename.concat dir "kernel.c" in
  let exe = Filename.concat dir "kernel" in
  let out_file = Filename.concat dir "out.txt" in
  let oc = open_out c_file in
  output_string oc (C_source.emit_standalone plan);
  close_out oc;
  let compile =
    Sys.command (Printf.sprintf "cc -O1 -o %s %s 2> %s/cc.log" exe c_file dir)
  in
  if compile <> 0 then
    Alcotest.failf "cc failed; see %s/cc.log and %s" dir c_file;
  let run = Sys.command (Printf.sprintf "%s > %s" exe out_file) in
  if run <> 0 then Alcotest.failf "generated program exited with %d" run;
  let ic = open_in out_file in
  let rec read acc =
    match input_line ic with
    | line -> read (int_of_string (String.trim line) :: acc)
    | exception End_of_file -> List.rev acc
  in
  let values = read [] in
  close_in ic;
  values

(* Expected output: every Output array of the interpreter run, row-major,
   in declaration order — mirroring the emitted main(). *)
let expected nest =
  let store = Interp.run_fresh nest ~init:Helpers.init in
  List.concat_map
    (fun (d : Decl.t) ->
      match d.Decl.storage with
      | Decl.Output ->
        let dims = Array.of_list d.Decl.dims in
        let rank = Array.length dims in
        let coords = Array.make rank 0 in
        let acc = ref [] in
        let rec walk k =
          if k = rank then acc := Interp.read store d.Decl.name coords :: !acc
          else
            for c = 0 to dims.(k) - 1 do
              coords.(k) <- c;
              walk (k + 1)
            done
        in
        walk 0;
        List.rev !acc
      | Decl.Input | Decl.Local -> [])
    nest.Nest.arrays

let differential name nest alg budget () =
  if not have_cc then ()
  else begin
    let an = Helpers.analyze nest in
    let plan = Plan.build (Srfa_core.Allocator.run alg an ~budget) in
    let got = run_standalone plan in
    let want = expected nest in
    Alcotest.(check int) (name ^ ": element count") (List.length want)
      (List.length got);
    List.iteri
      (fun k (w, g) ->
        if w <> g then
          Alcotest.failf "%s: element %d differs (want %d, got %d)" name k w g)
      (List.combine want got)
  end

let cases =
  List.concat_map
    (fun (name, nest) ->
      List.map
        (fun alg ->
          let cname = name ^ "/" ^ Srfa_core.Allocator.name alg in
          Alcotest.test_case cname `Slow (differential cname nest alg 24))
        [ Srfa_core.Allocator.Fr_ra; Srfa_core.Allocator.Cpa_ra ])
    (Helpers.small_kernels ())

let extra_cases =
  [
    Alcotest.test_case "conv2d/cpa" `Slow
      (differential "conv2d" (Srfa_kernels.Extra.conv2d ~mask:2 ~image:6 ())
         Srfa_core.Allocator.Cpa_ra 16);
    Alcotest.test_case "fir/full budget" `Slow
      (differential "fir-full" (Helpers.small_fir ()) Srfa_core.Allocator.Pr_ra
         64);
  ]

let () =
  Alcotest.run "c-differential"
    [ ("compiled against interpreter", cases @ extra_cases) ]
