open Srfa_test_helpers
module Area = Srfa_estimate.Area
module Clock = Srfa_estimate.Clock
module Report = Srfa_estimate.Report

let device = Srfa_hw.Device.xcv1000

let alloc_with_budget budget =
  let an = Helpers.analyze (Helpers.example ()) in
  Srfa_core.Allocator.run Srfa_core.Allocator.Cpa_ra an ~budget

let test_area_breakdown_consistent () =
  let alloc = alloc_with_budget 64 in
  let b = Area.estimate ~device ~ram_arrays:5 alloc in
  Alcotest.(check int) "total is the sum"
    (b.Area.datapath + b.Area.registers + b.Area.control + b.Area.address_gen)
    b.Area.total;
  Alcotest.(check bool) "all parts positive" true
    (b.Area.datapath > 0 && b.Area.registers > 0 && b.Area.control > 0
   && b.Area.address_gen > 0)

let test_area_registers_monotonic () =
  let small = Area.estimate ~device ~ram_arrays:5 (alloc_with_budget 8) in
  let large = Area.estimate ~device ~ram_arrays:5 (alloc_with_budget 64) in
  Alcotest.(check bool) "more registers, more slices" true
    (large.Area.registers > small.Area.registers)

let test_area_utilization () =
  let b = Area.estimate ~device ~ram_arrays:5 (alloc_with_budget 64) in
  let u = Area.utilization ~device b in
  Alcotest.(check bool) "utilization in (0,1) for this design" true
    (u > 0.0 && u < 1.0)

let test_clock_monotonic_in_registers () =
  Alcotest.(check bool) "more registers, slower clock" true
    (Clock.period_ns (alloc_with_budget 64)
    > Clock.period_ns (alloc_with_budget 8))

let test_clock_frequency_inverse () =
  let alloc = alloc_with_budget 64 in
  Alcotest.(check (float 0.001)) "f = 1000/T"
    (1000.0 /. Clock.period_ns alloc)
    (Clock.frequency_mhz alloc)

let test_clock_params_override () =
  let alloc = alloc_with_budget 64 in
  let params = { Clock.default_params with Clock.base_ns = 100.0 } in
  Alcotest.(check bool) "base dominates" true
    (Clock.period_ns ~params alloc > 100.0)

let test_report_consistency () =
  let alloc = alloc_with_budget 64 in
  let r = Report.build ~version:"v3" alloc in
  Alcotest.(check string) "kernel name" "example" r.Report.kernel;
  Alcotest.(check string) "algorithm" "cpa-ra" r.Report.algorithm;
  Alcotest.(check int) "registers" 64 r.Report.total_registers;
  Alcotest.(check (float 0.01)) "time = cycles * clock / 1000"
    (float_of_int r.Report.cycles *. r.Report.clock_ns /. 1000.0)
    r.Report.exec_time_us;
  Alcotest.(check int) "five required entries" 5
    (List.length r.Report.required);
  Alcotest.(check int) "five allocated entries" 5
    (List.length r.Report.allocated);
  Alcotest.(check bool) "rams positive" true (r.Report.rams > 0)

let test_speedup_identities () =
  let alloc = alloc_with_budget 64 in
  let r = Report.build ~version:"v3" alloc in
  Alcotest.(check (float 0.0001)) "self speedup" 1.0 (Report.speedup ~base:r r);
  Alcotest.(check (float 0.0001)) "self cycle reduction" 0.0
    (Report.cycle_reduction_pct ~base:r r);
  Alcotest.(check (float 0.0001)) "self clock degradation" 0.0
    (Report.clock_degradation_pct ~base:r r)

let test_report_vs_paper_shape () =
  (* v3 must beat v1 in cycles on the example, with a modest clock
     penalty, netting a wall-clock win: the paper's headline behaviour. *)
  let an = Helpers.analyze (Helpers.example ()) in
  let report alg v =
    Report.build ~version:v (Srfa_core.Allocator.run alg an ~budget:64)
  in
  let v1 = report Srfa_core.Allocator.Fr_ra "v1" in
  let v3 = report Srfa_core.Allocator.Cpa_ra "v3" in
  Alcotest.(check bool) "cycle win" true (v3.Report.cycles < v1.Report.cycles);
  Alcotest.(check bool) "clock penalty positive but small" true
    (let d = Report.clock_degradation_pct ~base:v1 v3 in
     d > 0.0 && d < 15.0);
  Alcotest.(check bool) "net wall-clock win" true
    (Report.speedup ~base:v1 v3 > 1.0)

let () =
  Alcotest.run "estimate"
    [
      ( "area",
        [
          Alcotest.test_case "breakdown consistent" `Quick
            test_area_breakdown_consistent;
          Alcotest.test_case "monotonic in registers" `Quick
            test_area_registers_monotonic;
          Alcotest.test_case "utilization" `Quick test_area_utilization;
        ] );
      ( "clock",
        [
          Alcotest.test_case "monotonic in registers" `Quick
            test_clock_monotonic_in_registers;
          Alcotest.test_case "frequency inverse" `Quick
            test_clock_frequency_inverse;
          Alcotest.test_case "params override" `Quick
            test_clock_params_override;
        ] );
      ( "report",
        [
          Alcotest.test_case "consistency" `Quick test_report_consistency;
          Alcotest.test_case "speedup identities" `Quick
            test_speedup_identities;
          Alcotest.test_case "paper shape on the example" `Quick
            test_report_vs_paper_shape;
        ] );
    ]
