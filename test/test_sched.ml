open Srfa_reuse
open Srfa_test_helpers
module Graph = Srfa_dfg.Graph
module Cycle_model = Srfa_sched.Cycle_model
module Simulator = Srfa_sched.Simulator

let latency = Srfa_hw.Latency.default

let model_of nest =
  let an = Helpers.analyze nest in
  let dfg = Graph.build an in
  let arrays = nest.Srfa_ir.Nest.arrays in
  let ram_map = Srfa_hw.Ram_map.build Srfa_hw.Device.xcv1000 arrays in
  (an, Cycle_model.create ~dfg ~latency ~ram_map ())

let test_example_makespans () =
  let an, model = model_of (Helpers.example ()) in
  ignore an;
  (* Pure compute: two chained multiplies. *)
  Alcotest.(check int) "compute makespan" 2 (Cycle_model.compute_makespan model);
  (* All charged: b -> op1 -> d -> op2 -> e adds 3 memory cycles. *)
  Alcotest.(check int) "all-RAM makespan" 5
    (Cycle_model.makespan model ~charged:(fun _ -> true));
  Alcotest.(check int) "memory cycles" 3
    (Cycle_model.memory_cycles model ~charged:(fun _ -> true))

let test_example_partial_charges () =
  let an, model = model_of (Helpers.example ()) in
  let id name = (Helpers.info_named an name).Analysis.group.Group.id in
  let charged_of names (g : Group.t) = List.mem g.Group.id (List.map id names) in
  (* Only e charged: one store level. *)
  Alcotest.(check int) "only e" 1
    (Cycle_model.memory_cycles model ~charged:(charged_of [ "e[i][j][k]" ]));
  (* a and b charged (both feed op1, different banks): one fetch level. *)
  Alcotest.(check int) "a,b concurrent" 1
    (Cycle_model.memory_cycles model
       ~charged:(charged_of [ "a[k]"; "b[k][j]" ]));
  (* c charged: its fetch hides under op1 (not on the critical path). *)
  Alcotest.(check int) "c hides" 0
    (Cycle_model.memory_cycles model ~charged:(charged_of [ "c[j]" ]))

let test_port_serialisation () =
  (* Two reads of the same array in one iteration: same bank, and the
     XCV1000's dual ports absorb both; a third serialises. *)
  let open Srfa_ir.Builder in
  let a = input "a" [ 16 ] and y = output "y" [ 8 ] in
  let i = idx "i" in
  let nest =
    nest "triple" ~loops:[ ("i", 8) ]
      [
        at y [ i ]
        <-- (a.%[ [ i ] ] + a.%[ [ i +: cidx 1 ] ] + a.%[ [ i +: cidx 2 ] ]);
      ]
  in
  let _, model = model_of nest in
  let mem = Cycle_model.memory_cycles model ~charged:(fun _ -> true) in
  (* Three loads on two ports: two cycles of fetching instead of one, plus
     the y store. *)
  Alcotest.(check int) "dual-port serialisation" 3 mem

let test_single_bank_worse () =
  List.iter
    (fun (name, nest) ->
      let run policy =
        let config =
          { Simulator.default_config with Simulator.ram_policy = policy }
        in
        let an = Helpers.analyze nest in
        let alloc = Srfa_core.Allocator.run Srfa_core.Allocator.Fr_ra an ~budget:64 in
        (Simulator.run ~config alloc).Simulator.total_cycles
      in
      Alcotest.(check bool)
        (name ^ ": single bank never faster")
        true
        (run Simulator.Single_bank >= run Simulator.Private_banks))
    (Helpers.small_kernels ())

let test_simulator_identities () =
  List.iter
    (fun (name, nest) ->
      let an = Helpers.analyze nest in
      let alloc =
        Srfa_core.Allocator.run Srfa_core.Allocator.Cpa_ra an ~budget:16
      in
      let r = Simulator.run alloc in
      Alcotest.(check int)
        (name ^ ": iterations")
        (Srfa_ir.Nest.iterations nest)
        r.Simulator.iterations;
      Alcotest.(check int)
        (name ^ ": total = compute + memory + control")
        r.Simulator.total_cycles
        (r.Simulator.compute_cycles + r.Simulator.memory_cycles
       + r.Simulator.control_cycles);
      Alcotest.(check bool)
        (name ^ ": memory cycles bounded by accesses")
        true
        (r.Simulator.memory_cycles
        <= r.Simulator.ram_accesses * latency.Srfa_hw.Latency.ram_access + r.Simulator.iterations);
      let per_group = Array.fold_left ( + ) 0 r.Simulator.group_ram_accesses in
      Alcotest.(check int)
        (name ^ ": per-group accesses sum")
        r.Simulator.ram_accesses per_group)
    (Helpers.small_kernels ())

let test_full_allocation_no_memory_cycles () =
  (* With every reuse window fully covered, only no-reuse groups pay. *)
  let nest = Helpers.small_mat () in
  let an = Helpers.analyze nest in
  let full = Analysis.total_registers_full an in
  let alloc = Srfa_core.Allocator.run Srfa_core.Allocator.Cpa_ra an ~budget:(full + 8) in
  let r = Simulator.run alloc in
  Alcotest.(check int) "mat fully covered: no memory cycles" 0
    r.Simulator.memory_cycles

let test_control_overhead () =
  let nest = Helpers.small_mat () in
  let an = Helpers.analyze nest in
  let alloc = Srfa_core.Allocator.run Srfa_core.Allocator.Fr_ra an ~budget:16 in
  let with_overhead =
    Simulator.run
      ~config:{ Simulator.default_config with Simulator.control_overhead = 2 }
      alloc
  in
  let without = Simulator.run alloc in
  Alcotest.(check int) "control cycles accounted"
    (without.Simulator.total_cycles + (2 * without.Simulator.iterations))
    with_overhead.Simulator.total_cycles

let test_register_hits_complementary () =
  let nest = Helpers.example () in
  let an = Helpers.analyze nest in
  let alloc = Srfa_core.Allocator.run Srfa_core.Allocator.Cpa_ra an ~budget:64 in
  let r = Simulator.run alloc in
  Alcotest.(check int) "hits + misses = groups x iterations"
    (Analysis.num_groups an * r.Simulator.iterations)
    (r.Simulator.register_hits + r.Simulator.ram_accesses)

let () =
  Alcotest.run "sched"
    [
      ( "cycle model",
        [
          Alcotest.test_case "example makespans" `Quick test_example_makespans;
          Alcotest.test_case "partial charges" `Quick
            test_example_partial_charges;
          Alcotest.test_case "port serialisation" `Quick
            test_port_serialisation;
        ] );
      ( "simulator",
        [
          Alcotest.test_case "single bank never faster" `Quick
            test_single_bank_worse;
          Alcotest.test_case "identities" `Quick test_simulator_identities;
          Alcotest.test_case "full allocation" `Quick
            test_full_allocation_no_memory_cycles;
          Alcotest.test_case "control overhead" `Quick test_control_overhead;
          Alcotest.test_case "hits complementary" `Quick
            test_register_hits_complementary;
        ] );
    ]
