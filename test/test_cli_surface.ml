(* End-to-end coverage of the Flow facade (the functions behind the CLI
   and the bench harness). *)

open Srfa_test_helpers
module Flow = Srfa_core.Flow
module Report = Srfa_estimate.Report

let small_config budget =
  { Flow.default_config with Flow.budget }

let test_evaluate_all_versions () =
  let nest = Helpers.small_fir () in
  let reports = Flow.evaluate_all ~config:(small_config 10) nest in
  Alcotest.(check int) "all algorithms by default" 6 (List.length reports);
  Alcotest.(check (list string)) "labels"
    [ "v1"; "v2"; "v3"; "v3+"; "ks"; "pf" ]
    (List.map (fun r -> r.Report.version) reports);
  List.iter
    (fun r ->
      Alcotest.(check bool)
        (r.Report.version ^ " carries a trace summary")
        true
        (match r.Report.trace_summary with
        | Some s -> String.length s > 0
        | None -> false))
    reports

let test_evaluate_consistent_with_parts () =
  let nest = Helpers.small_mat () in
  let config = small_config 12 in
  let direct = Flow.evaluate ~config Srfa_core.Allocator.Cpa_ra nest in
  let analysis = Flow.analyze nest in
  let alloc = Flow.allocation ~config Srfa_core.Allocator.Cpa_ra analysis in
  let sim = Srfa_sched.Simulator.run ~config:config.Flow.sim alloc in
  Alcotest.(check int) "cycles agree" sim.Srfa_sched.Simulator.total_cycles
    direct.Report.cycles

let test_custom_algorithms () =
  let nest = Helpers.small_pat () in
  let reports =
    Flow.evaluate_all ~config:(small_config 12)
      ~algorithms:Srfa_core.Allocator.all nest
  in
  Alcotest.(check int) "six algorithms" 6 (List.length reports)

let test_default_budget_is_paper () =
  Alcotest.(check int) "64 registers" 64 Flow.default_config.Flow.budget

let test_texttable_render () =
  let open Srfa_util.Texttable in
  let t = create ~headers:[ ("name", Left); ("value", Right) ] in
  add_row t [ "alpha"; "1" ];
  add_separator t;
  add_row t [ "b"; "22" ];
  let text = render t in
  Alcotest.(check bool) "header present" true
    (Helpers.contains_substring text "name");
  Alcotest.(check bool) "right aligned value" true
    (Helpers.contains_substring text " 1\n");
  Alcotest.(check bool)
    "over-wide row rejected" true
    (try
       add_row t [ "a"; "b"; "c" ];
       false
     with Invalid_argument _ -> true)

let test_toposort () =
  let succs = function 0 -> [ 1; 2 ] | 1 -> [ 3 ] | 2 -> [ 3 ] | _ -> [] in
  let order = Srfa_util.Toposort.sort ~n:4 ~succs in
  let pos x = Option.get (List.find_index (fun y -> y = x) order) in
  Alcotest.(check bool) "edges respected" true
    (pos 0 < pos 1 && pos 0 < pos 2 && pos 1 < pos 3 && pos 2 < pos 3);
  let levels = Srfa_util.Toposort.levels ~n:4 ~succs in
  Alcotest.(check (array int)) "levels" [| 0; 1; 1; 2 |] levels;
  Alcotest.(check bool)
    "cycle detected" true
    (try
       ignore (Srfa_util.Toposort.sort ~n:2 ~succs:(fun _ -> [ 0; 1 ]));
       false
     with Srfa_util.Toposort.Cycle _ -> true);
  let reach = Srfa_util.Toposort.reachable ~n:4 ~succs [ 1 ] in
  Alcotest.(check (array bool)) "reachable from 1"
    [| false; true; false; true |] reach

let test_prng_determinism () =
  let a = Srfa_util.Prng.create ~seed:42 in
  let b = Srfa_util.Prng.create ~seed:42 in
  let seq g = List.init 20 (fun _ -> Srfa_util.Prng.int g 1000) in
  Alcotest.(check (list int)) "same seed, same stream" (seq a) (seq b);
  let c = Srfa_util.Prng.create ~seed:43 in
  Alcotest.(check bool) "different seed differs" true (seq a <> seq c);
  let g = Srfa_util.Prng.create ~seed:7 in
  for _ = 1 to 100 do
    let v = Srfa_util.Prng.int g 10 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 10)
  done;
  Alcotest.(check bool)
    "non-positive bound rejected" true
    (try
       ignore (Srfa_util.Prng.int g 0);
       false
     with Invalid_argument _ -> true)

let () =
  Alcotest.run "flow-and-util"
    [
      ( "flow",
        [
          Alcotest.test_case "evaluate_all" `Quick test_evaluate_all_versions;
          Alcotest.test_case "consistent with parts" `Quick
            test_evaluate_consistent_with_parts;
          Alcotest.test_case "custom algorithms" `Quick test_custom_algorithms;
          Alcotest.test_case "paper budget default" `Quick
            test_default_budget_is_paper;
        ] );
      ( "util",
        [
          Alcotest.test_case "texttable" `Quick test_texttable_render;
          Alcotest.test_case "toposort" `Quick test_toposort;
          Alcotest.test_case "prng" `Quick test_prng_determinism;
        ] );
    ]
