open Srfa_reuse
open Srfa_test_helpers
module Residency = Srfa_sched.Residency
module Simulator = Srfa_sched.Simulator

let alloc_for nest budget =
  let an = Helpers.analyze nest in
  Srfa_core.Allocator.run Srfa_core.Allocator.Cpa_ra an ~budget

let hits policy nest budget =
  let config =
    { Simulator.default_config with Simulator.residency = policy }
  in
  (Simulator.run ~config (alloc_for nest budget)).Simulator.register_hits

let test_policy_names () =
  List.iter
    (fun p ->
      Alcotest.(check bool)
        (Residency.policy_name p ^ " roundtrips")
        true
        (Residency.policy_of_name (Residency.policy_name p) = Some p))
    [ Residency.Pinned; Residency.Lru; Residency.Direct_mapped ];
  Alcotest.(check bool) "unknown policy" true
    (Residency.policy_of_name "zz" = None)

let test_pinned_matches_tracker () =
  (* Pinned through the Residency facade equals the direct tracker path
     (the default the whole test suite already validates). *)
  let nest = Helpers.example () in
  let alloc = alloc_for nest 64 in
  let default = Simulator.run alloc in
  let facade =
    Simulator.run
      ~config:
        { Simulator.default_config with Simulator.residency = Residency.Pinned }
      alloc
  in
  Alcotest.(check int) "same cycles" default.Simulator.total_cycles
    facade.Simulator.total_cycles;
  Alcotest.(check int) "same hits" default.Simulator.register_hits
    facade.Simulator.register_hits

let test_lru_thrashes_cyclic_window () =
  (* a[k] swept cyclically with fewer registers than the window: LRU gets
     no hits at all, while pinned keeps its guaranteed share. This is the
     quantitative argument for the paper's compile-time discipline. *)
  let open Srfa_ir.Builder in
  let a = input "a" [ 8 ] and y = output "y" [ 4; 8 ] in
  let i = idx "i" and k = idx "k" in
  let nest =
    nest "cyclic" ~loops:[ ("i", 4); ("k", 8) ]
      [ at y [ i; k ] <-- (a.%[ [ k ] ] + const 1) ]
  in
  let an = Helpers.analyze nest in
  (* Give a exactly half its window. *)
  let entries =
    Array.map
      (fun (info : Analysis.info) ->
        if Group.name info.Analysis.group = "a[k]" then
          { Allocation.beta = 4; pinned = true }
        else { Allocation.beta = 1; pinned = true })
      an.Analysis.infos
  in
  let alloc = Allocation.make ~analysis:an ~budget:16 ~algorithm:"manual" entries in
  let hits policy =
    let config =
      { Simulator.default_config with Simulator.residency = policy }
    in
    let r = Simulator.run ~config alloc in
    (* count only a's hits: total hits minus y's (y never hits: no reuse) *)
    r.Simulator.register_hits
  in
  let pinned = hits Residency.Pinned in
  let lru = hits Residency.Lru in
  (* pinned: k < 4 resident every iteration = 16 hits; LRU: cyclic sweep of
     8 elements through 4 slots hits nothing. *)
  Alcotest.(check int) "pinned keeps half the window" 16 pinned;
  Alcotest.(check int) "lru thrashes to zero" 0 lru

let test_direct_mapped_conflicts () =
  (* Same cyclic sweep: direct-mapped slots e mod 4 alias k and k+4, so
     every access evicts the element the next sweep needs: zero hits. *)
  let open Srfa_ir.Builder in
  let a = input "a" [ 8 ] and y = output "y" [ 4; 8 ] in
  let i = idx "i" and k = idx "k" in
  let nest =
    nest "cyclic" ~loops:[ ("i", 4); ("k", 8) ]
      [ at y [ i; k ] <-- (a.%[ [ k ] ] + const 1) ]
  in
  let an = Helpers.analyze nest in
  let entries =
    Array.map
      (fun (info : Analysis.info) ->
        if Group.name info.Analysis.group = "a[k]" then
          { Allocation.beta = 4; pinned = true }
        else { Allocation.beta = 1; pinned = true })
      an.Analysis.infos
  in
  let alloc = Allocation.make ~analysis:an ~budget:16 ~algorithm:"manual" entries in
  let config =
    { Simulator.default_config with
      Simulator.residency = Residency.Direct_mapped }
  in
  Alcotest.(check int) "direct-mapped aliases to zero" 0
    (Simulator.run ~config alloc).Simulator.register_hits

let test_pinned_at_least_as_fast_when_fully_funded () =
  (* With every window fully funded, pinned serves everything from
     registers (prologue loads are compile-time scheduled); LRU still pays
     one cold miss per distinct element, so pinned cannot be slower. *)
  let nest = Helpers.small_fir () in
  let an = Helpers.analyze nest in
  let budget = Analysis.total_registers_full an + 2 in
  let cycles policy =
    let config =
      { Simulator.default_config with Simulator.residency = policy }
    in
    let alloc = Srfa_core.Allocator.run Srfa_core.Allocator.Fr_ra an ~budget in
    (Simulator.run ~config alloc).Simulator.total_cycles
  in
  Alcotest.(check bool) "pinned <= lru when fully funded" true
    (cycles Residency.Pinned <= cycles Residency.Lru)

let test_policies_two_sided () =
  (* The ablation's two sides. Cyclic sweeps (fir/mat/pat/dec-fir at a
     starved budget) favour the compile-time pinned discipline; but
     innermost-carried reuse covered by a badly under-funded outer window
     (the example's c[j] with a single register) favours the adaptive
     policies. Both directions are real; at the paper's 64-register budget
     pinned dominates every kernel (see bench ablation-residency). *)
  List.iter
    (fun name ->
      let nest = List.assoc name (Helpers.small_kernels ()) in
      let pinned = hits Residency.Pinned nest 16 in
      let lru = hits Residency.Lru nest 16 in
      Alcotest.(check bool)
        (name ^ ": pinned hits >= lru hits")
        true (pinned >= lru))
    [ "fir"; "mat"; "pat"; "dec-fir"; "imi"; "bic" ];
  let nest = List.assoc "example" (Helpers.small_kernels ()) in
  Alcotest.(check bool) "example: lru exploits c[j]'s innermost reuse" true
    (hits Residency.Lru nest 16 > hits Residency.Pinned nest 16)

let () =
  Alcotest.run "residency"
    [
      ( "policies",
        [
          Alcotest.test_case "names" `Quick test_policy_names;
          Alcotest.test_case "pinned facade" `Quick test_pinned_matches_tracker;
          Alcotest.test_case "lru thrashes cyclic windows" `Quick
            test_lru_thrashes_cyclic_window;
          Alcotest.test_case "direct-mapped aliases" `Quick
            test_direct_mapped_conflicts;
          Alcotest.test_case "pinned fastest when fully funded" `Quick
            test_pinned_at_least_as_fast_when_fully_funded;
          Alcotest.test_case "two-sided comparison" `Quick
            test_policies_two_sided;
        ] );
    ]
