open Srfa_reuse
open Srfa_test_helpers

let analysis () = Helpers.analyze (Helpers.example ())

let check_info name ~nu ~accesses ~distinct ~saved ~level =
  let i = Helpers.info_named (analysis ()) name in
  Alcotest.(check int) (name ^ " nu") nu i.Analysis.nu;
  Alcotest.(check int) (name ^ " accesses") accesses i.Analysis.accesses;
  Alcotest.(check int) (name ^ " distinct") distinct i.Analysis.distinct;
  Alcotest.(check int) (name ^ " saved") saved i.Analysis.saved_full;
  Alcotest.(check int) (name ^ " window level") level i.Analysis.window_level

(* The recovered Fig. 1/Fig. 2 quantities (DESIGN.md §4). *)
let test_example_a () = check_info "a[k]" ~nu:30 ~accesses:600 ~distinct:30 ~saved:570 ~level:1
let test_example_b () = check_info "b[k][j]" ~nu:600 ~accesses:600 ~distinct:600 ~saved:0 ~level:1
let test_example_c () = check_info "c[j]" ~nu:20 ~accesses:600 ~distinct:20 ~saved:580 ~level:1
let test_example_d () = check_info "d[i][k]" ~nu:30 ~accesses:600 ~distinct:30 ~saved:570 ~level:2

let test_example_e () =
  let i = Helpers.info_named (analysis ()) "e[i][j][k]" in
  Alcotest.(check bool) "no reuse" false i.Analysis.has_reuse;
  Alcotest.(check int) "nu 1" 1 i.Analysis.nu;
  Alcotest.(check int) "saved 0" 0 i.Analysis.saved_full

let test_benefit_cost () =
  let an = analysis () in
  let bc name = (Helpers.info_named an name).Analysis.benefit_cost in
  Alcotest.(check (float 0.001)) "c" 29.0 (bc "c[j]");
  Alcotest.(check (float 0.001)) "a" 19.0 (bc "a[k]");
  Alcotest.(check (float 0.001)) "d" 19.0 (bc "d[i][k]");
  Alcotest.(check (float 0.001)) "b" 0.0 (bc "b[k][j]")

let test_total_full () =
  Alcotest.(check int) "sum of nu" (30 + 600 + 20 + 30 + 1)
    (Analysis.total_registers_full (analysis ()))

let test_fir_windows () =
  let an = Helpers.analyze (Srfa_kernels.Kernels.fir ~taps:8 ~samples:32 ()) in
  let x = Helpers.info_named an "x[i+j]" in
  Alcotest.(check int) "x window = taps" 8 x.Analysis.nu;
  Alcotest.(check int) "x carried by i" 1 x.Analysis.window_level;
  let y = Helpers.info_named an "y[i]" in
  Alcotest.(check int) "accumulator nu" 1 y.Analysis.nu;
  Alcotest.(check bool) "accumulator has reuse" true y.Analysis.has_reuse

let test_element_index () =
  let an = analysis () in
  let b = Helpers.info_named an "b[k][j]" in
  (* b[k][j] linearises to 20*k + j. *)
  Alcotest.(check int) "b element" ((20 * 7) + 3)
    (Analysis.element_index b [| 0; 3; 7 |])

let test_rank_affine_simple () =
  let an = analysis () in
  let check name expected =
    match Analysis.rank_affine an (Helpers.info_named an name) with
    | Some coeffs -> Alcotest.(check (array int)) name expected coeffs
    | None -> Alcotest.failf "%s: expected affine rank" name
  in
  check "a[k]" [| 0; 0; 1 |];
  check "c[j]" [| 0; 1; 0 |];
  check "d[i][k]" [| 0; 0; 1 |];
  check "b[k][j]" [| 0; 30; 1 |]

let test_rank_affine_none_for_bic_image () =
  let an = Helpers.analyze (Helpers.small_bic ()) in
  let im = Helpers.info_named an "im[r+u][c+v]" in
  Alcotest.(check bool)
    "coupled 2-D window is not affine-ranked" true
    (Analysis.rank_affine an im = None);
  let t = Helpers.info_named an "t[u][v]" in
  Alcotest.(check bool)
    "template window is affine-ranked" true
    (Analysis.rank_affine an t <> None)

let test_rank_affine_none_has_no_reuse_group () =
  let an = analysis () in
  let e = Helpers.info_named an "e[i][j][k]" in
  Alcotest.(check bool) "no-reuse group has no rank" true
    (Analysis.rank_affine an e = None)

(* Tracker semantics on the example: residency of each group at chosen
   iteration points, matching the Fig. 2 accounting. *)
let test_tracker_residency () =
  let an = analysis () in
  let tr = Analysis.Tracker.create an in
  let a_id = (Helpers.info_named an "a[k]").Analysis.group.Group.id in
  let b_id = (Helpers.info_named an "b[k][j]").Analysis.group.Group.id in
  let c_id = (Helpers.info_named an "c[j]").Analysis.group.Group.id in
  Srfa_ir.Iterspace.iter an.Analysis.nest (fun point ->
      Analysis.Tracker.step tr point;
      let j = point.(1) and k = point.(2) in
      (* a[k]'s slot rank is k. *)
      Alcotest.(check bool) "a resident iff k < 16"
        (k < 16)
        (Analysis.Tracker.resident tr a_id ~beta:16 ~pinned:true);
      (* b's slot rank is 30j + k. *)
      Alcotest.(check bool) "b resident iff 30j+k < 16"
        ((30 * j) + k < 16)
        (Analysis.Tracker.resident tr b_id ~beta:16 ~pinned:true);
      (* c's slot rank is j; a single register covers j = 0. *)
      Alcotest.(check bool) "c resident iff j = 0" (j = 0)
        (Analysis.Tracker.resident tr c_id ~beta:1 ~pinned:true);
      (* unpinned entries never claim residency. *)
      Alcotest.(check bool) "unpinned never resident" false
        (Analysis.Tracker.resident tr a_id ~beta:30 ~pinned:false))

(* rank_affine and the tracker must agree wherever the former exists. *)
let test_rank_affine_matches_tracker () =
  let check_kernel (_, nest) =
    let an = Helpers.analyze nest in
    let ranked =
      Array.to_list an.Analysis.infos
      |> List.filter_map (fun (i : Analysis.info) ->
             match Analysis.rank_affine an i with
             | Some coeffs -> Some (i.Analysis.group.Group.id, coeffs)
             | None -> None)
    in
    let tr = Analysis.Tracker.create an in
    Srfa_ir.Iterspace.iter an.Analysis.nest (fun point ->
        Analysis.Tracker.step tr point;
        List.iter
          (fun (gid, coeffs) ->
            let predicted = ref 0 in
            Array.iteri
              (fun l c -> predicted := !predicted + (c * point.(l)))
              coeffs;
            Alcotest.(check int) "rank agrees" !predicted
              (Analysis.Tracker.slot_rank tr gid))
          ranked)
  in
  List.iter check_kernel (Helpers.small_kernels ())

let () =
  Alcotest.run "analysis"
    [
      ( "fig1 quantities",
        [
          Alcotest.test_case "a[k]" `Quick test_example_a;
          Alcotest.test_case "b[k][j]" `Quick test_example_b;
          Alcotest.test_case "c[j]" `Quick test_example_c;
          Alcotest.test_case "d[i][k]" `Quick test_example_d;
          Alcotest.test_case "e[i][j][k]" `Quick test_example_e;
          Alcotest.test_case "benefit/cost" `Quick test_benefit_cost;
          Alcotest.test_case "total full registers" `Quick test_total_full;
        ] );
      ( "windows",
        [
          Alcotest.test_case "fir windows" `Quick test_fir_windows;
          Alcotest.test_case "element index" `Quick test_element_index;
          Alcotest.test_case "rank affine simple" `Quick
            test_rank_affine_simple;
          Alcotest.test_case "rank affine opaque for BIC image" `Quick
            test_rank_affine_none_for_bic_image;
          Alcotest.test_case "rank affine none without reuse" `Quick
            test_rank_affine_none_has_no_reuse_group;
        ] );
      ( "tracker",
        [
          Alcotest.test_case "residency on the example" `Quick
            test_tracker_residency;
          Alcotest.test_case "rank affine matches tracker" `Slow
            test_rank_affine_matches_tracker;
        ] );
    ]
