(* Shared fixtures and generators for the test suites. *)

open Srfa_ir

(* The Fig. 1 running example with the recovered bounds (DESIGN.md §4). *)
let example () = Srfa_kernels.Kernels.example ()

let analyze = Srfa_reuse.Analysis.analyze

(* Deterministic pseudo-random initial data for semantics checks. *)
let init _name coords =
  (Array.fold_left (fun acc c -> (acc * 31) + c + 7) 3 coords mod 251) - 125

(* Locate a repository file from wherever dune runs the tests. *)
let find_repo_file relative =
  let rec search dir depth =
    let candidate = Filename.concat dir relative in
    if Sys.file_exists candidate then candidate
    else if depth = 0 then relative
    else search (Filename.dirname dir) (depth - 1)
  in
  search (Sys.getcwd ()) 6

let contains_substring haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  n = 0 || go 0

(* Group lookup by rendered name, e.g. "a[k]". *)
let info_named analysis name =
  let found = ref None in
  Array.iter
    (fun (i : Srfa_reuse.Analysis.info) ->
      if Srfa_reuse.Group.name i.Srfa_reuse.Analysis.group = name then
        found := Some i)
    analysis.Srfa_reuse.Analysis.infos;
  match !found with
  | Some i -> i
  | None -> Alcotest.failf "no group named %s" name

let beta_named alloc name =
  let analysis = alloc.Srfa_reuse.Allocation.analysis in
  let i = info_named analysis name in
  Srfa_reuse.Allocation.beta alloc i.Srfa_reuse.Analysis.group.Srfa_reuse.Group.id

(* Small kernels for fast tests. *)
let small_fir () = Srfa_kernels.Kernels.fir ~taps:4 ~samples:16 ()
let small_mat () = Srfa_kernels.Kernels.mat ~size:4 ()
let small_bic () = Srfa_kernels.Kernels.bic ~template:3 ~image:8 ()
let small_pat () = Srfa_kernels.Kernels.pat ~pattern:3 ~text:12 ()
let small_imi () = Srfa_kernels.Kernels.imi ~width:6 ~height:5 ~frames:3 ()

let small_kernels () =
  [
    ("example", example ());
    ("fir", small_fir ());
    ("mat", small_mat ());
    ("bic", small_bic ());
    ("pat", small_pat ());
    ("imi", small_imi ());
    ("dec-fir", Srfa_kernels.Kernels.dec_fir ~taps:6 ~samples:24 ~decimation:2 ());
  ]

(* --- Random nest generation for property tests ------------------------- *)

(* Nests are generated so that every reference is in bounds by
   construction: indices are drawn from a small menu of affine shapes over
   the declared loops, and each array's extents are computed from the
   maximum value its index expressions can reach. *)

let gen_nest : Nest.t QCheck.Gen.t =
  let open QCheck.Gen in
  let* depth = int_range 1 3 in
  let vars = List.init depth (fun l -> Printf.sprintf "v%d" l) in
  let* counts = list_repeat depth (int_range 2 5) in
  let loops = List.combine vars counts in
  let var_menu = Array.of_list loops in
  (* An affine index expression, together with its maximum value. *)
  let gen_index =
    let* shape = int_range 0 4 in
    let* a = int_range 0 (Array.length var_menu - 1) in
    let* b = int_range 0 (Array.length var_menu - 1) in
    let va, ca = var_menu.(a) in
    let vb, cb = var_menu.(b) in
    let aff = Srfa_ir.Affine.var in
    match shape with
    | 0 -> return (aff va, ca - 1)
    | 1 -> return (Srfa_ir.Affine.add (aff va) (aff vb), ca + cb - 2)
    | 2 ->
      let* k = int_range 0 2 in
      return (Srfa_ir.Affine.add (aff va) (Srfa_ir.Affine.const k), ca - 1 + k)
    | 3 ->
      let* s = int_range 2 3 in
      return
        ( Srfa_ir.Affine.add (aff ~coeff:s va) (aff vb),
          (s * (ca - 1)) + cb - 1 )
    | _ -> return (Srfa_ir.Affine.const 0, 0)
  in
  let gen_ref prefix idx =
    let* rank = int_range 0 2 in
    let* indices = list_repeat rank gen_index in
    let dims = List.map (fun (_, hi) -> hi + 1) indices in
    let name = Printf.sprintf "%s%d" prefix idx in
    let decl = Srfa_ir.Decl.make name dims in
    return (Srfa_ir.Expr.ref_ decl (List.map fst indices))
  in
  let* nread = int_range 1 3 in
  let* reads = List.init nread (fun k -> gen_ref "r" k) |> flatten_l in
  let* nstmt = int_range 1 2 in
  let gen_stmt k =
    let* target = gen_ref "w" k in
    let* use_acc = bool in
    let* op =
      oneofl Srfa_ir.Op.[ Add; Sub; Mul; Min; Max; Bxor ]
    in
    let* picks = list_repeat 2 (oneofl reads) in
    let leaves = List.map (fun r -> Srfa_ir.Expr.Load r) picks in
    let rhs =
      match leaves with
      | [ x; y ] -> Srfa_ir.Expr.Binary (op, x, y)
      | [ x ] -> x
      | _ -> Srfa_ir.Expr.Const 1
    in
    let rhs =
      if use_acc then
        Srfa_ir.Expr.Binary (Srfa_ir.Op.Add, Srfa_ir.Expr.Load target, rhs)
      else rhs
    in
    return (Srfa_ir.Expr.Assign (target, rhs))
  in
  let* body = List.init nstmt gen_stmt |> flatten_l in
  (* Collect declarations and mark targets as outputs. *)
  let decls = Hashtbl.create 8 in
  let note storage (r : Srfa_ir.Expr.ref_) =
    let d = r.Srfa_ir.Expr.decl in
    let existing = Hashtbl.find_opt decls d.Srfa_ir.Decl.name in
    match (existing, storage) with
    | None, s ->
      Hashtbl.replace decls d.Srfa_ir.Decl.name
        (Srfa_ir.Decl.make ~bits:d.Srfa_ir.Decl.bits ~storage:s
           d.Srfa_ir.Decl.name d.Srfa_ir.Decl.dims)
    | Some _, Srfa_ir.Decl.Output ->
      Hashtbl.replace decls d.Srfa_ir.Decl.name
        (Srfa_ir.Decl.make ~bits:d.Srfa_ir.Decl.bits
           ~storage:Srfa_ir.Decl.Output d.Srfa_ir.Decl.name
           d.Srfa_ir.Decl.dims)
    | Some _, _ -> ()
  in
  List.iter
    (fun (Srfa_ir.Expr.Assign (target, e)) ->
      List.iter (note Srfa_ir.Decl.Input) (Srfa_ir.Expr.loads e);
      note Srfa_ir.Decl.Output target)
    body;
  (* Rebuild the body against the final declarations so ref decls agree. *)
  let rebuild (r : Srfa_ir.Expr.ref_) =
    Srfa_ir.Expr.ref_
      (Hashtbl.find decls r.Srfa_ir.Expr.decl.Srfa_ir.Decl.name)
      r.Srfa_ir.Expr.index
  in
  let rec rebuild_expr (e : Srfa_ir.Expr.t) =
    match e with
    | Srfa_ir.Expr.Const _ -> e
    | Srfa_ir.Expr.Load r -> Srfa_ir.Expr.Load (rebuild r)
    | Srfa_ir.Expr.Unary (op, a) -> Srfa_ir.Expr.Unary (op, rebuild_expr a)
    | Srfa_ir.Expr.Binary (op, a, b) ->
      Srfa_ir.Expr.Binary (op, rebuild_expr a, rebuild_expr b)
  in
  let body =
    List.map
      (fun (Srfa_ir.Expr.Assign (t, e)) ->
        Srfa_ir.Expr.Assign (rebuild t, rebuild_expr e))
      body
  in
  let arrays = Hashtbl.fold (fun _ d acc -> d :: acc) decls [] in
  let arrays = List.sort Srfa_ir.Decl.compare arrays in
  return
    (Srfa_ir.Nest.make ~name:"random" ~arrays
       ~loops:(List.map (fun (v, c) -> Srfa_ir.Nest.loop v c) loops)
       ~body)

let arbitrary_nest =
  QCheck.make gen_nest ~print:(fun n -> Format.asprintf "%a" Nest.pp n)
