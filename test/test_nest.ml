open Srfa_ir
open Builder

let valid_nest () =
  let a = input "a" [ 8 ] and y = output "y" [ 4 ] in
  let i = idx "i" in
  nest "t" ~loops:[ ("i", 4); ("j", 5) ] [ at y [ i ] <-- (a.%[ [ i +: cidx 3 ] ] + const 1); at y [ i ] <-- a.%[ [ i ] ] ]

let rejects name f =
  Alcotest.test_case name `Quick (fun () ->
      Alcotest.(check bool)
        "Invalid_argument raised" true
        (try
           ignore (f ());
           false
         with Invalid_argument _ -> true))

let test_accepts_valid () =
  let n = valid_nest () in
  Alcotest.(check int) "depth" 2 (Nest.depth n);
  Alcotest.(check int) "iterations" 20 (Nest.iterations n);
  Alcotest.(check (list string)) "vars" [ "i"; "j" ] (Nest.loop_vars n);
  Alcotest.(check int) "refs in program order" 4 (List.length (Nest.refs n))

let test_find_array () =
  let n = valid_nest () in
  Alcotest.(check string) "find a" "a" (Nest.find_array n "a").Decl.name;
  Alcotest.(check bool)
    "missing array raises Not_found" true
    (try
       ignore (Nest.find_array n "zz");
       false
     with Not_found -> true)

let test_pp_smoke () =
  let text = Format.asprintf "%a" Nest.pp (valid_nest ()) in
  Alcotest.(check bool) "mentions kernel name" true
    (String.length text > 0
    && Srfa_test_helpers.Helpers.contains_substring text "kernel t")

let () =
  Alcotest.run "nest"
    [
      ( "validation",
        [
          Alcotest.test_case "accepts valid" `Quick test_accepts_valid;
          rejects "no loops" (fun () ->
              Nest.make ~name:"x" ~arrays:[] ~loops:[] ~body:[]);
          rejects "empty body" (fun () ->
              Nest.make ~name:"x" ~arrays:[]
                ~loops:[ Nest.loop "i" 4 ]
                ~body:[]);
          rejects "duplicate loop variables" (fun () ->
              let a = input "a" [ 4 ] and y = output "y" [ 4 ] in
              let i = idx "i" in
              Nest.make ~name:"x" ~arrays:[ a; y ]
                ~loops:[ Nest.loop "i" 4; Nest.loop "i" 4 ]
                ~body:[ at y [ i ] <-- a.%[ [ i ] ] ]);
          rejects "undeclared array" (fun () ->
              let a = input "a" [ 4 ] and y = output "y" [ 4 ] in
              let i = idx "i" in
              Nest.make ~name:"x" ~arrays:[ y ]
                ~loops:[ Nest.loop "i" 4 ]
                ~body:[ at y [ i ] <-- a.%[ [ i ] ] ]);
          rejects "out-of-bounds upper" (fun () ->
              let a = input "a" [ 4 ] and y = output "y" [ 4 ] in
              let i = idx "i" in
              nest "x" ~loops:[ ("i", 4) ]
                [ at y [ i ] <-- a.%[ [ i +: cidx 1 ] ] ]
              |> fun _ -> ignore a);
          rejects "out-of-bounds negative" (fun () ->
              let a = input "a" [ 4 ] and y = output "y" [ 4 ] in
              let i = idx "i" in
              nest "x" ~loops:[ ("i", 4) ]
                [ at y [ i ] <-- a.%[ [ i -: cidx 1 ] ] ]);
          rejects "unknown index variable" (fun () ->
              let a = input "a" [ 4 ] and y = output "y" [ 4 ] in
              let i = idx "i" and k = idx "k" in
              nest "x" ~loops:[ ("i", 4) ] [ at y [ i ] <-- a.%[ [ k ] ] ]);
          rejects "non-positive trip count" (fun () -> Nest.loop "i" 0);
        ] );
      ( "queries",
        [
          Alcotest.test_case "find_array" `Quick test_find_array;
          Alcotest.test_case "pp smoke" `Quick test_pp_smoke;
        ] );
    ]
