open Srfa_ir
open Srfa_reuse

let vars3 = [ "i"; "j"; "k" ]
let i = Affine.var "i"
let j = Affine.var "j"
let k = Affine.var "k"

let analyse loop_vars index = Kernelspace.of_index ~loop_vars index

let test_invariant_one_var () =
  (* a[k] under (i,j,k): reuse carried by the outermost invariant loop. *)
  let t = analyse vars3 [ k ] in
  Alcotest.(check bool) "has reuse" true (Kernelspace.has_reuse t);
  Alcotest.(check (option int)) "carried at level 1" (Some 1)
    (Kernelspace.carry_level t);
  Alcotest.(check (option int)) "distance 1" (Some 1)
    (Kernelspace.carry_distance t)

let test_invariant_middle () =
  (* d[i][k]: invariant only to j, the middle loop. *)
  let t = analyse vars3 [ i; k ] in
  Alcotest.(check (option int)) "carried at level 2" (Some 2)
    (Kernelspace.carry_level t)

let test_injective () =
  (* e[i][j][k]: touches a fresh element every iteration. *)
  let t = analyse vars3 [ i; j; k ] in
  Alcotest.(check bool) "no reuse" false (Kernelspace.has_reuse t);
  Alcotest.(check (option int)) "no carry level" None
    (Kernelspace.carry_level t)

let test_coupled_window () =
  (* x[i+j] under (i,j): reuse along the anti-diagonal, carried by i. *)
  let t = analyse [ "i"; "j" ] [ Affine.add i j ] in
  Alcotest.(check bool) "has reuse" true (Kernelspace.has_reuse t);
  Alcotest.(check (option int)) "carried at level 1" (Some 1)
    (Kernelspace.carry_level t);
  match Kernelspace.kernel_basis t with
  | [ v ] -> Alcotest.(check (array int)) "kernel (1,-1)" [| 1; -1 |] v
  | _ -> Alcotest.fail "expected a single kernel vector"

let test_decimated () =
  (* x[4i+j]: same element at (i+1, j-4); carried by i with distance 1. *)
  let t = analyse [ "i"; "j" ] [ Affine.add (Affine.var ~coeff:4 "i") j ] in
  Alcotest.(check (option int)) "carried at level 1" (Some 1)
    (Kernelspace.carry_level t);
  match Kernelspace.kernel_basis t with
  | [ v ] -> Alcotest.(check (array int)) "kernel (1,-4)" [| 1; -4 |] v
  | _ -> Alcotest.fail "expected a single kernel vector"

let test_scalar () =
  (* A 0-dimensional accumulator: everything is reuse. *)
  let t = analyse vars3 [] in
  Alcotest.(check bool) "has reuse" true (Kernelspace.has_reuse t);
  Alcotest.(check (option int)) "carried outermost" (Some 1)
    (Kernelspace.carry_level t);
  Alcotest.(check int) "kernel has full rank" 3
    (List.length (Kernelspace.kernel_basis t))

let test_two_dim_coupled () =
  (* im[r+u][c+v] under (r,c,u,v): two independent diagonals. *)
  let r = Affine.var "r" and c = Affine.var "c" in
  let u = Affine.var "u" and v = Affine.var "v" in
  let t =
    analyse [ "r"; "c"; "u"; "v" ] [ Affine.add r u; Affine.add c v ]
  in
  Alcotest.(check bool) "has reuse" true (Kernelspace.has_reuse t);
  Alcotest.(check (option int)) "carried at level 1" (Some 1)
    (Kernelspace.carry_level t);
  Alcotest.(check int) "two kernel vectors" 2
    (List.length (Kernelspace.kernel_basis t))

let test_scaled_invariant () =
  (* b[2k][j] under (i,j,k): still invariant to i only (the scaling does
     not create extra reuse). *)
  let t = analyse vars3 [ Affine.var ~coeff:2 "k"; j ] in
  Alcotest.(check (option int)) "carried at level 1" (Some 1)
    (Kernelspace.carry_level t);
  match Kernelspace.kernel_basis t with
  | [ v ] -> Alcotest.(check (array int)) "kernel e_i" [| 1; 0; 0 |] v
  | _ -> Alcotest.fail "expected a single kernel vector"

let test_basis_echelon_order () =
  (* a[k] has kernel {e_i, e_j}: echelon order lists e_i first. *)
  let t = analyse vars3 [ k ] in
  match Kernelspace.kernel_basis t with
  | [ v1; v2 ] ->
    Alcotest.(check (array int)) "e_i" [| 1; 0; 0 |] v1;
    Alcotest.(check (array int)) "e_j" [| 0; 1; 0 |] v2
  | _ -> Alcotest.fail "expected two kernel vectors"

let () =
  Alcotest.run "kernelspace"
    [
      ( "unit",
        [
          Alcotest.test_case "invariant variable" `Quick test_invariant_one_var;
          Alcotest.test_case "invariant middle loop" `Quick
            test_invariant_middle;
          Alcotest.test_case "injective map" `Quick test_injective;
          Alcotest.test_case "coupled window (FIR)" `Quick test_coupled_window;
          Alcotest.test_case "decimated window" `Quick test_decimated;
          Alcotest.test_case "scalar accumulator" `Quick test_scalar;
          Alcotest.test_case "2-D coupled (BIC)" `Quick test_two_dim_coupled;
          Alcotest.test_case "scaled invariant" `Quick test_scaled_invariant;
          Alcotest.test_case "echelon basis order" `Quick
            test_basis_echelon_order;
        ] );
    ]
