(* The Trace event layer and the Flow.sweep batch driver. *)

open Srfa_test_helpers
module Trace = Srfa_util.Trace
module Flow = Srfa_core.Flow
module Allocator = Srfa_core.Allocator
module Report = Srfa_estimate.Report

(* ------------------------------------------------------------- trace *)

let test_null_sink_is_free () =
  Alcotest.(check bool) "null disabled" false (Trace.enabled Trace.null);
  let forced = ref false in
  Trace.emit Trace.null (fun () ->
      forced := true;
      Trace.event "boom" []);
  Alcotest.(check bool) "thunk never forced on null" false !forced;
  let sink, _ = Trace.collector () in
  Alcotest.(check bool) "collector enabled" true (Trace.enabled sink)

let test_collector_order () =
  let sink, events = Trace.collector () in
  Trace.emit sink (fun () -> Trace.event "a" []);
  Trace.emit sink (fun () -> Trace.event "b" [ ("x", Trace.Int 1) ]);
  Trace.emit sink (fun () -> Trace.event "a" []);
  Alcotest.(check (list string)) "emission order" [ "a"; "b"; "a" ]
    (List.map (fun (e : Trace.event) -> e.Trace.name) (events ()))

let test_to_json () =
  let e =
    Trace.event "cut.flow"
      [
        ("ok", Trace.Bool true);
        ("n", Trace.Int 42);
        ("share", Trace.Float 0.5);
        ("who", Trace.String "a[k] \"quoted\"\n");
        ("cut", Trace.List [ Trace.String "a"; Trace.Int 2 ]);
      ]
  in
  Alcotest.(check string) "rendering"
    "{\"event\": \"cut.flow\", \"ok\": true, \"n\": 42, \"share\": 0.5, \
     \"who\": \"a[k] \\\"quoted\\\"\\n\", \"cut\": [\"a\", 2]}"
    (Trace.to_json e);
  Alcotest.(check string) "non-finite floats are null"
    "{\"event\": \"e\", \"x\": null}"
    (Trace.to_json (Trace.event "e" [ ("x", Trace.Float nan) ]))

let test_summary () =
  Alcotest.(check string) "empty" "no events" (Trace.summary []);
  let es = [ Trace.event "a" []; Trace.event "b" []; Trace.event "a" [] ] in
  Alcotest.(check string) "counted in first-appearance order"
    "3 events: 2 a, 1 b" (Trace.summary es)

(* Every allocation round of CPA-RA on the Fig. 2 example must leave at
   least one event in the trace (acceptance criterion for the JSONL CLI
   path: one line per round, plus init/finalize bookkeeping). *)
let test_events_per_round () =
  let an = Helpers.analyze (Helpers.example ()) in
  let sink, events = Trace.collector () in
  let _alloc, steps =
    Srfa_core.Cpa_ra.allocate_traced ~trace:sink an ~budget:64
  in
  let events = events () in
  let count name =
    List.length
      (List.filter (fun (e : Trace.event) -> e.Trace.name = name) events)
  in
  Alcotest.(check bool) "at least one round" true (List.length steps > 0);
  Alcotest.(check int) "one round event per trace step" (List.length steps)
    (count "round");
  Alcotest.(check int) "one flow query per round" (List.length steps)
    (count "cut.flow");
  Alcotest.(check bool) "assignments traced" true
    (count "assign.full" + count "assign.partial" > 0);
  Alcotest.(check int) "init and finalize" 2
    (count "engine.init" + count "engine.finalize");
  (* Each line of the JSONL rendering is one non-empty object. *)
  List.iter
    (fun (e : Trace.event) ->
      let line = Trace.to_json e in
      Alcotest.(check bool) "object shape" true
        (String.length line > 2
        && line.[0] = '{'
        && line.[String.length line - 1] = '}'
        && not (String.contains line '\n')))
    events

(* ------------------------------------------------------------- sweep *)

let test_sweep_matches_evaluate () =
  let nest = Helpers.small_fir () in
  let points =
    Flow.sweep ~budgets:[ 8; 64 ]
      ~algorithms:[ Allocator.Fr_ra; Allocator.Cpa_ra ]
      [ ("fir", nest) ]
  in
  Alcotest.(check int) "2 budgets x 2 algorithms" 4 (List.length points);
  List.iter
    (fun (p : Flow.sweep_point) ->
      let config = { Flow.default_config with Flow.budget = p.Flow.budget } in
      let direct = Flow.evaluate ~config p.Flow.algorithm nest in
      Alcotest.(check int)
        (Printf.sprintf "cycles at b=%d agree with evaluate" p.Flow.budget)
        direct.Report.cycles p.Flow.report.Report.cycles;
      Alcotest.(check int) "registers agree" direct.Report.total_registers
        p.Flow.report.Report.total_registers)
    points

let test_sweep_skips_infeasible () =
  let nest = Helpers.example () in
  (* The example has 5 reference groups: budget 3 is infeasible and must
     be skipped, not raise. *)
  let points =
    Flow.sweep ~budgets:[ 3; 64 ] ~algorithms:[ Allocator.Cpa_ra ]
      [ ("example", nest) ]
  in
  Alcotest.(check (list int)) "only the feasible budget survives" [ 64 ]
    (List.map (fun p -> p.Flow.budget) points)

let test_sweep_order_and_goldens () =
  let points =
    Flow.sweep ~budgets:[ 64 ] [ ("example", Helpers.example ()) ]
  in
  Alcotest.(check (list string)) "algorithm order"
    (List.map Allocator.name Allocator.all)
    (List.map (fun p -> Allocator.name p.Flow.algorithm) points);
  let mem alg =
    let p = List.find (fun p -> p.Flow.algorithm = alg) points in
    p.Flow.report.Report.memory_cycles
  in
  (* Fig. 2: the three paper algorithms at budget 64. *)
  Alcotest.(check int) "fr-ra 1800" 1800 (mem Allocator.Fr_ra);
  Alcotest.(check int) "pr-ra 1560" 1560 (mem Allocator.Pr_ra);
  Alcotest.(check int) "cpa-ra 1184" 1184 (mem Allocator.Cpa_ra)

let test_sweep_trace_and_summary () =
  let sink, events = Trace.collector () in
  let points =
    Flow.sweep ~trace:sink ~budgets:[ 64 ] ~algorithms:[ Allocator.Cpa_ra ]
      [ ("example", Helpers.example ()) ]
  in
  Alcotest.(check bool) "sweep forwards events" true (events () <> []);
  List.iter
    (fun (p : Flow.sweep_point) ->
      match p.Flow.report.Report.trace_summary with
      | Some s ->
        Alcotest.(check bool) "summary mentions events" true
          (Helpers.contains_substring s "events")
      | None -> Alcotest.fail "sweep report lacks a trace summary")
    points

let () =
  Alcotest.run "trace-and-sweep"
    [
      ( "trace",
        [
          Alcotest.test_case "null sink is free" `Quick test_null_sink_is_free;
          Alcotest.test_case "collector order" `Quick test_collector_order;
          Alcotest.test_case "to_json" `Quick test_to_json;
          Alcotest.test_case "summary" `Quick test_summary;
          Alcotest.test_case "events per round (fig2)" `Quick
            test_events_per_round;
        ] );
      ( "sweep",
        [
          Alcotest.test_case "matches evaluate" `Quick
            test_sweep_matches_evaluate;
          Alcotest.test_case "skips infeasible budgets" `Quick
            test_sweep_skips_infeasible;
          Alcotest.test_case "order and fig2 goldens" `Quick
            test_sweep_order_and_goldens;
          Alcotest.test_case "trace forwarding and summaries" `Quick
            test_sweep_trace_and_summary;
        ] );
    ]
