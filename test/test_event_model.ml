(* Cross-check of the two independent schedule implementations: the
   interval-booking Cycle_model and the cycle-stepped Event_model must
   agree on every body schedule. *)

open Srfa_reuse
open Srfa_test_helpers
module Graph = Srfa_dfg.Graph
module Cycle_model = Srfa_sched.Cycle_model
module Event_model = Srfa_sched.Event_model

let latency = Srfa_hw.Latency.default

let setup nest =
  let an = Helpers.analyze nest in
  let dfg = Graph.build an in
  let ram_map =
    Srfa_hw.Ram_map.build Srfa_hw.Device.xcv1000 nest.Srfa_ir.Nest.arrays
  in
  (an, dfg, ram_map)

let both nest charged =
  let _, dfg, ram_map = setup nest in
  let model = Cycle_model.create ~dfg ~latency ~ram_map () in
  ( Cycle_model.makespan model ~charged,
    Event_model.makespan ~dfg ~latency ~ram_map ~charged () )

let test_agree_all_charged () =
  List.iter
    (fun (name, nest) ->
      let a, b = both nest (fun _ -> true) in
      Alcotest.(check int) (name ^ ": all charged") a b)
    (Helpers.small_kernels ())

let test_agree_none_charged () =
  List.iter
    (fun (name, nest) ->
      let a, b = both nest (fun _ -> false) in
      Alcotest.(check int) (name ^ ": all registers") a b)
    (Helpers.small_kernels ())

let test_agree_every_subset_on_example () =
  (* 5 groups: all 32 charged subsets. *)
  let nest = Helpers.example () in
  for mask = 0 to 31 do
    let charged (g : Group.t) = mask land (1 lsl g.Group.id) <> 0 in
    let a, b = both nest charged in
    Alcotest.(check int) (Printf.sprintf "mask %d" mask) a b
  done

let test_agree_single_bank () =
  List.iter
    (fun (name, nest) ->
      let an = Helpers.analyze nest in
      ignore an;
      let dfg = Graph.build (Helpers.analyze nest) in
      let ram_map =
        Srfa_hw.Ram_map.build_single_bank Srfa_hw.Device.xcv1000
          nest.Srfa_ir.Nest.arrays
      in
      let model = Cycle_model.create ~dfg ~latency ~ram_map () in
      let charged _ = true in
      Alcotest.(check int)
        (name ^ ": single bank")
        (Cycle_model.makespan model ~charged)
        (Event_model.makespan ~dfg ~latency ~ram_map ~charged ()))
    (Helpers.small_kernels ())

let test_agree_slow_ram () =
  let latency = Srfa_hw.Latency.make ~ram_access:3 () in
  List.iter
    (fun (name, nest) ->
      let dfg = Graph.build (Helpers.analyze nest) in
      let ram_map =
        Srfa_hw.Ram_map.build Srfa_hw.Device.xcv1000 nest.Srfa_ir.Nest.arrays
      in
      let model = Cycle_model.create ~dfg ~latency ~ram_map () in
      let charged _ = true in
      Alcotest.(check int)
        (name ^ ": ram latency 3")
        (Cycle_model.makespan model ~charged)
        (Event_model.makespan ~dfg ~latency ~ram_map ~charged ()))
    (Helpers.small_kernels ())

let prop_agree_random =
  QCheck.Test.make ~name:"models agree on random nests and charge sets"
    ~count:60
    QCheck.(pair Helpers.arbitrary_nest (int_bound 255))
    (fun (nest, mask) ->
      let charged (g : Group.t) = mask land (1 lsl (g.Group.id mod 8)) <> 0 in
      let a, b = both nest charged in
      a = b)

let () =
  Alcotest.run "event-model"
    [
      ( "cross-check",
        [
          Alcotest.test_case "all charged" `Quick test_agree_all_charged;
          Alcotest.test_case "none charged" `Quick test_agree_none_charged;
          Alcotest.test_case "all subsets (example)" `Quick
            test_agree_every_subset_on_example;
          Alcotest.test_case "single bank" `Quick test_agree_single_bank;
          Alcotest.test_case "slow ram" `Quick test_agree_slow_ram;
        ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest prop_agree_random ] );
    ]
