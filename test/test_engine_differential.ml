(* Differential proof that the Engine refactor changed no allocation: the
   pre-engine implementations of all five allocators, kept verbatim below
   (modulo the module prefixes), must produce bit-identical results —
   same beta, same pinned flag, same algorithm string — on every kernel,
   for every algorithm, across the budget grid {8, 16, 32, 64, 128}.
   Budgets below a kernel's feasibility minimum must raise
   Invalid_argument on both sides. *)

open Srfa_reuse
module Allocator = Srfa_core.Allocator
module Ordering = Srfa_core.Ordering

(* ------------------------------------------------------------------ *)
(* The legacy allocators, as they were before the Engine refactor.    *)
(* ------------------------------------------------------------------ *)
module Legacy = struct
  let fr_ra analysis ~budget =
    Ordering.check_budget analysis ~budget;
    let ngroups = Analysis.num_groups analysis in
    let entries = Array.make ngroups { Allocation.beta = 1; pinned = false } in
    let remaining = ref (budget - ngroups) in
    let try_assign (i : Analysis.info) =
      let need = i.Analysis.nu - 1 in
      if i.Analysis.has_reuse && need <= !remaining then begin
        entries.(i.Analysis.group.Group.id) <-
          { Allocation.beta = i.Analysis.nu; pinned = true };
        remaining := !remaining - need
      end
    in
    List.iter try_assign (Ordering.sorted_infos analysis);
    Allocation.make ~analysis ~budget ~algorithm:"fr-ra" entries

  let pr_ra analysis ~budget =
    let base = fr_ra analysis ~budget in
    let entries =
      Array.init (Analysis.num_groups analysis) (Allocation.entry base)
    in
    let leftover = ref (budget - Allocation.total_registers base) in
    let give (i : Analysis.info) =
      let gid = i.Analysis.group.Group.id in
      let e = entries.(gid) in
      if
        !leftover > 0 && i.Analysis.has_reuse
        && e.Allocation.beta < i.Analysis.nu
      then begin
        let extra = min !leftover (i.Analysis.nu - e.Allocation.beta) in
        entries.(gid) <-
          { Allocation.beta = e.Allocation.beta + extra; pinned = true };
        leftover := 0 (* only the first partial candidate benefits *)
      end
    in
    List.iter give (Ordering.sorted_infos analysis);
    Allocation.make ~analysis ~budget ~algorithm:"pr-ra" entries

  let cpa_ra ?(latency = Srfa_hw.Latency.default) ?(spend_leftover = false)
      analysis ~budget =
    let module Graph = Srfa_dfg.Graph in
    let module Critical = Srfa_dfg.Critical in
    let module Cut = Srfa_dfg.Cut in
    Ordering.check_budget analysis ~budget;
    let ngroups = Analysis.num_groups analysis in
    let betas = Array.make ngroups 1 in
    let remaining = ref (budget - ngroups) in
    let dfg = Graph.build analysis in
    let info gid = Analysis.info analysis gid in
    let charged (g : Group.t) =
      let i = info g.Group.id in
      (not i.Analysis.has_reuse) || betas.(g.Group.id) < i.Analysis.nu
    in
    let improvable (g : Group.t) =
      let i = info g.Group.id in
      i.Analysis.has_reuse && betas.(g.Group.id) < i.Analysis.nu
    in
    let need g = (info g.Group.id).Analysis.nu - betas.(g.Group.id) in
    let scratch = Critical.scratch dfg in
    let rec round () =
      if !remaining > 0 then begin
        let cg = Critical.make ~scratch dfg ~latency ~charged in
        let mem_len = Graph.memory_path_length dfg ~latency ~charged in
        if mem_len > 0 then begin
          match Cut.cheapest cg ~eligible:improvable ~weight:need with
          | None -> ()
          | Some (cut, req) ->
            if req <= !remaining then begin
              let fill g =
                betas.(g.Group.id) <- (info g.Group.id).Analysis.nu
              in
              List.iter fill cut;
              remaining := !remaining - req;
              round ()
            end
            else begin
              let share = !remaining / List.length cut in
              let progressed = ref false in
              if share > 0 then begin
                let top_up g =
                  let i = info g.Group.id in
                  let gid = g.Group.id in
                  let before = betas.(gid) in
                  betas.(gid) <- min i.Analysis.nu (before + share);
                  remaining := !remaining - (betas.(gid) - before);
                  if betas.(gid) > before then progressed := true
                in
                List.iter top_up cut
              end;
              if !progressed && !remaining > 0 then round ()
              else if not !progressed then
                (* Mirrors the CPA+ stranded-budget bugfix: only plain
                   CPA-RA declares the leftover unspendable; CPA+ hands it
                   to the spender below (see Cpa_ra.allocate_traced). *)
                if not spend_leftover then remaining := 0
            end
        end
      end
    in
    round ();
    if spend_leftover then begin
      let try_full (i : Analysis.info) =
        let gid = i.Analysis.group.Group.id in
        let need = i.Analysis.nu - betas.(gid) in
        if i.Analysis.has_reuse && need > 0 && need <= !remaining then begin
          betas.(gid) <- i.Analysis.nu;
          remaining := !remaining - need
        end
      in
      List.iter try_full (Ordering.sorted_infos analysis);
      let try_partial (i : Analysis.info) =
        let gid = i.Analysis.group.Group.id in
        if
          !remaining > 0 && i.Analysis.has_reuse
          && betas.(gid) < i.Analysis.nu
        then begin
          let extra = min !remaining (i.Analysis.nu - betas.(gid)) in
          betas.(gid) <- betas.(gid) + extra;
          remaining := !remaining - extra
        end
      in
      List.iter try_partial (Ordering.sorted_infos analysis)
    end;
    let entries =
      Array.map (fun beta -> { Allocation.beta; pinned = true }) betas
    in
    let algorithm = if spend_leftover then "cpa-ra+" else "cpa-ra" in
    Allocation.make ~analysis ~budget ~algorithm entries

  let knapsack analysis ~budget =
    Ordering.check_budget analysis ~budget;
    let ngroups = Analysis.num_groups analysis in
    let capacity = budget - ngroups in
    let items =
      Array.to_list analysis.Analysis.infos
      |> List.filter (fun (i : Analysis.info) ->
             i.Analysis.has_reuse && i.Analysis.saved_full > 0
             && i.Analysis.nu - 1 <= capacity)
    in
    let n = List.length items in
    let items = Array.of_list items in
    let best = Array.make_matrix (n + 1) (capacity + 1) 0 in
    let take = Array.make_matrix (n + 1) (capacity + 1) false in
    for k = n - 1 downto 0 do
      let i = items.(k) in
      let w = i.Analysis.nu - 1 and v = i.Analysis.saved_full in
      for c = 0 to capacity do
        let skip = best.(k + 1).(c) in
        let pick = if w <= c then v + best.(k + 1).(c - w) else -1 in
        if pick > skip then begin
          best.(k).(c) <- pick;
          take.(k).(c) <- true
        end
        else best.(k).(c) <- skip
      done
    done;
    let entries = Array.make ngroups { Allocation.beta = 1; pinned = false } in
    let c = ref capacity in
    for k = 0 to n - 1 do
      if take.(k).(!c) then begin
        let i = items.(k) in
        entries.(i.Analysis.group.Group.id) <-
          { Allocation.beta = i.Analysis.nu; pinned = true };
        c := !c - (i.Analysis.nu - 1)
      end
    done;
    Allocation.make ~analysis ~budget ~algorithm:"ks-ra" entries

  let run algorithm analysis ~budget =
    match algorithm with
    | Allocator.Fr_ra -> fr_ra analysis ~budget
    | Allocator.Pr_ra -> pr_ra analysis ~budget
    | Allocator.Cpa_ra -> cpa_ra analysis ~budget
    | Allocator.Cpa_plus -> cpa_ra ~spend_leftover:true analysis ~budget
    | Allocator.Knapsack -> knapsack analysis ~budget
    | Allocator.Portfolio ->
      (* Post-dates the engine refactor: there is no legacy portfolio to
         diff against (it is filtered out of the grid below). *)
      invalid_arg "no legacy portfolio"
end

(* The pre-engine snapshot covers the five original strategies; the
   certified portfolio was built after the refactor, directly on the
   engine, so it has no legacy twin to compare with. Its determinism
   under tracing is still checked below. *)
let diffable =
  List.filter (fun alg -> alg <> Allocator.Portfolio) Allocator.all

(* ------------------------------------------------------------------ *)

let budgets = [ 8; 16; 32; 64; 128 ]

let kernels () =
  ("example", Srfa_kernels.Kernels.example ()) :: Srfa_kernels.Kernels.all ()

let check_identical label legacy current =
  Alcotest.(check string)
    (label ^ ": algorithm")
    legacy.Allocation.algorithm current.Allocation.algorithm;
  let n = Analysis.num_groups legacy.Allocation.analysis in
  for gid = 0 to n - 1 do
    let l = Allocation.entry legacy gid and c = Allocation.entry current gid in
    Alcotest.(check int)
      (Printf.sprintf "%s: beta of group %d" label gid)
      l.Allocation.beta c.Allocation.beta;
    Alcotest.(check bool)
      (Printf.sprintf "%s: pinned of group %d" label gid)
      l.Allocation.pinned c.Allocation.pinned
  done

let test_differential () =
  List.iter
    (fun (name, nest) ->
      let an = Analysis.analyze nest in
      let minimum = Ordering.feasibility_minimum an in
      List.iter
        (fun budget ->
          List.iter
            (fun alg ->
              let label =
                Printf.sprintf "%s/%s/b=%d" name (Allocator.name alg) budget
              in
              if budget < minimum then begin
                let raises f =
                  try
                    ignore (f ());
                    false
                  with Invalid_argument _ -> true
                in
                Alcotest.(check bool)
                  (label ^ ": legacy rejects infeasible budget")
                  true
                  (raises (fun () -> Legacy.run alg an ~budget));
                Alcotest.(check bool)
                  (label ^ ": engine rejects infeasible budget")
                  true
                  (raises (fun () -> Allocator.run alg an ~budget))
              end
              else
                check_identical label
                  (Legacy.run alg an ~budget)
                  (Allocator.run alg an ~budget))
            diffable)
        budgets)
    (kernels ())

(* The engine must also be deterministic under tracing: running with a
   sink attached may not perturb the result. *)
let test_tracing_is_observational () =
  List.iter
    (fun (name, nest) ->
      let an = Analysis.analyze nest in
      List.iter
        (fun alg ->
          let sink, _events = Srfa_util.Trace.collector () in
          let plain = Allocator.run alg an ~budget:64 in
          let traced = Allocator.run ~trace:sink alg an ~budget:64 in
          check_identical
            (Printf.sprintf "%s/%s traced" name (Allocator.name alg))
            plain traced)
        Allocator.all)
    (kernels ())

let () =
  Alcotest.run "engine-differential"
    [
      ( "old vs new",
        [
          Alcotest.test_case "bit-identical allocations" `Quick
            test_differential;
          Alcotest.test_case "tracing is observational" `Quick
            test_tracing_is_observational;
        ] );
    ]
