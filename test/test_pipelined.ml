open Srfa_reuse
open Srfa_test_helpers
module Graph = Srfa_dfg.Graph
module Cycle_model = Srfa_sched.Cycle_model
module Simulator = Srfa_sched.Simulator

let latency = Srfa_hw.Latency.default

let model_of ?(single_bank = false) nest =
  let an = Helpers.analyze nest in
  let dfg = Graph.build an in
  let ram_map =
    if single_bank then
      Srfa_hw.Ram_map.build_single_bank Srfa_hw.Device.xcv1000
        nest.Srfa_ir.Nest.arrays
    else
      Srfa_hw.Ram_map.build Srfa_hw.Device.xcv1000 nest.Srfa_ir.Nest.arrays
  in
  (an, Cycle_model.create ~dfg ~latency ~ram_map ())

let test_ii_private_banks () =
  (* One access per array per iteration on dual-ported private banks:
     II = 1 whatever is charged. *)
  let _, model = model_of (Helpers.example ()) in
  Alcotest.(check int) "all charged" 1
    (Cycle_model.initiation_interval model ~charged:(fun _ -> true));
  Alcotest.(check int) "none charged" 1
    (Cycle_model.initiation_interval model ~charged:(fun _ -> false))

let test_ii_single_bank () =
  (* Example, single one-port bank, everything charged: b read + d store +
     d load is fused (one node) + e store -> 4 ref nodes but d appears
     once; accesses = a, b, c, d, e = 5. *)
  let _, model = model_of ~single_bank:true (Helpers.example ()) in
  Alcotest.(check int) "II = charged accesses" 5
    (Cycle_model.initiation_interval model ~charged:(fun _ -> true));
  (* Charging only two groups halves the pressure. *)
  let an = Helpers.analyze (Helpers.example ()) in
  let b = (Helpers.info_named an "b[k][j]").Analysis.group.Group.id in
  let e = (Helpers.info_named an "e[i][j][k]").Analysis.group.Group.id in
  let charged (g : Group.t) = g.Group.id = b || g.Group.id = e in
  Alcotest.(check int) "II = 2" 2
    (Cycle_model.initiation_interval model ~charged)

let test_ii_recurrence_floor () =
  (* FIR's accumulator carries y across iterations through one add:
     II >= 1 even with everything in registers; a slower combining op
     raises the floor. *)
  let slow_add =
    Srfa_hw.Latency.make
      ~binary:(function Srfa_ir.Op.Add -> 3 | _ -> 1)
      ()
  in
  let nest = Helpers.small_fir () in
  let an = Helpers.analyze nest in
  let dfg = Graph.build an in
  let ram_map =
    Srfa_hw.Ram_map.build Srfa_hw.Device.xcv1000 nest.Srfa_ir.Nest.arrays
  in
  let model = Cycle_model.create ~dfg ~latency:slow_add ~ram_map () in
  Alcotest.(check int) "recurrence floor" 3
    (Cycle_model.initiation_interval model ~charged:(fun _ -> false))

let test_pipelined_simulation_identity () =
  let nest = Helpers.example () in
  let an = Helpers.analyze nest in
  let alloc = Srfa_core.Allocator.run Srfa_core.Allocator.Cpa_ra an ~budget:64 in
  let config =
    { Simulator.default_config with Simulator.execution = Simulator.Pipelined }
  in
  let r = Simulator.run ~config alloc in
  (* II = 1 every iteration on private banks, plus one fill. *)
  Alcotest.(check int) "600 iterations at II 1 + fill" (600 + 1)
    r.Simulator.total_cycles

let test_pipelined_faster_than_serial () =
  List.iter
    (fun (name, nest) ->
      let an = Helpers.analyze nest in
      let alloc =
        Srfa_core.Allocator.run Srfa_core.Allocator.Fr_ra an ~budget:16
      in
      let cycles execution =
        let config = { Simulator.default_config with Simulator.execution } in
        (Simulator.run ~config alloc).Simulator.total_cycles
      in
      Alcotest.(check bool)
        (name ^ ": pipelined never slower")
        true
        (cycles Simulator.Pipelined <= cycles Simulator.Serial))
    (Helpers.small_kernels ())

let test_knapsack_regime () =
  (* Under pipelined single-port execution the access count is the cost,
     so the exact knapsack is at least as fast as FR-RA. *)
  let nest = Srfa_kernels.Kernels.fir ~taps:8 ~samples:64 () in
  let an = Helpers.analyze nest in
  let config =
    { Simulator.default_config with
      Simulator.execution = Simulator.Pipelined;
      ram_policy = Simulator.Single_bank;
    }
  in
  let cycles alg =
    let alloc = Srfa_core.Allocator.run alg an ~budget:12 in
    (Simulator.run ~config alloc).Simulator.total_cycles
  in
  Alcotest.(check bool) "ks <= fr under pipelined single-port" true
    (cycles Srfa_core.Allocator.Knapsack <= cycles Srfa_core.Allocator.Fr_ra)

let () =
  Alcotest.run "pipelined"
    [
      ( "initiation interval",
        [
          Alcotest.test_case "private banks" `Quick test_ii_private_banks;
          Alcotest.test_case "single bank" `Quick test_ii_single_bank;
          Alcotest.test_case "recurrence floor" `Quick
            test_ii_recurrence_floor;
        ] );
      ( "simulation",
        [
          Alcotest.test_case "identity on the example" `Quick
            test_pipelined_simulation_identity;
          Alcotest.test_case "never slower than serial" `Quick
            test_pipelined_faster_than_serial;
          Alcotest.test_case "knapsack regime" `Quick test_knapsack_regime;
        ] );
    ]
