(* PR-RA's single-partial-candidate rule (paper §2: "assign the remaining
   registers to the NEXT array reference in the sorted order" — singular),
   pinned as a dedicated regression test. The rule is documented at length
   in lib/core/pr_ra.ml; these tests pin the two facts that document
   relies on:

   1. PR-RA differs from FR-RA on AT MOST ONE group — the first group in
      benefit/cost order whose window FR-RA could not fully cover — and
      that group receives min(leftover, its residual need).

   2. The FR-RA invariant that makes the rule strand-free: after the
      greedy pass, every group FR-RA skipped needs strictly more than the
      final leftover (the budget only shrinks during the pass), so the
      single recipient always absorbs the whole leftover. *)

open Srfa_test_helpers
module Allocator = Srfa_core.Allocator
module Ordering = Srfa_core.Ordering
module Analysis = Srfa_reuse.Analysis
module Allocation = Srfa_reuse.Allocation

let budgets_for an =
  let minimum = Ordering.feasibility_minimum an in
  [ minimum; minimum + 3; minimum + 9; 32; 64; 128 ]
  |> List.filter (fun b -> b >= minimum)
  |> List.sort_uniq compare

let leftover_after_fr fr =
  let spent = Allocation.total_registers fr in
  fr.Allocation.budget - spent

(* Fact 1: one recipient, and it is the first partial candidate in the
   benefit/cost order; everything else is bit-identical to FR-RA. *)
let test_single_recipient () =
  List.iter
    (fun (name, nest) ->
      let an = Helpers.analyze nest in
      List.iter
        (fun budget ->
          let fr = Allocator.run Allocator.Fr_ra an ~budget in
          let pr = Allocator.run Allocator.Pr_ra an ~budget in
          let leftover = leftover_after_fr fr in
          let first_candidate =
            List.find_opt
              (fun (i : Analysis.info) ->
                i.Analysis.has_reuse
                && Allocation.beta fr i.Analysis.group.Srfa_reuse.Group.id
                   < i.Analysis.nu)
              (Ordering.sorted_infos an)
          in
          let diffs =
            List.filter
              (fun gid -> Allocation.beta pr gid <> Allocation.beta fr gid)
              (List.init (Analysis.num_groups an) Fun.id)
          in
          match (first_candidate, diffs) with
          | _ when leftover = 0 ->
            Alcotest.(check (list int))
              (Printf.sprintf "%s b=%d: no leftover, pr = fr" name budget)
              [] diffs
          | None, _ ->
            Alcotest.(check (list int))
              (Printf.sprintf "%s b=%d: no candidate, pr = fr" name budget)
              [] diffs
          | Some i, [ gid ] ->
            let cid = i.Analysis.group.Srfa_reuse.Group.id in
            Alcotest.(check int)
              (Printf.sprintf
                 "%s b=%d: the one changed group is the first sorted \
                  partial candidate"
                 name budget)
              cid gid;
            Alcotest.(check int)
              (Printf.sprintf "%s b=%d: it gets min(leftover, need)" name
                 budget)
              (min leftover (i.Analysis.nu - Allocation.beta fr gid))
              (Allocation.beta pr gid - Allocation.beta fr gid)
          | Some _, diffs ->
            Alcotest.failf "%s b=%d: %d groups changed, want exactly 1" name
              budget (List.length diffs))
        (budgets_for an))
    (("example", Helpers.example ()) :: Helpers.small_kernels ())

(* Fact 2: the FR-RA invariant. Every group with reuse that FR-RA left
   uncovered needs strictly more than the final leftover, hence the first
   candidate's grant always equals the whole leftover (never a prefix). *)
let test_fr_skip_invariant () =
  List.iter
    (fun (name, nest) ->
      let an = Helpers.analyze nest in
      List.iter
        (fun budget ->
          let fr = Allocator.run Allocator.Fr_ra an ~budget in
          let leftover = leftover_after_fr fr in
          List.iter
            (fun (i : Analysis.info) ->
              let gid = i.Analysis.group.Srfa_reuse.Group.id in
              if i.Analysis.has_reuse && Allocation.beta fr gid < i.Analysis.nu
              then
                Alcotest.(check bool)
                  (Printf.sprintf
                     "%s b=%d %s: skipped group needs more than the leftover"
                     name budget
                     (Srfa_reuse.Group.name i.Analysis.group))
                  true
                  (i.Analysis.nu - Allocation.beta fr gid > leftover))
            (Ordering.sorted_infos an))
        (budgets_for an))
    (("example", Helpers.example ()) :: Helpers.small_kernels ())

(* The paper's worked example, Fig. 2(c): at budget 64 FR-RA strands 11
   registers; PR-RA hands all 11 to d[i][k] (beta 1 -> 12) and changes
   nothing else. *)
let test_fig2_leftover_goes_to_d () =
  let an = Helpers.analyze (Helpers.example ()) in
  let fr = Allocator.run Allocator.Fr_ra an ~budget:64 in
  let pr = Allocator.run Allocator.Pr_ra an ~budget:64 in
  Alcotest.(check int) "fr strands 11" 11 (leftover_after_fr fr);
  Alcotest.(check int) "d gets the whole leftover" 12
    (Helpers.beta_named pr "d[i][k]");
  Alcotest.(check int) "d was at 1 under fr" 1
    (Helpers.beta_named fr "d[i][k]");
  List.iter
    (fun g ->
      Alcotest.(check int) (g ^ " unchanged") (Helpers.beta_named fr g)
        (Helpers.beta_named pr g))
    [ "a[k]"; "b[k][j]"; "c[j]"; "e[i][j][k]" ]

let () =
  Alcotest.run "pr-partial"
    [
      ( "single-partial-candidate rule",
        [
          Alcotest.test_case "one recipient, first in order" `Quick
            test_single_recipient;
          Alcotest.test_case "fr skip invariant (no stranding)" `Quick
            test_fr_skip_invariant;
          Alcotest.test_case "fig2: 11 leftover to d" `Quick
            test_fig2_leftover_goes_to_d;
        ] );
    ]
