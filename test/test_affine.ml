open Srfa_ir

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let lookup env v =
  match List.assoc_opt v env with Some x -> x | None -> raise Not_found

let test_const () =
  let a = Affine.const 5 in
  check_int "constant term" 5 (Affine.constant a);
  check_bool "is_const" true (Affine.is_const a);
  check_int "eval" 5 (Affine.eval a ~lookup:(lookup []))

let test_var () =
  let a = Affine.var "i" in
  check_int "coeff i" 1 (Affine.coeff a "i");
  check_int "coeff j" 0 (Affine.coeff a "j");
  check_bool "not const" false (Affine.is_const a);
  check_int "eval" 7 (Affine.eval a ~lookup:(lookup [ ("i", 7) ]))

let test_var_coeff () =
  let a = Affine.var ~coeff:4 "i" in
  check_int "coeff" 4 (Affine.coeff a "i");
  check_int "eval" 12 (Affine.eval a ~lookup:(lookup [ ("i", 3) ]))

let test_zero_coeff_normalised () =
  let a = Affine.var ~coeff:0 "i" in
  check_bool "zero-coefficient variable vanishes" true (Affine.is_const a);
  Alcotest.(check (list string)) "vars" [] (Affine.vars a)

let test_add () =
  let a = Affine.add (Affine.var "i") (Affine.var ~coeff:2 "j") in
  let a = Affine.add a (Affine.const 3) in
  check_int "eval i+2j+3" 10
    (Affine.eval a ~lookup:(lookup [ ("i", 1); ("j", 3) ]));
  Alcotest.(check (list string)) "vars sorted" [ "i"; "j" ] (Affine.vars a)

let test_add_cancels () =
  let a = Affine.add (Affine.var "i") (Affine.var ~coeff:(-1) "i") in
  check_bool "i - i = 0" true (Affine.is_const a);
  check_int "constant" 0 (Affine.constant a)

let test_sub () =
  let a = Affine.sub (Affine.var "i") (Affine.const 2) in
  check_int "eval i-2" 3 (Affine.eval a ~lookup:(lookup [ ("i", 5) ]))

let test_scale () =
  let a = Affine.scale 3 (Affine.add (Affine.var "i") (Affine.const 1)) in
  check_int "coeff" 3 (Affine.coeff a "i");
  check_int "const" 3 (Affine.constant a);
  let z = Affine.scale 0 a in
  check_bool "scale 0 is constant" true (Affine.is_const z);
  check_int "scale 0 value" 0 (Affine.constant z)

let test_equal () =
  let a = Affine.add (Affine.var "i") (Affine.var "j") in
  let b = Affine.add (Affine.var "j") (Affine.var "i") in
  check_bool "commutative equality" true (Affine.equal a b);
  check_bool "differs from i+2j" false
    (Affine.equal a (Affine.add (Affine.var "i") (Affine.var ~coeff:2 "j")));
  check_int "compare equal" 0 (Affine.compare a b)

let test_pp () =
  let s x = Affine.to_string x in
  Alcotest.(check string) "const" "7" (s (Affine.const 7));
  Alcotest.(check string) "var" "i" (s (Affine.var "i"));
  Alcotest.(check string) "coeff" "3*i" (s (Affine.var ~coeff:3 "i"));
  Alcotest.(check string) "sum" "i+j" (s (Affine.add (Affine.var "i") (Affine.var "j")));
  Alcotest.(check string) "with const" "i+2"
    (s (Affine.add (Affine.var "i") (Affine.const 2)));
  Alcotest.(check string) "negative" "-i"
    (s (Affine.var ~coeff:(-1) "i"))

let prop_eval_linear =
  QCheck.Test.make ~name:"eval is linear in the environment" ~count:200
    QCheck.(triple (int_bound 10) (int_bound 10) (int_bound 10))
    (fun (ci, cj, k) ->
      let a =
        Affine.add
          (Affine.add (Affine.var ~coeff:ci "i") (Affine.var ~coeff:cj "j"))
          (Affine.const k)
      in
      let env i j v = lookup [ ("i", i); ("j", j) ] v in
      Affine.eval a ~lookup:(env 2 3) = (2 * ci) + (3 * cj) + k)

let prop_add_commutes =
  QCheck.Test.make ~name:"add commutes" ~count:200
    QCheck.(pair (int_bound 20) (int_bound 20))
    (fun (x, y) ->
      let a = Affine.var ~coeff:x "i" and b = Affine.var ~coeff:y "j" in
      Affine.equal (Affine.add a b) (Affine.add b a))

let () =
  Alcotest.run "affine"
    [
      ( "unit",
        [
          Alcotest.test_case "const" `Quick test_const;
          Alcotest.test_case "var" `Quick test_var;
          Alcotest.test_case "var with coeff" `Quick test_var_coeff;
          Alcotest.test_case "zero coeff normalised" `Quick
            test_zero_coeff_normalised;
          Alcotest.test_case "add" `Quick test_add;
          Alcotest.test_case "add cancels" `Quick test_add_cancels;
          Alcotest.test_case "sub" `Quick test_sub;
          Alcotest.test_case "scale" `Quick test_scale;
          Alcotest.test_case "equality" `Quick test_equal;
          Alcotest.test_case "pretty printing" `Quick test_pp;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_eval_linear;
          QCheck_alcotest.to_alcotest prop_add_commutes;
        ] );
    ]
