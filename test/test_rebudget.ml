(* Dynamic re-budgeting (DESIGN.md §16), as tests:

   - Engine.rebudget's accounting: shrink reclaims exactly the deficit,
     cheapest-loss-first with partial windows sacrificed before full
     ones; grow credits headroom without touching entries;
   - the pinned-shrink rule (ISSUE 9 satellite): a budget below the
     feasibility minimum clamps there and degrades gracefully — spill,
     trace events, W-GUARD-REBUDGET warning — instead of raising;
   - Flow.Core's session layer: memoized revisits, re-spent grows, the
     clamp warning, and replay shape;
   - the correctness spine: a fuzzed differential campaign (>= 200
     event streams, >= 2000 events, seed 42) asserting after EVERY
     event that the incremental allocation is coverage-equivalent to a
     from-scratch run at the same budget — never worse than either
     greedy baseline (the certified envelope, re-verified here by
     independent simulation), legal under the effective budget, and
     correctly clamped. Failures print a minimised reproducer. *)

open Srfa_reuse
open Srfa_test_helpers
module Allocator = Srfa_core.Allocator
module Certify = Srfa_core.Certify
module Diag = Srfa_util.Diag
module Engine = Srfa_core.Engine
module Flow = Srfa_core.Flow
module Gen = Srfa_fuzzer.Gen
module Simulator = Srfa_sched.Simulator
module Trace = Srfa_util.Trace

let config = Flow.default_config
let cycles alloc = (Simulator.run alloc).Simulator.total_cycles
let minimum an = Srfa_core.Ordering.feasibility_minimum an

let has_warning code warnings =
  List.exists (fun (d : Diag.t) -> d.Diag.code = code) warnings

(* ---- Engine.rebudget unit tests -------------------------------------- *)

let test_engine_shrink_accounting () =
  let an = Helpers.analyze (Helpers.small_fir ()) in
  let m = minimum an in
  let alloc = Allocator.run Allocator.Pr_ra an ~budget:24 in
  let before = Allocation.total_registers alloc in
  let eng = Engine.of_allocation alloc in
  let outcome = Engine.rebudget eng ~budget:12 in
  Alcotest.(check int) "requested" 12 outcome.Engine.requested;
  Alcotest.(check int) "effective" 12 outcome.Engine.effective;
  Alcotest.(check bool) "not clamped" false outcome.Engine.clamped;
  Alcotest.(check bool) "minimum fits" true (m <= 12);
  Alcotest.(check int) "budget updated" 12 (Engine.budget eng);
  Alcotest.(check bool) "no overdraft" true (Engine.remaining eng >= 0);
  let after = Engine.finalize ~pin_all:true eng ~algorithm:"test" in
  Alcotest.(check int) "freed = drop in spent registers"
    (before - Allocation.total_registers after)
    outcome.Engine.freed;
  Alcotest.(check bool) "fits the shrunk budget" true
    (Allocation.total_registers after <= 12)

let test_engine_grow_credits_headroom () =
  let an = Helpers.analyze (Helpers.small_fir ()) in
  let alloc = Allocator.run Allocator.Pr_ra an ~budget:12 in
  let spent = Allocation.total_registers alloc in
  let eng = Engine.of_allocation alloc in
  let outcome = Engine.rebudget eng ~budget:64 in
  Alcotest.(check int) "nothing freed on grow" 0 outcome.Engine.freed;
  Alcotest.(check int) "headroom credited" (64 - spent) (Engine.remaining eng);
  let after = Engine.finalize ~pin_all:true eng ~algorithm:"test" in
  Alcotest.(check int) "entries untouched by the grow" spent
    (Allocation.total_registers after)

(* The satellite regression: shrinking below the pinned feasibility
   minimum must not raise — the budget clamps at one register per group,
   every entry spills to beta 1, and the degradation is announced as
   trace events (repair.reclaim per spill, engine.rebudget with
   clamped=true). *)
let test_engine_clamp_below_minimum () =
  let an = Helpers.analyze (Helpers.small_fir ()) in
  let m = minimum an in
  let alloc = Allocator.run Allocator.Pr_ra an ~budget:24 in
  let sink, events = Trace.collector () in
  let eng = Engine.of_allocation ~trace:sink alloc in
  let outcome = Engine.rebudget eng ~budget:1 in
  Alcotest.(check bool) "clamped" true outcome.Engine.clamped;
  Alcotest.(check int) "clamped at the minimum" m outcome.Engine.effective;
  Alcotest.(check int) "budget is the minimum" m (Engine.budget eng);
  let after = Engine.finalize ~pin_all:true eng ~algorithm:"test" in
  Alcotest.(check int) "one register per group" m
    (Allocation.total_registers after);
  Array.iteri
    (fun gid _ ->
      Alcotest.(check int)
        (Printf.sprintf "group %d at beta 1" gid)
        1
        (Allocation.beta after gid))
    an.Analysis.infos;
  let names = List.map (fun (e : Trace.event) -> e.Trace.name) (events ()) in
  Alcotest.(check bool) "engine.rebudget traced" true
    (List.mem "engine.rebudget" names);
  Alcotest.(check bool) "repair.reclaim traced" true
    (List.mem "repair.reclaim" names)

(* Cheapest-loss-first: a partial cut share (beta < nu) is sacrificed
   before any full reuse window. PR-RA tops its last group up partially
   whenever the budget does not land on a window boundary, which gives a
   deterministic victim to watch. *)
let test_engine_shrink_prefers_partial () =
  let an = Helpers.analyze (Helpers.small_mat ()) in
  let partial_of alloc =
    let found = ref None in
    Array.iteri
      (fun gid (i : Analysis.info) ->
        let b = Allocation.beta alloc gid in
        if b > 1 && b < i.Analysis.nu then found := Some gid)
      an.Analysis.infos;
    !found
  in
  let victim =
    List.fold_left
      (fun acc budget ->
        match acc with
        | Some _ -> acc
        | None when budget < minimum an -> None
        | None ->
          let alloc = Allocator.run Allocator.Pr_ra an ~budget in
          (match partial_of alloc with
          | Some gid -> Some (alloc, gid)
          | None -> None))
      None
      [ 6; 8; 10; 12; 16; 20; 24 ]
  in
  match victim with
  | None -> Alcotest.fail "no PR-RA budget produced a partial entry"
  | Some (alloc, gid) ->
    let eng = Engine.of_allocation alloc in
    let before = Engine.beta eng gid in
    let _ =
      Engine.rebudget eng ~budget:(Allocation.total_registers alloc - 1)
    in
    Alcotest.(check int) "the partial entry paid for the shrink"
      (before - 1) (Engine.beta eng gid)

(* ---- Flow.Core session tests ------------------------------------------ *)

let test_flow_session () =
  let prepared = Flow.Core.prepare (Helpers.small_fir ()) in
  let m = prepared.Flow.Core.minimum in
  let session, first =
    Flow.Core.rebudget_start config prepared ~budget:32
  in
  Alcotest.(check int) "opens at the requested budget" 32
    first.Flow.Core.effective;
  Alcotest.(check bool) "bootstrap is not memoized" false
    first.Flow.Core.memoized;
  let spent = Allocation.total_registers first.Flow.Core.allocation in
  Alcotest.(check bool) "fixture spends past the minimum" true (spent > m);
  let shrink = Flow.Core.rebudget_step session ~budget:m in
  Alcotest.(check int) "shrink freed the excess" (spent - m)
    shrink.Flow.Core.freed;
  Alcotest.(check bool) "shrink fits" true
    (Allocation.total_registers shrink.Flow.Core.allocation <= m);
  Alcotest.(check string) "certified label" Certify.algorithm_name
    shrink.Flow.Core.allocation.Allocation.algorithm;
  let grow = Flow.Core.rebudget_step session ~budget:64 in
  Alcotest.(check bool) "grow frees nothing" true (grow.Flow.Core.freed = 0);
  Alcotest.(check bool) "grow never costs cycles" true
    (grow.Flow.Core.report.Srfa_estimate.Report.cycles
    <= shrink.Flow.Core.report.Srfa_estimate.Report.cycles);
  let revisit = Flow.Core.rebudget_step session ~budget:m in
  Alcotest.(check bool) "revisit is memoized" true
    revisit.Flow.Core.memoized;
  Alcotest.(check bool) "memo returns the same report" true
    (revisit.Flow.Core.report == shrink.Flow.Core.report);
  Alcotest.(check bool) "memo restores the live allocation" true
    (Flow.Core.rebudget_current session == shrink.Flow.Core.allocation);
  let starved = Flow.Core.rebudget_step session ~budget:1 in
  Alcotest.(check bool) "starved event clamps" true
    starved.Flow.Core.clamped;
  Alcotest.(check int) "clamped at the minimum" m
    starved.Flow.Core.effective;
  Alcotest.(check bool) "W-GUARD-REBUDGET raised" true
    (has_warning "W-GUARD-REBUDGET" starved.Flow.Core.warnings)

let test_flow_replay_shape () =
  let prepared = Flow.Core.prepare (Helpers.example ()) in
  let events = [ 8; 16; 8; 2; 16 ] in
  let steps = Flow.Core.rebudget config prepared ~initial:16 ~events in
  Alcotest.(check int) "one step per event plus the bootstrap"
    (1 + List.length events)
    (List.length steps);
  List.iteri
    (fun k (s : Flow.Core.rebudget_step) ->
      Alcotest.(check int)
        (Printf.sprintf "step %d echoes its request" k)
        (if k = 0 then 16 else List.nth events (k - 1))
        s.Flow.Core.requested)
    steps

(* ---- the differential campaign ---------------------------------------- *)

let campaign_seed = 42
let campaign_streams = 220

(* Budget-independent state, paid once per kernel for the whole
   campaign: the prepared kernel, a warm simulator scratch, and a
   memo of from-scratch comparator points keyed by effective budget
   (the fuzzer draws budgets from a small ladder, so the expensive
   from-scratch runs collapse to ~a dozen per kernel). *)
type comparator_point = {
  fr_cycles : int;
  pr_cycles : int;
  scratch_cycles : int;  (** from-scratch certified portfolio *)
}

type kernel_state = {
  ks_prepared : Flow.Core.prepared;
  ks_scratch : Simulator.scratch;
  ks_points : (int, comparator_point) Hashtbl.t;
}

let kernel_states : (string, kernel_state) Hashtbl.t = Hashtbl.create 8

let kernel_state name =
  match Hashtbl.find_opt kernel_states name with
  | Some ks -> ks
  | None ->
    let nest =
      match Srfa_kernels.Kernels.find name with
      | Some n -> n
      | None -> Alcotest.failf "stream references unknown kernel %s" name
    in
    let prepared = Flow.Core.prepare nest in
    let ks =
      {
        ks_prepared = prepared;
        ks_scratch = Flow.Core.scratch ~config prepared;
        ks_points = Hashtbl.create 16;
      }
    in
    Hashtbl.add kernel_states name ks;
    ks

let comparator ks ~effective =
  match Hashtbl.find_opt ks.ks_points effective with
  | Some p -> p
  | None ->
    let an = ks.ks_prepared.Flow.Core.analysis in
    let sim alloc =
      (Simulator.run ~scratch:ks.ks_scratch alloc).Simulator.total_cycles
    in
    let fr = Allocator.run Allocator.Fr_ra an ~budget:effective in
    let pr = Allocator.run Allocator.Pr_ra an ~budget:effective in
    let outcome =
      Allocator.run_portfolio ~prepared:ks.ks_prepared.Flow.Core.cpa
        ~sim_scratch:ks.ks_scratch an ~budget:effective
    in
    let p =
      {
        fr_cycles = sim fr;
        pr_cycles = sim pr;
        scratch_cycles = sim outcome.Certify.allocation;
      }
    in
    Hashtbl.add ks.ks_points effective p;
    p

(* Replay one stream, checking every step against the from-scratch
   comparator. Returns the violations as (event index, message) pairs;
   event index -1 is the bootstrap point. [deep] additionally re-simulates
   the incremental allocation instead of trusting its report (slower;
   the campaign samples it on the first few streams). *)
let replay ?(deep = false) (s : Gen.stream) =
  let ks = kernel_state s.Gen.kernel in
  let m = ks.ks_prepared.Flow.Core.minimum in
  let violations = ref [] in
  let fail idx fmt =
    Printf.ksprintf (fun msg -> violations := (idx, msg) :: !violations) fmt
  in
  let check_step idx target (step : Flow.Core.rebudget_step) =
    let eff = step.Flow.Core.effective in
    if eff <> max target m then
      fail idx "effective %d, expected max(%d, minimum %d)" eff target m;
    if step.Flow.Core.clamped <> (target < m) then
      fail idx "clamped flag %b disagrees with target %d vs minimum %d"
        step.Flow.Core.clamped target m;
    if step.Flow.Core.clamped
       && not (has_warning "W-GUARD-REBUDGET" step.Flow.Core.warnings)
    then fail idx "clamped step carries no W-GUARD-REBUDGET warning";
    let alloc = step.Flow.Core.allocation in
    if alloc.Allocation.budget <> eff then
      fail idx "allocation budget %d under effective %d"
        alloc.Allocation.budget eff;
    if Allocation.total_registers alloc > eff then
      fail idx "allocation spends %d registers over budget %d"
        (Allocation.total_registers alloc)
        eff;
    let p = comparator ks ~effective:eff in
    let bar = min p.fr_cycles p.pr_cycles in
    let inc_cycles =
      if deep then
        (Simulator.run ~scratch:ks.ks_scratch alloc).Simulator.total_cycles
      else step.Flow.Core.report.Srfa_estimate.Report.cycles
    in
    if deep
       && inc_cycles <> step.Flow.Core.report.Srfa_estimate.Report.cycles
    then
      fail idx "report says %d cycles but the simulator says %d"
        step.Flow.Core.report.Srfa_estimate.Report.cycles inc_cycles;
    if inc_cycles > bar then
      fail idx
        "incremental %d cycles loses to the greedy bar %d (fr %d, pr %d)"
        inc_cycles bar p.fr_cycles p.pr_cycles;
    if p.scratch_cycles > bar then
      fail idx "from-scratch portfolio %d cycles loses to its own bar %d"
        p.scratch_cycles bar
  in
  let session, first =
    Flow.Core.rebudget_start ~sim_scratch:ks.ks_scratch config
      ks.ks_prepared ~budget:s.Gen.initial
  in
  check_step (-1) s.Gen.initial first;
  List.iteri
    (fun k target ->
      check_step k target (Flow.Core.rebudget_step session ~budget:target))
    s.Gen.events;
  List.rev !violations

(* Greedy event-list minimisation: drop events one at a time while the
   stream still fails, then report the survivor as the reproducer. *)
let minimise (s : Gen.stream) =
  let still_fails events = replay { s with Gen.events } <> [] in
  let rec shrink events =
    let n = List.length events in
    let rec try_drop k =
      if k >= n then events
      else
        let dropped = List.filteri (fun i _ -> i <> k) events in
        if still_fails dropped then shrink dropped else try_drop (k + 1)
    in
    try_drop 0
  in
  if still_fails s.Gen.events then { s with Gen.events = shrink s.Gen.events }
  else s

let describe (s : Gen.stream) =
  Printf.sprintf "seed=%d id=%d kernel=%s initial=%d events=[%s]"
    campaign_seed s.Gen.stream_id s.Gen.kernel s.Gen.initial
    (String.concat "; " (List.map string_of_int s.Gen.events))

let test_campaign () =
  let total_events = ref 0 in
  let failure = ref None in
  for id = 0 to campaign_streams - 1 do
    if !failure = None then begin
      let s = Gen.generate_stream ~seed:campaign_seed ~id in
      total_events := !total_events + 1 + List.length s.Gen.events;
      match replay ~deep:(id < 3) s with
      | [] -> ()
      | violations -> failure := Some (s, violations)
    end
  done;
  (match !failure with
  | None -> ()
  | Some (s, violations) ->
    let minimal = minimise s in
    Alcotest.failf
      "rebudget differential violated on stream %s\n%s\nreproducer: %s"
      (describe s)
      (String.concat "\n"
         (List.map
            (fun (idx, msg) -> Printf.sprintf "  event %d: %s" idx msg)
            violations))
      (describe minimal));
  Alcotest.(check bool)
    (Printf.sprintf "campaign covered %d events (>= 2000)" !total_events)
    true
    (!total_events >= 2000)

(* The incremental path must agree with the from-scratch sweep's
   certified portfolio on the never-worse contract's fast path too:
   when the live allocation covers PR-RA pointwise, no simulation is
   needed to certify it. This pins the coverage relation the campaign's
   cycle comparison rests on. *)
let test_coverage_fast_path () =
  let prepared = Flow.Core.prepare (Helpers.small_fir ()) in
  let an = prepared.Flow.Core.analysis in
  let session, _ = Flow.Core.rebudget_start config prepared ~budget:64 in
  let step = Flow.Core.rebudget_step session ~budget:16 in
  let pr = Allocator.run Allocator.Pr_ra an ~budget:16 in
  if Certify.covers step.Flow.Core.allocation pr then
    Alcotest.(check bool) "coverage implies never-worse" true
      (cycles step.Flow.Core.allocation <= cycles pr)
  else
    Alcotest.(check bool) "no coverage, still never-worse" true
      (cycles step.Flow.Core.allocation <= cycles pr)

let () =
  Alcotest.run "rebudget"
    [
      ( "engine",
        [
          Alcotest.test_case "shrink accounting" `Quick
            test_engine_shrink_accounting;
          Alcotest.test_case "grow credits headroom" `Quick
            test_engine_grow_credits_headroom;
          Alcotest.test_case "clamp below minimum (regression)" `Quick
            test_engine_clamp_below_minimum;
          Alcotest.test_case "shrink prefers partial entries" `Quick
            test_engine_shrink_prefers_partial;
        ] );
      ( "flow",
        [
          Alcotest.test_case "session steps" `Quick test_flow_session;
          Alcotest.test_case "replay shape" `Quick test_flow_replay_shape;
          Alcotest.test_case "coverage fast path" `Quick
            test_coverage_fast_path;
        ] );
      ( "differential",
        [ Alcotest.test_case "fuzzed campaign" `Slow test_campaign ] );
    ]
