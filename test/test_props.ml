(* Property-based tests over randomly generated nests (see
   Helpers.arbitrary_nest): the invariants that must hold for *any* affine
   kernel, not just the paper's six. *)

open Srfa_reuse
open Srfa_test_helpers
module Allocator = Srfa_core.Allocator

let arbitrary = Helpers.arbitrary_nest

let budget_for an extra = Srfa_core.Ordering.feasibility_minimum an + extra

(* Every allocator respects its budget and keeps feasibility registers. *)
let prop_allocators_respect_budget =
  QCheck.Test.make ~name:"allocations within budget, beta >= 1" ~count:60
    arbitrary (fun nest ->
      let an = Analysis.analyze nest in
      List.for_all
        (fun alg ->
          let budget = budget_for an 10 in
          let alloc = Allocator.run alg an ~budget in
          Allocation.total_registers alloc <= budget
          && List.for_all
               (fun gid -> Allocation.beta alloc gid >= 1)
               (List.init (Analysis.num_groups an) Fun.id))
        Allocator.all)

(* FR-RA allocates all-or-nothing. *)
let prop_fr_all_or_nothing =
  QCheck.Test.make ~name:"fr-ra gives nu or 1" ~count:60 arbitrary
    (fun nest ->
      let an = Analysis.analyze nest in
      let alloc = Allocator.run Allocator.Fr_ra an ~budget:(budget_for an 15) in
      List.for_all
        (fun gid ->
          let beta = Allocation.beta alloc gid in
          beta = 1 || beta = (Analysis.info an gid).Analysis.nu)
        (List.init (Analysis.num_groups an) Fun.id))

(* At most one group differs between PR and FR, and never downward. *)
let prop_pr_adds_to_one_group =
  QCheck.Test.make ~name:"pr-ra extends fr-ra on exactly one group" ~count:60
    arbitrary (fun nest ->
      let an = Analysis.analyze nest in
      let budget = budget_for an 7 in
      let fr = Allocator.run Allocator.Fr_ra an ~budget in
      let pr = Allocator.run Allocator.Pr_ra an ~budget in
      let diffs =
        List.filter
          (fun gid -> Allocation.beta pr gid <> Allocation.beta fr gid)
          (List.init (Analysis.num_groups an) Fun.id)
      in
      List.length diffs <= 1
      && List.for_all
           (fun gid -> Allocation.beta pr gid > Allocation.beta fr gid)
           diffs)

(* The analysis quantities are internally consistent. *)
let prop_analysis_consistent =
  QCheck.Test.make ~name:"analysis invariants" ~count:60 arbitrary
    (fun nest ->
      let an = Analysis.analyze nest in
      let iterations = Srfa_ir.Nest.iterations nest in
      Array.for_all
        (fun (i : Analysis.info) ->
          i.Analysis.nu >= 1
          && i.Analysis.distinct <= i.Analysis.accesses
          && i.Analysis.accesses = iterations
          && i.Analysis.saved_full >= 0
          && i.Analysis.saved_full <= i.Analysis.accesses
          && (i.Analysis.has_reuse || i.Analysis.nu = 1))
        an.Analysis.infos)

(* The scalar-replacement transform preserves semantics under every
   algorithm — the strongest whole-pipeline property. *)
let prop_transform_equivalent =
  QCheck.Test.make ~name:"transform preserves semantics" ~count:40 arbitrary
    (fun nest ->
      let an = Analysis.analyze nest in
      List.for_all
        (fun alg ->
          let alloc = Allocator.run alg an ~budget:(budget_for an 6) in
          let plan = Srfa_codegen.Plan.build alloc in
          Srfa_codegen.Exec_check.equivalent plan ~init:Helpers.init)
        Allocator.all)

(* Simulator identities. *)
let prop_simulator_identities =
  QCheck.Test.make ~name:"simulator cycle identities" ~count:40 arbitrary
    (fun nest ->
      let an = Analysis.analyze nest in
      let alloc = Allocator.run Allocator.Cpa_ra an ~budget:(budget_for an 8) in
      let r = Srfa_sched.Simulator.run alloc in
      r.Srfa_sched.Simulator.total_cycles
      = r.Srfa_sched.Simulator.compute_cycles
        + r.Srfa_sched.Simulator.memory_cycles
        + r.Srfa_sched.Simulator.control_cycles
      && r.Srfa_sched.Simulator.memory_cycles >= 0
      && r.Srfa_sched.Simulator.iterations = Srfa_ir.Nest.iterations nest)

(* More registers never slow FR-RA down (its choices grow monotonically). *)
let prop_fr_monotone_in_budget =
  QCheck.Test.make ~name:"fr-ra cycles monotone in budget" ~count:30 arbitrary
    (fun nest ->
      let an = Analysis.analyze nest in
      let cycles extra =
        let alloc =
          Allocator.run Allocator.Fr_ra an ~budget:(budget_for an extra)
        in
        (Srfa_sched.Simulator.run alloc).Srfa_sched.Simulator.total_cycles
      in
      cycles 20 <= cycles 5)

(* A fully-funded FR allocation eliminates all eliminable memory. (CPA-RA
   may decline to spend: when some critical path carries no removable
   memory access, covering the others cannot shorten the schedule — the
   paper's rationale for cut-wise allocation.) *)
let prop_full_budget_leaves_only_no_reuse =
  QCheck.Test.make ~name:"full budget leaves only no-reuse traffic" ~count:30
    arbitrary (fun nest ->
      let an = Analysis.analyze nest in
      let budget = Analysis.total_registers_full an + 4 in
      let alloc = Allocator.run Allocator.Fr_ra an ~budget in
      let r = Srfa_sched.Simulator.run alloc in
      let no_reuse gid = not (Analysis.info an gid).Analysis.has_reuse in
      Array.for_all Fun.id
        (Array.mapi
           (fun gid accesses -> accesses = 0 || no_reuse gid)
           r.Srfa_sched.Simulator.group_ram_accesses))

(* The residency tracker never reports a rank below zero or residency for
   an unpinned entry. *)
let prop_tracker_sane =
  QCheck.Test.make ~name:"tracker ranks sane" ~count:30 arbitrary
    (fun nest ->
      let an = Analysis.analyze nest in
      let tr = Analysis.Tracker.create an in
      let ok = ref true in
      Srfa_ir.Iterspace.iter nest (fun point ->
          Analysis.Tracker.step tr point;
          for gid = 0 to Analysis.num_groups an - 1 do
            let rank = Analysis.Tracker.slot_rank tr gid in
            if rank < 0 then ok := false;
            if Analysis.Tracker.resident tr gid ~beta:1000000 ~pinned:false
            then ok := false
          done);
      !ok)

(* Critical-graph and cut invariants on random nests. *)
let prop_critical_and_cuts =
  QCheck.Test.make ~name:"critical graph and cut invariants" ~count:40
    arbitrary (fun nest ->
      let an = Analysis.analyze nest in
      let dfg = Srfa_dfg.Graph.build an in
      let latency = Srfa_hw.Latency.default in
      let charged _ = true in
      let cg = Srfa_dfg.Critical.make dfg ~latency ~charged in
      let len_ok =
        Srfa_dfg.Critical.length cg
        = Srfa_dfg.Graph.path_length dfg ~latency ~charged
      in
      let cuts = Srfa_dfg.Cut.enumerate_exhaustive cg in
      let all_are_cuts =
        List.for_all (fun cut -> Srfa_dfg.Cut.is_cut cg cut) cuts
      in
      let all_minimal =
        List.for_all
          (fun cut ->
            List.for_all
              (fun g ->
                not
                  (Srfa_dfg.Cut.is_cut cg
                     (List.filter
                        (fun x -> x.Group.id <> g.Group.id)
                        cut)))
              cut)
          cuts
      in
      len_ok && all_are_cuts && all_minimal)

(* Printing a nest in the surface DSL and reparsing preserves both the
   analysis and the computed values. *)
let prop_frontend_roundtrip =
  QCheck.Test.make ~name:"frontend print/parse roundtrip" ~count:40 arbitrary
    (fun nest ->
      let reparsed = Srfa_frontend.Parser.parse (Srfa_frontend.Parser.print nest) in
      let a1 = Analysis.analyze nest and a2 = Analysis.analyze reparsed in
      let analyses_agree =
        Analysis.num_groups a1 = Analysis.num_groups a2
        && Array.for_all2
             (fun (i1 : Analysis.info) (i2 : Analysis.info) ->
               i1.Analysis.nu = i2.Analysis.nu
               && i1.Analysis.saved_full = i2.Analysis.saved_full)
             a1.Analysis.infos a2.Analysis.infos
      in
      let s1 = Srfa_ir.Interp.run_fresh nest ~init:Helpers.init in
      let s2 = Srfa_ir.Interp.run_fresh reparsed ~init:Helpers.init in
      analyses_agree
      && List.for_all
           (fun (d : Srfa_ir.Decl.t) ->
             Srfa_ir.Interp.equal_array s1 s2 d.Srfa_ir.Decl.name)
           nest.Srfa_ir.Nest.arrays)

(* Strip-mining composes with the whole pipeline: a tiled random nest still
   passes transform equivalence under every allocator. *)
let prop_tiled_transform_equivalent =
  QCheck.Test.make ~name:"tiled nests keep transform equivalence" ~count:25
    QCheck.(pair arbitrary (int_bound 100))
    (fun (nest, salt) ->
      let depth = Srfa_ir.Nest.depth nest in
      let level = salt mod depth in
      match Srfa_ir.Tile.tileable_factors nest ~level with
      | [] -> true
      | factors ->
        let factor = List.nth factors (salt mod List.length factors) in
        let tiled = Srfa_ir.Tile.tile nest ~level ~factor in
        let an = Analysis.analyze tiled in
        List.for_all
          (fun alg ->
            let alloc = Allocator.run alg an ~budget:(budget_for an 6) in
            let plan = Srfa_codegen.Plan.build alloc in
            Srfa_codegen.Exec_check.equivalent plan ~init:Helpers.init)
          [ Allocator.Fr_ra; Allocator.Cpa_ra ])

(* The cost histogram is an exact decomposition of the simulated run. *)
let prop_profile_decomposes_run =
  QCheck.Test.make ~name:"profile histogram matches run totals" ~count:30
    arbitrary (fun nest ->
      let an = Analysis.analyze nest in
      let alloc = Allocator.run Allocator.Pr_ra an ~budget:(budget_for an 5) in
      let r = Srfa_sched.Simulator.run alloc in
      let hist = Srfa_sched.Simulator.profile alloc in
      List.fold_left (fun acc (_, n) -> acc + n) 0 hist
      = r.Srfa_sched.Simulator.iterations
      && List.fold_left (fun acc (c, n) -> acc + (c * n)) 0 hist
         = r.Srfa_sched.Simulator.total_cycles)

(* Interpreting twice with the same inputs is deterministic. *)
let prop_interp_deterministic =
  QCheck.Test.make ~name:"interpreter deterministic" ~count:30 arbitrary
    (fun nest ->
      let s1 = Srfa_ir.Interp.run_fresh nest ~init:Helpers.init in
      let s2 = Srfa_ir.Interp.run_fresh nest ~init:Helpers.init in
      List.for_all
        (fun (d : Srfa_ir.Decl.t) ->
          Srfa_ir.Interp.equal_array s1 s2 d.Srfa_ir.Decl.name)
        nest.Srfa_ir.Nest.arrays)

let () =
  Alcotest.run "properties"
    [
      ( "qcheck",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_allocators_respect_budget;
            prop_fr_all_or_nothing;
            prop_pr_adds_to_one_group;
            prop_analysis_consistent;
            prop_transform_equivalent;
            prop_simulator_identities;
            prop_fr_monotone_in_budget;
            prop_full_budget_leaves_only_no_reuse;
            prop_tracker_sane;
            prop_critical_and_cuts;
            prop_frontend_roundtrip;
            prop_tiled_transform_equivalent;
            prop_profile_decomposes_run;
            prop_interp_deterministic;
          ] );
    ]
