open Srfa_reuse
open Srfa_test_helpers
module Kernels = Srfa_kernels.Kernels

let test_registry () =
  Alcotest.(check int) "six table-1 kernels" 6 (List.length (Kernels.all ()));
  List.iter
    (fun name ->
      Alcotest.(check bool) ("find " ^ name) true (Kernels.find name <> None))
    Kernels.names;
  Alcotest.(check bool) "unknown kernel" true (Kernels.find "nope" = None)

let test_depths () =
  let depth name =
    match Kernels.find name with
    | Some nest -> Srfa_ir.Nest.depth nest
    | None -> -1
  in
  (* §5: MAT and BIC are 3- and 4-deep; the rest are 2-deep (the example
     is the 3-deep Fig. 1 code). *)
  Alcotest.(check int) "fir" 2 (depth "fir");
  Alcotest.(check int) "dec-fir" 2 (depth "dec-fir");
  Alcotest.(check int) "pat" 2 (depth "pat");
  Alcotest.(check int) "mat" 3 (depth "mat");
  Alcotest.(check int) "imi" 3 (depth "imi");
  Alcotest.(check int) "bic" 4 (depth "bic");
  Alcotest.(check int) "example" 3 (depth "example")

let test_default_iteration_counts () =
  let iters name =
    match Kernels.find name with
    | Some nest -> Srfa_ir.Nest.iterations nest
    | None -> -1
  in
  Alcotest.(check int) "fir: 993 outputs x 32 taps" (993 * 32) (iters "fir");
  Alcotest.(check int) "dec-fir: 241 outputs x 64 taps" (241 * 64)
    (iters "dec-fir");
  Alcotest.(check int) "mat: 32^3" (32 * 32 * 32) (iters "mat");
  Alcotest.(check int) "imi: 8 frames x 64 x 64" (8 * 64 * 64) (iters "imi");
  Alcotest.(check int) "pat: 961 positions x 64" (961 * 64) (iters "pat");
  Alcotest.(check int) "bic: 49^2 x 16^2" (49 * 49 * 16 * 16) (iters "bic")

let test_nu_values () =
  (* The reuse-window sizes that drive every Table 1 allocation. *)
  let nu kernel name =
    let an = Helpers.analyze kernel in
    (Helpers.info_named an name).Analysis.nu
  in
  let fir = Kernels.fir () in
  Alcotest.(check int) "fir x window" 32 (nu fir "x[i+j]");
  Alcotest.(check int) "fir coefficients" 32 (nu fir "c[j]");
  Alcotest.(check int) "fir accumulator" 1 (nu fir "y[i]");
  let dec = Kernels.dec_fir () in
  Alcotest.(check int) "dec-fir window" 64 (nu dec "x[4*i+j]");
  let mat = Kernels.mat () in
  Alcotest.(check int) "mat a row" 32 (nu mat "a[i][k]");
  Alcotest.(check int) "mat b full" 1024 (nu mat "b[k][j]");
  Alcotest.(check int) "mat c accumulator" 1 (nu mat "c[i][j]");
  let bic = Kernels.bic () in
  Alcotest.(check int) "bic template" 256 (nu bic "t[u][v]");
  Alcotest.(check int) "bic image band" (16 * 64) (nu bic "im[r+u][c+v]");
  let imi = Kernels.imi () in
  Alcotest.(check int) "imi image" 4096 (nu imi "im1[r][c]");
  Alcotest.(check int) "imi weight" 1 (nu imi "w[f]")

let test_mat_semantics () =
  (* mat against a reference OCaml matrix multiply. *)
  let size = 5 in
  let nest = Kernels.mat ~size () in
  let a i j = ((i * 3) + j + 1) mod 7 in
  let b i j = ((i * 5) + (j * 2) + 3) mod 11 in
  let init name coords =
    match name with
    | "a" -> a coords.(0) coords.(1)
    | "b" -> b coords.(0) coords.(1)
    | _ -> 0
  in
  let store = Srfa_ir.Interp.run_fresh nest ~init in
  for i = 0 to size - 1 do
    for j = 0 to size - 1 do
      let expect = ref 0 in
      for k = 0 to size - 1 do
        expect := !expect + (a i k * b k j)
      done;
      Alcotest.(check int)
        (Printf.sprintf "c[%d][%d]" i j)
        !expect
        (Srfa_ir.Interp.read store "c" [| i; j |])
    done
  done

let test_bic_semantics () =
  (* Correlation score at a position counts matching pixels. *)
  let nest = Kernels.bic ~template:2 ~image:4 () in
  let init name coords =
    match name with
    | "im" -> (coords.(0) + coords.(1)) mod 2 (* checkerboard *)
    | "t" -> (coords.(0) + coords.(1)) mod 2
    | _ -> 0
  in
  let store = Srfa_ir.Interp.run_fresh nest ~init in
  (* The checkerboard template matches perfectly at even offsets. *)
  Alcotest.(check int) "perfect match at (0,0)" 4
    (Srfa_ir.Interp.read store "score" [| 0; 0 |]);
  Alcotest.(check int) "anti-phase at (0,1)" 0
    (Srfa_ir.Interp.read store "score" [| 0; 1 |]);
  Alcotest.(check int) "perfect match at (1,1)" 4
    (Srfa_ir.Interp.read store "score" [| 1; 1 |])

let test_imi_semantics () =
  let nest = Kernels.imi ~width:4 ~height:4 ~frames:4 () in
  let init name coords =
    match name with
    | "im1" -> 0
    | "im2" -> 40
    | "w" -> coords.(0) (* weight f blends 0 -> 40 in steps of 10 *)
    | _ -> 0
  in
  let store = Srfa_ir.Interp.run_fresh nest ~init in
  Alcotest.(check int) "frame 0 is im1" 0
    (Srfa_ir.Interp.read store "out" [| 0; 2; 2 |]);
  Alcotest.(check int) "frame 2 blends halfway" 20
    (Srfa_ir.Interp.read store "out" [| 2; 2; 2 |])

let test_dec_fir_strided_reads () =
  (* Each dec-fir output reads a window shifted by the decimation. *)
  let nest = Kernels.dec_fir ~taps:2 ~samples:8 ~decimation:2 () in
  let init name coords =
    match name with
    | "x" -> 10 * coords.(0)
    | "c" -> 1
    | _ -> 0
  in
  let store = Srfa_ir.Interp.run_fresh nest ~init in
  (* y[i] = x[2i] + x[2i+1] = 10(2i) + 10(2i+1). *)
  Alcotest.(check int) "y0" 10 (Srfa_ir.Interp.read store "y" [| 0 |]);
  Alcotest.(check int) "y1" 50 (Srfa_ir.Interp.read store "y" [| 1 |]);
  Alcotest.(check int) "y2" 90 (Srfa_ir.Interp.read store "y" [| 2 |])

let test_parameter_overrides () =
  let nest = Kernels.fir ~taps:8 ~samples:64 () in
  Alcotest.(check int) "iterations follow parameters" ((64 - 8 + 1) * 8)
    (Srfa_ir.Nest.iterations nest)

let () =
  Alcotest.run "kernels"
    [
      ( "registry",
        [
          Alcotest.test_case "names" `Quick test_registry;
          Alcotest.test_case "depths" `Quick test_depths;
          Alcotest.test_case "iteration counts" `Quick
            test_default_iteration_counts;
          Alcotest.test_case "parameters" `Quick test_parameter_overrides;
        ] );
      ( "reuse windows",
        [ Alcotest.test_case "nu values" `Quick test_nu_values ] );
      ( "semantics",
        [
          Alcotest.test_case "mat" `Quick test_mat_semantics;
          Alcotest.test_case "bic" `Quick test_bic_semantics;
          Alcotest.test_case "imi" `Quick test_imi_semantics;
          Alcotest.test_case "dec-fir" `Quick test_dec_fir_strided_reads;
        ] );
    ]
