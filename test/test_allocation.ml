open Srfa_reuse
open Srfa_test_helpers

let analysis () = Helpers.analyze (Helpers.example ())

let entries_of spec =
  Array.of_list
    (List.map (fun (beta, pinned) -> { Allocation.beta; pinned }) spec)

let test_make_valid () =
  let an = analysis () in
  let alloc =
    Allocation.make ~analysis:an ~budget:64 ~algorithm:"test"
      (entries_of
         [ (30, true); (1, false); (1, false); (20, true); (1, false) ])
  in
  Alcotest.(check int) "total" 53 (Allocation.total_registers alloc);
  Alcotest.(check int) "beta of group 0" 30 (Allocation.beta alloc 0)

let test_make_rejects_overbudget () =
  let an = analysis () in
  Alcotest.(check bool)
    "budget exceeded" true
    (try
       ignore
         (Allocation.make ~analysis:an ~budget:10 ~algorithm:"test"
            (entries_of
               [ (30, true); (1, false); (1, false); (20, true); (1, false) ]));
       false
     with Invalid_argument _ -> true)

let test_make_rejects_wrong_arity () =
  let an = analysis () in
  Alcotest.(check bool)
    "entry count mismatch" true
    (try
       ignore
         (Allocation.make ~analysis:an ~budget:64 ~algorithm:"test"
            (entries_of [ (1, false) ]));
       false
     with Invalid_argument _ -> true)

let test_make_rejects_negative () =
  let an = analysis () in
  Alcotest.(check bool)
    "negative beta" true
    (try
       ignore
         (Allocation.make ~analysis:an ~budget:64 ~algorithm:"test"
            (entries_of
               [ (-1, false); (1, false); (1, false); (1, false); (1, false) ]));
       false
     with Invalid_argument _ -> true)

let test_is_full () =
  let an = analysis () in
  let alloc =
    Allocation.make ~analysis:an ~budget:64 ~algorithm:"test"
      (entries_of
         [ (30, true); (1, false); (30, true); (1, true); (1, false) ])
  in
  Alcotest.(check bool) "a full at 30" true (Allocation.is_full alloc 0);
  Alcotest.(check bool) "b not full at 1" false (Allocation.is_full alloc 1);
  Alcotest.(check bool) "d full at 30" true (Allocation.is_full alloc 2);
  (* e has nu = 1, so its single register is "full". *)
  Alcotest.(check bool) "e full at 1" true (Allocation.is_full alloc 4)

let test_residual_groups () =
  let an = analysis () in
  let alloc =
    Allocation.make ~analysis:an ~budget:100 ~algorithm:"test"
      (entries_of
         [ (30, true); (1, true); (30, true); (20, true); (1, true) ])
  in
  (* a, d, c fully pinned; b partial; e has no reuse. *)
  Alcotest.(check (list int)) "residual = b and e" [ 1; 4 ]
    (Allocation.residual_ram_groups alloc);
  (* e's single register is trivially "full" (nu = 1), so it appears among
     the fully pinned groups even though it still hits RAM. *)
  Alcotest.(check (list int)) "fully pinned" [ 0; 2; 3; 4 ]
    (Allocation.fully_pinned_groups alloc)

let test_unpinned_is_residual () =
  let an = analysis () in
  let alloc =
    Allocation.make ~analysis:an ~budget:64 ~algorithm:"test"
      (entries_of
         [ (30, false); (1, false); (1, false); (1, false); (1, false) ])
  in
  Alcotest.(check bool) "unpinned full group still residual" true
    (List.mem 0 (Allocation.residual_ram_groups alloc))

let () =
  Alcotest.run "allocation"
    [
      ( "unit",
        [
          Alcotest.test_case "make valid" `Quick test_make_valid;
          Alcotest.test_case "rejects over budget" `Quick
            test_make_rejects_overbudget;
          Alcotest.test_case "rejects wrong arity" `Quick
            test_make_rejects_wrong_arity;
          Alcotest.test_case "rejects negative" `Quick
            test_make_rejects_negative;
          Alcotest.test_case "is_full" `Quick test_is_full;
          Alcotest.test_case "residual groups" `Quick test_residual_groups;
          Alcotest.test_case "unpinned is residual" `Quick
            test_unpinned_is_residual;
        ] );
    ]
