open Srfa_hw
open Srfa_ir

let test_xcv1000 () =
  let d = Device.xcv1000 in
  Alcotest.(check int) "slices" 12288 d.Device.slices;
  Alcotest.(check int) "ram blocks" 32 d.Device.ram_blocks;
  Alcotest.(check int) "block bits" 4096 d.Device.ram_block_bits;
  Alcotest.(check int) "dual ported" 2 d.Device.ram_ports

let test_register_slices () =
  let d = Device.xcv1000 in
  Alcotest.(check int) "16-bit register = 8 slices" 8
    (Device.register_slices d ~bits:16);
  Alcotest.(check int) "1-bit register = 1 slice" 1
    (Device.register_slices d ~bits:1)

let test_blocks_for () =
  let d = Device.xcv1000 in
  Alcotest.(check int) "small data still needs one block" 1
    (Device.blocks_for d ~bits:100);
  Alcotest.(check int) "exactly one block" 1 (Device.blocks_for d ~bits:4096);
  Alcotest.(check int) "one bit over" 2 (Device.blocks_for d ~bits:4097)

let test_invalid_device () =
  Alcotest.(check bool)
    "zero slices rejected" true
    (try
       ignore
         (Device.make ~name:"x" ~slices:0 ~ram_blocks:1 ~ram_block_bits:1
            ~ram_ports:1 ~flipflops_per_slice:1);
       false
     with Invalid_argument _ -> true)

let test_latency_default () =
  let l = Latency.default in
  Alcotest.(check int) "ram" 1 l.Latency.ram_access;
  Alcotest.(check int) "register" 0 l.Latency.register_access;
  Alcotest.(check int) "add" 1 (l.Latency.binary Op.Add);
  Alcotest.(check int) "div" 2 (l.Latency.binary Op.Div)

let test_latency_validation () =
  Alcotest.(check bool)
    "zero ram latency rejected" true
    (try
       ignore (Latency.make ~ram_access:0 ());
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool)
    "negative op latency rejected" true
    (try
       ignore (Latency.make ~binary:(fun _ -> -1) ());
       false
     with Invalid_argument _ -> true)

let arrays () =
  [
    Decl.make "a" [ 30 ];
    Decl.make "b" [ 30; 20 ];
    Decl.make "c" [ 20 ];
  ]

let test_ram_map_private_banks () =
  let m = Ram_map.build Device.xcv1000 (arrays ()) in
  Alcotest.(check bool) "a and b in different banks" false
    (Ram_map.conflict m "a" "b");
  Alcotest.(check bool) "a mapped" true (Ram_map.is_mapped m "a");
  Alcotest.(check bool) "unknown not mapped" false (Ram_map.is_mapped m "zz");
  (* 30*16 = 480 bits, 600*16 = 9600 bits (3 blocks), 320 bits: 5 blocks. *)
  Alcotest.(check int) "blocks used" 5 (Ram_map.blocks_used m)

let test_ram_map_spills_external () =
  let big = Decl.make "big" [ 64; 64; 64 ] in
  (* 64^3 * 16 bits = 4 Mbit >> 32 * 4096 bits on chip. *)
  let m = Ram_map.build Device.xcv1000 [ big; Decl.make "small" [ 8 ] ] in
  Alcotest.(check (list string)) "big goes external" [ "big" ]
    (Ram_map.external_arrays m);
  Alcotest.(check bool) "small stays on chip" true
    (match Ram_map.location m "small" with
    | Ram_map.Internal _ -> true
    | Ram_map.External -> false);
  Alcotest.(check int) "external bus has one port" 1
    (Ram_map.ports_of_bank m (Ram_map.bank_of m "big"))

let test_external_arrays_conflict () =
  let b1 = Decl.make "b1" [ 64; 64; 16 ] and b2 = Decl.make "b2" [ 64; 64; 16 ] in
  let m = Ram_map.build Device.xcv1000 [ b1; b2 ] in
  (* Both are too large: they share the external bus. *)
  Alcotest.(check bool) "both external" true
    (List.length (Ram_map.external_arrays m) = 2);
  Alcotest.(check bool) "conflict on the bus" true
    (Ram_map.conflict m "b1" "b2")

let test_single_bank () =
  let m = Ram_map.build_single_bank Device.xcv1000 (arrays ()) in
  Alcotest.(check bool) "everything conflicts" true
    (Ram_map.conflict m "a" "b" && Ram_map.conflict m "b" "c");
  Alcotest.(check int) "one port" 1 (Ram_map.ports_of_bank m 0)

let test_blocks_never_exceed_device () =
  let lots = List.init 50 (fun k -> Decl.make (Printf.sprintf "x%d" k) [ 256 ]) in
  let m = Ram_map.build Device.xcv1000 lots in
  Alcotest.(check bool) "blocks within device" true
    (Ram_map.blocks_used m <= Device.xcv1000.Device.ram_blocks)

let () =
  Alcotest.run "hw"
    [
      ( "device",
        [
          Alcotest.test_case "xcv1000" `Quick test_xcv1000;
          Alcotest.test_case "register slices" `Quick test_register_slices;
          Alcotest.test_case "blocks for" `Quick test_blocks_for;
          Alcotest.test_case "validation" `Quick test_invalid_device;
        ] );
      ( "latency",
        [
          Alcotest.test_case "defaults" `Quick test_latency_default;
          Alcotest.test_case "validation" `Quick test_latency_validation;
        ] );
      ( "ram map",
        [
          Alcotest.test_case "private banks" `Quick test_ram_map_private_banks;
          Alcotest.test_case "external spill" `Quick
            test_ram_map_spills_external;
          Alcotest.test_case "external conflicts" `Quick
            test_external_arrays_conflict;
          Alcotest.test_case "single bank" `Quick test_single_bank;
          Alcotest.test_case "block budget" `Quick
            test_blocks_never_exceed_device;
        ] );
    ]
