(* The multicore execution layer's contract: Pool.map is Array.map with
   domains, and every parallel driver (sweep, fuzz) produces output equal
   to its sequential run — points, traces, stats and counterexample ids.
   The differential tests here run the real multi-domain path (Pool.create
   takes the job count as given; only Pool.resolve clamps to the machine),
   so a single-core CI host still exercises 4-domain execution. *)

open Srfa_util
module Flow = Srfa_core.Flow
module Allocator = Srfa_core.Allocator
module Report = Srfa_estimate.Report
module Gen = Srfa_fuzzer.Gen
module Harness = Srfa_fuzzer.Harness

(* ---- Pool ------------------------------------------------------------- *)

let test_map_preserves_order () =
  Pool.with_pool ~jobs:4 (fun pool ->
      let xs = Array.init 500 Fun.id in
      (* Uneven work so completion order scrambles without the pool's
         order-restoring result array. *)
      let f i =
        let acc = ref 0 in
        for k = 1 to 1 + (i mod 97) * 50 do
          acc := (!acc + (i * k)) land 0xFFFF
        done;
        (i, !acc)
      in
      Alcotest.(check bool)
        "pooled map equals sequential map" true
        (Pool.map pool f xs = Array.map f xs))

let test_map_degenerate_sizes () =
  Pool.with_pool ~jobs:4 (fun pool ->
      Alcotest.(check (array int)) "empty" [||] (Pool.map pool (fun x -> x) [||]);
      Alcotest.(check (array int)) "singleton" [| 14 |]
        (Pool.map pool (fun x -> 2 * x) [| 7 |]))

let test_sequential_degradation () =
  let pool = Pool.create ~jobs:1 in
  Alcotest.(check int) "jobs floor" 1 (Pool.jobs pool);
  Alcotest.(check (array int)) "jobs=1 maps sequentially" [| 1; 4; 9 |]
    (Pool.map pool (fun x -> x * x) [| 1; 2; 3 |]);
  Pool.shutdown pool;
  Pool.shutdown pool (* idempotent *)

let test_map_raises_lowest_index () =
  Pool.with_pool ~jobs:4 (fun pool ->
      let xs = Array.init 64 Fun.id in
      let f i = if i >= 10 then failwith (string_of_int i) else i in
      match Pool.map pool f xs with
      | _ -> Alcotest.fail "expected Pool.map to re-raise"
      | exception Failure m ->
        Alcotest.(check string)
          "the sequential walk's first failure wins" "10" m)

let test_map_after_shutdown_rejected () =
  let pool = Pool.create ~jobs:4 in
  Pool.shutdown pool;
  match Pool.map pool Fun.id [| 1; 2 |] with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let has_jobs_guard = List.exists (fun (d : Diag.t) -> d.Diag.code = "W-GUARD-JOBS")

let test_resolve_clamps_and_warns () =
  let cap = Pool.recommended () in
  let jobs, warnings = Pool.resolve ~requested:(cap + 8) () in
  Alcotest.(check int) "clamped to recommended" cap jobs;
  Alcotest.(check bool) "W-GUARD-JOBS emitted" true (has_jobs_guard warnings);
  let jobs, warnings = Pool.resolve ~requested:1 () in
  Alcotest.(check int) "within the machine: kept" 1 jobs;
  Alcotest.(check bool) "no warning" false (has_jobs_guard warnings);
  let jobs, warnings = Pool.resolve ~requested:0 () in
  Alcotest.(check int) "sub-1 clamps to 1 silently" 1 jobs;
  Alcotest.(check bool) "silently" false (has_jobs_guard warnings)

let test_resolve_env () =
  let cap = Pool.recommended () in
  let jobs, warnings = Pool.resolve ~env:(string_of_int (cap + 3)) () in
  Alcotest.(check int) "SRFA_JOBS clamps like -j" cap jobs;
  Alcotest.(check bool) "and warns" true (has_jobs_guard warnings);
  let jobs, warnings = Pool.resolve ~env:"not-a-number" () in
  Alcotest.(check int) "garbage env ignored" cap jobs;
  Alcotest.(check bool) "without warning" false (has_jobs_guard warnings);
  let jobs, _ = Pool.resolve ~requested:1 ~env:(string_of_int (cap + 3)) () in
  Alcotest.(check int) "-j beats SRFA_JOBS" 1 jobs

(* ---- Trace under concurrency ------------------------------------------ *)

let test_collector_loses_no_events () =
  let sink, events = Trace.collector () in
  let per_domain = 5000 in
  Pool.with_pool ~jobs:4 (fun pool ->
      ignore
        (Pool.map pool
           (fun d ->
             for i = 1 to per_domain do
               Trace.emit sink (fun () ->
                   Trace.event "concurrent"
                     [ ("domain", Trace.Int d); ("i", Trace.Int i) ])
             done)
           [| 0; 1; 2; 3 |]));
  let collected = events () in
  Alcotest.(check int) "every emit survives" (4 * per_domain)
    (List.length collected);
  let count d =
    List.length
      (List.filter
         (fun (e : Trace.event) ->
           List.assoc_opt "domain" e.Trace.fields = Some (Trace.Int d))
         collected)
  in
  List.iter
    (fun d ->
      Alcotest.(check int)
        (Printf.sprintf "domain %d's events all present" d)
        per_domain (count d))
    [ 0; 1; 2; 3 ]

let test_buffered_splices_in_task_order () =
  let b1, splice1 = Trace.buffered () in
  let b2, splice2 = Trace.buffered () in
  Trace.emit b2 (fun () -> Trace.event "second.a" []);
  Trace.emit b1 (fun () -> Trace.event "first.a" []);
  Trace.emit b1 (fun () -> Trace.event "first.b" []);
  Trace.emit b2 (fun () -> Trace.event "second.b" []);
  let sink, events = Trace.collector () in
  (* Task order, not emission order, decides the merged stream. *)
  splice1 sink;
  splice2 sink;
  Alcotest.(check (list string))
    "task-ordered stream"
    [ "first.a"; "first.b"; "second.a"; "second.b" ]
    (List.map (fun (e : Trace.event) -> e.Trace.name) (events ()))

(* ---- Prng.split -------------------------------------------------------- *)

let stream rng = List.init 8 (fun _ -> Prng.int rng 1_000_000)

let test_split_is_pure_and_decorrelated () =
  let t = Prng.create ~seed:42 in
  Alcotest.(check (list int))
    "same index, same stream"
    (stream (Prng.split t 5))
    (stream (Prng.split t 5));
  Alcotest.(check bool) "distinct indices, distinct streams" true
    (stream (Prng.split t 5) <> stream (Prng.split t 6));
  (* Splitting never advances the parent: the parent's own draws are the
     same whether or not children were split off first. *)
  let a = Prng.create ~seed:9 and b = Prng.create ~seed:9 in
  ignore (Prng.split a 3);
  ignore (Prng.split a 4);
  Alcotest.(check (list int)) "parent unperturbed" (stream b) (stream a)

let test_split_matches_recorded_seed () =
  (* Gen records Prng.mix seed id as the case seed; split of the campaign
     generator must be that exact stream (the pre-split derivation). *)
  List.iter
    (fun (seed, id) ->
      let via_split = Prng.split (Prng.create ~seed) id in
      let via_mix = Prng.create ~seed:(Prng.mix seed id) in
      Alcotest.(check (list int))
        (Printf.sprintf "seed %d id %d" seed id)
        (stream via_mix) (stream via_split))
    [ (42, 0); (42, 199); (7, 13); (11, 3) ]

(* ---- differential: sweep ---------------------------------------------- *)

let point_digest (p : Flow.sweep_point) =
  ( p.Flow.kernel,
    Allocator.name p.Flow.algorithm,
    p.Flow.budget,
    p.Flow.report.Report.cycles,
    p.Flow.report.Report.memory_cycles,
    p.Flow.report.Report.total_registers )

let test_sweep_differential () =
  let kernels = Srfa_kernels.Kernels.all () in
  let sink1, events1 = Trace.collector () in
  let serial = Flow.sweep ~trace:sink1 kernels in
  let sink2, events2 = Trace.collector () in
  let parallel =
    Pool.with_pool ~jobs:4 (fun pool -> Flow.sweep ~trace:sink2 ~pool kernels)
  in
  Alcotest.(check int) "same point count" (List.length serial)
    (List.length parallel);
  List.iter2
    (fun s p ->
      Alcotest.(check bool)
        (Printf.sprintf "point %s/%s/%d equal" s.Flow.kernel
           (Allocator.name s.Flow.algorithm) s.Flow.budget)
        true
        (point_digest s = point_digest p))
    serial parallel;
  Alcotest.(check bool) "identical trace streams" true
    (events1 () = events2 ())

(* ---- differential: fuzz campaign -------------------------------------- *)

let test_fuzz_differential () =
  let cases = 150 and seed = 42 in
  let serial = Harness.run ~cases ~seed () in
  let parallel =
    Pool.with_pool ~jobs:4 (fun pool -> Harness.run ~cases ~seed ~pool ())
  in
  (* The summary is pure data (ints, strings, generated cases), so the
     strongest check is structural equality of the whole record — stats,
     counterexample ids, messages and minimised reproducers at once. *)
  Alcotest.(check bool) "byte-identical campaign summary" true
    (serial = parallel);
  Alcotest.(check int) "every case classified" cases
    (serial.Harness.accepted + serial.Harness.rejected)

let () =
  Alcotest.run "parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "map preserves order" `Quick
            test_map_preserves_order;
          Alcotest.test_case "empty and singleton" `Quick
            test_map_degenerate_sizes;
          Alcotest.test_case "jobs=1 degrades to sequential" `Quick
            test_sequential_degradation;
          Alcotest.test_case "lowest-index exception wins" `Quick
            test_map_raises_lowest_index;
          Alcotest.test_case "map after shutdown rejected" `Quick
            test_map_after_shutdown_rejected;
          Alcotest.test_case "resolve clamps with W-GUARD-JOBS" `Quick
            test_resolve_clamps_and_warns;
          Alcotest.test_case "resolve reads SRFA_JOBS" `Quick test_resolve_env;
        ] );
      ( "trace",
        [
          Alcotest.test_case "shared collector loses no events" `Quick
            test_collector_loses_no_events;
          Alcotest.test_case "buffered splices in task order" `Quick
            test_buffered_splices_in_task_order;
        ] );
      ( "prng",
        [
          Alcotest.test_case "split is pure and decorrelated" `Quick
            test_split_is_pure_and_decorrelated;
          Alcotest.test_case "split matches the recorded case seed" `Quick
            test_split_matches_recorded_seed;
        ] );
      ( "differential",
        [
          Alcotest.test_case "sweep: jobs=4 equals jobs=1" `Slow
            test_sweep_differential;
          Alcotest.test_case "fuzz: jobs=4 equals jobs=1" `Slow
            test_fuzz_differential;
        ] );
    ]
