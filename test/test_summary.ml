open Srfa_test_helpers
module Summary = Srfa_estimate.Summary
module Report = Srfa_estimate.Report
module Flow = Srfa_core.Flow

let test_means () =
  Alcotest.(check (float 1e-9)) "arithmetic" 2.0
    (Summary.arithmetic_mean [ 1.0; 2.0; 3.0 ]);
  Alcotest.(check (float 1e-9)) "geometric" 2.0
    (Summary.geometric_mean [ 1.0; 2.0; 4.0 ] *. 1.0);
  Alcotest.(check bool) "empty arithmetic rejected" true
    (try
       ignore (Summary.arithmetic_mean []);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "non-positive geometric rejected" true
    (try
       ignore (Summary.geometric_mean [ 1.0; 0.0 ]);
       false
     with Invalid_argument _ -> true)

let per_kernel () =
  List.map
    (fun (_, nest) -> Flow.evaluate_all nest)
    [ ("fir", Helpers.small_fir ()); ("mat", Helpers.small_mat ()) ]

let test_of_reports () =
  let s = Summary.of_reports ~version:"v3" (per_kernel ()) in
  Alcotest.(check int) "two kernels" 2 s.Summary.kernels;
  Alcotest.(check string) "version" "v3" s.Summary.version;
  Alcotest.(check bool) "cycle reduction non-negative" true
    (s.Summary.mean_cycle_reduction_pct >= 0.0);
  Alcotest.(check bool) "wins within range" true
    (s.Summary.wins >= 0 && s.Summary.wins <= 2)

let test_base_summary_is_identity () =
  let s = Summary.of_reports ~version:"v1" (per_kernel ()) in
  Alcotest.(check (float 1e-9)) "no cycle reduction vs itself" 0.0
    s.Summary.mean_cycle_reduction_pct;
  Alcotest.(check (float 1e-9)) "geomean speedup 1" 1.0
    s.Summary.geomean_speedup;
  Alcotest.(check int) "no strict wins" 0 s.Summary.wins

let test_missing_version_rejected () =
  Alcotest.(check bool) "unknown version" true
    (try
       ignore (Summary.of_reports ~version:"v9" (per_kernel ()));
       false
     with Invalid_argument _ -> true)

(* Smoke tests of the pretty printers across the code base: they must
   produce non-empty output mentioning the obvious identifiers. *)
let test_printers () =
  let an = Helpers.analyze (Helpers.example ()) in
  let alloc = Srfa_core.Allocator.run Srfa_core.Allocator.Cpa_ra an ~budget:64 in
  let mentions text needle =
    Alcotest.(check bool)
      (Printf.sprintf "%S in output" needle)
      true
      (Helpers.contains_substring text needle)
  in
  mentions (Format.asprintf "%a" Srfa_reuse.Allocation.pp alloc) "cpa-ra";
  let sim = Srfa_sched.Simulator.run alloc in
  mentions (Format.asprintf "%a" Srfa_sched.Simulator.pp_result sim) "memory";
  let report = Report.build ~version:"v3" alloc in
  mentions (Format.asprintf "%a" Report.pp report) "example";
  let s = Summary.of_reports ~version:"v3" (per_kernel ()) in
  mentions (Format.asprintf "%a" Summary.pp s) "geomean";
  mentions
    (Format.asprintf "%a" Srfa_hw.Device.pp Srfa_hw.Device.xcv1000)
    "XCV1000";
  let ram_map =
    Srfa_hw.Ram_map.build Srfa_hw.Device.xcv1000
      (Helpers.example ()).Srfa_ir.Nest.arrays
  in
  mentions (Format.asprintf "%a" Srfa_hw.Ram_map.pp ram_map) "bank";
  let dfg = Srfa_dfg.Graph.build an in
  mentions (Format.asprintf "%a" Srfa_dfg.Graph.pp dfg) "mul";
  let area =
    Srfa_estimate.Area.estimate ~device:Srfa_hw.Device.xcv1000 ~ram_arrays:5
      alloc
  in
  mentions (Format.asprintf "%a" Srfa_estimate.Area.pp area) "registers"

let () =
  Alcotest.run "summary"
    [
      ( "statistics",
        [
          Alcotest.test_case "means" `Quick test_means;
          Alcotest.test_case "of_reports" `Quick test_of_reports;
          Alcotest.test_case "base identity" `Quick
            test_base_summary_is_identity;
          Alcotest.test_case "missing version" `Quick
            test_missing_version_rejected;
        ] );
      ("printers", [ Alcotest.test_case "smoke" `Quick test_printers ]);
    ]
