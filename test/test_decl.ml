open Srfa_ir

let test_make () =
  let d = Decl.make "a" [ 4; 5 ] in
  Alcotest.(check int) "elements" 20 (Decl.elements d);
  Alcotest.(check int) "size bits (16 default)" 320 (Decl.size_bits d);
  Alcotest.(check int) "rank" 2 (Decl.rank d)

let test_scalar () =
  let s = Decl.scalar "acc" in
  Alcotest.(check int) "one element" 1 (Decl.elements s);
  Alcotest.(check int) "rank 0" 0 (Decl.rank s);
  Alcotest.(check bool)
    "local by default" true
    (s.Decl.storage = Decl.Local)

let test_bits () =
  let d = Decl.make ~bits:1 "mask" [ 8 ] in
  Alcotest.(check int) "1-bit elements" 8 (Decl.size_bits d)

let test_invalid () =
  Alcotest.(check bool)
    "zero extent rejected" true
    (try
       ignore (Decl.make "a" [ 0 ]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool)
    "negative extent rejected" true
    (try
       ignore (Decl.make "a" [ 4; -1 ]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool)
    "zero width rejected" true
    (try
       ignore (Decl.make ~bits:0 "a" [ 4 ]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool)
    "empty name rejected" true
    (try
       ignore (Decl.make "" [ 4 ]);
       false
     with Invalid_argument _ -> true)

let test_equality_by_name () =
  let a1 = Decl.make "a" [ 4 ] and a2 = Decl.make "a" [ 9 ] in
  Alcotest.(check bool) "same name, equal" true (Decl.equal a1 a2);
  let b = Decl.make "b" [ 4 ] in
  Alcotest.(check bool) "different name" false (Decl.equal a1 b);
  Alcotest.(check bool) "ordering" true (Decl.compare a1 b < 0)

let () =
  Alcotest.run "decl"
    [
      ( "unit",
        [
          Alcotest.test_case "make" `Quick test_make;
          Alcotest.test_case "scalar" `Quick test_scalar;
          Alcotest.test_case "bit width" `Quick test_bits;
          Alcotest.test_case "invalid declarations" `Quick test_invalid;
          Alcotest.test_case "equality by name" `Quick test_equality_by_name;
        ] );
    ]
