open Srfa_reuse
open Srfa_test_helpers
module Allocator = Srfa_core.Allocator

let test_spends_stranded_registers () =
  (* On the example with a huge budget, CPA-RA strands registers (c[j] is
     off the critical path); CPA+ fills c's window too. *)
  let an = Helpers.analyze (Helpers.example ()) in
  let budget = Analysis.total_registers_full an + 50 in
  let v3 = Allocator.run Allocator.Cpa_ra an ~budget in
  let v3p = Allocator.run Allocator.Cpa_plus an ~budget in
  Alcotest.(check bool) "v3 strands" true
    (Allocation.total_registers v3 < Allocation.total_registers v3p);
  Alcotest.(check int) "v3+ fills c" 20 (Helpers.beta_named v3p "c[j]");
  Alcotest.(check int) "v3 leaves c at 1" 1 (Helpers.beta_named v3 "c[j]")

let test_never_slower_than_cpa () =
  List.iter
    (fun (name, nest) ->
      let an = Helpers.analyze nest in
      List.iter
        (fun extra ->
          let budget = Srfa_core.Ordering.feasibility_minimum an + extra in
          let cycles alg =
            let alloc = Allocator.run alg an ~budget in
            (Srfa_sched.Simulator.run alloc).Srfa_sched.Simulator.total_cycles
          in
          Alcotest.(check bool)
            (Printf.sprintf "%s (+%d): cpa+ <= cpa" name extra)
            true
            (cycles Allocator.Cpa_plus <= cycles Allocator.Cpa_ra))
        [ 3; 11; 40 ])
    (Helpers.small_kernels ())

let test_same_when_budget_consumed () =
  (* At the paper budget on the example the cut loop consumes everything,
     so the two variants coincide. *)
  let an = Helpers.analyze (Helpers.example ()) in
  let beta alg name = Helpers.beta_named (Allocator.run alg an ~budget:64) name in
  List.iter
    (fun name ->
      Alcotest.(check int) name (beta Allocator.Cpa_ra name)
        (beta Allocator.Cpa_plus name))
    [ "a[k]"; "b[k][j]"; "c[j]"; "d[i][k]"; "e[i][j][k]" ]

let test_algorithm_label () =
  let an = Helpers.analyze (Helpers.example ()) in
  let alloc = Allocator.run Allocator.Cpa_plus an ~budget:64 in
  Alcotest.(check string) "provenance label" "cpa-ra+"
    alloc.Allocation.algorithm;
  Alcotest.(check string) "version" "v3+"
    (Allocator.version_label Allocator.Cpa_plus)

let test_still_within_budget () =
  let an = Helpers.analyze (Helpers.example ()) in
  List.iter
    (fun budget ->
      let alloc = Allocator.run Allocator.Cpa_plus an ~budget in
      Alcotest.(check bool)
        (Printf.sprintf "budget %d respected" budget)
        true
        (Allocation.total_registers alloc <= budget))
    [ 5; 17; 64; 300; 1000 ]

let () =
  Alcotest.run "cpa-plus"
    [
      ( "unit",
        [
          Alcotest.test_case "spends stranded registers" `Quick
            test_spends_stranded_registers;
          Alcotest.test_case "never slower than cpa" `Quick
            test_never_slower_than_cpa;
          Alcotest.test_case "same when budget consumed" `Quick
            test_same_when_budget_consumed;
          Alcotest.test_case "labels" `Quick test_algorithm_label;
          Alcotest.test_case "within budget" `Quick test_still_within_budget;
        ] );
    ]
