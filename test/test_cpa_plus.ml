open Srfa_reuse
open Srfa_test_helpers
module Allocator = Srfa_core.Allocator

let test_spends_stranded_registers () =
  (* On the example with a huge budget, CPA-RA strands registers (c[j] is
     off the critical path); CPA+ fills c's window too. *)
  let an = Helpers.analyze (Helpers.example ()) in
  let budget = Analysis.total_registers_full an + 50 in
  let v3 = Allocator.run Allocator.Cpa_ra an ~budget in
  let v3p = Allocator.run Allocator.Cpa_plus an ~budget in
  Alcotest.(check bool) "v3 strands" true
    (Allocation.total_registers v3 < Allocation.total_registers v3p);
  Alcotest.(check int) "v3+ fills c" 20 (Helpers.beta_named v3p "c[j]");
  Alcotest.(check int) "v3 leaves c at 1" 1 (Helpers.beta_named v3 "c[j]")

let test_never_slower_than_cpa () =
  List.iter
    (fun (name, nest) ->
      let an = Helpers.analyze nest in
      List.iter
        (fun extra ->
          let budget = Srfa_core.Ordering.feasibility_minimum an + extra in
          let cycles alg =
            let alloc = Allocator.run alg an ~budget in
            (Srfa_sched.Simulator.run alloc).Srfa_sched.Simulator.total_cycles
          in
          Alcotest.(check bool)
            (Printf.sprintf "%s (+%d): cpa+ <= cpa" name extra)
            true
            (cycles Allocator.Cpa_plus <= cycles Allocator.Cpa_ra))
        [ 3; 11; 40 ])
    (Helpers.small_kernels ())

let test_same_when_budget_consumed () =
  (* At the paper budget on the example the cut loop consumes everything,
     so the two variants coincide. *)
  let an = Helpers.analyze (Helpers.example ()) in
  let beta alg name = Helpers.beta_named (Allocator.run alg an ~budget:64) name in
  List.iter
    (fun name ->
      Alcotest.(check int) name (beta Allocator.Cpa_ra name)
        (beta Allocator.Cpa_plus name))
    [ "a[k]"; "b[k][j]"; "c[j]"; "d[i][k]"; "e[i][j][k]" ]

let test_algorithm_label () =
  let an = Helpers.analyze (Helpers.example ()) in
  let alloc = Allocator.run Allocator.Cpa_plus an ~budget:64 in
  Alcotest.(check string) "provenance label" "cpa-ra+"
    alloc.Allocation.algorithm;
  Alcotest.(check string) "version" "v3+"
    (Allocator.version_label Allocator.Cpa_plus)

let test_still_within_budget () =
  let an = Helpers.analyze (Helpers.example ()) in
  List.iter
    (fun budget ->
      let alloc = Allocator.run Allocator.Cpa_plus an ~budget in
      Alcotest.(check bool)
        (Printf.sprintf "budget %d respected" budget)
        true
        (Allocation.total_registers alloc <= budget))
    [ 5; 17; 64; 300; 1000 ]

(* Golden reproducers from the fuzz campaign (seed 42, budget 16): the
   three cases where CPA+ used to simulate slower than the best greedy
   baseline because Engine.drain returned the stranded cut budget before
   the spender could use it (fixed in Cpa_ra; see the drain guard there).
   Kept as source, not ids, so the tests survive generator changes. *)
let fuzz_counterexamples =
  [
    ( "case 1135",
      {|kernel fuzz {
  input  int x0[12][12];
  output int y[12];

  for (i = 0; i < 4; i++)
    for (j = 0; j < 3; j++)
      for (k = 0; k < 4; k++)
        {
          y[j + 1] += ((x0[j][2*j] + x0[k + 2][2*j]) * 1);
          y[2*k] += ((5 - x0[k][2*k]) + 1);
          y[0] += ((x0[3][j + 1] + x0[k + 1][j + 2]) + 3);
        }
}|}
    );
    ( "case 1595",
      {|kernel fuzz {
  input  int x0[12][12];
  output int y[12];

  for (i = 0; i < 4; i++)
    for (j = 0; j < 4; j++)
      for (k = 0; k < 4; k++)
        {
          y[2*k] = ((x0[j][2*k] - x0[k][3]) - 8);
          y[j] = (9 + x0[k][i + 2]);
          y[k + 1] = (x0[3][2*j] - x0[2*i][3]);
        }
}|}
    );
    ( "case 3919",
      {|kernel fuzz {
  input  int x0[12][12];
  output int y[12];

  for (i = 0; i < 2; i++)
    for (j = 0; j < 2; j++)
      for (k = 0; k < 2; k++)
        {
          y[1] = ((x0[2*k][k] - x0[j + 2][j + 1]) + 8);
          y[j + 1] = ((x0[3][2*k] + x0[i + 2][2*j]) - 7);
          y[j + 2] = ((x0[2][k] + x0[2*k][3]) * x0[k + 1][i + 2]);
        }
}|}
    );
  ]

let test_fuzz_goldens () =
  List.iter
    (fun (label, src) ->
      let an = Helpers.analyze (Srfa_frontend.Parser.parse src) in
      let cycles alg =
        let alloc = Allocator.run alg an ~budget:16 in
        (Srfa_sched.Simulator.run alloc).Srfa_sched.Simulator.total_cycles
      in
      let bar = min (cycles Allocator.Fr_ra) (cycles Allocator.Pr_ra) in
      Alcotest.(check bool)
        (Printf.sprintf "%s: cpa+ <= best greedy" label)
        true
        (cycles Allocator.Cpa_plus <= bar);
      Alcotest.(check bool)
        (Printf.sprintf "%s: portfolio <= best greedy" label)
        true
        (cycles Allocator.Portfolio <= bar))
    fuzz_counterexamples

let () =
  Alcotest.run "cpa-plus"
    [
      ( "unit",
        [
          Alcotest.test_case "spends stranded registers" `Quick
            test_spends_stranded_registers;
          Alcotest.test_case "never slower than cpa" `Quick
            test_never_slower_than_cpa;
          Alcotest.test_case "same when budget consumed" `Quick
            test_same_when_budget_consumed;
          Alcotest.test_case "labels" `Quick test_algorithm_label;
          Alcotest.test_case "within budget" `Quick test_still_within_budget;
          Alcotest.test_case "fuzz counterexample goldens" `Quick
            test_fuzz_goldens;
        ] );
    ]
