open Srfa_ir

(* 2x2 matrix multiply, checked against hand-computed values. *)
let test_matmul_2x2 () =
  let n = Srfa_kernels.Kernels.mat ~size:2 () in
  let init name coords =
    match name with
    | "a" -> (2 * coords.(0)) + coords.(1) + 1 (* [[1;2];[3;4]] *)
    | "b" -> if coords.(0) = coords.(1) then 2 else 1 (* [[2;1];[1;2]] *)
    | _ -> 0
  in
  let store = Interp.run_fresh n ~init in
  (* c = a * b = [[4;5];[10;11]] *)
  Alcotest.(check int) "c00" 4 (Interp.read store "c" [| 0; 0 |]);
  Alcotest.(check int) "c01" 5 (Interp.read store "c" [| 0; 1 |]);
  Alcotest.(check int) "c10" 10 (Interp.read store "c" [| 1; 0 |]);
  Alcotest.(check int) "c11" 11 (Interp.read store "c" [| 1; 1 |])

let test_fir_small () =
  let n = Srfa_kernels.Kernels.fir ~taps:2 ~samples:4 () in
  let init name coords =
    match name with
    | "x" -> coords.(0) + 1 (* 1,2,3,4 *)
    | "c" -> if coords.(0) = 0 then 1 else 10 (* y[i] = x[i] + 10*x[i+1] *)
    | _ -> 0
  in
  let store = Interp.run_fresh n ~init in
  Alcotest.(check int) "y0" 21 (Interp.read store "y" [| 0 |]);
  Alcotest.(check int) "y1" 32 (Interp.read store "y" [| 1 |]);
  Alcotest.(check int) "y2" 43 (Interp.read store "y" [| 2 |])

let test_pat_counts_matches () =
  let n = Srfa_kernels.Kernels.pat ~pattern:2 ~text:5 () in
  (* text = a b a b a ; pattern = a b *)
  let init name coords =
    match name with
    | "s" -> coords.(0) mod 2
    | "p" -> coords.(0) mod 2
    | _ -> 0
  in
  let store = Interp.run_fresh n ~init in
  (* positions 0 and 2 match fully (score 2); odd positions score 0. *)
  Alcotest.(check int) "hit at 0" 2 (Interp.read store "hits" [| 0 |]);
  Alcotest.(check int) "miss at 1" 0 (Interp.read store "hits" [| 1 |]);
  Alcotest.(check int) "hit at 2" 2 (Interp.read store "hits" [| 2 |])

let test_write_read () =
  let n = Srfa_kernels.Kernels.mat ~size:2 () in
  let store = Interp.store_create n in
  Interp.write store "a" [| 1; 1 |] 42;
  Alcotest.(check int) "write/read" 42 (Interp.read store "a" [| 1; 1 |]);
  Alcotest.(check bool)
    "out-of-bounds write rejected" true
    (try
       Interp.write store "a" [| 5; 5 |] 1;
       false
     with Invalid_argument _ -> true)

let test_statement_order_within_iteration () =
  (* The fig. 1 chain: e must observe the d written in the same iteration. *)
  let n =
    let open Builder in
    let a = input "a" [ 4 ] and d = local "d" [ 4 ] and e = output "e" [ 4 ] in
    let i = idx "i" in
    nest "chain" ~loops:[ ("i", 4) ]
      [
        at d [ i ] <-- (a.%[ [ i ] ] * const 2);
        at e [ i ] <-- (d.%[ [ i ] ] + const 1);
      ]
  in
  let store = Interp.run_fresh n ~init:(fun _ c -> c.(0)) in
  Alcotest.(check int) "e[3] = 2*3+1" 7 (Interp.read store "e" [| 3 |])

let test_equal_array () =
  let n = Srfa_kernels.Kernels.mat ~size:2 () in
  let s1 = Interp.run_fresh n ~init:(fun _ c -> c.(0) + c.(1)) in
  let s2 = Interp.run_fresh n ~init:(fun _ c -> c.(0) + c.(1)) in
  Alcotest.(check bool) "deterministic" true (Interp.equal_array s1 s2 "c");
  let s3 = Interp.run_fresh n ~init:(fun _ c -> c.(0) - c.(1)) in
  Alcotest.(check bool)
    "different inputs differ" false
    (Interp.equal_array s1 s3 "c")

let () =
  Alcotest.run "interp"
    [
      ( "unit",
        [
          Alcotest.test_case "matmul 2x2" `Quick test_matmul_2x2;
          Alcotest.test_case "fir small" `Quick test_fir_small;
          Alcotest.test_case "pattern counts" `Quick test_pat_counts_matches;
          Alcotest.test_case "write/read" `Quick test_write_read;
          Alcotest.test_case "statement order" `Quick
            test_statement_order_within_iteration;
          Alcotest.test_case "equal_array" `Quick test_equal_array;
        ] );
    ]
