(* Golden diagnostics for the malformed kernels under bad_kernels/: each
   file pins its stable code, its exact source position, and a message
   fragment, so a frontend change that drifts a line/column count or
   reclassifies an error fails here first. *)

module Parser = Srfa_frontend.Parser
module Diag = Srfa_util.Diag
module Helpers = Srfa_test_helpers.Helpers

let path file = Filename.concat "bad_kernels" file

let first_error file =
  match Parser.parse_file_result (path file) with
  | Ok _ -> Alcotest.failf "%s unexpectedly parsed" file
  | Error [] -> Alcotest.failf "%s rejected without diagnostics" file
  | Error (d :: _) -> d

let check_case (file, code, span, fragment) () =
  let d = first_error file in
  Alcotest.(check string) "code" code d.Diag.code;
  (match span with
  | Some (line, col) -> (
    match d.Diag.span with
    | Some s ->
      Alcotest.(check int) "line" line s.Diag.line;
      Alcotest.(check int) "column" col s.Diag.col
    | None -> Alcotest.failf "%s diagnostic lost its span" file)
  | None ->
    Alcotest.(check bool) "spanless (semantic phase)" true (d.Diag.span = None));
  Alcotest.(check bool)
    (Printf.sprintf "message mentions %S" fragment)
    true
    (Helpers.contains_substring d.Diag.message fragment);
  Alcotest.(check int) "error severity exits 2" 2 (Diag.exit_code [ d ])

let cases =
  [
    ("zero_trip.k", "E-PARSE-004", Some (5, 20), "must be positive");
    ("undeclared_array.k", "E-PARSE-002", Some (6, 13), "undeclared array b");
    ("rank_mismatch.k", "E-PARSE-003", Some (6, 19), "has rank 1");
    ("garbage_char.k", "E-LEX-001", Some (4, 1), "unexpected character");
    ("unterminated_comment.k", "E-LEX-003", Some (8, 1), "unterminated comment");
    ("duplicate_decl.k", "E-PARSE-005", Some (3, 15), "declared twice");
    ("truncated.k", "E-PARSE-001", Some (7, 1), "end of input");
    ("oob_index.k", "E-SEM-001", None, "extent 4");
  ]

let test_missing_file () =
  match Parser.parse_file_result (path "no_such_kernel.k") with
  | Ok _ -> Alcotest.fail "missing file parsed"
  | Error (d :: _) ->
    Alcotest.(check string) "code" "E-IO-001" d.Diag.code;
    Alcotest.(check int) "exit code" 2 (Diag.exit_code [ d ])
  | Error [] -> Alcotest.fail "missing file rejected without diagnostics"

let () =
  Alcotest.run "bad_kernels"
    [
      ( "goldens",
        List.map
          (fun ((file, code, _, _) as case) ->
            Alcotest.test_case
              (Printf.sprintf "%s -> %s" file code)
              `Quick (check_case case))
          cases );
      ("io", [ Alcotest.test_case "missing file -> E-IO-001" `Quick test_missing_file ]);
    ]
