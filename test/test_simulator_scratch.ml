(* Differential oracle for the allocation-free simulator core: a boxed
   reference walk (fresh model, fresh residency, Hashtbl memo, string
   keys — the shape of the pre-arena implementation) re-simulates every
   library kernel at every sweep budget, and the scratch-threaded fast
   path must reproduce its reports byte for byte. A final check pins the
   allocation budget of a warm evaluation. *)

open Srfa_reuse
module Simulator = Srfa_sched.Simulator
module Residency = Srfa_sched.Residency
module Cycle_model = Srfa_sched.Cycle_model
module Allocator = Srfa_core.Allocator
module Cpa_ra = Srfa_core.Cpa_ra
module Flow = Srfa_core.Flow

let budgets = [ 8; 16; 32; 64; 128 ]
let kernels = Srfa_kernels.Kernels.all ()

(* Boxed reference simulator over the public Cycle_model/Residency APIs:
   no scratch, no arena, string-keyed memo regardless of group count. *)
let reference_run ?(config = Simulator.default_config) alloc =
  let analysis = alloc.Allocation.analysis in
  let nest = analysis.Analysis.nest in
  let ngroups = Analysis.num_groups analysis in
  let ram_map = Simulator.ram_map_for config alloc in
  let dfg = Srfa_dfg.Graph.build analysis in
  let model =
    Cycle_model.create ~dfg ~latency:config.Simulator.latency ~ram_map ()
  in
  let residency = Residency.create config.Simulator.residency alloc in
  let memo : (string, int) Hashtbl.t = Hashtbl.create 64 in
  let charged_bits = Array.make (max ngroups 1) false in
  let charged (g : Group.t) = charged_bits.(g.Group.id) in
  let total = ref 0 and ram = ref 0 and hits = ref 0 in
  let group_ram = Array.make ngroups 0 in
  Srfa_ir.Iterspace.iter nest (fun point ->
      Residency.step residency point;
      let buf = Bytes.make ngroups '0' in
      for gid = 0 to ngroups - 1 do
        let resident = Residency.resident residency gid in
        charged_bits.(gid) <- not resident;
        if resident then incr hits
        else begin
          incr ram;
          group_ram.(gid) <- group_ram.(gid) + 1
        end;
        Bytes.set buf gid (if resident then '0' else '1')
      done;
      let key = Bytes.to_string buf in
      let cost =
        match Hashtbl.find_opt memo key with
        | Some m -> m
        | None ->
          let m =
            match config.Simulator.execution with
            | Simulator.Serial -> Cycle_model.makespan model ~charged
            | Simulator.Pipelined ->
              Cycle_model.initiation_interval model ~charged
          in
          Hashtbl.replace memo key m;
          m
      in
      total := !total + cost);
  let baseline =
    match config.Simulator.execution with
    | Simulator.Serial -> Cycle_model.compute_makespan model
    | Simulator.Pipelined ->
      Cycle_model.initiation_interval model ~charged:(fun _ -> false)
  in
  let iterations = Srfa_ir.Nest.iterations nest in
  let compute_cycles = baseline * iterations in
  let fill =
    match config.Simulator.execution with
    | Simulator.Serial -> 0
    | Simulator.Pipelined -> baseline
  in
  let control_cycles = config.Simulator.control_overhead * iterations in
  {
    Simulator.iterations;
    total_cycles = !total + control_cycles + fill;
    memory_cycles = !total - compute_cycles;
    compute_cycles;
    control_cycles;
    ram_accesses = !ram;
    register_hits = !hits;
    group_ram_accesses = group_ram;
  }

let show (r : Simulator.result) =
  Format.asprintf "%a groups=[%s]" Simulator.pp_result r
    (String.concat ";"
       (Array.to_list (Array.map string_of_int r.Simulator.group_ram_accesses)))

let check_same name expected got =
  Alcotest.(check string) name (show expected) (show got);
  Alcotest.(check bool) (name ^ " (structural)") true (expected = got)

let feasible analysis budget =
  budget >= Srfa_core.Ordering.feasibility_minimum analysis

(* All kernels x all sweep budgets, one shared scratch per kernel (the
   Flow.sweep reuse pattern), against the boxed reference. *)
let test_differential_pinned () =
  List.iter
    (fun (name, nest) ->
      let analysis = Flow.analyze nest in
      let prepared = Cpa_ra.prepare analysis in
      let scratch = Simulator.scratch ~dfg:(Cpa_ra.dfg prepared) analysis in
      List.iter
        (fun budget ->
          if feasible analysis budget then begin
            let alloc =
              Allocator.run ~prepared Allocator.Cpa_ra analysis ~budget
            in
            check_same
              (Printf.sprintf "%s budget %d" name budget)
              (reference_run alloc)
              (Simulator.run ~scratch alloc)
          end)
        budgets)
    kernels

(* The dynamic residency policies bypass the rank cache; they must agree
   with the reference walk too. *)
let test_differential_dynamic () =
  List.iter
    (fun (name, nest) ->
      let analysis = Flow.analyze nest in
      let scratch = Simulator.scratch analysis in
      let alloc = Allocator.run Allocator.Cpa_ra analysis ~budget:64 in
      List.iter
        (fun policy ->
          let config =
            { Simulator.default_config with Simulator.residency = policy }
          in
          check_same
            (Printf.sprintf "%s %s" name (Residency.policy_name policy))
            (reference_run ~config alloc)
            (Simulator.run ~config ~scratch alloc))
        [ Residency.Lru; Residency.Direct_mapped ])
    kernels

(* Degrading the bitmask memo to the bytes-key fallback must not change a
   single number. *)
let test_mask_fallback () =
  List.iter
    (fun (name, nest) ->
      let analysis = Flow.analyze nest in
      let scratch = Simulator.scratch analysis in
      let alloc = Allocator.run Allocator.Cpa_ra analysis ~budget:64 in
      let degraded =
        { Simulator.default_config with Simulator.mask_group_cap = 1 }
      in
      check_same
        (Printf.sprintf "%s mask fallback" name)
        (Simulator.run alloc)
        (Simulator.run ~config:degraded ~scratch alloc))
    kernels

(* A scratch built for one analysis is ignored for another (fresh state
   built on the fly) instead of corrupting the result. *)
let test_foreign_scratch_ignored () =
  let _, nest_a = List.nth kernels 0 in
  let name_b, nest_b = List.nth kernels 1 in
  let analysis_a = Flow.analyze nest_a in
  let analysis_b = Flow.analyze nest_b in
  let scratch_a = Simulator.scratch analysis_a in
  let alloc_b = Allocator.run Allocator.Cpa_ra analysis_b ~budget:64 in
  check_same
    (Printf.sprintf "%s under foreign scratch" name_b)
    (Simulator.run alloc_b)
    (Simulator.run ~scratch:scratch_a alloc_b)

let test_profile_parity () =
  List.iter
    (fun (name, nest) ->
      let analysis = Flow.analyze nest in
      let scratch = Simulator.scratch analysis in
      let alloc = Allocator.run Allocator.Cpa_ra analysis ~budget:64 in
      let fresh = Simulator.profile alloc in
      let warm = Simulator.profile ~scratch alloc in
      Alcotest.(check (list (pair int int)))
        (Printf.sprintf "%s profile" name)
        fresh warm;
      Alcotest.(check int)
        (Printf.sprintf "%s profile covers all iterations" name)
        (Srfa_ir.Nest.iterations nest)
        (List.fold_left (fun acc (_, n) -> acc + n) 0 warm))
    kernels

(* Warm evaluations must stay off the allocator: after one warming run,
   a scratch-threaded simulation of the mat kernel allocates under 100 kB
   (the boxed path allocated megabytes per evaluation). *)
let test_allocation_budget () =
  let nest = List.assoc "mat" kernels in
  let analysis = Flow.analyze nest in
  let prepared = Cpa_ra.prepare analysis in
  let scratch = Simulator.scratch ~dfg:(Cpa_ra.dfg prepared) analysis in
  let alloc = Allocator.run ~prepared Allocator.Cpa_ra analysis ~budget:64 in
  ignore (Simulator.run ~scratch alloc);
  let before = Gc.allocated_bytes () in
  ignore (Simulator.run ~scratch alloc);
  let spent = Gc.allocated_bytes () -. before in
  if spent >= 100_000.0 then
    Alcotest.failf "warm evaluation allocated %.0f bytes (budget 100000)"
      spent

let () =
  Alcotest.run "simulator_scratch"
    [
      ( "differential",
        [
          Alcotest.test_case "pinned: kernels x budgets vs boxed reference"
            `Quick test_differential_pinned;
          Alcotest.test_case "dynamic policies vs boxed reference" `Quick
            test_differential_dynamic;
          Alcotest.test_case "bytes-key memo fallback identical" `Quick
            test_mask_fallback;
          Alcotest.test_case "foreign scratch ignored" `Quick
            test_foreign_scratch_ignored;
          Alcotest.test_case "profile parity and coverage" `Quick
            test_profile_parity;
        ] );
      ( "allocation",
        [
          Alcotest.test_case "warm evaluation allocation budget" `Quick
            test_allocation_budget;
        ] );
    ]
