(* Srfa_util.Lru: the byte-budget LRU behind the serve caches.
   Insert/hit/evict order, exact cost accounting, and the zero-capacity
   degeneracy the server relies on for cacheless operation. *)

module Lru = Srfa_util.Lru

let keys t = List.map fst (Lru.to_alist t)

let test_insert_hit_evict_order () =
  let t = Lru.create ~capacity:30 in
  List.iter
    (fun k -> assert (Lru.add t k ~cost:10 k = []))
    [ "a"; "b"; "c" ];
  Alcotest.(check (list string)) "mru first" [ "c"; "b"; "a" ] (keys t);
  (* A hit moves the entry to the warm end... *)
  Alcotest.(check (option string)) "hit" (Some "a") (Lru.find t "a");
  Alcotest.(check (list string)) "after hit" [ "a"; "c"; "b" ] (keys t);
  (* ...so the next eviction takes the coldest, now "b". *)
  Alcotest.(check (list (pair string string)))
    "evicted coldest" [ ("b", "b") ]
    (Lru.add t "d" ~cost:10 "d");
  Alcotest.(check (list string)) "after evict" [ "d"; "a"; "c" ] (keys t)

let test_cost_accounting () =
  let t = Lru.create ~capacity:100 in
  ignore (Lru.add t "a" ~cost:40 "a");
  ignore (Lru.add t "b" ~cost:50 "b");
  Alcotest.(check int) "used" 90 (Lru.used t);
  (* Replacement re-accounts the old cost. *)
  ignore (Lru.add t "a" ~cost:10 "a2");
  Alcotest.(check int) "used after replace" 60 (Lru.used t);
  Alcotest.(check (option string)) "replaced value" (Some "a2")
    (Lru.find t "a");
  (* A multi-entry cascade keeps the invariant used <= capacity. *)
  let evicted = Lru.add t "big" ~cost:95 "big" in
  Alcotest.(check (list string))
    "cascade evicts coldest first" [ "b"; "a" ] (List.map fst evicted);
  Alcotest.(check int) "used after cascade" 95 (Lru.used t);
  Alcotest.(check int) "length" 1 (Lru.length t);
  Lru.remove t "big";
  Alcotest.(check int) "used after remove" 0 (Lru.used t);
  (* Negative costs clamp to zero instead of creating budget. *)
  ignore (Lru.add t "n" ~cost:(-5) "n");
  Alcotest.(check int) "negative cost clamps" 0 (Lru.used t)

let test_oversized_value () =
  let t = Lru.create ~capacity:10 in
  ignore (Lru.add t "a" ~cost:4 "a");
  let evicted = Lru.add t "huge" ~cost:11 "huge" in
  (* The oversized value itself falls out; the resident small entry is
     only sacrificed if it had to be (it did: eviction is cold-first and
     "a" was colder). *)
  Alcotest.(check (list string))
    "oversized never resident" [ "a"; "huge" ] (List.map fst evicted);
  Alcotest.(check int) "empty after oversized" 0 (Lru.length t);
  Alcotest.(check int) "no cost retained" 0 (Lru.used t)

let test_zero_capacity () =
  let t = Lru.create ~capacity:0 in
  Alcotest.(check (list (pair string string)))
    "add bounces" [ ("k", "v") ]
    (Lru.add t "k" ~cost:1 "v");
  Alcotest.(check (option string)) "never hits" None (Lru.find t "k");
  Alcotest.(check int) "stays empty" 0 (Lru.length t);
  Alcotest.(check int) "no cost" 0 (Lru.used t);
  (* Zero-cost entries do fit a zero budget: the degenerate cache only
     rejects positive costs. Negative capacity behaves like zero. *)
  Alcotest.(check (list (pair string string)))
    "zero-cost entry fits" []
    (Lru.add t "free" ~cost:0 "v");
  let neg = Lru.create ~capacity:(-7) in
  Alcotest.(check bool) "negative capacity bounces" true
    (Lru.add neg "k" ~cost:1 "v" <> [])

(* Boundary arithmetic: cost == capacity is a fit, capacity + 1 is not,
   and a replacement that grows an entry past the budget evicts through
   the entry's own old incarnation rather than double-counting it. *)
let test_exact_fit () =
  let t = Lru.create ~capacity:10 in
  Alcotest.(check (list (pair string string)))
    "cost == capacity fits" []
    (Lru.add t "a" ~cost:10 "a");
  Alcotest.(check int) "budget saturated" 10 (Lru.used t);
  (* Any further positive-cost insert must push "a" out. *)
  let evicted = Lru.add t "b" ~cost:1 "b" in
  Alcotest.(check (list string)) "saturation evicts" [ "a" ]
    (List.map fst evicted);
  Alcotest.(check int) "used tracks the survivor" 1 (Lru.used t);
  (* Growing "b" in place to exactly the budget is still a fit... *)
  Alcotest.(check (list (pair string string)))
    "replacement to exact fit" []
    (Lru.add t "b" ~cost:10 "b2");
  Alcotest.(check int) "exact after growth" 10 (Lru.used t);
  (* ...but growing it past the budget bounces the new incarnation
     without resurrecting the old one. *)
  let bounced = Lru.add t "b" ~cost:11 "b3" in
  Alcotest.(check bool) "over-budget growth bounces" true
    (List.mem_assoc "b" bounced);
  Alcotest.(check (option string)) "old incarnation gone" None (Lru.find t "b");
  Alcotest.(check int) "nothing left resident" 0 (Lru.used t)

let test_oversized_into_empty () =
  let t = Lru.create ~capacity:10 in
  (* No scapegoats available: the oversized entry alone falls out. *)
  Alcotest.(check (list (pair string string)))
    "only the oversized entry bounces" [ ("huge", "huge") ]
    (Lru.add t "huge" ~cost:11 "huge");
  Alcotest.(check int) "still empty" 0 (Lru.length t);
  Alcotest.(check int) "still unused" 0 (Lru.used t);
  (* The failed insert leaves no ghost state behind. *)
  Alcotest.(check bool) "not resident" false (Lru.mem t "huge");
  Alcotest.(check (list (pair string string)))
    "a fitting entry still fits" []
    (Lru.add t "small" ~cost:10 "small")

let test_zero_capacity_counters () =
  let t = Lru.create ~capacity:0 in
  ignore (Lru.add t "k" ~cost:1 "v");
  ignore (Lru.find t "k");
  ignore (Lru.find t "k");
  (* The degenerate cache is all misses — and the bounced insert counts
     as an eviction so stats still reveal the churn. *)
  Alcotest.(check int) "no hits" 0 (Lru.hits t);
  Alcotest.(check int) "all misses" 2 (Lru.misses t);
  Alcotest.(check int) "bounce counted as eviction" 1 (Lru.evictions t)

let test_counters () =
  let t = Lru.create ~capacity:20 in
  ignore (Lru.add t "a" ~cost:10 "a");
  ignore (Lru.find t "a");
  ignore (Lru.find t "a");
  ignore (Lru.find t "ghost");
  ignore (Lru.add t "b" ~cost:10 "b");
  ignore (Lru.add t "c" ~cost:10 "c");
  Alcotest.(check int) "hits" 2 (Lru.hits t);
  Alcotest.(check int) "misses" 1 (Lru.misses t);
  Alcotest.(check int) "evictions" 1 (Lru.evictions t);
  Lru.remove t "b";
  Alcotest.(check int) "remove is not an eviction" 1 (Lru.evictions t);
  (* mem is a peek: no recency change, no counter change. *)
  ignore (Lru.add t "d" ~cost:10 "d");
  assert (Lru.mem t "c");
  Alcotest.(check int) "mem counts nothing" 2 (Lru.hits t);
  Alcotest.(check (list string)) "mem leaves order" [ "d"; "c" ] (keys t)

let () =
  Alcotest.run "lru"
    [
      ( "lru",
        [
          Alcotest.test_case "insert/hit/evict order" `Quick
            test_insert_hit_evict_order;
          Alcotest.test_case "cost accounting" `Quick test_cost_accounting;
          Alcotest.test_case "oversized value" `Quick test_oversized_value;
          Alcotest.test_case "zero capacity" `Quick test_zero_capacity;
          Alcotest.test_case "exact fit boundary" `Quick test_exact_fit;
          Alcotest.test_case "oversized into empty" `Quick
            test_oversized_into_empty;
          Alcotest.test_case "zero-capacity counters" `Quick
            test_zero_capacity_counters;
          Alcotest.test_case "hit/miss/evict counters" `Quick test_counters;
        ] );
    ]
