open Srfa_ir
open Srfa_test_helpers

let test_structure () =
  let nest = Helpers.small_mat () in
  let tiled = Tile.tile nest ~level:2 ~factor:2 in
  Alcotest.(check (list string)) "loop vars" [ "i"; "j"; "k_t"; "k_i" ]
    (Nest.loop_vars tiled);
  Alcotest.(check int) "iteration count preserved" (Nest.iterations nest)
    (Nest.iterations tiled);
  Alcotest.(check (list int)) "trip counts" [ 4; 4; 2; 2 ]
    (Nest.trip_counts tiled)

let test_semantics_preserved () =
  (* Strip-mining preserves the exact iteration order, hence all
     semantics, for every kernel and every level/factor. *)
  List.iter
    (fun (name, nest) ->
      let reference = Interp.run_fresh nest ~init:Helpers.init in
      List.iteri
        (fun level _ ->
          List.iter
            (fun factor ->
              let tiled = Tile.tile nest ~level ~factor in
              let result = Interp.run_fresh tiled ~init:Helpers.init in
              List.iter
                (fun (d : Decl.t) ->
                  if d.Decl.storage = Decl.Output then
                    Alcotest.(check bool)
                      (Printf.sprintf "%s level %d factor %d: %s" name level
                         factor d.Decl.name)
                      true
                      (Interp.equal_array reference result d.Decl.name))
                nest.Nest.arrays)
            (Tile.tileable_factors nest ~level))
        nest.Nest.loops)
    (Helpers.small_kernels ())

let test_indices_substituted () =
  let nest = Srfa_kernels.Kernels.fir ~taps:5 ~samples:16 () in
  (* x[i+j] with i tiled by 3 becomes x[i_i + 3*i_t + j] (terms sorted). *)
  let tiled = Tile.tile nest ~level:0 ~factor:3 in
  let an = Helpers.analyze tiled in
  let x = Helpers.info_named an "x[i_i+3*i_t+j]" in
  Alcotest.(check bool) "window still coupled" true
    x.Srfa_reuse.Analysis.has_reuse

let test_invalid () =
  let nest = Helpers.small_mat () in
  let invalid f =
    try
      ignore (f ());
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "factor 1 rejected" true
    (invalid (fun () -> Tile.tile nest ~level:0 ~factor:1));
  Alcotest.(check bool) "non-dividing factor rejected" true
    (invalid (fun () -> Tile.tile nest ~level:0 ~factor:3));
  Alcotest.(check bool) "bad level rejected" true
    (invalid (fun () -> Tile.tile nest ~level:9 ~factor:2))

let test_tileable_factors () =
  let nest = Srfa_kernels.Kernels.mat ~size:12 () in
  Alcotest.(check (list int)) "divisors of 12" [ 2; 3; 4; 6 ]
    (Tile.tileable_factors nest ~level:0)

let test_composes_with_interchange () =
  (* Tile then interchange: still the same values. *)
  let nest = Helpers.small_mat () in
  let tiled = Tile.tile nest ~level:2 ~factor:2 in
  Alcotest.(check bool) "tiled mat permutable" true
    (Permute.fully_permutable tiled);
  let moved = Permute.interchange tiled ~order:[ 2; 0; 1; 3 ] in
  let s1 = Interp.run_fresh nest ~init:Helpers.init in
  let s2 = Interp.run_fresh moved ~init:Helpers.init in
  Alcotest.(check bool) "values preserved" true (Interp.equal_array s1 s2 "c")

let test_full_pipeline_on_tiled () =
  (* The whole flow runs on tiled nests (allocation, simulation,
     transform equivalence). *)
  let nest = Tile.tile (Helpers.small_bic ()) ~level:1 ~factor:2 in
  let an = Helpers.analyze nest in
  List.iter
    (fun alg ->
      let alloc = Srfa_core.Allocator.run alg an ~budget:24 in
      let plan = Srfa_codegen.Plan.build alloc in
      Alcotest.(check bool)
        (Srfa_core.Allocator.name alg ^ " equivalent on tiled bic")
        true
        (Srfa_codegen.Exec_check.equivalent plan ~init:Helpers.init))
    Srfa_core.Allocator.all

let () =
  Alcotest.run "tile"
    [
      ( "unit",
        [
          Alcotest.test_case "structure" `Quick test_structure;
          Alcotest.test_case "semantics preserved" `Slow
            test_semantics_preserved;
          Alcotest.test_case "indices substituted" `Quick
            test_indices_substituted;
          Alcotest.test_case "invalid inputs" `Quick test_invalid;
          Alcotest.test_case "tileable factors" `Quick test_tileable_factors;
          Alcotest.test_case "composes with interchange" `Quick
            test_composes_with_interchange;
          Alcotest.test_case "full pipeline" `Quick
            test_full_pipeline_on_tiled;
        ] );
    ]
