(* The design-space explorer's contract (DESIGN.md §17): the frontier
   Flow.Core.explore returns is byte-identical whether the dominance
   cuts are on or off, whether the memoised or the naive evaluation
   path runs, and whether the variants fan out over a pool or run
   serially. On top of the differential checks, a golden pins the
   frontier JSON of the paper's running example, the entries memo is
   shown to actually fire on a saturating ladder, non-permutable nests
   degrade to the identity with W-GUARD-EXPLORE instead of raising,
   and certification composes (every real point carries an outcome). *)

open Srfa_ir
open Srfa_test_helpers
module Core = Srfa_core.Flow.Core
module Allocator = Srfa_core.Allocator
module Pool = Srfa_util.Pool

let json ?pool space nest =
  Core.frontier_json (Core.explore ?pool ~space Core.default_config nest)

(* A space with several variants so the pool and the pruner both have
   real work: all 6 orders of the running example plus one strip-mine
   factor, two algorithms. *)
let example_space =
  {
    Core.default_space with
    Core.orders = Core.All_orders;
    tile_factors = [ 2 ];
    space_budgets = [ 4; 8; 16 ];
    space_algorithms = [ Allocator.Cpa_ra; Allocator.Fr_ra ];
  }

(* Non-associative reduction: acc[i] -= x[j] is not reorderable, so
   All_orders must degrade to the identity (same fixture as
   test_permute's rejection tests). *)
let subred () =
  let open Builder in
  let x = input "x" [ 4 ] and acc = output "acc" [ 4 ] in
  let i = idx "i" and j = idx "j" in
  nest "subred" ~loops:[ ("i", 4); ("j", 4) ]
    [ at acc [ i ] <-- (acc.%[ [ i ] ] - x.%[ [ j ] ]) ]

let test_pruned_equals_exhaustive () =
  List.iter
    (fun (name, nest) ->
      let space = { example_space with Core.orders = Core.All_orders } in
      let pruned = json space nest in
      let exhaustive = json { space with Core.prune = false } nest in
      Alcotest.(check string) (name ^ ": pruned == exhaustive") exhaustive
        pruned)
    [ ("example", Helpers.example ()); ("subred", subred ()) ]

let test_memoised_equals_naive () =
  let nest = Helpers.example () in
  let memoised = json example_space nest in
  let naive =
    json { example_space with Core.naive = true; Core.prune = false } nest
  in
  Alcotest.(check string) "memoised == naive" naive memoised

let test_parallel_equals_serial () =
  let nest = Helpers.example () in
  let serial = json example_space nest in
  Pool.with_pool ~jobs:4 (fun pool ->
      Alcotest.(check string) "jobs=4 == jobs=1" serial
        (json ~pool example_space nest))

let test_memo_fires_on_saturating_ladder () =
  (* Budgets at and beyond full replacement produce identical entries,
     so one simulation must serve the whole tail of the ladder. *)
  let nest = Helpers.example () in
  let full =
    Srfa_reuse.Analysis.total_registers_full (Srfa_core.Flow.analyze nest)
  in
  let space =
    {
      Core.default_space with
      Core.orders = Core.Identity_order;
      space_budgets = [ full; full + 16; full + 32 ];
      space_algorithms = [ Allocator.Cpa_ra ];
    }
  in
  let f = Core.explore ~space Core.default_config nest in
  Alcotest.(check bool) "memo hits >= 2" true
    (f.Core.frontier_stats.Core.sim_memo_hits >= 2)

let test_nonpermutable_degrades_with_warning () =
  let nest = subred () in
  let space = { Core.default_space with Core.orders = Core.All_orders } in
  let f = Core.explore ~space Core.default_config nest in
  Alcotest.(check bool) "frontier non-empty" true (f.Core.points <> []);
  List.iter
    (fun (p : Core.explore_point) ->
      Alcotest.(check (list int)) "identity order only" [ 0; 1 ] p.Core.order)
    f.Core.points;
  Alcotest.(check bool) "W-GUARD-EXPLORE emitted" true
    (List.exists
       (fun (d : Srfa_util.Diag.t) -> d.Srfa_util.Diag.code = "W-GUARD-EXPLORE")
       f.Core.frontier_warnings)

let test_explicit_illegal_orders_skipped () =
  let nest = subred () in
  let space =
    { Core.default_space with Core.orders = Core.Orders [ [ 1; 0 ] ] }
  in
  let f = Core.explore ~space Core.default_config nest in
  Alcotest.(check int) "illegal order skipped" 1
    f.Core.frontier_stats.Core.orders_skipped;
  Alcotest.(check bool) "identity still evaluated" true (f.Core.points <> [])

let test_order_explorer_degrades () =
  let candidates, warnings =
    Srfa_core.Order_explorer.explore Allocator.Cpa_ra (subred ())
  in
  Alcotest.(check int) "identity candidate only" 1 (List.length candidates);
  Alcotest.(check bool) "W-GUARD-EXPLORE emitted" true
    (List.exists
       (fun (d : Srfa_util.Diag.t) -> d.Srfa_util.Diag.code = "W-GUARD-EXPLORE")
       warnings)

let test_certify_composes () =
  let nest = Helpers.example () in
  let space =
    {
      Core.default_space with
      Core.orders = Core.Identity_order;
      space_budgets = [ 4; 8 ];
      Core.certify = true;
    }
  in
  let f = Core.explore ~space Core.default_config nest in
  List.iter
    (fun (p : Core.explore_point) ->
      if p.Core.floor then
        Alcotest.(check bool)
          "floor points carry no certification" true
          (p.Core.point_cert = None)
      else
        Alcotest.(check bool)
          (Printf.sprintf "point %s@%d certified" p.Core.point_algorithm
             p.Core.point_budget)
          true
          (p.Core.point_cert <> None))
    f.Core.points;
  (* Certification does not break the pruning differential. *)
  let exhaustive =
    Core.explore ~space:{ space with Core.prune = false } Core.default_config
      nest
  in
  Alcotest.(check string) "certified: pruned == exhaustive"
    (Core.frontier_json exhaustive)
    (Core.frontier_json f)

(* Budget 4 sits below the example's feasibility minimum (5), so the
   ladder keeps budget 8 plus the unconditional floor point at the
   minimum itself. Any intentional model change must update this pin
   consciously, like test_goldens. *)
let golden =
  {|{
  "kernel": "example",
  "points": [
    {"label": "untiled | i j k", "order": [0, 1, 2], "loop_vars": ["i", "j", "k"], "budget": 8, "algorithm": "cpa-ra", "floor": false, "cycles": 2919, "registers": 8, "slices": 414, "clock_ns": 45.340, "exec_time_us": 132.347},
    {"label": "untiled | i j k", "order": [0, 1, 2], "loop_vars": ["i", "j", "k"], "budget": 5, "algorithm": "floor", "floor": true, "cycles": 3000, "registers": 5, "slices": 310, "clock_ns": 41.350, "exec_time_us": 124.050}
  ]
}|}

let test_frontier_json_golden () =
  let nest = Helpers.example () in
  let space =
    {
      Core.default_space with
      Core.orders = Core.Identity_order;
      space_budgets = [ 4; 8 ];
      space_algorithms = [ Allocator.Cpa_ra ];
    }
  in
  Alcotest.(check string) "frontier JSON pinned" golden
    (json space nest)

let test_csv_shape () =
  let nest = Helpers.example () in
  let space =
    {
      Core.default_space with
      Core.orders = Core.Identity_order;
      space_budgets = [ 4; 8 ];
      space_algorithms = [ Allocator.Cpa_ra ];
    }
  in
  let f = Core.explore ~space Core.default_config nest in
  let lines =
    String.split_on_char '\n' (String.trim (Core.frontier_csv f))
  in
  Alcotest.(check string) "csv header"
    "kernel,label,order,budget,algorithm,floor,cycles,registers,slices,clock_ns,exec_time_us"
    (List.hd lines);
  Alcotest.(check int) "one row per frontier point"
    (List.length f.Core.points)
    (List.length lines - 1)

let test_compact_json_single_line () =
  let nest = Helpers.example () in
  let f =
    Core.explore
      ~space:{ example_space with Core.orders = Core.Identity_order }
      Core.default_config nest
  in
  let compact = Core.frontier_json ~compact:true f in
  Alcotest.(check bool) "no newlines" false (String.contains compact '\n')

let () =
  Alcotest.run "explore"
    [
      ( "differential",
        [
          Alcotest.test_case "pruned == exhaustive" `Quick
            test_pruned_equals_exhaustive;
          Alcotest.test_case "memoised == naive" `Quick
            test_memoised_equals_naive;
          Alcotest.test_case "jobs=4 == jobs=1" `Quick
            test_parallel_equals_serial;
        ] );
      ( "perf layers",
        [
          Alcotest.test_case "memo fires when the ladder saturates" `Quick
            test_memo_fires_on_saturating_ladder;
        ] );
      ( "guards",
        [
          Alcotest.test_case "non-permutable degrades with W-GUARD-EXPLORE"
            `Quick test_nonpermutable_degrades_with_warning;
          Alcotest.test_case "explicit illegal orders skipped" `Quick
            test_explicit_illegal_orders_skipped;
          Alcotest.test_case "Order_explorer degrades without raising" `Quick
            test_order_explorer_degrades;
        ] );
      ( "composition",
        [
          Alcotest.test_case "certify composes" `Quick test_certify_composes;
          Alcotest.test_case "frontier JSON golden" `Quick
            test_frontier_json_golden;
          Alcotest.test_case "CSV shape" `Quick test_csv_shape;
          Alcotest.test_case "compact JSON is one line" `Quick
            test_compact_json_single_line;
        ] );
    ]
