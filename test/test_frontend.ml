open Srfa_ir
open Srfa_reuse
open Srfa_test_helpers
module Lexer = Srfa_frontend.Lexer
module Parser = Srfa_frontend.Parser

(* --- lexer ---------------------------------------------------------------- *)

let tokens src =
  List.map (fun (t : Lexer.located) -> t.Lexer.token) (Lexer.tokenize src)

let test_lexer_basics () =
  Alcotest.(check bool) "keywords and punctuation" true
    (tokens "kernel k { input int a[4]; }"
    = [
        Lexer.Kw_kernel; Lexer.Ident "k"; Lexer.Lbrace; Lexer.Kw_input;
        Lexer.Kw_int 16; Lexer.Ident "a"; Lexer.Lbracket; Lexer.Int 4;
        Lexer.Rbracket; Lexer.Semicolon; Lexer.Rbrace; Lexer.Eof;
      ])

let test_lexer_widths () =
  Alcotest.(check bool) "int8" true (tokens "int8" = [ Lexer.Kw_int 8; Lexer.Eof ]);
  Alcotest.(check bool) "int1" true (tokens "int1" = [ Lexer.Kw_int 1; Lexer.Eof ]);
  Alcotest.(check bool) "int32" true (tokens "int32" = [ Lexer.Kw_int 32; Lexer.Eof ]);
  Alcotest.(check bool) "intx is an identifier" true
    (tokens "intx" = [ Lexer.Ident "intx"; Lexer.Eof ])

let test_lexer_operators () =
  Alcotest.(check bool) "compound tokens" true
    (tokens "++ += == < = + - * / & | ^"
    = [
        Lexer.Plus_plus; Lexer.Plus_assign; Lexer.Eq; Lexer.Lt; Lexer.Assign;
        Lexer.Plus; Lexer.Minus; Lexer.Star; Lexer.Slash; Lexer.Amp;
        Lexer.Pipe; Lexer.Caret; Lexer.Eof;
      ])

let test_lexer_comments () =
  Alcotest.(check bool) "comments skipped" true
    (tokens "for // trailing\n /* block\n comment */ 42"
    = [ Lexer.Kw_for; Lexer.Int 42; Lexer.Eof ])

let test_lexer_errors () =
  List.iter
    (fun src ->
      Alcotest.(check bool) (src ^ " rejected") true
        (try
           ignore (Lexer.tokenize src);
           false
         with Lexer.Error _ -> true))
    [ "@"; "12ab"; "/* unterminated" ]

let test_lexer_positions () =
  match Lexer.tokenize "for\n  x" with
  | [ f; x; _eof ] ->
    Alcotest.(check (pair int int)) "for at 1:1" (1, 1) (f.Lexer.line, f.Lexer.col);
    Alcotest.(check (pair int int)) "x at 2:3" (2, 3) (x.Lexer.line, x.Lexer.col)
  | _ -> Alcotest.fail "unexpected token count"

(* --- parser --------------------------------------------------------------- *)

let fir_src =
  {|kernel fir {
      input  int x[12];
      input  int c[4];
      output int y[9];
      for (i = 0; i < 9; i++)
        for (j = 0; j < 4; j++)
          y[i] += c[j] * x[i + j];
    }|}

let test_parse_fir () =
  let nest = Parser.parse fir_src in
  Alcotest.(check string) "name" "fir" nest.Nest.name;
  Alcotest.(check int) "iterations" 36 (Nest.iterations nest);
  let an = Helpers.analyze nest in
  Alcotest.(check int) "x window" 4 (Helpers.info_named an "x[i+j]").Analysis.nu;
  Alcotest.(check int) "accumulator" 1 (Helpers.info_named an "y[i]").Analysis.nu

let test_parse_matches_builder () =
  (* The shipped source files must agree with the built-in constructors on
     every analysis quantity. *)
  let pairs =
    [
      ("kernels_src/example.k", Srfa_kernels.Kernels.example ());
      ("kernels_src/fir.k", Srfa_kernels.Kernels.fir ());
      ("kernels_src/dec_fir.k", Srfa_kernels.Kernels.dec_fir ());
      ("kernels_src/mat.k", Srfa_kernels.Kernels.mat ());
      ("kernels_src/imi.k", Srfa_kernels.Kernels.imi ());
      ("kernels_src/pat.k", Srfa_kernels.Kernels.pat ());
      ("kernels_src/bic.k", Srfa_kernels.Kernels.bic ());
    ]
  in
  List.iter
    (fun (path, built) ->
      let parsed = Parser.parse_file (Helpers.find_repo_file path) in
      let a1 = Helpers.analyze parsed and a2 = Helpers.analyze built in
      Alcotest.(check int) (path ^ ": groups") (Analysis.num_groups a2)
        (Analysis.num_groups a1);
      Alcotest.(check int)
        (path ^ ": iterations")
        (Nest.iterations built) (Nest.iterations parsed);
      Array.iteri
        (fun gid (i2 : Analysis.info) ->
          let i1 = Analysis.info a1 gid in
          Alcotest.(check string) (path ^ ": group name")
            (Group.name i2.Analysis.group)
            (Group.name i1.Analysis.group);
          Alcotest.(check int) (path ^ ": nu") i2.Analysis.nu i1.Analysis.nu;
          Alcotest.(check int) (path ^ ": saved") i2.Analysis.saved_full
            i1.Analysis.saved_full)
        a2.Analysis.infos)
    pairs

let test_parse_matches_builder_semantics () =
  (* Same values computed, via the interpreter, on a small source. *)
  let src =
    {|kernel mini {
        input  int a[6][6];
        input  int b[6][6];
        output int c[6][6];
        for (i = 0; i < 6; i++)
          for (j = 0; j < 6; j++)
            for (k = 0; k < 6; k++)
              c[i][j] += a[i][k] * b[k][j];
      }|}
  in
  let parsed = Parser.parse src in
  let built = Srfa_kernels.Kernels.mat ~size:6 () in
  let s1 = Interp.run_fresh parsed ~init:Helpers.init in
  let s2 = Interp.run_fresh built ~init:Helpers.init in
  Alcotest.(check bool) "same outputs" true (Interp.equal_array s1 s2 "c")

let test_parse_expressions () =
  let src =
    {|kernel ops {
        input int a[4];
        input int b[4];
        output int o[4];
        for (i = 0; i < 4; i++)
          o[i] = min(a[i], b[i]) + max(a[i], b[i]) - abs(a[i] - b[i])
                 + (a[i] & b[i]) + (a[i] | b[i]) + (a[i] ^ b[i])
                 + (a[i] == b[i]) + (a[i] < b[i]) + a[i] / 2;
      }|}
  in
  let nest = Parser.parse src in
  let store = Interp.run_fresh nest ~init:(fun name c ->
      match name with "a" -> c.(0) + 1 | _ -> 3)
  in
  (* i = 2: a = 3, b = 3: min+max = 6, abs = 0, &=3, |=3, ^=0, ==1, <0, /1 *)
  Alcotest.(check int) "combined ops" 14 (Interp.read store "o" [| 2 |])

let test_parse_reduction_sugar () =
  let plain =
    Parser.parse
      {|kernel k { input int a[4]; output int s[1];
         for (i = 0; i < 4; i++) s[0] = s[0] + a[i]; }|}
  in
  let sugar =
    Parser.parse
      {|kernel k { input int a[4]; output int s[1];
         for (i = 0; i < 4; i++) s[0] += a[i]; }|}
  in
  let r1 = Interp.run_fresh plain ~init:Helpers.init in
  let r2 = Interp.run_fresh sugar ~init:Helpers.init in
  Alcotest.(check bool) "+= is sugar for accumulate" true
    (Interp.equal_array r1 r2 "s")

let rejects ?(exn = `Parser) name src =
  Alcotest.test_case name `Quick (fun () ->
      Alcotest.(check bool) "rejected" true
        (try
           ignore (Parser.parse src);
           false
         with
        | Parser.Error _ when exn = `Parser -> true
        | Lexer.Error _ when exn = `Lexer -> true
        | Invalid_argument _ when exn = `Semantic -> true))

let error_message_mentions src fragment =
  try
    ignore (Parser.parse src);
    false
  with Parser.Error msg -> Helpers.contains_substring msg fragment

let test_error_messages () =
  Alcotest.(check bool) "undeclared array named" true
    (error_message_mentions
       {|kernel k { output int y[4]; for (i = 0; i < 4; i++) y[i] = zz[i]; }|}
       "undeclared array zz");
  Alcotest.(check bool) "loop variable as value" true
    (error_message_mentions
       {|kernel k { output int y[4]; for (i = 0; i < 4; i++) y[i] = i; }|}
       "loop variable i");
  Alcotest.(check bool) "rank mismatch" true
    (error_message_mentions
       {|kernel k { input int a[4][4]; output int y[4];
          for (i = 0; i < 4; i++) y[i] = a[i]; }|}
       "rank 2");
  Alcotest.(check bool) "position included" true
    (error_message_mentions {|kernel k { input int a[4]; }|} "line 1")

(* --- round trip ----------------------------------------------------------- *)

let test_print_roundtrip () =
  List.iter
    (fun (name, nest) ->
      let reparsed = Parser.parse (Parser.print nest) in
      let a1 = Helpers.analyze nest and a2 = Helpers.analyze reparsed in
      Alcotest.(check int) (name ^ ": groups") (Analysis.num_groups a1)
        (Analysis.num_groups a2);
      Array.iteri
        (fun gid (i1 : Analysis.info) ->
          let i2 = Analysis.info a2 gid in
          Alcotest.(check int) (name ^ ": nu") i1.Analysis.nu i2.Analysis.nu)
        a1.Analysis.infos;
      (* and identical semantics *)
      let s1 = Interp.run_fresh nest ~init:Helpers.init in
      let s2 = Interp.run_fresh reparsed ~init:Helpers.init in
      List.iter
        (fun (d : Decl.t) ->
          if d.Decl.storage = Decl.Output then
            Alcotest.(check bool)
              (name ^ ": " ^ d.Decl.name)
              true
              (Interp.equal_array s1 s2 d.Decl.name))
        nest.Nest.arrays)
    (Helpers.small_kernels ())

let () =
  Alcotest.run "frontend"
    [
      ( "lexer",
        [
          Alcotest.test_case "basics" `Quick test_lexer_basics;
          Alcotest.test_case "widths" `Quick test_lexer_widths;
          Alcotest.test_case "operators" `Quick test_lexer_operators;
          Alcotest.test_case "comments" `Quick test_lexer_comments;
          Alcotest.test_case "errors" `Quick test_lexer_errors;
          Alcotest.test_case "positions" `Quick test_lexer_positions;
        ] );
      ( "parser",
        [
          Alcotest.test_case "fir" `Quick test_parse_fir;
          Alcotest.test_case "sources match builders" `Quick
            test_parse_matches_builder;
          Alcotest.test_case "semantics match builders" `Quick
            test_parse_matches_builder_semantics;
          Alcotest.test_case "expression forms" `Quick test_parse_expressions;
          Alcotest.test_case "reduction sugar" `Quick
            test_parse_reduction_sugar;
          Alcotest.test_case "error messages" `Quick test_error_messages;
        ] );
      ( "rejections",
        [
          rejects "missing kernel keyword" "for (i = 0; i < 4; i++) x = 1;";
          rejects "duplicate array"
            {|kernel k { input int a[4]; input int a[4];
               for (i = 0; i < 4; i++) a[i] = 1; }|};
          rejects "duplicate loop variable"
            {|kernel k { output int y[4][4];
               for (i = 0; i < 4; i++) for (i = 0; i < 4; i++) y[i][i] = 1; }|};
          rejects "non-zero lower bound"
            {|kernel k { output int y[4]; for (i = 1; i < 4; i++) y[i] = 1; }|};
          rejects "array in index"
            {|kernel k { input int a[4]; output int y[4];
               for (i = 0; i < 4; i++) y[a[i]] = 1; }|};
          rejects "empty body"
            {|kernel k { output int y[4]; for (i = 0; i < 4; i++) { } }|};
          rejects ~exn:`Semantic "out of bounds"
            {|kernel k { input int a[4]; output int y[4];
               for (i = 0; i < 4; i++) y[i] = a[i + 1]; }|};
          rejects "missing semicolon"
            {|kernel k { output int y[4]; for (i = 0; i < 4; i++) y[i] = 1 }|};
          rejects "trailing garbage"
            {|kernel k { output int y[4]; for (i = 0; i < 4; i++) y[i] = 1; } zz|};
        ] );
      ( "round trip",
        [ Alcotest.test_case "print/parse" `Quick test_print_roundtrip ] );
    ]
