(* The polynomial cut engine: Dinic max-flow, the bitset substrate, and
   the flow-vs-exhaustive equivalence CPA-RA now depends on. *)

open Srfa_reuse
open Srfa_test_helpers
module Bitset = Srfa_util.Bitset
module Prng = Srfa_util.Prng
module Graph = Srfa_dfg.Graph
module Critical = Srfa_dfg.Critical
module Cut = Srfa_dfg.Cut
module Flownet = Srfa_dfg.Flownet

let latency = Srfa_hw.Latency.default

(* ---- bitset ----------------------------------------------------------- *)

let test_bitset_basics () =
  let s = Bitset.create 200 in
  Alcotest.(check bool) "empty" true (Bitset.is_empty s);
  List.iter (Bitset.add s) [ 0; 63; 64; 127; 199 ];
  Alcotest.(check int) "cardinal" 5 (Bitset.cardinal s);
  Alcotest.(check bool) "mem 63" true (Bitset.mem s 63);
  Alcotest.(check bool) "mem 62" false (Bitset.mem s 62);
  Bitset.remove s 63;
  Alcotest.(check bool) "removed" false (Bitset.mem s 63);
  Alcotest.(check (list int)) "ascending iteration" [ 0; 64; 127; 199 ]
    (Bitset.to_list s);
  Bitset.clear s;
  Alcotest.(check bool) "cleared" true (Bitset.is_empty s);
  Alcotest.(check bool) "bounds checked" true
    (try
       ignore (Bitset.mem s 200);
       false
     with Invalid_argument _ -> true)

(* ---- raw Dinic -------------------------------------------------------- *)

let test_max_flow_classic () =
  (* The textbook 4-node diamond with a cross edge: max flow 2000 + 1. *)
  let net = Flownet.create 4 in
  ignore (Flownet.add_edge net 0 1 1000);
  ignore (Flownet.add_edge net 0 2 1000);
  ignore (Flownet.add_edge net 1 3 1000);
  ignore (Flownet.add_edge net 2 3 1000);
  ignore (Flownet.add_edge net 1 2 1);
  Alcotest.(check int) "diamond" 2000
    (Flownet.max_flow net ~source:0 ~sink:3);
  (* Runs are idempotent: capacities are restored between runs. *)
  Alcotest.(check int) "idempotent" 2000
    (Flownet.max_flow net ~source:0 ~sink:3)

let test_max_flow_bottleneck_and_setcap () =
  let net = Flownet.create 3 in
  let e = Flownet.add_edge net 0 1 7 in
  ignore (Flownet.add_edge net 1 2 100);
  Alcotest.(check int) "bottleneck" 7 (Flownet.max_flow net ~source:0 ~sink:2);
  Flownet.set_cap net e 3;
  Alcotest.(check int) "after set_cap" 3
    (Flownet.max_flow net ~source:0 ~sink:2);
  Alcotest.(check bool) "limit short-circuits" true
    (Flownet.max_flow ~limit:1 net ~source:0 ~sink:2 > 1)

(* ---- the CPA-RA round-1 state, shared by the equivalence tests -------- *)

let round1 analysis =
  let info gid = Analysis.info analysis gid in
  let charged (g : Group.t) =
    let i = info g.Group.id in
    (not i.Analysis.has_reuse) || 1 < i.Analysis.nu
  in
  let improvable (g : Group.t) =
    let i = info g.Group.id in
    i.Analysis.has_reuse && 1 < i.Analysis.nu
  in
  let weight (g : Group.t) = (info g.Group.id).Analysis.nu - 1 in
  (charged, improvable, weight)

(* Exactly what Cpa_ra.allocate did before the flow engine: every minimal
   cut, keep the all-improvable ones, fold to the first strictly-cheapest
   (the enumeration order is cardinality then lexicographic positions, so
   the fold realises the (weight, cardinality, positions) tie-break). *)
let reference_cheapest cg ~eligible ~weight =
  let cuts = Cut.enumerate_exhaustive cg in
  let eligible_cuts = List.filter (List.for_all eligible) cuts in
  let required = List.fold_left (fun acc g -> acc + weight g) 0 in
  List.fold_left
    (fun acc cut ->
      match acc with
      | None -> Some (cut, required cut)
      | Some (_, b) -> if required cut < b then Some (cut, required cut) else acc)
    None eligible_cuts

let names cut = List.map Group.name cut

(* ---- Fig. 2 mirror ---------------------------------------------------- *)

let test_fig2_round1_cut () =
  let analysis = Helpers.analyze (Helpers.example ()) in
  let dfg = Graph.build analysis in
  let charged, improvable, weight = round1 analysis in
  let cg = Critical.make dfg ~latency ~charged in
  match Cut.cheapest cg ~eligible:improvable ~weight with
  | None -> Alcotest.fail "no cut on the Fig. 2 CG"
  | Some (cut, w) ->
    Alcotest.(check (list string)) "round 1 picks {d}" [ "d[i][k]" ] (names cut);
    Alcotest.(check int) "29 extra registers" 29 w

let test_fig2_round2_cut () =
  (* After d is fully covered it stops being charged; the engine must fall
     back to the paper's second choice, {a, b}. *)
  let analysis = Helpers.analyze (Helpers.example ()) in
  let dfg = Graph.build analysis in
  let d = (Helpers.info_named analysis "d[i][k]").Analysis.group in
  let info gid = Analysis.info analysis gid in
  let charged (g : Group.t) =
    g.Group.id <> d.Group.id
    &&
    let i = info g.Group.id in
    (not i.Analysis.has_reuse) || 1 < i.Analysis.nu
  in
  let improvable (g : Group.t) =
    g.Group.id <> d.Group.id
    &&
    let i = info g.Group.id in
    i.Analysis.has_reuse && 1 < i.Analysis.nu
  in
  let weight (g : Group.t) = (info g.Group.id).Analysis.nu - 1 in
  let cg = Critical.make dfg ~latency ~charged in
  match Cut.cheapest cg ~eligible:improvable ~weight with
  | None -> Alcotest.fail "no cut on the round-2 CG"
  | Some (cut, w) ->
    Alcotest.(check (list string)) "round 2 splits {a, b}"
      [ "a[k]"; "b[k][j]" ] (names cut);
    (* nu_a + nu_b - 2: far over the 30 registers left after {d}, which is
       why CPA-RA's final round divides them evenly instead. *)
    Alcotest.(check int) "628 for the pair" 628 w;
    (match reference_cheapest cg ~eligible:improvable ~weight with
    | None -> Alcotest.fail "oracle found no round-2 cut"
    | Some (rcut, rw) ->
      Alcotest.(check (list string)) "oracle agrees on the cut" (names rcut)
        (names cut);
      Alcotest.(check int) "oracle agrees on the weight" rw w)

(* ---- property: flow == exhaustive on random DAGs ---------------------- *)

(* Random two-deep nests whose bodies chain stores into later loads, so the
   DFGs are genuinely DAG-shaped (not just statement-parallel). Targets are
   never read before they are written, which keeps every improvable group
   on a single DFG node — the regime where the labelled vertex cut is
   exactly the node cut and the two engines must agree bit for bit. *)
let random_nest rng seed =
  let outer = 2 + Prng.int rng 3 in
  let inner = 2 + Prng.int rng 5 in
  let npool = 2 + Prng.int rng 4 in
  let nstmt = 1 + Prng.int rng 3 in
  let nleaves = List.init nstmt (fun _ -> 2 + Prng.int rng 3) in
  let open Srfa_ir.Builder in
  let i = idx "i" and j = idx "j" in
  let pool =
    List.init npool (fun p ->
        let shape = Prng.int rng 3 in
        let name = Printf.sprintf "x%d" p in
        match shape with
        | 0 -> (input name [ inner ], [ j ]) (* reuse across i *)
        | 1 -> (input name [ outer ], [ i ]) (* one-slot window *)
        | _ -> (input name [ Stdlib.( + ) outer inner ], [ i +: j ]))
  in
  let written = ref [] in
  let body =
    List.mapi
      (fun k nleaf ->
        let load () =
          (* Mostly pool loads, sometimes a read of an earlier target
             (write-to-read chaining, like d[i][k] in Fig. 1). Targets
             are never read before they are written, so no group ever
             splits into a source node plus a store node. *)
          if !written <> [] && Prng.int rng 4 = 0 then
            let d, ix = Prng.pick rng !written in
            d.%[ix]
          else
            let d, ix = Prng.pick rng pool in
            d.%[ix]
        in
        let rhs =
          List.fold_left
            (fun acc _ ->
              let op = Prng.pick rng [ ( + ); ( - ); ( * ) ] in
              op acc (load ()))
            (load ())
            (List.init (Stdlib.( - ) nleaf 1) Fun.id)
        in
        let target = output (Printf.sprintf "w%d" k) [ outer; inner ] in
        let ix = [ i; j ] in
        written := (target, ix) :: !written;
        at target ix <-- rhs)
      nleaves
  in
  nest
    (Printf.sprintf "random-%d" seed)
    ~loops:[ ("i", outer); ("j", inner) ]
    body

let test_property_flow_matches_exhaustive () =
  let agreements = ref 0 and cuts_found = ref 0 in
  for seed = 1 to 120 do
    let rng = Prng.create ~seed in
    let nest = random_nest rng seed in
    let analysis = Helpers.analyze nest in
    let dfg = Graph.build analysis in
    let charged, improvable, weight = round1 analysis in
    let cg = Critical.make dfg ~latency ~charged in
    let ngroups = List.length (Critical.charged_ref_groups cg) in
    Alcotest.(check bool)
      (Printf.sprintf "seed %d stays under the oracle's wall" seed)
      true (ngroups <= 14);
    let reference = reference_cheapest cg ~eligible:improvable ~weight in
    let flow = Cut.cheapest cg ~eligible:improvable ~weight in
    (match (reference, flow) with
    | None, None -> incr agreements
    | Some (rcut, rw), Some (fcut, fw) ->
      Alcotest.(check int)
        (Printf.sprintf "seed %d: cheapest weight" seed)
        rw fw;
      Alcotest.(check (list string))
        (Printf.sprintf "seed %d: tie-broken cut" seed)
        (names rcut) (names fcut);
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: flow cut disconnects" seed)
        true (Cut.is_cut cg fcut);
      incr agreements;
      incr cuts_found
    | Some (rcut, _), None ->
      Alcotest.failf "seed %d: flow missed cut {%s}" seed
        (String.concat ", " (names rcut))
    | None, Some (fcut, _) ->
      Alcotest.failf "seed %d: flow invented cut {%s}" seed
        (String.concat ", " (names fcut)));
    (* The CG under the all-in-RAM state must also agree (a different,
       usually larger candidate set than the round-1 state). *)
    let cg_all = Critical.make dfg ~latency ~charged:(fun _ -> true) in
    if List.length (Critical.charged_ref_groups cg_all) <= 14 then begin
      let r = reference_cheapest cg_all ~eligible:improvable ~weight in
      let f = Cut.cheapest cg_all ~eligible:improvable ~weight in
      Alcotest.(check (option (pair (list string) int)))
        (Printf.sprintf "seed %d: all-in-RAM state" seed)
        (Option.map (fun (c, w) -> (names c, w)) r)
        (Option.map (fun (c, w) -> (names c, w)) f)
    end
  done;
  Alcotest.(check int) "all seeds agree" 120 !agreements;
  (* The generator must actually exercise the engine, not vacuously agree
     on None. *)
  Alcotest.(check bool) "cuts were found" true (!cuts_found > 40)

(* ---- past the 16-group wall ------------------------------------------- *)

let test_24_groups_allocates () =
  (* The seed allocator hard-failed here: enumerate_exhaustive still
     refuses, but CPA-RA now goes through the flow engine. *)
  let nest = Srfa_kernels.Extra.synthetic_cut ~groups:24 () in
  let analysis = Helpers.analyze nest in
  let dfg = Graph.build analysis in
  let charged, _, _ = round1 analysis in
  let cg = Critical.make dfg ~latency ~charged in
  Alcotest.(check bool) "oracle still walls at 24 groups" true
    (try
       ignore (Cut.enumerate_exhaustive cg);
       false
     with Invalid_argument _ -> true);
  let budget = 64 in
  let alloc, trace =
    Srfa_core.Cpa_ra.allocate_traced analysis ~budget
  in
  Alcotest.(check bool) "rounds ran" true (trace <> []);
  Alcotest.(check bool) "budget respected" true
    (Allocation.total_registers alloc <= budget);
  (* Every selected cut member received registers beyond its pinned slot. *)
  List.iter
    (fun (step : Srfa_core.Cpa_ra.trace_step) ->
      List.iter
        (fun (g : Group.t) ->
          Alcotest.(check bool) "cut member improved" true
            (Allocation.beta alloc g.Group.id >= 1))
        step.Srfa_core.Cpa_ra.cut)
    trace

let test_48_groups_allocates () =
  let nest = Srfa_kernels.Extra.synthetic_cut ~groups:48 () in
  let analysis = Helpers.analyze nest in
  let alloc = Srfa_core.Cpa_ra.allocate analysis ~budget:128 in
  Alcotest.(check bool) "48-group allocation fits" true
    (Allocation.total_registers alloc <= 128)

let test_synthetic_kernel_shape () =
  List.iter
    (fun g ->
      let nest = Srfa_kernels.Extra.synthetic_cut ~groups:g () in
      let analysis = Helpers.analyze nest in
      Alcotest.(check int)
        (Printf.sprintf "%d groups requested" g)
        g (Analysis.num_groups analysis);
      (* Every copy has the same critical-path latency, so the whole body
         must be on the CG. *)
      let dfg = Graph.build analysis in
      let cg = Critical.make dfg ~latency ~charged:(fun _ -> true) in
      Alcotest.(check int)
        (Printf.sprintf "%d groups all critical" g)
        g
        (List.length (Critical.ref_groups cg)))
    [ 2; 3; 5; 8; 12; 16; 24; 48 ]

let () =
  Alcotest.run "flownet"
    [
      ( "bitset",
        [ Alcotest.test_case "basics" `Quick test_bitset_basics ] );
      ( "dinic",
        [
          Alcotest.test_case "classic diamond" `Quick test_max_flow_classic;
          Alcotest.test_case "bottleneck and set_cap" `Quick
            test_max_flow_bottleneck_and_setcap;
        ] );
      ( "fig2 mirror",
        [
          Alcotest.test_case "round 1 picks {d}" `Quick test_fig2_round1_cut;
          Alcotest.test_case "round 2 picks {a,b}" `Quick test_fig2_round2_cut;
        ] );
      ( "equivalence",
        [
          Alcotest.test_case "flow == exhaustive on random DAGs" `Quick
            test_property_flow_matches_exhaustive;
        ] );
      ( "beyond the wall",
        [
          Alcotest.test_case "24-group kernel allocates" `Quick
            test_24_groups_allocates;
          Alcotest.test_case "48-group kernel allocates" `Quick
            test_48_groups_allocates;
          Alcotest.test_case "synthetic kernel shape" `Quick
            test_synthetic_kernel_shape;
        ] );
    ]
