open Srfa_reuse
open Srfa_test_helpers
module Allocator = Srfa_core.Allocator

let analysis () = Helpers.analyze (Helpers.example ())

let betas alloc =
  List.map
    (fun name -> (name, Helpers.beta_named alloc name))
    [ "a[k]"; "b[k][j]"; "c[j]"; "d[i][k]"; "e[i][j][k]" ]

(* The exact Fig. 2(c) distributions under a 64-register budget. *)
let test_fr_distribution () =
  let alloc = Allocator.run Allocator.Fr_ra (analysis ()) ~budget:64 in
  Alcotest.(check (list (pair string int)))
    "FR-RA = {a:30, b:1, c:20, d:1, e:1}"
    [ ("a[k]", 30); ("b[k][j]", 1); ("c[j]", 20); ("d[i][k]", 1);
      ("e[i][j][k]", 1) ]
    (betas alloc);
  Alcotest.(check int) "11 registers stranded" 53
    (Allocation.total_registers alloc)

let test_pr_distribution () =
  let alloc = Allocator.run Allocator.Pr_ra (analysis ()) ~budget:64 in
  Alcotest.(check (list (pair string int)))
    "PR-RA gives the 11 leftovers to d"
    [ ("a[k]", 30); ("b[k][j]", 1); ("c[j]", 20); ("d[i][k]", 12);
      ("e[i][j][k]", 1) ]
    (betas alloc);
  Alcotest.(check int) "uses the full budget" 64
    (Allocation.total_registers alloc)

let test_cpa_distribution () =
  let alloc = Allocator.run Allocator.Cpa_ra (analysis ()) ~budget:64 in
  Alcotest.(check (list (pair string int)))
    "CPA-RA = {a:16, b:16, c:1, d:30, e:1}"
    [ ("a[k]", 16); ("b[k][j]", 16); ("c[j]", 1); ("d[i][k]", 30);
      ("e[i][j][k]", 1) ]
    (betas alloc)

let test_cpa_trace () =
  let an = analysis () in
  let _, trace = Srfa_core.Cpa_ra.allocate_traced an ~budget:64 in
  match trace with
  | [ first; second ] ->
    Alcotest.(check (list string)) "round 1 picks {d}" [ "d[i][k]" ]
      (List.map Group.name first.Srfa_core.Cpa_ra.cut);
    Alcotest.(check bool) "round 1 full" true
      first.Srfa_core.Cpa_ra.granted_full;
    Alcotest.(check (list string)) "round 2 picks {a,b}"
      [ "a[k]"; "b[k][j]" ]
      (List.map Group.name second.Srfa_core.Cpa_ra.cut);
    Alcotest.(check bool) "round 2 split" false
      second.Srfa_core.Cpa_ra.granted_full
  | steps -> Alcotest.failf "expected 2 trace steps, got %d" (List.length steps)

let test_pinning_policies () =
  let an = analysis () in
  let fr = Allocator.run Allocator.Fr_ra an ~budget:64 in
  (* FR pins only explicitly allocated groups. *)
  let b = Helpers.info_named an "b[k][j]" in
  Alcotest.(check bool) "FR leaves b unpinned" false
    (Allocation.entry fr b.Analysis.group.Group.id).Allocation.pinned;
  let a = Helpers.info_named an "a[k]" in
  Alcotest.(check bool) "FR pins a" true
    (Allocation.entry fr a.Analysis.group.Group.id).Allocation.pinned;
  (* CPA pins everything. *)
  let cpa = Allocator.run Allocator.Cpa_ra an ~budget:64 in
  for gid = 0 to Analysis.num_groups an - 1 do
    Alcotest.(check bool) "CPA pins all" true
      (Allocation.entry cpa gid).Allocation.pinned
  done

let test_budget_below_minimum_raises () =
  let an = analysis () in
  List.iter
    (fun alg ->
      Alcotest.(check bool)
        (Allocator.name alg ^ " rejects tiny budget")
        true
        (try
           ignore (Allocator.run alg an ~budget:4);
           false
         with Invalid_argument _ -> true))
    Allocator.all

let test_budget_exactly_minimum () =
  let an = analysis () in
  List.iter
    (fun alg ->
      let alloc = Allocator.run alg an ~budget:5 in
      Alcotest.(check int)
        (Allocator.name alg ^ " uses one register per group")
        5
        (Allocation.total_registers alloc))
    Allocator.all

let test_huge_budget_allocates_everything () =
  let an = analysis () in
  let full = Analysis.total_registers_full an in
  List.iter
    (fun alg ->
      let alloc = Allocator.run alg an ~budget:(full + 100) in
      (* Every group with reuse ends fully covered. *)
      for gid = 0 to Analysis.num_groups an - 1 do
        let info = Analysis.info an gid in
        if info.Analysis.has_reuse && info.Analysis.saved_full > 0 then
          Alcotest.(check bool)
            (Allocator.name alg ^ ": group fully covered")
            true
            (Allocation.is_full alloc gid)
      done)
    [ Allocator.Fr_ra; Allocator.Pr_ra; Allocator.Knapsack ]

let test_huge_budget_cpa_is_frugal_but_fastest () =
  (* CPA-RA stops once no remaining cut can shorten the critical path (the
     example's c[j] fetch hides under op1, so covering it buys nothing) —
    yet its schedule is at least as fast as anyone's. *)
  let an = analysis () in
  let budget = Analysis.total_registers_full an + 100 in
  let cycles alg =
    let alloc = Allocator.run alg an ~budget in
    (Srfa_sched.Simulator.run alloc).Srfa_sched.Simulator.total_cycles
  in
  let cpa = cycles Allocator.Cpa_ra in
  List.iter
    (fun alg ->
      Alcotest.(check bool)
        (Allocator.name alg ^ " not faster than cpa-ra")
        true
        (cpa <= cycles alg))
    [ Allocator.Fr_ra; Allocator.Pr_ra; Allocator.Knapsack ];
  let cpa_alloc = Allocator.run Allocator.Cpa_ra an ~budget in
  Alcotest.(check bool) "cpa spends less than everything" true
    (Allocation.total_registers cpa_alloc < budget)

let test_knapsack_beats_fr_on_saved_accesses () =
  (* FR's choice is one feasible knapsack solution, so the DP must save at
     least as many accesses on every kernel. *)
  let saved alloc =
    let an = alloc.Allocation.analysis in
    List.fold_left
      (fun acc gid ->
        let i = Analysis.info an gid in
        if Allocation.is_full alloc gid && (Allocation.entry alloc gid).Allocation.pinned
        then acc + i.Analysis.saved_full
        else acc)
      0
      (List.init (Analysis.num_groups an) Fun.id)
  in
  List.iter
    (fun (name, nest) ->
      let an = Helpers.analyze nest in
      let budget = Srfa_core.Ordering.feasibility_minimum an + 12 in
      let fr = Allocator.run Allocator.Fr_ra an ~budget in
      let ks = Allocator.run Allocator.Knapsack an ~budget in
      Alcotest.(check bool)
        (name ^ ": knapsack saves at least as much")
        true
        (saved ks >= saved fr))
    (Helpers.small_kernels ())

let test_knapsack_optimal_small () =
  (* Brute-force check on the example: no subset of fully-replaced groups
     within the budget saves more accesses than the DP's choice. *)
  let an = analysis () in
  let budget = 64 in
  let capacity = budget - Analysis.num_groups an in
  let infos = Array.to_list an.Analysis.infos in
  let candidates =
    List.filter
      (fun (i : Analysis.info) ->
        i.Analysis.has_reuse && i.Analysis.saved_full > 0)
      infos
  in
  let rec best = function
    | [] -> fun cap -> if cap >= 0 then 0 else min_int
    | (i : Analysis.info) :: rest ->
      fun cap ->
        let skip = best rest cap in
        let take =
          let cap' = cap - (i.Analysis.nu - 1) in
          if cap' >= 0 then i.Analysis.saved_full + best rest cap'
          else min_int
        in
        max skip take
  in
  let optimum = best candidates capacity in
  let ks = Allocator.run Allocator.Knapsack an ~budget in
  let achieved =
    List.fold_left
      (fun acc (i : Analysis.info) ->
        let gid = i.Analysis.group.Group.id in
        if Allocation.is_full ks gid && (Allocation.entry ks gid).Allocation.pinned
        then acc + i.Analysis.saved_full
        else acc)
      0 infos
  in
  Alcotest.(check int) "DP achieves the optimum" optimum achieved

let test_pr_extends_fr () =
  (* PR never takes registers away from FR's choices. *)
  List.iter
    (fun (name, nest) ->
      let an = Helpers.analyze nest in
      let budget = Srfa_core.Ordering.feasibility_minimum an + 9 in
      let fr = Allocator.run Allocator.Fr_ra an ~budget in
      let pr = Allocator.run Allocator.Pr_ra an ~budget in
      for gid = 0 to Analysis.num_groups an - 1 do
        Alcotest.(check bool)
          (name ^ ": pr >= fr per group")
          true
          (Allocation.beta pr gid >= Allocation.beta fr gid)
      done)
    (Helpers.small_kernels ())

let test_version_labels () =
  Alcotest.(check string) "v1" "v1" (Allocator.version_label Allocator.Fr_ra);
  Alcotest.(check string) "v2" "v2" (Allocator.version_label Allocator.Pr_ra);
  Alcotest.(check string) "v3" "v3" (Allocator.version_label Allocator.Cpa_ra);
  Alcotest.(check bool) "of_name roundtrip" true
    (List.for_all
       (fun alg -> Allocator.of_name (Allocator.name alg) = Some alg)
       Allocator.all);
  (* of_name is case-insensitive: the round trip survives any casing of
     the canonical name and of the version label aliases. *)
  Alcotest.(check bool) "of_name roundtrip, upper case" true
    (List.for_all
       (fun alg ->
         Allocator.of_name (String.uppercase_ascii (Allocator.name alg))
         = Some alg)
       Allocator.all);
  Alcotest.(check bool) "of_name roundtrip, mixed case" true
    (List.for_all
       (fun alg ->
         Allocator.of_name (String.capitalize_ascii (Allocator.name alg))
         = Some alg)
       Allocator.all);
  Alcotest.(check bool) "short aliases, any case" true
    (List.for_all
       (fun (s, alg) -> Allocator.of_name s = Some alg)
       [
         ("FR", Allocator.Fr_ra); ("Pr", Allocator.Pr_ra);
         ("CPA", Allocator.Cpa_ra); ("CPA+", Allocator.Cpa_plus);
         ("Knapsack", Allocator.Knapsack); ("KS-RA", Allocator.Knapsack);
         ("Portfolio", Allocator.Portfolio);
         ("best-of", Allocator.Portfolio); ("Cert", Allocator.Portfolio);
       ]);
  Alcotest.(check bool) "unknown name" true (Allocator.of_name "zz" = None)

let () =
  Alcotest.run "allocators"
    [
      ( "fig2 distributions",
        [
          Alcotest.test_case "fr-ra" `Quick test_fr_distribution;
          Alcotest.test_case "pr-ra" `Quick test_pr_distribution;
          Alcotest.test_case "cpa-ra" `Quick test_cpa_distribution;
          Alcotest.test_case "cpa trace" `Quick test_cpa_trace;
          Alcotest.test_case "pinning policies" `Quick test_pinning_policies;
        ] );
      ( "budgets",
        [
          Alcotest.test_case "below minimum raises" `Quick
            test_budget_below_minimum_raises;
          Alcotest.test_case "exactly minimum" `Quick
            test_budget_exactly_minimum;
          Alcotest.test_case "huge budget" `Quick
            test_huge_budget_allocates_everything;
          Alcotest.test_case "huge budget: cpa frugal" `Quick
            test_huge_budget_cpa_is_frugal_but_fastest;
        ] );
      ( "knapsack",
        [
          Alcotest.test_case "dominates fr on saved accesses" `Quick
            test_knapsack_beats_fr_on_saved_accesses;
          Alcotest.test_case "optimal on the example" `Quick
            test_knapsack_optimal_small;
        ] );
      ( "misc",
        [
          Alcotest.test_case "pr extends fr" `Quick test_pr_extends_fr;
          Alcotest.test_case "version labels" `Quick test_version_labels;
        ] );
    ]
