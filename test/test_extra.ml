open Srfa_reuse
open Srfa_test_helpers
module Extra = Srfa_kernels.Extra
module Simulator = Srfa_sched.Simulator

let test_registry () =
  Alcotest.(check int) "four extra kernels" 4 (List.length (Extra.all ()));
  List.iter
    (fun (name, _) ->
      Alcotest.(check bool) (name ^ " findable") true (Extra.find name <> None);
      Alcotest.(check bool)
        (name ^ " findable through Kernels")
        true
        (Srfa_kernels.Kernels.find name <> None))
    (Extra.all ())

let test_conv2d_windows () =
  let an = Helpers.analyze (Extra.conv2d ()) in
  let m = Helpers.info_named an "m[u][v]" in
  Alcotest.(check int) "mask window 9" 9 m.Analysis.nu;
  let im = Helpers.info_named an "im[r+u][c+v]" in
  (* one row sweep touches mask-many rows of the full image width *)
  Alcotest.(check int) "image band 3x32" 96 im.Analysis.nu

let test_conv2d_semantics () =
  let nest = Extra.conv2d ~mask:2 ~image:4 () in
  let init name coords =
    match name with
    | "im" -> (3 * coords.(0)) + coords.(1)
    | "m" -> 1
    | _ -> 0
  in
  let store = Srfa_ir.Interp.run_fresh nest ~init in
  (* out[0][0] = im[0][0]+im[0][1]+im[1][0]+im[1][1] = 0+1+3+4 *)
  Alcotest.(check int) "out origin" 8 (Srfa_ir.Interp.read store "out" [| 0; 0 |])

let test_corner_turn_reuse_differs_from_mat () =
  (* a[k][i] in the corner turn is invariant to j like MAT's a[i][k], but
     its window content differs: one j-body sweeps a column. *)
  let an_ct = Helpers.analyze (Extra.corner_turn ~size:8 ()) in
  let a_ct = Helpers.info_named an_ct "a[k][i]" in
  Alcotest.(check int) "corner-turn a window" 8 a_ct.Analysis.nu;
  Alcotest.(check int) "carried at level 2" 2 a_ct.Analysis.window_level

let test_gradient_pair_two_components () =
  (* Two statements over disjoint arrays: the critical graph covers only
     one component's worth of cuts at a time. *)
  let nest = Extra.gradient_pair ~size:8 () in
  let an = Helpers.analyze nest in
  let dfg = Srfa_dfg.Graph.build an in
  (* 2 reads im + 1 write gx + 2 reads im2 + 1 write gy + 2 subs = 8 *)
  Alcotest.(check int) "eight nodes" 8 (Srfa_dfg.Graph.num_nodes dfg);
  let cg =
    Srfa_dfg.Critical.make dfg ~latency:Srfa_hw.Latency.default
      ~charged:(fun _ -> true)
  in
  (* Both components have equal path lengths, so cuts must hit both. *)
  let cuts = Srfa_dfg.Cut.enumerate_exhaustive cg in
  Alcotest.(check bool) "cuts exist" true (cuts <> []);
  List.iter
    (fun cut ->
      Alcotest.(check bool) "every cut spans both components" true
        (List.length cut >= 2))
    cuts

let test_extra_kernels_full_pipeline () =
  List.iter
    (fun (name, nest) ->
      let reports = Srfa_core.Flow.evaluate_all nest in
      Alcotest.(check int)
        (name ^ " one report per algorithm")
        (List.length Srfa_core.Allocator.all)
        (List.length reports);
      let base = List.hd reports in
      List.iter
        (fun r ->
          Alcotest.(check bool)
            (name ^ " " ^ r.Srfa_estimate.Report.version ^ " never slower in cycles")
            true
            (r.Srfa_estimate.Report.cycles <= base.Srfa_estimate.Report.cycles))
        (* The paper's three algorithms plus CPA+ never execute more cycles
           than the scalar base; the knapsack baseline optimises memory
           accesses, not the schedule, so it is excluded from the
           monotonicity claim. *)
        (List.filter
           (fun r -> r.Srfa_estimate.Report.version <> "ks")
           reports))
    [
      ("conv2d", Extra.conv2d ~mask:2 ~image:8 ());
      ("moving-average", Extra.moving_average ~window:4 ~samples:24 ());
      ("corner-turn", Extra.corner_turn ~size:6 ());
      ("gradient-pair", Extra.gradient_pair ~size:8 ());
    ]

let test_extra_transform_equivalence () =
  List.iter
    (fun (name, nest) ->
      let an = Helpers.analyze nest in
      List.iter
        (fun alg ->
          let alloc = Srfa_core.Allocator.run alg an ~budget:24 in
          let plan = Srfa_codegen.Plan.build alloc in
          Alcotest.(check bool)
            (name ^ "/" ^ Srfa_core.Allocator.name alg)
            true
            (Srfa_codegen.Exec_check.equivalent plan ~init:Helpers.init))
        Srfa_core.Allocator.all)
    [
      ("conv2d", Extra.conv2d ~mask:2 ~image:6 ());
      ("moving-average", Extra.moving_average ~window:3 ~samples:12 ());
      ("corner-turn", Extra.corner_turn ~size:4 ());
      ("gradient-pair", Extra.gradient_pair ~size:5 ());
    ]

let test_profile_matches_total () =
  List.iter
    (fun (name, nest) ->
      let an = Helpers.analyze nest in
      let alloc = Srfa_core.Allocator.run Srfa_core.Allocator.Cpa_ra an ~budget:16 in
      let r = Simulator.run alloc in
      let hist = Simulator.profile alloc in
      let histo_iterations = List.fold_left (fun acc (_, n) -> acc + n) 0 hist in
      let histo_cycles =
        List.fold_left (fun acc (c, n) -> acc + (c * n)) 0 hist
      in
      Alcotest.(check int) (name ^ ": iterations") r.Simulator.iterations
        histo_iterations;
      Alcotest.(check int) (name ^ ": cycles") r.Simulator.total_cycles
        histo_cycles;
      Alcotest.(check bool)
        (name ^ ": ascending costs")
        true
        (let rec asc = function
           | (a, _) :: ((b, _) :: _ as rest) -> a < b && asc rest
           | _ -> true
         in
         asc hist))
    (Helpers.small_kernels ())

let test_profile_example_shape () =
  (* The paper: CPA iterations have "either 1 or 2 memory accesses"; with
     the 2-cycle compute chain that is costs 3 and 4. *)
  let an = Helpers.analyze (Helpers.example ()) in
  let alloc = Srfa_core.Allocator.run Srfa_core.Allocator.Cpa_ra an ~budget:64 in
  Alcotest.(check (list (pair int int))) "16 cheap + 584 regular"
    [ (3, 16); (4, 584) ]
    (Simulator.profile alloc)

let () =
  Alcotest.run "extra-kernels"
    [
      ( "kernels",
        [
          Alcotest.test_case "registry" `Quick test_registry;
          Alcotest.test_case "conv2d windows" `Quick test_conv2d_windows;
          Alcotest.test_case "conv2d semantics" `Quick test_conv2d_semantics;
          Alcotest.test_case "corner-turn reuse" `Quick
            test_corner_turn_reuse_differs_from_mat;
          Alcotest.test_case "gradient-pair components" `Quick
            test_gradient_pair_two_components;
          Alcotest.test_case "full pipeline" `Quick
            test_extra_kernels_full_pipeline;
          Alcotest.test_case "transform equivalence" `Slow
            test_extra_transform_equivalence;
        ] );
      ( "profile",
        [
          Alcotest.test_case "matches totals" `Quick test_profile_matches_total;
          Alcotest.test_case "example shape" `Quick test_profile_example_shape;
        ] );
    ]
