open Srfa_reuse
open Srfa_test_helpers
module Plan = Srfa_codegen.Plan
module C_source = Srfa_codegen.C_source
module Vhdl = Srfa_codegen.Vhdl
module Exec_check = Srfa_codegen.Exec_check

let plan_for nest alg budget =
  let an = Helpers.analyze nest in
  Plan.build (Srfa_core.Allocator.run alg an ~budget)

let test_plan_classification () =
  let plan = plan_for (Helpers.example ()) Srfa_core.Allocator.Cpa_ra 64 in
  let an = plan.Plan.allocation.Allocation.analysis in
  let access name =
    Plan.access plan (Helpers.info_named an name).Analysis.group.Group.id
  in
  (match access "d[i][k]" with
  | Plan.Window_full { beta; _ } -> Alcotest.(check int) "d full at 30" 30 beta
  | _ -> Alcotest.fail "d should be a full window");
  (match access "a[k]" with
  | Plan.Window_partial { beta; _ } ->
    Alcotest.(check int) "a partial at 16" 16 beta
  | _ -> Alcotest.fail "a should be a partial window");
  match access "e[i][j][k]" with
  | Plan.Ram_always -> ()
  | _ -> Alcotest.fail "e should stay in RAM"

let test_plan_unpinned_is_ram () =
  let plan = plan_for (Helpers.example ()) Srfa_core.Allocator.Fr_ra 64 in
  let an = plan.Plan.allocation.Allocation.analysis in
  match
    Plan.access plan (Helpers.info_named an "b[k][j]").Analysis.group.Group.id
  with
  | Plan.Ram_always -> ()
  | _ -> Alcotest.fail "FR's unpinned b must remain a RAM access"

let test_plan_opaque_for_bic_image () =
  let plan = plan_for (Helpers.small_bic ()) Srfa_core.Allocator.Cpa_ra 16 in
  let an = plan.Plan.allocation.Allocation.analysis in
  match
    Plan.access plan
      (Helpers.info_named an "im[r+u][c+v]").Analysis.group.Group.id
  with
  | Plan.Window_opaque _ -> ()
  | Plan.Window_partial _ | Plan.Window_full _ | Plan.Ram_always ->
    Alcotest.fail "coupled 2-D window should be opaque"

let test_prologue_and_writeback_flags () =
  let plan = plan_for (Helpers.example ()) Srfa_core.Allocator.Cpa_ra 64 in
  let an = plan.Plan.allocation.Allocation.analysis in
  let gid name = (Helpers.info_named an name).Analysis.group.Group.id in
  Alcotest.(check bool) "a needs prologue" true
    (Plan.needs_prologue plan (gid "a[k]"));
  Alcotest.(check bool) "d write-first needs no prologue" false
    (Plan.needs_prologue plan (gid "d[i][k]"));
  Alcotest.(check bool) "d output needs writeback" true
    (Plan.needs_writeback plan (gid "d[i][k]"));
  Alcotest.(check bool) "a read-only never written back" false
    (Plan.needs_writeback plan (gid "a[k]"))

let test_accumulator_prologue () =
  (* y[i] in FIR is read before written: its window must be preloaded and
     written back. *)
  let plan = plan_for (Helpers.small_fir ()) Srfa_core.Allocator.Cpa_ra 12 in
  let an = plan.Plan.allocation.Allocation.analysis in
  let gid = (Helpers.info_named an "y[i]").Analysis.group.Group.id in
  Alcotest.(check bool) "accumulator prologue" true
    (Plan.needs_prologue plan gid);
  Alcotest.(check bool) "accumulator writeback" true
    (Plan.needs_writeback plan gid)

(* Semantics: the transformed execution equals the reference interpreter
   for every kernel and every algorithm. *)
let test_equivalence_all () =
  List.iter
    (fun (name, nest) ->
      let an = Helpers.analyze nest in
      let minimum = Srfa_core.Ordering.feasibility_minimum an in
      List.iter
        (fun alg ->
          List.iter
            (fun budget ->
              let alloc = Srfa_core.Allocator.run alg an ~budget in
              let plan = Plan.build alloc in
              Alcotest.(check bool)
                (Printf.sprintf "%s/%s/budget %d" name
                   (Srfa_core.Allocator.name alg)
                   budget)
                true
                (Exec_check.equivalent plan ~init:Helpers.init))
            [ minimum; minimum + 5; minimum + 13; 64 ])
        Srfa_core.Allocator.all)
    (Helpers.small_kernels ())

let test_c_output_shape () =
  let plan = plan_for (Helpers.example ()) Srfa_core.Allocator.Cpa_ra 64 in
  let c = C_source.emit plan in
  let has s =
    Alcotest.(check bool) ("contains " ^ s) true
      (Helpers.contains_substring c s)
  in
  has "void example(void)";
  has "int win_d_2[30];";
  has "for (int j = 0; j < 20; j++)";
  (* partial access steering for a (beta 16, rank k) *)
  has "(k < 16 ? win_a_0[k] : a[k])";
  (* full window for d: unconditional register write *)
  has "win_d_2[k] =";
  (* writeback epilogue for the output window *)
  has "d[i][k] = win_d_2[k];";
  (* balanced braces *)
  let count ch = String.fold_left (fun n c -> if c = ch then n + 1 else n) 0 c in
  Alcotest.(check int) "balanced braces" (count '{') (count '}')

let test_c_ram_only_has_no_windows () =
  let plan = plan_for (Helpers.example ()) Srfa_core.Allocator.Fr_ra 5 in
  let c = C_source.emit plan in
  Alcotest.(check bool) "no window arrays at feasibility budget" false
    (Helpers.contains_substring c "win_")

let test_vhdl_output_shape () =
  let plan = plan_for (Helpers.small_fir ()) Srfa_core.Allocator.Cpa_ra 8 in
  let v = Vhdl.emit plan in
  let has s =
    Alcotest.(check bool) ("contains " ^ s) true
      (Helpers.contains_substring v s)
  in
  Alcotest.(check string) "entity name" "fir" (Vhdl.entity_name plan);
  has "entity fir is";
  has "architecture behavioral of fir is";
  has "end architecture behavioral;";
  has "main : process";
  has "end process main;";
  has "wait until rising_edge(clk)";
  (* every for loop is closed *)
  let count s text =
    let n = String.length s and h = String.length text in
    let rec go i acc =
      if i + n > h then acc
      else if String.sub text i n = s then go (i + 1) (acc + 1)
      else go (i + 1) acc
    in
    go 0 0
  in
  Alcotest.(check int) "loops balanced" (count "for " v) (count "end loop;" v);
  Alcotest.(check int) "one entity, one architecture" 1 (count "entity fir is" v)

let test_vhdl_testbench () =
  let plan = plan_for (Helpers.small_fir ()) Srfa_core.Allocator.Cpa_ra 8 in
  let tb = Vhdl.emit_testbench plan in
  let has s =
    Alcotest.(check bool) ("contains " ^ s) true
      (Helpers.contains_substring tb s)
  in
  has "entity fir_tb is";
  has "dut : entity work.fir";
  has "clk <= not clk after 20 ns";
  has "assert done = '1'";
  has "end architecture sim;"

let test_vhdl_hyphen_name () =
  let plan = plan_for (Srfa_kernels.Kernels.dec_fir ~taps:4 ~samples:12 ~decimation:2 ())
      Srfa_core.Allocator.Cpa_ra 10
  in
  Alcotest.(check string) "hyphen becomes underscore" "dec_fir"
    (Vhdl.entity_name plan)

let test_edge_transfers_example () =
  let plan = plan_for (Helpers.example ()) Srfa_core.Allocator.Cpa_ra 64 in
  (* Shift peeling: loads = covered elements of read windows
     (a: 16, b: 16, c: 1), stores = covered elements of written output
     windows (d: 30). e and the rest contribute nothing. *)
  Alcotest.(check int) "shift transfers" (16 + 16 + 1 + 30)
    (Plan.edge_transfers plan ~strategy:Plan.Shift_window);
  (* Naive reloading repeats the loads at every window entry: a, b and c
     have a single window here (one i iteration); d writes back at each of
     its 20 j-windows. *)
  Alcotest.(check int) "reload transfers" (16 + 16 + 1 + (20 * 30))
    (Plan.edge_transfers plan ~strategy:Plan.Reload_window)

let test_edge_transfers_shift_bounded_by_reload () =
  List.iter
    (fun (name, nest) ->
      let an = Helpers.analyze nest in
      List.iter
        (fun alg ->
          let plan = Plan.build (Srfa_core.Allocator.run alg an ~budget:20) in
          let shift = Plan.edge_transfers plan ~strategy:Plan.Shift_window in
          let reload = Plan.edge_transfers plan ~strategy:Plan.Reload_window in
          Alcotest.(check bool)
            (Printf.sprintf "%s/%s: 0 <= shift <= reload" name
               (Srfa_core.Allocator.name alg))
            true
            (0 <= shift && shift <= reload))
        Srfa_core.Allocator.all)
    (Helpers.small_kernels ())

let test_edge_transfers_zero_without_windows () =
  let plan = plan_for (Helpers.example ()) Srfa_core.Allocator.Fr_ra 5 in
  Alcotest.(check int) "no windows, no transfers" 0
    (Plan.edge_transfers plan ~strategy:Plan.Shift_window);
  Alcotest.(check int) "no windows, no reloads" 0
    (Plan.edge_transfers plan ~strategy:Plan.Reload_window)

let test_describe () =
  let plan = plan_for (Helpers.example ()) Srfa_core.Allocator.Cpa_ra 64 in
  let desc = Plan.describe plan in
  Alcotest.(check int) "five entries" 5 (List.length desc);
  Alcotest.(check bool) "d described as full window" true
    (List.exists
       (fun (name, how) ->
         name = "d[i][k]" && Helpers.contains_substring how "full window")
       desc)

let () =
  Alcotest.run "codegen"
    [
      ( "plan",
        [
          Alcotest.test_case "classification" `Quick test_plan_classification;
          Alcotest.test_case "unpinned is RAM" `Quick
            test_plan_unpinned_is_ram;
          Alcotest.test_case "opaque windows" `Quick
            test_plan_opaque_for_bic_image;
          Alcotest.test_case "prologue/writeback flags" `Quick
            test_prologue_and_writeback_flags;
          Alcotest.test_case "accumulator prologue" `Quick
            test_accumulator_prologue;
          Alcotest.test_case "describe" `Quick test_describe;
          Alcotest.test_case "edge transfers (example)" `Quick
            test_edge_transfers_example;
          Alcotest.test_case "edge transfers bounded" `Quick
            test_edge_transfers_shift_bounded_by_reload;
          Alcotest.test_case "edge transfers zero" `Quick
            test_edge_transfers_zero_without_windows;
        ] );
      ( "semantics",
        [ Alcotest.test_case "transform equivalence" `Slow test_equivalence_all ]
      );
      ( "emitters",
        [
          Alcotest.test_case "c output" `Quick test_c_output_shape;
          Alcotest.test_case "c without windows" `Quick
            test_c_ram_only_has_no_windows;
          Alcotest.test_case "vhdl output" `Quick test_vhdl_output_shape;
          Alcotest.test_case "vhdl testbench" `Quick test_vhdl_testbench;
          Alcotest.test_case "vhdl entity naming" `Quick test_vhdl_hyphen_name;
        ] );
    ]
