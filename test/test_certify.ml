(* Certification-layer guarantees, as tests:

   - the certified portfolio never simulates worse than FR-RA or PR-RA at
     the same budget (the never-worse contract, Certify);
   - through Flow.sweep it is additionally budget-monotonic: more
     registers never cost more cycles (the carry-forward rule);
   - repair passes reopen the candidate via Engine.of_allocation and must
     not leak mutations into the Cpa_ra.prepare scratch shared across a
     sweep's budget points. *)

open Srfa_reuse
open Srfa_test_helpers
module Allocator = Srfa_core.Allocator
module Certify = Srfa_core.Certify
module Cpa_ra = Srfa_core.Cpa_ra
module Flow = Srfa_core.Flow
module Report = Srfa_estimate.Report
module Simulator = Srfa_sched.Simulator

let budgets = [ 8; 16; 32; 64; 128 ]

let feasible an budget = budget >= Srfa_core.Ordering.feasibility_minimum an

let cycles alloc = (Simulator.run alloc).Simulator.total_cycles

(* Every kernel in lib/kernels, swept over the standard budgets with the
   certified portfolio: cycles must be non-increasing in the budget. *)
let test_sweep_monotonic () =
  let points =
    Flow.sweep ~algorithms:[ Allocator.Portfolio ] ~budgets
      (Srfa_kernels.Kernels.all ())
  in
  Alcotest.(check bool) "sweep produced points" true (points <> []);
  let by_kernel = Hashtbl.create 8 in
  List.iter
    (fun (p : Flow.sweep_point) ->
      let prev =
        try Hashtbl.find by_kernel p.Flow.kernel with Not_found -> []
      in
      Hashtbl.replace by_kernel p.Flow.kernel
        ((p.Flow.budget, p.Flow.report.Report.cycles) :: prev))
    points;
  Hashtbl.iter
    (fun kernel pts ->
      let pts = List.sort compare pts in
      ignore
        (List.fold_left
           (fun prev (budget, c) ->
             (match prev with
             | Some (pb, pc) ->
               Alcotest.(check bool)
                 (Printf.sprintf "%s: cycles at %d regs (%d) <= at %d (%d)"
                    kernel budget c pb pc)
                 true (c <= pc)
             | None -> ());
             Some (budget, c))
           None pts))
    by_kernel

(* The never-worse contract itself, checked against fresh greedy runs. *)
let test_never_worse_than_baselines () =
  List.iter
    (fun (name, nest) ->
      let an = Helpers.analyze nest in
      List.iter
        (fun budget ->
          if feasible an budget then begin
            let run alg = Allocator.run alg an ~budget in
            let bar =
              min (cycles (run Allocator.Fr_ra)) (cycles (run Allocator.Pr_ra))
            in
            Alcotest.(check bool)
              (Printf.sprintf "%s @ %d: portfolio <= best greedy" name budget)
              true
              (cycles (run Allocator.Portfolio) <= bar)
          end)
        budgets)
    (Helpers.small_kernels ())

(* Certified allocations carry the portfolio provenance label, and the
   dominance fast path really skips the simulator. *)
let test_outcome_shape () =
  let an = Helpers.analyze (Helpers.example ()) in
  let outcome = Allocator.run_portfolio an ~budget:64 in
  Alcotest.(check string) "label" Certify.algorithm_name
    outcome.Certify.allocation.Allocation.algorithm;
  (match outcome.Certify.comparison with
  | Certify.Dominates ->
    Alcotest.(check bool) "dominance path has no simulation" true
      (outcome.Certify.sim = None)
  | Certify.Simulated { candidate_cycles = _; bar_cycles } ->
    (match outcome.Certify.sim with
    | Some sim ->
      Alcotest.(check bool) "certified <= bar" true
        (sim.Simulator.total_cycles <= bar_cycles)
    | None -> Alcotest.fail "simulated path must return its simulation"));
  Alcotest.(check bool) "within budget" true
    (Allocation.total_registers outcome.Certify.allocation <= 64)

(* Repair passes must not corrupt the Cpa_ra.prepare scratch shared
   across budget points: running the portfolio over a shared [prepared]
   must match fresh-scratch runs entry for entry. *)
let test_prepared_state_no_leak () =
  List.iter
    (fun (name, nest) ->
      let an = Helpers.analyze nest in
      let shared = Cpa_ra.prepare an in
      List.iter
        (fun budget ->
          if feasible an budget then begin
            let with_shared =
              Allocator.run ~prepared:shared Allocator.Portfolio an ~budget
            in
            let with_fresh =
              Allocator.run ~prepared:(Cpa_ra.prepare an) Allocator.Portfolio
                an ~budget
            in
            for gid = 0 to Analysis.num_groups an - 1 do
              Alcotest.(check bool)
                (Printf.sprintf "%s @ %d: entry %d identical" name budget gid)
                true
                (Allocation.entry with_shared gid
                = Allocation.entry with_fresh gid)
            done
          end)
        budgets)
    (Helpers.small_kernels ())

let () =
  Alcotest.run "certify"
    [
      ( "portfolio",
        [
          Alcotest.test_case "sweep is budget-monotonic" `Quick
            test_sweep_monotonic;
          Alcotest.test_case "never worse than greedy baselines" `Quick
            test_never_worse_than_baselines;
          Alcotest.test_case "outcome shape" `Quick test_outcome_shape;
          Alcotest.test_case "prepared scratch does not leak" `Quick
            test_prepared_state_no_leak;
        ] );
    ]
