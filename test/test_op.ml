open Srfa_ir

let check_int = Alcotest.(check int)

let test_arith () =
  check_int "add" 7 (Op.eval_binary Op.Add 3 4);
  check_int "sub" (-1) (Op.eval_binary Op.Sub 3 4);
  check_int "mul" 12 (Op.eval_binary Op.Mul 3 4);
  check_int "div" 3 (Op.eval_binary Op.Div 13 4);
  check_int "div truncates toward zero" (-3) (Op.eval_binary Op.Div (-13) 4);
  check_int "div by zero yields 0" 0 (Op.eval_binary Op.Div 5 0)

let test_minmax () =
  check_int "min" 3 (Op.eval_binary Op.Min 3 4);
  check_int "max" 4 (Op.eval_binary Op.Max 3 4);
  check_int "min negative" (-4) (Op.eval_binary Op.Min 3 (-4))

let test_bitwise () =
  check_int "and" 0b100 (Op.eval_binary Op.Band 0b110 0b101);
  check_int "or" 0b111 (Op.eval_binary Op.Bor 0b110 0b101);
  check_int "xor" 0b011 (Op.eval_binary Op.Bxor 0b110 0b101)

let test_compare () =
  check_int "eq true" 1 (Op.eval_binary Op.Eq 5 5);
  check_int "eq false" 0 (Op.eval_binary Op.Eq 5 6);
  check_int "lt true" 1 (Op.eval_binary Op.Lt 5 6);
  check_int "lt false" 0 (Op.eval_binary Op.Lt 6 5);
  check_int "lt equal" 0 (Op.eval_binary Op.Lt 5 5)

let test_unary () =
  check_int "neg" (-5) (Op.eval_unary Op.Neg 5);
  check_int "abs" 5 (Op.eval_unary Op.Abs (-5));
  check_int "bnot of 0" 1 (Op.eval_unary Op.Bnot 0);
  check_int "bnot of 1" 0 (Op.eval_unary Op.Bnot 1)

let test_names_unique () =
  let names = List.map Op.binary_name Op.all_binary in
  Alcotest.(check int)
    "binary names are distinct"
    (List.length names)
    (List.length (List.sort_uniq String.compare names));
  let unames = List.map Op.unary_name Op.all_unary in
  Alcotest.(check int)
    "unary names are distinct"
    (List.length unames)
    (List.length (List.sort_uniq String.compare unames))

let prop_eq_reflexive =
  QCheck.Test.make ~name:"eq is reflexive" ~count:100 QCheck.small_int
    (fun x -> Op.eval_binary Op.Eq x x = 1)

let prop_minmax_bounds =
  QCheck.Test.make ~name:"min <= max" ~count:100
    QCheck.(pair small_int small_int)
    (fun (a, b) ->
      Op.eval_binary Op.Min a b <= Op.eval_binary Op.Max a b)

let () =
  Alcotest.run "op"
    [
      ( "unit",
        [
          Alcotest.test_case "arithmetic" `Quick test_arith;
          Alcotest.test_case "min/max" `Quick test_minmax;
          Alcotest.test_case "bitwise" `Quick test_bitwise;
          Alcotest.test_case "comparisons" `Quick test_compare;
          Alcotest.test_case "unary" `Quick test_unary;
          Alcotest.test_case "names unique" `Quick test_names_unique;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_eq_reflexive;
          QCheck_alcotest.to_alcotest prop_minmax_bounds;
        ] );
    ]
