open Srfa_ir
open Srfa_test_helpers

let test_kernels_fully_permutable () =
  List.iter
    (fun (name, nest) ->
      Alcotest.(check bool)
        (name ^ " is fully permutable")
        true
        (Permute.fully_permutable nest))
    (Helpers.small_kernels ())

let test_subtraction_reduction_rejected () =
  let open Builder in
  let x = input "x" [ 4 ] and acc = output "acc" [ 4 ] in
  let i = idx "i" and j = idx "j" in
  let nest =
    nest "subred" ~loops:[ ("i", 4); ("j", 4) ]
      [ at acc [ i ] <-- (acc.%[ [ i ] ] - x.%[ [ j ] ]) ]
  in
  (* Subtraction is associative-insensitive to order of the *other*
     operands but the reduction test must stay conservative. *)
  Alcotest.(check bool) "rejected" false (Permute.fully_permutable nest);
  Alcotest.(check bool) "reason mentions operator" true
    (match Permute.illegality nest with
    | Some why -> Helpers.contains_substring why "associative"
    | None -> false)

let test_cross_iteration_dependence_rejected () =
  let open Builder in
  let x = local "x" [ 8 ] and y = output "y" [ 4 ] in
  let i = idx "i" in
  let nest =
    nest "shift" ~loops:[ ("i", 4) ]
      [
        at x [ i +: cidx 1 ] <-- (y.%[ [ i ] ] + const 1);
        at y [ i ] <-- x.%[ [ i ] ];
      ]
  in
  (* y[i] is read by statement 1 before statement 2 writes it, and x is
     read through a different index than its write: cross-iteration flow. *)
  Alcotest.(check bool) "rejected" false (Permute.fully_permutable nest)

let test_interchange_reorders () =
  let nest = Helpers.example () in
  let swapped = Permute.interchange nest ~order:[ 0; 2; 1 ] in
  Alcotest.(check (list string)) "i k j" [ "i"; "k"; "j" ]
    (Nest.loop_vars swapped);
  Alcotest.(check int) "same iteration count" (Nest.iterations nest)
    (Nest.iterations swapped)

let test_interchange_bad_order () =
  let nest = Helpers.example () in
  List.iter
    (fun order ->
      Alcotest.(check bool)
        "invalid order rejected" true
        (try
           ignore (Permute.interchange nest ~order);
           false
         with Invalid_argument _ -> true))
    [ [ 0; 1 ]; [ 0; 1; 1 ]; [ 0; 1; 3 ] ]

let test_interchange_preserves_semantics () =
  List.iter
    (fun (name, nest) ->
      let reference = Interp.run_fresh nest ~init:Helpers.init in
      List.iter
        (fun order ->
          let permuted = Permute.interchange nest ~order in
          let result = Interp.run_fresh permuted ~init:Helpers.init in
          List.iter
            (fun (d : Decl.t) ->
              if d.Decl.storage = Decl.Output then
                Alcotest.(check bool)
                  (Printf.sprintf "%s under [%s]: %s agrees" name
                     (String.concat ";" (List.map string_of_int order))
                     d.Decl.name)
                  true
                  (Interp.equal_array reference result d.Decl.name))
            nest.Nest.arrays)
        (Permute.all_orders nest))
    (Helpers.small_kernels ())

let test_all_orders_count () =
  let nest = Helpers.example () in
  Alcotest.(check int) "3! orders" 6 (List.length (Permute.all_orders nest));
  Alcotest.(check (list int)) "identity first" [ 0; 1; 2 ]
    (List.hd (Permute.all_orders nest))

let test_explorer_imi () =
  let nest = Helpers.small_imi () in
  (* A budget too small for the paper-order image windows (nu = 30 each)
     but ample once the frame loop is innermost (nu = 1 each). *)
  let config =
    { Srfa_core.Flow.default_config with Srfa_core.Flow.budget = 12 }
  in
  let candidates, warnings =
    Srfa_core.Order_explorer.explore ~config Srfa_core.Allocator.Cpa_ra nest
  in
  Alcotest.(check int) "no warnings" 0 (List.length warnings);
  Alcotest.(check int) "six candidates" 6 (List.length candidates);
  let best = List.hd candidates in
  let identity =
    List.find
      (fun c -> c.Srfa_core.Order_explorer.order = [ 0; 1; 2 ])
      candidates
  in
  Alcotest.(check bool) "sorted ascending" true
    (let rec mono = function
       | a :: (b :: _ as rest) ->
         a.Srfa_core.Order_explorer.cycles <= b.Srfa_core.Order_explorer.cycles
         && mono rest
       | _ -> true
     in
     mono candidates);
  (* frame loop innermost turns the image windows into single registers *)
  Alcotest.(check bool) "best strictly beats the paper order" true
    (best.Srfa_core.Order_explorer.cycles
    < identity.Srfa_core.Order_explorer.cycles);
  Alcotest.(check (list string)) "f innermost" [ "r"; "c"; "f" ]
    best.Srfa_core.Order_explorer.loop_vars

let test_explorer_best_never_worse_than_identity () =
  List.iter
    (fun (name, nest) ->
      let candidates, _ =
        Srfa_core.Order_explorer.explore Srfa_core.Allocator.Cpa_ra nest
      in
      let identity_order = List.init (Nest.depth nest) Fun.id in
      let identity =
        List.find
          (fun c -> c.Srfa_core.Order_explorer.order = identity_order)
          candidates
      in
      let best = List.hd candidates in
      Alcotest.(check bool)
        (name ^ ": best <= identity")
        true
        (best.Srfa_core.Order_explorer.cycles
        <= identity.Srfa_core.Order_explorer.cycles))
    (Helpers.small_kernels ())

let () =
  Alcotest.run "permute"
    [
      ( "legality",
        [
          Alcotest.test_case "kernels permutable" `Quick
            test_kernels_fully_permutable;
          Alcotest.test_case "subtraction reduction rejected" `Quick
            test_subtraction_reduction_rejected;
          Alcotest.test_case "cross-iteration rejected" `Quick
            test_cross_iteration_dependence_rejected;
        ] );
      ( "interchange",
        [
          Alcotest.test_case "reorders" `Quick test_interchange_reorders;
          Alcotest.test_case "bad orders rejected" `Quick
            test_interchange_bad_order;
          Alcotest.test_case "preserves semantics" `Slow
            test_interchange_preserves_semantics;
          Alcotest.test_case "all orders" `Quick test_all_orders_count;
        ] );
      ( "explorer",
        [
          Alcotest.test_case "imi best order" `Quick test_explorer_imi;
          Alcotest.test_case "best never worse" `Quick
            test_explorer_best_never_worse_than_identity;
        ] );
    ]
